package geoblocks_test

import (
	"math"
	"math/rand"
	"testing"

	"geoblocks"
)

// TestJoinOptsMatchesSequential pins the public single-block join: every
// per-polygon result must be bit-identical to QueryOpts on that polygon
// alone (cache disabled — the multi kernel reads the aggregate arrays
// directly), at full resolution and through the pyramid planner.
func TestJoinOptsMatchesSequential(t *testing.T) {
	b := newTestBuilder(t, 20000, 3)
	blk, err := b.Build(12, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := blk.BuildPyramid(4); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(17))
	var polys []*geoblocks.Polygon
	for i := 0; i < 50; i++ {
		c := geoblocks.Pt(rng.Float64()*100, rng.Float64()*100)
		if i%2 == 0 {
			c = geoblocks.Pt(40+rng.NormFloat64()*8, 50+rng.NormFloat64()*8)
		}
		polys = append(polys, geoblocks.RegularPolygon(c, 0.5+rng.Float64()*15, 3+rng.Intn(7)))
	}
	reqs := []geoblocks.AggRequest{
		geoblocks.Count(), geoblocks.Sum("fare"), geoblocks.Min("distance"), geoblocks.Max("fare"),
	}
	for _, maxErr := range []float64{0, 0.5, 4.0} {
		opts := geoblocks.QueryOptions{MaxError: maxErr}
		results, info, err := blk.JoinOpts(polys, opts, reqs...)
		if err != nil {
			t.Fatalf("join (maxErr %v): %v", maxErr, err)
		}
		if info.Level > blk.Level() || (maxErr >= 4.0 && info.Level >= blk.Level()) {
			t.Fatalf("maxErr %v answered at level %d (block level %d)", maxErr, info.Level, blk.Level())
		}
		seqOpts := geoblocks.QueryOptions{MaxError: maxErr, DisableCache: true}
		for i, poly := range polys {
			want, err := blk.QueryOpts(poly, seqOpts, reqs...)
			if err != nil {
				t.Fatalf("sequential %d: %v", i, err)
			}
			got := results[i]
			if got.Count != want.Count || got.Level != want.Level || got.ErrorBound != want.ErrorBound {
				t.Fatalf("poly %d maxErr %v: got %+v, want %+v", i, maxErr, got, want)
			}
			for k := range want.Values {
				if math.Float64bits(got.Values[k]) != math.Float64bits(want.Values[k]) {
					t.Fatalf("poly %d value %d: %v vs %v (bits differ)", i, k, got.Values[k], want.Values[k])
				}
			}
		}
	}
}
