// Benchmarks regenerating the paper's evaluation, one per table/figure,
// plus ablation benches for the design choices DESIGN.md calls out. The
// experiment benches wrap the drivers in internal/experiments at a reduced
// scale (testing.B re-runs the body; the full-scale single-shot runs live
// in cmd/geobench). Run everything with:
//
//	go test -bench=. -benchmem
package geoblocks_test

import (
	"fmt"
	"math/rand"
	"testing"

	"geoblocks"
	"geoblocks/internal/aggtrie"
	"geoblocks/internal/cellid"
	"geoblocks/internal/core"
	"geoblocks/internal/cover"
	"geoblocks/internal/dataset"
	"geoblocks/internal/experiments"
	"geoblocks/internal/geom"
	"geoblocks/internal/store"
	"geoblocks/internal/workload"
)

// benchConfig is small enough that a single experiment iteration stays in
// benchmark-friendly territory while exercising every code path.
func benchConfig() experiments.Config {
	return experiments.Config{TaxiRows: 120_000, TweetRows: 60_000, OSMRows: 80_000, Seed: 1}
}

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	r, ok := experiments.Find(id)
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	cfg := benchConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tables := r.Run(cfg)
		if len(tables) == 0 {
			b.Fatal("no tables")
		}
	}
}

// One benchmark per paper table/figure.

func BenchmarkFig10(b *testing.B)  { benchExperiment(b, "fig10") }
func BenchmarkFig11a(b *testing.B) { benchExperiment(b, "fig11a") }
func BenchmarkFig11b(b *testing.B) { benchExperiment(b, "fig11b") }
func BenchmarkFig11c(b *testing.B) { benchExperiment(b, "fig11c") }
func BenchmarkFig12(b *testing.B)  { benchExperiment(b, "fig12") }
func BenchmarkFig13(b *testing.B)  { benchExperiment(b, "fig13") }
func BenchmarkFig14(b *testing.B)  { benchExperiment(b, "fig14") }
func BenchmarkFig15(b *testing.B)  { benchExperiment(b, "fig15") }
func BenchmarkFig16(b *testing.B)  { benchExperiment(b, "fig16") }
func BenchmarkTable2(b *testing.B) { benchExperiment(b, "tab2") }
func BenchmarkFig17(b *testing.B)  { benchExperiment(b, "fig17") }
func BenchmarkFig18(b *testing.B)  { benchExperiment(b, "fig18") }
func BenchmarkFig19(b *testing.B)  { benchExperiment(b, "fig19") }

// Micro-benchmarks of the core query paths.

type benchEnv struct {
	blk    *core.GeoBlock
	covs   [][]cellid.ID
	bigCov []cellid.ID
	specs  []core.AggSpec
}

func newBenchEnv(b *testing.B, rows int) *benchEnv {
	b.Helper()
	raw := dataset.Generate(dataset.NYCTaxi(), rows, 1)
	base, _, err := raw.Extract(-1)
	if err != nil {
		b.Fatal(err)
	}
	blk, err := core.Build(base, core.BuildOptions{Level: 10})
	if err != nil {
		b.Fatal(err)
	}
	cov := cover.MustCoverer(raw.Domain(), cover.DefaultOptions(10))
	polys := workload.Neighborhoods(raw.Spec.Bound, 7)
	covs := make([][]cellid.ID, len(polys))
	for i, p := range polys {
		covs[i] = cov.Cover(p).Cells
	}
	big := workload.SelectivityRect(base.Table, raw.Domain(), 0.5)
	return &benchEnv{
		blk:    blk,
		covs:   covs,
		bigCov: cov.CoverRect(big).Cells,
		specs: []core.AggSpec{
			{Func: core.AggCount},
			{Col: 0, Func: core.AggSum},
			{Col: 3, Func: core.AggAvg},
		},
	}
}

func BenchmarkSelectNeighborhoods(b *testing.B) {
	e := newBenchEnv(b, 200_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cov := e.covs[i%len(e.covs)]
		if _, err := e.blk.SelectCovering(cov, e.specs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCountNeighborhoods(b *testing.B) {
	e := newBenchEnv(b, 200_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.blk.CountCovering(e.covs[i%len(e.covs)])
	}
}

func BenchmarkCovering(b *testing.B) {
	raw := dataset.Generate(dataset.NYCTaxi(), 10_000, 1)
	cov := cover.MustCoverer(raw.Domain(), cover.DefaultOptions(10))
	polys := workload.Neighborhoods(raw.Spec.Bound, 7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cov.Cover(polys[i%len(polys)])
	}
}

// BenchmarkSelectLevelSweep compares the three SELECT variants across
// block levels on the clustered taxi workload — the PR1 headline
// measurement (DESIGN.md Sec. 5). "prefix" answers SUM per covering cell
// from prefix-sum endpoints (O(1) per cell), "scan" is the preserved
// pre-prefix per-cell combine, "binary-only" additionally drops the
// successor cursor. At fine levels (17) the prefix path must be multiple
// times faster than the scan ablation; COUNT is included as the
// level-independence reference (paper Listing 2).
func BenchmarkSelectLevelSweep(b *testing.B) {
	raw := dataset.Generate(dataset.NYCTaxi(), 200_000, 1)
	base, _, err := raw.Extract(-1)
	if err != nil {
		b.Fatal(err)
	}
	specs := []core.AggSpec{{Col: 0, Func: core.AggSum}}
	for _, level := range []int{13, 15, 17} {
		blk, err := core.Build(base, core.BuildOptions{Level: level})
		if err != nil {
			b.Fatal(err)
		}
		cov := cover.MustCoverer(raw.Domain(), cover.DefaultOptions(level))
		big := cov.CoverRect(workload.SelectivityRect(base.Table, raw.Domain(), 0.5)).Cells
		b.Run(fmt.Sprintf("level=%d/prefix", level), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := blk.SelectCovering(big, specs); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("level=%d/scan", level), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := blk.SelectCoveringScan(big, specs); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("level=%d/binary-only", level), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := blk.SelectCoveringBinaryOnly(big, specs); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("level=%d/count", level), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				blk.CountCovering(big)
			}
		})
	}
}

// Ablation benches (DESIGN.md Sec. 5).

// BenchmarkAblationPrefixSum compares the prefix-sum SELECT against the
// preserved scan kernel on the level-10 neighborhood workload.
func BenchmarkAblationPrefixSum(b *testing.B) {
	e := newBenchEnv(b, 200_000)
	b.Run("prefix", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := e.blk.SelectCovering(e.bigCov, e.specs); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("scan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := e.blk.SelectCoveringScan(e.bigCov, e.specs); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationSuccessorScan compares the Listing 1 successor-cursor
// scan against a fresh binary search per covering cell.
func BenchmarkAblationSuccessorScan(b *testing.B) {
	e := newBenchEnv(b, 200_000)
	b.Run("cursor", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := e.blk.SelectCovering(e.bigCov, e.specs); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("binary-only", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := e.blk.SelectCoveringBinaryOnly(e.bigCov, e.specs); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationCountRangeSum compares the Listing 2 range-sum COUNT
// against a SELECT-style scan of every contained aggregate.
func BenchmarkAblationCountRangeSum(b *testing.B) {
	e := newBenchEnv(b, 200_000)
	b.Run("range-sum", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			e.blk.CountCovering(e.bigCov)
		}
	})
	b.Run("scan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			e.blk.CountCoveringScan(e.bigCov)
		}
	})
}

// BenchmarkAblationCacheScore compares the paper's hits+parent-hits cache
// ranking against own-hits-only ranking under a parent-heavy workload.
func BenchmarkAblationCacheScore(b *testing.B) {
	e := newBenchEnv(b, 200_000)
	run := func(b *testing.B, ownOnly bool) {
		qc, err := aggtrie.NewWithThreshold(e.blk, 0.05)
		if err != nil {
			b.Fatal(err)
		}
		qc.ScoreOwnHitsOnly = ownOnly
		for _, cov := range e.covs {
			if _, err := qc.Select(cov, e.specs); err != nil {
				b.Fatal(err)
			}
		}
		qc.Refresh()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			cov := e.covs[i%len(e.covs)]
			if _, err := qc.Select(cov, e.specs); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("hits+parent", func(b *testing.B) { run(b, false) })
	b.Run("own-hits", func(b *testing.B) { run(b, true) })
}

// BenchmarkAblationCoarsen compares deriving a coarser block from a finer
// one against rebuilding from base data.
func BenchmarkAblationCoarsen(b *testing.B) {
	raw := dataset.Generate(dataset.NYCTaxi(), 200_000, 1)
	base, _, err := raw.Extract(-1)
	if err != nil {
		b.Fatal(err)
	}
	fine, err := core.Build(base, core.BuildOptions{Level: 12})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("coarsen", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.Coarsen(fine, 9); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("rebuild", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.Build(base, core.BuildOptions{Level: 9}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkCachedSelect measures the warm BlockQC path end to end.
func BenchmarkCachedSelect(b *testing.B) {
	e := newBenchEnv(b, 200_000)
	qc, err := aggtrie.NewWithThreshold(e.blk, 0.10)
	if err != nil {
		b.Fatal(err)
	}
	for _, cov := range e.covs {
		if _, err := qc.Select(cov, e.specs); err != nil {
			b.Fatal(err)
		}
	}
	qc.Refresh()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cov := e.covs[i%len(e.covs)]
		if _, err := qc.Select(cov, e.specs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSelectCoveringParallel sweeps worker counts for the parallel
// SELECT over the 50%-selectivity covering — the PR2 fan-out measurement.
// workers=1 is the serial-fallback reference.
func BenchmarkSelectCoveringParallel(b *testing.B) {
	e := newBenchEnv(b, 200_000)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := e.blk.SelectCoveringParallel(e.bigCov, e.specs, workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkConcurrentCachedSelect drives one warm CachedBlock from
// b.RunParallel goroutines — the lock-light read path under contention
// (sharded statistics, atomic metrics, atomically published trie).
func BenchmarkConcurrentCachedSelect(b *testing.B) {
	e := newBenchEnv(b, 200_000)
	qc, err := aggtrie.NewWithThreshold(e.blk, 0.10)
	if err != nil {
		b.Fatal(err)
	}
	for _, cov := range e.covs {
		if _, err := qc.Select(cov, e.specs); err != nil {
			b.Fatal(err)
		}
	}
	qc.Refresh()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			if _, err := qc.Select(e.covs[i%len(e.covs)], e.specs); err != nil {
				b.Fatal(err)
			}
			i++
		}
	})
}

// BenchmarkPublicQuery measures the public API round trip including
// covering computation.
func BenchmarkPublicQuery(b *testing.B) {
	bound := geoblocks.Rect{Min: geoblocks.Pt(0, 0), Max: geoblocks.Pt(100, 100)}
	builder, err := geoblocks.NewBuilder(bound, geoblocks.NewSchema("v"))
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100_000; i++ {
		if err := builder.AddRow(geoblocks.Pt(rng.Float64()*100, rng.Float64()*100), rng.Float64()); err != nil {
			b.Fatal(err)
		}
	}
	blk, err := builder.Build(10, nil)
	if err != nil {
		b.Fatal(err)
	}
	poly := geoblocks.RegularPolygon(geoblocks.Pt(50, 50), 20, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := blk.Query(poly, geoblocks.Count(), geoblocks.Sum("v")); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHilbert measures the cell id <-> coordinate conversions that
// sit on every hot path.
func BenchmarkHilbert(b *testing.B) {
	dom := cellid.MustDomain(geom.Rect{Min: geom.Pt(0, 0), Max: geom.Pt(1, 1)})
	rng := rand.New(rand.NewSource(1))
	pts := make([]geom.Point, 1024)
	for i := range pts {
		pts[i] = geom.Pt(rng.Float64(), rng.Float64())
	}
	b.Run("FromPoint", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = dom.FromPoint(pts[i%len(pts)])
		}
	})
	ids := make([]cellid.ID, len(pts))
	for i, p := range pts {
		ids[i] = dom.FromPoint(p)
	}
	b.Run("CellRect", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = dom.CellRect(ids[i%len(ids)])
		}
	})
}

// Sharded store benchmarks: the covering split + fan-out + partial merge
// of internal/store against a raw single block, on shard-local and
// cross-shard traffic (the pr3 experiment measures the same comparison
// as throughput; these are the per-query latency views).

type storeBenchEnv struct {
	ds    *store.Dataset
	local [][]cellid.ID
	cross [][]cellid.ID
	polys []*geom.Polygon
}

func newStoreBenchEnv(b *testing.B, rows, shardLevel int) *storeBenchEnv {
	b.Helper()
	raw := dataset.Generate(dataset.NYCTaxi(), rows, 1)
	clean := raw.CleanRule()
	ds, err := store.Build("taxi", raw.Spec.Bound, raw.Spec.Schema, raw.Points, raw.Cols,
		store.Options{Level: 12, ShardLevel: shardLevel, Clean: &clean})
	if err != nil {
		b.Fatal(err)
	}
	localPolys := workload.ShardLocal(raw.Spec.Bound, 2, 32, 5)
	crossPolys := workload.CrossShard(raw.Spec.Bound, 1, 32, 6)
	local := make([][]cellid.ID, len(localPolys))
	for i, p := range localPolys {
		local[i] = ds.Cover(p)
	}
	cross := make([][]cellid.ID, len(crossPolys))
	for i, p := range crossPolys {
		cross[i] = ds.Cover(p)
	}
	return &storeBenchEnv{ds: ds, local: local, cross: cross,
		polys: append(localPolys, crossPolys...)}
}

var storeBenchReqs = []geoblocks.AggRequest{geoblocks.Count(), geoblocks.Sum("fare_amount")}

func BenchmarkStoreShardLocalQuery(b *testing.B) {
	for _, shardLevel := range []int{0, 2} {
		b.Run(fmt.Sprintf("shardLevel=%d", shardLevel), func(b *testing.B) {
			e := newStoreBenchEnv(b, 150_000, shardLevel)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := e.ds.QueryCovering(e.local[i%len(e.local)], storeBenchReqs...); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkStoreCrossShardQuery(b *testing.B) {
	for _, shardLevel := range []int{0, 2} {
		b.Run(fmt.Sprintf("shardLevel=%d", shardLevel), func(b *testing.B) {
			e := newStoreBenchEnv(b, 150_000, shardLevel)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := e.ds.QueryCovering(e.cross[i%len(e.cross)], storeBenchReqs...); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkStoreBatchQuery(b *testing.B) {
	e := newStoreBenchEnv(b, 150_000, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.ds.QueryBatch(e.polys, storeBenchReqs...); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPlannerMaxError is the per-query latency view of the pr5
// sweep: the routed store path answering the same polygon workload at
// progressively looser error bounds. maxErr=0 is the exact baseline;
// each coarser admitted level should shrink the latency with it.
func BenchmarkPlannerMaxError(b *testing.B) {
	raw := dataset.Generate(dataset.NYCTaxi(), 150_000, 1)
	clean := raw.CleanRule()
	ds, err := store.Build("taxi", raw.Spec.Bound, raw.Spec.Schema, raw.Points, raw.Cols,
		store.Options{Level: 14, ShardLevel: 2, PyramidLevels: 6, Clean: &clean})
	if err != nil {
		b.Fatal(err)
	}
	polys := workload.Neighborhoods(raw.Spec.Bound, 5)[:16]
	dom := raw.Domain()
	for _, lvl := range []int{14, 12, 10, 8} {
		maxErr := 0.0
		if lvl < 14 {
			maxErr = dom.CellDiagonal(lvl)
		}
		b.Run(fmt.Sprintf("level=%d", lvl), func(b *testing.B) {
			opts := geoblocks.QueryOptions{MaxError: maxErr}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := ds.QueryOpts(polys[i%len(polys)], opts, storeBenchReqs...); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
