package main

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"geoblocks"
	"geoblocks/internal/store"
)

// TestGracefulShutdown verifies the serve loop: cancelling the context
// closes the listener but lets an in-flight request finish.
func TestGracefulShutdown(t *testing.T) {
	release := make(chan struct{})
	inFlight := make(chan struct{})
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/slow" {
			close(inFlight)
			<-release
		}
		fmt.Fprint(w, "ok")
	})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	served := make(chan error, 1)
	go func() { served <- serve(ctx, l, h, 5*time.Second) }()

	base := "http://" + l.Addr().String()
	resp, err := http.Get(base + "/fast")
	if err != nil {
		t.Fatalf("request before shutdown: %v", err)
	}
	resp.Body.Close()

	slowDone := make(chan error, 1)
	go func() {
		resp, err := http.Get(base + "/slow")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				err = fmt.Errorf("slow status %d", resp.StatusCode)
			}
		}
		slowDone <- err
	}()
	<-inFlight

	cancel() // initiate graceful shutdown with the slow request in flight
	time.Sleep(50 * time.Millisecond)
	close(release)

	if err := <-slowDone; err != nil {
		t.Fatalf("in-flight request did not complete cleanly: %v", err)
	}
	select {
	case err := <-served:
		if err != nil {
			t.Fatalf("serve returned %v, want nil on graceful shutdown", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatalf("serve did not return after shutdown")
	}
	if _, err := http.Get(base + "/fast"); err == nil {
		t.Fatalf("listener still accepting after shutdown")
	}
}

// TestParseLoad covers the -load flag parser.
func TestParseLoad(t *testing.T) {
	ls, err := parseLoad("taxi:5000")
	if err != nil || ls.spec != "taxi" || ls.rows != 5000 {
		t.Fatalf("parseLoad(taxi:5000) = %+v, %v", ls, err)
	}
	ls, err = parseLoad("osm")
	if err != nil || ls.spec != "osm" || ls.rows != 100_000 {
		t.Fatalf("parseLoad(osm) = %+v, %v", ls, err)
	}
	for _, bad := range []string{"mars", "taxi:x", "taxi:-5", "taxi:0"} {
		if _, err := parseLoad(bad); err == nil {
			t.Errorf("parseLoad(%q) accepted", bad)
		}
	}
}

// TestSnapshotAllAndRestoreDataDir is the daemon-level durability cycle:
// snapshotAll writes every dataset, restoreDataDir brings a fresh store
// back to the same answers, and corrupt snapshots are skipped without
// registering anything.
func TestSnapshotAllAndRestoreDataDir(t *testing.T) {
	bound := geoblocks.Rect{Min: geoblocks.Pt(0, 0), Max: geoblocks.Pt(10, 10)}
	pts := make([]geoblocks.Point, 500)
	vals := make([]float64, len(pts))
	for i := range pts {
		pts[i] = geoblocks.Pt(float64(i%100)/10, float64(i%97)/10)
		vals[i] = float64(i % 13)
	}
	st := store.New()
	for _, name := range []string{"alpha", "beta"} {
		d, err := store.Build(name, bound, geoblocks.NewSchema("v"), pts, [][]float64{vals},
			store.Options{Level: 8, ShardLevel: 1})
		if err != nil {
			t.Fatal(err)
		}
		if err := st.Add(d); err != nil {
			t.Fatal(err)
		}
	}
	dataDir := t.TempDir()
	var logs []string
	logf := func(format string, args ...any) { logs = append(logs, fmt.Sprintf(format, args...)) }
	if err := snapshotAll(st, dataDir, false, logf); err != nil {
		t.Fatalf("snapshotAll: %v (logs: %v)", err, logs)
	}

	want, err := mustGet(st, "alpha").QueryRect(bound, geoblocks.Count(), geoblocks.Sum("v"))
	if err != nil {
		t.Fatal(err)
	}

	// Non-snapshot clutter and corrupt snapshots must be skipped.
	if err := os.MkdirAll(filepath.Join(dataDir, "not-a-snapshot"), 0o755); err != nil {
		t.Fatal(err)
	}
	corruptManifest := filepath.Join(dataDir, "beta", "manifest.json")
	if err := os.Truncate(corruptManifest, 10); err != nil {
		t.Fatal(err)
	}

	st2 := store.New()
	logs = nil
	if err := restoreDataDir(st2, dataDir, logf); err != nil {
		t.Fatalf("restoreDataDir: %v", err)
	}
	if names := st2.Names(); len(names) != 1 || names[0] != "alpha" {
		t.Fatalf("restored %v, want [alpha] (logs: %v)", names, logs)
	}
	got, err := mustGet(st2, "alpha").QueryRect(bound, geoblocks.Count(), geoblocks.Sum("v"))
	if err != nil {
		t.Fatal(err)
	}
	if got.Count != want.Count || got.Values[0] != want.Values[0] {
		t.Fatalf("restored answers differ: %+v vs %+v", got, want)
	}
	joined := strings.Join(logs, "\n")
	if !strings.Contains(joined, "beta") {
		t.Fatalf("corrupt snapshot skip not logged: %q", joined)
	}
}

func mustGet(st *store.Store, name string) *store.Dataset {
	d, ok := st.Get(name)
	if !ok {
		panic("dataset " + name + " missing")
	}
	return d
}

// TestRestoreDataDirUsesDirectoryNames pins the directory-name
// precedence: a copied snapshot directory restores as a dataset named
// after the directory, it does not collide with the original under the
// manifest's internal name.
func TestRestoreDataDirUsesDirectoryNames(t *testing.T) {
	bound := geoblocks.Rect{Min: geoblocks.Pt(0, 0), Max: geoblocks.Pt(10, 10)}
	pts := []geoblocks.Point{geoblocks.Pt(1, 1), geoblocks.Pt(8, 8), geoblocks.Pt(4, 6)}
	d, err := store.Build("alpha", bound, geoblocks.NewSchema("v"), pts, [][]float64{{1, 2, 3}},
		store.Options{Level: 6, ShardLevel: 1})
	if err != nil {
		t.Fatal(err)
	}
	dataDir := t.TempDir()
	if _, err := d.Snapshot(filepath.Join(dataDir, "alpha")); err != nil {
		t.Fatal(err)
	}
	// A backup copy next to the live snapshot — its manifest still says
	// "alpha" inside.
	if err := os.CopyFS(filepath.Join(dataDir, "alpha-backup"), os.DirFS(filepath.Join(dataDir, "alpha"))); err != nil {
		t.Fatal(err)
	}

	st := store.New()
	if err := restoreDataDir(st, dataDir, func(string, ...any) {}); err != nil {
		t.Fatal(err)
	}
	names := st.Names()
	if len(names) != 2 || names[0] != "alpha" || names[1] != "alpha-backup" {
		t.Fatalf("restored %v, want [alpha alpha-backup]", names)
	}
}
