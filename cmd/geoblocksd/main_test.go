package main

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"testing"
	"time"
)

// TestGracefulShutdown verifies the serve loop: cancelling the context
// closes the listener but lets an in-flight request finish.
func TestGracefulShutdown(t *testing.T) {
	release := make(chan struct{})
	inFlight := make(chan struct{})
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/slow" {
			close(inFlight)
			<-release
		}
		fmt.Fprint(w, "ok")
	})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	served := make(chan error, 1)
	go func() { served <- serve(ctx, l, h, 5*time.Second) }()

	base := "http://" + l.Addr().String()
	resp, err := http.Get(base + "/fast")
	if err != nil {
		t.Fatalf("request before shutdown: %v", err)
	}
	resp.Body.Close()

	slowDone := make(chan error, 1)
	go func() {
		resp, err := http.Get(base + "/slow")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				err = fmt.Errorf("slow status %d", resp.StatusCode)
			}
		}
		slowDone <- err
	}()
	<-inFlight

	cancel() // initiate graceful shutdown with the slow request in flight
	time.Sleep(50 * time.Millisecond)
	close(release)

	if err := <-slowDone; err != nil {
		t.Fatalf("in-flight request did not complete cleanly: %v", err)
	}
	select {
	case err := <-served:
		if err != nil {
			t.Fatalf("serve returned %v, want nil on graceful shutdown", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatalf("serve did not return after shutdown")
	}
	if _, err := http.Get(base + "/fast"); err == nil {
		t.Fatalf("listener still accepting after shutdown")
	}
}

// TestParseLoad covers the -load flag parser.
func TestParseLoad(t *testing.T) {
	ls, err := parseLoad("taxi:5000")
	if err != nil || ls.spec != "taxi" || ls.rows != 5000 {
		t.Fatalf("parseLoad(taxi:5000) = %+v, %v", ls, err)
	}
	ls, err = parseLoad("osm")
	if err != nil || ls.spec != "osm" || ls.rows != 100_000 {
		t.Fatalf("parseLoad(osm) = %+v, %v", ls, err)
	}
	for _, bad := range []string{"mars", "taxi:x", "taxi:-5", "taxi:0"} {
		if _, err := parseLoad(bad); err == nil {
			t.Errorf("parseLoad(%q) accepted", bad)
		}
	}
}
