// Command geoblocksd serves spatially sharded GeoBlock datasets over
// HTTP/JSON: the serving daemon on top of internal/store.
//
// Usage:
//
//	geoblocksd [-addr :8080] [-load spec[:rows]]... [-level N]
//	           [-shard-level N] [-cache F] [-cache-refresh N]
//	           [-pyramid-levels N] [-result-cache-bytes N]
//	           [-result-cache-min-hits N] [-seed N] [-drain D]
//	           [-data-dir DIR] [-snapshot-on-exit]
//	           [-compact-interval D] [-delta-max-rows N]
//	           [-mmap] [-resident-budget BYTES]
//	           [-cluster-config FILE] [-coordinator] [-peer-addr ADDR]
//
// Each -load builds one synthetic dataset at startup (spec taxi, tweets
// or osm; default 100000 rows), registered under the spec name. More
// datasets — with per-dataset level, sharding, cache and pyramid
// configuration — can be created at runtime via POST /v1/datasets.
//
// -pyramid-levels derives that many coarser grid levels per shard; the
// query planner then answers /v1/query requests carrying "max_error" at
// the coarsest level satisfying the bound (responses report the achieved
// level and bound, /v1/stats the pyramid memory cost).
//
// -result-cache-bytes attaches the dataset-level result cache to every
// -load dataset with that byte budget (0 disables it);
// -result-cache-min-hits is its admission floor. Restored snapshots keep
// the configuration recorded in their manifest instead. /v1/stats
// reports hit/miss/hotness counters, /metrics the
// geoblocks_resultcache_* series; docs/OPERATIONS.md has the tuning
// runbook.
//
// With -data-dir the daemon is durable: every snapshot directory under
// DIR is restored at startup (corrupt or version-mismatched snapshots
// are skipped with an error log and register nothing), the snapshot
// endpoint defaults to DIR/<name>, and -snapshot-on-exit snapshots every
// registered dataset into DIR after the graceful drain, so the next
// start resumes with the same data. docs/FORMAT.md specifies the on-disk
// artifacts; docs/OPERATIONS.md has the runbook.
//
// Streaming ingest (POST /v1/datasets/{name}/rows) appends rows into
// per-shard delta blocks served alongside the immutable base; a
// background compactor folds them into the base every -compact-interval
// (and immediately when the pending backlog passes half of
// -delta-max-rows; at the full cap ingest returns 503 until the fold
// catches up). With -data-dir every acknowledged batch is fsynced to
// DIR/<name>.wal before the ack and replayed after a crash or restart,
// so no acknowledged row is lost and none is double-counted
// (docs/FORMAT.md Sec. 9; docs/OPERATIONS.md "Streaming ingest" is the
// runbook).
//
// -mmap serves format-v3 snapshots in place: restore validates only
// manifests and shard metadata (startup cost independent of data
// volume), each shard's data is mmap'd, checksummed and pyramid-derived
// on its first query, and -resident-budget bounds the total materialised
// memory with LRU eviction (0 = unlimited; evicted shards re-fault on
// demand). Mapped datasets are read-only — updates need an eager
// restart — and all snapshots the daemon writes under -mmap use format
// v3, so they restore in place next start; version-1 snapshots still
// restore eagerly. /v1/stats and /metrics report mapped vs resident
// bytes, shard faults and evictions. docs/OPERATIONS.md Sec. "Serving
// snapshots from disk" is the runbook.
//
// Cluster mode (-cluster-config FILE) makes the node a member of a
// geoblocksd cluster: FILE is the shard→node assignment (a JSON map of
// named nodes, a replication factor and an epoch — docs/OPERATIONS.md
// "Cluster serving" specifies it), -peer-addr names which entry this
// process is (matched against node name or addr; defaults to the single
// entry whose addr matches -addr), and the node serves the internal
// partial-query endpoint peers scatter to. With -coordinator, /v1/query
// additionally routes through the cluster scatter-gather: shards this
// node owns answer in process, remote shards are fetched from their
// replica chains (per-request timeouts, bounded retries with backoff,
// hedged requests, failover) and merged in global shard order — answers
// are bit-identical to single-node for COUNT/MIN/MAX, SUM within the
// documented bound. SIGHUP reloads the assignment file (epoch must
// change); a shard with no live replica fails the query with a typed
// 503 naming the shard, never a silently partial answer.
//
// Endpoints (full reference with curl examples in docs/OPERATIONS.md):
//
//	GET    /v1/datasets                 list datasets
//	POST   /v1/datasets                 create a dataset (synthetic or from snapshot)
//	DELETE /v1/datasets/{name}          drop a dataset (?purge=1 also removes its snapshot and WAL)
//	POST   /v1/datasets/{name}/rows     ingest a batch of rows (JSON or NDJSON)
//	POST   /v1/datasets/{name}/compact  fold pending delta rows into the base
//	POST   /v1/datasets/{name}/snapshot write a durable snapshot
//	POST   /v1/query                    polygon / rect / batch aggregate query
//	POST   /internal/v1/partial         peer partial query (cluster mode only)
//	GET    /v1/stats                    detailed statistics (?dataset=NAME)
//	GET    /metrics                     Prometheus-style counters
//
// The daemon shuts down gracefully on SIGINT/SIGTERM: the listener closes
// immediately, in-flight requests get -drain (default 5s) to finish.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"time"

	"geoblocks/internal/cluster"
	"geoblocks/internal/httpapi"
	"geoblocks/internal/resultcache"
	"geoblocks/internal/snapshot"
	"geoblocks/internal/store"
)

// loadSpec is one -load argument: a synthetic dataset to build at startup.
type loadSpec struct {
	spec string
	rows int
}

func parseLoad(arg string) (loadSpec, error) {
	ls := loadSpec{rows: 100_000}
	name, rows, ok := strings.Cut(arg, ":")
	ls.spec = name
	if ok {
		n, err := strconv.Atoi(rows)
		if err != nil || n <= 0 {
			return ls, fmt.Errorf("bad -load row count %q", rows)
		}
		ls.rows = n
	}
	if _, known := httpapi.SpecByName(ls.spec); !known {
		return ls, fmt.Errorf("unknown -load spec %q (taxi, tweets, osm)", ls.spec)
	}
	return ls, nil
}

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		level        = flag.Int("level", httpapi.DefaultLevel, "block grid level for -load datasets")
		shardLevel   = flag.Int("shard-level", 2, "shard prefix level for -load datasets (0 = unsharded)")
		cache        = flag.Float64("cache", 0.10, "per-shard cache aggregate threshold for -load datasets (0 = no cache)")
		cacheRefresh = flag.Int("cache-refresh", 2000, "per-shard cache auto-refresh cadence in queries (0 = manual)")
		pyramid      = flag.Int("pyramid-levels", 4, "coarser pyramid levels per shard for -load datasets (0 = full resolution only)")
		rcBytes      = flag.Int64("result-cache-bytes", 64<<20, "result cache byte budget for -load datasets (0 = no result cache)")
		rcMinHits    = flag.Int("result-cache-min-hits", resultcache.DefaultMinHits, "result cache admission floor for -load datasets (0 = admit on first miss)")
		seed         = flag.Int64("seed", 1, "generation seed for -load datasets")
		drain        = flag.Duration("drain", 5*time.Second, "graceful-shutdown drain timeout")
		dataDir      = flag.String("data-dir", "", "snapshot directory: restore all snapshots at startup, default target for the snapshot endpoint")
		snapOnExit   = flag.Bool("snapshot-on-exit", false, "snapshot every dataset into -data-dir after the graceful drain")
		compactEvery = flag.Duration("compact-interval", 5*time.Second, "background delta compaction cadence (0 folds only on backpressure kicks)")
		deltaMaxRows = flag.Int64("delta-max-rows", 2_000_000, "ingest backpressure cap on pending delta rows per dataset (0 = uncapped)")
		mmapServe    = flag.Bool("mmap", false, "serve format-v3 snapshots in place via mmap: metadata-only restore, shards fault in on first query; snapshots are written in format v3")
		residentMax  = flag.Int64("resident-budget", 0, "resident-memory budget in bytes for mmap-served shards, LRU-evicted above it (0 = unlimited; needs -mmap)")
		clusterCfg   = flag.String("cluster-config", "", "cluster assignment file (JSON; see docs/OPERATIONS.md): join a geoblocksd cluster and serve the internal partial endpoint; SIGHUP reloads it")
		coordinator  = flag.Bool("coordinator", false, "route /v1/query through the cluster scatter-gather (needs -cluster-config)")
		peerAddr     = flag.String("peer-addr", "", "this node's identity in the assignment, matched against node name or addr (default: the node whose addr matches -addr)")
	)
	var loads []loadSpec
	flag.Func("load", "synthetic dataset to serve, spec[:rows] (taxi, tweets, osm); repeatable", func(arg string) error {
		ls, err := parseLoad(arg)
		if err != nil {
			return err
		}
		loads = append(loads, ls)
		return nil
	})
	flag.Parse()
	if *snapOnExit && *dataDir == "" {
		log.Fatalf("geoblocksd: -snapshot-on-exit requires -data-dir")
	}
	if *coordinator && *clusterCfg == "" {
		log.Fatalf("geoblocksd: -coordinator requires -cluster-config")
	}
	if *peerAddr != "" && *clusterCfg == "" {
		log.Fatalf("geoblocksd: -peer-addr requires -cluster-config")
	}
	if *residentMax != 0 && !*mmapServe {
		log.Fatalf("geoblocksd: -resident-budget requires -mmap")
	}
	if *residentMax < 0 {
		log.Fatalf("geoblocksd: -resident-budget must be >= 0, got %d", *residentMax)
	}

	if *deltaMaxRows < 0 {
		log.Fatalf("geoblocksd: -delta-max-rows must be >= 0, got %d", *deltaMaxRows)
	}

	st := store.New()
	// The ingest policy must be in place before any dataset registers:
	// restores replay their WAL inside Add, -load datasets get their
	// compactor there too. With -data-dir, acknowledged ingests are
	// durable (fsynced to <data-dir>/<name>.wal before the ack); without
	// it, ingest works but is volatile.
	st.EnableIngest(store.IngestConfig{
		WALDir:          *dataDir,
		DeltaMaxRows:    *deltaMaxRows,
		CompactInterval: *compactEvery,
		OnError:         func(err error) { log.Printf("ERROR: background compaction: %v", err) },
	})
	if *mmapServe {
		st.EnableMmap(*residentMax)
		if *residentMax > 0 {
			log.Printf("mmap serving enabled, resident budget %.1f MiB", float64(*residentMax)/(1<<20))
		} else {
			log.Printf("mmap serving enabled, unlimited resident budget")
		}
	}
	if *dataDir != "" {
		if err := os.MkdirAll(*dataDir, 0o755); err != nil {
			log.Fatalf("geoblocksd: %v", err)
		}
		if err := restoreDataDir(st, *dataDir, log.Printf); err != nil {
			log.Fatalf("geoblocksd: %v", err)
		}
	}
	for _, ls := range loads {
		if _, ok := st.Get(ls.spec); ok {
			log.Printf("skipping -load %s: already registered (restored from snapshot, or duplicate -load)", ls.spec)
			continue
		}
		start := time.Now()
		d, err := httpapi.BuildSynthetic(ls.spec, ls.spec, ls.rows, *seed, store.Options{
			Level:              *level,
			ShardLevel:         *shardLevel,
			CacheThreshold:     *cache,
			CacheAutoRefresh:   *cacheRefresh,
			PyramidLevels:      *pyramid,
			ResultCacheBytes:   *rcBytes,
			ResultCacheMinHits: *rcMinHits,
		})
		if err != nil {
			log.Fatalf("geoblocksd: loading %s: %v", ls.spec, err)
		}
		if err := st.Add(d); err != nil {
			log.Fatalf("geoblocksd: %v", err)
		}
		s := d.Stats()
		log.Printf("loaded %s: %d tuples, %d shards at level %d (block level %d) in %v",
			s.Name, s.Tuples, s.NumShards, s.ShardLevel, s.Level, time.Since(start).Round(time.Millisecond))
	}

	var co *cluster.Coordinator
	if *clusterCfg != "" {
		cfg, err := cluster.LoadFile(*clusterCfg)
		if err != nil {
			log.Fatalf("geoblocksd: %v", err)
		}
		self, err := resolveSelf(cfg, *peerAddr, *addr)
		if err != nil {
			log.Fatalf("geoblocksd: %v", err)
		}
		co, err = cluster.New(st, cfg, self)
		if err != nil {
			log.Fatalf("geoblocksd: %v", err)
		}
		role := "peer"
		if *coordinator {
			role = "coordinator"
		}
		if self == "" {
			log.Printf("cluster mode: not in the assignment's node list; acting as a pure router")
		}
		log.Printf("cluster mode (%s): self %q, epoch %d, %d node(s), replication %d",
			role, self, co.Epoch(), len(cfg.Nodes), co.Assignment().Replication())
		// SIGHUP reloads the assignment file: placement, epoch and client
		// tuning swap in for subsequent queries; a bad file is rejected
		// and the running assignment stays.
		hup := make(chan os.Signal, 1)
		signal.Notify(hup, syscall.SIGHUP)
		go func() {
			for range hup {
				cfg, err := cluster.LoadFile(*clusterCfg)
				if err != nil {
					log.Printf("ERROR: reloading cluster config: %v", err)
					continue
				}
				if err := co.Reload(cfg); err != nil {
					log.Printf("ERROR: reloading cluster config: %v", err)
					continue
				}
				log.Printf("cluster assignment reloaded: epoch %d, %d node(s)", cfg.Epoch, len(cfg.Nodes))
			}
		}()
	}

	handler := httpapi.NewHandler(st, httpapi.Config{
		DataDir:     *dataDir,
		SnapshotV3:  *mmapServe,
		Cluster:     co,
		Coordinator: *coordinator,
	})
	l, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("geoblocksd: %v", err)
	}
	log.Printf("serving %d dataset(s) on %s", len(st.Names()), l.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := serve(ctx, l, handler, *drain); err != nil {
		log.Fatalf("geoblocksd: %v", err)
	}
	if *snapOnExit {
		// Before the compactors stop: the snapshot path folds pending
		// deltas itself and truncates each dataset's WAL to the
		// un-snapshotted tail.
		if err := snapshotAll(st, *dataDir, *mmapServe, log.Printf); err != nil {
			log.Fatalf("geoblocksd: %v", err)
		}
	}
	st.Close()
	log.Printf("shut down cleanly")
}

// resolveSelf identifies this process in the assignment's node list:
// by -peer-addr (matched against node name, then addr; a mismatch is
// fatal — a mis-identified node would answer shards it doesn't own the
// stats for), or by the listen address. No match without an explicit
// -peer-addr means the node runs as a pure router (empty self): it
// coordinates but owns no shards.
func resolveSelf(cfg *cluster.Config, peerAddr, listenAddr string) (string, error) {
	if peerAddr != "" {
		for _, n := range cfg.Nodes {
			if n.Name == peerAddr || n.Addr == peerAddr {
				return n.Name, nil
			}
		}
		return "", fmt.Errorf("-peer-addr %q matches no assignment node (by name or addr)", peerAddr)
	}
	for _, n := range cfg.Nodes {
		if n.Addr == listenAddr {
			return n.Name, nil
		}
	}
	return "", nil
}

// restoreDataDir sweeps crash remnants of interrupted saves
// (snapshot.Recover), then restores every snapshot directory found under
// dataDir. Each snapshot registers under its *directory* name — the
// name the snapshot endpoint writes to and purge removes — so a copied
// or renamed snapshot directory becomes a dataset of that name instead
// of colliding with the original. A corrupt, version-mismatched or
// otherwise unloadable snapshot is skipped with an error log — it
// registers nothing (fail closed) but does not take down the datasets
// that do load.
func restoreDataDir(st *store.Store, dataDir string, logf func(string, ...any)) error {
	sweepStart := time.Now()
	actions, err := snapshot.Recover(dataDir)
	for _, a := range actions {
		logf("snapshot sweep: %s", a)
	}
	if err != nil {
		return err
	}
	entries, err := os.ReadDir(dataDir)
	if err != nil {
		return err
	}
	res := st.Residency()
	var datasets, shards, mapped int
	var tuples uint64
	var bytes int64
	for _, e := range entries {
		if !e.IsDir() || strings.HasPrefix(e.Name(), ".") {
			continue
		}
		dir := filepath.Join(dataDir, e.Name())
		if _, err := os.Stat(filepath.Join(dir, snapshot.ManifestFile)); err != nil {
			logf("skipping %s: no snapshot manifest", dir)
			continue
		}
		start := time.Now()
		var d *store.Dataset
		if res != nil {
			d, err = store.OpenMapped(dir, e.Name(), res)
		} else {
			d, err = store.Open(dir, e.Name())
		}
		if err != nil {
			logf("ERROR: skipping snapshot %s: %v", dir, err)
			continue
		}
		if err := st.Add(d); err != nil {
			logf("ERROR: skipping snapshot %s: %v", dir, err)
			continue
		}
		s := d.Stats()
		mode := "restored"
		if s.Mapped {
			mode = "mapped"
			mapped++
		}
		logf("%s %s: %d tuples, %d shards at level %d (block level %d) in %v",
			mode, s.Name, s.Tuples, s.NumShards, s.ShardLevel, s.Level, time.Since(start).Round(time.Millisecond))
		datasets++
		shards += s.NumShards
		tuples += s.Tuples
		bytes += int64(s.SizeBytes)
	}
	// One aggregate line at completion: how long the whole data
	// directory took to come up and how much it holds — the number to
	// watch when tuning startup (eager decode vs -mmap).
	logf("restore complete: %d dataset(s) (%d mapped), %d shards, %d tuples, %.1f MiB in %v",
		datasets, mapped, shards, tuples, float64(bytes)/(1<<20), time.Since(sweepStart).Round(time.Millisecond))
	return nil
}

// snapshotAll writes one snapshot per registered dataset into dataDir,
// replacing previous snapshots atomically — in the mappable format v3
// when the daemon runs with -mmap, so the next start restores in place.
// Datasets whose names are not safe path elements are skipped with a
// log line (the HTTP API refuses to create such names; -load specs are
// always safe).
func snapshotAll(st *store.Store, dataDir string, v3 bool, logf func(string, ...any)) error {
	var firstErr error
	for _, name := range st.Names() {
		d, ok := st.Get(name)
		if !ok {
			continue
		}
		if !httpapi.ValidDatasetName(name) {
			logf("not snapshotting %q: unsafe name", name)
			continue
		}
		start := time.Now()
		var m snapshot.Manifest
		var err error
		if v3 {
			m, err = d.SnapshotV3(filepath.Join(dataDir, name))
		} else {
			m, err = d.Snapshot(filepath.Join(dataDir, name))
		}
		if err != nil {
			logf("ERROR: snapshotting %s: %v", name, err)
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		var total int64
		for _, sh := range m.Shards {
			total += sh.Bytes
		}
		logf("snapshotted %s: %d shards, %.1f MiB in %v",
			name, len(m.Shards), float64(total)/(1<<20), time.Since(start).Round(time.Millisecond))
	}
	return firstErr
}

// serve runs an HTTP server on l until ctx is cancelled, then shuts down
// gracefully: the listener closes immediately, in-flight requests get
// drainTimeout to complete. It returns nil on a clean (signal-initiated)
// shutdown and the serve error otherwise.
func serve(ctx context.Context, l net.Listener, h http.Handler, drainTimeout time.Duration) error {
	srv := &http.Server{
		Handler: h,
		// Bound slow clients so trickled headers and abandoned idle
		// connections cannot pin goroutines and fds forever; request
		// bodies are separately capped by the handler (httpapi).
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(l) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	shutCtx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	return srv.Shutdown(shutCtx)
}
