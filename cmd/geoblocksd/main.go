// Command geoblocksd serves spatially sharded GeoBlock datasets over
// HTTP/JSON: the serving daemon on top of internal/store.
//
// Usage:
//
//	geoblocksd [-addr :8080] [-load spec[:rows]]... [-level N]
//	           [-shard-level N] [-cache F] [-cache-refresh N]
//	           [-seed N] [-drain D]
//
// Each -load builds one synthetic dataset at startup (spec taxi, tweets
// or osm; default 100000 rows), registered under the spec name. More
// datasets — with per-dataset level, sharding and cache configuration —
// can be created at runtime via POST /v1/datasets.
//
// Endpoints (full reference with curl examples in docs/OPERATIONS.md):
//
//	GET    /v1/datasets        list datasets
//	POST   /v1/datasets        create a synthetic dataset
//	DELETE /v1/datasets/{name} drop a dataset
//	POST   /v1/query           polygon / rect / batch aggregate query
//	GET    /v1/stats           detailed statistics (?dataset=NAME)
//	GET    /metrics            Prometheus-style counters
//
// The daemon shuts down gracefully on SIGINT/SIGTERM: the listener closes
// immediately, in-flight requests get -drain (default 5s) to finish.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"geoblocks/internal/httpapi"
	"geoblocks/internal/store"
)

// loadSpec is one -load argument: a synthetic dataset to build at startup.
type loadSpec struct {
	spec string
	rows int
}

func parseLoad(arg string) (loadSpec, error) {
	ls := loadSpec{rows: 100_000}
	name, rows, ok := strings.Cut(arg, ":")
	ls.spec = name
	if ok {
		n, err := strconv.Atoi(rows)
		if err != nil || n <= 0 {
			return ls, fmt.Errorf("bad -load row count %q", rows)
		}
		ls.rows = n
	}
	if _, known := httpapi.SpecByName(ls.spec); !known {
		return ls, fmt.Errorf("unknown -load spec %q (taxi, tweets, osm)", ls.spec)
	}
	return ls, nil
}

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		level        = flag.Int("level", httpapi.DefaultLevel, "block grid level for -load datasets")
		shardLevel   = flag.Int("shard-level", 2, "shard prefix level for -load datasets (0 = unsharded)")
		cache        = flag.Float64("cache", 0.10, "per-shard cache aggregate threshold for -load datasets (0 = no cache)")
		cacheRefresh = flag.Int("cache-refresh", 2000, "per-shard cache auto-refresh cadence in queries (0 = manual)")
		seed         = flag.Int64("seed", 1, "generation seed for -load datasets")
		drain        = flag.Duration("drain", 5*time.Second, "graceful-shutdown drain timeout")
	)
	var loads []loadSpec
	flag.Func("load", "synthetic dataset to serve, spec[:rows] (taxi, tweets, osm); repeatable", func(arg string) error {
		ls, err := parseLoad(arg)
		if err != nil {
			return err
		}
		loads = append(loads, ls)
		return nil
	})
	flag.Parse()

	st := store.New()
	for _, ls := range loads {
		start := time.Now()
		d, err := httpapi.BuildSynthetic(ls.spec, ls.spec, ls.rows, *seed, store.Options{
			Level:            *level,
			ShardLevel:       *shardLevel,
			CacheThreshold:   *cache,
			CacheAutoRefresh: *cacheRefresh,
		})
		if err != nil {
			log.Fatalf("geoblocksd: loading %s: %v", ls.spec, err)
		}
		if err := st.Add(d); err != nil {
			log.Fatalf("geoblocksd: %v", err)
		}
		s := d.Stats()
		log.Printf("loaded %s: %d tuples, %d shards at level %d (block level %d) in %v",
			s.Name, s.Tuples, s.NumShards, s.ShardLevel, s.Level, time.Since(start).Round(time.Millisecond))
	}

	handler := httpapi.NewHandler(st)
	l, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("geoblocksd: %v", err)
	}
	log.Printf("serving %d dataset(s) on %s", len(loads), l.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := serve(ctx, l, handler, *drain); err != nil {
		log.Fatalf("geoblocksd: %v", err)
	}
	log.Printf("shut down cleanly")
}

// serve runs an HTTP server on l until ctx is cancelled, then shuts down
// gracefully: the listener closes immediately, in-flight requests get
// drainTimeout to complete. It returns nil on a clean (signal-initiated)
// shutdown and the serve error otherwise.
func serve(ctx context.Context, l net.Listener, h http.Handler, drainTimeout time.Duration) error {
	srv := &http.Server{
		Handler: h,
		// Bound slow clients so trickled headers and abandoned idle
		// connections cannot pin goroutines and fds forever; request
		// bodies are separately capped by the handler (httpapi).
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(l) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	shutCtx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	return srv.Shutdown(shutCtx)
}
