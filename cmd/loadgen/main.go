// Command loadgen drives a running geoblocksd with a closed- or
// open-loop workload and reports latency percentiles, so serving-tier
// performance claims are made under concurrency, not from solo-request
// means.
//
// Usage:
//
//	loadgen [-addr http://localhost:8080] [-dataset taxi]
//	        [-mode closed|open] [-workers 8] [-duration 10s] [-rate 500]
//	        [-mix query=1] [-pool 256] [-zipf 1.3] [-seed 1]
//	        [-max-error 0] [-no-cache] [-join-polys 64] [-agg count] [-json]
//
// The traffic is a Zipfian hotspot stream (workload.ZipfianHotspot): a
// fixed pool of small polygons over the dataset's bound (fetched from
// GET /v1/datasets), drawn with rank frequencies following a Zipf law —
// a few hot regions dominate, the tail stays long, which is the shape
// the serving tier's result cache adapts to. -mix weights the operation
// types per request:
//
//	query  one POST /v1/query with a single pool polygon
//	join   one POST /v1/join over -join-polys pool draws
//
// e.g. -mix query=0.8,join=0.2. Closed mode runs -workers back-to-back
// request loops (throughput adapts to latency); open mode schedules
// requests at -rate per second and measures each latency from its
// scheduled start, so queueing delay under overload lands in the
// percentiles instead of being silently omitted (see
// internal/loadharness). -json emits the loadharness.Report for
// scripting; the default output is one human-readable line.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"geoblocks/internal/geom"
	"geoblocks/internal/loadharness"
	"geoblocks/internal/workload"
)

func main() {
	cfg := config{}
	flag.StringVar(&cfg.addr, "addr", "http://localhost:8080", "geoblocksd base URL")
	flag.StringVar(&cfg.dataset, "dataset", "taxi", "dataset to query")
	flag.StringVar(&cfg.mode, "mode", "closed", "load mode: closed (workers loop back to back) or open (fixed arrival rate)")
	flag.IntVar(&cfg.workers, "workers", 8, "concurrent workers")
	flag.DurationVar(&cfg.duration, "duration", 10*time.Second, "run length")
	flag.Float64Var(&cfg.rate, "rate", 500, "open-loop arrival rate, requests/s")
	flag.StringVar(&cfg.mix, "mix", "query=1", "operation mix, op=weight comma-separated (ops: query, join)")
	flag.IntVar(&cfg.pool, "pool", 256, "hotspot polygon pool size")
	flag.Float64Var(&cfg.zipf, "zipf", 1.3, "Zipf exponent of the hotspot draw (> 1; larger = hotter)")
	flag.Int64Var(&cfg.seed, "seed", 1, "workload seed (pool placement and draw order)")
	flag.Float64Var(&cfg.maxError, "max-error", 0, "max_error planner bound sent with every request (0 = exact)")
	flag.BoolVar(&cfg.noCache, "no-cache", false, "send no_cache: bypass the serving tier's result cache")
	flag.IntVar(&cfg.joinPolys, "join-polys", 64, "polygons per join request")
	flag.StringVar(&cfg.aggs, "agg", "count", "aggregates, comma-separated func or func:col (count, sum, min, max, avg)")
	flag.BoolVar(&cfg.jsonOut, "json", false, "emit the report as JSON instead of the human line")
	flag.Parse()
	if err := run(cfg, os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
		os.Exit(1)
	}
}

type config struct {
	addr, dataset, mode string
	workers             int
	duration            time.Duration
	rate                float64
	mix                 string
	pool                int
	zipf                float64
	seed                int64
	maxError            float64
	noCache             bool
	joinPolys           int
	aggs                string
	jsonOut             bool
}

// op is one weighted entry of the traffic mix.
type op struct {
	name   string
	weight float64
}

func parseMix(s string) ([]op, error) {
	var out []op
	var total float64
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, ws, has := strings.Cut(part, "=")
		w := 1.0
		if has {
			var err error
			if w, err = strconv.ParseFloat(ws, 64); err != nil || w < 0 {
				return nil, fmt.Errorf("bad mix weight %q", part)
			}
		}
		if name != "query" && name != "join" {
			return nil, fmt.Errorf("unknown mix op %q (query, join)", name)
		}
		out = append(out, op{name, w})
		total += w
	}
	if len(out) == 0 || total <= 0 {
		return nil, fmt.Errorf("empty mix %q", s)
	}
	return out, nil
}

type aggJSON struct {
	Func string `json:"func"`
	Col  string `json:"col,omitempty"`
}

func parseAggs(s string) ([]aggJSON, error) {
	var out []aggJSON
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		fn, col, _ := strings.Cut(part, ":")
		switch fn {
		case "count":
		case "sum", "min", "max", "avg":
			if col == "" {
				return nil, fmt.Errorf("aggregate %q needs a column (func:col)", fn)
			}
		default:
			return nil, fmt.Errorf("unknown aggregate %q", fn)
		}
		out = append(out, aggJSON{Func: fn, Col: col})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty aggregate list %q", s)
	}
	return out, nil
}

// fetchBound asks the daemon for the dataset's spatial bound, the domain
// the hotspot pool is placed in.
func fetchBound(client *http.Client, addr, dataset string) (geom.Rect, error) {
	resp, err := client.Get(addr + "/v1/datasets")
	if err != nil {
		return geom.Rect{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return geom.Rect{}, fmt.Errorf("GET /v1/datasets: status %d", resp.StatusCode)
	}
	var list struct {
		Datasets []struct {
			Name  string     `json:"name"`
			Bound [4]float64 `json:"bound"`
		} `json:"datasets"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		return geom.Rect{}, fmt.Errorf("decoding dataset list: %w", err)
	}
	for _, d := range list.Datasets {
		if d.Name == dataset {
			return geom.Rect{Min: geom.Pt(d.Bound[0], d.Bound[1]), Max: geom.Pt(d.Bound[2], d.Bound[3])}, nil
		}
	}
	names := make([]string, len(list.Datasets))
	for i, d := range list.Datasets {
		names[i] = d.Name
	}
	return geom.Rect{}, fmt.Errorf("dataset %q not served (have: %s)", dataset, strings.Join(names, ", "))
}

// worker is one request loop's private state: its own Zipf draw sequence
// (deterministic per seed and worker index, no cross-worker locking) and
// a reusable body buffer.
type worker struct {
	rng  *rand.Rand
	zipf *rand.Zipf
	buf  bytes.Buffer
}

// requestBody is the wire form shared by /v1/query (Polygon set) and
// /v1/join (Polygons set).
type requestBody struct {
	Dataset  string         `json:"dataset"`
	Polygon  [][2]float64   `json:"polygon,omitempty"`
	Polygons [][][2]float64 `json:"polygons,omitempty"`
	Aggs     []aggJSON      `json:"aggs"`
	MaxError float64        `json:"max_error,omitempty"`
	NoCache  bool           `json:"no_cache,omitempty"`
}

func run(cfg config, out io.Writer) error {
	if cfg.mode != "closed" && cfg.mode != "open" {
		return fmt.Errorf("unknown -mode %q (closed, open)", cfg.mode)
	}
	if cfg.workers < 1 {
		return fmt.Errorf("-workers must be >= 1, got %d", cfg.workers)
	}
	if cfg.pool < 1 {
		return fmt.Errorf("-pool must be >= 1, got %d", cfg.pool)
	}
	if cfg.joinPolys < 1 {
		return fmt.Errorf("-join-polys must be >= 1, got %d", cfg.joinPolys)
	}
	if cfg.zipf <= 1 {
		return fmt.Errorf("-zipf must be > 1, got %v", cfg.zipf)
	}
	mix, err := parseMix(cfg.mix)
	if err != nil {
		return err
	}
	aggs, err := parseAggs(cfg.aggs)
	if err != nil {
		return err
	}
	addr := strings.TrimSuffix(cfg.addr, "/")
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	client := &http.Client{
		Timeout: 30 * time.Second,
		Transport: &http.Transport{
			MaxIdleConns:        cfg.workers * 2,
			MaxIdleConnsPerHost: cfg.workers * 2,
		},
	}

	bound, err := fetchBound(client, addr, cfg.dataset)
	if err != nil {
		return err
	}

	// The pool itself is shared (same seed → same polygons → cacheable
	// hot set); each worker draws ranks from its own sampler so the
	// stream needs no locking and stays deterministic per worker.
	hot := workload.ZipfianHotspot(bound, cfg.pool, cfg.zipf, cfg.seed)
	rings := make([][][2]float64, cfg.pool)
	for i, p := range hot.Pool() {
		outer := p.Outer()
		ring := make([][2]float64, len(outer))
		for j, v := range outer {
			ring[j] = [2]float64{v.X, v.Y}
		}
		rings[i] = ring
	}
	var cum []float64
	var total float64
	for _, o := range mix {
		total += o.weight
		cum = append(cum, total)
	}
	ws := make([]*worker, cfg.workers)
	for w := range ws {
		rng := rand.New(rand.NewSource(cfg.seed + int64(w)*7919 + 1))
		ws[w] = &worker{
			rng:  rng,
			zipf: rand.NewZipf(rng, cfg.zipf, 1, uint64(cfg.pool-1)),
		}
	}

	fire := func(wi int) error {
		w := ws[wi]
		body := requestBody{
			Dataset:  cfg.dataset,
			Aggs:     aggs,
			MaxError: cfg.maxError,
			NoCache:  cfg.noCache,
		}
		endpoint := "/v1/query"
		pick := w.rng.Float64() * total
		o := mix[len(mix)-1]
		for i, c := range cum {
			if pick < c {
				o = mix[i]
				break
			}
		}
		switch o.name {
		case "query":
			body.Polygon = rings[int(w.zipf.Uint64())]
		case "join":
			endpoint = "/v1/join"
			body.Polygons = make([][][2]float64, cfg.joinPolys)
			for i := range body.Polygons {
				body.Polygons[i] = rings[int(w.zipf.Uint64())]
			}
		}
		w.buf.Reset()
		if err := json.NewEncoder(&w.buf).Encode(body); err != nil {
			return err
		}
		resp, err := client.Post(addr+endpoint, "application/json", &w.buf)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		// Drain so the connection is reusable; the payload itself is not
		// the harness's concern.
		io.Copy(io.Discard, resp.Body)
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("%s: status %d", endpoint, resp.StatusCode)
		}
		return nil
	}

	var rep loadharness.Report
	if cfg.mode == "closed" {
		rep = loadharness.RunClosed(cfg.workers, cfg.duration, fire)
	} else {
		rep = loadharness.RunOpen(cfg.rate, cfg.workers, cfg.duration, fire)
	}
	if cfg.jsonOut {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		return enc.Encode(rep)
	}
	_, err = fmt.Fprintln(out, rep.String())
	return err
}
