// Command geobench regenerates the paper's evaluation tables and figures.
//
// Usage:
//
//	geobench [-quick] [-taxi-rows N] [-tweet-rows N] [-osm-rows N]
//	         [-seed N] [-o FILE] [-perf-json FILE] [-parallel] [experiment ...]
//
// With no experiment arguments every experiment runs in paper order. Each
// experiment prints an aligned text table with the same rows/series the
// paper reports; see EXPERIMENTS.md for the paper-vs-measured comparison.
//
// -perf-json runs the pr1 perf snapshot (prefix-sum SELECT fast path vs
// the preserved scan ablation across block levels) and writes the raw
// measurements to FILE; the committed BENCH_PR1.json is produced this way.
// With -parallel it instead runs the pr2 parallel bench mode — queries/sec
// at 1..GOMAXPROCS goroutines with and without the query cache, plus the
// SelectCoveringParallel fan-out — producing the committed BENCH_PR2.json.
// With -sharded it runs the pr3 sharded-store bench mode — store-routed
// queries/sec at shard levels 0..2 against the raw single-block kernel —
// producing the committed BENCH_PR3.json. With -snapshot it runs the pr4
// durability bench mode — snapshot save/restore wall time and MB/s
// against rebuild-from-rows at shard levels 0..2 — producing the
// committed BENCH_PR4.json. With -maxerror it runs the pr5 query-planner
// bench mode — latency/qps and cells visited across a MaxError sweep over
// the block pyramid, with every approximate answer checked against its
// guaranteed error bound — producing the committed BENCH_PR5.json. With
// -resultcache it runs the pr6 result-cache bench mode — a Zipfian
// hot-region stream served cache-off, cache-cold and cache-warm, with
// every cached answer checked against the uncached twin — producing the
// committed BENCH_PR6.json. With -mmapserve it runs the pr7 mapped-serving
// bench mode — format-v3 mmap restore vs eager v2 restore measured in
// fresh child processes (startup-to-first-answer, VmRSS, cold/warm
// latency, budget-forced eviction), with every answer asserted
// bit-identical in-run — producing the committed BENCH_PR7.json. With
// -ingest it runs the pr8 streaming-ingest bench mode — the same Zipfian
// read stream measured read-only and again while background ingesters
// append batches and the compactor folds them, with the final row count
// checked against the acknowledged rows — producing the committed
// BENCH_PR8.json. With -join it runs the pr10 join bench mode — the
// shared-grid join against N sequential queries (bit-identity and the
// 5x speedup floor asserted in-run) plus a closed-loop HTTP percentile
// baseline at 8 workers — producing the committed BENCH_PR10.json.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"time"

	"geoblocks/internal/experiments"
)

func main() {
	// The pr7 bench re-executes this binary as a serving child process so
	// its RSS and startup numbers are unpolluted by the parent's build
	// heap; the env var routes the child before any flag parsing.
	if os.Getenv("GEOBENCH_PR7_CHILD") != "" {
		experiments.PR7ChildMain()
		return
	}
	var (
		quick     = flag.Bool("quick", false, "run at reduced dataset sizes")
		taxiRows  = flag.Int("taxi-rows", 0, "override taxi dataset rows")
		tweetRows = flag.Int("tweet-rows", 0, "override tweets dataset rows")
		osmRows   = flag.Int("osm-rows", 0, "override OSM dataset rows")
		seed      = flag.Int64("seed", 1, "generation seed")
		out       = flag.String("o", "", "also write results to this file")
		list      = flag.Bool("list", false, "list experiments and exit")
		perfJSON  = flag.String("perf-json", "", "run the pr1 perf snapshot and write JSON to this file")
		parallel  = flag.Bool("parallel", false, "with -perf-json: run the pr2 parallel bench mode (queries/sec at 1..GOMAXPROCS goroutines) instead of pr1")
		sharded   = flag.Bool("sharded", false, "with -perf-json: run the pr3 sharded-store bench mode (store routing vs raw block) instead of pr1")
		snapMode  = flag.Bool("snapshot", false, "with -perf-json: run the pr4 durability bench mode (snapshot save/restore vs rebuild) instead of pr1")
		maxErr    = flag.Bool("maxerror", false, "with -perf-json: run the pr5 query-planner bench mode (latency/qps and covering work vs error bound) instead of pr1")
		resCache  = flag.Bool("resultcache", false, "with -perf-json: run the pr6 result-cache bench mode (Zipfian hot-region stream, cached vs uncached) instead of pr1")
		mmapServe = flag.Bool("mmapserve", false, "with -perf-json: run the pr7 mapped-serving bench mode (v3 mmap restore vs eager v2, child-process RSS) instead of pr1")
		ingest    = flag.Bool("ingest", false, "with -perf-json: run the pr8 streaming-ingest bench mode (read p50/p99 while ingesting + compacting vs read-only) instead of pr1")
		joinMode  = flag.Bool("join", false, "with -perf-json: run the pr10 join bench mode (shared-grid join vs N sequential queries + closed-loop HTTP percentiles) instead of pr1")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: geobench [flags] [experiment ...]\n\nexperiments:\n")
		for _, r := range experiments.All() {
			fmt.Fprintf(os.Stderr, "  %-8s %s\n", r.ID, r.Desc)
		}
		fmt.Fprintf(os.Stderr, "\nflags:\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, r := range experiments.All() {
			fmt.Printf("%-8s %s\n", r.ID, r.Desc)
		}
		return
	}

	cfg := experiments.Default()
	if *quick {
		cfg = experiments.Quick()
	}
	if *taxiRows > 0 {
		cfg.TaxiRows = *taxiRows
	}
	if *tweetRows > 0 {
		cfg.TweetRows = *tweetRows
	}
	if *osmRows > 0 {
		cfg.OSMRows = *osmRows
	}
	cfg.Seed = *seed

	if *perfJSON != "" {
		write := writePerfSnapshot
		modes := 0
		for _, m := range []bool{*parallel, *sharded, *snapMode, *maxErr, *resCache, *mmapServe, *ingest, *joinMode} {
			if m {
				modes++
			}
		}
		switch {
		case modes > 1:
			fmt.Fprintf(os.Stderr, "geobench: -parallel, -sharded, -snapshot, -maxerror, -resultcache, -mmapserve, -ingest and -join are mutually exclusive\n")
			os.Exit(2)
		case *parallel:
			write = writeParallelSnapshot
		case *sharded:
			write = writeShardedSnapshot
		case *snapMode:
			write = writeDurabilitySnapshot
		case *maxErr:
			write = writePlannerSnapshot
		case *resCache:
			write = writeResultCacheSnapshot
		case *mmapServe:
			write = writeMmapServeSnapshot
		case *ingest:
			write = writeIngestSnapshot
		case *joinMode:
			write = writeJoinSnapshot
		}
		if err := write(cfg, *perfJSON); err != nil {
			fmt.Fprintf(os.Stderr, "geobench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	var runners []experiments.Runner
	if flag.NArg() == 0 {
		runners = experiments.All()
	} else {
		for _, id := range flag.Args() {
			r, ok := experiments.Find(strings.ToLower(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "geobench: unknown experiment %q (try -list)\n", id)
				os.Exit(2)
			}
			runners = append(runners, r)
		}
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "geobench: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		w = io.MultiWriter(os.Stdout, f)
	}

	fmt.Fprintf(w, "geobench: taxi=%d tweets=%d osm=%d seed=%d\n\n",
		cfg.TaxiRows, cfg.TweetRows, cfg.OSMRows, cfg.Seed)
	total := time.Now()
	for _, r := range runners {
		start := time.Now()
		tables := r.Run(cfg)
		for _, t := range tables {
			t.Render(w)
		}
		fmt.Fprintf(w, "[%s finished in %v]\n\n", r.ID, time.Since(start).Round(time.Millisecond))
	}
	fmt.Fprintf(w, "geobench: all done in %v\n", time.Since(total).Round(time.Millisecond))
}

// perfSnapshot is the BENCH_PR1.json document: the raw pr1 measurements
// plus enough context to interpret them across machines.
type perfSnapshot struct {
	Experiment string                  `json:"experiment"`
	GoVersion  string                  `json:"go_version"`
	GOARCH     string                  `json:"goarch"`
	TaxiRows   int                     `json:"taxi_rows"`
	Seed       int64                   `json:"seed"`
	Points     []experiments.PerfPoint `json:"points"`
}

// parallelSnapshot is the BENCH_PR2.json document: the raw pr2
// measurements plus the machine context needed to read the scaling
// columns (GOMAXPROCS caps the attainable speedup).
type parallelSnapshot struct {
	Experiment string                 `json:"experiment"`
	GoVersion  string                 `json:"go_version"`
	GOARCH     string                 `json:"goarch"`
	GOMAXPROCS int                    `json:"gomaxprocs"`
	NumCPU     int                    `json:"num_cpu"`
	TaxiRows   int                    `json:"taxi_rows"`
	Seed       int64                  `json:"seed"`
	Points     []experiments.PR2Point `json:"points"`
}

// shardedSnapshot is the BENCH_PR3.json document: the raw pr3
// measurements plus the machine context needed to read the scaling
// columns.
type shardedSnapshot struct {
	Experiment string                 `json:"experiment"`
	GoVersion  string                 `json:"go_version"`
	GOARCH     string                 `json:"goarch"`
	GOMAXPROCS int                    `json:"gomaxprocs"`
	NumCPU     int                    `json:"num_cpu"`
	TaxiRows   int                    `json:"taxi_rows"`
	Seed       int64                  `json:"seed"`
	Points     []experiments.PR3Point `json:"points"`
}

// durabilitySnapshot is the BENCH_PR4.json document: the raw pr4
// measurements plus the machine context needed to read the throughput
// columns (disk and core counts dominate them).
type durabilitySnapshot struct {
	Experiment string                 `json:"experiment"`
	GoVersion  string                 `json:"go_version"`
	GOARCH     string                 `json:"goarch"`
	GOMAXPROCS int                    `json:"gomaxprocs"`
	NumCPU     int                    `json:"num_cpu"`
	TaxiRows   int                    `json:"taxi_rows"`
	Seed       int64                  `json:"seed"`
	Points     []experiments.PR4Point `json:"points"`
}

// plannerSnapshot is the BENCH_PR5.json document: the raw pr5
// measurements plus the machine context needed to read the latency and
// throughput columns.
type plannerSnapshot struct {
	Experiment string                 `json:"experiment"`
	GoVersion  string                 `json:"go_version"`
	GOARCH     string                 `json:"goarch"`
	GOMAXPROCS int                    `json:"gomaxprocs"`
	NumCPU     int                    `json:"num_cpu"`
	TaxiRows   int                    `json:"taxi_rows"`
	Seed       int64                  `json:"seed"`
	Points     []experiments.PR5Point `json:"points"`
}

// resultCacheSnapshot is the BENCH_PR6.json document: the raw pr6
// measurements plus the machine context needed to read the throughput
// and speedup columns.
type resultCacheSnapshot struct {
	Experiment string                 `json:"experiment"`
	GoVersion  string                 `json:"go_version"`
	GOARCH     string                 `json:"goarch"`
	GOMAXPROCS int                    `json:"gomaxprocs"`
	NumCPU     int                    `json:"num_cpu"`
	TaxiRows   int                    `json:"taxi_rows"`
	Seed       int64                  `json:"seed"`
	Points     []experiments.PR6Point `json:"points"`
}

// mmapServeSnapshot is the BENCH_PR7.json document: the raw pr7
// measurements plus the machine context needed to read the startup and
// RSS columns (disk and memory pressure dominate them).
type mmapServeSnapshot struct {
	Experiment string                 `json:"experiment"`
	GoVersion  string                 `json:"go_version"`
	GOARCH     string                 `json:"goarch"`
	GOMAXPROCS int                    `json:"gomaxprocs"`
	NumCPU     int                    `json:"num_cpu"`
	TaxiRows   int                    `json:"taxi_rows"`
	Seed       int64                  `json:"seed"`
	Points     []experiments.PR7Point `json:"points"`
}

// ingestSnapshot is the BENCH_PR8.json document: the raw pr8
// measurements plus the machine context needed to read the latency and
// throughput columns (core count governs how much the write path steals
// from the readers).
type ingestSnapshot struct {
	Experiment string                 `json:"experiment"`
	GoVersion  string                 `json:"go_version"`
	GOARCH     string                 `json:"goarch"`
	GOMAXPROCS int                    `json:"gomaxprocs"`
	NumCPU     int                    `json:"num_cpu"`
	TaxiRows   int                    `json:"taxi_rows"`
	Seed       int64                  `json:"seed"`
	Points     []experiments.PR8Point `json:"points"`
}

// joinSnapshot is the BENCH_PR10.json document: the join-vs-sequential
// measurements, the closed-loop HTTP percentile baseline, and the
// machine context needed to read both (concurrency columns saturate at
// GOMAXPROCS).
type joinSnapshot struct {
	Experiment string                      `json:"experiment"`
	GoVersion  string                      `json:"go_version"`
	GOARCH     string                      `json:"goarch"`
	GOMAXPROCS int                         `json:"gomaxprocs"`
	NumCPU     int                         `json:"num_cpu"`
	TaxiRows   int                         `json:"taxi_rows"`
	Seed       int64                       `json:"seed"`
	JoinPoints []experiments.PR10JoinPoint `json:"join_points"`
	LoadPoints []experiments.PR10LoadPoint `json:"load_points"`
}

// writeJoinSnapshot runs the pr10 bench, prints its tables and writes
// the raw points as indented JSON.
func writeJoinSnapshot(cfg experiments.Config, path string) error {
	start := time.Now()
	tables, joinPoints, loadPoints := experiments.PR10Perf(cfg)
	for _, t := range tables {
		t.Render(os.Stdout)
	}
	snap := joinSnapshot{
		Experiment: "pr10",
		GoVersion:  runtime.Version(),
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		TaxiRows:   cfg.TaxiRows,
		Seed:       cfg.Seed,
		JoinPoints: joinPoints,
		LoadPoints: loadPoints,
	}
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("join snapshot written to %s in %v\n", path, time.Since(start).Round(time.Millisecond))
	return nil
}

// writeIngestSnapshot runs the pr8 bench, prints its table and writes
// the raw points as indented JSON.
func writeIngestSnapshot(cfg experiments.Config, path string) error {
	start := time.Now()
	tables, points := experiments.PR8Perf(cfg)
	for _, t := range tables {
		t.Render(os.Stdout)
	}
	snap := ingestSnapshot{
		Experiment: "pr8",
		GoVersion:  runtime.Version(),
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		TaxiRows:   cfg.TaxiRows,
		Seed:       cfg.Seed,
		Points:     points,
	}
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("streaming-ingest snapshot written to %s in %v\n", path, time.Since(start).Round(time.Millisecond))
	return nil
}

// writeMmapServeSnapshot runs the pr7 bench, prints its table and writes
// the raw points as indented JSON.
func writeMmapServeSnapshot(cfg experiments.Config, path string) error {
	start := time.Now()
	tables, points := experiments.PR7Perf(cfg)
	for _, t := range tables {
		t.Render(os.Stdout)
	}
	snap := mmapServeSnapshot{
		Experiment: "pr7",
		GoVersion:  runtime.Version(),
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		TaxiRows:   cfg.TaxiRows,
		Seed:       cfg.Seed,
		Points:     points,
	}
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("mmap-serving snapshot written to %s in %v\n", path, time.Since(start).Round(time.Millisecond))
	return nil
}

// writeResultCacheSnapshot runs the pr6 bench, prints its table and
// writes the raw points as indented JSON.
func writeResultCacheSnapshot(cfg experiments.Config, path string) error {
	start := time.Now()
	tables, points := experiments.PR6Perf(cfg)
	for _, t := range tables {
		t.Render(os.Stdout)
	}
	snap := resultCacheSnapshot{
		Experiment: "pr6",
		GoVersion:  runtime.Version(),
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		TaxiRows:   cfg.TaxiRows,
		Seed:       cfg.Seed,
		Points:     points,
	}
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("result-cache snapshot written to %s in %v\n", path, time.Since(start).Round(time.Millisecond))
	return nil
}

// writePlannerSnapshot runs the pr5 sweep, prints its table and writes
// the raw points as indented JSON.
func writePlannerSnapshot(cfg experiments.Config, path string) error {
	start := time.Now()
	tables, points := experiments.PR5Perf(cfg)
	for _, t := range tables {
		t.Render(os.Stdout)
	}
	snap := plannerSnapshot{
		Experiment: "pr5",
		GoVersion:  runtime.Version(),
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		TaxiRows:   cfg.TaxiRows,
		Seed:       cfg.Seed,
		Points:     points,
	}
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("planner snapshot written to %s in %v\n", path, time.Since(start).Round(time.Millisecond))
	return nil
}

// writeDurabilitySnapshot runs the pr4 sweep, prints its table and
// writes the raw points as indented JSON.
func writeDurabilitySnapshot(cfg experiments.Config, path string) error {
	start := time.Now()
	tables, points := experiments.PR4Perf(cfg)
	for _, t := range tables {
		t.Render(os.Stdout)
	}
	snap := durabilitySnapshot{
		Experiment: "pr4",
		GoVersion:  runtime.Version(),
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		TaxiRows:   cfg.TaxiRows,
		Seed:       cfg.Seed,
		Points:     points,
	}
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("durability snapshot written to %s in %v\n", path, time.Since(start).Round(time.Millisecond))
	return nil
}

// writeShardedSnapshot runs the pr3 sweep, prints its table and writes
// the raw points as indented JSON.
func writeShardedSnapshot(cfg experiments.Config, path string) error {
	start := time.Now()
	tables, points := experiments.PR3Perf(cfg)
	for _, t := range tables {
		t.Render(os.Stdout)
	}
	snap := shardedSnapshot{
		Experiment: "pr3",
		GoVersion:  runtime.Version(),
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		TaxiRows:   cfg.TaxiRows,
		Seed:       cfg.Seed,
		Points:     points,
	}
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("sharded snapshot written to %s in %v\n", path, time.Since(start).Round(time.Millisecond))
	return nil
}

// writeParallelSnapshot runs the pr2 sweep, prints its table and writes
// the raw points as indented JSON.
func writeParallelSnapshot(cfg experiments.Config, path string) error {
	start := time.Now()
	tables, points := experiments.PR2Perf(cfg)
	for _, t := range tables {
		t.Render(os.Stdout)
	}
	snap := parallelSnapshot{
		Experiment: "pr2",
		GoVersion:  runtime.Version(),
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		TaxiRows:   cfg.TaxiRows,
		Seed:       cfg.Seed,
		Points:     points,
	}
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("parallel snapshot written to %s in %v\n", path, time.Since(start).Round(time.Millisecond))
	return nil
}

// writePerfSnapshot runs the pr1 sweep, prints its table and writes the
// raw points as indented JSON.
func writePerfSnapshot(cfg experiments.Config, path string) error {
	start := time.Now()
	tables, points := experiments.PR1Perf(cfg)
	for _, t := range tables {
		t.Render(os.Stdout)
	}
	snap := perfSnapshot{
		Experiment: "pr1",
		GoVersion:  runtime.Version(),
		GOARCH:     runtime.GOARCH,
		TaxiRows:   cfg.TaxiRows,
		Seed:       cfg.Seed,
		Points:     points,
	}
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("perf snapshot written to %s in %v\n", path, time.Since(start).Round(time.Millisecond))
	return nil
}
