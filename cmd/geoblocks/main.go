// Command geoblocks builds and queries GeoBlocks from the command line.
//
// Subcommands:
//
//	build  -dataset taxi|tweets|osm -rows N -level L [-filter "col op val"] -out FILE
//	       generate a synthetic dataset, run extract+build, persist the block
//	info   -block FILE
//	       print a block's header and configuration
//	query  -block FILE -poly "x,y x,y x,y ..." [-agg count,sum:col,...]
//	       [-max-error E] [-repeat N]
//	       run a polygon aggregate query against a persisted block;
//	       -max-error > 0 builds a coarsening pyramid and lets the query
//	       planner answer at the coarsest level whose spatial error bound
//	       (cell diagonal, in domain units) stays within E — the output
//	       reports the level actually used and its guaranteed bound
//
// The polygon is given as a space-separated list of comma-separated
// lon,lat vertex pairs. Aggregates default to count.
package main

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"flag"

	"geoblocks"
	"geoblocks/internal/column"
	"geoblocks/internal/core"
	"geoblocks/internal/dataset"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "build":
		err = runBuild(os.Args[2:])
	case "info":
		err = runInfo(os.Args[2:])
	case "query":
		err = runQuery(os.Args[2:])
	case "join":
		err = runJoin(os.Args[2:])
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "geoblocks: unknown subcommand %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "geoblocks: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  geoblocks build -dataset taxi|tweets|osm -rows N -level L [-filter "col op val"] -out FILE
  geoblocks info  -block FILE
  geoblocks query -block FILE -poly "x,y x,y x,y ..." [-agg count,sum:col,...] [-max-error E] [-repeat N]
  geoblocks join  -block FILE (-polys "x,y x,y x,y; x,y x,y x,y; ..." | -window "minx,miny,maxx,maxy" -nx N -ny N)
                  [-agg count,sum:col,...] [-max-error E] [-compare]`)
}

func specFor(name string) (dataset.Spec, error) {
	switch name {
	case "taxi":
		return dataset.NYCTaxi(), nil
	case "tweets":
		return dataset.USTweets(), nil
	case "osm":
		return dataset.OSMAmericas(), nil
	}
	return dataset.Spec{}, fmt.Errorf("unknown dataset %q (want taxi, tweets or osm)", name)
}

func runBuild(args []string) error {
	fs := flag.NewFlagSet("build", flag.ExitOnError)
	dsName := fs.String("dataset", "taxi", "dataset: taxi, tweets or osm")
	rows := fs.Int("rows", 100_000, "rows to generate")
	level := fs.Int("level", 10, "block level (domain levels, 0-30)")
	filterStr := fs.String("filter", "", "filter, e.g. \"fare_amount > 20\"")
	seed := fs.Int64("seed", 1, "generation seed")
	out := fs.String("out", "block.gb", "output file")
	if err := fs.Parse(args); err != nil {
		return err
	}

	spec, err := specFor(*dsName)
	if err != nil {
		return err
	}
	fmt.Printf("generating %d rows of %s...\n", *rows, spec.Name)
	raw := dataset.Generate(spec, *rows, *seed)

	var filter column.Filter
	if *filterStr != "" {
		filter, err = parseFilter(spec.Schema, *filterStr)
		if err != nil {
			return err
		}
	}

	base, stats, err := raw.Extract(*level)
	if err != nil {
		return err
	}
	fmt.Printf("extract: kept %d/%d rows, clean %v, sort %v\n",
		stats.RowsKept, stats.RowsIn, stats.CleanTime.Round(1e6), stats.SortTime.Round(1e6))

	blk, err := core.Build(base, core.BuildOptions{Level: *level, Filter: filter})
	if err != nil {
		return err
	}
	fmt.Printf("built %v\n", blk)

	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	if _, err := blk.WriteTo(f); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", *out)
	return nil
}

func runInfo(args []string) error {
	fs := flag.NewFlagSet("info", flag.ExitOnError)
	path := fs.String("block", "block.gb", "block file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	blk, err := openBlock(*path)
	if err != nil {
		return err
	}
	inner := blk.Inner()
	h := inner.Header()
	fmt.Printf("file:       %s\n", *path)
	fmt.Printf("domain:     %v\n", inner.Domain().Bound())
	fmt.Printf("level:      %d (error bound %.6f domain units)\n", blk.Level(), blk.ErrorBound())
	fmt.Printf("schema:     %s\n", strings.Join(inner.Schema().Names, ", "))
	fmt.Printf("filter:     %s\n", inner.Filter().Describe(inner.Schema()))
	fmt.Printf("cells:      %d\n", blk.NumCells())
	fmt.Printf("tuples:     %d\n", blk.NumTuples())
	fmt.Printf("size:       %d bytes\n", blk.SizeBytes())
	fmt.Printf("cell range: %v .. %v\n", h.MinCell, h.MaxCell)
	for c, agg := range h.Cols {
		fmt.Printf("col %-16s min=%.3f max=%.3f sum=%.3f\n",
			inner.Schema().Names[c], agg.Min, agg.Max, agg.Sum)
	}
	return nil
}

func runQuery(args []string) error {
	fs := flag.NewFlagSet("query", flag.ExitOnError)
	path := fs.String("block", "block.gb", "block file")
	polyStr := fs.String("poly", "", "polygon vertices: \"x,y x,y x,y ...\"")
	aggStr := fs.String("agg", "count", "aggregates: count,sum:col,min:col,max:col,avg:col")
	maxError := fs.Float64("max-error", 0, "acceptable spatial error bound in domain units (0 = exact)")
	repeat := fs.Int("repeat", 1, "repeat the query N times (timing)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *polyStr == "" {
		return fmt.Errorf("missing -poly")
	}
	blk, err := openBlock(*path)
	if err != nil {
		return err
	}
	poly, err := parsePolygon(*polyStr)
	if err != nil {
		return err
	}
	reqs, names, err := parseAggs(*aggStr)
	if err != nil {
		return err
	}
	opts := geoblocks.QueryOptions{MaxError: *maxError}
	if err := opts.Validate(); err != nil {
		return err
	}
	if *maxError > 0 {
		// A persisted block carries only its base level; derive exactly
		// the coarser levels the requested bound can make use of — the
		// planner never selects below LevelForMaxDiagonal(maxError).
		want := blk.Inner().Domain().LevelForMaxDiagonal(*maxError)
		if n := blk.Level() - want; n > 0 {
			if err := blk.BuildPyramid(n); err != nil {
				return err
			}
		}
	}

	var res geoblocks.Result
	for i := 0; i < max(*repeat, 1); i++ {
		res, err = blk.QueryOpts(poly, opts, reqs...)
		if err != nil {
			return err
		}
	}
	fmt.Printf("answered at level %d (guaranteed error bound %g domain units)\n", res.Level, res.ErrorBound)
	fmt.Printf("covering cells: %d combined aggregates, %d tuples\n", res.CellsVisited, res.Count)
	for i, name := range names {
		fmt.Printf("%-12s %g\n", name, res.Values[i])
	}
	return nil
}

// runJoin answers one aggregate query per region in a single shared-grid
// pass over the block — the CLI face of the join operator. Regions come
// either as semicolon-separated polygon rings (-polys) or as an nx-by-ny
// tile grid over a window rect. -compare also runs the same regions as
// sequential queries and reports the speedup.
func runJoin(args []string) error {
	fs := flag.NewFlagSet("join", flag.ExitOnError)
	path := fs.String("block", "block.gb", "block file")
	polysStr := fs.String("polys", "", "polygons, ';'-separated: \"x,y x,y x,y; x,y x,y x,y\"")
	windowStr := fs.String("window", "", "window rect \"minx,miny,maxx,maxy\" tiled into -nx by -ny regions")
	nx := fs.Int("nx", 8, "window tiles along x")
	ny := fs.Int("ny", 8, "window tiles along y")
	aggStr := fs.String("agg", "count", "aggregates: count,sum:col,min:col,max:col,avg:col")
	maxError := fs.Float64("max-error", 0, "acceptable spatial error bound in domain units (0 = exact)")
	compare := fs.Bool("compare", false, "also run sequential per-region queries and report the speedup")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if (*polysStr == "") == (*windowStr == "") {
		return fmt.Errorf("exactly one of -polys or -window must be set")
	}
	blk, err := openBlock(*path)
	if err != nil {
		return err
	}
	reqs, names, err := parseAggs(*aggStr)
	if err != nil {
		return err
	}
	opts := geoblocks.QueryOptions{MaxError: *maxError}
	if err := opts.Validate(); err != nil {
		return err
	}
	if *maxError > 0 {
		want := blk.Inner().Domain().LevelForMaxDiagonal(*maxError)
		if n := blk.Level() - want; n > 0 {
			if err := blk.BuildPyramid(n); err != nil {
				return err
			}
		}
	}

	var polys []*geoblocks.Polygon
	if *polysStr != "" {
		for _, seg := range strings.Split(*polysStr, ";") {
			seg = strings.TrimSpace(seg)
			if seg == "" {
				continue
			}
			poly, err := parsePolygon(seg)
			if err != nil {
				return err
			}
			polys = append(polys, poly)
		}
		if len(polys) == 0 {
			return fmt.Errorf("-polys named no polygons")
		}
	} else {
		polys, err = windowPolys(*windowStr, *nx, *ny)
		if err != nil {
			return err
		}
	}

	start := time.Now()
	results, info, err := blk.JoinOpts(polys, opts, reqs...)
	if err != nil {
		return err
	}
	joinTime := time.Since(start)

	pairs := info.InteriorPairs + info.BoundaryPairs
	interior := 0.0
	if pairs > 0 {
		interior = float64(info.InteriorPairs) / float64(pairs)
	}
	fmt.Printf("joined %d regions at level %d (grid level %d, %.0f%% interior pairs, %d fallbacks) in %v\n",
		len(polys), info.Level, info.GridLevel, 100*interior, info.Fallbacks, joinTime.Round(time.Microsecond))
	for i, res := range results {
		fmt.Printf("region %-4d count=%-8d", i, res.Count)
		for k, name := range names {
			if name == "count" {
				continue
			}
			fmt.Printf(" %s=%g", name, res.Values[k])
		}
		fmt.Println()
	}

	if *compare {
		start = time.Now()
		seqOpts := geoblocks.QueryOptions{MaxError: *maxError, DisableCache: true}
		for i, poly := range polys {
			seq, err := blk.QueryOpts(poly, seqOpts, reqs...)
			if err != nil {
				return err
			}
			if seq.Count != results[i].Count {
				return fmt.Errorf("region %d: join count %d != sequential count %d", i, results[i].Count, seq.Count)
			}
		}
		seqTime := time.Since(start)
		fmt.Printf("sequential: %v for %d queries — join speedup %.2fx\n",
			seqTime.Round(time.Microsecond), len(polys), float64(seqTime)/float64(joinTime))
	}
	return nil
}

// windowPolys tiles "minx,miny,maxx,maxy" into an nx-by-ny grid of
// rectangular regions, row-major from the minimum corner.
func windowPolys(s string, nx, ny int) ([]*geoblocks.Polygon, error) {
	parts := strings.Split(s, ",")
	if len(parts) != 4 {
		return nil, fmt.Errorf("window must be \"minx,miny,maxx,maxy\", got %q", s)
	}
	var v [4]float64
	for i, p := range parts {
		f, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("bad window coordinate %q: %v", p, err)
		}
		v[i] = f
	}
	if v[0] >= v[2] || v[1] >= v[3] {
		return nil, fmt.Errorf("window min must be below max, got %q", s)
	}
	if nx < 1 || ny < 1 {
		return nil, fmt.Errorf("window grid must be at least 1x1, got %dx%d", nx, ny)
	}
	dx := (v[2] - v[0]) / float64(nx)
	dy := (v[3] - v[1]) / float64(ny)
	polys := make([]*geoblocks.Polygon, 0, nx*ny)
	for iy := 0; iy < ny; iy++ {
		for ix := 0; ix < nx; ix++ {
			x0, y0 := v[0]+float64(ix)*dx, v[1]+float64(iy)*dy
			x1, y1 := v[0]+float64(ix+1)*dx, v[1]+float64(iy+1)*dy
			poly, err := geoblocks.NewPolygon([]geoblocks.Point{
				geoblocks.Pt(x0, y0), geoblocks.Pt(x1, y0), geoblocks.Pt(x1, y1), geoblocks.Pt(x0, y1),
			})
			if err != nil {
				return nil, err
			}
			polys = append(polys, poly)
		}
	}
	return polys, nil
}

func openBlock(path string) (*geoblocks.GeoBlock, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return geoblocks.ReadGeoBlock(f)
}

func parsePolygon(s string) (*geoblocks.Polygon, error) {
	fields := strings.Fields(s)
	if len(fields) < 3 {
		return nil, fmt.Errorf("polygon needs at least 3 vertices, got %d", len(fields))
	}
	ring := make([]geoblocks.Point, len(fields))
	for i, fstr := range fields {
		parts := strings.Split(fstr, ",")
		if len(parts) != 2 {
			return nil, fmt.Errorf("bad vertex %q (want x,y)", fstr)
		}
		x, err := strconv.ParseFloat(parts[0], 64)
		if err != nil {
			return nil, fmt.Errorf("bad x in %q: %v", fstr, err)
		}
		y, err := strconv.ParseFloat(parts[1], 64)
		if err != nil {
			return nil, fmt.Errorf("bad y in %q: %v", fstr, err)
		}
		ring[i] = geoblocks.Pt(x, y)
	}
	return geoblocks.NewPolygon(ring)
}

func parseAggs(s string) ([]geoblocks.AggRequest, []string, error) {
	var reqs []geoblocks.AggRequest
	var names []string
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		fn, col, _ := strings.Cut(part, ":")
		switch strings.ToLower(fn) {
		case "count":
			reqs = append(reqs, geoblocks.Count())
		case "sum":
			reqs = append(reqs, geoblocks.Sum(col))
		case "min":
			reqs = append(reqs, geoblocks.Min(col))
		case "max":
			reqs = append(reqs, geoblocks.Max(col))
		case "avg":
			reqs = append(reqs, geoblocks.Avg(col))
		default:
			return nil, nil, fmt.Errorf("unknown aggregate %q", fn)
		}
		names = append(names, part)
	}
	if len(reqs) == 0 {
		return nil, nil, fmt.Errorf("no aggregates requested")
	}
	return reqs, names, nil
}

// parseFilter parses "col op value", e.g. "fare_amount > 20".
func parseFilter(schema column.Schema, s string) (column.Filter, error) {
	fields := strings.Fields(s)
	if len(fields) != 3 {
		return nil, fmt.Errorf("filter must be \"col op value\", got %q", s)
	}
	idx := schema.ColIndex(fields[0])
	if idx < 0 {
		return nil, fmt.Errorf("unknown column %q (schema: %s)", fields[0], strings.Join(schema.Names, ", "))
	}
	var op column.Op
	switch fields[1] {
	case "==", "=":
		op = column.OpEq
	case "!=":
		op = column.OpNe
	case "<":
		op = column.OpLt
	case "<=":
		op = column.OpLe
	case ">":
		op = column.OpGt
	case ">=":
		op = column.OpGe
	default:
		return nil, fmt.Errorf("unknown operator %q", fields[1])
	}
	val, err := strconv.ParseFloat(fields[2], 64)
	if err != nil {
		return nil, fmt.Errorf("bad value %q: %v", fields[2], err)
	}
	return column.Filter{{Col: idx, Op: op, Value: val}}, nil
}
