package geoblocks

import (
	"errors"
	"fmt"

	"geoblocks/internal/cellid"
	"geoblocks/internal/core"
	"geoblocks/internal/geom"
)

// Builder runs the two-phase GeoBlock creation pipeline (paper Fig. 5):
// the extract phase cleans, keys and sorts raw points once per dataset;
// the build phase then derives any number of GeoBlocks for different
// (level, filter) combinations in a single linear pass each — the
// incremental builds whose amortisation Fig. 19 studies.
type Builder struct {
	dom    cellid.Domain
	schema Schema
	clean  core.CleanRule

	pts  []Point
	cols [][]float64

	base  *core.BaseData
	stats core.ExtractStats
}

// NewBuilder creates a builder for points within bound carrying the given
// value columns.
func NewBuilder(bound Rect, schema Schema) (*Builder, error) {
	dom, err := cellid.NewDomain(bound)
	if err != nil {
		return nil, err
	}
	return &Builder{
		dom:    dom,
		schema: schema,
		clean:  core.CleanRule{Bounds: bound},
		cols:   make([][]float64, schema.NumCols()),
	}, nil
}

// SetCleanRule replaces the extract phase's outlier rule. The default
// drops points outside the builder's bound.
func (b *Builder) SetCleanRule(rule core.CleanRule) { b.clean = rule }

// AddRow appends one raw point with its column values.
func (b *Builder) AddRow(p Point, vals ...float64) error {
	if len(vals) != b.schema.NumCols() {
		return fmt.Errorf("geoblocks: AddRow got %d values, schema has %d columns",
			len(vals), b.schema.NumCols())
	}
	b.pts = append(b.pts, p)
	for c, v := range vals {
		b.cols[c] = append(b.cols[c], v)
	}
	b.base = nil // raw data changed; extract must re-run
	return nil
}

// AddRows appends a batch of raw points with column-major values.
func (b *Builder) AddRows(pts []Point, cols [][]float64) error {
	if len(cols) != b.schema.NumCols() {
		return fmt.Errorf("geoblocks: AddRows got %d columns, schema has %d",
			len(cols), b.schema.NumCols())
	}
	for c := range cols {
		if len(cols[c]) != len(pts) {
			return fmt.Errorf("geoblocks: column %d has %d rows, want %d", c, len(cols[c]), len(pts))
		}
	}
	b.pts = append(b.pts, pts...)
	for c := range cols {
		b.cols[c] = append(b.cols[c], cols[c]...)
	}
	b.base = nil
	return nil
}

// NumRows returns the number of raw rows added so far.
func (b *Builder) NumRows() int { return len(b.pts) }

// Extract runs the extract phase: clean, key and sort the raw data. It is
// idempotent until new rows are added. piggyLevel (if >= 0) collects
// distinct grid cells at that level during the sort, as the paper's
// pipeline does.
func (b *Builder) Extract() error { return b.ExtractWithPiggyback(-1) }

// ExtractWithPiggyback is Extract with explicit piggyback level.
func (b *Builder) ExtractWithPiggyback(piggyLevel int) error {
	if b.base != nil {
		return nil
	}
	base, stats, err := core.Extract(b.dom, b.pts, b.schema, b.cols, b.clean, piggyLevel)
	if err != nil {
		return err
	}
	b.base = base
	b.stats = stats
	return nil
}

// ExtractStats returns timing and row counts of the last Extract.
func (b *Builder) ExtractStats() core.ExtractStats { return b.stats }

// Build derives a GeoBlock at the given level for the given filter (nil
// keeps all rows) from the extracted base data, running Extract first if
// needed.
func (b *Builder) Build(level int, filter Filter) (*GeoBlock, error) {
	if err := b.Extract(); err != nil {
		return nil, err
	}
	blk, err := core.Build(b.base, core.BuildOptions{Level: level, Filter: filter})
	if err != nil {
		return nil, err
	}
	return wrapBlock(blk)
}

// BuildForError derives a GeoBlock whose spatial error bound (cell
// diagonal) does not exceed maxError.
func (b *Builder) BuildForError(maxError float64, filter Filter) (*GeoBlock, error) {
	return b.Build(b.dom.LevelForMaxDiagonal(maxError), filter)
}

// Base returns the extracted base data, or nil before Extract.
func (b *Builder) Base() *core.BaseData { return b.base }

// Bound returns the builder's spatial domain bound.
func (b *Builder) Bound() Rect { return b.dom.Bound() }

// ErrNotExtracted is returned by operations requiring extracted base data.
var ErrNotExtracted = errors.New("geoblocks: call Extract before this operation")

// Selectivity reports the fraction of base rows matching filter.
func (b *Builder) Selectivity(filter Filter) (float64, error) {
	if b.base == nil {
		return 0, ErrNotExtracted
	}
	return filter.Selectivity(b.base.Table), nil
}

// RegularPolygon is a convenience constructor for approximately circular
// query regions.
func RegularPolygon(center Point, radius float64, vertices int) *Polygon {
	return geom.RegularPolygon(center, radius, vertices)
}
