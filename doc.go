// Package geoblocks is a pre-aggregating data structure for spatial
// aggregation over arbitrary polygons, reproducing "GeoBlocks: A
// Query-Cache Accelerated Data Structure for Spatial Aggregation over
// Polygons" (EDBT 2021) and grown into a standalone, servable
// spatial-aggregation engine.
//
// A GeoBlock is a materialized view over geospatial point data: it
// subdivides the spatial domain into fine-grained grid cells along a
// Hilbert-ordered quadtree, pre-computes per-cell aggregates (count, min,
// max, sum per column, stored struct-of-arrays with per-column prefix
// sums), and answers aggregate queries over arbitrary polygons by
// combining the aggregates of an error-bounded cell covering of the query
// polygon. COUNT, SUM and AVG are answered from range endpoints — tuple
// offsets and prefix sums — so their cost per covering cell is constant
// regardless of the block level; only MIN/MAX scan the covered aggregates,
// and they do so over contiguous per-column arrays (DESIGN.md Sec. 2-3).
// The spatial approximation is the covering: every point of the covering
// lies within one grid-cell diagonal of the polygon outline, a bound the
// user controls by choosing the block level. SUM/AVG additionally carry
// ordinary floating-point rounding from the prefix-sum endpoint
// subtraction (exact for integer-valued columns; see DESIGN.md Sec. 2 for
// the cancellation characteristics); COUNT and MIN/MAX are always exact
// over the covering.
// An optional trie-based query cache ("BlockQC") adapts to workload skew
// by pre-combining aggregates of frequently queried regions.
//
// # Query planner and the error/speed knob
//
// The paper's central trade — spatial accuracy for speed — is a
// per-query decision here, not a build-time one. BuildPyramid derives a
// pyramid of coarser levels from a built block (via Coarsen, no
// base-data rescan; each level carries its own coverer and, when
// enabled, its own query cache), and every query method resolves
// through one plan→execute pipeline driven by QueryOptions: MaxError
// picks the coarsest pyramid level whose cell diagonal satisfies the
// bound, Workers selects the serial or parallel kernel, DisableCache
// bypasses the cache. Results report the level answered at and the
// guaranteed error bound of the covering actually executed
// (Result.Level, Result.ErrorBound); MaxError 0 — and every legacy
// method, which wraps the pipeline with zero options — is bit-identical
// to the exact path. LevelFor and AtLevel expose the planner's level
// arithmetic to sharded routers.
//
// # Quick start
//
//	schema := geoblocks.NewSchema("fare", "distance")
//	b := geoblocks.NewBuilder(bound, schema)
//	b.AddRows(points, cols)
//	if err := b.Extract(); err != nil { ... }
//	blk, err := b.Build(17, nil) // ~level-17 grid, no filter
//	res, err := blk.Query(polygon, geoblocks.Count(), geoblocks.Sum("fare"))
//
// See the examples directory for complete programs.
//
// # Concurrency
//
// A built GeoBlock is a concurrent serving structure: any number of
// goroutines may query one block, with or without an enabled cache, while
// structural mutations (Update, Coarsen, cache enable/disable) remain
// exclusive. The GeoBlock type's comment states the exact contract;
// DESIGN.md Sec. 6 documents the mechanisms.
//
// # Sharded serving
//
// For multi-dataset, multi-shard deployments the package exposes the
// hooks a spatial router needs — SplitCovering to divide one covering
// into per-shard sub-coverings and QueryCoveringPartial plus
// Accumulator.MergeFrom to combine per-shard partial results exactly.
// internal/store builds the sharded dataset registry on these hooks and
// cmd/geoblocksd serves it over HTTP; docs/ARCHITECTURE.md shows the full
// layer stack.
//
// # Persistence
//
// A built block serialises without its base data or cache: WriteTo
// streams the raw serialization-v2 payload, WriteFramed wraps it in a
// length-prefixed, CRC32C-checksummed frame for storage, and
// ReadGeoBlock / ReadGeoBlockFramed read them back (typed failures:
// ErrCorruptBlock, ErrBlockVersion). The frame is the building block of
// the snapshot subsystem (internal/snapshot) that makes the serving
// tier durable; docs/FORMAT.md specifies every on-disk byte.
package geoblocks
