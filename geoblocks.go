package geoblocks

import (
	"errors"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"geoblocks/internal/aggtrie"
	"geoblocks/internal/cellid"
	"geoblocks/internal/column"
	"geoblocks/internal/core"
	"geoblocks/internal/cover"
	"geoblocks/internal/geom"
)

// Geometry and schema types, re-exported for the public API. X is
// longitude and Y latitude for geographic data, but any planar coordinates
// work.
type (
	// Point is a location in the plane.
	Point = geom.Point
	// Rect is an axis-aligned rectangle.
	Rect = geom.Rect
	// Polygon is a simple polygon with optional holes.
	Polygon = geom.Polygon
	// Schema names the value columns of a dataset.
	Schema = column.Schema
	// Filter is a conjunction of column predicates.
	Filter = column.Filter
	// Predicate is a single column comparison.
	Predicate = column.Predicate
	// Result is a query answer: tuple count plus one value per AggSpec.
	Result = core.Result
	// AggSpec requests one aggregate over one column.
	AggSpec = core.AggSpec
	// CellID identifies a cell of the spatial decomposition.
	CellID = cellid.ID
	// CacheMetrics reports query-cache effectiveness.
	CacheMetrics = aggtrie.Metrics
	// UpdateBatch is a set of new tuples for GeoBlock.Update.
	UpdateBatch = core.UpdateBatch
	// Accumulator holds a pre-finalisation partial query result. Partials
	// from different blocks over the same domain (the shards of a
	// partitioned dataset) merge with MergeFrom before Result finalises.
	Accumulator = core.Accumulator
)

// Pt constructs a Point.
func Pt(x, y float64) Point { return geom.Pt(x, y) }

// NewSchema builds a schema from column names.
func NewSchema(names ...string) Schema { return column.NewSchema(names...) }

// NewPolygon builds a polygon from an outer ring (at least three
// non-collinear vertices; orientation is normalised).
func NewPolygon(ring []Point) (*Polygon, error) { return geom.TryPolygon(ring) }

// Comparison operators for Where.
const (
	OpEq = column.OpEq
	OpNe = column.OpNe
	OpLt = column.OpLt
	OpLe = column.OpLe
	OpGt = column.OpGt
	OpGe = column.OpGe
)

// Where builds a single-predicate filter on a named column.
func Where(schema Schema, col string, op column.Op, value float64) Filter {
	return column.Pred(schema, col, op, value)
}

// MaxLevel is the finest grid level of the spatial decomposition.
const MaxLevel = cellid.MaxLevel

// Aggregate request constructors. Column-taking constructors resolve the
// name at query time against the block's schema.

// Count requests the number of tuples in the query region.
func Count() AggRequest { return AggRequest{fn: core.AggCount} }

// Sum requests the sum of the named column.
func Sum(col string) AggRequest { return AggRequest{fn: core.AggSum, col: col} }

// Min requests the minimum of the named column.
func Min(col string) AggRequest { return AggRequest{fn: core.AggMin, col: col} }

// Max requests the maximum of the named column.
func Max(col string) AggRequest { return AggRequest{fn: core.AggMax, col: col} }

// Avg requests the average of the named column (derived from sum/count).
func Avg(col string) AggRequest { return AggRequest{fn: core.AggAvg, col: col} }

// AggRequest is a named-column aggregate request, resolved against the
// block schema at query time.
type AggRequest struct {
	fn  core.AggFunc
	col string
}

// String returns the request's canonical spelling — "count",
// "sum(fare)" — the form serving layers use to tag query footprints and
// the HTTP API accepts in aggregate specs.
func (r AggRequest) String() string {
	if r.fn == core.AggCount {
		return r.fn.String()
	}
	return r.fn.String() + "(" + r.col + ")"
}

// ErrUnknownColumn reports an aggregate request naming a column absent
// from the block's schema; wrap-aware callers (the HTTP layer's status
// mapping) match it with errors.Is.
var ErrUnknownColumn = errors.New("geoblocks: unknown column")

func resolveSpecs(schema Schema, reqs []AggRequest) ([]AggSpec, error) {
	specs := make([]AggSpec, len(reqs))
	for i, r := range reqs {
		spec := AggSpec{Func: r.fn}
		if r.fn != core.AggCount {
			idx := schema.ColIndex(r.col)
			if idx < 0 {
				return nil, fmt.Errorf("%w %q", ErrUnknownColumn, r.col)
			}
			spec.Col = idx
		}
		specs[i] = spec
	}
	return specs, nil
}

// GeoBlock is the public handle to a built block: the pre-aggregated cell
// grid, a region coverer configured for the block's level, and an optional
// query cache.
//
// # Concurrency
//
// Any number of goroutines may call the query methods — Query, QueryRect,
// QueryCovering, their *Parallel variants, Count, CountRect, and the read
// accessors — on one GeoBlock concurrently, with or without an enabled
// cache. The cache path is lock-light: effectiveness counters are atomic,
// query statistics are sharded, and the cache trie is published through an
// atomic pointer so readers never observe a half-built cache. Auto-refresh
// runs in a single-flight background goroutine off the query path.
//
// Structural mutations — Update, Coarsen, EnableCache, DisableCache,
// RefreshCache and deserialisation — remain exclusive: they must not run
// concurrently with queries or each other. Once queries are quiesced the
// mutation entry points drain any still-in-flight background refresh
// themselves, so the contract is simply: serve traffic, stop it (or swap
// the block pointer), mutate, resume.
type GeoBlock struct {
	inner   *core.GeoBlock
	coverer *cover.Coverer
	cached  *aggtrie.CachedBlock

	// pyramid holds coarser read-only blocks derived from this one with
	// Coarsen, sorted finest-first (strictly descending level). Each entry
	// is a complete GeoBlock with its own coverer and — when the base
	// block's cache is enabled — its own query cache, so hot approximate
	// traffic at one error bound warms a cache dedicated to its level.
	// Built by BuildPyramid, consulted by the query planner; nil means
	// every query answers at the base level.
	pyramid []*GeoBlock
	// cacheThreshold remembers the EnableCache threshold so pyramid levels
	// built later inherit the cache configuration (0 = no cache).
	cacheThreshold float64

	// autoRefresh rebuilds the cache every n queries (0 = manual).
	autoRefresh int
	// queries counts cache-served queries; crossing a multiple of
	// autoRefresh arms the background refresh.
	queries atomic.Uint64
	// refreshing is the single-flight gate: only the goroutine that wins
	// the CompareAndSwap launches a background refresh.
	refreshing atomic.Bool
	// refreshWG tracks the in-flight background refresh so mutation entry
	// points can drain it (waitRefresh) before touching shared state.
	refreshWG sync.WaitGroup
}

func wrapBlock(b *core.GeoBlock) (*GeoBlock, error) {
	cov, err := cover.NewCoverer(b.Domain(), cover.DefaultOptions(b.Level()))
	if err != nil {
		return nil, err
	}
	return &GeoBlock{inner: b, coverer: cov}, nil
}

// Level returns the block level (grid granularity).
func (g *GeoBlock) Level() int { return g.inner.Level() }

// Schema returns the block's value-column schema.
func (g *GeoBlock) Schema() Schema { return g.inner.Schema() }

// Filter returns the filter the block was built with.
func (g *GeoBlock) Filter() Filter { return g.inner.Filter() }

// NumCells returns the number of non-empty grid cells.
func (g *GeoBlock) NumCells() int { return g.inner.NumCells() }

// NumTuples returns the number of aggregated tuples.
func (g *GeoBlock) NumTuples() uint64 { return g.inner.NumTuples() }

// SizeBytes returns the in-memory size of the aggregate storage.
func (g *GeoBlock) SizeBytes() int { return g.inner.SizeBytes() }

// ErrorBound returns the block's spatial error bound in domain units: the
// diagonal of one grid cell. Any point of a covering is within this
// distance of the query polygon's outline (paper Sec. 3.2).
func (g *GeoBlock) ErrorBound() float64 {
	return g.inner.Domain().CellDiagonal(g.inner.Level())
}

// Inner exposes the underlying core block for advanced use (experiments,
// serialization internals).
func (g *GeoBlock) Inner() *core.GeoBlock { return g.inner }

// Cover computes the block-level cell covering of a polygon, exposed for
// diagnostics and repeated-query optimisation.
func (g *GeoBlock) Cover(poly *Polygon) []CellID {
	return g.coverer.Cover(poly).Cells
}

// CoverRect computes the covering of a rectangle.
func (g *GeoBlock) CoverRect(r Rect) []CellID {
	return g.coverer.CoverRect(r).Cells
}

// QueryOptions are the unified knobs of the query planner. One options
// struct replaces the combinatorial method matrix (Query/QueryRect/
// QueryCovering × serial/parallel × cached/uncached): every query resolves
// through one plan→execute pipeline, and the legacy signatures remain as
// thin wrappers over it. The zero value reproduces the exact serial path
// bit for bit.
type QueryOptions struct {
	// MaxError is the acceptable spatial error bound in domain units.
	// 0 answers exactly, at the base block level. A positive value lets
	// the planner answer at the coarsest pyramid level (BuildPyramid)
	// whose cell diagonal does not exceed it — a smaller covering and a
	// cheaper query, the paper's accuracy-for-speed trade (Sec. 3.4).
	// When no pyramid level satisfies the bound (or no pyramid is built)
	// the planner answers at the base level; Result.ErrorBound always
	// reports the bound actually achieved. Must be finite and >= 0.
	MaxError float64
	// Workers selects the execution kernel: 0 or 1 runs the serial,
	// cache-probing kernel; > 1 partitions large coverings across that
	// many goroutines; < 0 uses GOMAXPROCS. The parallel kernel neither
	// probes nor warms the query cache and falls back to the serial kernel
	// for coverings too small to amortise the fan-out.
	Workers int
	// DisableCache answers directly from the aggregate arrays even when a
	// query cache is enabled, leaving cache state and statistics
	// untouched — for latency probes and cache-benefit measurements.
	DisableCache bool
}

// Validate reports whether the options are well-formed: MaxError must be
// finite and non-negative. Serving layers call it up front to map bad
// options onto caller errors; the query methods validate internally.
func (o QueryOptions) Validate() error {
	if o.MaxError < 0 || math.IsNaN(o.MaxError) || math.IsInf(o.MaxError, 0) {
		return fmt.Errorf("geoblocks: MaxError must be finite and >= 0, got %v", o.MaxError)
	}
	return nil
}

// plan validates the options and resolves the block that will execute the
// query: the base block, or the pyramid level the error bound admits.
func (g *GeoBlock) plan(opts QueryOptions) (*GeoBlock, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	return g.planTarget(opts.MaxError), nil
}

// planTarget picks the coarsest available level whose cell diagonal does
// not exceed maxError. The pyramid is sorted finest-first, so the last
// entry still meeting the wanted level is the cheapest admissible block.
func (g *GeoBlock) planTarget(maxError float64) *GeoBlock {
	if maxError <= 0 || len(g.pyramid) == 0 {
		return g
	}
	want := g.inner.Domain().LevelForMaxDiagonal(maxError)
	if want >= g.Level() {
		return g
	}
	target := g
	for _, pb := range g.pyramid {
		if pb.Level() < want {
			break
		}
		target = pb
	}
	return target
}

// execCovering is the single execution kernel behind every public query
// method. Running on the plan's target block, it resolves the aggregate
// requests against the schema, dispatches onto the parallel, cached or
// plain serial kernel per the options, and stamps the achieved level and
// guaranteed error bound into the result.
func (g *GeoBlock) execCovering(cov []CellID, bound float64, opts QueryOptions, reqs []AggRequest) (Result, error) {
	specs, err := resolveSpecs(g.inner.Schema(), reqs)
	if err != nil {
		return Result{}, err
	}
	var res Result
	switch {
	case opts.Workers > 1 || opts.Workers < 0:
		res, err = g.inner.SelectCoveringParallel(cov, specs, opts.Workers)
	case g.cached != nil && !opts.DisableCache:
		res, err = g.cached.Select(cov, specs)
		if err == nil {
			g.maybeAutoRefresh()
		}
	default:
		res, err = g.inner.SelectCovering(cov, specs)
	}
	if err != nil {
		return Result{}, err
	}
	res.Level = g.Level()
	res.ErrorBound = bound
	return res, nil
}

// QueryOpts answers a SELECT aggregate query over a polygon through the
// query planner: pick the coarsest pyramid level admitted by
// opts.MaxError, compute the covering at that level, execute through the
// kernel opts selects. The result reports the level answered at and the
// guaranteed error bound of the covering actually executed (0 when the
// covering is exact). QueryOpts with zero options is exactly Query.
func (g *GeoBlock) QueryOpts(poly *Polygon, opts QueryOptions, reqs ...AggRequest) (Result, error) {
	t, err := g.plan(opts)
	if err != nil {
		return Result{}, err
	}
	cov := t.coverer.Cover(poly)
	return t.execCovering(cov.Cells, t.coverer.GuaranteedErrorDistance(cov), opts, reqs)
}

// QueryRectOpts is QueryOpts over a rectangle (rectangles are just
// constrained polygons; the same planning and covering machinery applies).
func (g *GeoBlock) QueryRectOpts(r Rect, opts QueryOptions, reqs ...AggRequest) (Result, error) {
	t, err := g.plan(opts)
	if err != nil {
		return Result{}, err
	}
	cov := t.coverer.CoverRect(r)
	return t.execCovering(cov.Cells, t.coverer.GuaranteedErrorDistance(cov), opts, reqs)
}

// QueryCoveringOpts is QueryOpts over a pre-computed covering. The
// covering fixes the grid level, so opts.MaxError does not re-plan: the
// query executes against this block as given (compute the covering with
// AtLevel's coverer to target a pyramid level). Without interior flags the
// reported bound is conservative — the diagonal of the coarsest covering
// cell.
func (g *GeoBlock) QueryCoveringOpts(cov []CellID, opts QueryOptions, reqs ...AggRequest) (Result, error) {
	if err := opts.Validate(); err != nil {
		return Result{}, err
	}
	return g.execCovering(cov, g.coveringBound(cov), opts, reqs)
}

// coveringBound is the conservative guaranteed bound of a bare cell list:
// the diagonal of its coarsest cell, 0 for an empty covering.
func (g *GeoBlock) coveringBound(cov []CellID) float64 {
	return g.inner.Domain().MaxDiagonal(cov)
}

// Query answers a SELECT aggregate query over an arbitrary polygon.
// COUNT/SUM/AVG combine each covering cell in O(1) from stored offsets and
// prefix sums; MIN/MAX scan the covered aggregates with fused per-column
// kernels. Query is QueryOpts with zero options: exact, serial, cached.
func (g *GeoBlock) Query(poly *Polygon, reqs ...AggRequest) (Result, error) {
	return g.QueryOpts(poly, QueryOptions{}, reqs...)
}

// QueryRect answers a SELECT aggregate query over a rectangle.
func (g *GeoBlock) QueryRect(r Rect, reqs ...AggRequest) (Result, error) {
	return g.QueryRectOpts(r, QueryOptions{}, reqs...)
}

// QueryCovering answers a SELECT query over a pre-computed covering.
func (g *GeoBlock) QueryCovering(cov []CellID, reqs ...AggRequest) (Result, error) {
	return g.QueryCoveringOpts(cov, QueryOptions{}, reqs...)
}

// normalizeWorkers maps the legacy parallel-method convention (<= 0 means
// GOMAXPROCS) onto QueryOptions.Workers (< 0 means GOMAXPROCS).
func normalizeWorkers(workers int) int {
	if workers <= 0 {
		return -1
	}
	return workers
}

// QueryParallel answers a SELECT query over a polygon, partitioning a
// large covering across worker goroutines (workers <= 0 means
// GOMAXPROCS). Small coverings fall back to the serial kernel, so the
// method is safe to use unconditionally. COUNT/MIN/MAX results are
// bit-identical to Query; SUM/AVG differ only by floating-point
// reassociation at the merge points (DESIGN.md Sec. 6). The parallel path
// neither probes nor warms the query cache — it targets the huge
// analytical coverings where splitting the scan beats pre-combined
// records.
func (g *GeoBlock) QueryParallel(poly *Polygon, workers int, reqs ...AggRequest) (Result, error) {
	return g.QueryOpts(poly, QueryOptions{Workers: normalizeWorkers(workers), DisableCache: true}, reqs...)
}

// QueryRectParallel is QueryParallel over a rectangle.
func (g *GeoBlock) QueryRectParallel(r Rect, workers int, reqs ...AggRequest) (Result, error) {
	return g.QueryRectOpts(r, QueryOptions{Workers: normalizeWorkers(workers), DisableCache: true}, reqs...)
}

// QueryCoveringParallel is QueryParallel over a pre-computed covering.
func (g *GeoBlock) QueryCoveringParallel(cov []CellID, workers int, reqs ...AggRequest) (Result, error) {
	return g.QueryCoveringOpts(cov, QueryOptions{Workers: normalizeWorkers(workers), DisableCache: true}, reqs...)
}

// QueryCoveringPartial answers a SELECT query over a pre-computed covering
// but stops before finalisation, returning the partial accumulator. It is
// the per-shard hook of a sharded deployment (internal/store): a router
// computes one covering, splits it with SplitCovering, runs one partial
// per shard and merges them with Accumulator.MergeFrom before calling
// Result. With an enabled cache the partial goes through the adapted cache
// algorithm (probes, statistics and auto-refresh included), exactly like
// Query.
func (g *GeoBlock) QueryCoveringPartial(cov []CellID, reqs ...AggRequest) (*Accumulator, error) {
	return g.QueryCoveringPartialOpts(cov, QueryOptions{}, reqs...)
}

// QueryCoveringPartialOpts is QueryCoveringPartial with options. Like the
// other covering-taking forms it never re-plans the level — the sharded
// router resolves the pyramid level once per query (LevelFor, AtLevel) and
// computes one covering at it. Workers selects the in-shard kernel (the
// parallel kernel bypasses the cache, falls back to serial for small
// sub-coverings, and composes with the router's per-shard fan-out);
// DisableCache bypasses the cache on the serial path.
func (g *GeoBlock) QueryCoveringPartialOpts(cov []CellID, opts QueryOptions, reqs ...AggRequest) (*Accumulator, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	specs, err := resolveSpecs(g.inner.Schema(), reqs)
	if err != nil {
		return nil, err
	}
	if opts.Workers > 1 || opts.Workers < 0 {
		return g.inner.SelectCoveringPartialParallel(cov, specs, opts.Workers)
	}
	if g.cached != nil && !opts.DisableCache {
		acc, err := g.cached.SelectPartial(cov, specs)
		if err != nil {
			return nil, err
		}
		g.maybeAutoRefresh()
		return acc, nil
	}
	return g.inner.SelectCoveringPartial(cov, specs)
}

// QueryCoveringMultiPartial answers one SELECT query per covering in a
// single ordered pass over the block's aggregates (core
// SelectCoveringMulti): every covering cell becomes a key-range span
// scattered into its query's accumulator, so K overlapping coverings
// cost one traversal instead of K. Each returned accumulator is
// bit-identical to QueryCoveringPartial on its covering alone —
// including SUM/AVG — which is what lets the join operator promise
// equivalence with N sequential queries. The multi kernel reads the
// aggregate arrays directly: it neither probes nor warms the query
// cache (result caching for joins lives at the store layer).
func (g *GeoBlock) QueryCoveringMultiPartial(covs [][]CellID, reqs ...AggRequest) ([]*Accumulator, error) {
	specs, err := resolveSpecs(g.inner.Schema(), reqs)
	if err != nil {
		return nil, err
	}
	return g.inner.SelectCoveringMulti(covs, specs)
}

// JoinInfo reports the plan shape of one JoinOpts call: the pyramid
// level every region was answered at, the shared grid's level, and the
// (region, grid cell) classification counts — interior pairs were
// answered wholesale with zero point-in-polygon tests.
type JoinInfo struct {
	Level         int
	GridLevel     int
	InteriorPairs int
	BoundaryPairs int
	Fallbacks     int
}

// JoinOpts answers one aggregate query per polygon in a single pass over
// the block: the planner resolves one pyramid level for the whole set,
// the shared-grid coverer classifies every (polygon, grid cell) pair
// interior/boundary in one sweep, and the multi-accumulator kernel walks
// the aggregate arrays once, scattering into per-polygon accumulators.
// Results align positionally with polys and each is bit-identical to
// QueryOpts on that polygon alone with the cache disabled (the multi
// kernel reads the aggregate arrays directly). opts.Workers is ignored —
// the parallelism is across polygons, not within one.
func (g *GeoBlock) JoinOpts(polys []*Polygon, opts QueryOptions, reqs ...AggRequest) ([]Result, JoinInfo, error) {
	target, err := g.plan(opts)
	if err != nil {
		return nil, JoinInfo{}, err
	}
	regions := make([]cover.Region, len(polys))
	for i, p := range polys {
		regions[i] = p
	}
	sc := target.coverer.CoverShared(regions)
	covs := make([][]CellID, len(polys))
	for i := range polys {
		covs[i] = sc.Covers[i].Cells
	}
	accs, err := target.QueryCoveringMultiPartial(covs, reqs...)
	if err != nil {
		return nil, JoinInfo{}, err
	}
	results := make([]Result, len(polys))
	for i, acc := range accs {
		res := acc.Result()
		res.Level = target.Level()
		res.ErrorBound = sc.Bounds[i]
		results[i] = res
	}
	info := JoinInfo{
		Level:         target.Level(),
		GridLevel:     sc.GridLevel,
		InteriorPairs: sc.InteriorPairs,
		BoundaryPairs: sc.BoundaryPairs,
		Fallbacks:     sc.Fallbacks,
	}
	return results, info, nil
}

// DecodePartial parses an accumulator partial frame produced by
// Accumulator.EncodePartial on another node, validating its checksum and
// requiring its aggregate signature to match reqs resolved against this
// block's schema. It is the receive half of the cluster scatter-gather
// wire: a coordinator decodes peer frames into accumulators bound to a
// local block and merges them with MergeFrom in shard order, so cluster
// answers inherit the single-node merge contract bit for bit
// (COUNT/MIN/MAX exact, SUM within the DESIGN.md Sec. 6 bound).
// Malformed frames return errors wrapping ErrCorruptBlock; an unknown
// wire version wraps ErrBlockVersion.
func (g *GeoBlock) DecodePartial(data []byte, reqs ...AggRequest) (*Accumulator, error) {
	specs, err := resolveSpecs(g.inner.Schema(), reqs)
	if err != nil {
		return nil, err
	}
	return g.inner.DecodePartial(data, specs)
}

// SplitCovering returns the sub-covering of cov that intersects cell's
// leaf range — the cells a shard owning cell must answer. cov must be
// sorted ascending with disjoint cells (the form Cover and CoverRect
// produce); the result is a sub-slice of cov sharing its backing array,
// so splitting a covering across shards allocates nothing. A covering
// cell coarser than cell appears in the split of every shard it overlaps;
// because shards partition the underlying cell aggregates, the per-shard
// contributions of such a cell are disjoint and merge exactly.
func SplitCovering(cov []CellID, cell CellID) []CellID {
	lo, hi := cell.RangeMin(), cell.RangeMax()
	// Disjoint sorted cells have sorted range endpoints, so both bounds
	// are binary searches.
	first := sort.Search(len(cov), func(i int) bool { return cov[i].RangeMax() >= lo })
	last := sort.Search(len(cov), func(i int) bool { return cov[i].RangeMin() > hi })
	return cov[first:last:last]
}

// Count answers a COUNT query over a polygon with the specialised
// range-sum algorithm (paper Listing 2).
func (g *GeoBlock) Count(poly *Polygon) uint64 {
	cov := g.Cover(poly)
	if g.cached != nil {
		n := g.cached.Count(cov)
		g.maybeAutoRefresh()
		return n
	}
	return g.inner.CountCovering(cov)
}

// CountRect is Count over a rectangle.
func (g *GeoBlock) CountRect(r Rect) uint64 {
	cov := g.CoverRect(r)
	if g.cached != nil {
		n := g.cached.Count(cov)
		g.maybeAutoRefresh()
		return n
	}
	return g.inner.CountCovering(cov)
}

// EnableCache attaches an AggregateTrie query cache with a budget of
// threshold × the block's aggregate storage size (the paper's aggregate
// threshold, Fig. 18). The threshold must be a positive number — zero or
// negative values would silently yield a 0-byte budget and a cache that
// can never store a record. autoRefreshEvery > 0 rebuilds the cache from
// query statistics (in the background, off the query path) every that
// many queries; 0 leaves refresh manual; negative values are rejected.
// A pyramid level built later (BuildPyramid) inherits the cache
// configuration with its own private cache; enabling on a block that
// already carries a pyramid enables one cache per level.
func (g *GeoBlock) EnableCache(threshold float64, autoRefreshEvery int) error {
	if autoRefreshEvery < 0 {
		return fmt.Errorf("geoblocks: autoRefreshEvery must be >= 0, got %d", autoRefreshEvery)
	}
	cached, err := aggtrie.NewWithThreshold(g.inner, threshold)
	if err != nil {
		return err
	}
	g.waitRefresh()
	g.cached = cached
	g.cacheThreshold = threshold
	g.autoRefresh = autoRefreshEvery
	g.queries.Store(0)
	for _, pb := range g.pyramid {
		if err := pb.EnableCache(threshold, autoRefreshEvery); err != nil {
			return err
		}
	}
	return nil
}

// DisableCache detaches the query cache (on every pyramid level too) and
// clears the auto-refresh cadence and query counter, so a later
// EnableCache(t, 0) cannot inherit a stale auto-refresh schedule.
func (g *GeoBlock) DisableCache() {
	g.waitRefresh()
	g.cached = nil
	g.cacheThreshold = 0
	g.autoRefresh = 0
	g.queries.Store(0)
	for _, pb := range g.pyramid {
		pb.DisableCache()
	}
}

// RefreshCache rebuilds the query cache (and every pyramid level's) from
// accumulated statistics. It is a no-op without an enabled cache.
func (g *GeoBlock) RefreshCache() {
	if g.cached != nil {
		g.waitRefresh()
		g.cached.Refresh()
	}
	for _, pb := range g.pyramid {
		pb.RefreshCache()
	}
}

// CacheMetrics returns cache effectiveness counters, summed over the base
// cache and the per-level pyramid caches (zero value without a cache).
func (g *GeoBlock) CacheMetrics() CacheMetrics {
	var m CacheMetrics
	if g.cached != nil {
		m = g.cached.Metrics()
	}
	for _, pb := range g.pyramid {
		pm := pb.CacheMetrics()
		m.Probes += pm.Probes
		m.FullHits += pm.FullHits
		m.PartialHits += pm.PartialHits
		m.Misses += pm.Misses
		m.DerivedHits += pm.DerivedHits
	}
	return m
}

// CacheSizeBytes returns the current cache arena size, summed over the
// base cache and the per-level pyramid caches.
func (g *GeoBlock) CacheSizeBytes() int {
	total := 0
	if g.cached != nil {
		total = g.cached.Trie().SizeBytes()
	}
	for _, pb := range g.pyramid {
		total += pb.CacheSizeBytes()
	}
	return total
}

// autoRefreshMaxMissRate is the miss share above which an armed
// auto-refresh actually rebuilds: a cache that fits the workload is left
// untouched (warm arenas included).
const autoRefreshMaxMissRate = 0.10

// maybeAutoRefresh arms a background cache refresh every autoRefresh
// queries. The query path only pays an atomic increment; the winner of
// the CompareAndSwap gate launches a single-flight goroutine that runs
// the adaptive refresh policy, so rebuilds never add latency to the
// query that triggered them and never pile up.
func (g *GeoBlock) maybeAutoRefresh() {
	if g.autoRefresh <= 0 {
		return
	}
	if g.queries.Add(1)%uint64(g.autoRefresh) != 0 {
		return
	}
	if !g.refreshing.CompareAndSwap(false, true) {
		return // a refresh is already in flight
	}
	cached := g.cached
	g.refreshWG.Add(1)
	go func() {
		defer g.refreshWG.Done()
		defer g.refreshing.Store(false)
		cached.MaybeRefresh(autoRefreshMaxMissRate)
	}()
}

// waitRefresh blocks until no background refresh is in flight. Mutation
// entry points call it first: their contract requires queries to be
// quiesced already, so no new refresh can be armed while waiting, and an
// in-flight one must not be left reading the block mid-mutation.
func (g *GeoBlock) waitRefresh() { g.refreshWG.Wait() }

// Coarsen derives a coarser-grained GeoBlock without re-scanning base data
// (paper Sec. 3.4).
func (g *GeoBlock) Coarsen(level int) (*GeoBlock, error) {
	nb, err := core.Coarsen(g.inner, level)
	if err != nil {
		return nil, err
	}
	return wrapBlock(nb)
}

// BuildPyramid derives a pyramid of coarser levels below the base block:
// levels base−1, base−2, …, down to max(0, base−levels), each obtained by
// coarsening the previous level — one pass over the finer aggregates, no
// base-data rescan (core.Coarsen). The query planner (QueryOpts) answers
// error-bounded queries at the coarsest admissible pyramid level. Each
// level inherits the block's cache configuration with its own private
// cache. Because each level holds at most as many cells as the next finer
// one (typically ~1/4), a full pyramid costs at most a constant factor of
// the base block's memory; PyramidBytes reports the actual cost.
//
// levels <= 0 removes the pyramid. BuildPyramid is a structural mutation
// under the block's concurrency contract: it must not run concurrently
// with queries. Serialization is unaffected — WriteTo persists only the
// base level and readers rebuild the pyramid (the snapshot subsystem does
// so on restore).
func (g *GeoBlock) BuildPyramid(levels int) error {
	g.waitRefresh()
	if levels <= 0 {
		g.pyramid = nil
		return nil
	}
	pyr := make([]*GeoBlock, 0, levels)
	prev := g.inner
	for lvl := g.Level() - 1; lvl >= 0 && len(pyr) < levels; lvl-- {
		nb, err := core.Coarsen(prev, lvl)
		if err != nil {
			return err
		}
		pb, err := wrapBlock(nb)
		if err != nil {
			return err
		}
		if g.cacheThreshold > 0 {
			if err := pb.EnableCache(g.cacheThreshold, g.autoRefresh); err != nil {
				return err
			}
		}
		pyr = append(pyr, pb)
		prev = nb
	}
	g.pyramid = pyr
	return nil
}

// PyramidLevels returns the block levels of the pyramid, finest first,
// excluding the base level. Empty without a pyramid.
func (g *GeoBlock) PyramidLevels() []int {
	out := make([]int, len(g.pyramid))
	for i, pb := range g.pyramid {
		out[i] = pb.Level()
	}
	return out
}

// PyramidBytes returns the total in-memory size of the pyramid levels'
// aggregate storage — the memory price of the query-time error knob.
func (g *GeoBlock) PyramidBytes() int {
	total := 0
	for _, pb := range g.pyramid {
		total += pb.SizeBytes()
	}
	return total
}

// AtLevel returns the block answering queries at exactly the given grid
// level — the base block or a pyramid entry — and whether one exists. The
// returned block supports the full query API (own coverer, own cache);
// sharded routers use it to execute one planned level across shards.
func (g *GeoBlock) AtLevel(level int) (*GeoBlock, bool) {
	if level == g.Level() {
		return g, true
	}
	for _, pb := range g.pyramid {
		if pb.Level() == level {
			return pb, true
		}
	}
	return nil, false
}

// LevelFor returns the grid level the planner would answer at for the
// given error bound: the coarsest available level whose cell diagonal
// does not exceed maxError, or the base level when maxError is 0 (or
// tighter than the base diagonal, or no pyramid is built).
func (g *GeoBlock) LevelFor(maxError float64) int {
	return g.planTarget(maxError).Level()
}

// Update folds a batch of new tuples into the block's aggregates (paper
// Sec. 5). It returns core.ErrRebuildRequired when tuples land outside all
// existing cell aggregates; rebuild with Builder in that case. Updating
// invalidates cached aggregates, so an enabled cache is rebuilt, and
// re-derives any pyramid levels (their aggregates are views of the base
// block's; per-level caches restart empty).
func (g *GeoBlock) Update(batch *UpdateBatch) error {
	// Drain any in-flight background refresh before mutating: it reads
	// the aggregate arrays the update is about to patch.
	g.waitRefresh()
	if err := g.inner.Update(batch); err != nil {
		return err
	}
	if g.cached != nil {
		g.cached.Refresh()
	}
	if n := len(g.pyramid); n > 0 {
		if err := g.BuildPyramid(n); err != nil {
			return err
		}
	}
	return nil
}

// QueryRowsPartial answers a SELECT over raw, un-aggregated rows — the
// delta half of a base+delta query. Rows are leaf cell ids plus one value
// slice per schema column; rows outside the covering (or failing the
// block's filter) are skipped. The block's aggregate arrays are never read,
// only its schema/filter, so any pyramid level of the same dataset may
// serve as receiver. Merge the result into the base partial with MergeFrom
// in a fixed base-then-delta order: COUNT/MIN/MAX stay bit-identical to a
// from-scratch rebuild and SUM keeps the DESIGN.md Sec. 6 reassociation
// bound.
func (g *GeoBlock) QueryRowsPartial(cov []CellID, leaves []CellID, cols [][]float64, reqs ...AggRequest) (*Accumulator, error) {
	specs, err := resolveSpecs(g.inner.Schema(), reqs)
	if err != nil {
		return nil, err
	}
	return g.inner.SelectRowsPartial(cov, leaves, cols, specs)
}

// Fold builds a new GeoBlock with the given raw rows folded into this one's
// aggregates — the compaction step of the base+delta write path. Unlike
// Update it absorbs rows landing in cells with no existing aggregate (the
// sorted layout is rebuilt by one merge pass, never patched in place), and
// unlike Update it does not mutate the receiver: Fold is safe to run
// concurrently with queries on g, and the caller swaps the returned block
// in when done. Rows must be sorted ascending by leaf id. The new block
// inherits the cache configuration (cache restarts empty; auto-refresh
// re-warms it) and re-derives the same number of pyramid levels.
func (g *GeoBlock) Fold(leaves []CellID, cols [][]float64) (*GeoBlock, error) {
	nb, err := core.FoldRows(g.inner, leaves, cols)
	if err != nil {
		return nil, err
	}
	ng, err := wrapBlock(nb)
	if err != nil {
		return nil, err
	}
	if g.cacheThreshold > 0 {
		if err := ng.EnableCache(g.cacheThreshold, g.autoRefresh); err != nil {
			return nil, err
		}
	}
	if n := len(g.pyramid); n > 0 {
		if err := ng.BuildPyramid(n); err != nil {
			return nil, err
		}
	}
	return ng, nil
}

// WriteTo serialises the block (without base data or cache).
func (g *GeoBlock) WriteTo(w io.Writer) (int64, error) { return g.inner.WriteTo(w) }

// ReadGeoBlock deserialises a block written with WriteTo. The result
// supports queries but not rebuilds (no base-data reference).
func ReadGeoBlock(r io.Reader) (*GeoBlock, error) {
	b, err := core.ReadBlock(r)
	if err != nil {
		return nil, err
	}
	return wrapBlock(b)
}

// FrameInfo describes a framed serialization: total frame size, payload
// size and the payload's CRC32C — the facts a durable store records in
// its manifest next to the payload file.
type FrameInfo = core.FrameInfo

// Typed deserialization failures, wrapped by every ReadGeoBlock /
// ReadGeoBlockFramed error: ErrCorruptBlock for malformed or
// checksum-failing bytes, ErrBlockVersion for a format version this
// build does not read. The snapshot subsystem maps them onto its own
// artifact-level sentinels.
var (
	ErrCorruptBlock = core.ErrCorrupt
	ErrBlockVersion = core.ErrVersion
)

// WriteFramed serialises the block as a self-delimiting frame: the
// WriteTo payload wrapped in a length prefix and a CRC32C trailer
// (docs/FORMAT.md specifies the bytes). This is the on-disk form used by
// snapshot artifacts; prefer it over WriteTo whenever the bytes touch
// storage or a network.
func (g *GeoBlock) WriteFramed(w io.Writer) (FrameInfo, error) {
	return g.inner.EncodeFramed(w)
}

// ReadGeoBlockFramed deserialises a block written with WriteFramed,
// validating frame magic, format version and checksum before decoding.
// Failures wrap ErrCorruptBlock or ErrBlockVersion.
func ReadGeoBlockFramed(r io.Reader) (*GeoBlock, FrameInfo, error) {
	b, info, err := core.DecodeFramed(r)
	if err != nil {
		return nil, FrameInfo{}, err
	}
	g, err := wrapBlock(b)
	if err != nil {
		return nil, FrameInfo{}, err
	}
	return g, info, nil
}

// ErrReadOnly reports a mutation attempt on a mapped (format v3
// view-backed) block; see MapGeoBlock.
var ErrReadOnly = core.ErrReadOnly

// ErrRebuildRequired reports an update or ingest whose rows land outside
// every aggregated cell (Update) or built shard (store ingest): the
// block/dataset must be rebuilt with coverage for that region.
var ErrRebuildRequired = core.ErrRebuildRequired

// EncodeV3 serialises the block in the random-access format v3 and
// returns the complete file image (docs/FORMAT.md Sec. 8). v3 files can
// be reopened without per-element decode via MapGeoBlock.
func (g *GeoBlock) EncodeV3() []byte { return g.inner.EncodeV3() }

// MapGeoBlock constructs a read-only block whose aggregate arrays are
// views directly over data, a complete format-v3 file image — typically
// an mmap'd region the caller keeps valid for the block's lifetime. The
// block answers queries through the normal API (derived structures such
// as prefix sums and pyramid levels live on the heap) but rejects Update
// with ErrReadOnly. Failures wrap ErrCorruptBlock or ErrBlockVersion.
func MapGeoBlock(data []byte) (*GeoBlock, error) {
	b, err := core.MapBlock(data)
	if err != nil {
		return nil, err
	}
	return wrapBlock(b)
}

// Mapped reports whether the block is a read-only view over mapped file
// bytes.
func (g *GeoBlock) Mapped() bool { return g.inner.Mapped() }

// LevelForError returns the coarsest block level whose cell diagonal does
// not exceed maxError over the given domain bound — the user-facing way to
// turn a spatial error bound into a block level.
func LevelForError(bound Rect, maxError float64) (int, error) {
	dom, err := cellid.NewDomain(bound)
	if err != nil {
		return 0, err
	}
	return dom.LevelForMaxDiagonal(maxError), nil
}
