package geoblocks

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"

	"geoblocks/internal/aggtrie"
	"geoblocks/internal/cellid"
	"geoblocks/internal/column"
	"geoblocks/internal/core"
	"geoblocks/internal/cover"
	"geoblocks/internal/geom"
)

// Geometry and schema types, re-exported for the public API. X is
// longitude and Y latitude for geographic data, but any planar coordinates
// work.
type (
	// Point is a location in the plane.
	Point = geom.Point
	// Rect is an axis-aligned rectangle.
	Rect = geom.Rect
	// Polygon is a simple polygon with optional holes.
	Polygon = geom.Polygon
	// Schema names the value columns of a dataset.
	Schema = column.Schema
	// Filter is a conjunction of column predicates.
	Filter = column.Filter
	// Predicate is a single column comparison.
	Predicate = column.Predicate
	// Result is a query answer: tuple count plus one value per AggSpec.
	Result = core.Result
	// AggSpec requests one aggregate over one column.
	AggSpec = core.AggSpec
	// CellID identifies a cell of the spatial decomposition.
	CellID = cellid.ID
	// CacheMetrics reports query-cache effectiveness.
	CacheMetrics = aggtrie.Metrics
	// UpdateBatch is a set of new tuples for GeoBlock.Update.
	UpdateBatch = core.UpdateBatch
	// Accumulator holds a pre-finalisation partial query result. Partials
	// from different blocks over the same domain (the shards of a
	// partitioned dataset) merge with MergeFrom before Result finalises.
	Accumulator = core.Accumulator
)

// Pt constructs a Point.
func Pt(x, y float64) Point { return geom.Pt(x, y) }

// NewSchema builds a schema from column names.
func NewSchema(names ...string) Schema { return column.NewSchema(names...) }

// NewPolygon builds a polygon from an outer ring (at least three
// non-collinear vertices; orientation is normalised).
func NewPolygon(ring []Point) (*Polygon, error) { return geom.TryPolygon(ring) }

// Comparison operators for Where.
const (
	OpEq = column.OpEq
	OpNe = column.OpNe
	OpLt = column.OpLt
	OpLe = column.OpLe
	OpGt = column.OpGt
	OpGe = column.OpGe
)

// Where builds a single-predicate filter on a named column.
func Where(schema Schema, col string, op column.Op, value float64) Filter {
	return column.Pred(schema, col, op, value)
}

// MaxLevel is the finest grid level of the spatial decomposition.
const MaxLevel = cellid.MaxLevel

// Aggregate request constructors. Column-taking constructors resolve the
// name at query time against the block's schema.

// Count requests the number of tuples in the query region.
func Count() AggRequest { return AggRequest{fn: core.AggCount} }

// Sum requests the sum of the named column.
func Sum(col string) AggRequest { return AggRequest{fn: core.AggSum, col: col} }

// Min requests the minimum of the named column.
func Min(col string) AggRequest { return AggRequest{fn: core.AggMin, col: col} }

// Max requests the maximum of the named column.
func Max(col string) AggRequest { return AggRequest{fn: core.AggMax, col: col} }

// Avg requests the average of the named column (derived from sum/count).
func Avg(col string) AggRequest { return AggRequest{fn: core.AggAvg, col: col} }

// AggRequest is a named-column aggregate request, resolved against the
// block schema at query time.
type AggRequest struct {
	fn  core.AggFunc
	col string
}

// ErrUnknownColumn reports an aggregate request naming a column absent
// from the block's schema; wrap-aware callers (the HTTP layer's status
// mapping) match it with errors.Is.
var ErrUnknownColumn = errors.New("geoblocks: unknown column")

func resolveSpecs(schema Schema, reqs []AggRequest) ([]AggSpec, error) {
	specs := make([]AggSpec, len(reqs))
	for i, r := range reqs {
		spec := AggSpec{Func: r.fn}
		if r.fn != core.AggCount {
			idx := schema.ColIndex(r.col)
			if idx < 0 {
				return nil, fmt.Errorf("%w %q", ErrUnknownColumn, r.col)
			}
			spec.Col = idx
		}
		specs[i] = spec
	}
	return specs, nil
}

// GeoBlock is the public handle to a built block: the pre-aggregated cell
// grid, a region coverer configured for the block's level, and an optional
// query cache.
//
// # Concurrency
//
// Any number of goroutines may call the query methods — Query, QueryRect,
// QueryCovering, their *Parallel variants, Count, CountRect, and the read
// accessors — on one GeoBlock concurrently, with or without an enabled
// cache. The cache path is lock-light: effectiveness counters are atomic,
// query statistics are sharded, and the cache trie is published through an
// atomic pointer so readers never observe a half-built cache. Auto-refresh
// runs in a single-flight background goroutine off the query path.
//
// Structural mutations — Update, Coarsen, EnableCache, DisableCache,
// RefreshCache and deserialisation — remain exclusive: they must not run
// concurrently with queries or each other. Once queries are quiesced the
// mutation entry points drain any still-in-flight background refresh
// themselves, so the contract is simply: serve traffic, stop it (or swap
// the block pointer), mutate, resume.
type GeoBlock struct {
	inner   *core.GeoBlock
	coverer *cover.Coverer
	cached  *aggtrie.CachedBlock

	// autoRefresh rebuilds the cache every n queries (0 = manual).
	autoRefresh int
	// queries counts cache-served queries; crossing a multiple of
	// autoRefresh arms the background refresh.
	queries atomic.Uint64
	// refreshing is the single-flight gate: only the goroutine that wins
	// the CompareAndSwap launches a background refresh.
	refreshing atomic.Bool
	// refreshWG tracks the in-flight background refresh so mutation entry
	// points can drain it (waitRefresh) before touching shared state.
	refreshWG sync.WaitGroup
}

func wrapBlock(b *core.GeoBlock) (*GeoBlock, error) {
	cov, err := cover.NewCoverer(b.Domain(), cover.DefaultOptions(b.Level()))
	if err != nil {
		return nil, err
	}
	return &GeoBlock{inner: b, coverer: cov}, nil
}

// Level returns the block level (grid granularity).
func (g *GeoBlock) Level() int { return g.inner.Level() }

// Schema returns the block's value-column schema.
func (g *GeoBlock) Schema() Schema { return g.inner.Schema() }

// Filter returns the filter the block was built with.
func (g *GeoBlock) Filter() Filter { return g.inner.Filter() }

// NumCells returns the number of non-empty grid cells.
func (g *GeoBlock) NumCells() int { return g.inner.NumCells() }

// NumTuples returns the number of aggregated tuples.
func (g *GeoBlock) NumTuples() uint64 { return g.inner.NumTuples() }

// SizeBytes returns the in-memory size of the aggregate storage.
func (g *GeoBlock) SizeBytes() int { return g.inner.SizeBytes() }

// ErrorBound returns the block's spatial error bound in domain units: the
// diagonal of one grid cell. Any point of a covering is within this
// distance of the query polygon's outline (paper Sec. 3.2).
func (g *GeoBlock) ErrorBound() float64 {
	return g.inner.Domain().CellDiagonal(g.inner.Level())
}

// Inner exposes the underlying core block for advanced use (experiments,
// serialization internals).
func (g *GeoBlock) Inner() *core.GeoBlock { return g.inner }

// Cover computes the block-level cell covering of a polygon, exposed for
// diagnostics and repeated-query optimisation.
func (g *GeoBlock) Cover(poly *Polygon) []CellID {
	return g.coverer.Cover(poly).Cells
}

// CoverRect computes the covering of a rectangle.
func (g *GeoBlock) CoverRect(r Rect) []CellID {
	return g.coverer.CoverRect(r).Cells
}

// Query answers a SELECT aggregate query over an arbitrary polygon.
// COUNT/SUM/AVG combine each covering cell in O(1) from stored offsets and
// prefix sums; MIN/MAX scan the covered aggregates with fused per-column
// kernels.
func (g *GeoBlock) Query(poly *Polygon, reqs ...AggRequest) (Result, error) {
	return g.queryCovering(g.Cover(poly), reqs)
}

// QueryRect answers a SELECT aggregate query over a rectangle (rectangles
// are just constrained polygons; the same covering machinery applies).
func (g *GeoBlock) QueryRect(r Rect, reqs ...AggRequest) (Result, error) {
	return g.queryCovering(g.CoverRect(r), reqs)
}

// QueryCovering answers a SELECT query over a pre-computed covering.
func (g *GeoBlock) QueryCovering(cov []CellID, reqs ...AggRequest) (Result, error) {
	return g.queryCovering(cov, reqs)
}

// QueryParallel answers a SELECT query over a polygon, partitioning a
// large covering across worker goroutines (workers <= 0 means
// GOMAXPROCS). Small coverings fall back to the serial kernel, so the
// method is safe to use unconditionally. COUNT/MIN/MAX results are
// bit-identical to Query; SUM/AVG differ only by floating-point
// reassociation at the merge points (DESIGN.md Sec. 6). The parallel path
// neither probes nor warms the query cache — it targets the huge
// analytical coverings where splitting the scan beats pre-combined
// records.
func (g *GeoBlock) QueryParallel(poly *Polygon, workers int, reqs ...AggRequest) (Result, error) {
	return g.queryCoveringParallel(g.Cover(poly), workers, reqs)
}

// QueryRectParallel is QueryParallel over a rectangle.
func (g *GeoBlock) QueryRectParallel(r Rect, workers int, reqs ...AggRequest) (Result, error) {
	return g.queryCoveringParallel(g.CoverRect(r), workers, reqs)
}

// QueryCoveringParallel is QueryParallel over a pre-computed covering.
func (g *GeoBlock) QueryCoveringParallel(cov []CellID, workers int, reqs ...AggRequest) (Result, error) {
	return g.queryCoveringParallel(cov, workers, reqs)
}

// QueryCoveringPartial answers a SELECT query over a pre-computed covering
// but stops before finalisation, returning the partial accumulator. It is
// the per-shard hook of a sharded deployment (internal/store): a router
// computes one covering, splits it with SplitCovering, runs one partial
// per shard and merges them with Accumulator.MergeFrom before calling
// Result. With an enabled cache the partial goes through the adapted cache
// algorithm (probes, statistics and auto-refresh included), exactly like
// Query.
func (g *GeoBlock) QueryCoveringPartial(cov []CellID, reqs ...AggRequest) (*Accumulator, error) {
	specs, err := resolveSpecs(g.inner.Schema(), reqs)
	if err != nil {
		return nil, err
	}
	if g.cached != nil {
		acc, err := g.cached.SelectPartial(cov, specs)
		if err != nil {
			return nil, err
		}
		g.maybeAutoRefresh()
		return acc, nil
	}
	return g.inner.SelectCoveringPartial(cov, specs)
}

// SplitCovering returns the sub-covering of cov that intersects cell's
// leaf range — the cells a shard owning cell must answer. cov must be
// sorted ascending with disjoint cells (the form Cover and CoverRect
// produce); the result is a sub-slice of cov sharing its backing array,
// so splitting a covering across shards allocates nothing. A covering
// cell coarser than cell appears in the split of every shard it overlaps;
// because shards partition the underlying cell aggregates, the per-shard
// contributions of such a cell are disjoint and merge exactly.
func SplitCovering(cov []CellID, cell CellID) []CellID {
	lo, hi := cell.RangeMin(), cell.RangeMax()
	// Disjoint sorted cells have sorted range endpoints, so both bounds
	// are binary searches.
	first := sort.Search(len(cov), func(i int) bool { return cov[i].RangeMax() >= lo })
	last := sort.Search(len(cov), func(i int) bool { return cov[i].RangeMin() > hi })
	return cov[first:last:last]
}

func (g *GeoBlock) queryCoveringParallel(cov []CellID, workers int, reqs []AggRequest) (Result, error) {
	specs, err := resolveSpecs(g.inner.Schema(), reqs)
	if err != nil {
		return Result{}, err
	}
	return g.inner.SelectCoveringParallel(cov, specs, workers)
}

func (g *GeoBlock) queryCovering(cov []CellID, reqs []AggRequest) (Result, error) {
	specs, err := resolveSpecs(g.inner.Schema(), reqs)
	if err != nil {
		return Result{}, err
	}
	if g.cached != nil {
		res, err := g.cached.Select(cov, specs)
		if err != nil {
			return Result{}, err
		}
		g.maybeAutoRefresh()
		return res, nil
	}
	return g.inner.SelectCovering(cov, specs)
}

// Count answers a COUNT query over a polygon with the specialised
// range-sum algorithm (paper Listing 2).
func (g *GeoBlock) Count(poly *Polygon) uint64 {
	cov := g.Cover(poly)
	if g.cached != nil {
		n := g.cached.Count(cov)
		g.maybeAutoRefresh()
		return n
	}
	return g.inner.CountCovering(cov)
}

// CountRect is Count over a rectangle.
func (g *GeoBlock) CountRect(r Rect) uint64 {
	cov := g.CoverRect(r)
	if g.cached != nil {
		n := g.cached.Count(cov)
		g.maybeAutoRefresh()
		return n
	}
	return g.inner.CountCovering(cov)
}

// EnableCache attaches an AggregateTrie query cache with a budget of
// threshold × the block's aggregate storage size (the paper's aggregate
// threshold, Fig. 18). The threshold must be a positive number — zero or
// negative values would silently yield a 0-byte budget and a cache that
// can never store a record. autoRefreshEvery > 0 rebuilds the cache from
// query statistics (in the background, off the query path) every that
// many queries; 0 leaves refresh manual; negative values are rejected.
func (g *GeoBlock) EnableCache(threshold float64, autoRefreshEvery int) error {
	if autoRefreshEvery < 0 {
		return fmt.Errorf("geoblocks: autoRefreshEvery must be >= 0, got %d", autoRefreshEvery)
	}
	cached, err := aggtrie.NewWithThreshold(g.inner, threshold)
	if err != nil {
		return err
	}
	g.waitRefresh()
	g.cached = cached
	g.autoRefresh = autoRefreshEvery
	g.queries.Store(0)
	return nil
}

// DisableCache detaches the query cache and clears the auto-refresh
// cadence and query counter, so a later EnableCache(t, 0) cannot inherit
// a stale auto-refresh schedule.
func (g *GeoBlock) DisableCache() {
	g.waitRefresh()
	g.cached = nil
	g.autoRefresh = 0
	g.queries.Store(0)
}

// RefreshCache rebuilds the query cache from accumulated statistics. It is
// a no-op without an enabled cache.
func (g *GeoBlock) RefreshCache() {
	if g.cached != nil {
		g.waitRefresh()
		g.cached.Refresh()
	}
}

// CacheMetrics returns cache effectiveness counters (zero value without a
// cache).
func (g *GeoBlock) CacheMetrics() CacheMetrics {
	if g.cached == nil {
		return CacheMetrics{}
	}
	return g.cached.Metrics()
}

// CacheSizeBytes returns the current cache arena size.
func (g *GeoBlock) CacheSizeBytes() int {
	if g.cached == nil {
		return 0
	}
	return g.cached.Trie().SizeBytes()
}

// autoRefreshMaxMissRate is the miss share above which an armed
// auto-refresh actually rebuilds: a cache that fits the workload is left
// untouched (warm arenas included).
const autoRefreshMaxMissRate = 0.10

// maybeAutoRefresh arms a background cache refresh every autoRefresh
// queries. The query path only pays an atomic increment; the winner of
// the CompareAndSwap gate launches a single-flight goroutine that runs
// the adaptive refresh policy, so rebuilds never add latency to the
// query that triggered them and never pile up.
func (g *GeoBlock) maybeAutoRefresh() {
	if g.autoRefresh <= 0 {
		return
	}
	if g.queries.Add(1)%uint64(g.autoRefresh) != 0 {
		return
	}
	if !g.refreshing.CompareAndSwap(false, true) {
		return // a refresh is already in flight
	}
	cached := g.cached
	g.refreshWG.Add(1)
	go func() {
		defer g.refreshWG.Done()
		defer g.refreshing.Store(false)
		cached.MaybeRefresh(autoRefreshMaxMissRate)
	}()
}

// waitRefresh blocks until no background refresh is in flight. Mutation
// entry points call it first: their contract requires queries to be
// quiesced already, so no new refresh can be armed while waiting, and an
// in-flight one must not be left reading the block mid-mutation.
func (g *GeoBlock) waitRefresh() { g.refreshWG.Wait() }

// Coarsen derives a coarser-grained GeoBlock without re-scanning base data
// (paper Sec. 3.4).
func (g *GeoBlock) Coarsen(level int) (*GeoBlock, error) {
	nb, err := core.Coarsen(g.inner, level)
	if err != nil {
		return nil, err
	}
	return wrapBlock(nb)
}

// Update folds a batch of new tuples into the block's aggregates (paper
// Sec. 5). It returns core.ErrRebuildRequired when tuples land outside all
// existing cell aggregates; rebuild with Builder in that case. Updating
// invalidates cached aggregates, so an enabled cache is rebuilt.
func (g *GeoBlock) Update(batch *UpdateBatch) error {
	// Drain any in-flight background refresh before mutating: it reads
	// the aggregate arrays the update is about to patch.
	g.waitRefresh()
	if err := g.inner.Update(batch); err != nil {
		return err
	}
	if g.cached != nil {
		g.cached.Refresh()
	}
	return nil
}

// WriteTo serialises the block (without base data or cache).
func (g *GeoBlock) WriteTo(w io.Writer) (int64, error) { return g.inner.WriteTo(w) }

// ReadGeoBlock deserialises a block written with WriteTo. The result
// supports queries but not rebuilds (no base-data reference).
func ReadGeoBlock(r io.Reader) (*GeoBlock, error) {
	b, err := core.ReadBlock(r)
	if err != nil {
		return nil, err
	}
	return wrapBlock(b)
}

// FrameInfo describes a framed serialization: total frame size, payload
// size and the payload's CRC32C — the facts a durable store records in
// its manifest next to the payload file.
type FrameInfo = core.FrameInfo

// Typed deserialization failures, wrapped by every ReadGeoBlock /
// ReadGeoBlockFramed error: ErrCorruptBlock for malformed or
// checksum-failing bytes, ErrBlockVersion for a format version this
// build does not read. The snapshot subsystem maps them onto its own
// artifact-level sentinels.
var (
	ErrCorruptBlock = core.ErrCorrupt
	ErrBlockVersion = core.ErrVersion
)

// WriteFramed serialises the block as a self-delimiting frame: the
// WriteTo payload wrapped in a length prefix and a CRC32C trailer
// (docs/FORMAT.md specifies the bytes). This is the on-disk form used by
// snapshot artifacts; prefer it over WriteTo whenever the bytes touch
// storage or a network.
func (g *GeoBlock) WriteFramed(w io.Writer) (FrameInfo, error) {
	return g.inner.EncodeFramed(w)
}

// ReadGeoBlockFramed deserialises a block written with WriteFramed,
// validating frame magic, format version and checksum before decoding.
// Failures wrap ErrCorruptBlock or ErrBlockVersion.
func ReadGeoBlockFramed(r io.Reader) (*GeoBlock, FrameInfo, error) {
	b, info, err := core.DecodeFramed(r)
	if err != nil {
		return nil, FrameInfo{}, err
	}
	g, err := wrapBlock(b)
	if err != nil {
		return nil, FrameInfo{}, err
	}
	return g, info, nil
}

// LevelForError returns the coarsest block level whose cell diagonal does
// not exceed maxError over the given domain bound — the user-facing way to
// turn a spatial error bound into a block level.
func LevelForError(bound Rect, maxError float64) (int, error) {
	dom, err := cellid.NewDomain(bound)
	if err != nil {
		return 0, err
	}
	return dom.LevelForMaxDiagonal(maxError), nil
}
