package geoblocks_test

import (
	"math"
	"testing"

	"geoblocks/internal/aggtrie"
	"geoblocks/internal/baseline"
	"geoblocks/internal/btree"
	"geoblocks/internal/cellid"
	"geoblocks/internal/column"
	"geoblocks/internal/core"
	"geoblocks/internal/cover"
	"geoblocks/internal/dataset"
	"geoblocks/internal/geom"
	"geoblocks/internal/phtree"
	"geoblocks/internal/rtree"
	"geoblocks/internal/workload"
)

// TestAllApproachesAgree is the repository's cross-module integration
// test: it runs the full pipeline (generate → extract → build) for the
// GeoBlock and every baseline, then checks on a real polygon workload that
//
//   - Block, BlockQC, BinarySearch and BTree produce identical results
//     over identical coverings (they share the decomposition);
//   - COUNT queries agree with SELECT counts everywhere;
//   - the covering result over-approximates the exact polygon count but
//     never by more than the boundary cells can explain;
//   - the PH-tree's interior-rectangle count never exceeds the exact
//     polygon count (interior rect ⊆ polygon, up to quantization).
func TestAllApproachesAgree(t *testing.T) {
	raw := dataset.Generate(dataset.NYCTaxi(), 60_000, 3)
	base, _, err := raw.Extract(-1)
	if err != nil {
		t.Fatal(err)
	}
	dom := raw.Domain()
	const level = 9

	blk, err := core.Build(base, core.BuildOptions{Level: level})
	if err != nil {
		t.Fatal(err)
	}
	qc, err := aggtrie.NewWithThreshold(blk, 0.20)
	if err != nil {
		t.Fatal(err)
	}
	bin := baseline.NewBinarySearch(base.Table)
	bt := btree.NewIndex(base.Table)
	pointAt := func(row int) geom.Point { return dom.CellCenter(cellid.ID(base.Table.Keys[row])) }
	ph := phtree.New(base.Table, dom.Bound(), pointAt)
	art := rtree.New(base.Table, pointAt)

	coverer := cover.MustCoverer(dom, cover.DefaultOptions(level))
	polys := workload.Neighborhoods(raw.Spec.Bound, 5)[:40]
	specs := []core.AggSpec{
		{Func: core.AggCount},
		{Col: 0, Func: core.AggSum},
		{Col: 0, Func: core.AggMin},
		{Col: 1, Func: core.AggMax},
		{Col: 3, Func: core.AggAvg},
	}

	// Two passes so the second exercises a warm cache.
	for pass := 0; pass < 2; pass++ {
		for pi, poly := range polys {
			cov := coverer.Cover(poly).Cells

			want, err := blk.SelectCovering(cov, specs)
			if err != nil {
				t.Fatal(err)
			}
			fromQC, err := qc.Select(cov, specs)
			if err != nil {
				t.Fatal(err)
			}
			fromBin := bin.AggregateCovering(cov, specs)
			fromBT := bt.AggregateCovering(cov, specs)

			for name, got := range map[string]core.Result{
				"BlockQC": fromQC, "BinarySearch": fromBin, "BTree": fromBT,
			} {
				if got.Count != want.Count {
					t.Fatalf("pass %d poly %d: %s count %d != Block %d", pass, pi, name, got.Count, want.Count)
				}
				for i := range got.Values {
					a, b := got.Values[i], want.Values[i]
					if math.IsNaN(a) && math.IsNaN(b) {
						continue
					}
					if diff := math.Abs(a - b); diff > 1e-6*math.Max(1, math.Abs(b)) {
						t.Fatalf("pass %d poly %d: %s value %d = %g, Block %g", pass, pi, name, i, a, b)
					}
				}
			}

			// COUNT agreement across count paths.
			cnt := blk.CountCovering(cov)
			if cnt != want.Count {
				t.Fatalf("poly %d: CountCovering %d != select %d", pi, cnt, want.Count)
			}
			if got := qc.Count(cov); got != cnt {
				t.Fatalf("poly %d: cached count %d != %d", pi, got, cnt)
			}
			if got := bin.CountCovering(cov); got != cnt {
				t.Fatalf("poly %d: binary count %d != %d", pi, got, cnt)
			}
			if got := bt.CountCovering(cov); got != cnt {
				t.Fatalf("poly %d: btree count %d != %d", pi, got, cnt)
			}

			if pass == 1 {
				continue // ground-truth checks only once
			}
			exact := baseline.ExactPolygonCount(base.Table, dom, poly)
			if want.Count < exact {
				t.Fatalf("poly %d: covering count %d below exact %d (false negatives impossible)", pi, want.Count, exact)
			}
			ir := poly.InteriorRect(24)
			if ir.IsValid() {
				phCount := ph.CountWindow(ir)
				// Interior rect is contained in the polygon; allow a tiny
				// quantization margin.
				if float64(phCount) > float64(exact)*1.02+5 {
					t.Fatalf("poly %d: PH-tree interior count %d exceeds exact %d", pi, phCount, exact)
				}
				_ = art.CountRect(ir) // must not panic; accuracy covered in rtree tests
			}
		}
		qc.Refresh()
	}

	// The warm cache must actually have been used.
	if qc.Metrics().FullHits == 0 {
		t.Fatal("integration workload produced no cache hits")
	}
}

// TestErrorShrinksMonotonically checks the end-to-end error bound story on
// the public API: finer levels never increase the covering count error.
func TestErrorShrinksMonotonically(t *testing.T) {
	raw := dataset.Generate(dataset.NYCTaxi(), 40_000, 9)
	base, _, err := raw.Extract(-1)
	if err != nil {
		t.Fatal(err)
	}
	dom := raw.Domain()
	poly := geom.RegularPolygon(geom.Pt(-73.97, 40.75), 0.05, 9)
	exact := baseline.ExactPolygonCount(base.Table, dom, poly)
	if exact == 0 {
		t.Fatal("test polygon empty")
	}
	prevErr := math.Inf(1)
	for _, level := range []int{5, 7, 9, 11} {
		blk, err := core.Build(base, core.BuildOptions{Level: level})
		if err != nil {
			t.Fatal(err)
		}
		cov := cover.MustCoverer(dom, cover.DefaultOptions(level)).Cover(poly)
		got := blk.CountCovering(cov.Cells)
		if got < exact {
			t.Fatalf("level %d: covering lost tuples (%d < %d)", level, got, exact)
		}
		relErr := float64(got-exact) / float64(exact)
		if relErr > prevErr+1e-9 {
			t.Fatalf("level %d: error %.4f grew from %.4f", level, relErr, prevErr)
		}
		prevErr = relErr
	}
	if prevErr > 0.10 {
		t.Fatalf("finest level error %.4f too large", prevErr)
	}
}

// TestFilteredPipelineEndToEnd drives the whole pipeline with a filter:
// filtered blocks, filtered baselines (filter applied at build for blocks,
// at scan time for brute force) and the COUNT path must tell one story.
func TestFilteredPipelineEndToEnd(t *testing.T) {
	raw := dataset.Generate(dataset.NYCTaxi(), 50_000, 13)
	base, _, err := raw.Extract(-1)
	if err != nil {
		t.Fatal(err)
	}
	dom := raw.Domain()
	filter := column.Pred(raw.Spec.Schema, "passenger_count", column.OpEq, 1)

	blk, err := core.Build(base, core.BuildOptions{Level: 9, Filter: filter})
	if err != nil {
		t.Fatal(err)
	}
	coverer := cover.MustCoverer(dom, cover.DefaultOptions(9))
	for _, poly := range workload.Neighborhoods(raw.Spec.Bound, 2)[:20] {
		cov := coverer.Cover(poly).Cells
		got := blk.CountCovering(cov)

		// Brute force with filter over the covering.
		var want uint64
		for i := 0; i < base.Table.NumRows(); i++ {
			if !filter.MatchesRow(base.Table, i) {
				continue
			}
			leaf := cellid.ID(base.Table.Keys[i])
			for _, qc := range cov {
				if qc.Contains(leaf) {
					want++
					break
				}
			}
		}
		if got != want {
			t.Fatalf("filtered count %d != brute force %d", got, want)
		}
	}
}
