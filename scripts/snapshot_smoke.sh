#!/bin/sh
# snapshot_smoke.sh — end-to-end snapshot round trip against a real
# geoblocksd: build the daemon, create a dataset, query it, snapshot it,
# kill the daemon, restart it with the same -data-dir, and verify the
# restored dataset answers the query identically. Then the mmap legs:
# restart with -mmap against the v2 snapshot (eager fallback must serve
# it), re-snapshot (which writes format v3), and restart with -mmap
# once more (true mapped serving, shards faulted on demand) — the
# answers must be byte-identical across all four runs. Finally the
# ingest leg: acknowledge row batches over the WAL, SIGKILL the daemon
# (no graceful shutdown, no snapshot), restart, and verify every acked
# row survived exactly once. Run from anywhere inside the repository:
#
#   scripts/snapshot_smoke.sh [port]
set -eu

root=$(cd "$(dirname "$0")/.." && pwd)
port=${1:-18080}
base="http://127.0.0.1:$port"
work=$(mktemp -d)
pid=""

cleanup() {
	[ -n "$pid" ] && kill "$pid" 2>/dev/null || true
	wait 2>/dev/null || true
	rm -rf "$work"
}
trap cleanup EXIT INT TERM

fail() {
	echo "snapshot_smoke: FAIL: $*" >&2
	[ -f "$work/daemon.log" ] && sed 's/^/  daemon: /' "$work/daemon.log" >&2
	exit 1
}

wait_ready() {
	i=0
	until curl -sf "$base/v1/datasets" >/dev/null 2>&1; do
		i=$((i + 1))
		[ "$i" -gt 100 ] && fail "daemon did not become ready"
		sleep 0.1
	done
}

# The query used before and after the restart; elapsed_us is stripped
# before diffing (it is the only legitimately nondeterministic field).
query() {
	curl -sf "$base/v1/query" -d '{
	  "dataset": "taxi", "rect": [-74.05, 40.60, -73.85, 40.85],
	  "aggs": [{"func":"count"},{"func":"sum","col":"fare_amount"},
	           {"func":"min","col":"fare_amount"},{"func":"max","col":"fare_amount"}]
	}' | grep -v elapsed_us
}

echo "snapshot_smoke: building geoblocksd"
go build -o "$work/geoblocksd" "$root/cmd/geoblocksd"

echo "snapshot_smoke: first run (build dataset, snapshot, SIGTERM)"
"$work/geoblocksd" -addr "127.0.0.1:$port" -data-dir "$work/data" \
	-load taxi:30000 -shard-level 2 >"$work/daemon.log" 2>&1 &
pid=$!
wait_ready

query >"$work/before.json"
grep -q '"count"' "$work/before.json" || fail "query before snapshot returned no count"

curl -sf -X POST "$base/v1/datasets/taxi/snapshot" >"$work/snap.json" ||
	fail "snapshot endpoint failed"
[ -f "$work/data/taxi/manifest.json" ] || fail "no manifest written"
[ -f "$work/data/taxi/manifest.crc32c" ] || fail "no manifest sidecar written"

kill -TERM "$pid"
wait "$pid" || fail "daemon did not exit cleanly"
pid=""

echo "snapshot_smoke: second run (restore from -data-dir, re-query)"
"$work/geoblocksd" -addr "127.0.0.1:$port" -data-dir "$work/data" \
	>"$work/daemon.log" 2>&1 &
pid=$!
wait_ready
grep -q "restored taxi" "$work/daemon.log" || fail "daemon did not restore from snapshot"

query >"$work/after.json"
diff -u "$work/before.json" "$work/after.json" ||
	fail "restored dataset answers differently"

kill -TERM "$pid"
wait "$pid" || fail "second daemon did not exit cleanly"
pid=""

echo "snapshot_smoke: third run (-mmap against the v2 snapshot: eager fallback, then re-snapshot as v3)"
"$work/geoblocksd" -addr "127.0.0.1:$port" -data-dir "$work/data" -mmap \
	>"$work/daemon.log" 2>&1 &
pid=$!
wait_ready
# v2 snapshots are not mappable; -mmap must fall back to an eager
# restore ("restored", not "mapped") and still serve correct answers.
grep -q "restored taxi" "$work/daemon.log" || fail "-mmap daemon did not eager-fallback on the v2 snapshot"

query >"$work/mmap-fallback.json"
diff -u "$work/before.json" "$work/mmap-fallback.json" ||
	fail "-mmap eager-fallback answers differently"

# Re-snapshot under -mmap: the writer now produces format v3.
curl -sf -X POST "$base/v1/datasets/taxi/snapshot" >"$work/snap-v3.json" ||
	fail "v3 snapshot endpoint failed"
grep -q '"format_version": *2' "$work/snap-v3.json" || fail "-mmap snapshot did not report format_version 2"
ls "$work/data/taxi/" | grep -q '\.gb3$' || fail "no .gb3 shard files written"

kill -TERM "$pid"
wait "$pid" || fail "third daemon did not exit cleanly"
pid=""

echo "snapshot_smoke: fourth run (-mmap against the v3 snapshot: mapped serving)"
"$work/geoblocksd" -addr "127.0.0.1:$port" -data-dir "$work/data" -mmap \
	>"$work/daemon.log" 2>&1 &
pid=$!
wait_ready
grep -q "mapped taxi" "$work/daemon.log" || fail "daemon did not serve the v3 snapshot mapped"

query >"$work/mmap.json"
diff -u "$work/before.json" "$work/mmap.json" ||
	fail "mapped dataset answers differently"

# The query above faulted shards in; the residency counters must show it.
curl -sf "$base/v1/stats" | grep -q '"faults": *[1-9]' ||
	fail "mapped serving reported no shard faults"

kill -TERM "$pid"
wait "$pid" || fail "fourth daemon did not exit cleanly"
pid=""

# --- Ingest leg: acked batches must survive a SIGKILL exactly once. ---

# count runs the smoke query and extracts the COUNT aggregate.
count() {
	curl -sf "$base/v1/query" -d '{
	  "dataset": "taxi", "rect": [-74.05, 40.60, -73.85, 40.85],
	  "aggs": [{"func":"count"}]
	}' | sed -n 's/.*"count":[[:space:]]*\([0-9]*\).*/\1/p'
}

# ingest_batch posts one 5-row batch (all rows inside the smoke query
# rect) and fails unless the daemon acknowledges it with a sequence.
ingest_batch() {
	curl -sf "$base/v1/datasets/taxi/rows" -d '{"rows": [
	  [-73.98, 40.75, 12.5, 3.1, 2.0, 0.16, 1, 14, 1],
	  [-73.97, 40.74, 8.0, 1.2, 1.0, 0.12, 2, 9, 1],
	  [-73.96, 40.73, 22.5, 7.9, 4.5, 0.20, 1, 18, 2],
	  [-73.95, 40.76, 6.5, 0.8, 0.0, 0.00, 3, 23, 2],
	  [-73.99, 40.77, 15.0, 4.4, 3.0, 0.20, 1, 7, 1]
	]}' | grep -q '"seq"'
}

echo "snapshot_smoke: fifth run (ingest over the WAL, then SIGKILL)"
ingdir="$work/ingest-data"
"$work/geoblocksd" -addr "127.0.0.1:$port" -data-dir "$ingdir" \
	-load taxi:30000 -shard-level 2 -compact-interval 500ms >"$work/daemon.log" 2>&1 &
pid=$!
wait_ready

# The snapshot is the recovery base; everything acked after it lives
# only in the write-ahead log until the crash.
curl -sf -X POST "$base/v1/datasets/taxi/snapshot" >/dev/null ||
	fail "ingest-leg snapshot failed"
base_count=$(count)
[ -n "$base_count" ] || fail "ingest-leg baseline query returned no count"

ingest_batch || fail "ingest batch 1 not acknowledged"
ingest_batch || fail "ingest batch 2 not acknowledged"
# Fold the first two batches into the in-memory base: after the kill,
# recovery must replay them from the WAL without double-counting the
# fold. The third batch stays in the delta across the crash.
curl -sf -X POST "$base/v1/datasets/taxi/compact" >/dev/null ||
	fail "ingest-leg compact failed"
ingest_batch || fail "ingest batch 3 not acknowledged"
[ -f "$ingdir/taxi.wal" ] || fail "no write-ahead log written"

live_count=$(count)
[ "$live_count" = "$((base_count + 15))" ] ||
	fail "pre-crash count $live_count, want $((base_count + 15))"

kill -KILL "$pid"
wait "$pid" 2>/dev/null || true
pid=""

echo "snapshot_smoke: sixth run (recover acked rows from the WAL)"
"$work/geoblocksd" -addr "127.0.0.1:$port" -data-dir "$ingdir" \
	>"$work/daemon.log" 2>&1 &
pid=$!
wait_ready
grep -q "restored taxi" "$work/daemon.log" || fail "daemon did not restore after SIGKILL"

recovered=$(count)
[ "$recovered" = "$((base_count + 15))" ] ||
	fail "post-crash count $recovered, want $((base_count + 15)): acked rows lost or double-counted"

# Ingest keeps working after recovery, and folding changes nothing.
ingest_batch || fail "post-recovery ingest batch not acknowledged"
curl -sf -X POST "$base/v1/datasets/taxi/compact" >/dev/null ||
	fail "post-recovery compact failed"
final=$(count)
[ "$final" = "$((base_count + 20))" ] ||
	fail "post-recovery count $final, want $((base_count + 20))"

kill -TERM "$pid"
wait "$pid" || fail "sixth daemon did not exit cleanly"
pid=""

echo "snapshot_smoke: OK (restored, eager-fallback and mapped answers identical; acked ingest survived SIGKILL exactly once)"
