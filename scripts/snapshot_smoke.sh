#!/bin/sh
# snapshot_smoke.sh — end-to-end snapshot round trip against a real
# geoblocksd: build the daemon, create a dataset, query it, snapshot it,
# kill the daemon, restart it with the same -data-dir, and verify the
# restored dataset answers the query identically. Then the mmap legs:
# restart with -mmap against the v2 snapshot (eager fallback must serve
# it), re-snapshot (which writes format v3), and restart with -mmap
# once more (true mapped serving, shards faulted on demand) — the
# answers must be byte-identical across all four runs. Run from
# anywhere inside the repository:
#
#   scripts/snapshot_smoke.sh [port]
set -eu

root=$(cd "$(dirname "$0")/.." && pwd)
port=${1:-18080}
base="http://127.0.0.1:$port"
work=$(mktemp -d)
pid=""

cleanup() {
	[ -n "$pid" ] && kill "$pid" 2>/dev/null || true
	wait 2>/dev/null || true
	rm -rf "$work"
}
trap cleanup EXIT INT TERM

fail() {
	echo "snapshot_smoke: FAIL: $*" >&2
	[ -f "$work/daemon.log" ] && sed 's/^/  daemon: /' "$work/daemon.log" >&2
	exit 1
}

wait_ready() {
	i=0
	until curl -sf "$base/v1/datasets" >/dev/null 2>&1; do
		i=$((i + 1))
		[ "$i" -gt 100 ] && fail "daemon did not become ready"
		sleep 0.1
	done
}

# The query used before and after the restart; elapsed_us is stripped
# before diffing (it is the only legitimately nondeterministic field).
query() {
	curl -sf "$base/v1/query" -d '{
	  "dataset": "taxi", "rect": [-74.05, 40.60, -73.85, 40.85],
	  "aggs": [{"func":"count"},{"func":"sum","col":"fare_amount"},
	           {"func":"min","col":"fare_amount"},{"func":"max","col":"fare_amount"}]
	}' | grep -v elapsed_us
}

echo "snapshot_smoke: building geoblocksd"
go build -o "$work/geoblocksd" "$root/cmd/geoblocksd"

echo "snapshot_smoke: first run (build dataset, snapshot, SIGTERM)"
"$work/geoblocksd" -addr "127.0.0.1:$port" -data-dir "$work/data" \
	-load taxi:30000 -shard-level 2 >"$work/daemon.log" 2>&1 &
pid=$!
wait_ready

query >"$work/before.json"
grep -q '"count"' "$work/before.json" || fail "query before snapshot returned no count"

curl -sf -X POST "$base/v1/datasets/taxi/snapshot" >"$work/snap.json" ||
	fail "snapshot endpoint failed"
[ -f "$work/data/taxi/manifest.json" ] || fail "no manifest written"
[ -f "$work/data/taxi/manifest.crc32c" ] || fail "no manifest sidecar written"

kill -TERM "$pid"
wait "$pid" || fail "daemon did not exit cleanly"
pid=""

echo "snapshot_smoke: second run (restore from -data-dir, re-query)"
"$work/geoblocksd" -addr "127.0.0.1:$port" -data-dir "$work/data" \
	>"$work/daemon.log" 2>&1 &
pid=$!
wait_ready
grep -q "restored taxi" "$work/daemon.log" || fail "daemon did not restore from snapshot"

query >"$work/after.json"
diff -u "$work/before.json" "$work/after.json" ||
	fail "restored dataset answers differently"

kill -TERM "$pid"
wait "$pid" || fail "second daemon did not exit cleanly"
pid=""

echo "snapshot_smoke: third run (-mmap against the v2 snapshot: eager fallback, then re-snapshot as v3)"
"$work/geoblocksd" -addr "127.0.0.1:$port" -data-dir "$work/data" -mmap \
	>"$work/daemon.log" 2>&1 &
pid=$!
wait_ready
# v2 snapshots are not mappable; -mmap must fall back to an eager
# restore ("restored", not "mapped") and still serve correct answers.
grep -q "restored taxi" "$work/daemon.log" || fail "-mmap daemon did not eager-fallback on the v2 snapshot"

query >"$work/mmap-fallback.json"
diff -u "$work/before.json" "$work/mmap-fallback.json" ||
	fail "-mmap eager-fallback answers differently"

# Re-snapshot under -mmap: the writer now produces format v3.
curl -sf -X POST "$base/v1/datasets/taxi/snapshot" >"$work/snap-v3.json" ||
	fail "v3 snapshot endpoint failed"
grep -q '"format_version": *2' "$work/snap-v3.json" || fail "-mmap snapshot did not report format_version 2"
ls "$work/data/taxi/" | grep -q '\.gb3$' || fail "no .gb3 shard files written"

kill -TERM "$pid"
wait "$pid" || fail "third daemon did not exit cleanly"
pid=""

echo "snapshot_smoke: fourth run (-mmap against the v3 snapshot: mapped serving)"
"$work/geoblocksd" -addr "127.0.0.1:$port" -data-dir "$work/data" -mmap \
	>"$work/daemon.log" 2>&1 &
pid=$!
wait_ready
grep -q "mapped taxi" "$work/daemon.log" || fail "daemon did not serve the v3 snapshot mapped"

query >"$work/mmap.json"
diff -u "$work/before.json" "$work/mmap.json" ||
	fail "mapped dataset answers differently"

# The query above faulted shards in; the residency counters must show it.
curl -sf "$base/v1/stats" | grep -q '"faults": *[1-9]' ||
	fail "mapped serving reported no shard faults"

kill -TERM "$pid"
wait "$pid" || fail "fourth daemon did not exit cleanly"
pid=""

echo "snapshot_smoke: OK (restored, eager-fallback and mapped answers are identical)"
