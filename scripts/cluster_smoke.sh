#!/bin/sh
# cluster_smoke.sh — end-to-end cluster scatter-gather against real
# geoblocksd processes: a routing coordinator in front of two data
# peers (full replicas, replication 2), plus an identical single-node
# control. The cluster's answers must be byte-identical to the
# control's. Mid-stream, one replica is SIGKILLed: queries must keep
# answering identically through failover (the coordinator's failover
# counter must move), and once the second replica dies too the
# coordinator must refuse with a typed 503 naming the starved shards —
# never answer partially. Run from anywhere inside the repository:
#
#   scripts/cluster_smoke.sh [baseport]
set -eu

root=$(cd "$(dirname "$0")/.." && pwd)
baseport=${1:-18090}
p0=$baseport p1=$((baseport + 1)) p2=$((baseport + 2)) pc=$((baseport + 3))
co="http://127.0.0.1:$p0"
ctl="http://127.0.0.1:$pc"
work=$(mktemp -d)
pids=""

cleanup() {
	for pid in $pids; do
		kill "$pid" 2>/dev/null || true
	done
	wait 2>/dev/null || true
	rm -rf "$work"
}
trap cleanup EXIT INT TERM

fail() {
	echo "cluster_smoke: FAIL: $*" >&2
	for log in "$work"/*.log; do
		[ -f "$log" ] && sed "s|^|  $(basename "$log"): |" "$log" >&2
	done
	exit 1
}

wait_ready() {
	i=0
	until curl -sf "$1/v1/datasets" >/dev/null 2>&1; do
		i=$((i + 1))
		[ "$i" -gt 100 ] && fail "daemon on $1 did not become ready"
		sleep 0.1
	done
}

# The smoke query; elapsed_us is stripped before diffing (it is the
# only legitimately nondeterministic field).
qbody='{
  "dataset": "taxi", "rect": [-74.05, 40.60, -73.85, 40.85],
  "aggs": [{"func":"count"},{"func":"sum","col":"fare_amount"},
           {"func":"min","col":"fare_amount"},{"func":"max","col":"fare_amount"},
           {"func":"avg","col":"trip_distance"}]
}'
query() {
	curl -sf "$1/v1/query" -d "$qbody" | grep -v elapsed_us
}

echo "cluster_smoke: building geoblocksd"
go build -o "$work/geoblocksd" "$root/cmd/geoblocksd"

# Every node builds the identical dataset: same spec, rows, seed and
# build flags, the full-replica model the assignment assumes.
loadflags="-load taxi:20000 -shard-level 2 -seed 1"

cat >"$work/cluster.json" <<EOF
{
  "epoch": 1,
  "replication": 2,
  "timeout_ms": 2000,
  "retries": 2,
  "backoff_ms": 10,
  "nodes": [
    {"name": "n1", "addr": "127.0.0.1:$p1"},
    {"name": "n2", "addr": "127.0.0.1:$p2"}
  ]
}
EOF

echo "cluster_smoke: starting 2 data peers, 1 coordinator, 1 single-node control"
"$work/geoblocksd" -addr "127.0.0.1:$p1" $loadflags \
	-cluster-config "$work/cluster.json" >"$work/n1.log" 2>&1 &
pid1=$!
pids="$pids $pid1"
"$work/geoblocksd" -addr "127.0.0.1:$p2" $loadflags \
	-cluster-config "$work/cluster.json" >"$work/n2.log" 2>&1 &
pid2=$!
pids="$pids $pid2"
# The coordinator is a pure router here: its address is not in the node
# list, so every shard is answered over the wire — the strongest
# equivalence check.
"$work/geoblocksd" -addr "127.0.0.1:$p0" $loadflags \
	-cluster-config "$work/cluster.json" -coordinator >"$work/coord.log" 2>&1 &
pids="$pids $!"
"$work/geoblocksd" -addr "127.0.0.1:$pc" $loadflags >"$work/control.log" 2>&1 &
pids="$pids $!"

wait_ready "$ctl"
wait_ready "http://127.0.0.1:$p1"
wait_ready "http://127.0.0.1:$p2"
wait_ready "$co"
grep -q "pure router" "$work/coord.log" || fail "coordinator did not come up as a pure router"

echo "cluster_smoke: cluster answers must be byte-identical to the single-node control"
query "$ctl" >"$work/control.json"
grep -q '"count"' "$work/control.json" || fail "control query returned no count"
query "$co" >"$work/cluster.json.out"
diff -u "$work/control.json" "$work/cluster.json.out" ||
	fail "cluster answer differs from single-node control"

echo "cluster_smoke: SIGKILL replica n2 mid-stream; answers must not change"
(
	for i in $(seq 1 30); do
		query "$co" >"$work/stream-$i.json" || exit 1
		sleep 0.02
	done
) &
stream=$!
sleep 0.2
kill -KILL "$pid2"
wait "$pid2" 2>/dev/null || true
wait "$stream" || fail "a mid-stream query failed while replica n2 was killed"
for f in "$work"/stream-*.json; do
	diff -u "$work/control.json" "$f" >/dev/null ||
		fail "mid-stream answer $f differs from control after replica kill"
done

# The answer after the kill still matches, and the coordinator must
# have recorded failovers onto the surviving replica.
query "$co" >"$work/after-kill.json"
diff -u "$work/control.json" "$work/after-kill.json" ||
	fail "post-kill cluster answer differs from control"
curl -sf "$co/metrics" >"$work/metrics.txt"
awk '/^geoblocksd_cluster_peer_failovers_total/ {sum += $2} END {exit !(sum > 0)}' "$work/metrics.txt" ||
	fail "failover counter did not move after replica kill"

echo "cluster_smoke: killing the last replica; queries must fail typed, never partially"
kill -KILL "$pid1"
wait "$pid1" 2>/dev/null || true
status=$(curl -s -o "$work/unavail.json" -w '%{http_code}' "$co/v1/query" -d "$qbody")
[ "$status" = "503" ] || fail "query with no live replicas answered status $status, want 503"
grep -q 'shards_unavailable' "$work/unavail.json" ||
	fail "503 body carries no shards_unavailable code: $(cat "$work/unavail.json")"
grep -q '"shards"' "$work/unavail.json" ||
	fail "503 body names no shards: $(cat "$work/unavail.json")"

echo "cluster_smoke: OK (cluster byte-identical to control, failover survived SIGKILL, starvation is a typed 503)"
