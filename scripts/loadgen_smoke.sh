#!/bin/sh
# loadgen_smoke.sh — end-to-end load-harness smoke against a real
# geoblocksd: build the daemon and cmd/loadgen, start the daemon with a
# generated taxi dataset, then drive it closed-loop for 5 seconds per
# workload — uncached plain queries, then a query/join mix — and assert
# each JSON report parses, recorded non-zero error-free traffic, and
# carries sane percentiles (0 < p50 <= p99). This is the live twin of
# the in-process pr10 percentile baseline: it proves the percentile
# pipeline (HDR recording, closed-loop pacing, /v1/query and /v1/join
# wiring, bound discovery via /v1/datasets) works against a real server,
# not just httptest. Run from anywhere inside the repository:
#
#   scripts/loadgen_smoke.sh [port]
set -eu

root=$(cd "$(dirname "$0")/.." && pwd)
port=${1:-18090}
base="http://127.0.0.1:$port"
work=$(mktemp -d)
pid=""

cleanup() {
	[ -n "$pid" ] && kill "$pid" 2>/dev/null || true
	wait 2>/dev/null || true
	rm -rf "$work"
}
trap cleanup EXIT INT TERM

fail() {
	echo "loadgen_smoke: FAIL: $*" >&2
	[ -f "$work/daemon.log" ] && sed 's/^/  daemon: /' "$work/daemon.log" >&2
	[ -f "$work/report.json" ] && sed 's/^/  report: /' "$work/report.json" >&2
	exit 1
}

command -v jq >/dev/null 2>&1 || { echo "loadgen_smoke: jq not found" >&2; exit 1; }

echo "loadgen_smoke: building geoblocksd and loadgen"
go build -o "$work/geoblocksd" "$root/cmd/geoblocksd"
go build -o "$work/loadgen" "$root/cmd/loadgen"

"$work/geoblocksd" -addr "127.0.0.1:$port" -load taxi:30000 -shard-level 2 \
	>"$work/daemon.log" 2>&1 &
pid=$!
i=0
until curl -sf "$base/v1/datasets" >/dev/null 2>&1; do
	i=$((i + 1))
	[ "$i" -gt 100 ] && fail "daemon did not become ready"
	sleep 0.1
done

# run NAME [loadgen flags...] — one closed-loop pass, report checked.
run() {
	name=$1
	shift
	echo "loadgen_smoke: $name (closed loop, 5s)"
	"$work/loadgen" -addr "$base" -mode closed -workers 8 -duration 5s \
		-max-error 0.002 -json "$@" >"$work/report.json" ||
		fail "$name: loadgen exited non-zero"
	jq -e . "$work/report.json" >/dev/null || fail "$name: report is not valid JSON"
	jq -e '.errors == 0' "$work/report.json" >/dev/null ||
		fail "$name: $(jq .errors "$work/report.json") requests failed"
	jq -e '.requests > 0 and .qps > 0' "$work/report.json" >/dev/null ||
		fail "$name: no traffic recorded"
	jq -e '.p50_ms > 0 and .p50_ms <= .p99_ms and .p99_ms <= .max_ms' "$work/report.json" >/dev/null ||
		fail "$name: percentiles are not ordered"
	jq -r '"loadgen_smoke: \(.requests) requests, \(.qps|floor) q/s, p50 \(.p50_ms)ms p99 \(.p99_ms)ms"' \
		"$work/report.json"
}

run "plain queries" -mix query=1 -no-cache \
	-agg count,sum:fare_amount
run "query/join mix" -mix query=3,join=1 -join-polys 64 \
	-agg count,sum:fare_amount

kill -TERM "$pid"
wait "$pid" || fail "daemon did not exit cleanly"
pid=""

echo "loadgen_smoke: OK (closed-loop reports parsed, non-zero traffic, ordered percentiles)"
