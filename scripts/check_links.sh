#!/bin/sh
# check_links.sh — fail on broken relative links in the repository's
# Markdown files. External (http/https/mailto) and pure-anchor links are
# skipped; anchors on relative links are stripped before the existence
# check. Run from anywhere inside the repository:
#
#   scripts/check_links.sh
set -eu

root=$(cd "$(dirname "$0")/.." && pwd)
broken=$(mktemp)
trap 'rm -f "$broken"' EXIT

# shellcheck disable=SC2044
for file in $(find "$root" -name '*.md' -not -path '*/.git/*'); do
	dir=$(dirname "$file")
	# Extract the (target) of every [text](target) occurrence; tolerate
	# several links per line.
	grep -o ']([^)]*)' "$file" 2>/dev/null | sed 's/^](//; s/)$//' |
		while IFS= read -r link; do
			case "$link" in
			http://* | https://* | mailto:* | '#'*) continue ;;
			esac
			target=${link%%#*}
			[ -n "$target" ] || continue
			if [ ! -e "$dir/$target" ]; then
				echo "${file#"$root"/}: broken relative link: $link" >>"$broken"
			fi
		done
done

if [ -s "$broken" ]; then
	cat "$broken" >&2
	echo "check_links: broken links found" >&2
	exit 1
fi
echo "check_links: all relative Markdown links resolve"
