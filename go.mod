module geoblocks

go 1.24
