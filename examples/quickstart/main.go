// Quickstart: build a GeoBlock over synthetic point data and run a
// polygon aggregate query — the minimal end-to-end use of the public API.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"geoblocks"
)

func main() {
	// The spatial domain: a 100x100 planar region (any coordinates work;
	// for geographic data use a lon/lat bounding box).
	bound := geoblocks.Rect{Min: geoblocks.Pt(0, 0), Max: geoblocks.Pt(100, 100)}
	schema := geoblocks.NewSchema("revenue", "duration")

	builder, err := geoblocks.NewBuilder(bound, schema)
	if err != nil {
		log.Fatal(err)
	}

	// Feed raw rows: a cluster of activity around (40, 60) plus uniform
	// background noise.
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200_000; i++ {
		var p geoblocks.Point
		if i%2 == 0 {
			p = geoblocks.Pt(40+rng.NormFloat64()*6, 60+rng.NormFloat64()*6)
		} else {
			p = geoblocks.Pt(rng.Float64()*100, rng.Float64()*100)
		}
		if err := builder.AddRow(p, 5+rng.Float64()*50, rng.Float64()*30); err != nil {
			log.Fatal(err)
		}
	}

	// Build a block whose spatial error is at most 0.5 domain units: the
	// builder picks the right grid level automatically.
	block, err := builder.BuildForError(0.5, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("built block: level %d, %d cells, %d tuples, error bound %.3f\n",
		block.Level(), block.NumCells(), block.NumTuples(), block.ErrorBound())

	// Query an arbitrary polygon around the cluster.
	poly, err := geoblocks.NewPolygon([]geoblocks.Point{
		geoblocks.Pt(30, 50), geoblocks.Pt(52, 46), geoblocks.Pt(55, 72), geoblocks.Pt(35, 75),
	})
	if err != nil {
		log.Fatal(err)
	}

	res, err := block.Query(poly,
		geoblocks.Count(),
		geoblocks.Sum("revenue"),
		geoblocks.Avg("duration"),
		geoblocks.Max("revenue"),
	)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("tuples in polygon (within error bound): %d\n", res.Count)
	fmt.Printf("sum(revenue) = %.2f\n", res.Values[1])
	fmt.Printf("avg(duration) = %.2f\n", res.Values[2])
	fmt.Printf("max(revenue) = %.2f\n", res.Values[3])

	// The specialised COUNT query touches only two aggregates per
	// covering cell.
	fmt.Printf("COUNT query: %d\n", block.Count(poly))
}
