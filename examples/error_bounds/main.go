// Error bounds at query time: one block, one pyramid, one knob. The
// paper's headline trade (Sec. 3.2/3.4) is spatial accuracy for speed — a
// coarser grid shrinks coverings and makes polygon queries cheaper, with
// the error bounded by the cell diagonal. This example builds a single
// full-resolution GeoBlock, derives a coarsening pyramid, and then sweeps
// the *query-time* MaxError knob: the planner answers each query at the
// coarsest pyramid level whose guarantee satisfies the request, and the
// result reports the level used and the bound actually achieved.
//
// An appendix shows the build-time alternative (manual Coarsen), which the
// query planner supersedes for serving.
package main

import (
	"fmt"
	"log"
	"time"

	"geoblocks"
	"geoblocks/internal/baseline"
	"geoblocks/internal/dataset"
)

func main() {
	const (
		rows      = 400_000
		baseLevel = 13
	)
	raw := dataset.Generate(dataset.NYCTaxi(), rows, 5)
	builder, err := geoblocks.NewBuilder(raw.Spec.Bound, raw.Spec.Schema)
	if err != nil {
		log.Fatal(err)
	}
	builder.SetCleanRule(raw.CleanRule())
	if err := builder.AddRows(raw.Points, raw.Cols); err != nil {
		log.Fatal(err)
	}
	block, err := builder.Build(baseLevel, nil)
	if err != nil {
		log.Fatal(err)
	}
	// One call derives every coarser level the planner may answer at —
	// no base-data rescan, and the memory cost is a fraction of the base
	// block (each level holds ~1/4 the cells of the next finer one).
	if err := block.BuildPyramid(8); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("base level %d (%d cells, %d KiB); pyramid levels %v (+%d KiB)\n\n",
		block.Level(), block.NumCells(), block.SizeBytes()/1024,
		block.PyramidLevels(), block.PyramidBytes()/1024)

	// An irregular pentagon around lower Manhattan.
	poly, err := geoblocks.NewPolygon([]geoblocks.Point{
		geoblocks.Pt(-74.03, 40.69), geoblocks.Pt(-73.96, 40.68),
		geoblocks.Pt(-73.94, 40.74), geoblocks.Pt(-73.99, 40.77),
		geoblocks.Pt(-74.04, 40.73),
	})
	if err != nil {
		log.Fatal(err)
	}

	// Exact ground truth for the error measurement.
	base := builder.Base()
	exact := baseline.ExactPolygonCount(base.Table, base.Domain, poly)
	fmt.Printf("query polygon truth: %d of %d trips\n\n", exact, base.NumRows())

	// The sweep: instead of rebuilding blocks per level, ask the SAME
	// block for progressively looser error bounds. MaxError 0 is the
	// exact path; each doubling admits one coarser pyramid level.
	fmt.Printf("%-12s %-6s %-14s %-9s %-10s %-10s\n",
		"max_error_m", "level", "bound_m", "cells", "count_err", "query_time")
	maxErr := 0.0
	for step := 0; step <= 8; step++ {
		opts := geoblocks.QueryOptions{MaxError: maxErr}
		var res geoblocks.Result
		start := time.Now()
		const reps = 20
		for i := 0; i < reps; i++ {
			res, err = block.QueryOpts(poly, opts, geoblocks.Count())
			if err != nil {
				log.Fatal(err)
			}
		}
		elapsed := time.Since(start) / reps

		// The covering only adds false positives: the error is one-sided.
		if res.Count < exact {
			log.Fatalf("covering lost tuples at max_error %g", maxErr)
		}
		errFrac := float64(res.Count-exact) / float64(exact)
		fmt.Printf("%-12.1f %-6d %-14.1f %-9d %-10.2f%% %v\n",
			maxErr*100_000, // degrees -> metres, order of magnitude
			res.Level,
			res.ErrorBound*100_000,
			res.CellsVisited,
			100*errFrac,
			elapsed.Round(time.Microsecond))

		if maxErr == 0 {
			maxErr = block.ErrorBound() // start at the base guarantee...
		} else {
			maxErr *= 2 // ...and admit one coarser level per step
		}
	}

	fmt.Println("\nsame block, one knob: each doubling of max_error admits one coarser")
	fmt.Println("pyramid level — the covering (and query cost) shrinks ~4x while the")
	fmt.Println("reported bound stays a hard guarantee on the answer.")

	appendixManualCoarsen(block, poly)
}

// appendixManualCoarsen shows the build-time form of the same trade: a
// standalone coarser block derived by hand. Queries against it behave
// like the planner's coarse answers, but every error bound needs its own
// block handle — the query planner wraps exactly this machinery behind
// QueryOptions.MaxError (and geoblocks.LevelForError maps a bound to a
// build level when a fixed-resolution block is really wanted).
func appendixManualCoarsen(block *geoblocks.GeoBlock, poly *geoblocks.Polygon) {
	fmt.Println("\n--- appendix: manual Coarsen (build-time knob) ---")
	coarse, err := block.Coarsen(block.Level() - 4)
	if err != nil {
		log.Fatal(err)
	}
	res, err := coarse.Query(poly, geoblocks.Count())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Coarsen(%d): %d cells, count %d, bound %.1f m — one block per bound,\n",
		coarse.Level(), coarse.NumCells(), res.Count, coarse.ErrorBound()*100_000)
	fmt.Println("vs. the pyramid's every-bound-one-block planner above.")
}
