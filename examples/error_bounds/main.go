// Error bounds: sweeps the block level for one query polygon and prints
// the trade-off the paper's Sec. 3.2 and Fig. 16 describe — the covering's
// guaranteed distance bound halves per level while the number of covering
// cells (and thus query cost) roughly quadruples, and the measured count
// error falls accordingly.
package main

import (
	"fmt"
	"log"
	"time"

	"geoblocks"
	"geoblocks/internal/baseline"
	"geoblocks/internal/dataset"
)

func main() {
	const rows = 400_000
	raw := dataset.Generate(dataset.NYCTaxi(), rows, 5)
	builder, err := geoblocks.NewBuilder(raw.Spec.Bound, raw.Spec.Schema)
	if err != nil {
		log.Fatal(err)
	}
	builder.SetCleanRule(raw.CleanRule())
	if err := builder.AddRows(raw.Points, raw.Cols); err != nil {
		log.Fatal(err)
	}
	if err := builder.Extract(); err != nil {
		log.Fatal(err)
	}

	// An irregular pentagon around lower Manhattan.
	poly, err := geoblocks.NewPolygon([]geoblocks.Point{
		geoblocks.Pt(-74.03, 40.69), geoblocks.Pt(-73.96, 40.68),
		geoblocks.Pt(-73.94, 40.74), geoblocks.Pt(-73.99, 40.77),
		geoblocks.Pt(-74.04, 40.73),
	})
	if err != nil {
		log.Fatal(err)
	}

	// Exact ground truth for the error measurement.
	base := builder.Base()
	exact := baseline.ExactPolygonCount(base.Table, base.Domain, poly)
	fmt.Printf("query polygon truth: %d of %d trips\n\n", exact, base.NumRows())

	fmt.Printf("%-6s %-14s %-10s %-9s %-10s %-10s\n",
		"level", "error_bound_m", "cells", "covering", "count_err", "query_time")
	for level := 5; level <= 13; level++ {
		block, err := builder.Build(level, nil)
		if err != nil {
			log.Fatal(err)
		}
		covering := block.Cover(poly)

		var res geoblocks.Result
		start := time.Now()
		const reps = 20
		for i := 0; i < reps; i++ {
			res, err = block.QueryCovering(covering, geoblocks.Count())
			if err != nil {
				log.Fatal(err)
			}
		}
		elapsed := time.Since(start) / reps

		errFrac := float64(res.Count-exact) / float64(exact)
		// The covering only adds false positives: the error is one-sided.
		if res.Count < exact {
			log.Fatalf("covering lost tuples at level %d", level)
		}
		fmt.Printf("%-6d %-14.1f %-10d %-9d %-10.2f%% %v\n",
			level,
			block.ErrorBound()*100_000, // degrees -> metres, order of magnitude
			block.NumCells(),
			len(covering),
			100*errFrac,
			elapsed.Round(time.Microsecond))
	}

	fmt.Println("\nerror bound halves per level; covering cells and query cost grow ~4x.")
	fmt.Println("pick the coarsest level whose bound meets your accuracy target")
	fmt.Println("(geoblocks.LevelForError does this automatically).")
}
