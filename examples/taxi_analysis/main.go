// Taxi analysis: the exploratory-analytics session the paper's
// introduction motivates. An analyst examines NYC taxi data: neighborhood
// aggregates for a heat map, a zoom into Manhattan with changing
// aggregates, and a filter change (expensive rides) answered by an
// incremental build from the shared sorted base data.
package main

import (
	"fmt"
	"log"
	"time"

	"geoblocks"
	"geoblocks/internal/dataset"
	"geoblocks/internal/workload"
)

func main() {
	// Generate the synthetic stand-in for the TLC trip records (see
	// DESIGN.md for the substitution rationale) and feed it through the
	// public API.
	const rows = 500_000
	raw := dataset.Generate(dataset.NYCTaxi(), rows, 42)

	builder, err := geoblocks.NewBuilder(raw.Spec.Bound, raw.Spec.Schema)
	if err != nil {
		log.Fatal(err)
	}
	builder.SetCleanRule(raw.CleanRule())
	if err := builder.AddRows(raw.Points, raw.Cols); err != nil {
		log.Fatal(err)
	}

	extractStart := time.Now()
	if err := builder.Extract(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("extract phase (clean+sort %d rows): %v\n", rows, time.Since(extractStart).Round(time.Millisecond))

	buildStart := time.Now()
	block, err := builder.Build(10, nil) // ~100 m cells over NYC
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("build phase: %v -> %d cells for %d trips\n\n",
		time.Since(buildStart).Round(time.Millisecond), block.NumCells(), block.NumTuples())

	// 1. Heat map: count + avg fare for every neighborhood.
	neighborhoods := workload.Neighborhoods(raw.Spec.Bound, 7)
	heatStart := time.Now()
	busiest, busiestCount := -1, uint64(0)
	for i, poly := range neighborhoods {
		res, err := block.Query(poly, geoblocks.Count(), geoblocks.Avg("fare_amount"))
		if err != nil {
			log.Fatal(err)
		}
		if res.Count > busiestCount {
			busiest, busiestCount = i, res.Count
		}
	}
	fmt.Printf("heat map over %d neighborhoods: %v total\n",
		len(neighborhoods), time.Since(heatStart).Round(time.Microsecond))
	fmt.Printf("busiest neighborhood: #%d with %d trips (centroid %v)\n\n",
		busiest, busiestCount, neighborhoods[busiest].Centroid())

	// 2. Zoom into Manhattan; same region, different aggregates — the
	// repetitive pattern the query cache exploits.
	manhattan, err := geoblocks.NewPolygon([]geoblocks.Point{
		geoblocks.Pt(-74.02, 40.70), geoblocks.Pt(-73.97, 40.69),
		geoblocks.Pt(-73.93, 40.78), geoblocks.Pt(-73.95, 40.82),
		geoblocks.Pt(-74.01, 40.76),
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, reqs := range [][]geoblocks.AggRequest{
		{geoblocks.Count()},
		{geoblocks.Sum("fare_amount"), geoblocks.Sum("tip_amount")},
		{geoblocks.Avg("tip_rate"), geoblocks.Max("trip_distance")},
	} {
		res, err := block.Query(manhattan, reqs...)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("manhattan query -> count=%d values=%v\n", res.Count, res.Values)
	}

	// 3. Filter change: compare expensive rides against all rides. The
	// new block builds incrementally from the already-sorted base data.
	incStart := time.Now()
	expensive, err := builder.Build(10, geoblocks.Where(raw.Spec.Schema, "fare_amount", geoblocks.OpGt, 20))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nincremental build for fare_amount > 20: %v (%d trips)\n",
		time.Since(incStart).Round(time.Millisecond), expensive.NumTuples())

	all, err := block.Query(manhattan, geoblocks.Avg("tip_rate"))
	if err != nil {
		log.Fatal(err)
	}
	exp, err := expensive.Query(manhattan, geoblocks.Avg("tip_rate"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("manhattan tip rate: all rides %.3f vs expensive rides %.3f\n",
		all.Values[0], exp.Values[0])
}
