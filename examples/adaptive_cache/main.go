// Adaptive cache: demonstrates the AggregateTrie query cache (paper
// Sec. 3.6) adapting to a skewed workload. An analyst keeps returning to
// the same 10% of neighborhoods; after the cache warms up, those queries
// are answered from pre-combined aggregates and the hit rate climbs to
// 100% while results stay bit-identical.
package main

import (
	"fmt"
	"log"
	"time"

	"geoblocks"
	"geoblocks/internal/dataset"
	"geoblocks/internal/workload"
)

func main() {
	const rows = 500_000
	raw := dataset.Generate(dataset.NYCTaxi(), rows, 11)

	builder, err := geoblocks.NewBuilder(raw.Spec.Bound, raw.Spec.Schema)
	if err != nil {
		log.Fatal(err)
	}
	builder.SetCleanRule(raw.CleanRule())
	if err := builder.AddRows(raw.Points, raw.Cols); err != nil {
		log.Fatal(err)
	}
	block, err := builder.Build(10, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("block: %d cells, %d tuples\n\n", block.NumCells(), block.NumTuples())

	// The skewed focus area: 10% of neighborhoods, queried over and over.
	// An interactive tool would compute each polygon's cell covering once
	// and reuse it across the session; we do the same so the measurements
	// isolate aggregate combination, as in the paper's evaluation.
	neighborhoods := workload.Neighborhoods(raw.Spec.Bound, 3)
	focus := workload.SkewedSubset(neighborhoods, 0.10, 4)
	coverings := make([][]geoblocks.CellID, len(focus))
	for i, poly := range focus {
		coverings[i] = block.Cover(poly)
	}
	reqs := []geoblocks.AggRequest{
		geoblocks.Count(), geoblocks.Sum("fare_amount"), geoblocks.Avg("tip_rate"),
	}

	runFocus := func() (time.Duration, []geoblocks.Result) {
		results := make([]geoblocks.Result, len(focus))
		start := time.Now()
		for i := range focus {
			res, err := block.QueryCovering(coverings[i], reqs...)
			if err != nil {
				log.Fatal(err)
			}
			results[i] = res
		}
		return time.Since(start), results
	}

	// Cold: no cache.
	coldTime, coldResults := runFocus()
	fmt.Printf("without cache: %v for %d focus queries\n", coldTime.Round(time.Microsecond), len(focus))

	// Enable a cache of 10% of the aggregate storage and let it adapt.
	if err := block.EnableCache(0.10, 0); err != nil {
		log.Fatal(err)
	}
	for run := 1; run <= 5; run++ {
		runTime, results := runFocus()
		m := block.CacheMetrics()
		fmt.Printf("run %d with cache: %v  (hit rate %.0f%%, cache %d bytes)\n",
			run, runTime.Round(time.Microsecond), 100*m.HitRate(), block.CacheSizeBytes())
		// Verify: cached answers must equal the uncached ones.
		for i := range results {
			if results[i].Count != coldResults[i].Count {
				log.Fatalf("cache changed result %d: %d != %d", i, results[i].Count, coldResults[i].Count)
			}
		}
		block.RefreshCache() // adapt to the statistics collected so far
	}

	warmTime, _ := runFocus()
	m := block.CacheMetrics()
	fmt.Printf("\nwarm cache: %v (%.1fx faster than cold), final hit rate %.0f%%\n",
		warmTime.Round(time.Microsecond),
		float64(coldTime)/float64(warmTime),
		100*m.HitRate())
}
