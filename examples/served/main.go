// Served: run a geoblocksd serving daemon on a local port and hit it as
// an HTTP/JSON client — list datasets, send a batch polygon query, read
// the stats, shut down gracefully. This is the end-to-end path a
// dashboard backend takes against a deployed daemon (docs/OPERATIONS.md
// documents every endpoint).
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"time"

	"geoblocks/internal/httpapi"
	"geoblocks/internal/store"
)

func main() {
	// Build the daemon side: a store with one spatially sharded taxi
	// dataset (4^2 = up to 16 shards, per-shard query caches), served on
	// an ephemeral local port. In production this half is just
	// `geoblocksd -load taxi:200000`.
	st := store.New()
	ds, err := httpapi.BuildSynthetic("taxi", "taxi", 200_000, 1, store.Options{
		Level:            13,
		ShardLevel:       2,
		CacheThreshold:   0.10,
		CacheAutoRefresh: 25,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := st.Add(ds); err != nil {
		log.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{Handler: httpapi.NewHandler(st, httpapi.Config{})}
	go func() {
		if err := srv.Serve(l); err != http.ErrServerClosed {
			log.Fatal(err)
		}
	}()
	base := "http://" + l.Addr().String()
	fmt.Printf("geoblocksd serving on %s\n\n", base)

	// Client side: plain HTTP/JSON.
	get := func(path string) []byte {
		resp, err := http.Get(base + path)
		if err != nil {
			log.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return body
	}
	post := func(path string, body any) []byte {
		data, _ := json.Marshal(body)
		resp, err := http.Post(base+path, "application/json", bytes.NewReader(data))
		if err != nil {
			log.Fatal(err)
		}
		defer resp.Body.Close()
		out, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK {
			log.Fatalf("POST %s: %s\n%s", path, resp.Status, out)
		}
		return out
	}

	// 1. Discover what is being served.
	var dl struct {
		Datasets []store.DatasetStats `json:"datasets"`
	}
	if err := json.Unmarshal(get("/v1/datasets"), &dl); err != nil {
		log.Fatal(err)
	}
	for _, d := range dl.Datasets {
		fmt.Printf("dataset %q: %d tuples in %d shards (block level %d, error bound %.4g)\n",
			d.Name, d.Tuples, d.NumShards, d.Level, d.ErrorBound)
	}

	// 2. A batch polygon query: three Manhattan-ish quadrilaterals in one
	// request. The daemon computes one covering per polygon, splits each
	// across the shards it touches, and answers the batch concurrently.
	batch := map[string]any{
		"dataset": "taxi",
		"polygons": [][][2]float64{
			{{-74.02, 40.70}, {-73.97, 40.70}, {-73.97, 40.77}, {-74.02, 40.77}},
			{{-73.99, 40.73}, {-73.94, 40.73}, {-73.94, 40.80}, {-73.99, 40.80}},
			{{-73.96, 40.76}, {-73.91, 40.76}, {-73.91, 40.83}, {-73.96, 40.83}},
		},
		"aggs": []map[string]string{
			{"func": "count"},
			{"func": "sum", "col": "fare_amount"},
			{"func": "avg", "col": "tip_amount"},
		},
	}
	var qr struct {
		Results []struct {
			Count  uint64     `json:"count"`
			Values []*float64 `json:"values"`
		} `json:"results"`
		ElapsedUS int64 `json:"elapsed_us"`
	}
	if err := json.Unmarshal(post("/v1/query", batch), &qr); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nbatch of %d polygons answered in %dµs:\n", len(qr.Results), qr.ElapsedUS)
	for i, res := range qr.Results {
		fv := func(j int) float64 {
			if res.Values[j] == nil {
				return 0
			}
			return *res.Values[j]
		}
		fmt.Printf("  polygon %d: %7d trips, fares $%.0f, avg tip $%.2f\n",
			i, res.Count, fv(1), fv(2))
	}

	// 3. Cache effectiveness after some repeated traffic.
	for i := 0; i < 50; i++ {
		post("/v1/query", batch)
	}
	var stats store.DatasetStats
	if err := json.Unmarshal(get("/v1/stats?dataset=taxi"), &stats); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nafter 51 batches: %d queries served, cache probes=%d full hits=%d\n",
		stats.Queries, stats.Cache.Probes, stats.Cache.FullHits)

	// 4. Graceful shutdown: in-flight requests drain before exit.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		log.Fatal(err)
	}
	fmt.Println("daemon shut down cleanly")
}
