package geoblocks_test

import (
	"bytes"
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"

	"geoblocks"
	"geoblocks/internal/core"
)

var testBound = geoblocks.Rect{Min: geoblocks.Pt(0, 0), Max: geoblocks.Pt(100, 100)}

func newTestBuilder(t testing.TB, n int, seed int64) *geoblocks.Builder {
	t.Helper()
	schema := geoblocks.NewSchema("fare", "distance")
	b, err := geoblocks.NewBuilder(testBound, schema)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	pts := make([]geoblocks.Point, n)
	cols := [][]float64{make([]float64, n), make([]float64, n)}
	for i := 0; i < n; i++ {
		if i%2 == 0 {
			pts[i] = geoblocks.Pt(40+rng.NormFloat64()*8, 50+rng.NormFloat64()*8)
		} else {
			pts[i] = geoblocks.Pt(rng.Float64()*100, rng.Float64()*100)
		}
		cols[0][i] = 2 + rng.Float64()*40
		cols[1][i] = rng.Float64() * 15
	}
	if err := b.AddRows(pts, cols); err != nil {
		t.Fatal(err)
	}
	return b
}

func testPoly(t testing.TB) *geoblocks.Polygon {
	t.Helper()
	p, err := geoblocks.NewPolygon([]geoblocks.Point{
		geoblocks.Pt(25, 30), geoblocks.Pt(65, 25), geoblocks.Pt(70, 70), geoblocks.Pt(30, 65),
	})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestEndToEndQuery(t *testing.T) {
	b := newTestBuilder(t, 20000, 1)
	blk, err := b.Build(12, nil)
	if err != nil {
		t.Fatal(err)
	}
	poly := testPoly(t)
	res, err := blk.Query(poly, geoblocks.Count(), geoblocks.Sum("fare"), geoblocks.Avg("distance"), geoblocks.Min("fare"), geoblocks.Max("fare"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Count == 0 {
		t.Fatal("no tuples found")
	}
	if res.Values[0] != float64(res.Count) {
		t.Fatal("count value mismatch")
	}
	if res.Values[1] <= 0 {
		t.Fatal("sum must be positive")
	}
	if res.Values[3] < 2 || res.Values[4] > 42 {
		t.Fatalf("min/max out of generation range: %g/%g", res.Values[3], res.Values[4])
	}
	avg := res.Values[2]
	if avg <= 0 || avg >= 15 {
		t.Fatalf("avg distance %g out of range", avg)
	}
	// COUNT query agrees with SELECT count.
	if got := blk.Count(poly); got != res.Count {
		t.Fatalf("Count = %d, SELECT count = %d", got, res.Count)
	}
}

func TestQueryUnknownColumn(t *testing.T) {
	b := newTestBuilder(t, 1000, 2)
	blk, err := b.Build(10, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := blk.Query(testPoly(t), geoblocks.Sum("nope")); err == nil {
		t.Fatal("unknown column accepted")
	}
}

func TestRectAndCoveringQueries(t *testing.T) {
	b := newTestBuilder(t, 10000, 3)
	blk, err := b.Build(12, nil)
	if err != nil {
		t.Fatal(err)
	}
	r := geoblocks.Rect{Min: geoblocks.Pt(30, 30), Max: geoblocks.Pt(70, 70)}
	res, err := blk.QueryRect(r, geoblocks.Count())
	if err != nil {
		t.Fatal(err)
	}
	if res.Count == 0 {
		t.Fatal("rect query found nothing")
	}
	if got := blk.CountRect(r); got != res.Count {
		t.Fatalf("CountRect = %d, want %d", got, res.Count)
	}
	cov := blk.CoverRect(r)
	res2, err := blk.QueryCovering(cov, geoblocks.Count())
	if err != nil {
		t.Fatal(err)
	}
	if res2.Count != res.Count {
		t.Fatal("covering query differs from rect query")
	}
}

func TestFilteredBlock(t *testing.T) {
	b := newTestBuilder(t, 10000, 4)
	filter := geoblocks.Where(geoblocks.NewSchema("fare", "distance"), "fare", geoblocks.OpGt, 20)
	blk, err := b.Build(12, filter)
	if err != nil {
		t.Fatal(err)
	}
	all, err := b.Build(12, nil)
	if err != nil {
		t.Fatal(err)
	}
	if blk.NumTuples() >= all.NumTuples() {
		t.Fatal("filter did not reduce tuples")
	}
	sel, err := b.Selectivity(filter)
	if err != nil {
		t.Fatal(err)
	}
	got := float64(blk.NumTuples()) / float64(all.NumTuples())
	if math.Abs(got-sel) > 1e-9 {
		t.Fatalf("filtered fraction %g != selectivity %g", got, sel)
	}
}

func TestCacheSpeedsUpAndStaysCorrect(t *testing.T) {
	b := newTestBuilder(t, 30000, 5)
	blk, err := b.Build(13, nil)
	if err != nil {
		t.Fatal(err)
	}
	poly := testPoly(t)
	plain, err := blk.Query(poly, geoblocks.Count(), geoblocks.Sum("fare"))
	if err != nil {
		t.Fatal(err)
	}

	if err := blk.EnableCache(0.10, 0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := blk.Query(poly, geoblocks.Count(), geoblocks.Sum("fare")); err != nil {
			t.Fatal(err)
		}
	}
	blk.RefreshCache()
	cached, err := blk.Query(poly, geoblocks.Count(), geoblocks.Sum("fare"))
	if err != nil {
		t.Fatal(err)
	}
	if cached.Count != plain.Count || math.Abs(cached.Values[1]-plain.Values[1]) > 1e-6 {
		t.Fatal("cached result differs")
	}
	m := blk.CacheMetrics()
	if m.FullHits == 0 {
		t.Fatal("warm cache produced no hits")
	}
	if blk.CacheSizeBytes() <= 0 {
		t.Fatal("cache arena empty after refresh")
	}
	blk.DisableCache()
	if blk.CacheSizeBytes() != 0 {
		t.Fatal("disabled cache still reports size")
	}
}

func TestAutoRefresh(t *testing.T) {
	b := newTestBuilder(t, 10000, 6)
	blk, err := b.Build(12, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := blk.EnableCache(0.10, 2); err != nil { // refresh every 2 queries
		t.Fatal(err)
	}
	poly := testPoly(t)
	// The refresh runs in a background goroutine, so keep querying until
	// it has landed and produced hits (bounded by the deadline).
	deadline := time.Now().Add(5 * time.Second)
	for blk.CacheMetrics().FullHits == 0 {
		if time.Now().After(deadline) {
			t.Fatal("auto-refresh never warmed the cache")
		}
		if _, err := blk.Query(poly, geoblocks.Count()); err != nil {
			t.Fatal(err)
		}
	}
}

func TestEnableCacheValidation(t *testing.T) {
	b := newTestBuilder(t, 2000, 11)
	blk, err := b.Build(10, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, threshold := range []float64{0, -0.5, math.NaN(), math.Inf(1), math.Inf(-1)} {
		if err := blk.EnableCache(threshold, 0); err == nil {
			t.Fatalf("threshold %v accepted", threshold)
		}
	}
	if err := blk.EnableCache(0.10, -1); err == nil {
		t.Fatal("negative autoRefreshEvery accepted")
	}
	// A rejected EnableCache must not leave a half-attached cache.
	if blk.CacheSizeBytes() != 0 {
		t.Fatal("failed EnableCache attached a cache")
	}
	if err := blk.EnableCache(0.10, 0); err != nil {
		t.Fatal(err)
	}
}

func TestDisableCacheResetsAutoRefresh(t *testing.T) {
	b := newTestBuilder(t, 10000, 12)
	blk, err := b.Build(12, nil)
	if err != nil {
		t.Fatal(err)
	}
	poly := testPoly(t)

	// Warm an auto-refreshing cache, then disable it.
	if err := blk.EnableCache(0.10, 1); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for blk.CacheMetrics().FullHits == 0 {
		if time.Now().After(deadline) {
			t.Fatal("auto-refresh never warmed the cache")
		}
		if _, err := blk.Query(poly, geoblocks.Count()); err != nil {
			t.Fatal(err)
		}
	}
	blk.DisableCache()

	// Re-enabling with manual refresh must not inherit the old cadence:
	// with no RefreshCache call the cache stays cold and never hits.
	if err := blk.EnableCache(0.10, 0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if _, err := blk.Query(poly, geoblocks.Count()); err != nil {
			t.Fatal(err)
		}
	}
	if m := blk.CacheMetrics(); m.FullHits != 0 {
		t.Fatalf("manual-refresh cache produced %d hits without RefreshCache — stale auto-refresh cadence", m.FullHits)
	}
}

func TestConcurrentQueriesWithAutoRefresh(t *testing.T) {
	b := newTestBuilder(t, 30000, 13)
	blk, err := b.Build(13, nil)
	if err != nil {
		t.Fatal(err)
	}
	poly := testPoly(t)
	want, err := blk.Query(poly, geoblocks.Count(), geoblocks.Sum("fare"), geoblocks.Min("fare"), geoblocks.Max("fare"))
	if err != nil {
		t.Fatal(err)
	}
	if err := blk.EnableCache(0.10, 8); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errs := make(chan string, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				got, err := blk.Query(poly, geoblocks.Count(), geoblocks.Sum("fare"), geoblocks.Min("fare"), geoblocks.Max("fare"))
				if err != nil {
					errs <- err.Error()
					return
				}
				if got.Count != want.Count || got.Values[2] != want.Values[2] || got.Values[3] != want.Values[3] {
					errs <- "count/min/max mismatch under concurrency"
					return
				}
				if math.Abs(got.Values[1]-want.Values[1]) > 1e-6*math.Abs(want.Values[1]) {
					errs <- "sum mismatch under concurrency"
					return
				}
				if n := blk.Count(poly); n != want.Count {
					errs <- "Count mismatch under concurrency"
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for msg := range errs {
		t.Fatal(msg)
	}
}

func TestQueryParallelMatchesQuery(t *testing.T) {
	b := newTestBuilder(t, 30000, 14)
	blk, err := b.Build(14, nil)
	if err != nil {
		t.Fatal(err)
	}
	poly := testPoly(t)
	reqs := []geoblocks.AggRequest{geoblocks.Count(), geoblocks.Sum("fare"), geoblocks.Min("fare"), geoblocks.Max("distance"), geoblocks.Avg("fare")}
	want, err := blk.Query(poly, reqs...)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 1, 2, 4} {
		got, err := blk.QueryParallel(poly, workers, reqs...)
		if err != nil {
			t.Fatal(err)
		}
		if got.Count != want.Count || got.Values[2] != want.Values[2] || got.Values[3] != want.Values[3] {
			t.Fatalf("workers %d: count/min/max differ from serial", workers)
		}
		if math.Abs(got.Values[1]-want.Values[1]) > 1e-9*math.Abs(want.Values[1]) {
			t.Fatalf("workers %d: sum %v too far from serial %v", workers, got.Values[1], want.Values[1])
		}
	}
	r := geoblocks.Rect{Min: geoblocks.Pt(20, 20), Max: geoblocks.Pt(80, 80)}
	serial, err := blk.QueryRect(r, geoblocks.Count())
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := blk.QueryRectParallel(r, 0, geoblocks.Count())
	if err != nil {
		t.Fatal(err)
	}
	if serial.Count != parallel.Count {
		t.Fatalf("rect parallel count %d != %d", parallel.Count, serial.Count)
	}
	if _, err := blk.QueryParallel(poly, 4, geoblocks.Sum("nope")); err == nil {
		t.Fatal("unknown column accepted by parallel path")
	}
}

func TestCoarsenPublic(t *testing.T) {
	b := newTestBuilder(t, 10000, 7)
	fine, err := b.Build(14, nil)
	if err != nil {
		t.Fatal(err)
	}
	coarse, err := fine.Coarsen(10)
	if err != nil {
		t.Fatal(err)
	}
	if coarse.Level() != 10 {
		t.Fatalf("level = %d", coarse.Level())
	}
	if coarse.NumCells() >= fine.NumCells() {
		t.Fatal("coarsening did not reduce cells")
	}
	if coarse.ErrorBound() <= fine.ErrorBound() {
		t.Fatal("coarser block must have larger error bound")
	}
	// Counts agree on a polygon within the coarser covering.
	poly := testPoly(t)
	cf := fine.Count(poly)
	cc := coarse.Count(poly)
	if cc < cf {
		t.Fatalf("coarser covering must be a superset: %d < %d", cc, cf)
	}
}

func TestSerializationPublic(t *testing.T) {
	b := newTestBuilder(t, 5000, 8)
	blk, err := b.Build(12, nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := blk.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	rb, err := geoblocks.ReadGeoBlock(&buf)
	if err != nil {
		t.Fatal(err)
	}
	poly := testPoly(t)
	a := blk.Count(poly)
	c := rb.Count(poly)
	if a != c {
		t.Fatalf("counts differ after round trip: %d vs %d", a, c)
	}
}

func TestUpdatePublic(t *testing.T) {
	b := newTestBuilder(t, 10000, 9)
	blk, err := b.Build(8, nil)
	if err != nil {
		t.Fatal(err)
	}
	before := blk.NumTuples()
	// Target a location guaranteed to have a cell aggregate: the centre
	// of the block's first stored cell.
	target := blk.Inner().Domain().CellCenter(blk.Inner().CellAt(0).Key)
	batch := &geoblocks.UpdateBatch{
		Points: []geoblocks.Point{target},
		Cols:   [][]float64{{10}, {1}},
	}
	if err := blk.Update(batch); err != nil {
		t.Fatal(err)
	}
	if blk.NumTuples() != before+1 {
		t.Fatalf("tuples = %d, want %d", blk.NumTuples(), before+1)
	}
	// Updates outside the aggregated region surface ErrRebuildRequired.
	far := &geoblocks.UpdateBatch{
		Points: []geoblocks.Point{geoblocks.Pt(99.9, 0.1)},
		Cols:   [][]float64{{10}, {1}},
	}
	err = blk.Update(far)
	if err != nil && err != core.ErrRebuildRequired {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestLevelForError(t *testing.T) {
	lvl, err := geoblocks.LevelForError(testBound, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	// Domain diagonal is ~141; each level halves it. Level 8 gives ~0.55,
	// level 7 ~1.1: the coarsest level at or under 1.0 must be 8.
	if lvl != 8 {
		t.Fatalf("LevelForError = %d, want 8", lvl)
	}
	if _, err := geoblocks.LevelForError(geoblocks.Rect{}, 1.0); err == nil {
		t.Fatal("invalid bound accepted")
	}
}

func TestBuildForError(t *testing.T) {
	b := newTestBuilder(t, 5000, 10)
	blk, err := b.BuildForError(1.0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if blk.ErrorBound() > 1.0 {
		t.Fatalf("error bound %g exceeds request", blk.ErrorBound())
	}
	if blk.Level() != 8 {
		t.Fatalf("level = %d, want 8", blk.Level())
	}
}

func TestBuilderValidation(t *testing.T) {
	schema := geoblocks.NewSchema("a")
	if _, err := geoblocks.NewBuilder(geoblocks.Rect{}, schema); err == nil {
		t.Fatal("empty bound accepted")
	}
	b, err := geoblocks.NewBuilder(testBound, schema)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.AddRow(geoblocks.Pt(1, 1), 1, 2); err == nil {
		t.Fatal("arity mismatch accepted")
	}
	if err := b.AddRows([]geoblocks.Point{{X: 1, Y: 1}}, [][]float64{{1}, {2}}); err == nil {
		t.Fatal("column count mismatch accepted")
	}
	if _, err := b.Selectivity(nil); err == nil {
		t.Fatal("selectivity before extract accepted")
	}
}

func TestRegularPolygonHelper(t *testing.T) {
	p := geoblocks.RegularPolygon(geoblocks.Pt(50, 50), 10, 16)
	if p.Area() < 250 || p.Area() > 320 {
		t.Fatalf("area = %g", p.Area())
	}
}

// TestSplitCovering pins the covering-split hook: the sub-coverings of
// sibling cells partition the covering cells they own, coarse covering
// cells appear in every overlapping split, and out-of-range splits are
// empty.
func TestSplitCovering(t *testing.T) {
	b := newTestBuilder(t, 20000, 4)
	blk, err := b.Build(10, nil)
	if err != nil {
		t.Fatal(err)
	}
	poly := testPoly(t)
	cov := blk.Cover(poly)
	if len(cov) == 0 {
		t.Fatal("empty covering")
	}

	// Split across the four level-1 quadrants.
	root := geoblocks.CellID(1) << (2 * geoblocks.MaxLevel)
	total := 0
	seen := make(map[geoblocks.CellID]int)
	for _, q := range root.Children() {
		sub := geoblocks.SplitCovering(cov, q)
		total += len(sub)
		for _, c := range sub {
			seen[c]++
		}
		for i := 1; i < len(sub); i++ {
			if sub[i] <= sub[i-1] {
				t.Fatal("split not ascending")
			}
		}
	}
	if total < len(cov) {
		t.Fatalf("splits hold %d cells, covering has %d", total, len(cov))
	}
	for _, c := range cov {
		want := 1
		if c.Level() < 1 {
			want = 4 // a cell coarser than the split level overlaps all children
		}
		if got := seen[c]; got < 1 || got > want {
			t.Fatalf("cell %v appears in %d splits, want 1..%d", c, got, want)
		}
	}
	// The whole-root split is the covering itself (shared backing).
	if whole := geoblocks.SplitCovering(cov, root); len(whole) != len(cov) {
		t.Fatalf("root split kept %d of %d cells", len(whole), len(cov))
	}
	// A disjoint cell yields an empty split.
	if sub := geoblocks.SplitCovering(nil, root); len(sub) != 0 {
		t.Fatalf("empty covering split non-empty")
	}
}

// TestQueryCoveringPartialMerge pins the partial-accumulator hook: the
// quadrant partials of a covering merge to the full-query answer —
// bit-identically for COUNT/MIN/MAX, and up to floating-point
// reassociation for AVG (the cached path pre-combines records in a
// different order than the quadrant split).
func TestQueryCoveringPartialMerge(t *testing.T) {
	b := newTestBuilder(t, 20000, 5)
	blk, err := b.Build(12, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, cached := range []bool{false, true} {
		if cached {
			if err := blk.EnableCache(0.2, 0); err != nil {
				t.Fatal(err)
			}
			blk.RefreshCache()
		}
		reqs := []geoblocks.AggRequest{
			geoblocks.Count(), geoblocks.Min("fare"), geoblocks.Max("fare"), geoblocks.Avg("distance"),
		}
		cov := blk.Cover(testPoly(t))
		want, err := blk.QueryCovering(cov, reqs...)
		if err != nil {
			t.Fatal(err)
		}

		root := geoblocks.CellID(1) << (2 * geoblocks.MaxLevel)
		var total *geoblocks.Accumulator
		for _, q := range root.Children() {
			acc, err := blk.QueryCoveringPartial(geoblocks.SplitCovering(cov, q), reqs...)
			if err != nil {
				t.Fatal(err)
			}
			if total == nil {
				total = acc
			} else if err := total.MergeFrom(acc); err != nil {
				t.Fatal(err)
			}
		}
		got := total.Result()
		if got.Count != want.Count {
			t.Fatalf("cached=%v: merged count %d, want %d", cached, got.Count, want.Count)
		}
		for i := range want.Values {
			diff := math.Abs(got.Values[i] - want.Values[i])
			if i < 3 && diff != 0 { // count/min/max merge bit-identically
				t.Fatalf("cached=%v: merged value %d = %v, want %v", cached, i, got.Values[i], want.Values[i])
			}
			if diff > 1e-12*math.Abs(want.Values[i]) {
				t.Fatalf("cached=%v: merged avg %v, want %v", cached, got.Values[i], want.Values[i])
			}
		}
	}

	// Mismatched specs refuse to merge.
	a1, _ := blk.QueryCoveringPartial(nil, geoblocks.Count())
	a2, _ := blk.QueryCoveringPartial(nil, geoblocks.Min("fare"))
	if err := a1.MergeFrom(a2); err == nil {
		t.Fatal("mismatched-spec merge accepted")
	}
}
