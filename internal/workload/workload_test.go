package workload

import (
	"math"
	"testing"

	"geoblocks/internal/cellid"
	"geoblocks/internal/dataset"
	"geoblocks/internal/geom"
)

var testBound = geom.Rect{Min: geom.Pt(0, 0), Max: geom.Pt(100, 100)}

func TestTessellationCoversBound(t *testing.T) {
	polys := Tessellation(testBound, 8, 6, 1)
	if len(polys) != 48 {
		t.Fatalf("polygons = %d, want 48", len(polys))
	}
	var area float64
	for _, p := range polys {
		area += p.Area()
		if n := len(p.Outer()); n != 4 && n != 5 {
			t.Fatalf("polygon with %d vertices; want quads and pentagons", n)
		}
	}
	if math.Abs(area-testBound.Area()) > 1e-6*testBound.Area() {
		t.Fatalf("tessellation area %g != bound area %g", area, testBound.Area())
	}
}

func TestTessellationHasBothShapes(t *testing.T) {
	polys := Tessellation(testBound, 10, 10, 2)
	quads, pents := 0, 0
	for _, p := range polys {
		switch len(p.Outer()) {
		case 4:
			quads++
		case 5:
			pents++
		}
	}
	if quads == 0 || pents == 0 {
		t.Fatalf("want a mix of shapes, got %d quads, %d pentagons", quads, pents)
	}
}

func TestTessellationDeterministic(t *testing.T) {
	a := Tessellation(testBound, 5, 5, 7)
	b := Tessellation(testBound, 5, 5, 7)
	for i := range a {
		ao, bo := a[i].Outer(), b[i].Outer()
		if len(ao) != len(bo) {
			t.Fatalf("polygon %d shape differs", i)
		}
		for k := range ao {
			if ao[k] != bo[k] {
				t.Fatalf("polygon %d vertex %d differs", i, k)
			}
		}
	}
}

func TestNeighborhoodsStatesCountries(t *testing.T) {
	if got := len(Neighborhoods(testBound, 1)); got != 195 {
		t.Fatalf("neighborhoods = %d, want 195", got)
	}
	if got := len(States(testBound, 1)); got != 50 {
		t.Fatalf("states = %d, want 50", got)
	}
	if got := len(Countries(testBound, 1)); got != 30 {
		t.Fatalf("countries = %d, want 30", got)
	}
}

func TestRandomRects(t *testing.T) {
	rects := RandomRects(testBound, 51, 0.05, 0.3, 3)
	if len(rects) != 51 {
		t.Fatalf("rects = %d", len(rects))
	}
	for _, r := range rects {
		if !r.IsValid() {
			t.Fatalf("invalid rect %v", r)
		}
		if !testBound.ContainsRect(r) {
			t.Fatalf("rect %v escapes bound", r)
		}
		if r.Width() < 0.05*testBound.Width()-1e-9 || r.Width() > 0.3*testBound.Width()+1e-9 {
			t.Fatalf("rect width %g outside configured fractions", r.Width())
		}
	}
}

func TestSkewedSubset(t *testing.T) {
	polys := Tessellation(testBound, 10, 10, 4)
	sub := SkewedSubset(polys, 0.1, 5)
	if len(sub) != 10 {
		t.Fatalf("skewed subset = %d, want 10", len(sub))
	}
	// No duplicates.
	seen := map[*geom.Polygon]bool{}
	for _, p := range sub {
		if seen[p] {
			t.Fatal("duplicate polygon in subset")
		}
		seen[p] = true
	}
	// Deterministic.
	sub2 := SkewedSubset(polys, 0.1, 5)
	for i := range sub {
		if sub[i] != sub2[i] {
			t.Fatal("subset not deterministic")
		}
	}
	// Degenerate fractions.
	if got := len(SkewedSubset(polys, 0, 6)); got != 1 {
		t.Fatalf("frac 0 subset = %d, want 1", got)
	}
	if got := len(SkewedSubset(polys, 2, 6)); got != len(polys) {
		t.Fatalf("frac 2 subset = %d, want all", got)
	}
}

func TestCombined(t *testing.T) {
	polys := Tessellation(testBound, 4, 4, 7)
	skew := SkewedSubset(polys, 0.25, 8)
	w := Combined(polys, skew, 4)
	if len(w) != len(polys)+4*len(skew) {
		t.Fatalf("combined = %d, want %d", len(w), len(polys)+4*len(skew))
	}
}

func TestSelectivityRect(t *testing.T) {
	raw := dataset.Generate(dataset.NYCTaxi(), 30000, 9)
	base, _, err := raw.Extract(-1)
	if err != nil {
		t.Fatal(err)
	}
	dom := raw.Domain()
	total := float64(base.NumRows())
	for _, target := range []float64{0.01, 0.1, 0.5, 0.9} {
		r := SelectivityRect(base.Table, dom, target)
		n := 0
		for i := 0; i < base.Table.NumRows(); i++ {
			if r.ContainsPoint(dom.CellCenter(cellid.ID(base.Table.Keys[i]))) {
				n++
			}
		}
		got := float64(n) / total
		if math.Abs(got-target) > 0.05 {
			t.Fatalf("target %.2f: achieved %.3f", target, got)
		}
	}
	// Full selectivity returns the domain.
	if r := SelectivityRect(base.Table, dom, 1.0); r != dom.Bound() {
		t.Fatalf("target 1.0 should return the domain bound")
	}
}

// shardCellOf returns the grid indices of the level-L shard cell
// containing p over testBound.
func shardCellOf(p geom.Point, shardLevel int) (int, int) {
	side := float64(int(1) << uint(shardLevel))
	return int((p.X - testBound.Min.X) / testBound.Width() * side),
		int((p.Y - testBound.Min.Y) / testBound.Height() * side)
}

func TestShardLocal(t *testing.T) {
	const shardLevel = 2
	polys := ShardLocal(testBound, shardLevel, 64, 3)
	if len(polys) != 64 {
		t.Fatalf("polygons = %d, want 64", len(polys))
	}
	for i, p := range polys {
		bb := p.Bound()
		if !testBound.ContainsRect(bb) {
			t.Fatalf("polygon %d leaves the bound: %v", i, bb)
		}
		i0, j0 := shardCellOf(bb.Min, shardLevel)
		i1, j1 := shardCellOf(bb.Max, shardLevel)
		if i0 != i1 || j0 != j1 {
			t.Fatalf("polygon %d spans shard cells (%d,%d)-(%d,%d)", i, i0, j0, i1, j1)
		}
	}
}

func TestCrossShard(t *testing.T) {
	const shardLevel = 2
	polys := CrossShard(testBound, shardLevel, 64, 4)
	if len(polys) != 64 {
		t.Fatalf("polygons = %d, want 64", len(polys))
	}
	for i, p := range polys {
		bb := p.Bound()
		if !testBound.ContainsRect(bb) {
			t.Fatalf("polygon %d leaves the bound: %v", i, bb)
		}
		i0, j0 := shardCellOf(bb.Min, shardLevel)
		i1, j1 := shardCellOf(bb.Max, shardLevel)
		if i0 == i1 && j0 == j1 {
			t.Fatalf("polygon %d confined to one shard cell (%d,%d)", i, i0, j0)
		}
	}
}

// TestZipfianHotspotDeterminism pins the generator contract: identical
// parameters reproduce the identical pool and draw sequence; a different
// seed produces a different stream.
func TestZipfianHotspotDeterminism(t *testing.T) {
	a := ZipfianHotspot(testBound, 100, 1.5, 42)
	b := ZipfianHotspot(testBound, 100, 1.5, 42)
	if len(a.Pool()) != 100 {
		t.Fatalf("pool size %d, want 100", len(a.Pool()))
	}
	for i := range a.Pool() {
		pa, pb := a.Pool()[i], b.Pool()[i]
		if pa.Centroid() != pb.Centroid() || len(pa.Outer()) != len(pb.Outer()) {
			t.Fatalf("pool diverged at %d", i)
		}
	}
	same := true
	for i := 0; i < 1000; i++ {
		if a.NextIndex() != b.NextIndex() {
			same = false
			break
		}
	}
	if !same {
		t.Fatal("same-seed draw sequences diverged")
	}

	c := ZipfianHotspot(testBound, 100, 1.5, 43)
	diff := false
	for i := 0; i < 1000; i++ {
		if a.NextIndex() != c.NextIndex() {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("cross-seed draw sequences identical")
	}
}

// TestZipfianHotspotSkewShape asserts the distribution actually is a
// hot-spot: with s = 1.5 over 100 polygons, rank 0 dominates and the top
// ten carry most of the stream, while the tail still appears.
func TestZipfianHotspotSkewShape(t *testing.T) {
	h := ZipfianHotspot(testBound, 100, 1.5, 7)
	const draws = 50_000
	counts := make([]int, 100)
	for i := 0; i < draws; i++ {
		counts[h.NextIndex()]++
	}
	if frac := float64(counts[0]) / draws; frac < 0.2 {
		t.Fatalf("rank-0 share %v, want > 0.2", frac)
	}
	top10 := 0
	for _, c := range counts[:10] {
		top10 += c
	}
	if frac := float64(top10) / draws; frac < 0.6 {
		t.Fatalf("top-10 share %v, want > 0.6", frac)
	}
	tail := 0
	for _, c := range counts[50:] {
		tail += c
	}
	if tail == 0 {
		t.Fatal("tail never drawn — not a long-tailed distribution")
	}
	// Monotone-ish: rank 0 must beat every rank past the head.
	for i := 20; i < 100; i++ {
		if counts[i] > counts[0] {
			t.Fatalf("rank %d (%d draws) beats rank 0 (%d)", i, counts[i], counts[0])
		}
	}

	// Every pool polygon stays inside the bound.
	for i, p := range h.Pool() {
		b := p.Bound()
		if b.Min.X < testBound.Min.X || b.Min.Y < testBound.Min.Y ||
			b.Max.X > testBound.Max.X || b.Max.Y > testBound.Max.Y {
			t.Fatalf("pool polygon %d leaves the bound: %v", i, b)
		}
	}
}

// TestZipfIndices covers the bare index stream used by cache tests.
func TestZipfIndices(t *testing.T) {
	idx := ZipfIndices(37, 500, 1.3, 11)
	if len(idx) != 500 {
		t.Fatalf("len %d, want 500", len(idx))
	}
	for _, i := range idx {
		if i < 0 || i >= 37 {
			t.Fatalf("index %d out of [0,37)", i)
		}
	}
	idx2 := ZipfIndices(37, 500, 1.3, 11)
	for i := range idx {
		if idx[i] != idx2[i] {
			t.Fatal("not deterministic")
		}
	}
	// n = 1 degenerates to a constant stream.
	for _, i := range ZipfIndices(1, 50, 2, 3) {
		if i != 0 {
			t.Fatalf("n=1 drew %d", i)
		}
	}
}
