// Package workload generates the query workloads of the paper's evaluation
// (Sec. 4.1): polygon sets standing in for NYC neighborhoods and US states
// (jittered tessellations of "simple quadrilaterals or pentagons", which is
// how the paper describes the real polygons), random rectangles, skewed
// sub-workloads, and selectivity-calibrated query regions. ShardLocal and
// CrossShard generate the multi-shard serving workloads of the sharded
// store (internal/store): queries confined to one shard and queries
// straddling shard boundaries.
package workload

import (
	"fmt"
	"math"
	"math/rand"

	"geoblocks/internal/cellid"
	"geoblocks/internal/column"
	"geoblocks/internal/geom"
)

// Tessellation produces a jittered-grid polygon partition of bound with
// nx × ny cells. Grid vertices are jittered once and shared between
// neighbouring polygons, so the result is a proper tessellation; a share
// of polygons get a fifth vertex on their top edge, matching the mix of
// quadrilaterals and pentagons in real neighborhood data.
func Tessellation(bound geom.Rect, nx, ny int, seed int64) []*geom.Polygon {
	if nx < 1 || ny < 1 {
		panic(fmt.Sprintf("workload: tessellation needs positive grid, got %dx%d", nx, ny))
	}
	rng := rand.New(rand.NewSource(seed))
	cw := bound.Width() / float64(nx)
	ch := bound.Height() / float64(ny)
	jitterX := cw * 0.30
	jitterY := ch * 0.30

	// Jitter interior grid vertices; border vertices stay put so the
	// tessellation exactly tiles the bound.
	verts := make([]geom.Point, (nx+1)*(ny+1))
	at := func(i, j int) int { return j*(nx+1) + i }
	for j := 0; j <= ny; j++ {
		for i := 0; i <= nx; i++ {
			p := geom.Pt(bound.Min.X+float64(i)*cw, bound.Min.Y+float64(j)*ch)
			if i > 0 && i < nx {
				p.X += (rng.Float64() - 0.5) * jitterX
			}
			if j > 0 && j < ny {
				p.Y += (rng.Float64() - 0.5) * jitterY
			}
			verts[at(i, j)] = p
		}
	}

	polys := make([]*geom.Polygon, 0, nx*ny)
	for j := 0; j < ny; j++ {
		for i := 0; i < nx; i++ {
			a := verts[at(i, j)]
			b := verts[at(i+1, j)]
			c := verts[at(i+1, j+1)]
			d := verts[at(i, j+1)]
			ring := []geom.Point{a, b, c, d}
			if rng.Float64() < 0.4 {
				// Pentagon: split the top edge at its midpoint. The point
				// lies exactly on the shared edge, so the partition still
				// tiles.
				mid := geom.Pt((c.X+d.X)/2, (c.Y+d.Y)/2)
				ring = []geom.Point{a, b, c, mid, d}
			}
			if p, err := geom.TryPolygon(ring); err == nil {
				polys = append(polys, p)
			}
		}
	}
	return polys
}

// Neighborhoods returns a stand-in for the ~195 NYC neighborhood polygons
// the paper queries (a 15×13 jittered tessellation of the bound).
func Neighborhoods(bound geom.Rect, seed int64) []*geom.Polygon {
	return Tessellation(bound, 15, 13, seed)
}

// States returns a stand-in for the US state polygons: a coarse 10×5
// jittered tessellation (the paper queries 49 contiguous states plus DC).
func States(bound geom.Rect, seed int64) []*geom.Polygon {
	return Tessellation(bound, 10, 5, seed)
}

// Countries returns a stand-in for the country polygons used on the OSM
// Americas dataset: a very coarse tessellation.
func Countries(bound geom.Rect, seed int64) []*geom.Polygon {
	return Tessellation(bound, 6, 5, seed)
}

// RandomRects generates n axis-aligned rectangles inside bound whose side
// lengths are between minFrac and maxFrac of the bound's extent — the
// generated rectangle workload of paper Fig. 15 (51 rects over the US).
func RandomRects(bound geom.Rect, n int, minFrac, maxFrac float64, seed int64) []geom.Rect {
	rng := rand.New(rand.NewSource(seed))
	out := make([]geom.Rect, n)
	for i := range out {
		w := (minFrac + rng.Float64()*(maxFrac-minFrac)) * bound.Width()
		h := (minFrac + rng.Float64()*(maxFrac-minFrac)) * bound.Height()
		x0 := bound.Min.X + rng.Float64()*(bound.Width()-w)
		y0 := bound.Min.Y + rng.Float64()*(bound.Height()-h)
		out[i] = geom.Rect{Min: geom.Pt(x0, y0), Max: geom.Pt(x0+w, y0+h)}
	}
	return out
}

// SkewedSubset picks ceil(frac·len) polygons uniformly at random — the
// paper's skewed workload selects 10% of neighborhoods and queries them
// repeatedly.
func SkewedSubset(polys []*geom.Polygon, frac float64, seed int64) []*geom.Polygon {
	rng := rand.New(rand.NewSource(seed))
	n := int(frac*float64(len(polys)) + 0.999)
	if n < 1 {
		n = 1
	}
	if n > len(polys) {
		n = len(polys)
	}
	perm := rng.Perm(len(polys))
	out := make([]*geom.Polygon, n)
	for i := 0; i < n; i++ {
		out[i] = polys[perm[i]]
	}
	return out
}

// Combined builds the evaluation's combined workload: the base polygons
// once plus the skewed subset repeated skewedRuns times (paper Sec. 4.2,
// Fig. 10/17).
func Combined(base, skewed []*geom.Polygon, skewedRuns int) []*geom.Polygon {
	out := make([]*geom.Polygon, 0, len(base)+skewedRuns*len(skewed))
	out = append(out, base...)
	for r := 0; r < skewedRuns; r++ {
		out = append(out, skewed...)
	}
	return out
}

// ShardLocal generates n polygons that each lie strictly inside one
// random cell of the level-shardLevel grid over bound — the shard-local
// workload of a spatially partitioned deployment (internal/store): every
// query's covering routes to exactly one shard, so this is the
// best-case traffic for sharded serving. Polygons keep a comfortable
// margin (¼ of the shard cell) from the shard boundary so block-level
// covering cells cannot leak into a neighbouring shard.
func ShardLocal(bound geom.Rect, shardLevel, n int, seed int64) []*geom.Polygon {
	if shardLevel < 0 || shardLevel > 15 {
		panic(fmt.Sprintf("workload: shard level %d out of range", shardLevel))
	}
	rng := rand.New(rand.NewSource(seed))
	side := 1 << uint(shardLevel)
	cw := bound.Width() / float64(side)
	ch := bound.Height() / float64(side)
	out := make([]*geom.Polygon, n)
	for k := range out {
		i := rng.Intn(side)
		j := rng.Intn(side)
		// Centre within the middle half of the cell; radius below the
		// remaining quarter-cell margin.
		cx := bound.Min.X + (float64(i)+0.3+rng.Float64()*0.4)*cw
		cy := bound.Min.Y + (float64(j)+0.3+rng.Float64()*0.4)*ch
		r := (0.05 + rng.Float64()*0.15) * math.Min(cw, ch)
		out[k] = geom.RegularPolygon(geom.Pt(cx, cy), r, 4+rng.Intn(5))
	}
	return out
}

// CrossShard generates n polygons centred on random interior corners of
// the level-shardLevel grid over bound, so every query straddles the
// (typically four) shards meeting at that corner — the worst-case
// fan-out traffic for sharded serving, exercising the covering split and
// partial-accumulator merge on every query. shardLevel must be at least
// 1 (a level-0 grid has no interior corners).
func CrossShard(bound geom.Rect, shardLevel, n int, seed int64) []*geom.Polygon {
	if shardLevel < 1 || shardLevel > 15 {
		panic(fmt.Sprintf("workload: cross-shard needs shard level in [1,15], got %d", shardLevel))
	}
	rng := rand.New(rand.NewSource(seed))
	side := 1 << uint(shardLevel)
	cw := bound.Width() / float64(side)
	ch := bound.Height() / float64(side)
	out := make([]*geom.Polygon, n)
	for k := range out {
		cx := bound.Min.X + float64(1+rng.Intn(side-1))*cw
		cy := bound.Min.Y + float64(1+rng.Intn(side-1))*ch
		// Radius within half a shard cell: big enough that the covering
		// reaches into all adjacent shards, small enough to stay off
		// further corners.
		r := (0.15 + rng.Float64()*0.3) * math.Min(cw, ch)
		out[k] = geom.RegularPolygon(geom.Pt(cx, cy), r, 6+rng.Intn(7))
	}
	return out
}

// Hotspot is a deterministic skewed repeated-query generator: a fixed
// pool of small polygons ("map tiles over urban centers") drawn with
// Zipf-distributed frequencies, so a few hot regions dominate the stream
// while the tail stays long — the serving-tier traffic shape the result
// cache (internal/resultcache) adapts to. Construct with ZipfianHotspot.
type Hotspot struct {
	pool []*geom.Polygon
	zipf *rand.Zipf
}

// ZipfianHotspot builds a Hotspot over bound: a pool of nPolys small
// convex polygons (radius 1–4% of the bound's smaller extent) placed
// uniformly, drawn by rank with Zipf exponent s. Pool rank i is the
// (i+1)-th most popular query. s must exceed 1 (the math/rand Zipf
// sampler's domain); larger s concentrates more of the stream on the
// hottest few polygons. The same (bound, nPolys, s, seed) always yields
// the same pool and the same draw sequence.
func ZipfianHotspot(bound geom.Rect, nPolys int, s float64, seed int64) *Hotspot {
	if nPolys < 1 {
		panic(fmt.Sprintf("workload: hotspot needs >= 1 polygon, got %d", nPolys))
	}
	if s <= 1 {
		panic(fmt.Sprintf("workload: zipf exponent must be > 1, got %v", s))
	}
	rng := rand.New(rand.NewSource(seed))
	ext := math.Min(bound.Width(), bound.Height())
	pool := make([]*geom.Polygon, nPolys)
	for i := range pool {
		r := (0.01 + rng.Float64()*0.03) * ext
		cx := bound.Min.X + r + rng.Float64()*(bound.Width()-2*r)
		cy := bound.Min.Y + r + rng.Float64()*(bound.Height()-2*r)
		pool[i] = geom.RegularPolygon(geom.Pt(cx, cy), r, 4+rng.Intn(5))
	}
	return &Hotspot{pool: pool, zipf: rand.NewZipf(rng, s, 1, uint64(nPolys-1))}
}

// Pool returns the polygon pool, hottest rank first. The slice is shared;
// callers must not mutate it.
func (h *Hotspot) Pool() []*geom.Polygon { return h.pool }

// NextIndex draws the next pool rank of the stream.
func (h *Hotspot) NextIndex() int { return int(h.zipf.Uint64()) }

// Next draws the next query polygon of the stream.
func (h *Hotspot) Next() *geom.Polygon { return h.pool[h.NextIndex()] }

// Draw returns the next n query polygons of the stream.
func (h *Hotspot) Draw(n int) []*geom.Polygon {
	out := make([]*geom.Polygon, n)
	for i := range out {
		out[i] = h.Next()
	}
	return out
}

// ZipfIndices draws count Zipf-distributed ranks in [0, n) with exponent
// s — the bare index stream for callers with their own query pool (e.g.
// skewed cell streams in cache tests). Deterministic per seed; s must
// exceed 1.
func ZipfIndices(n, count int, s float64, seed int64) []int {
	if n < 1 {
		panic(fmt.Sprintf("workload: zipf indices need n >= 1, got %d", n))
	}
	if s <= 1 {
		panic(fmt.Sprintf("workload: zipf exponent must be > 1, got %v", s))
	}
	rng := rand.New(rand.NewSource(seed))
	zipf := rand.NewZipf(rng, s, 1, uint64(n-1))
	out := make([]int, count)
	for i := range out {
		out[i] = int(zipf.Uint64())
	}
	return out
}

// SelectivityRect grows a rectangle around the data's spatial median until
// it contains approximately the target fraction of the table's rows (the
// paper's Fig. 12 polygons "covering a part of NYC which contains a
// certain percentage of the total rides"). The rectangle's aspect follows
// the domain. Accuracy is within ~1% of the target or the best achievable
// at the domain boundary.
func SelectivityRect(tbl *column.Table, dom cellid.Domain, target float64) geom.Rect {
	if target >= 1 {
		return dom.Bound()
	}
	center := spatialMedian(tbl, dom)
	bound := dom.Bound()
	total := float64(tbl.NumRows())

	count := func(scale float64) float64 {
		halfW := bound.Width() / 2 * scale
		halfH := bound.Height() / 2 * scale
		r := geom.RectFromCenter(center, halfW, halfH)
		n := 0
		for i := 0; i < tbl.NumRows(); i++ {
			if r.ContainsPoint(dom.CellCenter(cellid.ID(tbl.Keys[i]))) {
				n++
			}
		}
		return float64(n) / total
	}

	lo, hi := 0.0, 2.0 // scale 2 always covers the bound from any centre
	for iter := 0; iter < 24; iter++ {
		mid := (lo + hi) / 2
		if count(mid) < target {
			lo = mid
		} else {
			hi = mid
		}
	}
	return geom.RectFromCenter(center, bound.Width()/2*hi, bound.Height()/2*hi)
}

// SelectivityPolygon is SelectivityRect converted to a polygon query.
func SelectivityPolygon(tbl *column.Table, dom cellid.Domain, target float64) *geom.Polygon {
	return SelectivityRect(tbl, dom, target).Polygon()
}

// spatialMedian approximates the coordinate-wise median of the table's
// point locations by sampling.
func spatialMedian(tbl *column.Table, dom cellid.Domain) geom.Point {
	n := tbl.NumRows()
	if n == 0 {
		return dom.Bound().Center()
	}
	step := n/1024 + 1
	var xs, ys []float64
	for i := 0; i < n; i += step {
		p := dom.CellCenter(cellid.ID(tbl.Keys[i]))
		xs = append(xs, p.X)
		ys = append(ys, p.Y)
	}
	return geom.Pt(median(xs), median(ys))
}

func median(v []float64) float64 {
	// Insertion-select the middle element; inputs are ~1k values.
	c := append([]float64(nil), v...)
	k := len(c) / 2
	for i := 0; i <= k; i++ {
		minIdx := i
		for j := i + 1; j < len(c); j++ {
			if c[j] < c[minIdx] {
				minIdx = j
			}
		}
		c[i], c[minIdx] = c[minIdx], c[i]
	}
	return c[k]
}
