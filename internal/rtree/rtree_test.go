package rtree

import (
	"math"
	"math/rand"
	"testing"

	"geoblocks/internal/cellid"
	"geoblocks/internal/column"
	"geoblocks/internal/core"
	"geoblocks/internal/geom"
)

type fixture struct {
	dom  cellid.Domain
	tbl  *column.Table
	pts  []geom.Point
	tree *Tree
}

func newFixture(t testing.TB, n int, seed int64) *fixture {
	t.Helper()
	dom := cellid.MustDomain(geom.Rect{Min: geom.Pt(0, 0), Max: geom.Pt(100, 100)})
	schema := column.NewSchema("v", "w")
	rng := rand.New(rand.NewSource(seed))
	tbl := column.NewTable(schema)
	pts := make([]geom.Point, n)
	for i := 0; i < n; i++ {
		pts[i] = geom.Pt(rng.Float64()*100, rng.Float64()*100)
		tbl.AppendRow(uint64(dom.FromPoint(pts[i])), rng.Float64()*10, rng.NormFloat64())
	}
	tree := New(tbl, func(row int) geom.Point { return pts[row] })
	return &fixture{dom: dom, tbl: tbl, pts: pts, tree: tree}
}

func (f *fixture) bruteCount(r geom.Rect) uint64 {
	var n uint64
	for _, p := range f.pts {
		if r.ContainsPoint(p) {
			n++
		}
	}
	return n
}

func TestTreeStructure(t *testing.T) {
	f := newFixture(t, 5000, 1)
	if f.tree.Len() != 5000 {
		t.Fatalf("len = %d", f.tree.Len())
	}
	if f.tree.Height() < 3 {
		t.Fatalf("height = %d, want >= 3 for 5000 points at fanout 16", f.tree.Height())
	}
	// Every node must respect capacity bounds (root may underflow).
	var walk func(n *node, isRoot bool)
	walk = func(n *node, isRoot bool) {
		if len(n.entries) > maxEntries {
			t.Fatalf("node with %d entries exceeds max %d", len(n.entries), maxEntries)
		}
		if !isRoot && len(n.entries) < minEntries {
			t.Fatalf("non-root node with %d entries below min %d", len(n.entries), minEntries)
		}
		if !n.leaf {
			for _, e := range n.entries {
				walk(e.child, false)
			}
		}
	}
	walk(f.tree.root, true)
}

func TestNodeMBRsContainChildren(t *testing.T) {
	f := newFixture(t, 3000, 2)
	var walk func(n *node)
	walk = func(n *node) {
		if n.leaf {
			return
		}
		for _, e := range n.entries {
			childMBR := e.child.mbr()
			if !e.mbr.ContainsRect(childMBR) {
				t.Fatalf("entry MBR %v does not contain child MBR %v", e.mbr, childMBR)
			}
			walk(e.child)
		}
	}
	walk(f.tree.root)
}

func TestNodeAggregatesConsistent(t *testing.T) {
	f := newFixture(t, 4000, 3)
	var walk func(n *node) aggRecord
	walk = func(n *node) aggRecord {
		want := newAggRecord(f.tree.numCols)
		if n.leaf {
			for _, e := range n.entries {
				want.addRow(f.tbl, int(e.row))
			}
		} else {
			for _, e := range n.entries {
				want.merge(walk(e.child))
			}
		}
		if n.agg.count != want.count {
			t.Fatalf("node count %d, want %d", n.agg.count, want.count)
		}
		for c := range want.cols {
			if math.Abs(n.agg.cols[c].Sum-want.cols[c].Sum) > 1e-6 {
				t.Fatalf("node col %d sum %g, want %g", c, n.agg.cols[c].Sum, want.cols[c].Sum)
			}
			if n.agg.cols[c].Min != want.cols[c].Min || n.agg.cols[c].Max != want.cols[c].Max {
				t.Fatalf("node col %d min/max differ", c)
			}
		}
		return want
	}
	root := walk(f.tree.root)
	if root.count != uint64(f.tree.Len()) {
		t.Fatalf("root count %d, want %d", root.count, f.tree.Len())
	}
}

func TestCountApproximationQuality(t *testing.T) {
	// The Listing 3 algorithm is approximate on overlapping internal
	// nodes: case (a) descends only the first child whose MBR contains
	// the search area (possible undercount), cases (b)/(c) can double
	// count (overcount). The paper reports this instability (Fig. 14/15);
	// here we assert the error stays moderate on average and that a good
	// share of queries are answered exactly.
	f := newFixture(t, 20000, 4)
	rng := rand.New(rand.NewSource(5))
	exact := 0
	var sumErr float64
	const trials = 40
	for trial := 0; trial < trials; trial++ {
		x0 := rng.Float64() * 70
		y0 := rng.Float64() * 70
		r := geom.Rect{Min: geom.Pt(x0, y0), Max: geom.Pt(x0+10+rng.Float64()*20, y0+10+rng.Float64()*20)}
		got := f.tree.CountRect(r)
		want := f.bruteCount(r)
		if want == 0 {
			continue
		}
		relErr := math.Abs(float64(got)-float64(want)) / float64(want)
		sumErr += relErr
		if got == want {
			exact++
		}
		if relErr > 2 {
			t.Fatalf("rect %v: count %d vs exact %d, error %.2f too large", r, got, want, relErr)
		}
	}
	meanErr := sumErr / trials
	if meanErr > 0.5 {
		t.Fatalf("mean relative error %.3f too high", meanErr)
	}
	if exact < trials/4 {
		t.Fatalf("only %d/%d queries exact; point-leaf R* tree should answer most small rects exactly", exact, trials)
	}
	t.Logf("mean relative error %.4f, %d/%d exact", meanErr, exact, trials)
}

func TestFullDomainQueryUsesRootAggregate(t *testing.T) {
	f := newFixture(t, 10000, 6)
	// A rect covering everything: the query should consume node aggregates
	// near the root and return the exact total.
	r := geom.Rect{Min: geom.Pt(-1, -1), Max: geom.Pt(101, 101)}
	got := f.tree.CountRect(r)
	if got != uint64(f.tree.Len()) {
		t.Fatalf("full-domain count = %d, want %d", got, f.tree.Len())
	}
	res := f.tree.AggregateRect(r, []core.AggSpec{{Col: 0, Func: core.AggSum}})
	var want float64
	for i := 0; i < f.tbl.NumRows(); i++ {
		want += f.tbl.Cols[0][i]
	}
	if math.Abs(res.Values[0]-want) > 1e-6*math.Max(1, want) {
		t.Fatalf("full-domain sum = %g, want %g", res.Values[0], want)
	}
}

func TestEmptyRect(t *testing.T) {
	f := newFixture(t, 5000, 7)
	r := geom.Rect{Min: geom.Pt(200, 200), Max: geom.Pt(300, 300)}
	if got := f.tree.CountRect(r); got != 0 {
		t.Fatalf("disjoint rect count = %d", got)
	}
}

func TestAggregatesAreExactWhenFullyContained(t *testing.T) {
	// If query rect fully contains all points, min/max/sum are exact even
	// with the upper-bound algorithm (no partial overlaps).
	f := newFixture(t, 8000, 8)
	r := geom.Rect{Min: geom.Pt(0, 0), Max: geom.Pt(100, 100)}
	sp := []core.AggSpec{
		{Col: 0, Func: core.AggMin},
		{Col: 0, Func: core.AggMax},
	}
	res := f.tree.AggregateRect(r, sp)
	wantMin, wantMax := math.Inf(1), math.Inf(-1)
	for i := 0; i < f.tbl.NumRows(); i++ {
		v := f.tbl.Cols[0][i]
		wantMin = math.Min(wantMin, v)
		wantMax = math.Max(wantMax, v)
	}
	if res.Values[0] != wantMin || res.Values[1] != wantMax {
		t.Fatalf("min/max = %g/%g, want %g/%g", res.Values[0], res.Values[1], wantMin, wantMax)
	}
}

func TestSizeBytesAccountsAggregates(t *testing.T) {
	f := newFixture(t, 5000, 9)
	size := f.tree.SizeBytes()
	if size <= 0 {
		t.Fatal("size must be positive")
	}
	// Each node stores an aggregate record: the overhead per node must be
	// at least the aggregate size.
	if size < f.tree.NumNodes()*(8+24*f.tree.numCols) {
		t.Fatalf("size %d too small for %d nodes with aggregates", size, f.tree.NumNodes())
	}
}

func TestSmallTreeNoSplit(t *testing.T) {
	dom := cellid.MustDomain(geom.Rect{Min: geom.Pt(0, 0), Max: geom.Pt(10, 10)})
	tbl := column.NewTable(column.NewSchema("v"))
	pts := []geom.Point{geom.Pt(1, 1), geom.Pt(2, 2), geom.Pt(3, 3)}
	for i, p := range pts {
		tbl.AppendRow(uint64(dom.FromPoint(p)), float64(i))
	}
	tr := New(tbl, func(row int) geom.Point { return pts[row] })
	if tr.Height() != 1 {
		t.Fatalf("height = %d, want 1", tr.Height())
	}
	if got := tr.CountRect(geom.Rect{Min: geom.Pt(0, 0), Max: geom.Pt(2.5, 2.5)}); got != 2 {
		t.Fatalf("count = %d, want 2", got)
	}
}
