// Package rtree implements the aR-tree baseline (Papadias et al., SSTD
// 2001 / ICDE 2002) of the paper's evaluation (Sec. 4.1): an R*-tree whose
// nodes additionally store the aggregate of their subtree, queried with the
// early-abort algorithm of paper Listing 3. Node capacity is 16, matching
// the paper's configuration, and splits use the R* axis/ distribution
// heuristics (without forced reinsertion).
//
// Following the paper's faithful re-implementation, the query accepts that
// points may be counted multiple times when internal nodes overlap: it
// delivers an upper bound of the result while visiting exactly the nodes
// the original aR-tree visits, "thus achieving the same performance".
package rtree

import (
	"math"
	"sort"

	"geoblocks/internal/baseline"
	"geoblocks/internal/column"
	"geoblocks/internal/core"
	"geoblocks/internal/geom"
)

const (
	maxEntries = 16
	minEntries = 6 // 40% of capacity, the R* recommendation
)

// aggRecord is the per-node aggregate of the whole subtree.
type aggRecord struct {
	count uint64
	cols  []core.ColAggregate
}

func newAggRecord(numCols int) aggRecord {
	cols := make([]core.ColAggregate, numCols)
	for i := range cols {
		cols[i] = core.ColAggregate{Min: math.Inf(1), Max: math.Inf(-1)}
	}
	return aggRecord{cols: cols}
}

func (a *aggRecord) addRow(t *column.Table, row int) {
	a.count++
	for c := range a.cols {
		v := t.Cols[c][row]
		if v < a.cols[c].Min {
			a.cols[c].Min = v
		}
		if v > a.cols[c].Max {
			a.cols[c].Max = v
		}
		a.cols[c].Sum += v
	}
}

func (a *aggRecord) merge(b aggRecord) {
	a.count += b.count
	for c := range a.cols {
		if b.cols[c].Min < a.cols[c].Min {
			a.cols[c].Min = b.cols[c].Min
		}
		if b.cols[c].Max > a.cols[c].Max {
			a.cols[c].Max = b.cols[c].Max
		}
		a.cols[c].Sum += b.cols[c].Sum
	}
}

// entry is either a child pointer (internal) or a point row (leaf).
type entry struct {
	mbr   geom.Rect
	child *node
	row   int32
}

// node is an R-tree node with its subtree aggregate (the "aR" part).
type node struct {
	leaf    bool
	entries []entry
	agg     aggRecord
}

func (n *node) mbr() geom.Rect {
	r := n.entries[0].mbr
	for _, e := range n.entries[1:] {
		r = r.Union(e.mbr)
	}
	return r
}

// Tree is the aR-tree baseline.
type Tree struct {
	root    *node
	table   *column.Table
	numCols int
	height  int
	size    int
	numNode int
}

// New builds the aR-tree by inserting every row of the table, locating
// each row at pointAt(row). Insertion-based construction is what makes the
// paper exclude the aR-tree from large build benchmarks.
func New(t *column.Table, pointAt func(row int) geom.Point) *Tree {
	tr := &Tree{
		table:   t,
		numCols: t.Schema.NumCols(),
		height:  1,
	}
	tr.root = &node{leaf: true, agg: newAggRecord(tr.numCols)}
	tr.numNode = 1
	for i := 0; i < t.NumRows(); i++ {
		tr.Insert(pointAt(i), uint32(i))
	}
	return tr
}

// Len returns the number of indexed points.
func (t *Tree) Len() int { return t.size }

// Height returns the tree height.
func (t *Tree) Height() int { return t.height }

// NumNodes returns the number of tree nodes.
func (t *Tree) NumNodes() int { return t.numNode }

// Insert adds one point row.
func (t *Tree) Insert(p geom.Point, row uint32) {
	t.size++
	e := entry{mbr: geom.Rect{Min: p, Max: p}, row: int32(row)}
	split := t.insert(t.root, e)
	if split != nil {
		newRoot := &node{
			leaf: false,
			entries: []entry{
				{mbr: t.root.mbr(), child: t.root},
				{mbr: split.mbr(), child: split},
			},
			agg: newAggRecord(t.numCols),
		}
		newRoot.agg.merge(t.root.agg)
		newRoot.agg.merge(split.agg)
		t.root = newRoot
		t.height++
		t.numNode++
	}
}

// insert descends via ChooseSubtree, maintains aggregates along the path,
// and returns a split sibling when n overflowed.
func (t *Tree) insert(n *node, e entry) *node {
	n.agg.addRow(t.table, int(e.row))
	if n.leaf {
		n.entries = append(n.entries, e)
		if len(n.entries) > maxEntries {
			return t.split(n)
		}
		return nil
	}
	idx := t.chooseSubtree(n, e.mbr)
	split := t.insert(n.entries[idx].child, e)
	if split != nil {
		// The child lost half its entries to the new sibling: recompute
		// its MBR from scratch instead of unioning, or the stale bound
		// would cover the sibling's region and bloat upper-level overlap.
		n.entries[idx].mbr = n.entries[idx].child.mbr()
		n.entries = append(n.entries, entry{mbr: split.mbr(), child: split})
		if len(n.entries) > maxEntries {
			return t.split(n)
		}
		return nil
	}
	n.entries[idx].mbr = n.entries[idx].mbr.Union(e.mbr)
	return nil
}

// chooseSubtree picks the child to descend into: for nodes whose children
// are leaves, minimal overlap enlargement (the R* criterion); otherwise
// minimal area enlargement, ties broken by smaller area.
func (t *Tree) chooseSubtree(n *node, r geom.Rect) int {
	childrenAreLeaves := n.entries[0].child.leaf
	best := 0
	if childrenAreLeaves {
		bestOverlap := math.Inf(1)
		bestEnlarge := math.Inf(1)
		for i, e := range n.entries {
			enlarged := e.mbr.Union(r)
			overlap := 0.0
			for j, o := range n.entries {
				if j == i {
					continue
				}
				inter := enlarged.Intersection(o.mbr)
				if inter.IsValid() {
					overlap += inter.Area()
				}
			}
			enlarge := enlarged.Area() - e.mbr.Area()
			if overlap < bestOverlap || (overlap == bestOverlap && enlarge < bestEnlarge) {
				bestOverlap, bestEnlarge, best = overlap, enlarge, i
			}
		}
		return best
	}
	bestEnlarge := math.Inf(1)
	bestArea := math.Inf(1)
	for i, e := range n.entries {
		enlarge := e.mbr.Union(r).Area() - e.mbr.Area()
		area := e.mbr.Area()
		if enlarge < bestEnlarge || (enlarge == bestEnlarge && area < bestArea) {
			bestEnlarge, bestArea, best = enlarge, area, i
		}
	}
	return best
}

// split divides an over-full node using the R* topology: choose the split
// axis by minimal margin sum over all distributions, then the distribution
// with minimal overlap (ties: minimal total area). It mutates n into the
// left group and returns the new right sibling.
func (t *Tree) split(n *node) *node {
	entries := n.entries

	bestAxisMargin := math.Inf(1)
	var bestSorted []entry
	for axis := 0; axis < 2; axis++ {
		for _, byUpper := range []bool{false, true} {
			sorted := append([]entry(nil), entries...)
			sort.Slice(sorted, func(i, j int) bool {
				a, b := sorted[i].mbr, sorted[j].mbr
				if axis == 0 {
					if byUpper {
						return a.Max.X < b.Max.X
					}
					return a.Min.X < b.Min.X
				}
				if byUpper {
					return a.Max.Y < b.Max.Y
				}
				return a.Min.Y < b.Min.Y
			})
			margin := 0.0
			for k := minEntries; k <= len(sorted)-minEntries; k++ {
				left := mbrOf(sorted[:k])
				right := mbrOf(sorted[k:])
				margin += left.Width() + left.Height() + right.Width() + right.Height()
			}
			if margin < bestAxisMargin {
				bestAxisMargin = margin
				bestSorted = sorted
			}
		}
	}

	bestOverlap := math.Inf(1)
	bestArea := math.Inf(1)
	bestK := minEntries
	for k := minEntries; k <= len(bestSorted)-minEntries; k++ {
		left := mbrOf(bestSorted[:k])
		right := mbrOf(bestSorted[k:])
		inter := left.Intersection(right)
		overlap := 0.0
		if inter.IsValid() {
			overlap = inter.Area()
		}
		area := left.Area() + right.Area()
		if overlap < bestOverlap || (overlap == bestOverlap && area < bestArea) {
			bestOverlap, bestArea, bestK = overlap, area, k
		}
	}

	right := &node{leaf: n.leaf, entries: append([]entry(nil), bestSorted[bestK:]...)}
	n.entries = append(n.entries[:0], bestSorted[:bestK]...)
	t.recomputeAgg(n)
	t.recomputeAgg(right)
	t.numNode++
	return right
}

func mbrOf(es []entry) geom.Rect {
	r := es[0].mbr
	for _, e := range es[1:] {
		r = r.Union(e.mbr)
	}
	return r
}

// recomputeAgg rebuilds a node's aggregate from its entries after a split.
func (t *Tree) recomputeAgg(n *node) {
	n.agg = newAggRecord(t.numCols)
	if n.leaf {
		for _, e := range n.entries {
			n.agg.addRow(t.table, int(e.row))
		}
		return
	}
	for _, e := range n.entries {
		n.agg.merge(e.child.agg)
	}
}

// AggregateRect answers an aggregate query over the rectangle s using
// paper Listing 3: a child that fully contains the search area is the only
// one descended into; children fully inside the search area contribute
// their node aggregate without descending (the aR-tree early abort);
// partially overlapping children are descended afterwards. Overlapping
// internal nodes can double-count, making the result an upper bound — the
// behaviour the paper documents for its own implementation.
func (t *Tree) AggregateRect(s geom.Rect, specs []core.AggSpec) core.Result {
	acc := baseline.NewRowAccumulator(specs)
	t.query(t.root, s, acc)
	return acc.Result()
}

func (t *Tree) query(n *node, s geom.Rect, acc *baseline.RowAccumulator) {
	var partial []*node
	for i := range n.entries {
		e := &n.entries[i]
		if e.child != nil && e.mbr.ContainsRect(s) {
			// Case (a): the child covers the whole search area; recurse
			// into it exclusively.
			t.query(e.child, s, acc)
			return
		}
		if s.ContainsRect(e.mbr) {
			// Case (b): fully contained — consume the aggregate (or the
			// point row at leaf level).
			if e.child != nil {
				acc.AddAggregate(e.child.agg.count, e.child.agg.cols)
			} else {
				acc.AddRow(t.table, int(e.row))
			}
			continue
		}
		if e.child != nil && s.Intersects(e.mbr) {
			// Case (c): partial overlap — process later iff no case (a)
			// child appears.
			partial = append(partial, e.child)
		}
	}
	for _, c := range partial {
		t.query(c, s, acc)
	}
}

// CountRect counts points in the rectangle with the same upper-bound
// semantics.
func (t *Tree) CountRect(s geom.Rect) uint64 {
	res := t.AggregateRect(s, []core.AggSpec{{Func: core.AggCount}})
	return res.Count
}

// SizeBytes returns the aR-tree's storage overhead following the layout
// sketched in paper Fig. 9: leaf entries store a point plus a tuple offset
// (20 bytes), internal entries a bounding box plus a child pointer
// (40 bytes), and every node carries its aggregate record (8 bytes count +
// 24 bytes per column).
func (t *Tree) SizeBytes() int {
	size := 0
	aggBytes := 8 + 24*t.numCols
	var walk func(n *node)
	walk = func(n *node) {
		size += aggBytes + 24 // aggregate record + node header
		if n.leaf {
			size += 20 * cap(n.entries)
			return
		}
		size += 40 * cap(n.entries)
		for _, e := range n.entries {
			walk(e.child)
		}
	}
	walk(t.root)
	return size
}

// Name identifies the baseline in experiment output.
func (t *Tree) Name() string { return "aRTree" }
