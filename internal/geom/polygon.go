package geom

import (
	"errors"
	"fmt"
	"math"
)

// Polygon is a simple polygon with an outer ring and zero or more hole
// rings. Rings are stored without a repeated closing vertex. The outer ring
// is normalised to counter-clockwise orientation and holes to clockwise
// orientation on construction, so downstream code can rely on winding.
//
// Query regions in GeoBlocks are arbitrary polygons of this form (paper
// Sec. 2); the region coverer approximates them with grid cells.
type Polygon struct {
	outer []Point
	holes [][]Point
	bbox  Rect
}

// ErrDegeneratePolygon is returned when a ring has fewer than three
// vertices or zero area.
var ErrDegeneratePolygon = errors.New("geom: polygon ring needs at least 3 non-collinear vertices")

// NewPolygon builds a polygon from an outer ring. The ring must contain at
// least three vertices; it is copied and normalised to counter-clockwise
// order. NewPolygon panics on degenerate input — use TryPolygon for
// validating untrusted data.
func NewPolygon(outer []Point) *Polygon {
	p, err := TryPolygon(outer)
	if err != nil {
		panic(err)
	}
	return p
}

// TryPolygon builds a polygon from an outer ring, reporting an error for
// degenerate rings instead of panicking.
func TryPolygon(outer []Point) (*Polygon, error) {
	ring, err := normalizeRing(outer, false)
	if err != nil {
		return nil, err
	}
	return &Polygon{
		outer: ring,
		bbox:  RectFromPoints(ring...),
	}, nil
}

// AddHole adds a hole ring to p. The ring is copied and normalised to
// clockwise order. Holes must lie inside the outer ring; this is the
// caller's responsibility and is not validated (matching the permissive
// handling of real-world polygon data in the paper's pipeline).
func (p *Polygon) AddHole(ring []Point) error {
	h, err := normalizeRing(ring, true)
	if err != nil {
		return err
	}
	p.holes = append(p.holes, h)
	return nil
}

func normalizeRing(ring []Point, clockwise bool) ([]Point, error) {
	// Strip a repeated closing vertex if present.
	if len(ring) > 1 && ring[0] == ring[len(ring)-1] {
		ring = ring[:len(ring)-1]
	}
	if len(ring) < 3 {
		return nil, ErrDegeneratePolygon
	}
	out := make([]Point, len(ring))
	copy(out, ring)
	a := signedArea(out)
	if a == 0 {
		return nil, ErrDegeneratePolygon
	}
	if (a < 0) != clockwise {
		reverse(out)
	}
	return out, nil
}

func reverse(pts []Point) {
	for i, j := 0, len(pts)-1; i < j; i, j = i+1, j-1 {
		pts[i], pts[j] = pts[j], pts[i]
	}
}

// signedArea returns the signed area of a ring: positive for
// counter-clockwise winding.
func signedArea(ring []Point) float64 {
	var sum float64
	for i, a := range ring {
		b := ring[(i+1)%len(ring)]
		sum += a.Cross(b)
	}
	return sum / 2
}

// NumVertices returns the total vertex count across all rings.
func (p *Polygon) NumVertices() int {
	n := len(p.outer)
	for _, h := range p.holes {
		n += len(h)
	}
	return n
}

// Outer returns the outer ring (counter-clockwise, no closing vertex). The
// returned slice is shared; callers must not modify it.
func (p *Polygon) Outer() []Point { return p.outer }

// Holes returns the hole rings (clockwise). The returned slices are shared.
func (p *Polygon) Holes() [][]Point { return p.holes }

// Bound returns the minimal bounding rectangle of the outer ring.
func (p *Polygon) Bound() Rect { return p.bbox }

// Area returns the area of the polygon: the outer ring's area minus the
// holes' areas.
func (p *Polygon) Area() float64 {
	a := signedArea(p.outer) // positive: outer is CCW
	for _, h := range p.holes {
		a += signedArea(h) // negative: holes are CW
	}
	return a
}

// Centroid returns the area-weighted centroid of the outer ring.
func (p *Polygon) Centroid() Point {
	var cx, cy, a float64
	ring := p.outer
	for i, v := range ring {
		w := ring[(i+1)%len(ring)]
		cross := v.Cross(w)
		cx += (v.X + w.X) * cross
		cy += (v.Y + w.Y) * cross
		a += cross
	}
	if a == 0 {
		return p.bbox.Center()
	}
	return Point{cx / (3 * a), cy / (3 * a)}
}

// ContainsPoint reports whether pt lies strictly inside p or on its
// boundary. Points inside a hole are not contained. The implementation uses
// the even-odd ray-casting rule with explicit boundary handling so that
// boundary points are classified deterministically as contained.
func (p *Polygon) ContainsPoint(pt Point) bool {
	if !p.bbox.ContainsPoint(pt) {
		return false
	}
	in, boundary := ringContains(p.outer, pt)
	if boundary {
		return true
	}
	if !in {
		return false
	}
	for _, h := range p.holes {
		hin, hb := ringContains(h, pt)
		if hb {
			return true // on a hole boundary = on the polygon boundary
		}
		if hin {
			return false
		}
	}
	return true
}

// ringContains reports whether pt is inside the ring (even-odd rule) and
// whether it lies exactly on the ring boundary.
func ringContains(ring []Point, pt Point) (inside, boundary bool) {
	n := len(ring)
	j := n - 1
	for i := 0; i < n; i++ {
		a, b := ring[j], ring[i]
		if orientation(a, b, pt) == 0 && onSegment(a, b, pt) {
			return false, true
		}
		// Half-open rule on Y avoids double counting at vertices.
		if (a.Y > pt.Y) != (b.Y > pt.Y) {
			xCross := a.X + (pt.Y-a.Y)/(b.Y-a.Y)*(b.X-a.X)
			if pt.X < xCross {
				inside = !inside
			}
		}
		j = i
	}
	return inside, false
}

// IntersectsRect reports whether p and the closed rectangle r share at
// least one point.
func (p *Polygon) IntersectsRect(r Rect) bool {
	if !p.bbox.Intersects(r) {
		return false
	}
	// Any polygon vertex inside the rect?
	for _, v := range p.outer {
		if r.ContainsPoint(v) {
			return true
		}
	}
	// Any rect corner inside the polygon?
	for _, c := range r.Vertices() {
		if p.ContainsPoint(c) {
			return true
		}
	}
	// Any outer-ring edge crossing the rect boundary? (Holes cannot create
	// an intersection that the two checks above plus this one miss: if the
	// rect is entirely inside a hole, no corner is contained and no outer
	// edge crosses it, and indeed there is no intersection with the polygon
	// interior — but the rect could still cross a hole edge while its
	// corners sit in the hole and the polygon; handle that below.)
	if ringIntersectsRect(p.outer, r) {
		return true
	}
	for _, h := range p.holes {
		if ringIntersectsRect(h, r) {
			return true
		}
	}
	return false
}

func ringIntersectsRect(ring []Point, r Rect) bool {
	n := len(ring)
	j := n - 1
	for i := 0; i < n; i++ {
		if SegmentIntersectsRect(ring[j], ring[i], r) {
			return true
		}
		j = i
	}
	return false
}

// RectRelation is the three-way classification of a rectangle against a
// region: disjoint from it, intersecting its boundary, or fully contained
// in it.
type RectRelation int

const (
	// RectDisjoint: the rectangle and the region share no point.
	RectDisjoint RectRelation = iota
	// RectIntersects: the rectangle overlaps the region but is not fully
	// contained in it.
	RectIntersects
	// RectContains: the rectangle lies entirely within the region.
	RectContains
)

// ClassifyRect returns the full three-way relation of r to p in one pass.
// It is exactly equivalent to the (IntersectsRect, ContainsRect) pair —
// RectDisjoint iff !IntersectsRect, RectContains iff ContainsRect — but
// shares the expensive per-corner ring tests and edge walks between the
// two predicates instead of repeating them, which roughly halves the cost
// of classifying the boundary cells that dominate covering time.
func (p *Polygon) ClassifyRect(r Rect) RectRelation {
	if !p.bbox.Intersects(r) {
		return RectDisjoint
	}
	// One corner inside and one outside settles the relation immediately:
	// the rectangle straddles the boundary. This is the common case for
	// the cells a coverer subdivides.
	anyIn, anyOut := false, false
	for _, c := range r.Vertices() {
		if p.ContainsPoint(c) {
			anyIn = true
		} else {
			anyOut = true
		}
		if anyIn && anyOut {
			return RectIntersects
		}
	}
	if anyIn {
		// All four corners inside: contained unless a ring edge cuts
		// through the rectangle or a hole hides inside it.
		if p.bbox.ContainsRect(r) && !ringIntersectsRect(p.outer, r) {
			ok := true
			for _, h := range p.holes {
				if ringIntersectsRect(h, r) || r.ContainsPoint(h[0]) {
					ok = false
					break
				}
			}
			if ok {
				return RectContains
			}
		}
		return RectIntersects
	}
	// All four corners outside: the rectangle still intersects if it
	// swallows a polygon vertex or a ring edge crosses it.
	for _, v := range p.outer {
		if r.ContainsPoint(v) {
			return RectIntersects
		}
	}
	if ringIntersectsRect(p.outer, r) {
		return RectIntersects
	}
	for _, h := range p.holes {
		if ringIntersectsRect(h, r) {
			return RectIntersects
		}
	}
	return RectDisjoint
}

// ContainsRect reports whether the closed rectangle r lies entirely within
// p (holes excluded). This is the predicate the region coverer uses to
// classify covering cells as interior.
func (p *Polygon) ContainsRect(r Rect) bool {
	if !p.bbox.ContainsRect(r) {
		return false
	}
	// All four corners must be inside.
	for _, c := range r.Vertices() {
		if !p.ContainsPoint(c) {
			return false
		}
	}
	// No boundary edge may cross the rectangle: an outer edge crossing
	// means part of the rect is outside; a hole edge crossing (or a hole
	// fully inside the rect) means part of the rect is in a hole.
	if ringIntersectsRect(p.outer, r) {
		// Edges touching the rect boundary from outside are fine only if
		// the rect is degenerate; be conservative and reject.
		return false
	}
	for _, h := range p.holes {
		if ringIntersectsRect(h, r) {
			return false
		}
		if r.ContainsPoint(h[0]) {
			return false // hole entirely inside the rectangle
		}
	}
	return true
}

// String implements fmt.Stringer.
func (p *Polygon) String() string {
	return fmt.Sprintf("Polygon(%d vertices, %d holes, bbox %v)", len(p.outer), len(p.holes), p.bbox)
}

// InteriorRect returns an approximation of the largest axis-aligned
// rectangle fully contained in p. The paper's PH-tree and aR-tree baselines
// only support rectangular query regions and are therefore queried with the
// polygon's interior rectangle (paper Sec. 4.1); this function provides that
// rectangle.
//
// The approximation rasterises the polygon onto a res × res grid over its
// bounding box, marks fully-interior grid cells, and finds the maximum-area
// rectangle of interior cells with the classic histogram-stack algorithm.
// The result is exact up to grid resolution and always contained in p.
// It returns an invalid Rect when no interior rectangle exists at this
// resolution (e.g. a sliver polygon).
func (p *Polygon) InteriorRect(res int) Rect {
	if res < 2 {
		res = 2
	}
	bb := p.bbox
	if bb.Width() <= 0 || bb.Height() <= 0 {
		return Rect{Min: Point{1, 1}, Max: Point{0, 0}} // invalid
	}
	cw := bb.Width() / float64(res)
	ch := bb.Height() / float64(res)

	interior := make([]bool, res*res)
	for gy := 0; gy < res; gy++ {
		for gx := 0; gx < res; gx++ {
			cell := Rect{
				Min: Point{bb.Min.X + float64(gx)*cw, bb.Min.Y + float64(gy)*ch},
				Max: Point{bb.Min.X + float64(gx+1)*cw, bb.Min.Y + float64(gy+1)*ch},
			}
			interior[gy*res+gx] = p.ContainsRect(cell)
		}
	}

	// Maximal rectangle in a binary matrix via per-row histograms.
	heights := make([]int, res)
	bestArea := 0
	var best struct{ x0, y0, x1, y1 int } // cell index bounds, inclusive-exclusive
	type stackEntry struct{ start, height int }
	stack := make([]stackEntry, 0, res+1)
	for gy := 0; gy < res; gy++ {
		for gx := 0; gx < res; gx++ {
			if interior[gy*res+gx] {
				heights[gx]++
			} else {
				heights[gx] = 0
			}
		}
		stack = stack[:0]
		for gx := 0; gx <= res; gx++ {
			h := 0
			if gx < res {
				h = heights[gx]
			}
			start := gx
			for len(stack) > 0 && stack[len(stack)-1].height > h {
				top := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				area := top.height * (gx - top.start)
				if area > bestArea {
					bestArea = area
					best.x0, best.x1 = top.start, gx
					best.y0, best.y1 = gy+1-top.height, gy+1
				}
				start = top.start
			}
			if len(stack) == 0 || stack[len(stack)-1].height < h {
				stack = append(stack, stackEntry{start, h})
			}
		}
	}
	if bestArea == 0 {
		return Rect{Min: Point{1, 1}, Max: Point{0, 0}} // invalid
	}
	return Rect{
		Min: Point{bb.Min.X + float64(best.x0)*cw, bb.Min.Y + float64(best.y0)*ch},
		Max: Point{bb.Min.X + float64(best.x1)*cw, bb.Min.Y + float64(best.y1)*ch},
	}
}

// RegularPolygon returns a convex polygon with n vertices approximating a
// circle of the given radius around center. It is used by tests and by the
// synthetic workload generators.
func RegularPolygon(center Point, radius float64, n int) *Polygon {
	if n < 3 {
		n = 3
	}
	pts := make([]Point, n)
	for i := range pts {
		a := 2 * math.Pi * float64(i) / float64(n)
		pts[i] = Point{center.X + radius*math.Cos(a), center.Y + radius*math.Sin(a)}
	}
	return NewPolygon(pts)
}
