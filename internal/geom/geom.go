// Package geom provides the planar geometry primitives that underpin the
// GeoBlocks spatial decomposition: points, axis-aligned rectangles, and
// simple polygons with optional holes, together with the containment and
// intersection predicates required by the region coverer and the baselines.
//
// All coordinates are plain float64 pairs. The package is deliberately
// projection-agnostic: callers decide whether X/Y mean longitude/latitude or
// metres. The GeoBlocks pipeline treats the configured domain rectangle as a
// flat torus-free plane, which matches the paper's use of a fixed spatial
// domain (NYC, the contiguous US, the Americas).
package geom

import (
	"fmt"
	"math"
)

// Point is a location in the plane. For geographic data X is the longitude
// and Y the latitude, but nothing in this package depends on that reading.
type Point struct {
	X, Y float64
}

// Pt is a convenience constructor.
func Pt(x, y float64) Point { return Point{X: x, Y: y} }

// Add returns p translated by q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns the vector from q to p.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Scale returns p scaled by f.
func (p Point) Scale(f float64) Point { return Point{p.X * f, p.Y * f} }

// Dot returns the dot product of p and q viewed as vectors.
func (p Point) Dot(q Point) float64 { return p.X*q.X + p.Y*q.Y }

// Cross returns the z component of the cross product of p and q viewed as
// vectors, i.e. the signed area of the parallelogram they span.
func (p Point) Cross(q Point) float64 { return p.X*q.Y - p.Y*q.X }

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 {
	return math.Hypot(p.X-q.X, p.Y-q.Y)
}

// String implements fmt.Stringer.
func (p Point) String() string { return fmt.Sprintf("(%g, %g)", p.X, p.Y) }

// Rect is an axis-aligned rectangle. A Rect is valid when Min.X <= Max.X and
// Min.Y <= Max.Y; the zero Rect is the valid degenerate rectangle at the
// origin. Rectangles are closed: they contain their boundary.
type Rect struct {
	Min, Max Point
}

// RectFromPoints returns the minimal bounding rectangle of the given points.
// It returns an empty Rect when called with no points.
func RectFromPoints(pts ...Point) Rect {
	if len(pts) == 0 {
		return Rect{}
	}
	r := Rect{Min: pts[0], Max: pts[0]}
	for _, p := range pts[1:] {
		r = r.ExtendPoint(p)
	}
	return r
}

// RectFromCenter returns the rectangle centred at c with the given half
// extents.
func RectFromCenter(c Point, halfW, halfH float64) Rect {
	return Rect{
		Min: Point{c.X - halfW, c.Y - halfH},
		Max: Point{c.X + halfW, c.Y + halfH},
	}
}

// IsValid reports whether r has non-negative extent in both dimensions.
func (r Rect) IsValid() bool {
	return r.Min.X <= r.Max.X && r.Min.Y <= r.Max.Y
}

// Width returns the X extent of r.
func (r Rect) Width() float64 { return r.Max.X - r.Min.X }

// Height returns the Y extent of r.
func (r Rect) Height() float64 { return r.Max.Y - r.Min.Y }

// Area returns the area of r, zero for invalid rectangles.
func (r Rect) Area() float64 {
	if !r.IsValid() {
		return 0
	}
	return r.Width() * r.Height()
}

// Diagonal returns the length of r's diagonal. This is the spatial error
// bound that a covering at this cell size guarantees (paper Sec. 3.2).
func (r Rect) Diagonal() float64 {
	return math.Hypot(r.Width(), r.Height())
}

// Center returns the centre point of r.
func (r Rect) Center() Point {
	return Point{(r.Min.X + r.Max.X) / 2, (r.Min.Y + r.Max.Y) / 2}
}

// Vertices returns the four corners of r in counter-clockwise order starting
// at Min.
func (r Rect) Vertices() [4]Point {
	return [4]Point{
		r.Min,
		{r.Max.X, r.Min.Y},
		r.Max,
		{r.Min.X, r.Max.Y},
	}
}

// ContainsPoint reports whether p lies inside or on the boundary of r.
func (r Rect) ContainsPoint(p Point) bool {
	return p.X >= r.Min.X && p.X <= r.Max.X && p.Y >= r.Min.Y && p.Y <= r.Max.Y
}

// ContainsRect reports whether r fully contains o.
func (r Rect) ContainsRect(o Rect) bool {
	return o.Min.X >= r.Min.X && o.Max.X <= r.Max.X &&
		o.Min.Y >= r.Min.Y && o.Max.Y <= r.Max.Y
}

// Intersects reports whether r and o share at least one point (boundaries
// count).
func (r Rect) Intersects(o Rect) bool {
	return r.Min.X <= o.Max.X && o.Min.X <= r.Max.X &&
		r.Min.Y <= o.Max.Y && o.Min.Y <= r.Max.Y
}

// Intersection returns the overlap of r and o. The result is invalid
// (negative extent) when the rectangles do not intersect; callers should
// check IsValid.
func (r Rect) Intersection(o Rect) Rect {
	return Rect{
		Min: Point{math.Max(r.Min.X, o.Min.X), math.Max(r.Min.Y, o.Min.Y)},
		Max: Point{math.Min(r.Max.X, o.Max.X), math.Min(r.Max.Y, o.Max.Y)},
	}
}

// Union returns the minimal rectangle containing both r and o.
func (r Rect) Union(o Rect) Rect {
	return Rect{
		Min: Point{math.Min(r.Min.X, o.Min.X), math.Min(r.Min.Y, o.Min.Y)},
		Max: Point{math.Max(r.Max.X, o.Max.X), math.Max(r.Max.Y, o.Max.Y)},
	}
}

// ExtendPoint returns r grown to include p.
func (r Rect) ExtendPoint(p Point) Rect {
	return Rect{
		Min: Point{math.Min(r.Min.X, p.X), math.Min(r.Min.Y, p.Y)},
		Max: Point{math.Max(r.Max.X, p.X), math.Max(r.Max.Y, p.Y)},
	}
}

// Expanded returns r grown by margin on every side. Negative margins shrink
// the rectangle and may render it invalid.
func (r Rect) Expanded(margin float64) Rect {
	return Rect{
		Min: Point{r.Min.X - margin, r.Min.Y - margin},
		Max: Point{r.Max.X + margin, r.Max.Y + margin},
	}
}

// Polygon returns r as a four-vertex polygon.
func (r Rect) Polygon() *Polygon {
	v := r.Vertices()
	return NewPolygon(v[:])
}

// String implements fmt.Stringer.
func (r Rect) String() string {
	return fmt.Sprintf("[%v - %v]", r.Min, r.Max)
}

// orientation classifies the turn formed by a->b->c: positive for a left
// (counter-clockwise) turn, negative for a right turn, zero for collinear
// points.
func orientation(a, b, c Point) float64 {
	return b.Sub(a).Cross(c.Sub(a))
}

// onSegment reports whether point p lies on the closed segment ab, assuming
// p is already known to be collinear with a and b.
func onSegment(a, b, p Point) bool {
	return math.Min(a.X, b.X) <= p.X && p.X <= math.Max(a.X, b.X) &&
		math.Min(a.Y, b.Y) <= p.Y && p.Y <= math.Max(a.Y, b.Y)
}

// SegmentsIntersect reports whether the closed segments ab and cd share at
// least one point. Touching endpoints count as intersections.
func SegmentsIntersect(a, b, c, d Point) bool {
	d1 := orientation(c, d, a)
	d2 := orientation(c, d, b)
	d3 := orientation(a, b, c)
	d4 := orientation(a, b, d)

	if ((d1 > 0 && d2 < 0) || (d1 < 0 && d2 > 0)) &&
		((d3 > 0 && d4 < 0) || (d3 < 0 && d4 > 0)) {
		return true
	}
	if d1 == 0 && onSegment(c, d, a) {
		return true
	}
	if d2 == 0 && onSegment(c, d, b) {
		return true
	}
	if d3 == 0 && onSegment(a, b, c) {
		return true
	}
	if d4 == 0 && onSegment(a, b, d) {
		return true
	}
	return false
}

// SegmentIntersectsRect reports whether the closed segment ab intersects the
// closed rectangle r.
func SegmentIntersectsRect(a, b Point, r Rect) bool {
	if r.ContainsPoint(a) || r.ContainsPoint(b) {
		return true
	}
	// The segment can only cross the rectangle through one of its edges.
	v := r.Vertices()
	for i := 0; i < 4; i++ {
		if SegmentsIntersect(a, b, v[i], v[(i+1)%4]) {
			return true
		}
	}
	return false
}
