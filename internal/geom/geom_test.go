package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRectBasics(t *testing.T) {
	r := Rect{Min: Pt(0, 0), Max: Pt(4, 3)}
	if !r.IsValid() {
		t.Fatal("rect should be valid")
	}
	if r.Width() != 4 || r.Height() != 3 {
		t.Fatalf("extent = %gx%g", r.Width(), r.Height())
	}
	if r.Area() != 12 {
		t.Fatalf("area = %g", r.Area())
	}
	if r.Diagonal() != 5 {
		t.Fatalf("diagonal = %g", r.Diagonal())
	}
	if r.Center() != Pt(2, 1.5) {
		t.Fatalf("center = %v", r.Center())
	}
}

func TestRectContainsAndIntersects(t *testing.T) {
	r := Rect{Min: Pt(0, 0), Max: Pt(10, 10)}
	cases := []struct {
		p    Point
		want bool
	}{
		{Pt(5, 5), true},
		{Pt(0, 0), true},   // corner (closed rect)
		{Pt(10, 10), true}, // corner
		{Pt(10, 5), true},  // edge
		{Pt(-0.001, 5), false},
		{Pt(5, 10.001), false},
	}
	for _, c := range cases {
		if got := r.ContainsPoint(c.p); got != c.want {
			t.Errorf("ContainsPoint(%v) = %t, want %t", c.p, got, c.want)
		}
	}

	if !r.Intersects(Rect{Min: Pt(10, 10), Max: Pt(20, 20)}) {
		t.Error("touching rects must intersect (closed semantics)")
	}
	if r.Intersects(Rect{Min: Pt(10.5, 0), Max: Pt(20, 20)}) {
		t.Error("disjoint rects must not intersect")
	}
	if !r.ContainsRect(Rect{Min: Pt(1, 1), Max: Pt(9, 9)}) {
		t.Error("inner rect must be contained")
	}
	if r.ContainsRect(Rect{Min: Pt(1, 1), Max: Pt(11, 9)}) {
		t.Error("overlapping rect must not be contained")
	}
}

func TestRectIntersectionUnion(t *testing.T) {
	a := Rect{Min: Pt(0, 0), Max: Pt(4, 4)}
	b := Rect{Min: Pt(2, 2), Max: Pt(6, 6)}
	got := a.Intersection(b)
	if got != (Rect{Min: Pt(2, 2), Max: Pt(4, 4)}) {
		t.Fatalf("intersection = %v", got)
	}
	if u := a.Union(b); u != (Rect{Min: Pt(0, 0), Max: Pt(6, 6)}) {
		t.Fatalf("union = %v", u)
	}
	c := Rect{Min: Pt(5, 5), Max: Pt(7, 7)}
	if a.Intersection(c).IsValid() {
		t.Fatal("disjoint intersection must be invalid")
	}
}

func TestSegmentsIntersect(t *testing.T) {
	cases := []struct {
		a, b, c, d Point
		want       bool
	}{
		{Pt(0, 0), Pt(4, 4), Pt(0, 4), Pt(4, 0), true},  // X crossing
		{Pt(0, 0), Pt(4, 0), Pt(2, 0), Pt(6, 0), true},  // collinear overlap
		{Pt(0, 0), Pt(4, 0), Pt(4, 0), Pt(8, 0), true},  // touch at endpoint
		{Pt(0, 0), Pt(4, 0), Pt(5, 0), Pt(8, 0), false}, // collinear disjoint
		{Pt(0, 0), Pt(1, 1), Pt(2, 2), Pt(3, 3), false}, // collinear disjoint diag
		{Pt(0, 0), Pt(1, 0), Pt(0, 1), Pt(1, 1), false}, // parallel
		{Pt(0, 0), Pt(2, 2), Pt(1, 1), Pt(3, 0), true},  // T junction
		{Pt(0, 0), Pt(0, 4), Pt(-1, 2), Pt(1, 2), true}, // vertical crossed
		{Pt(0, 0), Pt(0, 4), Pt(0.1, 2), Pt(1, 2), false},
	}
	for _, c := range cases {
		if got := SegmentsIntersect(c.a, c.b, c.c, c.d); got != c.want {
			t.Errorf("SegmentsIntersect(%v,%v,%v,%v) = %t, want %t", c.a, c.b, c.c, c.d, got, c.want)
		}
		// Symmetry.
		if got := SegmentsIntersect(c.c, c.d, c.a, c.b); got != c.want {
			t.Errorf("SegmentsIntersect symmetric (%v,%v,%v,%v) = %t, want %t", c.c, c.d, c.a, c.b, got, c.want)
		}
	}
}

func TestPolygonNormalization(t *testing.T) {
	// Clockwise input must be reversed to CCW.
	cw := []Point{Pt(0, 0), Pt(0, 4), Pt(4, 4), Pt(4, 0)}
	p := NewPolygon(cw)
	if signedArea(p.Outer()) <= 0 {
		t.Fatal("outer ring must be CCW after normalisation")
	}
	if p.Area() != 16 {
		t.Fatalf("area = %g, want 16", p.Area())
	}
	// Closing vertex is stripped.
	closed := []Point{Pt(0, 0), Pt(4, 0), Pt(4, 4), Pt(0, 4), Pt(0, 0)}
	if got := len(NewPolygon(closed).Outer()); got != 4 {
		t.Fatalf("closed ring vertex count = %d, want 4", got)
	}
}

func TestTryPolygonRejectsDegenerate(t *testing.T) {
	if _, err := TryPolygon([]Point{Pt(0, 0), Pt(1, 1)}); err == nil {
		t.Fatal("2-vertex ring accepted")
	}
	if _, err := TryPolygon([]Point{Pt(0, 0), Pt(1, 1), Pt(2, 2)}); err == nil {
		t.Fatal("collinear ring accepted")
	}
	if _, err := TryPolygon([]Point{Pt(0, 0), Pt(1, 0), Pt(0, 1)}); err != nil {
		t.Fatalf("valid triangle rejected: %v", err)
	}
}

func TestPolygonContainsPoint(t *testing.T) {
	// Concave "L" polygon.
	l := NewPolygon([]Point{
		Pt(0, 0), Pt(4, 0), Pt(4, 2), Pt(2, 2), Pt(2, 4), Pt(0, 4),
	})
	cases := []struct {
		p    Point
		want bool
	}{
		{Pt(1, 1), true},
		{Pt(3, 1), true},
		{Pt(1, 3), true},
		{Pt(3, 3), false}, // in the notch
		{Pt(2, 2), true},  // reflex corner is on boundary
		{Pt(0, 0), true},  // corner
		{Pt(2, 0), true},  // on edge
		{Pt(5, 1), false},
		{Pt(-1, -1), false},
	}
	for _, c := range cases {
		if got := l.ContainsPoint(c.p); got != c.want {
			t.Errorf("ContainsPoint(%v) = %t, want %t", c.p, got, c.want)
		}
	}
}

func TestPolygonWithHole(t *testing.T) {
	p := NewPolygon([]Point{Pt(0, 0), Pt(10, 0), Pt(10, 10), Pt(0, 10)})
	if err := p.AddHole([]Point{Pt(4, 4), Pt(6, 4), Pt(6, 6), Pt(4, 6)}); err != nil {
		t.Fatal(err)
	}
	if p.Area() != 100-4 {
		t.Fatalf("area with hole = %g, want 96", p.Area())
	}
	if p.ContainsPoint(Pt(5, 5)) {
		t.Error("point in hole must not be contained")
	}
	if !p.ContainsPoint(Pt(2, 2)) {
		t.Error("point outside hole must be contained")
	}
	if !p.ContainsPoint(Pt(4, 5)) {
		t.Error("point on hole boundary counts as contained (boundary)")
	}
	if p.ContainsRect(Rect{Min: Pt(3, 3), Max: Pt(7, 7)}) {
		t.Error("rect overlapping hole must not be contained")
	}
	if !p.ContainsRect(Rect{Min: Pt(1, 1), Max: Pt(3, 3)}) {
		t.Error("rect clear of hole must be contained")
	}
	if !p.IntersectsRect(Rect{Min: Pt(4.5, 4.5), Max: Pt(5.5, 5.5)}) == false {
		// Rect fully inside the hole: intersects the polygon? The polygon
		// interior excludes the hole, so no.
		t.Error("rect fully inside hole must not intersect polygon")
	}
}

func TestPolygonIntersectsRect(t *testing.T) {
	tri := NewPolygon([]Point{Pt(0, 0), Pt(8, 0), Pt(4, 8)})
	cases := []struct {
		r    Rect
		want bool
	}{
		{Rect{Min: Pt(3, 1), Max: Pt(5, 2)}, true},     // fully inside
		{Rect{Min: Pt(-2, -2), Max: Pt(10, 10)}, true}, // contains polygon
		{Rect{Min: Pt(-2, 3), Max: Pt(2, 5)}, true},    // crosses left edge
		{Rect{Min: Pt(9, 9), Max: Pt(12, 12)}, false},  // disjoint
		{Rect{Min: Pt(-4, -4), Max: Pt(-1, -1)}, false},
		{Rect{Min: Pt(0, 7), Max: Pt(1, 8)}, false}, // near apex but outside
		{Rect{Min: Pt(8, 0), Max: Pt(9, 1)}, true},  // touches vertex
	}
	for _, c := range cases {
		if got := tri.IntersectsRect(c.r); got != c.want {
			t.Errorf("IntersectsRect(%v) = %t, want %t", c.r, got, c.want)
		}
	}
}

func TestPolygonContainsRect(t *testing.T) {
	tri := NewPolygon([]Point{Pt(0, 0), Pt(8, 0), Pt(4, 8)})
	if !tri.ContainsRect(Rect{Min: Pt(3, 1), Max: Pt(5, 2)}) {
		t.Error("inner rect must be contained")
	}
	if tri.ContainsRect(Rect{Min: Pt(0, 0), Max: Pt(8, 8)}) {
		t.Error("bbox of triangle must not be contained")
	}
	if tri.ContainsRect(Rect{Min: Pt(-1, 1), Max: Pt(2, 2)}) {
		t.Error("rect crossing the boundary must not be contained")
	}
}

func TestCentroid(t *testing.T) {
	sq := NewPolygon([]Point{Pt(0, 0), Pt(2, 0), Pt(2, 2), Pt(0, 2)})
	if c := sq.Centroid(); math.Abs(c.X-1) > 1e-12 || math.Abs(c.Y-1) > 1e-12 {
		t.Fatalf("centroid = %v, want (1,1)", c)
	}
}

func TestInteriorRect(t *testing.T) {
	// For a square the interior rect should recover nearly the full square.
	sq := NewPolygon([]Point{Pt(0, 0), Pt(10, 0), Pt(10, 10), Pt(0, 10)})
	r := sq.InteriorRect(32)
	if !r.IsValid() {
		t.Fatal("interior rect of square invalid")
	}
	if r.Area() < 0.8*100 {
		t.Fatalf("interior rect area = %g, want >= 80", r.Area())
	}
	if !sq.ContainsRect(r) {
		t.Fatal("interior rect must be contained in the polygon")
	}

	// For a triangle the interior rect is a strict subset.
	tri := NewPolygon([]Point{Pt(0, 0), Pt(8, 0), Pt(4, 8)})
	rt := tri.InteriorRect(32)
	if !rt.IsValid() {
		t.Fatal("interior rect of triangle invalid")
	}
	if !tri.ContainsRect(rt) {
		t.Fatal("triangle interior rect must be contained")
	}
	// Max inscribed axis-aligned rect in this triangle has area 16 (w=4,h=4
	// is optimal at area 16); grid approximation should reach >= 60% of it.
	if rt.Area() < 9 {
		t.Fatalf("triangle interior rect area = %g, too small", rt.Area())
	}
}

func TestRegularPolygon(t *testing.T) {
	c := RegularPolygon(Pt(5, 5), 2, 32)
	if got := len(c.Outer()); got != 32 {
		t.Fatalf("vertices = %d", got)
	}
	// Area approaches pi*r^2.
	if a := c.Area(); math.Abs(a-math.Pi*4) > 0.2 {
		t.Fatalf("area = %g, want ~%g", a, math.Pi*4)
	}
	if !c.ContainsPoint(Pt(5, 5)) {
		t.Fatal("centre must be contained")
	}
}

// Property: ContainsRect(r) implies every sampled point of r passes
// ContainsPoint, and IntersectsRect is implied by any contained sample.
func TestQuickRectPolygonPredicatesConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	poly := NewPolygon([]Point{Pt(0, 0), Pt(10, 1), Pt(12, 7), Pt(6, 11), Pt(-1, 6)})
	f := func(x0, y0, w, h uint16) bool {
		r := Rect{
			Min: Pt(float64(x0)/4096-2, float64(y0)/4096-2),
			Max: Pt(float64(x0)/4096-2+float64(w)/2048, float64(y0)/4096-2+float64(h)/2048),
		}
		contains := poly.ContainsRect(r)
		intersects := poly.IntersectsRect(r)
		if contains && !intersects {
			return false
		}
		// Sample points inside r.
		anyIn := false
		for k := 0; k < 16; k++ {
			p := Pt(
				r.Min.X+rng.Float64()*r.Width(),
				r.Min.Y+rng.Float64()*r.Height(),
			)
			in := poly.ContainsPoint(p)
			if contains && !in {
				return false
			}
			if in {
				anyIn = true
			}
		}
		if anyIn && !intersects {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: point containment is invariant under translation of both the
// polygon and the point.
func TestQuickTranslationInvariance(t *testing.T) {
	base := []Point{Pt(0, 0), Pt(4, 0), Pt(4, 2), Pt(2, 2), Pt(2, 4), Pt(0, 4)}
	poly := NewPolygon(base)
	f := func(px, py int16, dx, dy int8) bool {
		p := Pt(float64(px)/4096*8, float64(py)/4096*8)
		d := Pt(float64(dx), float64(dy))
		moved := make([]Point, len(base))
		for i, v := range base {
			moved[i] = v.Add(d)
		}
		mp := NewPolygon(moved)
		return poly.ContainsPoint(p) == mp.ContainsPoint(p.Add(d))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestRectFromPoints(t *testing.T) {
	if r := RectFromPoints(); r.IsValid() && r.Area() != 0 {
		t.Fatal("empty point set must give degenerate rect")
	}
	r := RectFromPoints(Pt(3, 1), Pt(-1, 5), Pt(2, 2))
	want := Rect{Min: Pt(-1, 1), Max: Pt(3, 5)}
	if r != want {
		t.Fatalf("bbox = %v, want %v", r, want)
	}
}

func TestSegmentIntersectsRect(t *testing.T) {
	r := Rect{Min: Pt(0, 0), Max: Pt(4, 4)}
	cases := []struct {
		a, b Point
		want bool
	}{
		{Pt(1, 1), Pt(2, 2), true},  // fully inside
		{Pt(-2, 2), Pt(6, 2), true}, // crossing through
		{Pt(-2, -2), Pt(-1, 5), false},
		{Pt(0, 5), Pt(5, 0), true},  // cuts corner region
		{Pt(4, 4), Pt(8, 8), true},  // touches corner
		{Pt(5, 0), Pt(5, 4), false}, // parallel outside
	}
	for _, c := range cases {
		if got := SegmentIntersectsRect(c.a, c.b, r); got != c.want {
			t.Errorf("SegmentIntersectsRect(%v,%v) = %t, want %t", c.a, c.b, got, c.want)
		}
	}
}

// Property: ClassifyRect is exactly the (IntersectsRect, ContainsRect)
// pair fused into one pass — RectDisjoint iff not intersecting,
// RectContains iff contained. The region coverer's bit-identity contract
// rests on this equivalence, so it is pinned across convex, concave and
// holed polygons at rect scales from sliver to engulfing.
func TestQuickClassifyRectMatchesPredicates(t *testing.T) {
	convex := NewPolygon([]Point{Pt(0, 0), Pt(10, 1), Pt(12, 7), Pt(6, 11), Pt(-1, 6)})
	concave := NewPolygon([]Point{Pt(0, 0), Pt(12, 0), Pt(12, 10), Pt(6, 3), Pt(0, 10)})
	holed := NewPolygon([]Point{Pt(0, 0), Pt(12, 0), Pt(12, 12), Pt(0, 12)})
	if err := holed.AddHole([]Point{Pt(4, 4), Pt(8, 4), Pt(8, 8), Pt(4, 8)}); err != nil {
		t.Fatal(err)
	}
	polys := []*Polygon{convex, concave, holed}
	f := func(x0, y0, w, h uint16, which uint8) bool {
		poly := polys[int(which)%len(polys)]
		r := Rect{
			Min: Pt(float64(x0)/4096-2, float64(y0)/4096-2),
			Max: Pt(float64(x0)/4096-2+float64(w)/1024, float64(y0)/4096-2+float64(h)/1024),
		}
		want := RectIntersects
		switch {
		case poly.ContainsRect(r):
			want = RectContains
		case !poly.IntersectsRect(r):
			want = RectDisjoint
		}
		return poly.ClassifyRect(r) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 4000}); err != nil {
		t.Fatal(err)
	}
}

// ClassifyRect on hand-picked relations, including grid-aligned cells of
// the kind the coverer feeds it.
func TestClassifyRectCases(t *testing.T) {
	poly := NewPolygon([]Point{Pt(0, 0), Pt(10, 0), Pt(10, 10), Pt(0, 10)})
	cases := []struct {
		r    Rect
		want RectRelation
	}{
		{Rect{Min: Pt(2, 2), Max: Pt(4, 4)}, RectContains},
		// Exact overlay: ContainsRect conservatively rejects rects the
		// ring edges touch, and ClassifyRect must agree.
		{Rect{Min: Pt(0, 0), Max: Pt(10, 10)}, RectIntersects},
		{Rect{Min: Pt(-2, -2), Max: Pt(12, 12)}, RectIntersects},
		{Rect{Min: Pt(8, 8), Max: Pt(12, 12)}, RectIntersects},
		{Rect{Min: Pt(11, 11), Max: Pt(12, 12)}, RectDisjoint},
		{Rect{Min: Pt(10, 10), Max: Pt(12, 12)}, RectIntersects}, // corner touch
	}
	for i, c := range cases {
		if got := poly.ClassifyRect(c.r); got != c.want {
			t.Errorf("case %d: ClassifyRect(%v) = %d, want %d", i, c.r, got, c.want)
		}
	}
}
