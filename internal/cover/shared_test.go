package cover

import (
	"math"
	"math/rand"
	"testing"

	"geoblocks/internal/geom"
)

// randStar returns an irregular star-shaped polygon: n vertices at random
// radii around center. Exercises concave outlines, boundary cells at every
// level, and (for large radii) interior grid cells.
func randStar(rng *rand.Rand, center geom.Point, rmin, rmax float64, n int) *geom.Polygon {
	pts := make([]geom.Point, n)
	for i := range pts {
		ang := 2 * math.Pi * float64(i) / float64(n)
		r := rmin + rng.Float64()*(rmax-rmin)
		pts[i] = geom.Pt(center.X+r*math.Cos(ang), center.Y+r*math.Sin(ang))
	}
	return geom.NewPolygon(pts)
}

func assertSameCovering(t *testing.T, label string, got, want *Covering) {
	t.Helper()
	if len(got.Cells) != len(want.Cells) {
		t.Fatalf("%s: %d cells, Cover has %d", label, len(got.Cells), len(want.Cells))
	}
	for j := range want.Cells {
		if got.Cells[j] != want.Cells[j] {
			t.Fatalf("%s: cell %d = %v, Cover has %v", label, j, got.Cells[j], want.Cells[j])
		}
		if got.Interior[j] != want.Interior[j] {
			t.Fatalf("%s: cell %d interior = %v, Cover has %v", label, j, got.Interior[j], want.Interior[j])
		}
	}
}

// TestCoverSharedMatchesCover is the core identity property the join
// rests on: for every region, the shared-grid covering is cell-for-cell
// (and flag-for-flag) identical to the single-region Cover, across
// region counts, shapes, sizes and block levels.
func TestCoverSharedMatchesCover(t *testing.T) {
	dom := testDomain()
	rng := rand.New(rand.NewSource(7))
	for _, maxLevel := range []int{8, 11, 13} {
		c := MustCoverer(dom, DefaultOptions(maxLevel))
		for _, n := range []int{1, 3, 40} {
			regions := make([]Region, n)
			for i := range regions {
				center := geom.Pt(5+rng.Float64()*90, 5+rng.Float64()*90)
				radius := 0.5 + rng.Float64()*20
				switch i % 3 {
				case 0:
					regions[i] = randStar(rng, center, radius/2, radius, 5+rng.Intn(8))
				case 1:
					regions[i] = RectRegion(geom.RectFromCenter(center, radius, radius/2))
				default:
					regions[i] = geom.RegularPolygon(center, radius, 3+rng.Intn(6))
				}
			}
			sc := c.CoverShared(regions)
			if len(sc.Covers) != n || len(sc.Bounds) != n {
				t.Fatalf("level %d n=%d: %d covers, %d bounds", maxLevel, n, len(sc.Covers), len(sc.Bounds))
			}
			for i, rg := range regions {
				want := c.Cover(rg)
				assertSameCovering(t, "region", sc.Covers[i], want)
				if sc.Bounds[i] != c.GuaranteedErrorDistance(want) {
					t.Fatalf("level %d region %d: bound %v, Cover bound %v",
						maxLevel, i, sc.Bounds[i], c.GuaranteedErrorDistance(want))
				}
			}
		}
	}
}

// TestCoverSharedTessellation pins the join's primary workload shape:
// adjacent rectangles sharing edges (census tracts / map tiles). Shared
// edges are the adversarial case for closed-rectangle predicates — a
// cell touching a region only along a grid line must appear in the
// shared covering exactly when Cover emits it.
func TestCoverSharedTessellation(t *testing.T) {
	dom := testDomain()
	c := MustCoverer(dom, DefaultOptions(7))
	var regions []Region
	const nx, ny = 8, 6
	for iy := 0; iy < ny; iy++ {
		for ix := 0; ix < nx; ix++ {
			r := geom.Rect{
				Min: geom.Pt(float64(ix)*100/nx, float64(iy)*100/ny),
				Max: geom.Pt(float64(ix+1)*100/nx, float64(iy+1)*100/ny),
			}
			regions = append(regions, r.Polygon())
		}
	}
	sc := c.CoverShared(regions)
	if sc.Fallbacks != 0 {
		t.Fatalf("tessellation fell back %d times", sc.Fallbacks)
	}
	if sc.InteriorPairs == 0 {
		t.Fatal("tessellation produced no interior pairs — grid level too coarse")
	}
	if len(sc.GridCells) == 0 {
		t.Fatal("no grid cells recorded")
	}
	for i, rg := range regions {
		assertSameCovering(t, "tile", sc.Covers[i], c.Cover(rg))
	}
}

// TestCoverSharedTinyBudget drives the MaxCells fallback: with a small
// budget the shared walk must hand oversized regions to Cover (whose
// truncation shape it does not reproduce) and still return exactly
// Cover's output for every region.
func TestCoverSharedTinyBudget(t *testing.T) {
	dom := testDomain()
	rng := rand.New(rand.NewSource(11))
	c := MustCoverer(dom, Options{MaxLevel: 13, MaxCells: 32})
	regions := make([]Region, 12)
	for i := range regions {
		center := geom.Pt(10+rng.Float64()*80, 10+rng.Float64()*80)
		regions[i] = randStar(rng, center, 5, 25, 7)
	}
	sc := c.CoverShared(regions)
	if sc.Fallbacks == 0 {
		t.Fatal("expected fallbacks under a 32-cell budget")
	}
	for i, rg := range regions {
		assertSameCovering(t, "region", sc.Covers[i], c.Cover(rg))
	}
}

// TestCoverSharedEmptyAndOutside covers the degenerate ends: no regions,
// and regions outside the domain.
func TestCoverSharedEmptyAndOutside(t *testing.T) {
	c := MustCoverer(testDomain(), DefaultOptions(10))
	sc := c.CoverShared(nil)
	if len(sc.Covers) != 0 || sc.InteriorPairs != 0 || sc.BoundaryPairs != 0 {
		t.Fatalf("non-trivial shared covering of no regions: %+v", sc)
	}
	outside := geom.RegularPolygon(geom.Pt(500, 500), 10, 6)
	inside := geom.RegularPolygon(geom.Pt(50, 50), 10, 6)
	sc = c.CoverShared([]Region{outside, inside})
	if len(sc.Covers[0].Cells) != 0 {
		t.Fatalf("out-of-domain region got %d cells", len(sc.Covers[0].Cells))
	}
	if sc.Bounds[0] != 0 {
		t.Fatalf("out-of-domain region bound %v, want 0", sc.Bounds[0])
	}
	assertSameCovering(t, "inside", sc.Covers[1], c.Cover(inside))
}

// TestCoverSharedMinLevelFallsBack: MinLevel-constrained coverers take
// Cover's seeded path wholesale; the shared result must still be
// identical.
func TestCoverSharedMinLevelFallsBack(t *testing.T) {
	c := MustCoverer(testDomain(), Options{MinLevel: 4, MaxLevel: 10, MaxCells: 2048})
	regions := []Region{
		geom.RegularPolygon(geom.Pt(30, 40), 12, 7),
		RectRegion(geom.RectFromCenter(geom.Pt(70, 60), 9, 5)),
	}
	sc := c.CoverShared(regions)
	if sc.Fallbacks != len(regions) {
		t.Fatalf("MinLevel>0: %d fallbacks, want %d", sc.Fallbacks, len(regions))
	}
	for i, rg := range regions {
		assertSameCovering(t, "region", sc.Covers[i], c.Cover(rg))
	}
}

// TestGuaranteedErrorBoundAfterTruncation pins the bound's
// post-truncation semantics: when the MaxCells budget exhausts and
// Cover emits unrefined boundary cells, GuaranteedErrorDistance must
// reflect the covering actually returned (the coarse leftover cells),
// not the MaxLevel refinement the budget precluded.
func TestGuaranteedErrorBoundAfterTruncation(t *testing.T) {
	dom := testDomain()
	poly := testPolygon()
	const maxLevel = 14
	full := MustCoverer(dom, Options{MaxLevel: maxLevel, MaxCells: 1 << 20})
	fullBound := full.GuaranteedErrorDistance(full.Cover(poly))
	if fullBound != dom.CellDiagonal(maxLevel) {
		t.Fatalf("untruncated bound %v, want one max-level diagonal %v", fullBound, dom.CellDiagonal(maxLevel))
	}
	trunc := MustCoverer(dom, Options{MaxLevel: maxLevel, MaxCells: 24})
	cov := trunc.Cover(poly)
	bound := trunc.GuaranteedErrorDistance(cov)
	// Recompute from the covering as returned: the bound must be the
	// diagonal of its coarsest boundary cell.
	coarsest := -1
	for i, id := range cov.Cells {
		if cov.Interior[i] {
			continue
		}
		if l := id.Level(); coarsest < 0 || l < coarsest {
			coarsest = l
		}
	}
	if coarsest < 0 {
		t.Fatal("truncated covering has no boundary cells")
	}
	if coarsest >= maxLevel {
		t.Fatal("24-cell budget did not truncate refinement")
	}
	if bound != dom.CellDiagonal(coarsest) {
		t.Fatalf("truncated bound %v, want post-truncation diagonal %v", bound, dom.CellDiagonal(coarsest))
	}
	if bound <= fullBound {
		t.Fatalf("truncated bound %v not coarser than untruncated %v", bound, fullBound)
	}
}
