package cover

import (
	"math/rand"
	"testing"

	"geoblocks/internal/cellid"
	"geoblocks/internal/geom"
)

func testDomain() cellid.Domain {
	return cellid.MustDomain(geom.Rect{Min: geom.Pt(0, 0), Max: geom.Pt(100, 100)})
}

func testPolygon() *geom.Polygon {
	// An irregular convex pentagon around the domain centre.
	return geom.NewPolygon([]geom.Point{
		geom.Pt(20, 30), geom.Pt(60, 15), geom.Pt(85, 50), geom.Pt(55, 85), geom.Pt(25, 70),
	})
}

func TestCoveringContainsPolygonPoints(t *testing.T) {
	dom := testDomain()
	poly := testPolygon()
	cov := MustCoverer(dom, DefaultOptions(12)).Cover(poly)
	if cov.Len() == 0 {
		t.Fatal("empty covering")
	}
	// Every sampled interior point must fall in some covering cell.
	rng := rand.New(rand.NewSource(42))
	bb := poly.Bound()
	checked := 0
	for checked < 2000 {
		p := geom.Pt(bb.Min.X+rng.Float64()*bb.Width(), bb.Min.Y+rng.Float64()*bb.Height())
		if !poly.ContainsPoint(p) {
			continue
		}
		checked++
		leaf := dom.FromPoint(p)
		found := false
		for _, id := range cov.Cells {
			if id.Contains(leaf) {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("interior point %v not covered", p)
		}
	}
}

func TestCoveringCellsDisjointAndSorted(t *testing.T) {
	cov := MustCoverer(testDomain(), DefaultOptions(12)).Cover(testPolygon())
	for i := 1; i < cov.Len(); i++ {
		if cov.Cells[i-1] >= cov.Cells[i] {
			t.Fatalf("cells not strictly ascending at %d", i)
		}
		if cov.Cells[i-1].RangeMax() >= cov.Cells[i].RangeMin() {
			t.Fatalf("cells %v and %v overlap", cov.Cells[i-1], cov.Cells[i])
		}
	}
}

func TestCoveringRespectsLevelBounds(t *testing.T) {
	opts := Options{MinLevel: 4, MaxLevel: 9, MaxCells: 500}
	cov := MustCoverer(testDomain(), opts).Cover(testPolygon())
	for i, id := range cov.Cells {
		if l := id.Level(); l < opts.MinLevel || l > opts.MaxLevel {
			t.Fatalf("cell %d level %d outside [%d,%d]", i, l, opts.MinLevel, opts.MaxLevel)
		}
	}
}

func TestCoveringRespectsMaxCells(t *testing.T) {
	for _, maxCells := range []int{4, 16, 64, 256} {
		opts := Options{MaxLevel: 14, MaxCells: maxCells}
		cov := MustCoverer(testDomain(), opts).Cover(testPolygon())
		if cov.Len() > maxCells {
			t.Fatalf("maxCells=%d: covering has %d cells", maxCells, cov.Len())
		}
	}
}

func TestInteriorFlagsAreCorrect(t *testing.T) {
	dom := testDomain()
	poly := testPolygon()
	cov := MustCoverer(dom, DefaultOptions(10)).Cover(poly)
	interiorCount := 0
	for i, id := range cov.Cells {
		rect := dom.CellRect(id)
		if cov.Interior[i] {
			interiorCount++
			if !poly.ContainsRect(rect) {
				t.Fatalf("cell %v flagged interior but not contained", id)
			}
		}
		if !poly.IntersectsRect(rect) {
			t.Fatalf("cell %v in covering but does not intersect polygon", id)
		}
	}
	if interiorCount == 0 {
		t.Fatal("covering of a large polygon should contain interior cells")
	}
}

func TestFinerCoveringReducesAreaError(t *testing.T) {
	dom := testDomain()
	poly := testPolygon()
	var prev float64 = -1
	for _, lvl := range []int{6, 8, 10, 12} {
		c := MustCoverer(dom, Options{MaxLevel: lvl, MaxCells: 100000})
		cov := c.Cover(poly)
		errFrac := c.AreaError(poly, cov)
		if errFrac < 0 {
			t.Fatalf("level %d: negative area error %g (covering smaller than polygon)", lvl, errFrac)
		}
		if prev >= 0 && errFrac > prev {
			t.Fatalf("level %d: area error %g did not shrink from %g", lvl, errFrac, prev)
		}
		prev = errFrac
	}
	if prev > 0.05 {
		t.Fatalf("finest covering error %g too large", prev)
	}
}

func TestMaxErrorDistanceMatchesLevel(t *testing.T) {
	dom := testDomain()
	c := MustCoverer(dom, Options{MaxLevel: 9, MaxCells: 100000})
	cov := c.Cover(testPolygon())
	if got, want := c.MaxErrorDistance(cov), dom.CellDiagonal(9); got != want {
		t.Fatalf("max error = %g, want cell diagonal %g", got, want)
	}
}

func TestFixedLevelCoverMatchesConstrainedCover(t *testing.T) {
	dom := testDomain()
	poly := testPolygon()
	level := 8
	fixed := MustCoverer(dom, DefaultOptions(level)).FixedLevelCover(poly, level)

	opts := Options{MinLevel: level, MaxLevel: level, MaxCells: 1 << 20}
	cov := MustCoverer(dom, opts).Cover(poly)

	if len(fixed) != cov.Len() {
		t.Fatalf("fixed-level cover %d cells, constrained cover %d", len(fixed), cov.Len())
	}
	for i := range fixed {
		if fixed[i] != cov.Cells[i] {
			t.Fatalf("cell %d differs: %v vs %v", i, fixed[i], cov.Cells[i])
		}
	}
}

func TestCoverRectEquivalentToRectPolygon(t *testing.T) {
	dom := testDomain()
	r := geom.Rect{Min: geom.Pt(22, 31), Max: geom.Pt(57, 66)}
	c := MustCoverer(dom, DefaultOptions(10))
	covRect := c.CoverRect(r)
	covPoly := c.Cover(r.Polygon())
	if covRect.Len() != covPoly.Len() {
		t.Fatalf("rect cover %d cells, polygon cover %d", covRect.Len(), covPoly.Len())
	}
	for i := range covRect.Cells {
		if covRect.Cells[i] != covPoly.Cells[i] {
			t.Fatalf("cell %d differs", i)
		}
	}
}

func TestCoverOutsideDomainIsEmpty(t *testing.T) {
	dom := testDomain()
	poly := geom.NewPolygon([]geom.Point{
		geom.Pt(200, 200), geom.Pt(210, 200), geom.Pt(205, 210),
	})
	cov := MustCoverer(dom, DefaultOptions(10)).Cover(poly)
	if cov.Len() != 0 {
		t.Fatalf("covering outside domain has %d cells", cov.Len())
	}
}

func TestSmallPolygonGetsCovered(t *testing.T) {
	dom := testDomain()
	// A polygon much smaller than a max-level cell must still be covered.
	tiny := geom.RegularPolygon(geom.Pt(50.0001, 50.0001), 1e-6, 8)
	cov := MustCoverer(dom, DefaultOptions(8)).Cover(tiny)
	if cov.Len() == 0 {
		t.Fatal("tiny polygon got empty covering")
	}
	leaf := dom.FromPoint(geom.Pt(50.0001, 50.0001))
	found := false
	for _, id := range cov.Cells {
		if id.Contains(leaf) {
			found = true
		}
	}
	if !found {
		t.Fatal("tiny polygon centre not covered")
	}
}

func TestOptionsValidation(t *testing.T) {
	dom := testDomain()
	if _, err := NewCoverer(dom, Options{MaxLevel: -1, MaxCells: 8}); err == nil {
		t.Error("negative MaxLevel accepted")
	}
	if _, err := NewCoverer(dom, Options{MaxLevel: 5, MinLevel: 6, MaxCells: 8}); err == nil {
		t.Error("MinLevel > MaxLevel accepted")
	}
	if _, err := NewCoverer(dom, Options{MaxLevel: 5, MaxCells: 0}); err == nil {
		t.Error("zero MaxCells accepted")
	}
	if _, err := NewCoverer(cellid.Domain{}, DefaultOptions(5)); err == nil {
		t.Error("zero domain accepted")
	}
}

func TestConcavePolygonCovering(t *testing.T) {
	dom := testDomain()
	// U-shaped polygon; the covering must not include the middle gap's
	// interior cells at fine levels.
	u := geom.NewPolygon([]geom.Point{
		geom.Pt(10, 10), geom.Pt(90, 10), geom.Pt(90, 90), geom.Pt(70, 90),
		geom.Pt(70, 30), geom.Pt(30, 30), geom.Pt(30, 90), geom.Pt(10, 90),
	})
	c := MustCoverer(dom, Options{MaxLevel: 10, MaxCells: 100000})
	cov := c.Cover(u)
	gap := dom.FromPoint(geom.Pt(50, 60)) // inside the U's notch
	for _, id := range cov.Cells {
		if id.Contains(gap) && cov.Interior[indexOf(cov.Cells, id)] {
			t.Fatalf("interior cell %v covers the notch", id)
		}
	}
	// The notch centre may only be covered by a boundary cell whose rect
	// still intersects the polygon.
	for i, id := range cov.Cells {
		if id.Contains(gap) && cov.Interior[i] {
			t.Fatalf("notch covered by interior cell %v", id)
		}
	}
}

func indexOf(cells []cellid.ID, id cellid.ID) int {
	for i, c := range cells {
		if c == id {
			return i
		}
	}
	return -1
}
