// Package cover computes cell coverings of query polygons (paper Sec. 3.1
// and 3.2): error-bounded approximations of a polygon by a set of cells,
// possibly at mixed levels. The covering is the only source of approximation
// error in GeoBlocks; every cell that intersects the polygon outline even
// minimally is included, so the covering can only add false positives, and
// every covering point lies within one cell diagonal of the polygon outline.
//
// The algorithm mirrors S2's RegionCoverer: a best-first refinement that
// starts from the smallest ancestor cell enclosing the polygon's bounding
// box, keeps cells fully contained in the polygon, and subdivides boundary
// cells until the maximum level or the cell budget is reached.
package cover

import (
	"cmp"
	"container/heap"
	"fmt"
	"slices"

	"geoblocks/internal/cellid"
	"geoblocks/internal/geom"
)

// Region is the geometric interface the coverer consumes. Both
// *geom.Polygon and rectRegion satisfy it.
type Region interface {
	// Bound returns the region's bounding rectangle.
	Bound() geom.Rect
	// IntersectsRect reports whether the region intersects r.
	IntersectsRect(r geom.Rect) bool
	// ContainsRect reports whether the region fully contains r.
	ContainsRect(r geom.Rect) bool
}

// RectClassifier is an optional Region refinement: a single call that
// returns the full disjoint/intersects/contains relation. Regions that
// implement it (geom.Polygon does) pay one geometry pass per cell instead
// of the IntersectsRect + ContainsRect pair; the result must be exactly
// equivalent to the pair, which is what keeps coverings byte-identical
// whichever path classified them.
type RectClassifier interface {
	ClassifyRect(r geom.Rect) geom.RectRelation
}

// classifyRect classifies rect against region through the fused fast path
// when available, falling back to the two-predicate protocol.
func classifyRect(region Region, rect geom.Rect) geom.RectRelation {
	if rc, ok := region.(RectClassifier); ok {
		return rc.ClassifyRect(rect)
	}
	if !region.IntersectsRect(rect) {
		return geom.RectDisjoint
	}
	if region.ContainsRect(rect) {
		return geom.RectContains
	}
	return geom.RectIntersects
}

// rectRegion adapts geom.Rect to Region so rectangular queries (paper
// Fig. 15) reuse the same covering machinery — "rectangles are just
// constrained polygons".
type rectRegion struct{ r geom.Rect }

func (rr rectRegion) Bound() geom.Rect                { return rr.r }
func (rr rectRegion) IntersectsRect(o geom.Rect) bool { return rr.r.Intersects(o) }
func (rr rectRegion) ContainsRect(o geom.Rect) bool   { return rr.r.ContainsRect(o) }
func (rr rectRegion) ClassifyRect(o geom.Rect) geom.RectRelation {
	if rr.r.ContainsRect(o) {
		return geom.RectContains
	}
	if rr.r.Intersects(o) {
		return geom.RectIntersects
	}
	return geom.RectDisjoint
}

// RectRegion wraps a rectangle as a coverable region.
func RectRegion(r geom.Rect) Region { return rectRegion{r} }

// Options configure the coverer. The zero value is not usable; call
// DefaultOptions and adjust.
type Options struct {
	// MaxLevel bounds the finest cells used. For GeoBlocks queries this is
	// the block level: coverings must not contain cells smaller than the
	// grid cells (paper Sec. 3.5).
	MaxLevel int
	// MinLevel bounds the coarsest cells used. Zero allows the root.
	MinLevel int
	// MaxCells soft-bounds the covering size. Once the budget is
	// exhausted, remaining boundary cells are emitted unrefined. More
	// cells means a tighter approximation but a more expensive query.
	MaxCells int
}

// DefaultOptions returns the coverer configuration used throughout the
// benchmarks: mixed-level coverings of at most 2048 cells down to the
// given block level. The budget is generous enough that typical query
// polygons refine their whole boundary to the block level; tighter budgets
// trade approximation error for covering (and query) cost.
func DefaultOptions(maxLevel int) Options {
	return Options{MaxLevel: maxLevel, MinLevel: 0, MaxCells: 2048}
}

func (o Options) validate() error {
	if o.MaxLevel < 0 || o.MaxLevel > cellid.MaxLevel {
		return fmt.Errorf("cover: MaxLevel %d out of range [0,%d]", o.MaxLevel, cellid.MaxLevel)
	}
	if o.MinLevel < 0 || o.MinLevel > o.MaxLevel {
		return fmt.Errorf("cover: MinLevel %d out of range [0,%d]", o.MinLevel, o.MaxLevel)
	}
	if o.MaxCells < 1 {
		return fmt.Errorf("cover: MaxCells must be positive, got %d", o.MaxCells)
	}
	return nil
}

// Covering is a set of cells approximating a region, sorted by id. Cells
// are non-overlapping (no cell contains another).
type Covering struct {
	// Cells in ascending id order.
	Cells []cellid.ID
	// Interior marks, per cell, whether the cell is fully contained in the
	// region (true) or merely intersects its boundary (false). Interior
	// cells contribute no approximation error.
	Interior []bool
}

// Len returns the number of cells.
func (c *Covering) Len() int { return len(c.Cells) }

// candidate is a heap entry: a cell pending classification/refinement.
type candidate struct {
	id    cellid.ID
	level int
}

// candidateHeap orders candidates coarsest-first so refinement spends the
// cell budget where it matters most (big boundary cells first).
type candidateHeap []candidate

func (h candidateHeap) Len() int { return len(h) }
func (h candidateHeap) Less(i, j int) bool {
	if h[i].level != h[j].level {
		return h[i].level < h[j].level
	}
	return h[i].id < h[j].id
}
func (h candidateHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *candidateHeap) Push(x any)   { *h = append(*h, x.(candidate)) }
func (h *candidateHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Coverer computes coverings over a fixed domain.
type Coverer struct {
	dom  cellid.Domain
	opts Options
}

// NewCoverer creates a coverer for the given domain and options.
func NewCoverer(dom cellid.Domain, opts Options) (*Coverer, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	if dom.IsZero() {
		return nil, fmt.Errorf("cover: zero domain")
	}
	return &Coverer{dom: dom, opts: opts}, nil
}

// MustCoverer is NewCoverer that panics on error.
func MustCoverer(dom cellid.Domain, opts Options) *Coverer {
	c, err := NewCoverer(dom, opts)
	if err != nil {
		panic(err)
	}
	return c
}

// Options returns the coverer's configuration.
func (c *Coverer) Options() Options { return c.opts }

// Domain returns the coverer's domain.
func (c *Coverer) Domain() cellid.Domain { return c.dom }

// Cover computes a covering of region. The covering satisfies:
//
//   - every point of the region lies in some covering cell;
//   - no covering cell is below MaxLevel or above MinLevel;
//   - cells are disjoint and sorted ascending;
//   - cells marked Interior are fully inside the region.
func (c *Coverer) Cover(region Region) *Covering {
	// Intersection returns an invalid rect when the region's bound and the
	// domain do not overlap — the only empty-covering case.
	bb := region.Bound().Intersection(c.dom.Bound())
	out := &Covering{}
	if !bb.IsValid() {
		return out
	}

	start := c.enclosingCell(bb)
	if start.Level() < c.opts.MinLevel {
		// Seed with all MinLevel descendants that intersect the region
		// instead of one giant cell, so MinLevel is respected.
		c.seedAtLevel(region, start, c.opts.MinLevel, out)
		return c.finish(out)
	}

	var h candidateHeap
	heap.Push(&h, candidate{start, start.Level()})
	for h.Len() > 0 {
		cand := heap.Pop(&h).(candidate)
		rect := c.dom.CellRect(cand.id)
		rel := classifyRect(region, rect)
		if rel == geom.RectDisjoint {
			continue
		}
		contained := rel == geom.RectContains
		if contained && cand.level >= c.opts.MinLevel {
			out.Cells = append(out.Cells, cand.id)
			out.Interior = append(out.Interior, true)
			continue
		}
		if cand.level >= c.opts.MaxLevel {
			out.Cells = append(out.Cells, cand.id)
			out.Interior = append(out.Interior, contained)
			continue
		}
		// Budget check: the four children plus whatever is queued or
		// emitted must stay within MaxCells, otherwise emit as-is.
		if len(out.Cells)+h.Len()+4 > c.opts.MaxCells && cand.level >= c.opts.MinLevel {
			out.Cells = append(out.Cells, cand.id)
			out.Interior = append(out.Interior, contained)
			continue
		}
		for _, child := range cand.id.Children() {
			heap.Push(&h, candidate{child, cand.level + 1})
		}
	}
	return c.finish(out)
}

// seedAtLevel emits all descendants of start at the given level that
// intersect the region. Used when the enclosing cell is coarser than
// MinLevel.
func (c *Coverer) seedAtLevel(region Region, start cellid.ID, level int, out *Covering) {
	begin := start.ChildBeginAt(level)
	end := start.ChildEndAt(level)
	for id := begin; ; id = id.Next() {
		rect := c.dom.CellRect(id)
		if rel := classifyRect(region, rect); rel != geom.RectDisjoint {
			out.Cells = append(out.Cells, id)
			out.Interior = append(out.Interior, rel == geom.RectContains)
		}
		if id == end {
			break
		}
	}
}

func (c *Coverer) finish(out *Covering) *Covering {
	// Sort by id, carrying the interior flags along.
	idx := make([]int, len(out.Cells))
	for i := range idx {
		idx[i] = i
	}
	slices.SortFunc(idx, func(a, b int) int {
		return cmp.Compare(out.Cells[a], out.Cells[b])
	})
	cells := make([]cellid.ID, len(idx))
	interior := make([]bool, len(idx))
	for i, j := range idx {
		cells[i] = out.Cells[j]
		interior[i] = out.Interior[j]
	}
	out.Cells = cells
	out.Interior = interior
	return out
}

// enclosingCell returns the smallest single cell whose rectangle contains
// bb — the covering seed.
func (c *Coverer) enclosingCell(bb geom.Rect) cellid.ID {
	lo := c.dom.FromPoint(bb.Min)
	hi := c.dom.FromPoint(bb.Max)
	lvl, ok := lo.CommonAncestorLevel(hi)
	if !ok {
		return cellid.Root()
	}
	return lo.Parent(lvl)
}

// FixedLevelCover returns the covering of region consisting solely of
// cells at the given level — the grid-cell representation in Fig. 6c. It is
// equivalent to Cover with MinLevel = MaxLevel = level but uses a direct
// recursive walk.
func (c *Coverer) FixedLevelCover(region Region, level int) []cellid.ID {
	var out []cellid.ID
	var walk func(id cellid.ID)
	walk = func(id cellid.ID) {
		rect := c.dom.CellRect(id)
		if id.Level() == level {
			// Leaf: only the intersection test matters, skip the fused
			// classification's containment work.
			if region.IntersectsRect(rect) {
				out = append(out, id)
			}
			return
		}
		rel := classifyRect(region, rect)
		if rel == geom.RectDisjoint {
			return
		}
		if rel == geom.RectContains {
			// Whole subtree qualifies: enumerate children at target level.
			begin := id.ChildBeginAt(level)
			end := id.ChildEndAt(level)
			for child := begin; ; child = child.Next() {
				out = append(out, child)
				if child == end {
					break
				}
			}
			return
		}
		for _, child := range id.Children() {
			walk(child)
		}
	}
	start := c.enclosingCell(region.Bound().Intersection(c.dom.Bound()))
	if start.Level() > level {
		start = start.Parent(level)
	}
	walk(start)
	slices.SortFunc(out, func(a, b cellid.ID) int { return cmp.Compare(a, b) })
	return out
}

// CoverPolygon is shorthand for Cover on a polygon.
func (c *Coverer) CoverPolygon(p *geom.Polygon) *Covering { return c.Cover(p) }

// CoverRect is shorthand for Cover on a rectangle.
func (c *Coverer) CoverRect(r geom.Rect) *Covering { return c.Cover(RectRegion(r)) }

// GuaranteedErrorDistance returns the covering's guaranteed spatial error
// bound: the diagonal of the coarsest boundary (non-interior) cell.
// Interior cells are fully contained in the region and contribute no
// approximation error; every point of a boundary cell lies within that
// cell's diagonal of the region, so the coarsest boundary diagonal bounds
// the distance of any covered false positive from the region. It returns 0
// for an empty or all-interior covering — such answers are exact.
//
// Unlike MaxErrorDistance below this is a sound per-query bound even when
// the MaxCells budget truncated refinement and left coarse boundary cells.
func (c *Coverer) GuaranteedErrorDistance(cov *Covering) float64 {
	coarsest := -1
	for i, id := range cov.Cells {
		if cov.Interior[i] {
			continue
		}
		if l := id.Level(); coarsest < 0 || l < coarsest {
			coarsest = l
		}
	}
	if coarsest < 0 {
		return 0
	}
	return c.dom.CellDiagonal(coarsest)
}

// MaxErrorDistance returns the covering's worst-case distance bound: the
// diagonal of a cell at the covering's finest level (paper Sec. 3.2). It
// returns 0 for an empty covering.
func (c *Coverer) MaxErrorDistance(cov *Covering) float64 {
	finest := -1
	for _, id := range cov.Cells {
		if l := id.Level(); l > finest {
			finest = l
		}
	}
	if finest < 0 {
		return 0
	}
	return c.dom.CellDiagonal(finest)
}

// AreaError returns the covering's area-based overshoot: covering area
// minus region area, as a fraction of region area. Interior cells
// contribute no error, so only boundary cells are measured.
func (c *Coverer) AreaError(region Region, cov *Covering) float64 {
	regionArea := 0.0
	if p, ok := region.(*geom.Polygon); ok {
		regionArea = p.Area()
	} else {
		regionArea = region.Bound().Area()
	}
	if regionArea <= 0 {
		return 0
	}
	coverArea := 0.0
	for _, id := range cov.Cells {
		coverArea += c.dom.CellRect(id).Area()
	}
	return (coverArea - regionArea) / regionArea
}
