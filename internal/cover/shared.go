// shared.go implements the shared-grid multi-region coverer behind the
// join operator: one coarse grid is laid over the union footprint of all
// query regions, regions are bucketed by the grid cells they touch, and
// each (region, grid cell) pair is classified interior or boundary.
// Interior pairs emit the whole grid cell with zero further geometry
// tests; only boundary pairs refine, by direct recursion down to
// MaxLevel. The per-region result is then canonicalised by coalescing
// complete interior sibling runs, which makes it cell-for-cell identical
// to the covering Cover computes for the region alone — the property the
// join's bit-identity contract rests on (pinned in shared_test.go).
package cover

import (
	"cmp"
	"slices"

	"geoblocks/internal/cellid"
	"geoblocks/internal/geom"
)

// SharedCovering is the result of covering many regions against one
// shared grid: per-region coverings (each equivalent to Cover on that
// region), per-region guaranteed error bounds, and the grid bookkeeping
// the join operator reports as metrics.
type SharedCovering struct {
	// GridLevel is the level of the shared coarse grid.
	GridLevel int
	// GridCells lists the grid cells touched by at least one region,
	// ascending — the buckets of the shared pass.
	GridCells []cellid.ID
	// Covers holds one covering per input region, positionally aligned.
	Covers []*Covering
	// Bounds holds each covering's guaranteed error distance.
	Bounds []float64
	// InteriorPairs counts (region, grid cell) pairs answered wholesale:
	// the grid cell was fully inside the region, so it was emitted with
	// no point-in-polygon work at all.
	InteriorPairs int
	// BoundaryPairs counts pairs that needed boundary refinement.
	BoundaryPairs int
	// Fallbacks counts regions answered by the single-region Cover
	// instead of the shared grid (oversized coverings near the MaxCells
	// budget, or MinLevel-constrained coverers). Fallback coverings are
	// Cover's own output, so equivalence is trivial — only the shared
	// pass's economy is lost.
	Fallbacks int
}

// sharedGridLevel picks the grid level from two criteria, capped at the
// block level: a count-driven floor — enough grid cells that region
// buckets stay balanced — and a size-driven floor that puts grid cells
// comfortably inside the average region: a cell strictly inside a
// region (an interior pair, the zero-geometry-test case) needs headroom
// of a couple of halvings beyond parity with the region's own extent.
func (c *Coverer) sharedGridLevel(startLevel, nregions int, avgDim float64, maxLevel int) int {
	depth := 1
	for cells := 4; cells < 16*nregions && depth < 8; depth++ {
		cells *= 4
	}
	lvl := startLevel + depth
	if avgDim > 0 {
		b := c.dom.Bound()
		dim := b.Width()
		if b.Height() > dim {
			dim = b.Height()
		}
		for lvl < maxLevel && dim/float64(uint64(1)<<uint(lvl)) > avgDim/4 {
			lvl++
		}
	}
	if lvl > maxLevel {
		lvl = maxLevel
	}
	return lvl
}

// CoverShared covers every region in one shared-grid pass. Each returned
// covering satisfies the same contract as Cover(region) — and, for
// non-fallback regions, is cell-for-cell identical to it: the walk is
// confined to the region's own enclosing-cell subtree (exactly Cover's
// search space, which matters because rectangles are closed and regions
// may touch grid lines), refinement applies Cover's classification in
// the same order, and interior sibling coalescing reconstructs the
// maximal interior cells Cover emits directly. Regions whose covering
// grows past MaxCells/4 fall back to Cover so budget truncation —
// whose heap-order-dependent shape the shared walk does not reproduce —
// can never be in play on the shared path.
func (c *Coverer) CoverShared(regions []Region) *SharedCovering {
	sc := &SharedCovering{
		Covers: make([]*Covering, len(regions)),
		Bounds: make([]float64, len(regions)),
	}
	for i := range sc.Covers {
		sc.Covers[i] = &Covering{}
	}
	domB := c.dom.Bound()
	bbs := make([]geom.Rect, len(regions))
	var union geom.Rect
	seen := false
	for i, rg := range regions {
		bbs[i] = rg.Bound().Intersection(domB)
		if !bbs[i].IsValid() {
			continue
		}
		if !seen {
			union, seen = bbs[i], true
		} else {
			union = union.Union(bbs[i])
		}
	}
	if !seen {
		return sc
	}

	fallback := func(i int) {
		cov := c.Cover(regions[i])
		sc.Covers[i] = cov
		sc.Bounds[i] = c.GuaranteedErrorDistance(cov)
		sc.Fallbacks++
	}
	if c.opts.MinLevel > 0 {
		// MinLevel coverers take Cover's seeded path, which the shared
		// walk does not model; answer every region individually.
		sc.GridLevel = c.opts.MinLevel
		for i := range regions {
			if bbs[i].IsValid() {
				fallback(i)
			}
		}
		return sc
	}

	start := c.enclosingCell(union)
	var dimSum float64
	ndim := 0
	for i := range regions {
		if bbs[i].IsValid() {
			d := bbs[i].Width()
			if h := bbs[i].Height(); h > d {
				d = h
			}
			dimSum += d
			ndim++
		}
	}
	sc.GridLevel = c.sharedGridLevel(start.Level(), len(regions), dimSum/float64(ndim), c.opts.MaxLevel)
	budget := c.opts.MaxCells / 4
	gridSet := make(map[cellid.ID]struct{})

	for i, region := range regions {
		if !bbs[i].IsValid() {
			continue
		}
		if !c.coverSharedOne(region, bbs[i], sc, gridSet, budget, sc.Covers[i]) {
			sc.Covers[i] = &Covering{}
			fallback(i)
			continue
		}
		c.finish(sc.Covers[i])
		coalesceInterior(sc.Covers[i])
		sc.Bounds[i] = c.GuaranteedErrorDistance(sc.Covers[i])
	}

	sc.GridCells = make([]cellid.ID, 0, len(gridSet))
	for id := range gridSet {
		sc.GridCells = append(sc.GridCells, id)
	}
	slices.SortFunc(sc.GridCells, func(a, b cellid.ID) int { return cmp.Compare(a, b) })
	return sc
}

// coverSharedOne runs one region through the shared grid, appending to
// out. It returns false when the covering exceeded the fallback budget.
func (c *Coverer) coverSharedOne(region Region, bb geom.Rect, sc *SharedCovering, gridSet map[cellid.ID]struct{}, budget int, out *Covering) bool {
	// refine is Cover's refinement loop as a direct recursion (no heap,
	// no candidate allocations), with the MinLevel=0 branches inlined:
	// prune on intersection, emit on containment or at MaxLevel, else
	// subdivide.
	var refine func(id cellid.ID) bool
	refine = func(id cellid.ID) bool {
		rect := c.dom.CellRect(id)
		rel := classifyRect(region, rect)
		if rel == geom.RectDisjoint {
			return true
		}
		contained := rel == geom.RectContains
		if contained || id.Level() >= c.opts.MaxLevel {
			out.Cells = append(out.Cells, id)
			out.Interior = append(out.Interior, contained)
			return len(out.Cells) <= budget
		}
		for _, child := range id.Children() {
			if !refine(child) {
				return false
			}
		}
		return true
	}

	// The walk is confined to the region's own enclosing cell: cells
	// outside it can at most touch the region along a grid line
	// (rectangles are closed), and Cover never emits them.
	encl := c.enclosingCell(bb)
	if encl.Level() >= sc.GridLevel {
		// The whole region fits inside one grid cell; its bucket is the
		// grid-level ancestor and the pair refines as one unit.
		gridSet[encl.Parent(sc.GridLevel)] = struct{}{}
		sc.BoundaryPairs++
		return refine(encl)
	}

	// Scan the grid cells under the region's bounding box directly in
	// (i, j) space — no Hilbert-tree descent, and no per-cell Hilbert
	// decode: rectangles come from the grid coordinates and an id is only
	// encoded for cells the region actually touches. The integer range is
	// widened by one cell each way because rectangles are closed (a grid
	// cell touching bb along a grid line still intersects it) and LeafIJ's
	// float rounding can land one cell off an exact boundary; the exact
	// rect-intersection test below is the authority, so extra candidates
	// are harmless. Cells outside the enclosing cell's subtree are skipped
	// to preserve Cover's exact search space.
	shift := uint(cellid.MaxLevel - sc.GridLevel)
	li0, lj0 := c.dom.LeafIJ(bb.Min)
	li1, lj1 := c.dom.LeafIJ(bb.Max)
	gi0, gj0, gi1, gj1 := li0>>shift, lj0>>shift, li1>>shift, lj1>>shift
	gmax := uint32(1)<<uint(sc.GridLevel) - 1
	if gi0 > 0 {
		gi0--
	}
	if gj0 > 0 {
		gj0--
	}
	if gi1 < gmax {
		gi1++
	}
	if gj1 < gmax {
		gj1++
	}
	enclShift := uint(sc.GridLevel - encl.Level())
	ei, ej := encl.IJ()
	for gi := gi0; gi <= gi1; gi++ {
		if gi>>enclShift != ei {
			continue
		}
		for gj := gj0; gj <= gj1; gj++ {
			if gj>>enclShift != ej {
				continue
			}
			rect := c.dom.CellRectAt(gi, gj, sc.GridLevel)
			if !rect.Intersects(bb) {
				continue
			}
			rel := classifyRect(region, rect)
			if rel == geom.RectDisjoint {
				continue
			}
			id := cellid.FromIJ(gi, gj, sc.GridLevel)
			gridSet[id] = struct{}{}
			if rel == geom.RectContains {
				// Interior pair: the grid cell is wholly inside the region —
				// emitted as-is, zero boundary tests. Coalescing below merges
				// complete interior sibling runs back into the coarser cells
				// Cover would have emitted.
				sc.InteriorPairs++
				out.Cells = append(out.Cells, id)
				out.Interior = append(out.Interior, true)
				if len(out.Cells) > budget {
					return false
				}
				continue
			}
			// Boundary pair: the classification above already is Cover's
			// verdict for this cell, so refinement skips straight to the
			// children (or emits, at MaxLevel) instead of re-classifying.
			sc.BoundaryPairs++
			if sc.GridLevel >= c.opts.MaxLevel {
				out.Cells = append(out.Cells, id)
				out.Interior = append(out.Interior, false)
				if len(out.Cells) > budget {
					return false
				}
				continue
			}
			for _, child := range id.Children() {
				if !refine(child) {
					return false
				}
			}
		}
	}
	return true
}

// coalesceInterior canonicalises a sorted covering by repeatedly merging
// complete runs of four interior siblings into their (interior) parent.
// Containment is monotone — a region containing all four child
// rectangles contains the parent rectangle — so every merged parent is
// exactly a cell Cover emits, and conversely any interior cell Cover
// emits above the grid level decomposes into complete interior sibling
// runs that merge back. The array stays sorted throughout because a
// parent occupies its children's position in cell-id order.
func coalesceInterior(cov *Covering) {
	for {
		merged := false
		cells, interior := cov.Cells, cov.Interior
		w := 0
		for i := 0; i < len(cells); {
			if i+3 < len(cells) && interior[i] && interior[i+1] && interior[i+2] && interior[i+3] {
				if l := cells[i].Level(); l > 0 &&
					cells[i+1].Level() == l && cells[i+2].Level() == l && cells[i+3].Level() == l {
					p := cells[i].Parent(l - 1)
					if cells[i+1].Parent(l-1) == p && cells[i+2].Parent(l-1) == p && cells[i+3].Parent(l-1) == p {
						cells[w], interior[w] = p, true
						w++
						i += 4
						merged = true
						continue
					}
				}
			}
			cells[w], interior[w] = cells[i], interior[i]
			w++
			i++
		}
		cov.Cells, cov.Interior = cells[:w], interior[:w]
		if !merged {
			return
		}
	}
}
