// Package loadharness is the measurement core of cmd/loadgen: an
// HDR-style log-linear latency histogram plus closed- and open-loop run
// drivers, so every performance claim the repo makes can be a percentile
// under concurrency instead of a solo-request mean.
//
// Closed loop: W workers issue requests back to back — throughput floats
// with latency, the classic benchmark shape. Open loop: requests are
// scheduled on a fixed-rate clock regardless of how the system keeps up,
// and each latency is measured from the request's *scheduled* start, so
// queueing delay is charged to the system under test (the
// coordinated-omission correction — a stalled server cannot hide behind
// the load generator's own back-off).
package loadharness

import (
	"fmt"
	"math/bits"
	"sync"
	"sync/atomic"
	"time"
)

// The histogram is log-linear over microseconds: values below 32 us land
// in unit-wide buckets; each further power of two is split into 32
// linear sub-buckets, bounding the relative quantization error at ~3%
// while covering the full uint64 range in a fixed 1920-slot array.
const (
	subBuckets   = 32
	subBits      = 5 // log2(subBuckets)
	totalBuckets = (64 - subBits + 1) * subBuckets
)

// Histogram records latencies with bounded relative error. Concurrent
// Record calls are safe (per-bucket atomics); Percentile and merges are
// meant for after the run.
type Histogram struct {
	buckets [totalBuckets]atomic.Uint64
	count   atomic.Uint64
	maxUS   atomic.Uint64
}

// bucketIndex maps a microsecond value to its log-linear bucket.
func bucketIndex(us uint64) int {
	if us < subBuckets {
		return int(us)
	}
	e := bits.Len64(us) // >= 6
	// Keep the top subBits bits after the leading one: a value in
	// [2^(e-1), 2^e) maps to sub-bucket (us >> (e-1-subBits)) in [32, 64).
	return (e-subBits)*subBuckets + int(us>>(e-1-subBits)) - subBuckets
}

// bucketUpper returns the inclusive upper edge (in us) of a bucket, the
// conservative representative reported for percentiles.
func bucketUpper(idx int) uint64 {
	if idx < subBuckets {
		return uint64(idx)
	}
	g := idx / subBuckets
	r := idx % subBuckets
	return (uint64(subBuckets+r+1) << (g - 1)) - 1
}

// Record adds one latency observation.
func (h *Histogram) Record(d time.Duration) {
	us := uint64(d.Microseconds())
	if d < 0 {
		us = 0
	}
	h.buckets[bucketIndex(us)].Add(1)
	h.count.Add(1)
	for {
		cur := h.maxUS.Load()
		if us <= cur || h.maxUS.CompareAndSwap(cur, us) {
			return
		}
	}
}

// Count returns the number of recorded observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Percentile returns the q-th percentile (q in [0, 100]) in
// microseconds: the upper edge of the bucket holding the q-th
// observation, clamped to the true maximum for the tail.
func (h *Histogram) Percentile(q float64) uint64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	target := uint64(q / 100 * float64(total))
	if target < 1 {
		target = 1
	}
	if target > total {
		target = total
	}
	var seen uint64
	for i := 0; i < totalBuckets; i++ {
		seen += h.buckets[i].Load()
		if seen >= target {
			v := bucketUpper(i)
			if m := h.maxUS.Load(); v > m {
				v = m
			}
			return v
		}
	}
	return h.maxUS.Load()
}

// Max returns the largest recorded value in microseconds.
func (h *Histogram) Max() uint64 { return h.maxUS.Load() }

// Report is one run's summary: counts, achieved throughput and the
// latency distribution in milliseconds (float, microsecond resolution).
type Report struct {
	// Mode is "closed" or "open"; Workers the concurrency; RateHz the
	// open loop's scheduled arrival rate (0 for closed).
	Mode    string  `json:"mode"`
	Workers int     `json:"workers"`
	RateHz  float64 `json:"rate_hz,omitempty"`
	// DurationSec is the measured wall time, Requests/Errors the calls
	// issued, QPS the achieved throughput.
	DurationSec float64 `json:"duration_sec"`
	Requests    uint64  `json:"requests"`
	Errors      uint64  `json:"errors"`
	QPS         float64 `json:"qps"`
	P50MS       float64 `json:"p50_ms"`
	P90MS       float64 `json:"p90_ms"`
	P95MS       float64 `json:"p95_ms"`
	P99MS       float64 `json:"p99_ms"`
	MaxMS       float64 `json:"max_ms"`
}

// String renders the one-line human form.
func (r Report) String() string {
	return fmt.Sprintf("%s loop, %d workers: %d requests (%d errors) in %.1fs = %.0f qps; p50 %.3fms p90 %.3fms p95 %.3fms p99 %.3fms max %.3fms",
		r.Mode, r.Workers, r.Requests, r.Errors, r.DurationSec, r.QPS,
		r.P50MS, r.P90MS, r.P95MS, r.P99MS, r.MaxMS)
}

func report(mode string, workers int, rate float64, elapsed time.Duration, h *Histogram, errs uint64) Report {
	n := h.Count()
	rep := Report{
		Mode:        mode,
		Workers:     workers,
		RateHz:      rate,
		DurationSec: elapsed.Seconds(),
		Requests:    n,
		Errors:      errs,
		P50MS:       float64(h.Percentile(50)) / 1000,
		P90MS:       float64(h.Percentile(90)) / 1000,
		P95MS:       float64(h.Percentile(95)) / 1000,
		P99MS:       float64(h.Percentile(99)) / 1000,
		MaxMS:       float64(h.Max()) / 1000,
	}
	if elapsed > 0 {
		rep.QPS = float64(n) / elapsed.Seconds()
	}
	return rep
}

// RunClosed drives fn back to back from `workers` goroutines for the
// given duration: the classic closed loop, where offered load adapts to
// the system's latency. fn receives its worker index (for per-worker
// RNGs or connections); a non-nil error counts in Errors but the
// latency is still recorded.
func RunClosed(workers int, duration time.Duration, fn func(worker int) error) Report {
	if workers < 1 {
		workers = 1
	}
	var h Histogram
	var errs atomic.Uint64
	start := time.Now()
	deadline := start.Add(duration)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for time.Now().Before(deadline) {
				t0 := time.Now()
				err := fn(w)
				h.Record(time.Since(t0))
				if err != nil {
					errs.Add(1)
				}
			}
		}(w)
	}
	wg.Wait()
	return report("closed", workers, 0, time.Since(start), &h, errs.Load())
}

// RunOpen drives fn at a fixed arrival rate (requests per second) from a
// worker pool, for the given duration. Arrivals are scheduled on a
// global clock: workers claim ticket n, sleep until start + n/rate, call
// fn, and record latency from the *scheduled* start — so when the system
// falls behind, the queueing delay lands in the histogram instead of
// silently stretching the arrival gaps (coordinated-omission
// correction). Workers caps in-flight concurrency; saturate it and the
// measured tail grows, which is exactly the signal an open loop exists
// to surface.
func RunOpen(rate float64, workers int, duration time.Duration, fn func(worker int) error) Report {
	if rate <= 0 {
		return Report{Mode: "open", Workers: workers, RateHz: rate}
	}
	if workers < 1 {
		workers = 1
	}
	interval := time.Duration(float64(time.Second) / rate)
	if interval <= 0 {
		interval = time.Nanosecond
	}
	var h Histogram
	var errs atomic.Uint64
	var seq atomic.Uint64
	start := time.Now()
	deadline := start.Add(duration)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				n := seq.Add(1) - 1
				scheduled := start.Add(time.Duration(n) * interval)
				if scheduled.After(deadline) {
					return
				}
				if wait := time.Until(scheduled); wait > 0 {
					time.Sleep(wait)
				}
				err := fn(w)
				h.Record(time.Since(scheduled))
				if err != nil {
					errs.Add(1)
				}
			}
		}(w)
	}
	wg.Wait()
	return report("open", workers, rate, time.Since(start), &h, errs.Load())
}
