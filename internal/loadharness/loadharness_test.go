package loadharness

import (
	"errors"
	"math"
	"sync/atomic"
	"testing"
	"time"
)

// TestBucketRoundTrip: every bucket's upper edge must map back to the
// same bucket, and indices must be monotone in the value.
func TestBucketRoundTrip(t *testing.T) {
	for idx := 0; idx < totalBuckets; idx++ {
		v := bucketUpper(idx)
		if got := bucketIndex(v); got != idx {
			t.Fatalf("bucketIndex(bucketUpper(%d)=%d) = %d", idx, v, got)
		}
	}
	prev := -1
	for _, us := range []uint64{0, 1, 31, 32, 33, 63, 64, 100, 1000, 1 << 20, 1 << 40, math.MaxUint64} {
		idx := bucketIndex(us)
		if idx < prev || idx >= totalBuckets {
			t.Fatalf("bucketIndex(%d) = %d (prev %d, total %d)", us, idx, prev, totalBuckets)
		}
		prev = idx
	}
}

// TestHistogramPercentiles: a uniform ramp of known latencies must
// report percentiles within the histogram's ~3% relative error.
func TestHistogramPercentiles(t *testing.T) {
	var h Histogram
	for i := 1; i <= 10_000; i++ {
		h.Record(time.Duration(i) * time.Microsecond)
	}
	if h.Count() != 10_000 {
		t.Fatalf("count %d", h.Count())
	}
	checks := []struct {
		q    float64
		want float64 // exact value in us
	}{
		{50, 5000}, {90, 9000}, {99, 9900}, {100, 10_000},
	}
	for _, c := range checks {
		got := float64(h.Percentile(c.q))
		if got < c.want || got > c.want*1.04 {
			t.Errorf("p%g = %gus, want within [%g, %g]", c.q, got, c.want, c.want*1.04)
		}
	}
	if h.Max() != 10_000 {
		t.Errorf("max %dus, want 10000", h.Max())
	}
}

// TestHistogramEmpty: zero observations report zero everywhere.
func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Percentile(50) != 0 || h.Max() != 0 || h.Count() != 0 {
		t.Fatal("empty histogram reported non-zero")
	}
}

// TestRunClosed: workers run fn back to back; counts, errors and QPS
// must be consistent.
func TestRunClosed(t *testing.T) {
	var calls atomic.Uint64
	rep := RunClosed(4, 150*time.Millisecond, func(w int) error {
		if w < 0 || w >= 4 {
			t.Errorf("worker index %d", w)
		}
		n := calls.Add(1)
		time.Sleep(time.Millisecond)
		if n%5 == 0 {
			return errors.New("synthetic")
		}
		return nil
	})
	if rep.Mode != "closed" || rep.Workers != 4 {
		t.Fatalf("report header %+v", rep)
	}
	if rep.Requests == 0 || rep.Requests != calls.Load() {
		t.Fatalf("requests %d, calls %d", rep.Requests, calls.Load())
	}
	if rep.Errors == 0 || rep.Errors > rep.Requests {
		t.Fatalf("errors %d of %d", rep.Errors, rep.Requests)
	}
	if rep.QPS <= 0 || rep.P50MS <= 0 {
		t.Fatalf("qps %v p50 %v", rep.QPS, rep.P50MS)
	}
}

// TestRunOpenRate: a fast fn keeps up with the schedule, so the request
// count tracks rate*duration and latencies stay tiny.
func TestRunOpenRate(t *testing.T) {
	rep := RunOpen(2000, 4, 250*time.Millisecond, func(int) error { return nil })
	want := 2000 * 0.25
	if float64(rep.Requests) < want*0.8 || float64(rep.Requests) > want*1.2 {
		t.Fatalf("open loop issued %d requests, want ~%g", rep.Requests, want)
	}
	if rep.Mode != "open" || rep.RateHz != 2000 {
		t.Fatalf("report header %+v", rep)
	}
}

// TestRunOpenCoordinatedOmission: one worker servicing 2ms calls against
// a 1000/s schedule falls behind immediately; measuring from the
// *scheduled* start means the recorded tail must reflect the queueing
// delay (far above the 2ms service time), not hide it.
func TestRunOpenCoordinatedOmission(t *testing.T) {
	rep := RunOpen(1000, 1, 300*time.Millisecond, func(int) error {
		time.Sleep(2 * time.Millisecond)
		return nil
	})
	if rep.Requests == 0 {
		t.Fatal("no requests recorded")
	}
	if rep.P99MS < 10 {
		t.Fatalf("p99 %.3fms does not reflect queueing delay under overload", rep.P99MS)
	}
	if rep.P50MS <= rep.P99MS/100 {
		t.Logf("p50 %.3fms p99 %.3fms", rep.P50MS, rep.P99MS)
	}
}
