package cluster_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"geoblocks"
	"geoblocks/internal/cluster"
	"geoblocks/internal/geom"
	"geoblocks/internal/httpapi"
	"geoblocks/internal/store"
)

// flakyProxy sits between the coordinator and one peer and injects the
// failure modes the replica client must survive: dropped connections,
// long delays, 5xx answers, truncated bodies and corrupt accumulator
// frames. A budget of -1 applies the mode to every request; a positive
// budget fails that many requests, then forwards cleanly.
type flakyProxy struct {
	backend string
	srv     *httptest.Server

	mu     sync.Mutex
	mode   string
	budget int
	delay  time.Duration

	hits atomic.Uint64
}

func newFlakyProxy(t *testing.T, backend string) *flakyProxy {
	t.Helper()
	p := &flakyProxy{backend: backend, mode: "ok"}
	p.srv = httptest.NewServer(http.HandlerFunc(p.serve))
	t.Cleanup(p.srv.Close)
	return p
}

func (p *flakyProxy) addr() string { return p.srv.Listener.Addr().String() }

func (p *flakyProxy) arm(mode string, budget int, delay time.Duration) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.mode, p.budget, p.delay = mode, budget, delay
}

// take consumes one unit of the failure budget.
func (p *flakyProxy) take() (string, time.Duration) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.mode == "ok" || p.budget == 0 {
		return "ok", 0
	}
	if p.budget > 0 {
		p.budget--
	}
	return p.mode, p.delay
}

func (p *flakyProxy) serve(w http.ResponseWriter, r *http.Request) {
	p.hits.Add(1)
	mode, delay := p.take()
	switch mode {
	case "drop":
		// Kill the connection without an HTTP answer: the client sees a
		// transport error, like a peer that just died.
		conn, _, err := w.(http.Hijacker).Hijack()
		if err == nil {
			conn.Close()
		}
		return
	case "err5xx":
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusInternalServerError)
		io.WriteString(w, `{"error":"injected server error"}`)
		return
	case "delay":
		select {
		case <-time.After(delay):
		case <-r.Context().Done():
			return
		}
	}

	status, body, err := p.forward(r)
	if err != nil {
		w.WriteHeader(http.StatusBadGateway)
		return
	}
	switch mode {
	case "truncate":
		// Advertise the full length, send half, slam the connection: the
		// client's strict decoder must treat this as a failed attempt.
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Content-Length", fmt.Sprint(len(body)))
		w.WriteHeader(status)
		w.Write(body[:len(body)/2])
		if conn, _, err := w.(http.Hijacker).Hijack(); err == nil {
			conn.Close()
		}
		return
	case "badframe":
		// Valid envelope, corrupt accumulator frame: only the
		// coordinator's frame CRC can catch this.
		var pr cluster.PartialResponse
		if status == http.StatusOK && json.Unmarshal(body, &pr) == nil && len(pr.Shards) > 0 && len(pr.Shards[0].Partial) > 0 {
			pr.Shards[0].Partial[len(pr.Shards[0].Partial)-1] ^= 0xFF
			body, _ = json.Marshal(pr)
		}
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(body)
}

func (p *flakyProxy) forward(r *http.Request) (int, []byte, error) {
	body, err := io.ReadAll(r.Body)
	if err != nil {
		return 0, nil, err
	}
	resp, err := http.Post("http://"+p.backend+r.URL.Path, "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, nil, err
	}
	return resp.StatusCode, out, nil
}

// faultCluster is the fault-injection topology: two full-replica data
// peers behind flaky proxies, and a pure-router coordinator (with its
// own HTTP server, for the typed-503 assertions) that reaches every
// shard through the proxies.
type faultCluster struct {
	co      *cluster.Coordinator
	coSrv   *httptest.Server
	proxies []*flakyProxy
	control *store.Dataset
}

func startFaultCluster(t *testing.T, rows int, tune func(*cluster.Config)) *faultCluster {
	t.Helper()
	opts := store.Options{Level: 12, ShardLevel: 2}
	const seed = 23

	cfg := &cluster.Config{Epoch: 1, Replication: 2, TimeoutMS: 2000, BackoffMS: 1}
	var proxies []*flakyProxy
	names := []string{"a", "b"}
	for _, name := range names {
		st := store.New()
		if err := st.Add(buildDataset(t, rows, seed, opts)); err != nil {
			t.Fatalf("Add: %v", err)
		}
		cfg.Nodes = append(cfg.Nodes, cluster.Node{Name: name}) // addr filled below
		// The peer needs a coordinator only so its handler serves
		// /internal/v1/partial under the right epoch; it never dials out.
		co, err := cluster.New(st, &cluster.Config{Epoch: 1, Nodes: []cluster.Node{{Name: name, Addr: "unused:1"}}}, name)
		if err != nil {
			t.Fatalf("peer coordinator %s: %v", name, err)
		}
		srv := httptest.NewServer(httpapi.NewHandler(st, httpapi.Config{Cluster: co}))
		t.Cleanup(srv.Close)
		proxies = append(proxies, newFlakyProxy(t, srv.Listener.Addr().String()))
	}
	for i := range cfg.Nodes {
		cfg.Nodes[i].Addr = proxies[i].addr()
	}
	if tune != nil {
		tune(cfg)
	}

	st := store.New()
	if err := st.Add(buildDataset(t, rows, seed, opts)); err != nil {
		t.Fatalf("Add: %v", err)
	}
	co, err := cluster.New(st, cfg, "")
	if err != nil {
		t.Fatalf("router coordinator: %v", err)
	}
	coSrv := httptest.NewServer(httpapi.NewHandler(st, httpapi.Config{Cluster: co, Coordinator: true}))
	t.Cleanup(coSrv.Close)

	return &faultCluster{
		co:      co,
		coSrv:   coSrv,
		proxies: proxies,
		control: buildDataset(t, rows, seed, opts),
	}
}

// fullRect covers the whole domain, so every shard is in the scatter.
var fullRect = geom.Rect{Min: geom.Pt(0, 0), Max: geom.Pt(100, 100)}

func (fc *faultCluster) queryBoth(t *testing.T, label string) geoblocks.Result {
	t.Helper()
	want, err := fc.control.QueryRectOpts(fullRect, geoblocks.QueryOptions{}, testReqs...)
	if err != nil {
		t.Fatalf("%s: control: %v", label, err)
	}
	got, err := fc.co.QueryRect(context.Background(), "taxi", fullRect, geoblocks.QueryOptions{}, testReqs)
	if err != nil {
		t.Fatalf("%s: cluster: %v", label, err)
	}
	assertSame(t, got, want, label)
	return got
}

func sumStats(co *cluster.Coordinator) (retries, hedges, failovers, errs uint64) {
	for _, p := range co.Stats().Peers {
		retries += p.Retries
		hedges += p.Hedges
		failovers += p.Failovers
		errs += p.Errors
	}
	return
}

// TestFaultRetryRecovers: a transient 5xx on the first attempt is
// absorbed by the per-replica retry budget without changing the answer.
func TestFaultRetryRecovers(t *testing.T) {
	fc := startFaultCluster(t, 3000, func(c *cluster.Config) { c.Retries = 2 })
	for _, p := range fc.proxies {
		p.arm("err5xx", 1, 0)
	}
	fc.queryBoth(t, "retry after 5xx")
	retries, _, _, errs := sumStats(fc.co)
	if retries == 0 {
		t.Errorf("no retries recorded after injected 5xx")
	}
	if errs == 0 {
		t.Errorf("no errors recorded after injected 5xx")
	}
}

// TestFaultFailover: a peer that drops every connection is replaced by
// the next replica in the chain; when it comes back, queries keep
// working.
func TestFaultFailover(t *testing.T) {
	fc := startFaultCluster(t, 3000, func(c *cluster.Config) { c.Retries = -1 })
	fc.proxies[0].arm("drop", -1, 0)
	fc.queryBoth(t, "failover around dead peer")
	_, _, failovers, _ := sumStats(fc.co)
	if failovers == 0 {
		t.Errorf("no failovers recorded with peer a down")
	}
	fc.proxies[0].arm("ok", 0, 0)
	fc.queryBoth(t, "after peer recovery")
}

// TestFaultHedge: a slow (not dead) peer is raced by a hedged request
// on the next replica, so the query completes long before the slow
// peer's delay.
func TestFaultHedge(t *testing.T) {
	fc := startFaultCluster(t, 3000, func(c *cluster.Config) {
		c.Retries = -1
		c.HedgeMS = 5
		c.TimeoutMS = 5000
	})
	fc.proxies[0].arm("delay", -1, 2*time.Second)
	start := time.Now()
	fc.queryBoth(t, "hedged around slow peer")
	elapsed := time.Since(start)
	_, hedges, _, _ := sumStats(fc.co)
	if hedges == 0 {
		t.Errorf("no hedged requests recorded with peer a slow")
	}
	if elapsed >= 1500*time.Millisecond {
		t.Errorf("hedged query took %v; the 2s delay leaked into the answer path", elapsed)
	}
}

// TestFaultTruncatedBody: a response cut off mid-body is a failed
// attempt — the strict decoder refuses it and the retry gets the real
// answer.
func TestFaultTruncatedBody(t *testing.T) {
	fc := startFaultCluster(t, 3000, func(c *cluster.Config) { c.Retries = 2 })
	for _, p := range fc.proxies {
		p.arm("truncate", 1, 0)
	}
	fc.queryBoth(t, "retry after truncated body")
	_, _, _, errs := sumStats(fc.co)
	if errs == 0 {
		t.Errorf("no errors recorded after truncated responses")
	}
}

// TestFaultBadFrame: a peer returning a corrupt accumulator frame
// (valid JSON envelope, bad CRC) must be treated exactly like a dead
// one — failover, never a silently wrong merge.
func TestFaultBadFrame(t *testing.T) {
	fc := startFaultCluster(t, 3000, func(c *cluster.Config) { c.Retries = -1 })
	fc.proxies[0].arm("badframe", -1, 0)
	fc.queryBoth(t, "failover around corrupt frames")
	_, _, _, errs := sumStats(fc.co)
	if errs == 0 {
		t.Errorf("no errors recorded though peer a served corrupt frames")
	}
}

// TestFaultUnavailable: with every replica of a shard down the query is
// refused with per-shard attribution — in process as UnavailableError,
// over HTTP as a typed 503 naming the shards — and never answered
// partially.
func TestFaultUnavailable(t *testing.T) {
	fc := startFaultCluster(t, 3000, func(c *cluster.Config) { c.Retries = -1 })
	for _, p := range fc.proxies {
		p.arm("drop", -1, 0)
	}

	_, err := fc.co.QueryRect(context.Background(), "taxi", fullRect, geoblocks.QueryOptions{}, testReqs)
	var ue *cluster.UnavailableError
	if !errors.As(err, &ue) {
		t.Fatalf("query error = %v, want UnavailableError", err)
	}
	if len(ue.Shards) == 0 {
		t.Fatalf("UnavailableError names no shards")
	}
	if fc.co.Stats().Unavailable == 0 {
		t.Errorf("unavailable counter not bumped")
	}

	// The same failure over the public endpoint: typed 503 with the
	// machine-readable code and the shard list.
	body, _ := json.Marshal(map[string]any{
		"dataset": "taxi",
		"rect":    []float64{0, 0, 100, 100},
		"aggs":    []map[string]string{{"func": "count"}},
	})
	resp, err := http.Post(fc.coSrv.URL+"/v1/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/query: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", resp.StatusCode)
	}
	var eb struct {
		Error  string   `json:"error"`
		Code   string   `json:"code"`
		Shards []string `json:"shards"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil {
		t.Fatalf("decoding 503 body: %v", err)
	}
	if eb.Code != cluster.CodeUnavailable {
		t.Errorf("code = %q, want %q", eb.Code, cluster.CodeUnavailable)
	}
	if len(eb.Shards) == 0 {
		t.Errorf("503 names no shards: %+v", eb)
	}

	// Recovery: both proxies healthy again, the same query answers and
	// matches the control.
	for _, p := range fc.proxies {
		p.arm("ok", 0, 0)
	}
	fc.queryBoth(t, "after full recovery")
}
