package cluster

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"geoblocks/internal/cellid"
)

func threeNodes() []Node {
	return []Node{
		{Name: "a", Addr: "127.0.0.1:7001"},
		{Name: "b", Addr: "127.0.0.1:7002"},
		{Name: "c", Addr: "127.0.0.1:7003"},
	}
}

func TestParseValidation(t *testing.T) {
	good := `{"epoch":1,"nodes":[{"name":"a","addr":"127.0.0.1:7001"}]}`
	if _, err := Parse([]byte(good)); err != nil {
		t.Fatalf("good config rejected: %v", err)
	}
	tok := CellToken(cellid.FromIJ(0, 0, 1))
	cases := []struct {
		name string
		body string
		want string
	}{
		{"bad json", `{`, "parsing assignment"},
		{"zero epoch", `{"epoch":0,"nodes":[{"name":"a","addr":"x:1"}]}`, "epoch"},
		{"no nodes", `{"epoch":1,"nodes":[]}`, "no nodes"},
		{"missing addr", `{"epoch":1,"nodes":[{"name":"a"}]}`, "name and addr"},
		{"missing name", `{"epoch":1,"nodes":[{"addr":"x:1"}]}`, "name and addr"},
		{"dup name", `{"epoch":1,"nodes":[{"name":"a","addr":"x:1"},{"name":"a","addr":"x:2"}]}`, "duplicate"},
		{"negative replication", `{"epoch":1,"replication":-1,"nodes":[{"name":"a","addr":"x:1"}]}`, "replication"},
		{"static bad token", `{"epoch":1,"nodes":[{"name":"a","addr":"x:1"}],"shards":{"zz":["a"]}}`, "cell token"},
		{"static empty chain", fmt.Sprintf(`{"epoch":1,"nodes":[{"name":"a","addr":"x:1"}],"shards":{%q:[]}}`, tok), "empty replica chain"},
		{"static unknown node", fmt.Sprintf(`{"epoch":1,"nodes":[{"name":"a","addr":"x:1"}],"shards":{%q:["ghost"]}}`, tok), "unknown node"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse([]byte(tc.body))
			if err == nil {
				t.Fatalf("accepted: %s", tc.body)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestConfigDefaults(t *testing.T) {
	var c Config
	if got := c.Timeout(); got != 2*time.Second {
		t.Errorf("default timeout = %v", got)
	}
	if got := c.Backoff(); got != 25*time.Millisecond {
		t.Errorf("default backoff = %v", got)
	}
	if got := c.Hedge(); got != 0 {
		t.Errorf("default hedge = %v, want disabled", got)
	}
	if got := c.RetryBudget(); got != 1 {
		t.Errorf("default retry budget = %d, want 1", got)
	}
	c = Config{TimeoutMS: 150, Retries: 3, BackoffMS: 5, HedgeMS: 40}
	if got := c.Timeout(); got != 150*time.Millisecond {
		t.Errorf("timeout = %v", got)
	}
	if got := c.RetryBudget(); got != 3 {
		t.Errorf("retry budget = %d", got)
	}
	if got := c.Backoff(); got != 5*time.Millisecond {
		t.Errorf("backoff = %v", got)
	}
	if got := c.Hedge(); got != 40*time.Millisecond {
		t.Errorf("hedge = %v", got)
	}
	// Retries -1 means "no retries at all", distinct from the unset
	// default of one retry.
	c = Config{Retries: -1}
	if got := c.RetryBudget(); got != 0 {
		t.Errorf("retries=-1 budget = %d, want 0", got)
	}
}

func TestCellTokenRoundTrip(t *testing.T) {
	cells := []cellid.ID{
		cellid.Root(),
		cellid.FromIJ(0, 0, 1),
		cellid.FromIJ(3, 1, 2),
		cellid.FromIJ(1234, 4321, 15),
	}
	for _, c := range cells {
		tok := CellToken(c)
		got, err := ParseCell(tok)
		if err != nil {
			t.Fatalf("ParseCell(%q): %v", tok, err)
		}
		if got != c {
			t.Fatalf("round trip %q: got %v, want %v", tok, got, c)
		}
	}
	for _, tok := range []string{"", "zz", "0x0", "0", "18446744073709551616"} {
		if _, err := ParseCell(tok); err == nil {
			t.Errorf("ParseCell(%q) accepted", tok)
		}
	}
}

func TestRendezvousDeterminismAndSpread(t *testing.T) {
	cfg := &Config{Epoch: 1, Replication: 2, Nodes: threeNodes()}
	a1 := NewAssignment(cfg)
	a2 := NewAssignment(cfg)

	primaries := make(map[string]int)
	for i := uint32(0); i < 8; i++ {
		for j := uint32(0); j < 8; j++ {
			cell := cellid.FromIJ(i, j, 3)
			c1 := a1.Owners(cell)
			c2 := a2.Owners(cell)
			if len(c1) != 2 {
				t.Fatalf("chain length %d, want 2", len(c1))
			}
			if c1[0] == c1[1] {
				t.Fatalf("chain for %v repeats node %q", cell, c1[0].Name)
			}
			for k := range c1 {
				if c1[k] != c2[k] {
					t.Fatalf("assignment not deterministic for %v: %v vs %v", cell, c1, c2)
				}
			}
			primaries[c1[0].Name]++
		}
	}
	// 64 shards over 3 nodes: rendezvous should give every node a share.
	for _, n := range threeNodes() {
		if primaries[n.Name] == 0 {
			t.Errorf("node %q is primary for no shard: %v", n.Name, primaries)
		}
	}
}

func TestRendezvousStability(t *testing.T) {
	full := NewAssignment(&Config{Epoch: 1, Nodes: threeNodes()})
	reduced := NewAssignment(&Config{Epoch: 2, Nodes: threeNodes()[:2]})

	moved, kept := 0, 0
	for i := uint32(0); i < 8; i++ {
		for j := uint32(0); j < 8; j++ {
			cell := cellid.FromIJ(i, j, 3)
			before := full.Owners(cell)[0].Name
			after := reduced.Owners(cell)[0].Name
			if before == "c" {
				moved++
				continue
			}
			// Shards that did not live on the removed node must not move:
			// that is the point of rendezvous hashing.
			if before != after {
				t.Fatalf("shard %v moved %s -> %s though node c was not its primary", cell, before, after)
			}
			kept++
		}
	}
	if moved == 0 || kept == 0 {
		t.Fatalf("degenerate placement: moved=%d kept=%d", moved, kept)
	}
}

func TestReplicationClamp(t *testing.T) {
	a := NewAssignment(&Config{Epoch: 1, Replication: 9, Nodes: threeNodes()})
	if got := a.Replication(); got != 3 {
		t.Fatalf("replication clamped to %d, want 3", got)
	}
	chain := a.Owners(cellid.FromIJ(2, 2, 3))
	if len(chain) != 3 {
		t.Fatalf("chain length %d, want 3", len(chain))
	}
	a = NewAssignment(&Config{Epoch: 1, Nodes: threeNodes()})
	if got := a.Replication(); got != 1 {
		t.Fatalf("default replication = %d, want 1", got)
	}
}

func TestStaticOverride(t *testing.T) {
	cell := cellid.FromIJ(5, 5, 3)
	tok := CellToken(cell)
	cfg, err := Parse([]byte(fmt.Sprintf(
		`{"epoch":1,"replication":2,"nodes":[{"name":"a","addr":"x:1"},{"name":"b","addr":"x:2"},{"name":"c","addr":"x:3"}],"shards":{%q:["c","a"]}}`, tok)))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	a := NewAssignment(cfg)
	chain := a.Owners(cell)
	if len(chain) != 2 || chain[0].Name != "c" || chain[1].Name != "a" {
		t.Fatalf("static chain = %v, want [c a]", chain)
	}
	// A neighbouring cell without an override still places by hash.
	other := a.Owners(cellid.FromIJ(5, 6, 3))
	if len(other) != 2 {
		t.Fatalf("hashed chain length %d, want 2", len(other))
	}
}
