// Package cluster lifts the store's covering-split scatter-gather one
// level, from goroutines over local shards to HTTP requests over peer
// geoblocksd nodes.
//
// A cluster is a set of geoblocksd processes serving the same dataset
// builds. An assignment file (Config) maps each shard prefix cell to an
// ordered replica chain of nodes — statically, or by rendezvous hashing
// over the shard cell — and stamps the mapping with an epoch so peers
// can reject requests planned under a different generation.
//
// The Coordinator plans a query exactly like a single-node router: one
// pyramid level, one covering at that level, split into per-shard
// sub-coverings (store.PlanCover + store.ShardSubs). Sub-coverings whose
// shard this node owns are answered in process; the rest are batched per
// replica chain and sent to peers as POST /internal/v1/partial requests.
// Peers answer with serialized accumulator frames (core wire codec),
// which the coordinator decodes and merges with Accumulator.MergeFrom in
// ascending shard-cell order — the same merge tree as a single-node
// query, so cluster answers are bit-identical for COUNT/MIN/MAX and SUM
// stays within the DESIGN.md Sec. 6 reassociation bound. Level and
// error-bound reporting are data-independent (derived from the covering
// alone), so they are identical by construction.
//
// The Client tolerates peer faults: per-request timeouts, bounded
// retries with exponential backoff, hedged requests to later replicas
// after a configurable delay, and failover down the replica chain. A
// shard whose whole chain is exhausted fails the query with an
// UnavailableError naming every unreachable shard — a cluster answer is
// always complete or refused, never silently partial.
package cluster
