package cluster_test

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strings"
	"testing"

	"geoblocks"
	"geoblocks/internal/geom"
	"geoblocks/internal/store"
)

// TestClusterJoinEquivalence is the join's cluster equivalence battery:
// the coordinator computes one shared-grid plan and splits each
// polygon's planned covering across the peers; every per-polygon answer
// must be bit-identical to the single-node Join (and therefore to N
// sequential queries) — COUNT/MIN/MAX values, achieved level and error
// bound — across topologies and planner error budgets.
func TestClusterJoinEquivalence(t *testing.T) {
	const rows = 10_000
	combos := []struct {
		nodes, shardLevel int
	}{
		{1, 2},
		{2, 2},
		{3, 2},
	}
	for _, cb := range combos {
		t.Run(fmt.Sprintf("nodes=%d/shard=%d", cb.nodes, cb.shardLevel), func(t *testing.T) {
			opts := store.Options{Level: 12, ShardLevel: cb.shardLevel, PyramidLevels: 3}
			control := buildDataset(t, rows, 7, opts)
			tc := startCluster(t, cb.nodes, 2, rows, 7, opts, nil)
			co := tc.coord()
			ctx := context.Background()

			rng := rand.New(rand.NewSource(int64(9000 + cb.nodes)))
			var polys []*geom.Polygon
			for i := 0; i < 25; i++ {
				c := geom.Pt(rng.Float64()*100, rng.Float64()*100)
				if i%3 == 0 {
					c = geom.Pt(25+rng.NormFloat64()*8, 70+rng.NormFloat64()*8)
				}
				polys = append(polys, geoblocks.RegularPolygon(c, 0.5+rng.Float64()*18, 3+rng.Intn(8)))
			}
			// One polygon outside the domain: must answer the identity
			// result through the same path.
			polys = append(polys, geoblocks.RegularPolygon(geom.Pt(900, 900), 5, 6))

			for _, maxErr := range []float64{0, 0.2, 3.0} {
				qo := geoblocks.QueryOptions{MaxError: maxErr}
				wants, wantStats, err := control.Join(polys, qo, testReqs...)
				if err != nil {
					t.Fatalf("single-node join: %v", err)
				}
				gots, stats, err := co.Join(ctx, "taxi", polys, qo, testReqs)
				if err != nil {
					t.Fatalf("cluster join: %v", err)
				}
				if len(gots) != len(polys) {
					t.Fatalf("cluster join answered %d results for %d polygons", len(gots), len(polys))
				}
				for i := range gots {
					assertSame(t, gots[i], wants[i], fmt.Sprintf("join poly %d maxErr=%g", i, maxErr))
				}
				// The coordinator plans on an identical build, so the
				// shared-grid classification must agree with single-node.
				if stats.Polygons != wantStats.Polygons ||
					stats.GridLevel != wantStats.GridLevel ||
					stats.InteriorPairs != wantStats.InteriorPairs ||
					stats.BoundaryPairs != wantStats.BoundaryPairs ||
					stats.Fallbacks != wantStats.Fallbacks {
					t.Fatalf("cluster join stats %+v, single-node %+v", stats, wantStats)
				}
			}

			if cb.nodes >= 3 && co.Stats().RemoteCalls == 0 {
				t.Errorf("join exercised no remote calls in a %d-node topology", cb.nodes)
			}
		})
	}
}

// TestClusterJoinHTTP drives /v1/join through a coordinator node's HTTP
// handler: the cluster tail must answer both the polygon and window
// forms and agree with the control dataset.
func TestClusterJoinHTTP(t *testing.T) {
	const rows = 8_000
	opts := store.Options{Level: 12, ShardLevel: 2}
	control := buildDataset(t, rows, 7, opts)
	tc := startCluster(t, 3, 2, rows, 7, opts, nil)

	body := `{"dataset":"taxi","polygons":[
		[[20,60],[40,60],[40,80],[20,80]],
		[[10,10],[30,10],[30,30],[10,30]]
	],"aggs":[{"func":"count"},{"func":"sum","col":"ival"}]}`
	resp, err := http.Post(tc.nodes[0].srv.URL+"/v1/join", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/join: %v", err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var jr struct {
		Results []struct {
			Count  uint64    `json:"count"`
			Values []float64 `json:"values"`
		} `json:"results"`
		Stats struct {
			Polygons int `json:"polygons"`
		} `json:"stats"`
	}
	if err := json.Unmarshal(data, &jr); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if len(jr.Results) != 2 || jr.Stats.Polygons != 2 {
		t.Fatalf("join answered %d results, stats %+v: %s", len(jr.Results), jr.Stats, data)
	}
	rings := [][]geom.Point{
		{geom.Pt(20, 60), geom.Pt(40, 60), geom.Pt(40, 80), geom.Pt(20, 80)},
		{geom.Pt(10, 10), geom.Pt(30, 10), geom.Pt(30, 30), geom.Pt(10, 30)},
	}
	for i, ring := range rings {
		want, err := control.Query(geom.NewPolygon(ring), testReqs[:2]...)
		if err != nil {
			t.Fatalf("control query %d: %v", i, err)
		}
		if jr.Results[i].Count != want.Count {
			t.Errorf("result %d: count %d over HTTP, control %d", i, jr.Results[i].Count, want.Count)
		}
		if jr.Results[i].Values[1] != want.Values[1] {
			t.Errorf("result %d: sum %v over HTTP, control %v", i, jr.Results[i].Values[1], want.Values[1])
		}
	}

	wBody := `{"dataset":"taxi","window":{"rect":[0,0,100,100],"nx":3,"ny":2},"aggs":[{"func":"count"}]}`
	wResp, err := http.Post(tc.nodes[0].srv.URL+"/v1/join", "application/json", strings.NewReader(wBody))
	if err != nil {
		t.Fatalf("POST window join: %v", err)
	}
	defer wResp.Body.Close()
	wData, _ := io.ReadAll(wResp.Body)
	if wResp.StatusCode != http.StatusOK {
		t.Fatalf("window status %d: %s", wResp.StatusCode, wData)
	}
	var wr struct {
		Results []struct {
			Count uint64 `json:"count"`
		} `json:"results"`
	}
	if err := json.Unmarshal(wData, &wr); err != nil {
		t.Fatalf("unmarshal window: %v", err)
	}
	if len(wr.Results) != 6 {
		t.Fatalf("3x2 window answered %d results", len(wr.Results))
	}
	var total uint64
	for _, r := range wr.Results {
		total += r.Count
	}
	// Tiles answer at cell granularity and share edges, so boundary
	// cells may count toward both neighbours: the sum covers every row
	// at least once.
	if total < uint64(rows) {
		t.Errorf("full-bound window tiles sum to %d rows, dataset has %d", total, rows)
	}
}

// TestClusterJoinUnknownDataset: the join fails up front on an
// unregistered dataset, before any plan work.
func TestClusterJoinUnknownDataset(t *testing.T) {
	tc := startCluster(t, 1, 1, 1_000, 3, store.Options{Level: 10, ShardLevel: 1}, nil)
	poly := geoblocks.RegularPolygon(geom.Pt(50, 50), 10, 6)
	if _, _, err := tc.coord().Join(context.Background(), "nope", []*geom.Polygon{poly}, geoblocks.QueryOptions{}, testReqs); err == nil {
		t.Fatal("join against unknown dataset succeeded")
	}
}
