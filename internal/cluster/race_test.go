package cluster_test

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"geoblocks"
	"geoblocks/internal/cluster"
	"geoblocks/internal/geom"
	"geoblocks/internal/httpapi"
	"geoblocks/internal/store"
)

// uniformPts generates n points strictly inside the test bound (no
// build-time outlier cleaning applies), with deterministic columns.
func uniformPts(n int, seed int64) ([]geom.Point, [][]float64) {
	rng := rand.New(rand.NewSource(seed))
	pts := make([]geom.Point, n)
	ints := make([]float64, n)
	floats := make([]float64, n)
	for i := range pts {
		pts[i] = geom.Pt(rng.Float64()*100, rng.Float64()*100)
		ints[i] = float64(rng.Intn(1000))
		floats[i] = rng.NormFloat64()
	}
	return pts, [][]float64{ints, floats}
}

// TestClusterStress runs the cluster under concurrent load with chaos:
// queries through the coordinator race with ingest on every replica,
// simulated peer outages (dropped connections and killed in-flight
// requests) and live assignment reloads. Meant for -race. Invariants:
// most queries succeed (the only tolerated failure is a typed
// unavailability while an outage window straddles both replicas of a
// chain), reads through the coordinator observe every acknowledged
// write, and after the chaos stops a rolling epoch bump leaves a
// healthy cluster.
func TestClusterStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test skipped in -short mode")
	}
	const rows = 6000
	const seed = 31
	opts := store.Options{Level: 12, ShardLevel: 2, PyramidLevels: 2}

	cfg := &cluster.Config{Epoch: 1, Replication: 2, TimeoutMS: 2000, Retries: 1, BackoffMS: 1, HedgeMS: 20}

	type peer struct {
		ds    *store.Dataset
		co    *cluster.Coordinator
		srv   *httptest.Server
		proxy *flakyProxy
	}
	var peers []*peer

	// Node 0 is the coordinator and a data node, reached in process.
	// Nodes 1 and 2 sit behind flaky proxies so the chaos worker can
	// take them off the network without tearing down listeners.
	stores := make([]*store.Store, 3)
	for i := 0; i < 3; i++ {
		stores[i] = store.New()
		ds := buildDataset(t, rows, seed, opts)
		if err := stores[i].Add(ds); err != nil {
			t.Fatalf("Add: %v", err)
		}
		peers = append(peers, &peer{ds: ds})
	}
	for i := 1; i <= 2; i++ {
		name := fmt.Sprintf("n%d", i)
		co, err := cluster.New(stores[i], &cluster.Config{Epoch: 1, Nodes: []cluster.Node{{Name: name, Addr: "unused:1"}}}, name)
		if err != nil {
			t.Fatalf("peer %s: %v", name, err)
		}
		peers[i].co = co
		peers[i].srv = httptest.NewServer(httpapi.NewHandler(stores[i], httpapi.Config{Cluster: co}))
		t.Cleanup(peers[i].srv.Close)
		peers[i].proxy = newFlakyProxy(t, peers[i].srv.Listener.Addr().String())
	}
	cfg.Nodes = []cluster.Node{
		{Name: "n0", Addr: "127.0.0.1:1"}, // never dialed: the coordinator answers its own shards in process
		{Name: "n1", Addr: peers[1].proxy.addr()},
		{Name: "n2", Addr: peers[2].proxy.addr()},
	}
	co, err := cluster.New(stores[0], cfg, "n0")
	if err != nil {
		t.Fatalf("coordinator: %v", err)
	}
	peers[0].co = co

	ctx := context.Background()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var successes, unavailable atomic.Uint64

	tolerate := func(err error) bool {
		var ue *cluster.UnavailableError
		return errors.As(err, &ue)
	}

	// Query workers: random polygons and rectangles at mixed error
	// budgets.
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + w)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				qo := geoblocks.QueryOptions{MaxError: []float64{0, 0.3, 3}[rng.Intn(3)]}
				var err error
				if rng.Intn(2) == 0 {
					poly := geoblocks.RegularPolygon(geom.Pt(rng.Float64()*100, rng.Float64()*100), 2+rng.Float64()*30, 5)
					_, err = co.Query(ctx, "taxi", poly, qo, testReqs)
				} else {
					r := geom.RectFromCenter(geom.Pt(rng.Float64()*100, rng.Float64()*100), 5+rng.Float64()*40, 5+rng.Float64()*40)
					_, err = co.QueryRect(ctx, "taxi", r, qo, testReqs)
				}
				switch {
				case err == nil:
					successes.Add(1)
				case tolerate(err):
					unavailable.Add(1)
				default:
					t.Errorf("query worker %d: %v", w, err)
					return
				}
			}
		}(w)
	}

	// Single writer: ingest the same batch on every replica, then read
	// it back through the coordinator. The count must reflect every
	// acknowledged batch — read-your-writes across the wire.
	wg.Add(1)
	go func() {
		defer wg.Done()
		full := geom.Rect{Min: geom.Pt(0, 0), Max: geom.Pt(100, 100)}
		countThrough := func() (uint64, error) {
			for try := 0; ; try++ {
				res, err := co.QueryRect(ctx, "taxi", full, geoblocks.QueryOptions{}, []geoblocks.AggRequest{geoblocks.Count()})
				if err == nil {
					return res.Count, nil
				}
				if !tolerate(err) || try >= 20 {
					return 0, err
				}
				time.Sleep(5 * time.Millisecond)
			}
		}
		base, err := countThrough()
		if err != nil {
			t.Errorf("writer: initial count: %v", err)
			return
		}
		var written uint64
		for batch := int64(0); ; batch++ {
			select {
			case <-stop:
				return
			default:
			}
			pts, cols := uniformPts(50, 9000+batch)
			for i, p := range peers {
				if _, err := p.ds.Ingest(pts, cols); err != nil {
					t.Errorf("writer: ingest on node %d: %v", i, err)
					return
				}
			}
			written += 50
			got, err := countThrough()
			if err != nil {
				t.Errorf("writer: count after batch %d: %v", batch, err)
				return
			}
			if got != base+written {
				t.Errorf("read-your-writes violated: count %d, want %d after %d batches", got, base+written, batch+1)
				return
			}
		}
	}()

	// Chaos: alternate outage windows on the two remote peers — drop new
	// connections at the proxy and kill in-flight requests on the real
	// server — so retries, hedges and failovers all fire under load.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			p := peers[1+(i%2)]
			p.proxy.arm("drop", -1, 0)
			p.srv.CloseClientConnections()
			time.Sleep(25 * time.Millisecond)
			p.proxy.arm("ok", 0, 0)
			time.Sleep(20 * time.Millisecond)
		}
	}()

	// Reload worker: live same-epoch retunes of the assignment under
	// running queries.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			tuned := *cfg
			tuned.TimeoutMS = []int{1500, 2000}[i%2]
			tuned.HedgeMS = []int{10, 20}[i%2]
			if err := co.Reload(&tuned); err != nil {
				t.Errorf("reload: %v", err)
				return
			}
			time.Sleep(15 * time.Millisecond)
		}
	}()

	time.Sleep(700 * time.Millisecond)
	close(stop)
	wg.Wait()

	if s := successes.Load(); s == 0 {
		t.Fatalf("no successful queries under chaos (unavailable: %d)", unavailable.Load())
	}
	stats := co.Stats()
	var disturbed uint64
	for _, p := range stats.Peers {
		disturbed += p.Errors + p.Failovers + p.Retries + p.Hedges
	}
	if disturbed == 0 {
		t.Errorf("chaos had no observable effect on peer counters: %+v", stats.Peers)
	}

	// Rolling epoch bump after the storm: peers first, coordinator last,
	// then the cluster must be healthy at the new epoch.
	bumped := *cfg
	bumped.Epoch = 2
	for i := 1; i <= 2; i++ {
		peerCfg := cluster.Config{Epoch: 2, Nodes: []cluster.Node{{Name: fmt.Sprintf("n%d", i), Addr: "unused:1"}}}
		if err := peers[i].co.Reload(&peerCfg); err != nil {
			t.Fatalf("peer %d epoch bump: %v", i, err)
		}
		peers[i].proxy.arm("ok", 0, 0)
	}
	if err := co.Reload(&bumped); err != nil {
		t.Fatalf("coordinator epoch bump: %v", err)
	}
	if got := co.Epoch(); got != 2 {
		t.Fatalf("coordinator epoch = %d, want 2", got)
	}
	full := geom.Rect{Min: geom.Pt(0, 0), Max: geom.Pt(100, 100)}
	if _, err := co.QueryRect(ctx, "taxi", full, geoblocks.QueryOptions{}, testReqs); err != nil {
		t.Fatalf("query after epoch bump: %v", err)
	}
}
