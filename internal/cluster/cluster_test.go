// Package cluster_test proves the cluster scatter-gather against the
// single-node engine: same rows, same build options, the coordinator's
// answer must be bit-identical to the local router's for COUNT/MIN/MAX
// (SUM exact here because the summed column is integer-valued, per
// DESIGN.md Sec. 6), with identical achieved level and error bound.
package cluster_test

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"net"
	"net/http/httptest"
	"testing"

	"geoblocks"
	"geoblocks/internal/cluster"
	"geoblocks/internal/geom"
	"geoblocks/internal/httpapi"
	"geoblocks/internal/store"
)

var testBound = geom.Rect{Min: geom.Pt(0, 0), Max: geom.Pt(100, 100)}

var testReqs = []geoblocks.AggRequest{
	geoblocks.Count(),
	geoblocks.Sum("ival"),
	geoblocks.Min("fval"),
	geoblocks.Max("fval"),
	geoblocks.Avg("ival"),
}

// testRows mirrors the store suite's generator: clustered points, one
// integer-valued column (exact float sums) and one continuous column.
func testRows(n int, seed int64) ([]geom.Point, [][]float64) {
	rng := rand.New(rand.NewSource(seed))
	pts := make([]geom.Point, n)
	ints := make([]float64, n)
	floats := make([]float64, n)
	for i := range pts {
		if i%3 == 0 {
			pts[i] = geom.Pt(25+rng.NormFloat64()*8, 70+rng.NormFloat64()*8)
		} else {
			pts[i] = geom.Pt(rng.Float64()*100, rng.Float64()*100)
		}
		ints[i] = math.Floor(rng.Float64() * 1000)
		floats[i] = rng.NormFloat64() * 42
	}
	return pts, [][]float64{ints, floats}
}

func buildDataset(t *testing.T, rows int, seed int64, opts store.Options) *store.Dataset {
	t.Helper()
	pts, cols := testRows(rows, seed)
	d, err := store.Build("taxi", testBound, geoblocks.NewSchema("ival", "fval"), pts, cols, opts)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return d
}

// assertSame requires full result agreement: count, every aggregate
// value (NaN matches NaN), the achieved pyramid level and the bitwise
// error bound.
func assertSame(t *testing.T, got, want geoblocks.Result, label string) {
	t.Helper()
	if got.Count != want.Count {
		t.Errorf("%s: count = %d, want %d", label, got.Count, want.Count)
	}
	if len(got.Values) != len(want.Values) {
		t.Fatalf("%s: %d values, want %d", label, len(got.Values), len(want.Values))
	}
	for i, v := range got.Values {
		w := want.Values[i]
		if math.IsNaN(v) && math.IsNaN(w) {
			continue
		}
		if v != w {
			t.Errorf("%s: value[%d] = %v, want %v", label, i, v, w)
		}
	}
	if got.Level != want.Level {
		t.Errorf("%s: level = %d, want %d", label, got.Level, want.Level)
	}
	if math.Float64bits(got.ErrorBound) != math.Float64bits(want.ErrorBound) {
		t.Errorf("%s: error bound = %v, want %v (not bit-identical)", label, got.ErrorBound, want.ErrorBound)
	}
}

// testNode is one cluster member: its own store holding an identical
// build of the dataset, a coordinator bound to its name, and a live
// HTTP server on the address the assignment advertises.
type testNode struct {
	name string
	addr string
	st   *store.Store
	ds   *store.Dataset
	co   *cluster.Coordinator
	srv  *httptest.Server
}

type testCluster struct {
	cfg   *cluster.Config
	nodes []*testNode
}

// coord is the querying node: node 0 runs with Coordinator routing on.
func (tc *testCluster) coord() *cluster.Coordinator { return tc.nodes[0].co }

// startCluster brings up n nodes, each a full replica built from the
// same rows. Listener addresses are reserved before the assignment is
// written so the config can name them.
func startCluster(t *testing.T, n int, replication, rows int, seed int64, opts store.Options, tune func(*cluster.Config)) *testCluster {
	t.Helper()
	lns := make([]net.Listener, n)
	cfg := &cluster.Config{Epoch: 1, Replication: replication}
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("listen: %v", err)
		}
		lns[i] = ln
		cfg.Nodes = append(cfg.Nodes, cluster.Node{
			Name: fmt.Sprintf("n%d", i),
			Addr: ln.Addr().String(),
		})
	}
	if tune != nil {
		tune(cfg)
	}
	tc := &testCluster{cfg: cfg}
	for i := 0; i < n; i++ {
		st := store.New()
		ds := buildDataset(t, rows, seed, opts)
		if err := st.Add(ds); err != nil {
			t.Fatalf("Add: %v", err)
		}
		co, err := cluster.New(st, cfg, cfg.Nodes[i].Name)
		if err != nil {
			t.Fatalf("cluster.New(%s): %v", cfg.Nodes[i].Name, err)
		}
		h := httpapi.NewHandler(st, httpapi.Config{Cluster: co, Coordinator: i == 0})
		srv := httptest.NewUnstartedServer(h)
		srv.Listener.Close()
		srv.Listener = lns[i]
		srv.Start()
		tc.nodes = append(tc.nodes, &testNode{
			name: cfg.Nodes[i].Name,
			addr: cfg.Nodes[i].Addr,
			st:   st,
			ds:   ds,
			co:   co,
			srv:  srv,
		})
	}
	t.Cleanup(func() {
		for _, n := range tc.nodes {
			n.srv.Close()
		}
	})
	return tc
}

// TestClusterEquivalence is the randomized cluster-vs-single-node
// property suite: across topologies, shard levels and planner error
// budgets, the coordinator's scatter-gather must reproduce the local
// router's answers exactly — including the achieved level and the
// error_bound field.
func TestClusterEquivalence(t *testing.T) {
	const rows = 10_000
	combos := []struct {
		nodes, shardLevel int
	}{
		{1, 1},
		{2, 1},
		{2, 3},
		{3, 2},
	}
	maxErrors := []float64{0, 0.2, 3.0}
	for _, cb := range combos {
		t.Run(fmt.Sprintf("nodes=%d/shard=%d", cb.nodes, cb.shardLevel), func(t *testing.T) {
			opts := store.Options{Level: 12, ShardLevel: cb.shardLevel, PyramidLevels: 3}
			control := buildDataset(t, rows, 7, opts)
			tc := startCluster(t, cb.nodes, 2, rows, 7, opts, nil)
			co := tc.coord()
			ctx := context.Background()

			rng := rand.New(rand.NewSource(int64(1000 + cb.nodes*10 + cb.shardLevel)))
			var polys []*geom.Polygon
			for i := 0; i < 10; i++ {
				c := geom.Pt(rng.Float64()*100, rng.Float64()*100)
				polys = append(polys, geoblocks.RegularPolygon(c, 1+rng.Float64()*30, 3+rng.Intn(8)))
			}
			var rects []geom.Rect
			for i := 0; i < 6; i++ {
				rects = append(rects, geom.RectFromCenter(
					geom.Pt(rng.Float64()*100, rng.Float64()*100),
					1+rng.Float64()*40, 1+rng.Float64()*40))
			}

			for _, maxErr := range maxErrors {
				qo := geoblocks.QueryOptions{MaxError: maxErr}
				for i, poly := range polys {
					want, err := control.QueryOpts(poly, qo, testReqs...)
					if err != nil {
						t.Fatalf("control poly %d: %v", i, err)
					}
					got, err := co.Query(ctx, "taxi", poly, qo, testReqs)
					if err != nil {
						t.Fatalf("cluster poly %d: %v", i, err)
					}
					assertSame(t, got, want, fmt.Sprintf("poly %d maxErr=%g", i, maxErr))
					if maxErr == 3.0 && got.Level >= 12 {
						t.Errorf("poly %d: maxErr=3.0 answered at level %d; pyramid not exercised", i, got.Level)
					}
				}
				for i, r := range rects {
					want, err := control.QueryRectOpts(r, qo, testReqs...)
					if err != nil {
						t.Fatalf("control rect %d: %v", i, err)
					}
					got, err := co.QueryRect(ctx, "taxi", r, qo, testReqs)
					if err != nil {
						t.Fatalf("cluster rect %d: %v", i, err)
					}
					assertSame(t, got, want, fmt.Sprintf("rect %d maxErr=%g", i, maxErr))
				}
				wants, err := control.QueryBatchOpts(polys[:5], qo, testReqs...)
				if err != nil {
					t.Fatalf("control batch: %v", err)
				}
				gots, err := co.QueryBatch(ctx, "taxi", polys[:5], qo, testReqs)
				if err != nil {
					t.Fatalf("cluster batch: %v", err)
				}
				if len(gots) != len(wants) {
					t.Fatalf("batch answered %d results, want %d", len(gots), len(wants))
				}
				for i := range gots {
					assertSame(t, gots[i], wants[i], fmt.Sprintf("batch %d maxErr=%g", i, maxErr))
				}
			}

			stats := co.Stats()
			if cb.nodes >= 3 && stats.RemoteCalls == 0 {
				// With replication 2 over >= 3 nodes some chains must
				// exclude the coordinator, so the wire is exercised.
				t.Errorf("no remote calls in a %d-node topology: %+v", cb.nodes, stats)
			}
			if stats.Queries == 0 {
				t.Errorf("coordinator counted no queries")
			}
		})
	}
}

// TestClusterIdentity: a query whose covering misses every shard must
// answer the identity result through the coordinator exactly as the
// local router does.
func TestClusterIdentity(t *testing.T) {
	opts := store.Options{Level: 12, ShardLevel: 2}
	control := buildDataset(t, 2000, 11, opts)
	tc := startCluster(t, 2, 1, 2000, 11, opts, nil)

	poly := geoblocks.RegularPolygon(geom.Pt(-50, -50), 3, 6)
	want, err := control.QueryOpts(poly, geoblocks.QueryOptions{}, testReqs...)
	if err != nil {
		t.Fatalf("control: %v", err)
	}
	got, err := tc.coord().Query(context.Background(), "taxi", poly, geoblocks.QueryOptions{}, testReqs)
	if err != nil {
		t.Fatalf("cluster: %v", err)
	}
	assertSame(t, got, want, "identity query")
	if got.Count != 0 {
		t.Fatalf("identity query counted %d rows", got.Count)
	}
}

// TestClusterPureRouter: a coordinator that is not itself a data node
// (self = "") answers every shard remotely and still matches the
// control bit for bit.
func TestClusterPureRouter(t *testing.T) {
	const rows = 6000
	opts := store.Options{Level: 12, ShardLevel: 2}
	tc := startCluster(t, 2, 2, rows, 13, opts, nil)

	// The router holds its own identical build for planning and frame
	// decoding, but is absent from the assignment's node list.
	st := store.New()
	if err := st.Add(buildDataset(t, rows, 13, opts)); err != nil {
		t.Fatalf("Add: %v", err)
	}
	router, err := cluster.New(st, tc.cfg, "")
	if err != nil {
		t.Fatalf("cluster.New(router): %v", err)
	}

	control := buildDataset(t, rows, 13, opts)
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 10; i++ {
		poly := geoblocks.RegularPolygon(
			geom.Pt(rng.Float64()*100, rng.Float64()*100), 2+rng.Float64()*25, 4)
		want, err := control.QueryOpts(poly, geoblocks.QueryOptions{}, testReqs...)
		if err != nil {
			t.Fatalf("control %d: %v", i, err)
		}
		got, err := router.Query(context.Background(), "taxi", poly, geoblocks.QueryOptions{}, testReqs)
		if err != nil {
			t.Fatalf("router %d: %v", i, err)
		}
		assertSame(t, got, want, fmt.Sprintf("router poly %d", i))
	}
	stats := router.Stats()
	if stats.LocalParts != 0 {
		t.Errorf("pure router answered %d partials locally", stats.LocalParts)
	}
	if stats.RemoteCalls == 0 {
		t.Errorf("pure router made no remote calls")
	}
}

// TestClusterReadYourWrites: rows ingested on the replicas are visible
// through the coordinator immediately — the peer partial path includes
// the shard ingest delta exactly like local queries.
func TestClusterReadYourWrites(t *testing.T) {
	const rows = 4000
	opts := store.Options{Level: 12, ShardLevel: 2}
	control := buildDataset(t, rows, 17, opts)
	tc := startCluster(t, 2, 1, rows, 17, opts, nil)

	pts, cols := testRows(500, 4242)
	for _, n := range tc.nodes {
		if _, err := n.ds.Ingest(pts, cols); err != nil {
			t.Fatalf("ingest on %s: %v", n.name, err)
		}
	}
	if _, err := control.Ingest(pts, cols); err != nil {
		t.Fatalf("ingest on control: %v", err)
	}

	r := geom.Rect{Min: geom.Pt(0, 0), Max: geom.Pt(100, 100)}
	want, err := control.QueryRectOpts(r, geoblocks.QueryOptions{}, testReqs...)
	if err != nil {
		t.Fatalf("control: %v", err)
	}
	got, err := tc.coord().QueryRect(context.Background(), "taxi", r, geoblocks.QueryOptions{}, testReqs)
	if err != nil {
		t.Fatalf("cluster: %v", err)
	}
	assertSame(t, got, want, "read-your-writes")
	if got.Count != uint64(rows+500) {
		t.Fatalf("count = %d, want %d (ingested rows missing)", got.Count, rows+500)
	}
}

// TestClusterEpochMismatch: peers reject partials planned under a
// different assignment epoch, and the coordinator surfaces that as a
// typed unavailability instead of a silent partial answer.
func TestClusterEpochMismatch(t *testing.T) {
	opts := store.Options{Level: 12, ShardLevel: 2}
	tc := startCluster(t, 2, 1, 3000, 19, opts, func(c *cluster.Config) {
		c.Retries = -1 // epoch conflicts are fatal; no point retrying
	})

	// Bump only the coordinator's epoch: every remote chain now answers
	// 409 stale_assignment_epoch.
	bumped := *tc.cfg
	bumped.Epoch = 2
	if err := tc.nodes[0].co.Reload(&bumped); err != nil {
		t.Fatalf("reload coordinator: %v", err)
	}
	r := geom.Rect{Min: geom.Pt(0, 0), Max: geom.Pt(100, 100)}
	_, err := tc.coord().QueryRect(context.Background(), "taxi", r, geoblocks.QueryOptions{}, testReqs)
	var ue *cluster.UnavailableError
	if !errors.As(err, &ue) {
		t.Fatalf("mismatched epoch query error = %v, want UnavailableError", err)
	}
	if len(ue.Shards) == 0 {
		t.Fatalf("UnavailableError names no shards")
	}

	// Rolling the peers forward to the same epoch heals the cluster.
	for _, n := range tc.nodes[1:] {
		if err := n.co.Reload(&bumped); err != nil {
			t.Fatalf("reload %s: %v", n.name, err)
		}
	}
	if _, err := tc.coord().QueryRect(context.Background(), "taxi", r, geoblocks.QueryOptions{}, testReqs); err != nil {
		t.Fatalf("query after rolling reload: %v", err)
	}
}
