package cluster

import (
	"fmt"
	"strings"

	"geoblocks"
	"geoblocks/internal/cellid"
)

// CodecVersion is the accumulator frame version this build speaks
// (internal/core wire codec). It rides in every partial request so a
// mixed-version cluster fails loudly at the envelope instead of deep in
// frame parsing.
const CodecVersion = 1

// AggJSON is the wire form of one aggregate request, mirroring the
// public query API's spelling ("count", "sum", "min", "max", "avg" over
// a named column).
type AggJSON struct {
	Func string `json:"func"`
	Col  string `json:"col,omitempty"`
}

// ToRequest resolves the wire form into an AggRequest.
func (a AggJSON) ToRequest() (geoblocks.AggRequest, error) {
	switch a.Func {
	case "count":
		return geoblocks.Count(), nil
	case "sum":
		return geoblocks.Sum(a.Col), nil
	case "min":
		return geoblocks.Min(a.Col), nil
	case "max":
		return geoblocks.Max(a.Col), nil
	case "avg":
		return geoblocks.Avg(a.Col), nil
	}
	return geoblocks.AggRequest{}, fmt.Errorf("unknown aggregate function %q", a.Func)
}

// AggsFromRequests converts resolved requests back to wire form for the
// coordinator side. It relies on AggRequest.String()'s canonical
// spelling ("count", "sum(col)").
func AggsFromRequests(reqs []geoblocks.AggRequest) []AggJSON {
	out := make([]AggJSON, len(reqs))
	for i, r := range reqs {
		s := r.String()
		if open := strings.IndexByte(s, '('); open >= 0 {
			out[i] = AggJSON{Func: s[:open], Col: s[open+1 : len(s)-1]}
		} else {
			out[i] = AggJSON{Func: s}
		}
	}
	return out
}

// ShardReq is one scatter unit on the wire: a shard prefix cell and the
// sub-covering it must answer, as hex cell tokens.
type ShardReq struct {
	Cell  string   `json:"cell"`
	Cover []string `json:"cover"`
}

// PartialRequest is the body of POST /internal/v1/partial: answer these
// shards' sub-coverings at this grid level as accumulator partials. The
// epoch pins the assignment generation the coordinator planned under.
type PartialRequest struct {
	Dataset      string     `json:"dataset"`
	CodecVersion int        `json:"codec_version"`
	Epoch        uint64     `json:"epoch"`
	Level        int        `json:"level"`
	Aggs         []AggJSON  `json:"aggs"`
	Shards       []ShardReq `json:"shards"`
	// NoCache propagates the query's DisableCache option so a
	// measurement query bypasses caches cluster-wide.
	NoCache bool `json:"no_cache,omitempty"`
}

// ShardPartialResp carries one shard's serialized accumulator frame
// (base64 via encoding/json's []byte rule).
type ShardPartialResp struct {
	Cell    string `json:"cell"`
	Partial []byte `json:"partial"`
}

// PartialResponse is the success body of POST /internal/v1/partial.
// Shards echo the request order. Level echoes the executed grid level;
// ErrorBound is the guaranteed bound of the union of the request's
// sub-coverings (informational — the coordinator derives the query-wide
// bound from its own full covering).
type PartialResponse struct {
	Dataset    string             `json:"dataset"`
	Epoch      uint64             `json:"epoch"`
	Level      int                `json:"level"`
	ErrorBound float64            `json:"error_bound"`
	Shards     []ShardPartialResp `json:"shards"`
}

// Error codes carried in peer error bodies (httpapi errorResponse.Code),
// the machine-readable half of typed 4xx/5xx answers.
const (
	CodeBadRequest     = "bad_request"
	CodeCodecMismatch  = "codec_version_mismatch"
	CodeUnknownDataset = "unknown_dataset"
	CodeUnknownShard   = "unknown_shard"
	CodeStaleEpoch     = "stale_assignment_epoch"
	CodeBadLevel       = "unservable_level"
	CodeUnavailable    = "shards_unavailable"
)

// EncodeCells formats a sub-covering as wire tokens.
func EncodeCells(cells []cellid.ID) []string {
	out := make([]string, len(cells))
	for i, c := range cells {
		out[i] = CellToken(c)
	}
	return out
}

// DecodeCells parses wire tokens into cell ids, enforcing the covering
// contract the accumulator kernel assumes: every id valid, strictly
// ascending (which implies disjoint for a well-formed covering).
func DecodeCells(toks []string) ([]cellid.ID, error) {
	out := make([]cellid.ID, len(toks))
	for i, tok := range toks {
		id, err := ParseCell(tok)
		if err != nil {
			return nil, err
		}
		if i > 0 && id <= out[i-1] {
			return nil, fmt.Errorf("covering not strictly ascending at %q", tok)
		}
		out[i] = id
	}
	return out, nil
}
