package cluster

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"sort"
	"strconv"
	"time"

	"geoblocks/internal/cellid"
)

// Node is one cluster member: a stable name (the identity shards hash
// onto — survives address changes) and the HTTP address it serves on.
type Node struct {
	Name string `json:"name"`
	Addr string `json:"addr"`
}

// Config is the assignment file format (cmd/geoblocksd -cluster-config;
// see docs/OPERATIONS.md for the runbook). Every node of a cluster
// loads the same file; the coordinator additionally uses the client
// tuning fields.
type Config struct {
	// Epoch versions the assignment. Strictly positive; bump it on every
	// edit. Peers reject partial requests planned under a different
	// epoch, so a half-rolled-out assignment change fails loudly instead
	// of silently double- or zero-counting shards.
	Epoch uint64 `json:"epoch"`
	// Replication is the length of each shard's replica chain (default
	// 1, clamped to the node count). The first node of a chain is the
	// shard's primary; later nodes serve hedged and failover requests.
	Replication int `json:"replication,omitempty"`
	// Nodes lists the cluster members. Order is irrelevant — placement
	// uses rendezvous hashing over (node name, shard cell), so adding or
	// removing one node only moves the shards that touched it.
	Nodes []Node `json:"nodes"`
	// Shards optionally pins specific shard cells (hex cell tokens, e.g.
	// "0x4c00000000000000") to explicit replica chains of node names,
	// overriding the hash for those cells.
	Shards map[string][]string `json:"shards,omitempty"`

	// TimeoutMS bounds each partial request attempt (default 2000).
	TimeoutMS int `json:"timeout_ms,omitempty"`
	// Retries is the per-replica retry budget after the first attempt
	// (default 1); retries back off exponentially from BackoffMS.
	Retries int `json:"retries,omitempty"`
	// BackoffMS is the initial retry backoff (default 25).
	BackoffMS int `json:"backoff_ms,omitempty"`
	// HedgeMS, when positive, starts a hedged request on the next
	// replica after this many milliseconds without an answer; 0 disables
	// hedging (later replicas serve only as failover).
	HedgeMS int `json:"hedge_ms,omitempty"`
}

// validate checks structural invariants shared by every node.
func (c *Config) validate() error {
	if c.Epoch == 0 {
		return fmt.Errorf("cluster: assignment epoch must be positive")
	}
	if len(c.Nodes) == 0 {
		return fmt.Errorf("cluster: assignment lists no nodes")
	}
	seen := make(map[string]bool, len(c.Nodes))
	for _, n := range c.Nodes {
		if n.Name == "" || n.Addr == "" {
			return fmt.Errorf("cluster: node entries need both name and addr (got name=%q addr=%q)", n.Name, n.Addr)
		}
		if seen[n.Name] {
			return fmt.Errorf("cluster: duplicate node name %q", n.Name)
		}
		seen[n.Name] = true
	}
	if c.Replication < 0 {
		return fmt.Errorf("cluster: negative replication %d", c.Replication)
	}
	for tok, chain := range c.Shards {
		if _, err := ParseCell(tok); err != nil {
			return fmt.Errorf("cluster: static shard key %q: %w", tok, err)
		}
		if len(chain) == 0 {
			return fmt.Errorf("cluster: static shard %q has an empty replica chain", tok)
		}
		for _, name := range chain {
			if !seen[name] {
				return fmt.Errorf("cluster: static shard %q names unknown node %q", tok, name)
			}
		}
	}
	return nil
}

// Timeout returns the per-attempt timeout.
func (c *Config) Timeout() time.Duration {
	if c.TimeoutMS <= 0 {
		return 2 * time.Second
	}
	return time.Duration(c.TimeoutMS) * time.Millisecond
}

// Backoff returns the initial retry backoff.
func (c *Config) Backoff() time.Duration {
	if c.BackoffMS <= 0 {
		return 25 * time.Millisecond
	}
	return time.Duration(c.BackoffMS) * time.Millisecond
}

// Hedge returns the hedge delay, 0 when hedging is disabled.
func (c *Config) Hedge() time.Duration {
	if c.HedgeMS <= 0 {
		return 0
	}
	return time.Duration(c.HedgeMS) * time.Millisecond
}

// RetryBudget returns the per-replica retry count.
func (c *Config) RetryBudget() int {
	if c.Retries < 0 {
		return 0
	}
	if c.Retries == 0 {
		return 1
	}
	return c.Retries
}

// Parse decodes and validates an assignment config.
func Parse(data []byte) (*Config, error) {
	var c Config
	if err := json.Unmarshal(data, &c); err != nil {
		return nil, fmt.Errorf("cluster: parsing assignment: %w", err)
	}
	if err := c.validate(); err != nil {
		return nil, err
	}
	return &c, nil
}

// LoadFile reads and parses an assignment config file.
func LoadFile(path string) (*Config, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("cluster: reading assignment: %w", err)
	}
	return Parse(data)
}

// CellToken formats a shard cell for the wire and the assignment file.
func CellToken(id cellid.ID) string { return fmt.Sprintf("%#x", uint64(id)) }

// ParseCell parses a wire cell token (hex or decimal uint64) into a
// valid cell id.
func ParseCell(tok string) (cellid.ID, error) {
	v, err := strconv.ParseUint(tok, 0, 64)
	if err != nil {
		return 0, fmt.Errorf("bad cell token %q: %v", tok, err)
	}
	id := cellid.ID(v)
	if !id.IsValid() {
		return 0, fmt.Errorf("bad cell token %q: not a valid cell id", tok)
	}
	return id, nil
}

// Assignment is a resolved shard→replica-chain mapping.
type Assignment struct {
	cfg    *Config
	nodes  map[string]Node
	static map[cellid.ID][]Node
}

// NewAssignment resolves a validated config.
func NewAssignment(cfg *Config) *Assignment {
	nodes := make(map[string]Node, len(cfg.Nodes))
	for _, n := range cfg.Nodes {
		nodes[n.Name] = n
	}
	static := make(map[cellid.ID][]Node, len(cfg.Shards))
	for tok, chain := range cfg.Shards {
		id, _ := ParseCell(tok) // validated by Parse
		rep := make([]Node, len(chain))
		for i, name := range chain {
			rep[i] = nodes[name]
		}
		static[id] = rep
	}
	return &Assignment{cfg: cfg, nodes: nodes, static: static}
}

// Epoch returns the assignment's epoch.
func (a *Assignment) Epoch() uint64 { return a.cfg.Epoch }

// Config returns the underlying config.
func (a *Assignment) Config() *Config { return a.cfg }

// Replication returns the effective replica-chain length.
func (a *Assignment) Replication() int {
	r := a.cfg.Replication
	if r <= 0 {
		r = 1
	}
	if r > len(a.cfg.Nodes) {
		r = len(a.cfg.Nodes)
	}
	return r
}

// NodeByName resolves a node name.
func (a *Assignment) NodeByName(name string) (Node, bool) {
	n, ok := a.nodes[name]
	return n, ok
}

// Owners returns the shard's replica chain, primary first. Static
// entries win; everything else places by rendezvous (highest-random-
// weight) hashing: each node scores fnv64a(name ":" cellToken) and the
// top Replication scores own the shard. Per shard the chain is a
// uniform pseudo-random permutation prefix, so load spreads across
// nodes and a node's removal only reassigns the shards it owned.
func (a *Assignment) Owners(cell cellid.ID) []Node {
	if chain, ok := a.static[cell]; ok {
		return chain
	}
	tok := CellToken(cell)
	type scored struct {
		score uint64
		node  Node
	}
	sc := make([]scored, len(a.cfg.Nodes))
	for i, n := range a.cfg.Nodes {
		h := fnv.New64a()
		h.Write([]byte(n.Name))
		h.Write([]byte{':'})
		h.Write([]byte(tok))
		sc[i] = scored{score: h.Sum64(), node: n}
	}
	sort.Slice(sc, func(i, j int) bool {
		if sc[i].score != sc[j].score {
			return sc[i].score > sc[j].score
		}
		return sc[i].node.Name < sc[j].node.Name
	})
	chain := make([]Node, a.Replication())
	for i := range chain {
		chain[i] = sc[i].node
	}
	return chain
}
