package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// PeerError is a typed error answer from a peer's partial endpoint.
type PeerError struct {
	Status int
	Code   string
	Msg    string
}

func (e *PeerError) Error() string {
	return fmt.Sprintf("peer status %d (%s): %s", e.Status, e.Code, e.Msg)
}

// fatal reports whether retrying the same replica cannot help: the peer
// understood the request and rejected it. 5xx and transport errors stay
// retryable.
func (e *PeerError) fatal() bool { return e.Status >= 400 && e.Status < 500 }

// PeerStats is one peer's client-side counter snapshot.
type PeerStats struct {
	Name string `json:"name"`
	Addr string `json:"addr"`
	// Requests counts attempts sent (including retries and hedges).
	Requests uint64 `json:"requests"`
	// Errors counts failed attempts (transport, 5xx, bad body).
	Errors uint64 `json:"errors"`
	// Retries counts re-attempts against the same replica.
	Retries uint64 `json:"retries"`
	// Hedges counts speculative requests started on this peer because an
	// earlier replica was slow (hedge timer), not failed.
	Hedges uint64 `json:"hedges"`
	// Failovers counts requests this peer answered after every earlier
	// replica in the chain had failed.
	Failovers uint64 `json:"failovers"`
	// LatencyTotalMicros sums the latency of successful attempts;
	// divide by Successes for the mean.
	LatencyTotalMicros uint64 `json:"latency_total_micros"`
	Successes          uint64 `json:"successes"`
}

type peerCounters struct {
	requests, errors, retries, hedges, failovers atomic.Uint64
	latencyMicros, successes                     atomic.Uint64
}

// Client executes partial requests against replica chains with
// per-attempt timeouts, bounded retries with exponential backoff,
// hedging, and failover. One Client serves all of a coordinator's
// peers, sharing one connection pool.
type Client struct {
	hc *http.Client

	mu      sync.Mutex
	tuning  *Config
	counter map[string]*peerCounters // by node name
	addrs   map[string]string        // last seen addr by node name
}

// NewClient builds a client tuned by cfg's timeout/retry/hedge fields.
func NewClient(cfg *Config) *Client {
	return &Client{
		hc: &http.Client{
			Transport: &http.Transport{
				MaxIdleConnsPerHost: 16,
				IdleConnTimeout:     90 * time.Second,
			},
		},
		tuning:  cfg,
		counter: make(map[string]*peerCounters),
		addrs:   make(map[string]string),
	}
}

// Retune swaps the timeout/retry/hedge parameters (assignment reload);
// the connection pool and counters survive.
func (c *Client) Retune(cfg *Config) {
	c.mu.Lock()
	c.tuning = cfg
	c.mu.Unlock()
}

func (c *Client) params() *Config {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.tuning
}

func (c *Client) counters(n Node) *peerCounters {
	c.mu.Lock()
	defer c.mu.Unlock()
	pc, ok := c.counter[n.Name]
	if !ok {
		pc = &peerCounters{}
		c.counter[n.Name] = pc
	}
	c.addrs[n.Name] = n.Addr
	return pc
}

// Stats snapshots per-peer counters, sorted by node name.
func (c *Client) Stats() []PeerStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]PeerStats, 0, len(c.counter))
	for name, pc := range c.counter {
		out = append(out, PeerStats{
			Name:               name,
			Addr:               c.addrs[name],
			Requests:           pc.requests.Load(),
			Errors:             pc.errors.Load(),
			Retries:            pc.retries.Load(),
			Hedges:             pc.hedges.Load(),
			Failovers:          pc.failovers.Load(),
			LatencyTotalMicros: pc.latencyMicros.Load(),
			Successes:          pc.successes.Load(),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// do sends one partial request attempt to one peer.
func (c *Client) do(ctx context.Context, n Node, req *PartialRequest, timeout time.Duration) (*PartialResponse, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost,
		"http://"+n.Addr+"/internal/v1/partial", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	resp, err := c.hc.Do(hreq)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var eb struct {
			Error string `json:"error"`
			Code  string `json:"code"`
		}
		data, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
		_ = json.Unmarshal(data, &eb)
		if eb.Code == "" {
			eb.Code = "unknown"
		}
		return nil, &PeerError{Status: resp.StatusCode, Code: eb.Code, Msg: eb.Error}
	}
	// Strict decode: a truncated or trailing-garbage body is a failed
	// attempt, not a half-answer.
	dec := json.NewDecoder(resp.Body)
	var pr PartialResponse
	if err := dec.Decode(&pr); err != nil {
		return nil, fmt.Errorf("decoding partial response from %s: %w", n.Addr, err)
	}
	if dec.More() {
		return nil, fmt.Errorf("trailing data in partial response from %s", n.Addr)
	}
	return &pr, nil
}

// Fetch executes one partial request against a replica chain, primary
// first. Each replica gets 1+retries attempts with exponential backoff;
// replica i+1 starts when replica i's chain-so-far has exhausted its
// attempts (failover) or — with hedging enabled — after i hedge delays
// without an answer. The first response that passes decode wins and
// cancels the rest. decode validates and transforms the body; a decode
// failure (bad frame, wrong shard set) counts as a failed attempt, so a
// replica returning garbage fails over like a dead one.
func (c *Client) Fetch(ctx context.Context, chain []Node, req *PartialRequest, decode func(*PartialResponse) (any, error)) (any, error) {
	if len(chain) == 0 {
		return nil, errors.New("cluster: empty replica chain")
	}
	p := c.params()
	timeout, retries, backoff, hedge := p.Timeout(), p.RetryBudget(), p.Backoff(), p.Hedge()

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	type outcome struct {
		idx int
		val any
		err error
	}
	results := make(chan outcome, len(chain))
	exhausted := make([]chan struct{}, len(chain))
	for i := range exhausted {
		exhausted[i] = make(chan struct{})
	}

	attempt := func(i int, n Node, hedged bool) {
		defer close(exhausted[i])
		pc := c.counters(n)
		if hedged {
			pc.hedges.Add(1)
		}
		var lastErr error
		for try := 0; try <= retries; try++ {
			if try > 0 {
				pc.retries.Add(1)
				select {
				case <-time.After(backoff << (try - 1)):
				case <-ctx.Done():
					return
				}
			}
			pc.requests.Add(1)
			start := time.Now()
			resp, err := c.do(ctx, n, req, timeout)
			if err == nil {
				var val any
				if val, err = decode(resp); err == nil {
					pc.successes.Add(1)
					pc.latencyMicros.Add(uint64(time.Since(start).Microseconds()))
					if i > 0 {
						pc.failovers.Add(1)
					}
					results <- outcome{idx: i, val: val}
					return
				}
			}
			if ctx.Err() != nil {
				// Cancelled because another replica already won; don't
				// count the abandoned attempt as a peer failure.
				return
			}
			pc.errors.Add(1)
			lastErr = err
			var pe *PeerError
			if errors.As(err, &pe) && pe.fatal() {
				break
			}
		}
		results <- outcome{idx: i, err: lastErr}
	}

	go attempt(0, chain[0], false)
	for i := 1; i < len(chain); i++ {
		go func(i int, n Node) {
			var hedgeC <-chan time.Time
			if hedge > 0 {
				t := time.NewTimer(time.Duration(i) * hedge)
				defer t.Stop()
				hedgeC = t.C
			}
			prevDone := make(chan struct{})
			go func(i int) {
				for j := 0; j < i; j++ {
					select {
					case <-exhausted[j]:
					case <-ctx.Done():
						return
					}
				}
				close(prevDone)
			}(i)
			hedged := false
			select {
			case <-hedgeC:
				hedged = true
			case <-prevDone:
			case <-ctx.Done():
				close(exhausted[i])
				return
			}
			attempt(i, n, hedged)
		}(i, chain[i])
	}

	var lastErr error
	failures := 0
	for failures < len(chain) {
		select {
		case out := <-results:
			if out.err == nil {
				return out.val, nil
			}
			failures++
			lastErr = out.err
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	if lastErr == nil {
		lastErr = errors.New("cluster: all replicas failed")
	}
	return nil, fmt.Errorf("cluster: replica chain exhausted: %w", lastErr)
}
