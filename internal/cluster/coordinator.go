package cluster

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"geoblocks"
	"geoblocks/internal/cellid"
	"geoblocks/internal/geom"
	"geoblocks/internal/store"
)

// ErrUnknownDataset reports a cluster query naming an unregistered
// dataset.
var ErrUnknownDataset = errors.New("cluster: unknown dataset")

// UnavailableError reports shards whose entire replica chain is
// exhausted: the query is refused rather than answered partially. The
// shard cells carry the per-shard attribution the serving layer returns
// in its typed 503.
type UnavailableError struct {
	Dataset string
	Shards  []cellid.ID
	// Cause is the last underlying replica failure, for logs.
	Cause error
}

func (e *UnavailableError) Error() string {
	toks := make([]string, len(e.Shards))
	for i, c := range e.Shards {
		toks[i] = CellToken(c)
	}
	return fmt.Sprintf("cluster: dataset %q shards unavailable (no live replica): %s (last error: %v)",
		e.Dataset, strings.Join(toks, ", "), e.Cause)
}

// Stats is the coordinator's observable state for /v1/stats and
// /metrics.
type Stats struct {
	Self        string      `json:"self"`
	Epoch       uint64      `json:"epoch"`
	Nodes       int         `json:"nodes"`
	Replication int         `json:"replication"`
	Queries     uint64      `json:"queries"`
	LocalParts  uint64      `json:"local_partials"`
	RemoteCalls uint64      `json:"remote_calls"`
	Unavailable uint64      `json:"unavailable_errors"`
	Reloads     uint64      `json:"assignment_reloads"`
	Peers       []PeerStats `json:"peers"`
}

// Coordinator routes cluster queries: local shards through the store,
// remote shards through peer partial requests, merged in global shard
// order. Safe for concurrent use; Reload may swap the assignment under
// live queries.
type Coordinator struct {
	store *store.Store
	// self is this node's name in the assignment ("" when the
	// coordinator is not itself a data node — then every shard is
	// remote).
	self string

	mu     sync.RWMutex
	assign *Assignment

	client *Client

	queries     atomic.Uint64
	localParts  atomic.Uint64
	remoteCalls atomic.Uint64
	unavailable atomic.Uint64
	reloads     atomic.Uint64
}

// New builds a coordinator over the store from a validated config. self
// names this node in the config (empty for a pure router). The store's
// datasets are stamped with the assignment epoch.
func New(st *store.Store, cfg *Config, self string) (*Coordinator, error) {
	if self != "" {
		found := false
		for _, n := range cfg.Nodes {
			if n.Name == self {
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("cluster: self %q is not in the assignment's node list", self)
		}
	}
	c := &Coordinator{
		store:  st,
		self:   self,
		assign: NewAssignment(cfg),
		client: NewClient(cfg),
	}
	st.SetAssignmentEpoch(cfg.Epoch)
	return c, nil
}

// Reload swaps in a new assignment (SIGHUP on the daemon): placement,
// epoch and client tuning all take effect for subsequent queries;
// in-flight queries finish under the assignment they planned with.
func (c *Coordinator) Reload(cfg *Config) error {
	if c.self != "" {
		found := false
		for _, n := range cfg.Nodes {
			if n.Name == c.self {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("cluster: reload drops self %q from the node list", c.self)
		}
	}
	a := NewAssignment(cfg)
	c.mu.Lock()
	c.assign = a
	c.mu.Unlock()
	c.client.Retune(cfg)
	c.store.SetAssignmentEpoch(cfg.Epoch)
	c.reloads.Add(1)
	return nil
}

// Assignment returns the current assignment.
func (c *Coordinator) Assignment() *Assignment {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.assign
}

// Self returns this node's assignment name.
func (c *Coordinator) Self() string { return c.self }

// Epoch returns the current assignment epoch.
func (c *Coordinator) Epoch() uint64 { return c.Assignment().Epoch() }

// Stats snapshots the coordinator's counters.
func (c *Coordinator) Stats() Stats {
	a := c.Assignment()
	return Stats{
		Self:        c.self,
		Epoch:       a.Epoch(),
		Nodes:       len(a.Config().Nodes),
		Replication: a.Replication(),
		Queries:     c.queries.Load(),
		LocalParts:  c.localParts.Load(),
		RemoteCalls: c.remoteCalls.Load(),
		Unavailable: c.unavailable.Load(),
		Reloads:     c.reloads.Load(),
		Peers:       c.client.Stats(),
	}
}

// Query answers a polygon query cluster-wide.
func (c *Coordinator) Query(ctx context.Context, name string, poly *geom.Polygon, opts geoblocks.QueryOptions, reqs []geoblocks.AggRequest) (geoblocks.Result, error) {
	if err := opts.Validate(); err != nil {
		return geoblocks.Result{}, err
	}
	d, ok := c.store.Get(name)
	if !ok {
		return geoblocks.Result{}, fmt.Errorf("%w: %q", ErrUnknownDataset, name)
	}
	plan := d.PlanCover(poly, opts.MaxError)
	return c.execute(ctx, d, name, plan, opts, reqs)
}

// QueryRect answers a rectangle query cluster-wide.
func (c *Coordinator) QueryRect(ctx context.Context, name string, r geom.Rect, opts geoblocks.QueryOptions, reqs []geoblocks.AggRequest) (geoblocks.Result, error) {
	if err := opts.Validate(); err != nil {
		return geoblocks.Result{}, err
	}
	d, ok := c.store.Get(name)
	if !ok {
		return geoblocks.Result{}, fmt.Errorf("%w: %q", ErrUnknownDataset, name)
	}
	plan := d.PlanCoverRect(r, opts.MaxError)
	return c.execute(ctx, d, name, plan, opts, reqs)
}

// QueryBatch answers one query per polygon, concurrently, positionally
// aligned with polys. Per-element errors fail the batch (matching the
// single-node batch contract).
func (c *Coordinator) QueryBatch(ctx context.Context, name string, polys []*geom.Polygon, opts geoblocks.QueryOptions, reqs []geoblocks.AggRequest) ([]geoblocks.Result, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	d, ok := c.store.Get(name)
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownDataset, name)
	}
	results := make([]geoblocks.Result, len(polys))
	errs := make([]error, len(polys))
	var wg sync.WaitGroup
	for i, poly := range polys {
		wg.Add(1)
		go func(i int, poly *geom.Polygon) {
			defer wg.Done()
			plan := d.PlanCover(poly, opts.MaxError)
			results[i], errs[i] = c.execute(ctx, d, name, plan, opts, reqs)
		}(i, poly)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

// Join answers a polygon join cluster-wide: the shared-grid plan is
// computed once on the coordinator's copy of the dataset (one level, one
// classification pass — PlanJoin), then each polygon's planned covering
// scatters through the same per-shard partial machinery as a single
// query, concurrently across polygons. Because each polygon's partials
// merge in ascending shard order, per-polygon answers are bit-identical
// to the single-node Join (and hence to N sequential queries) for
// COUNT/MIN/MAX.
func (c *Coordinator) Join(ctx context.Context, name string, polys []*geom.Polygon, opts geoblocks.QueryOptions, reqs []geoblocks.AggRequest) ([]geoblocks.Result, store.JoinStats, error) {
	if err := opts.Validate(); err != nil {
		return nil, store.JoinStats{}, err
	}
	d, ok := c.store.Get(name)
	if !ok {
		return nil, store.JoinStats{}, fmt.Errorf("%w: %q", ErrUnknownDataset, name)
	}
	plans, stats := d.PlanJoin(polys, opts.MaxError)
	results := make([]geoblocks.Result, len(polys))
	errs := make([]error, len(polys))
	var wg sync.WaitGroup
	for i := range polys {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = c.execute(ctx, d, name, plans[i], opts, reqs)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, stats, err
		}
	}
	return results, stats, nil
}

// remoteGroup batches the shards of one replica chain into one partial
// request.
type remoteGroup struct {
	chain []Node
	subs  []store.ShardSub
}

// execute runs one planned query: split the covering per shard, answer
// local shards in process and remote shards via peer partial requests,
// then merge everything in ascending shard-cell order — the exact merge
// tree of a single-node query over the same covering, which is what
// keeps COUNT/MIN/MAX bit-identical across deployments.
func (c *Coordinator) execute(ctx context.Context, d *store.Dataset, name string, plan store.Plan, opts geoblocks.QueryOptions, reqs []geoblocks.AggRequest) (geoblocks.Result, error) {
	c.queries.Add(1)
	d.NoteQuery()
	assign := c.Assignment()

	subs := d.ShardSubs(plan.Cover)
	if len(subs) == 0 {
		// Identity: resolve specs and finalise against any local shard,
		// exactly like the single-node router's empty-route path.
		acc, err := d.ShardPartial(d.ShardCells()[0], nil, plan.Level, opts, reqs)
		if err != nil {
			return geoblocks.Result{}, err
		}
		res := acc.Result()
		res.Level = plan.Level
		res.ErrorBound = plan.ErrorBound
		return res, nil
	}

	var local []store.ShardSub
	groups := make(map[string]*remoteGroup)
	for _, sub := range subs {
		chain := assign.Owners(sub.Cell)
		if c.owns(chain) {
			local = append(local, sub)
			continue
		}
		key := chainKey(chain)
		g, ok := groups[key]
		if !ok {
			g = &remoteGroup{chain: chain}
			groups[key] = g
		}
		g.subs = append(g.subs, sub)
	}

	// Scatter: local partials and remote groups all run concurrently.
	partials := make(map[cellid.ID]*geoblocks.Accumulator, len(subs))
	var pmu sync.Mutex
	var wg sync.WaitGroup
	var localErr error
	var unavailable []cellid.ID
	var lastCause error

	for _, sub := range local {
		wg.Add(1)
		go func(sub store.ShardSub) {
			defer wg.Done()
			c.localParts.Add(1)
			acc, err := d.ShardPartial(sub.Cell, sub.Sub, plan.Level, opts, reqs)
			pmu.Lock()
			defer pmu.Unlock()
			if err != nil {
				if localErr == nil {
					localErr = err
				}
				return
			}
			partials[sub.Cell] = acc
		}(sub)
	}
	for _, g := range groups {
		wg.Add(1)
		go func(g *remoteGroup) {
			defer wg.Done()
			c.remoteCalls.Add(1)
			accs, err := c.fetchGroup(ctx, d, name, assign, plan, opts, reqs, g)
			pmu.Lock()
			defer pmu.Unlock()
			if err != nil {
				for _, sub := range g.subs {
					unavailable = append(unavailable, sub.Cell)
				}
				lastCause = err
				return
			}
			for cell, acc := range accs {
				partials[cell] = acc
			}
		}(g)
	}
	wg.Wait()

	if localErr != nil {
		return geoblocks.Result{}, localErr
	}
	if len(unavailable) > 0 {
		c.unavailable.Add(1)
		sort.Slice(unavailable, func(i, j int) bool { return unavailable[i] < unavailable[j] })
		return geoblocks.Result{}, &UnavailableError{Dataset: name, Shards: unavailable, Cause: lastCause}
	}

	// Gather: merge in ascending shard order (subs is already sorted —
	// ShardSubs walks the shard slice in order).
	total := partials[subs[0].Cell]
	for _, sub := range subs[1:] {
		if err := total.MergeFrom(partials[sub.Cell]); err != nil {
			return geoblocks.Result{}, err
		}
	}
	res := total.Result()
	res.Level = plan.Level
	res.ErrorBound = plan.ErrorBound
	return res, nil
}

// owns reports whether this node is anywhere in the replica chain — if
// so the shard is answered locally (never an RPC to self).
func (c *Coordinator) owns(chain []Node) bool {
	if c.self == "" {
		return false
	}
	for _, n := range chain {
		if n.Name == c.self {
			return true
		}
	}
	return false
}

func chainKey(chain []Node) string {
	names := make([]string, len(chain))
	for i, n := range chain {
		names[i] = n.Name
	}
	return strings.Join(names, ",")
}

// fetchGroup sends one replica-chain group's shards to its peers and
// decodes the winning response into per-shard accumulators. Decode
// validates the envelope (dataset, epoch, level, exact shard echo)
// before parsing frames, so a confused peer counts as a failed replica
// rather than contaminating the merge.
func (c *Coordinator) fetchGroup(ctx context.Context, d *store.Dataset, name string, assign *Assignment, plan store.Plan, opts geoblocks.QueryOptions, reqs []geoblocks.AggRequest, g *remoteGroup) (map[cellid.ID]*geoblocks.Accumulator, error) {
	req := &PartialRequest{
		Dataset:      name,
		CodecVersion: CodecVersion,
		Epoch:        assign.Epoch(),
		Level:        plan.Level,
		Aggs:         AggsFromRequests(reqs),
		Shards:       make([]ShardReq, len(g.subs)),
		NoCache:      opts.DisableCache,
	}
	for i, sub := range g.subs {
		req.Shards[i] = ShardReq{Cell: CellToken(sub.Cell), Cover: EncodeCells(sub.Sub)}
	}
	decode := func(pr *PartialResponse) (any, error) {
		if pr.Dataset != name {
			return nil, fmt.Errorf("peer answered for dataset %q, asked %q", pr.Dataset, name)
		}
		if pr.Epoch != req.Epoch {
			return nil, fmt.Errorf("peer answered under epoch %d, asked %d", pr.Epoch, req.Epoch)
		}
		if pr.Level != plan.Level {
			return nil, fmt.Errorf("peer answered at level %d, asked %d", pr.Level, plan.Level)
		}
		if len(pr.Shards) != len(g.subs) {
			return nil, fmt.Errorf("peer answered %d shards, asked %d", len(pr.Shards), len(g.subs))
		}
		accs := make(map[cellid.ID]*geoblocks.Accumulator, len(pr.Shards))
		for i, sp := range pr.Shards {
			if sp.Cell != req.Shards[i].Cell {
				return nil, fmt.Errorf("peer shard %d is %s, asked %s", i, sp.Cell, req.Shards[i].Cell)
			}
			acc, err := d.DecodePartial(sp.Partial, reqs)
			if err != nil {
				return nil, fmt.Errorf("shard %s partial: %w", sp.Cell, err)
			}
			accs[g.subs[i].Cell] = acc
		}
		return accs, nil
	}
	val, err := c.client.Fetch(ctx, g.chain, req, decode)
	if err != nil {
		return nil, err
	}
	return val.(map[cellid.ID]*geoblocks.Accumulator), nil
}
