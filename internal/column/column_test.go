package column

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestSchemaBasics(t *testing.T) {
	s := NewSchema("fare", "distance", "tip")
	if s.NumCols() != 3 {
		t.Fatalf("NumCols = %d", s.NumCols())
	}
	if s.ColIndex("distance") != 1 {
		t.Fatalf("ColIndex(distance) = %d", s.ColIndex("distance"))
	}
	if s.ColIndex("missing") != -1 {
		t.Fatal("missing column should return -1")
	}
}

func TestAppendAndSort(t *testing.T) {
	tbl := NewTable(NewSchema("a", "b"))
	rng := rand.New(rand.NewSource(1))
	const n = 10000
	for i := 0; i < n; i++ {
		k := rng.Uint64()
		tbl.AppendRow(k, float64(k%97), float64(k%13))
	}
	if tbl.Sorted {
		t.Fatal("unsorted table flagged sorted")
	}
	tbl.SortByKey()
	if !tbl.Sorted {
		t.Fatal("sorted table not flagged")
	}
	for i := 1; i < n; i++ {
		if tbl.Keys[i-1] > tbl.Keys[i] {
			t.Fatalf("keys unsorted at %d", i)
		}
	}
	// Row integrity: column values must still match their key's derivation.
	for i := 0; i < n; i++ {
		if tbl.Cols[0][i] != float64(tbl.Keys[i]%97) || tbl.Cols[1][i] != float64(tbl.Keys[i]%13) {
			t.Fatalf("row %d columns detached from key after sort", i)
		}
	}
	// Idempotent.
	tbl.SortByKey()
	if tbl.NumRows() != n {
		t.Fatal("sort changed row count")
	}
}

func TestSortIsStable(t *testing.T) {
	tbl := NewTable(NewSchema("seq"))
	// Many duplicate keys; sequence column records insertion order.
	for i := 0; i < 1000; i++ {
		tbl.AppendRow(uint64(i%7), float64(i))
	}
	tbl.SortByKey()
	for i := 1; i < tbl.NumRows(); i++ {
		if tbl.Keys[i-1] == tbl.Keys[i] && tbl.Cols[0][i-1] > tbl.Cols[0][i] {
			t.Fatalf("stability violated at %d", i)
		}
	}
}

func TestBounds(t *testing.T) {
	tbl := NewTable(NewSchema())
	for _, k := range []uint64{2, 4, 4, 4, 9} {
		tbl.AppendRow(k)
	}
	tbl.SortByKey()
	cases := []struct {
		key    uint64
		lb, ub int
	}{
		{0, 0, 0}, {2, 0, 1}, {3, 1, 1}, {4, 1, 4}, {5, 4, 4}, {9, 4, 5}, {10, 5, 5},
	}
	for _, c := range cases {
		if got := tbl.LowerBound(c.key); got != c.lb {
			t.Errorf("LowerBound(%d) = %d, want %d", c.key, got, c.lb)
		}
		if got := tbl.UpperBound(c.key); got != c.ub {
			t.Errorf("UpperBound(%d) = %d, want %d", c.key, got, c.ub)
		}
	}
}

func TestQuickBoundsMatchSortSearch(t *testing.T) {
	tbl := NewTable(NewSchema())
	rng := rand.New(rand.NewSource(2))
	keys := make([]uint64, 5000)
	for i := range keys {
		keys[i] = rng.Uint64() % 10000
		tbl.AppendRow(keys[i])
	}
	tbl.SortByKey()
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	f := func(probe uint16) bool {
		k := uint64(probe) % 11000
		lb := sort.Search(len(keys), func(i int) bool { return keys[i] >= k })
		ub := sort.Search(len(keys), func(i int) bool { return keys[i] > k })
		return tbl.LowerBound(k) == lb && tbl.UpperBound(k) == ub
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestPredicates(t *testing.T) {
	cases := []struct {
		p    Predicate
		v    float64
		want bool
	}{
		{Predicate{0, OpEq, 5}, 5, true},
		{Predicate{0, OpEq, 5}, 5.1, false},
		{Predicate{0, OpNe, 5}, 5.1, true},
		{Predicate{0, OpLt, 5}, 4.9, true},
		{Predicate{0, OpLt, 5}, 5, false},
		{Predicate{0, OpLe, 5}, 5, true},
		{Predicate{0, OpGt, 5}, 5, false},
		{Predicate{0, OpGt, 5}, 5.1, true},
		{Predicate{0, OpGe, 5}, 5, true},
	}
	for _, c := range cases {
		if got := c.p.Matches(c.v); got != c.want {
			t.Errorf("%v.Matches(%g) = %t, want %t", c.p, c.v, got, c.want)
		}
	}
}

func TestFilterConjunctionAndSelectivity(t *testing.T) {
	schema := NewSchema("fare", "passengers")
	tbl := NewTable(schema)
	for i := 0; i < 100; i++ {
		tbl.AppendRow(uint64(i), float64(i), float64(1+i%4))
	}
	f := Pred(schema, "fare", OpGe, 50).And(Predicate{Col: 1, Op: OpEq, Value: 1})
	n := 0
	for i := 0; i < tbl.NumRows(); i++ {
		if f.MatchesRow(tbl, i) {
			n++
		}
	}
	// fare >= 50: rows 50..99 (50 rows); passengers == 1: i%4 == 0.
	want := 0
	for i := 50; i < 100; i++ {
		if 1+i%4 == 1 {
			want++
		}
	}
	if n != want {
		t.Fatalf("conjunction matched %d, want %d", n, want)
	}
	if got := f.Selectivity(tbl); got != float64(want)/100 {
		t.Fatalf("selectivity = %g", got)
	}
	var empty Filter
	if got := empty.Selectivity(tbl); got != 1 {
		t.Fatalf("empty filter selectivity = %g, want 1", got)
	}
}

func TestPredPanicsOnUnknownColumn(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Pred(NewSchema("a"), "zzz", OpEq, 1)
}

func TestAppendRowPanicsOnArity(t *testing.T) {
	tbl := NewTable(NewSchema("a", "b"))
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	tbl.AppendRow(1, 2.0)
}

func TestCloneIsDeep(t *testing.T) {
	tbl := NewTable(NewSchema("a"))
	tbl.AppendRow(1, 10)
	tbl.AppendRow(2, 20)
	tbl.SortByKey()
	c := tbl.Clone()
	c.Keys[0] = 99
	c.Cols[0][0] = 99
	if tbl.Keys[0] == 99 || tbl.Cols[0][0] == 99 {
		t.Fatal("clone shares storage")
	}
	if !c.Sorted {
		t.Fatal("clone lost sorted flag")
	}
}

func TestDescribeAndSizeBytes(t *testing.T) {
	schema := NewSchema("fare", "dist")
	f := Pred(schema, "fare", OpGt, 20)
	if got := f.Describe(schema); got != "fare > 20" {
		t.Fatalf("Describe = %q", got)
	}
	var empty Filter
	if got := empty.Describe(schema); got != "true" {
		t.Fatalf("empty Describe = %q", got)
	}
	tbl := NewTable(schema)
	tbl.AppendRow(1, 1, 2)
	if got := tbl.SizeBytes(); got != 8+16 {
		t.Fatalf("SizeBytes = %d, want 24", got)
	}
}
