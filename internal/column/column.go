// Package column implements the columnar base-data layout that GeoBlocks
// and all evaluation baselines operate on (paper Sec. 3.3 and 4.1): a table
// of 64-bit spatial keys plus float64 value columns, kept in ascending key
// order after the extract phase, with filter predicates evaluated directly
// on the columns.
package column

import (
	"fmt"
	"sort"
)

// Schema describes the value columns of a table. Column order is
// significant: predicates and aggregate requests address columns by index.
type Schema struct {
	Names []string
}

// NewSchema builds a schema from column names.
func NewSchema(names ...string) Schema {
	return Schema{Names: append([]string(nil), names...)}
}

// NumCols returns the number of value columns.
func (s Schema) NumCols() int { return len(s.Names) }

// ColIndex returns the index of the named column, or -1.
func (s Schema) ColIndex(name string) int {
	for i, n := range s.Names {
		if n == name {
			return i
		}
	}
	return -1
}

// Table is columnar point data: one spatial key per row plus the schema's
// value columns. The GeoBlocks extract phase produces a Table sorted by
// key; Sorted records that invariant.
type Table struct {
	Schema Schema
	Keys   []uint64
	Cols   [][]float64
	Sorted bool
}

// NewTable creates an empty table with the given schema.
func NewTable(schema Schema) *Table {
	return &Table{
		Schema: schema,
		Cols:   make([][]float64, schema.NumCols()),
	}
}

// NumRows returns the row count.
func (t *Table) NumRows() int { return len(t.Keys) }

// AppendRow adds a row. The number of values must match the schema.
func (t *Table) AppendRow(key uint64, vals ...float64) {
	if len(vals) != t.Schema.NumCols() {
		panic(fmt.Sprintf("column: AppendRow got %d values, schema has %d columns",
			len(vals), t.Schema.NumCols()))
	}
	t.Keys = append(t.Keys, key)
	for i, v := range vals {
		t.Cols[i] = append(t.Cols[i], v)
	}
	t.Sorted = false
}

// Grow pre-allocates capacity for n additional rows.
func (t *Table) Grow(n int) {
	t.Keys = append(make([]uint64, 0, len(t.Keys)+n), t.Keys...)
	for i := range t.Cols {
		t.Cols[i] = append(make([]float64, 0, len(t.Cols[i])+n), t.Cols[i]...)
	}
}

// SortByKey sorts the rows ascending by spatial key, carrying all columns
// along. The sort is the dominant cost of the extract phase (paper
// Fig. 11a); it materialises a permutation once and applies it to each
// column out-of-place, matching the paper's "optimized out-of-place
// sorting".
func (t *Table) SortByKey() {
	if t.Sorted {
		return
	}
	n := t.NumRows()
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	sort.SliceStable(perm, func(a, b int) bool { return t.Keys[perm[a]] < t.Keys[perm[b]] })

	newKeys := make([]uint64, n)
	for i, j := range perm {
		newKeys[i] = t.Keys[j]
	}
	t.Keys = newKeys
	buf := make([]float64, n)
	for c := range t.Cols {
		col := t.Cols[c]
		for i, j := range perm {
			buf[i] = col[j]
		}
		copy(col, buf)
	}
	t.Sorted = true
}

// LowerBound returns the first row index whose key is >= key, or NumRows().
// The table must be sorted.
func (t *Table) LowerBound(key uint64) int {
	return sort.Search(len(t.Keys), func(i int) bool { return t.Keys[i] >= key })
}

// UpperBound returns the first row index whose key is > key, or NumRows().
// The table must be sorted.
func (t *Table) UpperBound(key uint64) int {
	return sort.Search(len(t.Keys), func(i int) bool { return t.Keys[i] > key })
}

// Clone returns a deep copy of t.
func (t *Table) Clone() *Table {
	c := &Table{
		Schema: t.Schema,
		Keys:   append([]uint64(nil), t.Keys...),
		Cols:   make([][]float64, len(t.Cols)),
		Sorted: t.Sorted,
	}
	for i, col := range t.Cols {
		c.Cols[i] = append([]float64(nil), col...)
	}
	return c
}

// SizeBytes returns the in-memory payload size of the table: 8 bytes per
// key plus 8 bytes per column value. Used for the relative-overhead
// comparisons (paper Fig. 11b).
func (t *Table) SizeBytes() int {
	return 8*len(t.Keys) + 8*len(t.Keys)*len(t.Cols)
}

// Op is a comparison operator for filter predicates.
type Op int

// Comparison operators.
const (
	OpEq Op = iota // ==
	OpNe           // !=
	OpLt           // <
	OpLe           // <=
	OpGt           // >
	OpGe           // >=
)

// String implements fmt.Stringer.
func (o Op) String() string {
	switch o {
	case OpEq:
		return "=="
	case OpNe:
		return "!="
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	}
	return "?"
}

// Predicate is a single column comparison, e.g. fare_amount > 20.
type Predicate struct {
	Col   int
	Op    Op
	Value float64
}

// Matches reports whether v satisfies the predicate.
func (p Predicate) Matches(v float64) bool {
	switch p.Op {
	case OpEq:
		return v == p.Value
	case OpNe:
		return v != p.Value
	case OpLt:
		return v < p.Value
	case OpLe:
		return v <= p.Value
	case OpGt:
		return v > p.Value
	case OpGe:
		return v >= p.Value
	}
	return false
}

// String renders the predicate against a schema-less column index.
func (p Predicate) String() string {
	return fmt.Sprintf("col%d %v %g", p.Col, p.Op, p.Value)
}

// Filter is a conjunction of predicates; the empty filter matches
// everything. GeoBlocks are built per filter set (paper Sec. 3.3).
type Filter []Predicate

// Pred constructs a single-predicate filter against a named column.
func Pred(schema Schema, col string, op Op, value float64) Filter {
	idx := schema.ColIndex(col)
	if idx < 0 {
		panic(fmt.Sprintf("column: unknown column %q", col))
	}
	return Filter{{Col: idx, Op: op, Value: value}}
}

// And returns the conjunction of f and more.
func (f Filter) And(more ...Predicate) Filter {
	return append(append(Filter(nil), f...), more...)
}

// MatchesRow reports whether row i of t satisfies all predicates.
func (f Filter) MatchesRow(t *Table, i int) bool {
	for _, p := range f {
		if !p.Matches(t.Cols[p.Col][i]) {
			return false
		}
	}
	return true
}

// String renders the filter with schema names.
func (f Filter) Describe(s Schema) string {
	if len(f) == 0 {
		return "true"
	}
	out := ""
	for i, p := range f {
		if i > 0 {
			out += " AND "
		}
		name := fmt.Sprintf("col%d", p.Col)
		if p.Col < len(s.Names) {
			name = s.Names[p.Col]
		}
		out += fmt.Sprintf("%s %v %g", name, p.Op, p.Value)
	}
	return out
}

// Selectivity returns the fraction of rows of t matching f.
func (f Filter) Selectivity(t *Table) float64 {
	if t.NumRows() == 0 {
		return 0
	}
	n := 0
	for i := 0; i < t.NumRows(); i++ {
		if f.MatchesRow(t, i) {
			n++
		}
	}
	return float64(n) / float64(t.NumRows())
}
