package store

import (
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"geoblocks"
	"geoblocks/internal/geom"
	"geoblocks/internal/snapshot"
)

// randomPolys generates the randomized query mix used by the
// save→restore equivalence suite.
func randomPolys(n int, seed int64) []*geom.Polygon {
	rng := rand.New(rand.NewSource(seed))
	polys := make([]*geom.Polygon, 0, n)
	for i := 0; i < n; i++ {
		c := geom.Pt(rng.Float64()*100, rng.Float64()*100)
		r := 1 + rng.Float64()*30
		polys = append(polys, geoblocks.RegularPolygon(c, r, 3+rng.Intn(8)))
	}
	return polys
}

// TestSnapshotRestoreEquivalence is the randomized durability suite: a
// dataset snapshotted and restored must answer every query bit-identically
// for COUNT/MIN/MAX (and exactly here for SUM/AVG, integer column) to the
// pre-snapshot dataset — plain and cached, across shard levels.
func TestSnapshotRestoreEquivalence(t *testing.T) {
	const rows = 20_000
	for _, tc := range []struct {
		name string
		opts Options
	}{
		{"unsharded", Options{Level: 12}},
		{"sharded-l1", Options{Level: 12, ShardLevel: 1}},
		{"sharded-l2", Options{Level: 12, ShardLevel: 2}},
		{"sharded-l2-cached", Options{Level: 12, ShardLevel: 2, CacheThreshold: 0.2, CacheAutoRefresh: 50}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			d := buildDataset(t, "orig", rows, 11, tc.opts)
			dir := filepath.Join(t.TempDir(), "orig")
			m, err := d.Snapshot(dir)
			if err != nil {
				t.Fatalf("Snapshot: %v", err)
			}
			if len(m.Shards) != d.NumShards() {
				t.Fatalf("manifest has %d shards, dataset %d", len(m.Shards), d.NumShards())
			}

			st := New()
			rd, err := st.Restore(dir)
			if err != nil {
				t.Fatalf("Restore: %v", err)
			}
			if got, ok := st.Get("orig"); !ok || got != rd {
				t.Fatal("restored dataset not registered under manifest name")
			}
			if rd.NumShards() != d.NumShards() || rd.Level() != d.Level() || rd.ShardLevel() != d.ShardLevel() {
				t.Fatalf("restored shape %d/%d/%d, want %d/%d/%d",
					rd.NumShards(), rd.Level(), rd.ShardLevel(), d.NumShards(), d.Level(), d.ShardLevel())
			}
			if rd.Stats().CacheEnabled != (tc.opts.CacheThreshold > 0) {
				t.Fatal("cache configuration lost across restore")
			}

			polys := randomPolys(60, 23)
			for i, poly := range polys {
				want, err := d.Query(poly, testReqs...)
				if err != nil {
					t.Fatal(err)
				}
				got, err := rd.Query(poly, testReqs...)
				if err != nil {
					t.Fatal(err)
				}
				assertEquivalent(t, got, want, tc.name)
				if t.Failed() {
					t.Fatalf("first divergence at poly %d", i)
				}
			}
			// Batch path, and for the cached variant a second pass so the
			// warmed cache also answers identically.
			wantBatch, err := d.QueryBatch(polys, testReqs...)
			if err != nil {
				t.Fatal(err)
			}
			gotBatch, err := rd.QueryBatch(polys, testReqs...)
			if err != nil {
				t.Fatal(err)
			}
			for i := range wantBatch {
				assertEquivalent(t, gotBatch[i], wantBatch[i], tc.name+" batch")
			}
			if tc.opts.CacheThreshold > 0 {
				d.RefreshCaches()
				rd.RefreshCaches()
				for _, poly := range polys {
					want, err := d.Query(poly, testReqs...)
					if err != nil {
						t.Fatal(err)
					}
					got, err := rd.Query(poly, testReqs...)
					if err != nil {
						t.Fatal(err)
					}
					assertEquivalent(t, got, want, tc.name+" cached")
				}
			}
		})
	}
}

func TestRestoreNameConflictLeavesStoreUnchanged(t *testing.T) {
	d := buildDataset(t, "taken", 2_000, 3, Options{Level: 10, ShardLevel: 1})
	dir := filepath.Join(t.TempDir(), "taken")
	if _, err := d.Snapshot(dir); err != nil {
		t.Fatal(err)
	}
	st := New()
	if err := st.Add(d); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Restore(dir); err == nil {
		t.Fatal("restore over a taken name succeeded")
	}
	if got, _ := st.Get("taken"); got != d {
		t.Fatal("original dataset displaced")
	}
	if len(st.Names()) != 1 {
		t.Fatalf("registry grew: %v", st.Names())
	}
}

func TestRestoreCorruptNeverRegisters(t *testing.T) {
	d := buildDataset(t, "c", 2_000, 5, Options{Level: 10, ShardLevel: 1})
	dir := filepath.Join(t.TempDir(), "c")
	if _, err := d.Snapshot(dir); err != nil {
		t.Fatal(err)
	}
	// Flip one payload byte in one shard: the whole restore must fail and
	// register nothing.
	path := filepath.Join(dir, "shard-00000.gbk")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x01
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	st := New()
	if _, err := st.Restore(dir); !errors.Is(err, snapshot.ErrCorrupt) {
		t.Fatalf("restore error %v, want snapshot.ErrCorrupt", err)
	}
	if names := st.Names(); len(names) != 0 {
		t.Fatalf("corrupt restore registered %v", names)
	}
}

// TestOpenRename restores under an overriding name, the hook the HTTP
// create-from-snapshot path uses.
func TestOpenRename(t *testing.T) {
	d := buildDataset(t, "orig", 2_000, 9, Options{Level: 10, ShardLevel: 1})
	dir := filepath.Join(t.TempDir(), "orig")
	if _, err := d.Snapshot(dir); err != nil {
		t.Fatal(err)
	}
	rd, err := Open(dir, "renamed")
	if err != nil {
		t.Fatal(err)
	}
	if rd.Name() != "renamed" {
		t.Fatalf("name = %q, want renamed", rd.Name())
	}
}

// TestSnapshotEmptyDataset covers the one-empty-shard corner: a dataset
// built from zero rows still snapshots and restores.
func TestSnapshotEmptyDataset(t *testing.T) {
	d, err := Build("empty", testBound, geoblocks.NewSchema("v"), nil, [][]float64{nil}, Options{Level: 8, ShardLevel: 1})
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "empty")
	if _, err := d.Snapshot(dir); err != nil {
		t.Fatal(err)
	}
	rd, err := Open(dir, "")
	if err != nil {
		t.Fatal(err)
	}
	res, err := rd.QueryRect(testBound, geoblocks.Count())
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != 0 {
		t.Fatalf("empty restore count = %d", res.Count)
	}
}
