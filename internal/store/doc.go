// Package store is the serving tier above the GeoBlock library: a
// registry of named datasets, each spatially sharded into multiple
// GeoBlocks by top-level cell prefix, with a router that answers polygon,
// rectangle and batch aggregate queries across the shards.
//
// # Sharding
//
// A dataset is partitioned at a configurable shard level: every cell at
// that level of the spatial decomposition (internal/cellid) that contains
// data becomes one shard, holding a GeoBlock built from exactly the rows
// whose leaf key falls inside the shard cell's range. All shards share the
// dataset's domain, so cell ids — and therefore coverings — are directly
// comparable across shards, and a shard is one contiguous cell-id range
// (the prefix property of Hilbert-ordered quadtree ids). Shard level 0
// yields a single unsharded block.
//
// # Planning, routing and merging
//
// A query first resolves its grid level: with Options.PyramidLevels > 0
// every shard carries a pyramid of coarser blocks
// (geoblocks.BuildPyramid, each level with its own query cache), and the
// router plans once per query — the coarsest level whose cell diagonal
// satisfies the QueryOptions.MaxError bound (geoblocks.LevelFor). It then
// computes one covering (internal/cover) at that level, splits it
// across shards with geoblocks.SplitCovering — a pair of binary searches
// per shard, returning sub-slices of the one covering — fans the
// sub-coverings out to the shard blocks at the planned level
// (geoblocks.AtLevel, QueryCoveringPartialOpts), and merges the
// per-shard partial accumulators (geoblocks.Accumulator.MergeFrom)
// before finalising; results report the achieved level and guaranteed
// error bound. A
// covering cell coarser than the shard level is routed to every shard it
// overlaps; because the shards partition the underlying cell aggregates,
// those per-shard contributions are disjoint and the merge is exact.
// COUNT, MIN and MAX merge associatively and are bit-identical to an
// unsharded block; SUM and the AVG numerator re-associate additions at the
// merge points with the floating-point bound documented in DESIGN.md
// Sec. 6 (exact for integer-valued columns below 2^53). Shard partials
// always merge in ascending shard order, so results are deterministic for
// a fixed (covering, sharding).
//
// # Concurrency
//
// A built Dataset is immutable apart from its per-shard query caches,
// which are concurrent serving structures (DESIGN.md Sec. 6); any number
// of goroutines may query one dataset. The Store registry serialises
// Add/Drop behind a mutex while lookups are lock-light; a dataset dropped
// mid-flight keeps serving queries already holding it.
//
// # Durability
//
// Dataset.Snapshot persists a dataset as a versioned, checksummed
// snapshot directory (internal/snapshot; docs/FORMAT.md specifies the
// bytes): one framed GeoBlock payload per shard plus a manifest, written
// atomically and safe to take while queries are flowing. Store.Restore
// (and Open, for restore-under-another-name) load one back with full
// validation — a corrupt or version-mismatched snapshot registers
// nothing. Cache and pyramid configuration survive the round trip;
// cache contents restart empty and pyramid levels are re-derived from
// the base payloads (they are never persisted — the on-disk format is
// identical with and without a pyramid).
//
// cmd/geoblocksd exposes this package over HTTP; docs/ARCHITECTURE.md
// documents the full layer stack and the sharding/merge contract.
package store
