package store

import (
	"fmt"
	"sort"
	"sync"
)

// Store is a registry of named datasets. The zero value is not usable;
// call New.
type Store struct {
	mu       sync.RWMutex
	datasets map[string]*Dataset

	// residency, when non-nil, switches Restore to serving snapshots in
	// place (OpenMapped) and budgets the materialised shards of every
	// mapped dataset through one shared manager.
	residency *Residency
}

// New creates an empty store.
func New() *Store {
	return &Store{datasets: make(map[string]*Dataset)}
}

// EnableMmap makes subsequent Restores serve format-v3 snapshots in
// place — shards mmap and materialise on first query — with budgetBytes
// of resident-memory budget shared across all mapped datasets (<= 0 is
// unlimited). Version-1 snapshots still restore eagerly. Call before
// restoring; already-restored datasets are unaffected.
func (s *Store) EnableMmap(budgetBytes int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.residency = NewResidency(budgetBytes)
}

// Residency returns the store's residency manager, nil when mmap
// serving is not enabled.
func (s *Store) Residency() *Residency {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.residency
}

// Add registers a dataset under its name. It fails when the name is
// already taken; Drop first to replace.
func (s *Store) Add(d *Dataset) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.datasets[d.Name()]; ok {
		return fmt.Errorf("store: dataset %q already exists", d.Name())
	}
	s.datasets[d.Name()] = d
	return nil
}

// Restore loads the snapshot at dir and registers the resulting dataset
// under its manifest name — eagerly decoded (Open), or served in place
// (OpenMapped) when EnableMmap is on and the snapshot's format allows
// it. The load validates every artifact it reads before anything is
// registered, so a corrupt or version-mismatched snapshot leaves the
// store untouched — there is no partial registration. Registration
// still fails if the name is already taken. (On a mapped restore only
// the manifests and shard prefixes are validated eagerly; data-region
// corruption surfaces as a typed error on the first query touching the
// shard.)
func (s *Store) Restore(dir string) (*Dataset, error) {
	res := s.Residency()
	var d *Dataset
	var err error
	if res != nil {
		d, err = OpenMapped(dir, "", res)
	} else {
		d, err = Open(dir, "")
	}
	if err != nil {
		return nil, err
	}
	if err := s.Add(d); err != nil {
		return nil, err
	}
	return d, nil
}

// Get returns the dataset registered under name.
func (s *Store) Get(name string) (*Dataset, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	d, ok := s.datasets[name]
	return d, ok
}

// Drop unregisters a dataset and reports whether it existed. Queries
// already holding the dataset keep working; the registry simply stops
// handing it out. The dropped dataset's result-cache generation is
// bumped, so a replacement registered under the same name never has
// results computed against the old data served for it, even by a caller
// still holding the old handle.
func (s *Store) Drop(name string) bool {
	s.mu.Lock()
	d, ok := s.datasets[name]
	delete(s.datasets, name)
	s.mu.Unlock()
	if ok {
		d.Invalidate()
	}
	return ok
}

// Names returns the registered dataset names, sorted.
func (s *Store) Names() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	names := make([]string, 0, len(s.datasets))
	for name := range s.datasets {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Stats returns the stats of every registered dataset, sorted by name,
// including the per-shard breakdown. The registry is snapshotted under
// one lock acquisition; the per-dataset stats are then collected outside
// it.
func (s *Store) Stats() []DatasetStats {
	ds := s.snapshot()
	out := make([]DatasetStats, len(ds))
	for i, d := range ds {
		out[i] = d.Stats()
	}
	return out
}

// Summaries is Stats without the per-shard breakdowns — the cheap
// variant for dataset listings and metrics scrapes.
func (s *Store) Summaries() []DatasetStats {
	ds := s.snapshot()
	out := make([]DatasetStats, len(ds))
	for i, d := range ds {
		out[i] = d.StatsSummary()
	}
	return out
}

// snapshot collects the registered datasets under one lock acquisition,
// sorted by name.
func (s *Store) snapshot() []*Dataset {
	s.mu.RLock()
	ds := make([]*Dataset, 0, len(s.datasets))
	for _, d := range s.datasets {
		ds = append(ds, d)
	}
	s.mu.RUnlock()
	sort.Slice(ds, func(i, j int) bool { return ds[i].Name() < ds[j].Name() })
	return ds
}
