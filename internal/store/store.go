package store

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"geoblocks/internal/snapshot"
)

// IngestConfig is the store-wide streaming-ingest policy, applied to
// every writable dataset as it is registered (EnableIngest).
type IngestConfig struct {
	// WALDir, when non-empty, attaches a write-ahead log at
	// <WALDir>/<name>.wal to each registered dataset: acknowledged
	// ingests are fsynced before the ack and replayed on restore. Empty
	// keeps ingest volatile.
	WALDir string
	// DeltaMaxRows is the per-dataset backpressure cap on pending delta
	// rows (0 = uncapped); half of it kicks the compactor.
	DeltaMaxRows int64
	// CompactInterval is the background fold cadence; <= 0 folds only on
	// backpressure kicks.
	CompactInterval time.Duration
	// OnError observes background compaction errors (may be nil).
	OnError func(error)
}

// Store is a registry of named datasets. The zero value is not usable;
// call New.
type Store struct {
	mu       sync.RWMutex
	datasets map[string]*Dataset

	// residency, when non-nil, switches Restore to serving snapshots in
	// place (OpenMapped) and budgets the materialised shards of every
	// mapped dataset through one shared manager.
	residency *Residency

	// ingestCfg, when non-nil, is applied to every writable dataset at
	// Add time: delta cap, WAL attach+replay, background compactor.
	ingestCfg  *IngestConfig
	compactors map[string]*Compactor

	// assignEpoch is the cluster assignment epoch stamped onto every
	// registered dataset (0 outside cluster mode); see SetAssignmentEpoch.
	assignEpoch uint64
}

// New creates an empty store.
func New() *Store {
	return &Store{
		datasets:   make(map[string]*Dataset),
		compactors: make(map[string]*Compactor),
	}
}

// EnableIngest makes every subsequently registered writable (non-mapped)
// dataset streaming-ready: its delta cap is set, a WAL is attached (and
// replayed) when cfg.WALDir is set, and a background compactor starts.
// Call before restoring or building datasets; already-registered
// datasets are unaffected.
func (s *Store) EnableIngest(cfg IngestConfig) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ingestCfg = &cfg
}

// attachIngest applies the store's ingest policy to one dataset. Called
// with s.mu held, before the dataset becomes visible in the registry, so
// WAL replay finishes before any query or ingest can reach it.
func (s *Store) attachIngest(d *Dataset) error {
	cfg := s.ingestCfg
	if cfg == nil || d.Mapped() {
		return nil
	}
	d.SetDeltaMaxRows(cfg.DeltaMaxRows)
	if cfg.WALDir != "" {
		if !d.restored {
			// A freshly built dataset starts a fresh log: a stale WAL left
			// by a dropped-but-not-purged predecessor of the same name
			// holds rows of different data and must not replay into it.
			if err := snapshot.RemoveWAL(cfg.WALDir, d.Name()); err != nil {
				return err
			}
		}
		if err := d.EnableWAL(cfg.WALDir); err != nil {
			return err
		}
	}
	c := NewCompactor(d, cfg.CompactInterval)
	c.OnError = cfg.OnError
	c.Start()
	s.compactors[d.Name()] = c
	return nil
}

// detachIngest stops a dropped dataset's compactor and closes its WAL.
// Called without s.mu held: Compactor.Close waits for an in-flight fold.
func (s *Store) detachIngest(name string, d *Dataset) {
	s.mu.Lock()
	c := s.compactors[name]
	delete(s.compactors, name)
	s.mu.Unlock()
	if c != nil {
		c.Close()
	}
	_ = d.CloseWAL()
}

// Close stops every background compactor and closes every attached WAL.
// Call during shutdown, before exit-time snapshots, so folds and log
// writes are quiesced.
func (s *Store) Close() {
	s.mu.Lock()
	cs := make([]*Compactor, 0, len(s.compactors))
	ds := make([]*Dataset, 0, len(s.compactors))
	for name, c := range s.compactors {
		cs = append(cs, c)
		if d, ok := s.datasets[name]; ok {
			ds = append(ds, d)
		}
	}
	s.compactors = make(map[string]*Compactor)
	s.mu.Unlock()
	for _, c := range cs {
		c.Close()
	}
	for _, d := range ds {
		_ = d.CloseWAL()
	}
}

// EnableMmap makes subsequent Restores serve format-v3 snapshots in
// place — shards mmap and materialise on first query — with budgetBytes
// of resident-memory budget shared across all mapped datasets (<= 0 is
// unlimited). Version-1 snapshots still restore eagerly. Call before
// restoring; already-restored datasets are unaffected.
func (s *Store) EnableMmap(budgetBytes int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.residency = NewResidency(budgetBytes)
}

// Residency returns the store's residency manager, nil when mmap
// serving is not enabled.
func (s *Store) Residency() *Residency {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.residency
}

// Add registers a dataset under its name. It fails when the name is
// already taken; Drop first to replace. With EnableIngest configured,
// registration also makes a writable dataset streaming-ready (WAL
// replayed before the dataset becomes visible); an attach failure
// registers nothing.
func (s *Store) Add(d *Dataset) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.datasets[d.Name()]; ok {
		return fmt.Errorf("store: dataset %q already exists", d.Name())
	}
	if err := s.attachIngest(d); err != nil {
		return fmt.Errorf("store: attaching ingest to %q: %w", d.Name(), err)
	}
	d.SetAssignmentEpoch(s.assignEpoch)
	s.datasets[d.Name()] = d
	return nil
}

// SetAssignmentEpoch stamps the cluster assignment epoch onto every
// registered dataset and every dataset registered later, so snapshot
// manifests record the assignment generation they were serving under.
// Called by the cluster coordinator on assignment load and reload.
func (s *Store) SetAssignmentEpoch(epoch uint64) {
	s.mu.Lock()
	s.assignEpoch = epoch
	ds := make([]*Dataset, 0, len(s.datasets))
	for _, d := range s.datasets {
		ds = append(ds, d)
	}
	s.mu.Unlock()
	for _, d := range ds {
		d.SetAssignmentEpoch(epoch)
	}
}

// Restore loads the snapshot at dir and registers the resulting dataset
// under its manifest name — eagerly decoded (Open), or served in place
// (OpenMapped) when EnableMmap is on and the snapshot's format allows
// it. The load validates every artifact it reads before anything is
// registered, so a corrupt or version-mismatched snapshot leaves the
// store untouched — there is no partial registration. Registration
// still fails if the name is already taken. (On a mapped restore only
// the manifests and shard prefixes are validated eagerly; data-region
// corruption surfaces as a typed error on the first query touching the
// shard.)
func (s *Store) Restore(dir string) (*Dataset, error) {
	res := s.Residency()
	var d *Dataset
	var err error
	if res != nil {
		d, err = OpenMapped(dir, "", res)
	} else {
		d, err = Open(dir, "")
	}
	if err != nil {
		return nil, err
	}
	if err := s.Add(d); err != nil {
		return nil, err
	}
	return d, nil
}

// Get returns the dataset registered under name.
func (s *Store) Get(name string) (*Dataset, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	d, ok := s.datasets[name]
	return d, ok
}

// Drop unregisters a dataset and reports whether it existed. Queries
// already holding the dataset keep working; the registry simply stops
// handing it out. The dropped dataset's result-cache generation is
// bumped, so a replacement registered under the same name never has
// results computed against the old data served for it, even by a caller
// still holding the old handle.
func (s *Store) Drop(name string) bool {
	s.mu.Lock()
	d, ok := s.datasets[name]
	delete(s.datasets, name)
	s.mu.Unlock()
	if ok {
		d.Invalidate()
		// Quiesce the write path: stop the background compactor and close
		// the WAL (the log file itself stays on disk unless purged — a
		// dropped dataset's snapshot+WAL pair remains a recovery point).
		s.detachIngest(name, d)
	}
	return ok
}

// Names returns the registered dataset names, sorted.
func (s *Store) Names() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	names := make([]string, 0, len(s.datasets))
	for name := range s.datasets {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Stats returns the stats of every registered dataset, sorted by name,
// including the per-shard breakdown. The registry is snapshotted under
// one lock acquisition; the per-dataset stats are then collected outside
// it.
func (s *Store) Stats() []DatasetStats {
	ds := s.snapshot()
	out := make([]DatasetStats, len(ds))
	for i, d := range ds {
		out[i] = d.Stats()
	}
	return out
}

// Summaries is Stats without the per-shard breakdowns — the cheap
// variant for dataset listings and metrics scrapes.
func (s *Store) Summaries() []DatasetStats {
	ds := s.snapshot()
	out := make([]DatasetStats, len(ds))
	for i, d := range ds {
		out[i] = d.StatsSummary()
	}
	return out
}

// snapshot collects the registered datasets under one lock acquisition,
// sorted by name.
func (s *Store) snapshot() []*Dataset {
	s.mu.RLock()
	ds := make([]*Dataset, 0, len(s.datasets))
	for _, d := range s.datasets {
		ds = append(ds, d)
	}
	s.mu.RUnlock()
	sort.Slice(ds, func(i, j int) bool { return ds[i].Name() < ds[j].Name() })
	return ds
}
