package store

import (
	"container/list"
	"errors"
	"fmt"
	"sync"

	"geoblocks"
	"geoblocks/internal/core"
	"geoblocks/internal/mmapfile"
	"geoblocks/internal/snapshot"
)

// Residency is the store's resident-memory manager for datasets served
// from mapped (format v3) snapshots. Every lazy shard registers with one
// Residency; shards materialise (mmap + checksum + view construction +
// pyramid derivation) on their first query and the manager keeps the
// total materialised cost within a byte budget by evicting the
// least-recently-used unpinned shard — dropping its mapping so the
// pages go back to the OS, to be re-faulted on demand.
//
// The budget is best-effort, not a hard cap: shards pinned by in-flight
// queries are never evicted, so the floor is the cost of the shards one
// query touches at once. A budget of 0 never evicts.
//
// One mutex owns all residency state (LRU order, per-shard state
// machines, refcounts, byte totals, counters). Materialisation I/O and
// munmap run outside the lock; a condition variable serialises
// concurrent faults of the same shard so the work happens once.
type Residency struct {
	mu   sync.Mutex
	cond *sync.Cond

	budget int64

	// lru orders the resident shards, most recently used first. Values
	// are *lazyShard. Cold and faulting shards are not on the list.
	lru list.List

	// mappedBytes/mappedShards cover every registered shard (the full
	// on-disk footprint being served); residentBytes/residentShards only
	// the currently materialised ones.
	mappedBytes    int64
	mappedShards   int
	residentBytes  int64
	residentShards int

	faults    uint64
	evictions uint64
}

// NewResidency creates a manager with the given byte budget for
// materialised shards. budget <= 0 means unlimited: shards fault in on
// first use and stay resident.
func NewResidency(budget int64) *Residency {
	r := &Residency{budget: budget}
	r.cond = sync.NewCond(&r.mu)
	return r
}

// ResidencyStats is a point-in-time snapshot of the manager's counters,
// reported by /v1/stats and /metrics.
type ResidencyStats struct {
	// BudgetBytes is the configured budget (0 = unlimited).
	BudgetBytes int64 `json:"budget_bytes"`
	// MappedBytes is the on-disk footprint of every registered shard —
	// the address space a fully-faulted store would map.
	MappedBytes  int64 `json:"mapped_bytes"`
	MappedShards int   `json:"mapped_shards"`
	// ResidentBytes is the materialised cost currently charged against
	// the budget (mapped file bytes plus heap overhead per shard).
	ResidentBytes  int64 `json:"resident_bytes"`
	ResidentShards int   `json:"resident_shards"`
	// Faults counts shard materialisations (first touch and every
	// re-fault after an eviction); Evictions counts budget evictions.
	Faults    uint64 `json:"faults"`
	Evictions uint64 `json:"evictions"`
}

// Stats snapshots the manager's counters.
func (r *Residency) Stats() ResidencyStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return ResidencyStats{
		BudgetBytes:    r.budget,
		MappedBytes:    r.mappedBytes,
		MappedShards:   r.mappedShards,
		ResidentBytes:  r.residentBytes,
		ResidentShards: r.residentShards,
		Faults:         r.faults,
		Evictions:      r.evictions,
	}
}

// register adds a lazy shard to the mapped totals at dataset-open time.
func (r *Residency) register(ls *lazyShard) {
	r.mu.Lock()
	r.mappedBytes += ls.src.Bytes
	r.mappedShards++
	r.mu.Unlock()
}

// evictLocked walks the LRU tail evicting unpinned resident shards until
// the budget is met (or only pinned shards remain). It returns the
// detached mappings; the caller munmaps them after releasing the lock —
// no query can reach a detached mapping (its shard is cold and its
// refcount was zero), so the unmap is safe.
func (r *Residency) evictLocked() []*mmapfile.Mapping {
	if r.budget <= 0 {
		return nil
	}
	var detached []*mmapfile.Mapping
	e := r.lru.Back()
	for e != nil && r.residentBytes > r.budget {
		prev := e.Prev()
		ls := e.Value.(*lazyShard)
		if ls.refs == 0 {
			detached = append(detached, ls.detachLocked())
		}
		e = prev
	}
	return detached
}

// shard residency states.
const (
	shardCold     = iota // no block; first acquire materialises
	shardFaulting        // one goroutine is materialising; others wait
	shardResident        // block live, on the LRU list
)

// lazyShard is one shard of a mapped dataset: the on-disk artifact plus
// the residency state machine around its materialised block. All fields
// below the cfg are owned by res.mu.
type lazyShard struct {
	res *Residency
	src snapshot.LazyShard
	cfg materializeCfg

	state   int
	refs    int
	block   *geoblocks.GeoBlock
	mapping *mmapfile.Mapping
	cost    int64
	elem    *list.Element
}

// materializeCfg is what fault-time block construction needs from the
// dataset options: the cache and pyramid configuration every shard is
// (re)built with.
type materializeCfg struct {
	cacheThreshold   float64
	cacheAutoRefresh int
	pyramidLevels    int
}

// acquire pins the shard's block for the duration of one query and
// returns it with a release func. Cold shards materialise on the spot
// (this is the shard fault); concurrent acquirers of a faulting shard
// wait for the single materialisation instead of duplicating it. The
// release func is idempotent.
//
// A materialisation failure (unreadable file, data-region checksum
// mismatch — the lazily-deferred corruption check) resets the shard to
// cold and surfaces the error to the query; later acquires retry, so a
// transient I/O failure does not wedge the shard.
func (ls *lazyShard) acquire() (*geoblocks.GeoBlock, func(), error) {
	r := ls.res
	r.mu.Lock()
	for {
		switch ls.state {
		case shardResident:
			ls.refs++
			r.lru.MoveToFront(ls.elem)
			r.mu.Unlock()
			return ls.block, ls.releaseOnce(), nil

		case shardFaulting:
			r.cond.Wait()

		case shardCold:
			ls.state = shardFaulting
			r.mu.Unlock()

			blk, mapping, cost, err := ls.materialize()

			r.mu.Lock()
			if err != nil {
				ls.state = shardCold
				r.cond.Broadcast()
				r.mu.Unlock()
				return nil, nil, err
			}
			ls.block, ls.mapping, ls.cost = blk, mapping, cost
			ls.state = shardResident
			ls.refs = 1
			ls.elem = r.lru.PushFront(ls)
			r.residentBytes += cost
			r.residentShards++
			r.faults++
			detached := r.evictLocked()
			r.cond.Broadcast()
			r.mu.Unlock()
			closeMappings(detached)
			return blk, ls.releaseOnce(), nil
		}
	}
}

// peek pins the block only if it is already resident — for cache
// refreshes and stats, which must not fault cold shards in.
func (ls *lazyShard) peek() (*geoblocks.GeoBlock, func(), bool) {
	r := ls.res
	r.mu.Lock()
	if ls.state != shardResident {
		r.mu.Unlock()
		return nil, nil, false
	}
	ls.refs++
	r.mu.Unlock()
	return ls.block, ls.releaseOnce(), true
}

// releaseOnce wraps release so a double call (deferred and explicit)
// cannot corrupt the refcount.
func (ls *lazyShard) releaseOnce() func() {
	var once sync.Once
	return func() { once.Do(ls.release) }
}

// release drops one pin. An over-budget shard becomes evictable the
// moment its last pin drops, so the budget check runs here too.
func (ls *lazyShard) release() {
	r := ls.res
	r.mu.Lock()
	ls.refs--
	detached := r.evictLocked()
	r.mu.Unlock()
	closeMappings(detached)
}

// detachLocked transitions a resident, unpinned shard back to cold and
// returns its mapping for the caller to close outside the lock.
func (ls *lazyShard) detachLocked() *mmapfile.Mapping {
	r := ls.res
	r.lru.Remove(ls.elem)
	ls.elem = nil
	ls.state = shardCold
	ls.block = nil
	m := ls.mapping
	ls.mapping = nil
	r.residentBytes -= ls.cost
	r.residentShards--
	r.evictions++
	return m
}

// materialize is the shard fault: map the file, verify the data-region
// checksum and build the zero-copy views (geoblocks.MapGeoBlock), then
// re-derive the cache configuration and pyramid levels exactly as an
// eager restore would. Runs outside the residency lock.
func (ls *lazyShard) materialize() (*geoblocks.GeoBlock, *mmapfile.Mapping, int64, error) {
	m, err := mmapfile.Open(ls.src.Path)
	if err != nil {
		return nil, nil, 0, fmt.Errorf("%w: shard %s: %v", snapshot.ErrCorrupt, ls.src.Path, err)
	}
	blk, err := geoblocks.MapGeoBlock(m.Data())
	if err != nil {
		m.Close()
		// Map core sentinels onto the snapshot ones so fault-time
		// corruption carries the same type restore-time corruption does.
		wrapped := snapshot.ErrCorrupt
		if errors.Is(err, core.ErrVersion) {
			wrapped = snapshot.ErrVersion
		}
		return nil, nil, 0, fmt.Errorf("%w: shard %s: %v", wrapped, ls.src.Path, err)
	}
	if ls.cfg.cacheThreshold > 0 {
		if err := blk.EnableCache(ls.cfg.cacheThreshold, ls.cfg.cacheAutoRefresh); err != nil {
			m.Close()
			return nil, nil, 0, err
		}
	}
	if err := blk.BuildPyramid(ls.cfg.pyramidLevels); err != nil {
		m.Close()
		return nil, nil, 0, err
	}
	// Residency cost: the mapped file (the checksum pass touches every
	// page, so the whole file is resident after a fault) plus the heap
	// the view construction allocates — per-column prefix-sum arrays and
	// the derived pyramid levels.
	prefixes := int64(ls.src.Info.NumCells+1) * int64(len(ls.src.Info.Schema.Names)) * 8
	cost := ls.src.Bytes + prefixes + int64(blk.PyramidBytes())
	return blk, m, cost, nil
}

// residentCost reports whether the shard is materialised and its charged
// cost, for stats.
func (ls *lazyShard) residentCost() (bool, int64) {
	ls.res.mu.Lock()
	defer ls.res.mu.Unlock()
	return ls.state == shardResident, ls.cost
}

// closeMappings munmaps detached mappings outside the residency lock.
func closeMappings(ms []*mmapfile.Mapping) {
	for _, m := range ms {
		m.Close()
	}
}
