package store

import (
	"encoding/binary"
	"math"

	"geoblocks"
	"geoblocks/internal/cellid"
	"geoblocks/internal/cover"
	"geoblocks/internal/geom"
	"geoblocks/internal/resultcache"
)

// This file is the approximate geospatial join operator: K polygons,
// per-polygon aggregates, one pass over the dataset. The plan is shared
// — one pyramid level for the whole join, one shared-grid covering pass
// (cover.CoverShared) classifying (polygon, grid cell) pairs interior or
// boundary — and the execution fans out per *shard*, not per polygon:
// each involved shard runs the multi-accumulator kernel
// (SelectCoveringMulti) once over all polygons routed to it, then
// per-polygon partials merge in ascending shard order, base before
// delta, exactly the order the sequential Query path uses. Answers are
// therefore bit-identical to N sequential Query calls for COUNT/MIN/MAX
// (and on the serial uncached path for SUM too — the multi kernel
// combines each polygon's ranges in the same sequence); SUM stays
// within the documented reassociation bound whenever any path involved
// re-associates (block caches, parallel kernels). join_test.go pins the
// equivalence with a randomized property suite.

// JoinStats describes one join call: the shared plan's shape and the
// classification economy (interior pairs cost zero geometry tests).
type JoinStats struct {
	// Polygons is the number of join inputs.
	Polygons int `json:"polygons"`
	// UniquePolygons is the number of distinct join inputs after exact
	// content deduplication. Fan-in requests repeat geometries (dashboard
	// tiles over a hot tract set); repeats are answered once and the
	// result replicated, which is exact because the pipeline is
	// deterministic.
	UniquePolygons int `json:"unique_polygons"`
	// Level is the pyramid level the join was planned at.
	Level int `json:"level"`
	// GridLevel is the shared coarse grid's level (0 when every input
	// was served from the result cache).
	GridLevel int `json:"grid_level"`
	// InteriorPairs / BoundaryPairs count (polygon, grid cell)
	// classifications: interior pairs were answered wholesale from the
	// grid cell with no boundary refinement.
	InteriorPairs int `json:"interior_pairs"`
	BoundaryPairs int `json:"boundary_pairs"`
	// Fallbacks counts polygons covered by the single-region coverer
	// (oversized coverings near the cell budget).
	Fallbacks int `json:"fallbacks"`
	// CacheHits / CacheMisses count per-polygon result-cache outcomes
	// (both zero when the dataset has no result cache or the options
	// bypass it).
	CacheHits   int `json:"cache_hits"`
	CacheMisses int `json:"cache_misses"`
}

// InteriorFraction returns the share of classified pairs that were
// interior — the join metric served at /metrics.
func (s JoinStats) InteriorFraction() float64 {
	total := s.InteriorPairs + s.BoundaryPairs
	if total == 0 {
		return 0
	}
	return float64(s.InteriorPairs) / float64(total)
}

// Join answers one aggregate query per polygon in a single pass: plan
// once, cover against the shared grid, fan out per shard through the
// multi-accumulator kernel, merge per-polygon partials in shard order.
// Results align positionally with polys. Joins execute on the serial
// kernel regardless of opts.Workers (the multi kernel is the
// parallelism — across polygons, not within one); opts.MaxError plans
// the shared level and opts.DisableCache bypasses the result cache.
func (d *Dataset) Join(polys []*geom.Polygon, opts geoblocks.QueryOptions, reqs ...geoblocks.AggRequest) ([]geoblocks.Result, JoinStats, error) {
	// Deduplicate repeated polygons by exact ring content: each distinct
	// geometry is planned, covered and aggregated once, and its result is
	// replicated to every occurrence — identical to querying each
	// occurrence independently, because the whole pipeline is
	// deterministic in the polygon's content.
	uniq := make([]*geom.Polygon, 0, len(polys))
	back := make([]int, len(polys))
	seen := make(map[string]int, len(polys))
	for i, p := range polys {
		k := polygonContentKey(p)
		if j, ok := seen[k]; ok {
			back[i] = j
			continue
		}
		seen[k] = len(uniq)
		back[i] = len(uniq)
		uniq = append(uniq, p)
	}
	regions := make([]cover.Region, len(uniq))
	for i, p := range uniq {
		regions[i] = p
	}
	res, stats, err := d.join(regions, len(polys), opts, reqs, func(i, lvl int, tag string) resultcache.Key {
		return resultcache.PolygonKey(uniq[i], lvl, opts.MaxError, tag)
	})
	if err != nil || len(uniq) == len(polys) {
		return res, stats, err
	}
	out := make([]geoblocks.Result, len(polys))
	for i, j := range back {
		out[i] = res[j]
	}
	return out, stats, nil
}

// polygonContentKey is an exact byte-string of the polygon's rings, used
// to recognise repeated polygons within one join request. Unlike the
// result cache's hashed key, equality here is exact, so deduplication
// can never alias two distinct polygons.
func polygonContentKey(p *geom.Polygon) string {
	n := len(p.Outer()) * 16
	for _, h := range p.Holes() {
		n += len(h)*16 + 1
	}
	b := make([]byte, 0, n)
	for _, v := range p.Outer() {
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(v.X))
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(v.Y))
	}
	for _, h := range p.Holes() {
		b = append(b, 0xb1) // ring separator
		for _, v := range h {
			b = binary.LittleEndian.AppendUint64(b, math.Float64bits(v.X))
			b = binary.LittleEndian.AppendUint64(b, math.Float64bits(v.Y))
		}
	}
	return string(b)
}

// JoinRects is Join over rectangles — the window/grid fast path (a batch
// of map tiles or a rect-grid aggregation window).
func (d *Dataset) JoinRects(rects []geom.Rect, opts geoblocks.QueryOptions, reqs ...geoblocks.AggRequest) ([]geoblocks.Result, JoinStats, error) {
	regions := make([]cover.Region, len(rects))
	for i, r := range rects {
		regions[i] = cover.RectRegion(r)
	}
	return d.join(regions, len(rects), opts, reqs, func(i, lvl int, tag string) resultcache.Key {
		return resultcache.RectKey(rects[i], lvl, opts.MaxError, tag)
	})
}

// PlanJoin plans a join for the cluster coordinator: one shared pyramid
// level, one shared-grid covering pass, one Plan per polygon. Every
// replica holding the same build derives the identical plans, so a
// coordinator can scatter each polygon's sub-coverings through the
// existing partial wire and inherit the single-node merge contract.
func (d *Dataset) PlanJoin(polys []*geom.Polygon, maxError float64) ([]Plan, JoinStats) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	lvl := d.PlanLevel(maxError)
	c := d.covererAt(lvl)
	regions := make([]cover.Region, len(polys))
	for i, p := range polys {
		regions[i] = p
	}
	sc := c.CoverShared(regions)
	plans := make([]Plan, len(polys))
	for i := range polys {
		plans[i] = Plan{Level: lvl, Cover: sc.Covers[i].Cells, ErrorBound: sc.Bounds[i]}
	}
	stats := JoinStats{
		Polygons:       len(polys),
		UniquePolygons: len(polys),
		Level:          lvl,
		GridLevel:      sc.GridLevel,
		InteriorPairs:  sc.InteriorPairs,
		BoundaryPairs:  sc.BoundaryPairs,
		Fallbacks:      sc.Fallbacks,
	}
	d.noteJoin(stats)
	return plans, stats
}

// noteJoin folds one join's stats into the dataset's cumulative
// counters.
func (d *Dataset) noteJoin(s JoinStats) {
	d.joins.Add(1)
	d.joinPolygons.Add(uint64(s.Polygons))
	d.joinInterior.Add(uint64(s.InteriorPairs))
	d.joinBoundary.Add(uint64(s.BoundaryPairs))
	d.joinFallbacks.Add(uint64(s.Fallbacks))
	d.joinCacheHits.Add(uint64(s.CacheHits))
	d.joinCacheMisses.Add(uint64(s.CacheMisses))
}

func (d *Dataset) join(regions []cover.Region, total int, opts geoblocks.QueryOptions, reqs []geoblocks.AggRequest, keyAt func(i, lvl int, tag string) resultcache.Key) ([]geoblocks.Result, JoinStats, error) {
	if err := opts.Validate(); err != nil {
		return nil, JoinStats{}, err
	}
	d.queries.Add(uint64(total))
	d.mu.RLock()
	defer d.mu.RUnlock()

	lvl := d.PlanLevel(opts.MaxError)
	stats := JoinStats{Polygons: total, UniquePolygons: len(regions), Level: lvl}
	results := make([]geoblocks.Result, len(regions))
	covs := make([][]cellid.ID, len(regions))
	bounds := make([]float64, len(regions))
	served := make([]bool, len(regions)) // result-cache hits, already final

	// Per-polygon result-cache resolution: hits are final, memoized
	// coverings skip classification, cold misses go through the shared
	// grid. Hit/miss counters bump per element inside Lookup.
	useCache := d.results != nil && resultCacheable(opts)
	var gen uint64
	var tag string
	var keys []resultcache.Key
	toCover := make([]int, 0, len(regions))
	if useCache {
		tag = aggsTag(reqs)
		gen = d.results.Generation()
		keys = make([]resultcache.Key, len(regions))
		for i := range regions {
			keys[i] = keyAt(i, lvl, tag)
			res, cells, bound, outcome := d.results.Lookup(keys[i], gen)
			switch outcome {
			case resultcache.Hit:
				results[i] = res
				served[i] = true
				stats.CacheHits++
			case resultcache.MissCovered:
				covs[i], bounds[i] = cells, bound
				stats.CacheMisses++
			default:
				toCover = append(toCover, i)
				stats.CacheMisses++
			}
		}
	} else {
		for i := range regions {
			toCover = append(toCover, i)
		}
	}

	// One shared-grid pass covers every polygon that still needs a
	// covering; each result is identical to the single-region Cover, so
	// cached coverings and shared-grid coverings are interchangeable.
	if len(toCover) > 0 {
		c := d.covererAt(lvl)
		sub := make([]cover.Region, len(toCover))
		for j, i := range toCover {
			sub[j] = regions[i]
		}
		sc := c.CoverShared(sub)
		stats.GridLevel = sc.GridLevel
		stats.InteriorPairs = sc.InteriorPairs
		stats.BoundaryPairs = sc.BoundaryPairs
		stats.Fallbacks = sc.Fallbacks
		for j, i := range toCover {
			covs[i], bounds[i] = sc.Covers[j].Cells, sc.Bounds[j]
		}
	}

	// Shard fan-out: walk the shards in ascending cell order once; each
	// shard answers every polygon routed to it in one multi-kernel pass
	// (base), then per-polygon delta partials merge base-then-delta.
	// Accumulating in shard order as we go reproduces the sequential
	// query's merge tree exactly.
	totals := make([]*geoblocks.Accumulator, len(regions))
	for si := range d.shards {
		sh := &d.shards[si]
		var idx []int
		var subs [][]cellid.ID
		for i := range regions {
			if served[i] {
				continue
			}
			if sub := geoblocks.SplitCovering(covs[i], sh.cell); len(sub) > 0 {
				idx = append(idx, i)
				subs = append(subs, sub)
			}
		}
		if len(idx) == 0 {
			continue
		}
		blk, release, err := sh.acquire()
		if err != nil {
			return nil, stats, err
		}
		accs, err := levelBlock(blk, lvl).QueryCoveringMultiPartial(subs, reqs...)
		if err != nil {
			release()
			return nil, stats, err
		}
		if sh.delta != nil {
			if leaves, cols := sh.delta.view(); len(leaves) > 0 {
				for j := range idx {
					dacc, err := blk.QueryRowsPartial(subs[j], leaves, cols, reqs...)
					if err != nil {
						release()
						return nil, stats, err
					}
					if err := accs[j].MergeFrom(dacc); err != nil {
						release()
						return nil, stats, err
					}
				}
			}
		}
		release()
		for j, i := range idx {
			if totals[i] == nil {
				totals[i] = accs[j]
				continue
			}
			if err := totals[i].MergeFrom(accs[j]); err != nil {
				return nil, stats, err
			}
		}
	}

	// Finalise: routed polygons from their merged partials, unrouted
	// ones from the identity partial (zero count, NaN extrema).
	var identity *geoblocks.Accumulator
	for i := range regions {
		if served[i] {
			continue
		}
		acc := totals[i]
		if acc == nil {
			if identity == nil {
				var err error
				identity, err = shardPartial(&d.shards[0], nil, lvl, opts, reqs)
				if err != nil {
					return nil, stats, err
				}
			}
			acc = identity
		}
		res := acc.Result()
		res.Level = lvl
		res.ErrorBound = bounds[i]
		results[i] = res
		if useCache {
			d.results.Store(keys[i], covs[i], bounds[i], res, gen)
		}
	}
	d.noteJoin(stats)
	return results, stats, nil
}
