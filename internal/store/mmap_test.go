package store

import (
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"geoblocks"
	"geoblocks/internal/core"
	"geoblocks/internal/geom"
	"geoblocks/internal/snapshot"
)

// saveV3Dataset builds a sharded dataset and snapshots it in format v3.
func saveV3Dataset(t *testing.T, rows int, opts Options) (*Dataset, string) {
	t.Helper()
	d := buildDataset(t, "mapped", rows, 11, opts)
	dir := filepath.Join(t.TempDir(), "mapped")
	if _, err := d.SnapshotV3(dir); err != nil {
		t.Fatalf("SnapshotV3: %v", err)
	}
	return d, dir
}

var mappedOpts = Options{Level: 12, ShardLevel: 2, PyramidLevels: 3, CacheThreshold: 0.2}

// TestMappedEquivalence: a dataset served in place from a mapped v3
// snapshot must answer every query — exact and error-bounded, single and
// batch — identically to the in-memory dataset it was snapshotted from.
func TestMappedEquivalence(t *testing.T) {
	d, dir := saveV3Dataset(t, 20_000, mappedOpts)
	md, err := OpenMapped(dir, "", nil)
	if err != nil {
		t.Fatalf("OpenMapped: %v", err)
	}
	if !md.Mapped() {
		t.Fatal("OpenMapped of a v3 snapshot must yield a mapped dataset")
	}
	if md.NumShards() != d.NumShards() {
		t.Fatalf("mapped dataset has %d shards, want %d", md.NumShards(), d.NumShards())
	}

	polys := randomPolys(60, 29)
	for _, maxErr := range []float64{0, 0.5, 2, 10} {
		opts := geoblocks.QueryOptions{MaxError: maxErr}
		for i, poly := range polys {
			want, err := d.QueryOpts(poly, opts, testReqs...)
			if err != nil {
				t.Fatal(err)
			}
			got, err := md.QueryOpts(poly, opts, testReqs...)
			if err != nil {
				t.Fatalf("mapped query %d (maxErr=%v): %v", i, maxErr, err)
			}
			assertEquivalent(t, got, want, "mapped query")
			if got.Level != want.Level || got.ErrorBound != want.ErrorBound {
				t.Fatalf("mapped plan diverges: level %d bound %v, want %d / %v",
					got.Level, got.ErrorBound, want.Level, want.ErrorBound)
			}
		}
	}

	wantBatch, err := d.QueryBatch(polys, testReqs...)
	if err != nil {
		t.Fatal(err)
	}
	gotBatch, err := md.QueryBatch(polys, testReqs...)
	if err != nil {
		t.Fatal(err)
	}
	for i := range wantBatch {
		assertEquivalent(t, gotBatch[i], wantBatch[i], "mapped batch")
	}

	st := md.Stats()
	if !st.Mapped || st.MappedBytes <= 0 {
		t.Fatalf("mapped stats: mapped=%v mapped_bytes=%d", st.Mapped, st.MappedBytes)
	}
	if st.ResidentShards == 0 || st.ResidentBytes <= 0 {
		t.Fatalf("after queries some shards must be resident: %d shards / %d bytes",
			st.ResidentShards, st.ResidentBytes)
	}
	if st.Tuples != d.Stats().Tuples || st.Cells != d.Stats().Cells {
		t.Fatalf("mapped structural stats diverge: %d tuples / %d cells, want %d / %d",
			st.Tuples, st.Cells, d.Stats().Tuples, d.Stats().Cells)
	}
}

// TestMappedPlanLevelPinned pins the mapped dataset's block-free
// PlanLevel arithmetic to the eager implementation (GeoBlock.LevelFor)
// across the maxError range.
func TestMappedPlanLevelPinned(t *testing.T) {
	_, dir := saveV3Dataset(t, 8000, mappedOpts)
	eager, err := Open(dir, "")
	if err != nil {
		t.Fatal(err)
	}
	mapped, err := OpenMapped(dir, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, maxErr := range []float64{0, 1e-9, 0.01, 0.05, 0.1, 0.3, 0.5, 1, 2, 5, 10, 50, 1000} {
		if got, want := mapped.PlanLevel(maxErr), eager.PlanLevel(maxErr); got != want {
			t.Fatalf("PlanLevel(%v) = %d mapped, %d eager", maxErr, got, want)
		}
	}
}

// TestMappedUpdateRejected: mapped datasets are read-only.
func TestMappedUpdateRejected(t *testing.T) {
	_, dir := saveV3Dataset(t, 4000, mappedOpts)
	md, err := OpenMapped(dir, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	batch := &geoblocks.UpdateBatch{
		Points: []geom.Point{geom.Pt(50, 50)},
		Cols:   [][]float64{{1}, {2}},
	}
	if err := md.Update(batch); !errors.Is(err, core.ErrReadOnly) {
		t.Fatalf("Update on mapped dataset: %v, want ErrReadOnly", err)
	}
}

// TestMappedEviction drives a mapped dataset through a residency budget
// far below its footprint with concurrent queries: every answer must
// stay correct through fault→evict→re-fault cycles, the manager must
// record evictions, and the resident total must stay within the budget
// whenever no query holds a pin. Run under -race in CI, this is the
// eviction path's race suite.
func TestMappedEviction(t *testing.T) {
	d, dir := saveV3Dataset(t, 20_000, Options{Level: 12, ShardLevel: 2, PyramidLevels: 2})
	st := New()
	// Budget roughly one shard: every multi-shard round trip must evict.
	var total int64
	m, _, err := snapshot.OpenLazy(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range m.Shards {
		total += e.Bytes
	}
	budget := total / int64(len(m.Shards))
	st.EnableMmap(budget)
	md, err := st.Restore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !md.Mapped() {
		t.Fatal("Restore with EnableMmap must map v3 snapshots")
	}

	polys := randomPolys(40, 31)
	want := make([]geoblocks.Result, len(polys))
	for i, p := range polys {
		if want[i], err = d.Query(p, testReqs...); err != nil {
			t.Fatal(err)
		}
	}

	var wg sync.WaitGroup
	errc := make(chan error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for n := 0; n < 50; n++ {
				i := rng.Intn(len(polys))
				got, err := md.Query(polys[i], testReqs...)
				if err != nil {
					errc <- err
					return
				}
				if got.Count != want[i].Count {
					t.Errorf("query %d under eviction: count %d, want %d", i, got.Count, want[i].Count)
					return
				}
			}
		}(int64(w))
	}
	wg.Wait()
	select {
	case err := <-errc:
		t.Fatalf("query under eviction: %v", err)
	default:
	}

	rs := st.Residency().Stats()
	if rs.Faults == 0 || rs.Evictions == 0 {
		t.Fatalf("eviction never exercised: %+v", rs)
	}
	if rs.Faults <= uint64(md.NumShards()) {
		t.Fatalf("no re-faults after eviction: %d faults over %d shards", rs.Faults, md.NumShards())
	}
	// With all pins released, the manager must have enforced the budget
	// (a single shard may exceed it — the floor is one pinned shard).
	if rs.ResidentShards > 1 && rs.ResidentBytes > rs.BudgetBytes {
		t.Fatalf("resident %d bytes over budget %d with %d shards and no pins",
			rs.ResidentBytes, rs.BudgetBytes, rs.ResidentShards)
	}
	if rs.MappedBytes != total {
		t.Fatalf("mapped bytes %d, want on-disk total %d", rs.MappedBytes, total)
	}
}

// TestMappedFaultCorruption is the query-time leg of the corruption
// suite: data-region corruption passes the lazy open (its checksum is
// deferred) and must surface as a typed ErrCorrupt on the first query
// that faults the shard — never a crash or a wrong answer. Other shards
// keep serving.
func TestMappedFaultCorruption(t *testing.T) {
	d, dir := saveV3Dataset(t, 20_000, Options{Level: 12, ShardLevel: 1})
	if d.NumShards() < 2 {
		t.Fatalf("need >= 2 shards, got %d", d.NumShards())
	}
	// Flip one bit deep inside shard 0's data region.
	path := filepath.Join(dir, "shard-00000.gb3")
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)-9] ^= 0x04
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}

	md, err := OpenMapped(dir, "", nil)
	if err != nil {
		t.Fatalf("lazy open must defer data-region checks: %v", err)
	}

	// A full-extent query touches every shard, so it must hit the
	// corrupt one and fail typed.
	all := geoblocks.RegularPolygon(geom.Pt(50, 50), 70, 8)
	if _, err := md.Query(all, testReqs...); !errors.Is(err, snapshot.ErrCorrupt) {
		t.Fatalf("query faulting a corrupt shard: %v, want ErrCorrupt", err)
	}
	// Retried queries keep failing typed (the shard resets to cold), not
	// crashing or succeeding.
	if _, err := md.Query(all, testReqs...); !errors.Is(err, snapshot.ErrCorrupt) {
		t.Fatalf("retried query on corrupt shard: %v, want ErrCorrupt", err)
	}

	// A query routed only to healthy shards still answers — per-shard
	// fault isolation. Shard 0 owns the first quadrant-ish range, so
	// probe each remaining shard's region via its cell bound.
	healthy := 0
	for i := 1; i < md.NumShards(); i++ {
		r := md.dom.CellRect(md.shards[i].cell)
		c := geom.Pt((r.Min.X+r.Max.X)/2, (r.Min.Y+r.Max.Y)/2)
		got, err := md.QueryRect(geom.RectFromCenter(c, (r.Max.X-r.Min.X)/4, (r.Max.Y-r.Min.Y)/4), testReqs...)
		if err != nil {
			t.Fatalf("healthy shard %d: %v", i, err)
		}
		if got.Count > 0 {
			healthy++
		}
	}
	if healthy == 0 {
		t.Fatal("no healthy shard answered with rows")
	}
}

// TestMappedSnapshotClone: snapshotting a mapped dataset clones its
// backing directory without faulting shards in; the clone restores
// eagerly to an equivalent dataset. Snapshotting onto the backing
// directory itself is a durable no-op.
func TestMappedSnapshotClone(t *testing.T) {
	d, dir := saveV3Dataset(t, 8000, mappedOpts)
	md, err := OpenMapped(dir, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	dst := filepath.Join(t.TempDir(), "clone")
	if _, err := md.Snapshot(dst); err != nil {
		t.Fatalf("Snapshot of mapped dataset: %v", err)
	}
	if rs := md.residency.Stats(); rs.Faults != 0 {
		t.Fatalf("snapshotting a mapped dataset faulted %d shards in", rs.Faults)
	}
	rd, err := Open(dst, "")
	if err != nil {
		t.Fatalf("restoring clone: %v", err)
	}
	for i, p := range randomPolys(20, 37) {
		want, err := d.Query(p, testReqs...)
		if err != nil {
			t.Fatal(err)
		}
		got, err := rd.Query(p, testReqs...)
		if err != nil {
			t.Fatal(err)
		}
		if got.Count != want.Count {
			t.Fatalf("clone query %d: count %d, want %d", i, got.Count, want.Count)
		}
	}
	// Self-snapshot: mapped dataset snapshotting onto its own backing
	// directory must not destroy it.
	if _, err := md.Snapshot(dir); err != nil {
		t.Fatalf("self-snapshot: %v", err)
	}
	if _, _, err := snapshot.OpenLazy(dir); err != nil {
		t.Fatalf("backing dir damaged by self-snapshot: %v", err)
	}
}

// TestRestoreMappedFallbackV2: a store with mmap serving enabled still
// restores version-1 snapshots — eagerly, transparently.
func TestRestoreMappedFallbackV2(t *testing.T) {
	d := buildDataset(t, "legacy", 4000, 11, Options{Level: 10, ShardLevel: 1})
	dir := filepath.Join(t.TempDir(), "legacy")
	if _, err := d.Snapshot(dir); err != nil {
		t.Fatal(err)
	}
	st := New()
	st.EnableMmap(0)
	rd, err := st.Restore(dir)
	if err != nil {
		t.Fatalf("Restore(v2) with mmap enabled: %v", err)
	}
	if rd.Mapped() {
		t.Fatal("v2 snapshot cannot be mapped")
	}
	got, err := rd.Query(randomPolys(1, 5)[0], testReqs...)
	if err != nil || got.Count == 0 {
		t.Fatalf("fallback dataset does not serve: count=%d err=%v", got.Count, err)
	}
}
