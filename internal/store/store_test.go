package store

import (
	"math"
	"math/rand"
	"testing"

	"geoblocks"
	"geoblocks/internal/geom"
)

var testBound = geom.Rect{Min: geom.Pt(0, 0), Max: geom.Pt(100, 100)}

// testRows generates clustered points with one integer-valued column
// (exact float sums) and one continuous column.
func testRows(n int, seed int64) ([]geom.Point, [][]float64) {
	rng := rand.New(rand.NewSource(seed))
	pts := make([]geom.Point, n)
	ints := make([]float64, n)
	floats := make([]float64, n)
	for i := range pts {
		if i%3 == 0 {
			pts[i] = geom.Pt(25+rng.NormFloat64()*8, 70+rng.NormFloat64()*8)
		} else {
			pts[i] = geom.Pt(rng.Float64()*100, rng.Float64()*100)
		}
		ints[i] = math.Floor(rng.Float64() * 1000)
		floats[i] = rng.NormFloat64() * 42
	}
	return pts, [][]float64{ints, floats}
}

func buildDataset(t testing.TB, name string, n int, seed int64, opts Options) *Dataset {
	t.Helper()
	pts, cols := testRows(n, seed)
	d, err := Build(name, testBound, geoblocks.NewSchema("ival", "fval"), pts, cols, opts)
	if err != nil {
		t.Fatalf("Build(%s): %v", name, err)
	}
	return d
}

var testReqs = []geoblocks.AggRequest{
	geoblocks.Count(),
	geoblocks.Sum("ival"),
	geoblocks.Min("fval"),
	geoblocks.Max("fval"),
	geoblocks.Avg("ival"),
}

// assertEquivalent checks the sharded result against the single-block
// reference: COUNT/MIN/MAX bit-identical, SUM/AVG exact here because the
// summed column is integer-valued (DESIGN.md Sec. 6).
func assertEquivalent(t *testing.T, got, want geoblocks.Result, label string) {
	t.Helper()
	if got.Count != want.Count {
		t.Errorf("%s: count = %d, want %d", label, got.Count, want.Count)
	}
	if len(got.Values) != len(want.Values) {
		t.Fatalf("%s: %d values, want %d", label, len(got.Values), len(want.Values))
	}
	for i, v := range got.Values {
		w := want.Values[i]
		if math.IsNaN(v) && math.IsNaN(w) {
			continue
		}
		if v != w {
			t.Errorf("%s: value[%d] = %v, want %v", label, i, v, w)
		}
	}
}

// TestShardedEquivalence is the randomized equivalence suite: a sharded
// dataset must answer polygon, rectangle and batch queries identically to
// a single unsharded block over the same rows.
func TestShardedEquivalence(t *testing.T) {
	const rows = 20_000
	for _, shardLevel := range []int{1, 2, 3} {
		single := buildDataset(t, "single", rows, 7, Options{Level: 12})
		sharded := buildDataset(t, "sharded", rows, 7, Options{Level: 12, ShardLevel: shardLevel})
		if sharded.NumShards() < 2 {
			t.Fatalf("shard level %d produced %d shards, want >= 2", shardLevel, sharded.NumShards())
		}

		rng := rand.New(rand.NewSource(int64(100 + shardLevel)))
		var polys []*geom.Polygon
		for i := 0; i < 40; i++ {
			c := geom.Pt(rng.Float64()*100, rng.Float64()*100)
			r := 1 + rng.Float64()*30
			polys = append(polys, geoblocks.RegularPolygon(c, r, 3+rng.Intn(8)))
		}
		for i, poly := range polys {
			want, err := single.Query(poly, testReqs...)
			if err != nil {
				t.Fatalf("single query %d: %v", i, err)
			}
			got, err := sharded.Query(poly, testReqs...)
			if err != nil {
				t.Fatalf("sharded query %d: %v", i, err)
			}
			assertEquivalent(t, got, want, "poly query")
		}

		for i := 0; i < 40; i++ {
			r := geom.RectFromCenter(
				geom.Pt(rng.Float64()*100, rng.Float64()*100),
				1+rng.Float64()*40, 1+rng.Float64()*40)
			want, err := single.QueryRect(r, testReqs...)
			if err != nil {
				t.Fatalf("single rect %d: %v", i, err)
			}
			got, err := sharded.QueryRect(r, testReqs...)
			if err != nil {
				t.Fatalf("sharded rect %d: %v", i, err)
			}
			assertEquivalent(t, got, want, "rect query")
		}

		// Batch answers must align positionally and agree with the
		// one-at-a-time path.
		batch, err := sharded.QueryBatch(polys, testReqs...)
		if err != nil {
			t.Fatalf("batch: %v", err)
		}
		if len(batch) != len(polys) {
			t.Fatalf("batch returned %d results, want %d", len(batch), len(polys))
		}
		for i, poly := range polys {
			want, err := single.Query(poly, testReqs...)
			if err != nil {
				t.Fatalf("single query %d: %v", i, err)
			}
			assertEquivalent(t, batch[i], want, "batch query")
		}
	}
}

// TestShardedEquivalenceCached runs the equivalence check with per-shard
// query caches enabled and warmed, so the cached partial path is covered.
func TestShardedEquivalenceCached(t *testing.T) {
	const rows = 10_000
	single := buildDataset(t, "single", rows, 3, Options{Level: 12})
	sharded := buildDataset(t, "sharded", rows, 3, Options{Level: 12, ShardLevel: 2, CacheThreshold: 0.2})

	rng := rand.New(rand.NewSource(5))
	var polys []*geom.Polygon
	for i := 0; i < 25; i++ {
		c := geom.Pt(rng.Float64()*100, rng.Float64()*100)
		polys = append(polys, geoblocks.RegularPolygon(c, 5+rng.Float64()*25, 6))
	}
	// Warm: query, refresh caches, then re-check equivalence through the
	// now-populated tries.
	if _, err := sharded.QueryBatch(polys, testReqs...); err != nil {
		t.Fatalf("warm batch: %v", err)
	}
	sharded.RefreshCaches()
	st := sharded.Stats()
	if !st.CacheEnabled {
		t.Fatalf("stats report cache disabled")
	}
	for i, poly := range polys {
		want, err := single.Query(poly, testReqs...)
		if err != nil {
			t.Fatalf("single query %d: %v", i, err)
		}
		got, err := sharded.Query(poly, testReqs...)
		if err != nil {
			t.Fatalf("sharded query %d: %v", i, err)
		}
		assertEquivalent(t, got, want, "cached query")
	}
	if after := sharded.Stats(); after.Cache.Probes == 0 {
		t.Errorf("cached queries recorded no probes")
	}
}

// TestRouterEdgeCases pins the covering-split routing: empty coverings,
// single-shard coverings, and coverings straddling every shard.
func TestRouterEdgeCases(t *testing.T) {
	d := buildDataset(t, "edge", 8_000, 11, Options{Level: 10, ShardLevel: 1})
	if d.NumShards() != 4 {
		t.Fatalf("level-1 sharding of uniform data gave %d shards, want 4", d.NumShards())
	}

	t.Run("empty covering", func(t *testing.T) {
		if parts := d.route(nil); len(parts) != 0 {
			t.Fatalf("empty covering routed to %d shards", len(parts))
		}
		res, err := d.QueryCovering(nil, testReqs...)
		if err != nil {
			t.Fatalf("empty covering query: %v", err)
		}
		if res.Count != 0 {
			t.Errorf("empty covering count = %d, want 0", res.Count)
		}
		if !math.IsNaN(res.Values[2]) || !math.IsNaN(res.Values[3]) {
			t.Errorf("empty covering min/max = %v/%v, want NaN", res.Values[2], res.Values[3])
		}
		// A polygon outside every shard behaves the same.
		far := geoblocks.RegularPolygon(geom.Pt(-500, -500), 10, 5)
		res, err = d.Query(far, testReqs...)
		if err != nil {
			t.Fatalf("far query: %v", err)
		}
		if res.Count != 0 {
			t.Errorf("far polygon count = %d, want 0", res.Count)
		}
	})

	t.Run("single shard", func(t *testing.T) {
		// A small region strictly inside the lower-left quadrant covers
		// only one shard.
		poly := geoblocks.RegularPolygon(geom.Pt(20, 20), 8, 8)
		cov := d.Cover(poly)
		parts := d.route(cov)
		if len(parts) != 1 {
			t.Fatalf("quadrant-local covering routed to %d shards, want 1", len(parts))
		}
		if got := len(parts[0].sub); got != len(cov) {
			t.Errorf("single-shard split kept %d of %d cells", got, len(cov))
		}
		res, err := d.Query(poly, testReqs...)
		if err != nil {
			t.Fatalf("query: %v", err)
		}
		if res.Count == 0 {
			t.Errorf("quadrant query found no rows")
		}
	})

	t.Run("all shards", func(t *testing.T) {
		// A polygon around the domain centre spans all four level-1
		// quadrants.
		poly := geoblocks.RegularPolygon(geom.Pt(50, 50), 30, 12)
		parts := d.route(d.Cover(poly))
		if len(parts) != 4 {
			t.Fatalf("centre polygon routed to %d shards, want 4", len(parts))
		}
		single := buildDataset(t, "edge-single", 8_000, 11, Options{Level: 10})
		want, err := single.Query(poly, testReqs...)
		if err != nil {
			t.Fatalf("single: %v", err)
		}
		got, err := d.Query(poly, testReqs...)
		if err != nil {
			t.Fatalf("sharded: %v", err)
		}
		assertEquivalent(t, got, want, "all-shard query")
	})

	t.Run("whole domain", func(t *testing.T) {
		res, err := d.QueryRect(testBound, testReqs...)
		if err != nil {
			t.Fatalf("whole-domain rect: %v", err)
		}
		st := d.Stats()
		if res.Count != st.Tuples {
			t.Errorf("whole-domain count = %d, want all %d tuples", res.Count, st.Tuples)
		}
	})
}

// TestSplitCoveringSharing pins that splits are sub-slices of the one
// covering (no per-shard covering recomputation or copying).
func TestSplitCoveringSharing(t *testing.T) {
	d := buildDataset(t, "split", 4_000, 2, Options{Level: 10, ShardLevel: 1})
	cov := d.CoverRect(geom.RectFromCenter(geom.Pt(50, 50), 35, 35))
	total := 0
	for i := range d.shards {
		sub := geoblocks.SplitCovering(cov, d.shards[i].cell)
		total += len(sub)
		for j := 1; j < len(sub); j++ {
			if sub[j] <= sub[j-1] {
				t.Fatalf("split %d not ascending", i)
			}
		}
	}
	// Every covering cell lands in >= 1 shard; cells coarser than the
	// shard level may appear in several.
	if total < len(cov) {
		t.Errorf("splits cover %d cells, covering has %d", total, len(cov))
	}
}

func TestBuildValidation(t *testing.T) {
	pts, cols := testRows(100, 1)
	schema := geoblocks.NewSchema("ival", "fval")
	cases := []struct {
		name string
		opts Options
	}{
		{"negative level", Options{Level: -1}},
		{"shard > block level", Options{Level: 2, ShardLevel: 3}},
		{"shard level beyond max", Options{Level: 20, ShardLevel: MaxShardLevel + 1}},
		{"negative threshold", Options{Level: 10, CacheThreshold: -0.5}},
		{"negative refresh", Options{Level: 10, CacheThreshold: 0.1, CacheAutoRefresh: -1}},
	}
	for _, tc := range cases {
		if _, err := Build("x", testBound, schema, pts, cols, tc.opts); err == nil {
			t.Errorf("%s: Build accepted invalid options", tc.name)
		}
	}
	if _, err := Build("", testBound, schema, pts, cols, Options{Level: 10}); err == nil {
		t.Errorf("empty name accepted")
	}
	if _, err := Build("x", testBound, schema, pts, cols[:1], Options{Level: 10}); err == nil {
		t.Errorf("column count mismatch accepted")
	}
}

func TestEmptyDataset(t *testing.T) {
	d, err := Build("empty", testBound, geoblocks.NewSchema("v"), nil, [][]float64{nil}, Options{Level: 10, ShardLevel: 2})
	if err != nil {
		t.Fatalf("Build(empty): %v", err)
	}
	if d.NumShards() != 1 {
		t.Fatalf("empty dataset has %d shards, want 1 placeholder", d.NumShards())
	}
	res, err := d.QueryRect(testBound, geoblocks.Count(), geoblocks.Min("v"))
	if err != nil {
		t.Fatalf("query: %v", err)
	}
	if res.Count != 0 || !math.IsNaN(res.Values[1]) {
		t.Errorf("empty dataset returned count=%d min=%v", res.Count, res.Values[1])
	}
}

func TestUnknownColumn(t *testing.T) {
	d := buildDataset(t, "cols", 1_000, 1, Options{Level: 10, ShardLevel: 1})
	if _, err := d.QueryRect(testBound, geoblocks.Sum("nope")); err == nil {
		t.Fatalf("unknown column accepted")
	}
	if _, err := d.QueryBatch([]*geom.Polygon{geoblocks.RegularPolygon(geom.Pt(50, 50), 30, 6)}, geoblocks.Sum("nope")); err == nil {
		t.Fatalf("unknown column accepted in batch")
	}
}

func TestStoreRegistry(t *testing.T) {
	s := New()
	a := buildDataset(t, "alpha", 500, 1, Options{Level: 8})
	b := buildDataset(t, "beta", 500, 2, Options{Level: 8, ShardLevel: 1})
	if err := s.Add(a); err != nil {
		t.Fatalf("Add(alpha): %v", err)
	}
	if err := s.Add(b); err != nil {
		t.Fatalf("Add(beta): %v", err)
	}
	if err := s.Add(a); err == nil {
		t.Fatalf("duplicate Add accepted")
	}
	names := s.Names()
	if len(names) != 2 || names[0] != "alpha" || names[1] != "beta" {
		t.Fatalf("Names() = %v", names)
	}
	if _, ok := s.Get("alpha"); !ok {
		t.Fatalf("Get(alpha) missing")
	}
	if _, ok := s.Get("gamma"); ok {
		t.Fatalf("Get(gamma) found")
	}
	stats := s.Stats()
	if len(stats) != 2 || stats[0].Name != "alpha" {
		t.Fatalf("Stats() = %+v", stats)
	}
	if !s.Drop("alpha") {
		t.Fatalf("Drop(alpha) reported missing")
	}
	if s.Drop("alpha") {
		t.Fatalf("second Drop(alpha) reported present")
	}
	if got := s.Names(); len(got) != 1 || got[0] != "beta" {
		t.Fatalf("Names() after drop = %v", got)
	}
}

func TestDatasetStats(t *testing.T) {
	d := buildDataset(t, "stats", 5_000, 9, Options{Level: 11, ShardLevel: 1})
	st := d.Stats()
	if st.Name != "stats" || st.Level != 11 || st.ShardLevel != 1 {
		t.Fatalf("stats header = %+v", st)
	}
	if st.NumShards != len(st.Shards) {
		t.Fatalf("NumShards %d != len(Shards) %d", st.NumShards, len(st.Shards))
	}
	var cells int
	var tuples uint64
	for _, sh := range st.Shards {
		cells += sh.Cells
		tuples += sh.Tuples
	}
	if cells != st.Cells || tuples != st.Tuples {
		t.Fatalf("shard totals %d/%d != dataset totals %d/%d", cells, tuples, st.Cells, st.Tuples)
	}
	if st.Tuples == 0 || st.SizeBytes == 0 {
		t.Fatalf("empty stats: %+v", st)
	}
	if st.Queries != 0 {
		t.Fatalf("fresh dataset reports %d queries", st.Queries)
	}
	if _, err := d.QueryRect(testBound, geoblocks.Count()); err != nil {
		t.Fatalf("query: %v", err)
	}
	if got := d.Stats().Queries; got != 1 {
		t.Fatalf("queries counter = %d, want 1", got)
	}
}
