package store

import (
	"errors"
	"fmt"

	"geoblocks"
	"geoblocks/internal/cellid"
	"geoblocks/internal/geom"
)

// This file is the dataset's cluster face: the hooks a coordinator uses
// to plan a query once and scatter its sub-coverings across nodes, and
// the hook a peer uses to answer one shard's sub-covering as a partial
// accumulator. Both sides of the wire go through the same shardPartial
// kernel as single-node queries (base block at the planned pyramid
// level, then the ingest delta, in fixed order), so a cluster merge in
// ascending shard order reproduces the single-node merge tree exactly —
// COUNT/MIN/MAX bit-identical, SUM within the DESIGN.md Sec. 6 bound.

// ErrUnknownShard reports a partial request naming a shard cell this
// dataset does not carry (wrong shard level, or an assignment pointing
// at a node that doesn't hold the dataset's partition).
var ErrUnknownShard = errors.New("store: unknown shard cell")

// ShardSub is one scatter unit: a shard prefix cell and the sub-covering
// it must answer.
type ShardSub struct {
	Cell cellid.ID
	Sub  []cellid.ID
}

// Plan is a routed query plan: the pyramid level the planner admitted,
// the covering computed at that level, and the covering's guaranteed
// error bound (both data-independent — any replica holding the same
// build derives the identical plan).
type Plan struct {
	Level      int
	Cover      []cellid.ID
	ErrorBound float64
}

// PlanCover plans a polygon query exactly like QueryOpts does: resolve
// the pyramid level admitted by maxError, compute one covering at that
// level, and report the covering's guaranteed error bound.
func (d *Dataset) PlanCover(poly *geom.Polygon, maxError float64) Plan {
	d.mu.RLock()
	defer d.mu.RUnlock()
	lvl := d.PlanLevel(maxError)
	c := d.covererAt(lvl)
	cov := c.Cover(poly)
	return Plan{Level: lvl, Cover: cov.Cells, ErrorBound: c.GuaranteedErrorDistance(cov)}
}

// PlanCoverRect is PlanCover over a rectangle.
func (d *Dataset) PlanCoverRect(r geom.Rect, maxError float64) Plan {
	d.mu.RLock()
	defer d.mu.RUnlock()
	lvl := d.PlanLevel(maxError)
	c := d.covererAt(lvl)
	cov := c.CoverRect(r)
	return Plan{Level: lvl, Cover: cov.Cells, ErrorBound: c.GuaranteedErrorDistance(cov)}
}

// ShardSubs splits a covering into per-shard sub-coverings in ascending
// shard-cell order — the router's route() exposed for the coordinator,
// which sends remote shards' entries over the wire and answers local
// ones in process. An empty result means the covering misses every
// shard (the identity answer).
func (d *Dataset) ShardSubs(cov []cellid.ID) []ShardSub {
	d.mu.RLock()
	defer d.mu.RUnlock()
	parts := d.route(cov)
	subs := make([]ShardSub, len(parts))
	for i, p := range parts {
		subs[i] = ShardSub{Cell: p.shard.cell, Sub: p.sub}
	}
	return subs
}

// ShardCells lists the dataset's shard prefix cells in ascending order.
func (d *Dataset) ShardCells() []cellid.ID {
	cells := make([]cellid.ID, len(d.shards))
	for i := range d.shards {
		cells[i] = d.shards[i].cell
	}
	return cells
}

// HasShard reports whether the dataset carries the shard cell.
func (d *Dataset) HasShard(cell cellid.ID) bool {
	_, ok := d.shardIndex(cell)
	return ok
}

// ServesLevel reports whether lvl is a grid level this dataset can
// execute a covering at: the block level or a materialised pyramid
// level.
func (d *Dataset) ServesLevel(lvl int) bool {
	if lvl == d.opts.Level {
		return true
	}
	_, ok := d.coverers[lvl]
	return ok
}

// CoveringBound returns the conservative guaranteed error bound of a
// bare cell list (the diagonal of its coarsest cell, 0 when empty) —
// the bound a peer reports for the sub-coverings it answered.
func (d *Dataset) CoveringBound(cov []cellid.ID) float64 {
	return d.coveringBound(cov)
}

// NoteQuery counts one routed query against the dataset's stats — the
// cluster coordinator's scatter-gather bypasses the Query entry points
// that normally bump the counter.
func (d *Dataset) NoteQuery() { d.queries.Add(1) }

// AssignmentEpoch returns the cluster assignment epoch the dataset last
// served under (0 outside cluster mode).
func (d *Dataset) AssignmentEpoch() uint64 { return d.assignEpoch.Load() }

// SetAssignmentEpoch stamps the cluster assignment epoch, persisted in
// later snapshot manifests.
func (d *Dataset) SetAssignmentEpoch(epoch uint64) { d.assignEpoch.Store(epoch) }

// ShardPartial answers one shard's sub-covering at the planned level as
// a partial accumulator — the peer half of the cluster scatter-gather.
// sub must be a sub-covering computed at level lvl (ascending, disjoint;
// the coordinator derives it via PlanCover + ShardSubs on an identical
// build). The partial includes the shard's pending ingest delta in the
// same base-then-delta order as local queries, so a coordinator reading
// its own writes through a peer still sees them. The returned
// accumulator is bound to this dataset's shard block; encode it with
// EncodePartial to put it on the wire.
func (d *Dataset) ShardPartial(cell cellid.ID, sub []cellid.ID, lvl int, opts geoblocks.QueryOptions, reqs []geoblocks.AggRequest) (*geoblocks.Accumulator, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if !d.ServesLevel(lvl) {
		return nil, fmt.Errorf("store: dataset %q serves no grid level %d", d.name, lvl)
	}
	d.mu.RLock()
	defer d.mu.RUnlock()
	i, ok := d.shardIndex(cell)
	if !ok {
		return nil, fmt.Errorf("%w: %v in dataset %q", ErrUnknownShard, cell, d.name)
	}
	return shardPartial(&d.shards[i], sub, lvl, opts, reqs)
}

// DecodePartial parses an accumulator frame produced by a peer's
// ShardPartial + EncodePartial, bound to this dataset (same schema on
// every replica, so the spec signature check pins agreement). The
// coordinator merges decoded partials with local ones in ascending
// shard order via Accumulator.MergeFrom.
func (d *Dataset) DecodePartial(data []byte, reqs []geoblocks.AggRequest) (*geoblocks.Accumulator, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	blk, release, err := d.shards[0].acquire()
	if err != nil {
		return nil, err
	}
	defer release()
	return blk.DecodePartial(data, reqs...)
}
