package store

import (
	"math"
	"math/rand"
	"testing"

	"geoblocks"
	"geoblocks/internal/geom"
)

// joinPolys generates a mixed join workload: hotspot-clustered irregular
// polygons plus uniform ones, sizes spanning sub-cell to tens of cells.
func joinPolys(rng *rand.Rand, n int) []*geom.Polygon {
	polys := make([]*geom.Polygon, n)
	for i := range polys {
		c := geom.Pt(rng.Float64()*100, rng.Float64()*100)
		if i%3 == 0 {
			c = geom.Pt(25+rng.NormFloat64()*8, 70+rng.NormFloat64()*8)
		}
		polys[i] = geoblocks.RegularPolygon(c, 0.5+rng.Float64()*18, 3+rng.Intn(8))
	}
	return polys
}

// assertBitIdentical demands full bitwise equality — Count, every
// value's float bits (SUM included), Level and ErrorBound. Valid when
// both sides ran serial kernels over aggtrie-free shards, which is
// exactly the join's single-node contract.
func assertBitIdentical(t *testing.T, label string, got, want geoblocks.Result) {
	t.Helper()
	if got.Count != want.Count {
		t.Fatalf("%s: count %d, sequential %d", label, got.Count, want.Count)
	}
	if len(got.Values) != len(want.Values) {
		t.Fatalf("%s: %d values, sequential %d", label, len(got.Values), len(want.Values))
	}
	for k := range want.Values {
		if math.Float64bits(got.Values[k]) != math.Float64bits(want.Values[k]) {
			t.Fatalf("%s: value[%d] = %v, sequential %v (bits differ)",
				label, k, got.Values[k], want.Values[k])
		}
	}
	if got.Level != want.Level {
		t.Fatalf("%s: level %d, sequential %d", label, got.Level, want.Level)
	}
	if got.ErrorBound != want.ErrorBound {
		t.Fatalf("%s: error bound %v, sequential %v", label, got.ErrorBound, want.ErrorBound)
	}
}

// TestJoinEquivalence is the join's randomized property suite: across
// shard levels, max_error settings and cached/uncached datasets, Join
// must return exactly what N sequential QueryOpts calls return — bit for
// bit, SUM included (the datasets carry no aggtrie, so both sides run
// the serial kernel over the same ranges in the same order).
func TestJoinEquivalence(t *testing.T) {
	const rows = 20_000
	for _, shardLevel := range []int{1, 2, 3} {
		for _, cached := range []bool{false, true} {
			d := buildDataset(t, "join", rows, 7, Options{Level: 12, ShardLevel: shardLevel, PyramidLevels: 4})
			if cached {
				if err := d.EnableResultCache(1<<20, 0); err != nil {
					t.Fatalf("enable result cache: %v", err)
				}
			}
			rng := rand.New(rand.NewSource(int64(40 + shardLevel)))
			polys := joinPolys(rng, 60)
			for _, maxErr := range []float64{0, 0.2, 3.0} {
				opts := geoblocks.QueryOptions{MaxError: maxErr}
				got, stats, err := d.Join(polys, opts, testReqs...)
				if err != nil {
					t.Fatalf("join (shard %d, err %v, cached %v): %v", shardLevel, maxErr, cached, err)
				}
				if len(got) != len(polys) {
					t.Fatalf("join returned %d results for %d polygons", len(got), len(polys))
				}
				if stats.Polygons != len(polys) {
					t.Fatalf("stats report %d polygons, want %d", stats.Polygons, len(polys))
				}
				if stats.InteriorPairs+stats.BoundaryPairs == 0 && stats.Fallbacks == 0 && stats.CacheHits == 0 {
					t.Fatalf("join classified nothing: %+v", stats)
				}
				for i, poly := range polys {
					want, err := d.QueryOpts(poly, opts, testReqs...)
					if err != nil {
						t.Fatalf("sequential query %d: %v", i, err)
					}
					assertBitIdentical(t, "join result", got[i], want)
				}
				// Second pass: on cached datasets the join must now be
				// served entirely from the result cache (the sequential
				// queries above stored every footprint) and still agree.
				again, stats2, err := d.Join(polys, opts, testReqs...)
				if err != nil {
					t.Fatalf("second join: %v", err)
				}
				for i := range polys {
					assertBitIdentical(t, "warm join result", again[i], got[i])
				}
				if cached && stats2.CacheHits != len(polys) {
					t.Fatalf("warm join hit cache %d/%d times", stats2.CacheHits, len(polys))
				}
				if !cached && (stats2.CacheHits != 0 || stats2.CacheMisses != 0) {
					t.Fatalf("uncached dataset reported cache traffic: %+v", stats2)
				}
			}
		}
	}
}

// TestJoinRectsEquivalence covers the rectangle (window/tile-grid) form
// against sequential QueryRectOpts, including an adjacent tile grid —
// the shared-edge case the closed-rectangle predicates make adversarial.
func TestJoinRectsEquivalence(t *testing.T) {
	d := buildDataset(t, "joinrect", 15_000, 9, Options{Level: 11, ShardLevel: 2, PyramidLevels: 3})
	rng := rand.New(rand.NewSource(21))
	var rects []geom.Rect
	for i := 0; i < 20; i++ {
		rects = append(rects, geom.RectFromCenter(
			geom.Pt(rng.Float64()*100, rng.Float64()*100),
			1+rng.Float64()*25, 1+rng.Float64()*25))
	}
	// An 5x4 window grid: adjacent tiles sharing edges.
	const nx, ny = 5, 4
	for iy := 0; iy < ny; iy++ {
		for ix := 0; ix < nx; ix++ {
			rects = append(rects, geom.Rect{
				Min: geom.Pt(10+float64(ix)*12, 20+float64(iy)*12),
				Max: geom.Pt(10+float64(ix+1)*12, 20+float64(iy+1)*12),
			})
		}
	}
	for _, maxErr := range []float64{0, 0.2} {
		opts := geoblocks.QueryOptions{MaxError: maxErr}
		got, stats, err := d.JoinRects(rects, opts, testReqs...)
		if err != nil {
			t.Fatalf("join rects: %v", err)
		}
		if stats.Polygons != len(rects) {
			t.Fatalf("stats count %d, want %d", stats.Polygons, len(rects))
		}
		for i, r := range rects {
			want, err := d.QueryRectOpts(r, opts, testReqs...)
			if err != nil {
				t.Fatalf("sequential rect %d: %v", i, err)
			}
			assertBitIdentical(t, "join rect", got[i], want)
		}
	}
}

// TestJoinThroughDelta pins the join against the streaming write path:
// pending delta rows must fold into join answers exactly as they do for
// sequential queries (base first, delta second, per shard).
func TestJoinThroughDelta(t *testing.T) {
	d := buildDataset(t, "joindelta", 8_000, 13, Options{Level: 11, ShardLevel: 2})
	pts, cols := testRows(2_000, 99)
	if _, err := d.Ingest(pts, cols); err != nil {
		t.Fatalf("ingest: %v", err)
	}
	rng := rand.New(rand.NewSource(31))
	polys := joinPolys(rng, 30)
	got, _, err := d.Join(polys, geoblocks.QueryOptions{}, testReqs...)
	if err != nil {
		t.Fatalf("join: %v", err)
	}
	for i, poly := range polys {
		want, err := d.Query(poly, testReqs...)
		if err != nil {
			t.Fatalf("sequential query %d: %v", i, err)
		}
		assertBitIdentical(t, "delta join", got[i], want)
	}
}

// TestJoinEdgeCases: empty input, invalid options, unknown columns, and
// polygons entirely outside the domain (identity result, NaN extrema).
func TestJoinEdgeCases(t *testing.T) {
	d := buildDataset(t, "joinedge", 2_000, 17, Options{Level: 10, ShardLevel: 1})
	res, stats, err := d.Join(nil, geoblocks.QueryOptions{}, testReqs...)
	if err != nil || len(res) != 0 || stats.Polygons != 0 {
		t.Fatalf("empty join: %v, %d results, %+v", err, len(res), stats)
	}
	if _, _, err := d.Join(nil, geoblocks.QueryOptions{MaxError: -1}, testReqs...); err == nil {
		t.Fatal("negative max error accepted")
	}
	outside := geoblocks.RegularPolygon(geom.Pt(900, 900), 5, 6)
	inside := geoblocks.RegularPolygon(geom.Pt(50, 50), 10, 6)
	if _, _, err := d.Join([]*geom.Polygon{inside}, geoblocks.QueryOptions{}, geoblocks.Sum("nope")); err == nil {
		t.Fatal("unknown column accepted")
	}
	res, _, err = d.Join([]*geom.Polygon{outside, inside}, geoblocks.QueryOptions{}, testReqs...)
	if err != nil {
		t.Fatalf("join: %v", err)
	}
	want, err := d.Query(outside, testReqs...)
	if err != nil {
		t.Fatalf("sequential outside: %v", err)
	}
	assertBitIdentical(t, "outside polygon", res[0], want)
	if res[0].Count != 0 {
		t.Fatalf("outside polygon counted %d rows", res[0].Count)
	}
	want, err = d.Query(inside, testReqs...)
	if err != nil {
		t.Fatalf("sequential inside: %v", err)
	}
	assertBitIdentical(t, "inside polygon", res[1], want)
}

// TestJoinDuplicatePolygons pins the fan-in dedup: repeated polygons —
// whether literally the same object or content-equal clones, as the
// HTTP path produces — are planned and aggregated once, replicated
// positionally, and still bit-identical to querying each occurrence
// independently.
func TestJoinDuplicatePolygons(t *testing.T) {
	d := buildDataset(t, "joindup", 10_000, 47, Options{Level: 11, ShardLevel: 2, PyramidLevels: 3})
	if err := d.EnableResultCache(1<<20, 0); err != nil {
		t.Fatalf("enable result cache: %v", err)
	}
	rng := rand.New(rand.NewSource(53))
	base := joinPolys(rng, 12)
	clone := func(p *geom.Polygon) *geom.Polygon {
		return geom.NewPolygon(append([]geom.Point(nil), p.Outer()...))
	}
	// 12 unique geometries across 30 slots: same-pointer repeats,
	// content-equal clones, and a Zipfian-style pileup on base[0].
	polys := make([]*geom.Polygon, 0, 30)
	for i := 0; i < 30; i++ {
		p := base[i%len(base)]
		if i%2 == 1 {
			p = clone(p)
		}
		if i >= 24 {
			p = base[0]
		}
		polys = append(polys, p)
	}
	for _, opts := range []geoblocks.QueryOptions{{DisableCache: true}, {MaxError: 0.2}} {
		got, stats, err := d.Join(polys, opts, testReqs...)
		if err != nil {
			t.Fatalf("join: %v", err)
		}
		if stats.Polygons != len(polys) || stats.UniquePolygons != len(base) {
			t.Fatalf("stats report %d/%d polygons, want %d/%d unique",
				stats.Polygons, stats.UniquePolygons, len(polys), len(base))
		}
		for i, poly := range polys {
			want, err := d.QueryOpts(poly, opts, testReqs...)
			if err != nil {
				t.Fatalf("sequential query %d: %v", i, err)
			}
			assertBitIdentical(t, "dedup join", got[i], want)
		}
	}
	// Warm pass over the cached dataset: one hit per unique geometry.
	_, stats, err := d.Join(polys, geoblocks.QueryOptions{MaxError: 0.2}, testReqs...)
	if err != nil {
		t.Fatalf("warm join: %v", err)
	}
	if stats.CacheHits != len(base) || stats.CacheMisses != 0 {
		t.Fatalf("warm dedup join: %d hits, %d misses, want %d/0",
			stats.CacheHits, stats.CacheMisses, len(base))
	}
}

// TestJoinStatsCounters pins the dataset-level join counters surfaced in
// DatasetStats.
func TestJoinStatsCounters(t *testing.T) {
	d := buildDataset(t, "joinstats", 5_000, 23, Options{Level: 11, ShardLevel: 1})
	if d.Stats().Join != nil {
		t.Fatal("join counters present before any join")
	}
	rng := rand.New(rand.NewSource(41))
	polys := joinPolys(rng, 25)
	_, stats, err := d.Join(polys, geoblocks.QueryOptions{}, testReqs...)
	if err != nil {
		t.Fatalf("join: %v", err)
	}
	jc := d.Stats().Join
	if jc == nil {
		t.Fatal("no join counters after a join")
	}
	if jc.Joins != 1 || jc.Polygons != uint64(len(polys)) {
		t.Fatalf("counters %+v after one %d-polygon join", jc, len(polys))
	}
	if jc.InteriorPairs != uint64(stats.InteriorPairs) || jc.BoundaryPairs != uint64(stats.BoundaryPairs) {
		t.Fatalf("counters %+v disagree with call stats %+v", jc, stats)
	}
}

// TestBatchAndJoinCacheCountedPerElement pins the satellite contract:
// batch lookups and joins route through the result cache per element —
// every polygon counts one hit or one miss, never one per call.
func TestBatchAndJoinCacheCountedPerElement(t *testing.T) {
	d := buildDataset(t, "joincache", 6_000, 29, Options{Level: 11, ShardLevel: 2})
	if err := d.EnableResultCache(1<<20, 0); err != nil {
		t.Fatalf("enable result cache: %v", err)
	}
	rng := rand.New(rand.NewSource(43))
	polys := joinPolys(rng, 20)

	if _, err := d.QueryBatchOpts(polys, geoblocks.QueryOptions{}, testReqs...); err != nil {
		t.Fatalf("cold batch: %v", err)
	}
	st := d.Stats().ResultCache
	if st.Misses != uint64(len(polys)) || st.Hits != 0 {
		t.Fatalf("cold batch: %d misses, %d hits, want %d/0", st.Misses, st.Hits, len(polys))
	}
	if _, err := d.QueryBatchOpts(polys, geoblocks.QueryOptions{}, testReqs...); err != nil {
		t.Fatalf("warm batch: %v", err)
	}
	st = d.Stats().ResultCache
	if st.Hits != uint64(len(polys)) {
		t.Fatalf("warm batch: %d hits, want %d", st.Hits, len(polys))
	}

	// The join shares the same per-element accounting and footprints:
	// it must hit every entry the batch stored.
	_, jstats, err := d.Join(polys, geoblocks.QueryOptions{}, testReqs...)
	if err != nil {
		t.Fatalf("join: %v", err)
	}
	if jstats.CacheHits != len(polys) || jstats.CacheMisses != 0 {
		t.Fatalf("join over warm cache: %d hits, %d misses, want %d/0",
			jstats.CacheHits, jstats.CacheMisses, len(polys))
	}
	st = d.Stats().ResultCache
	if st.Hits != uint64(2*len(polys)) {
		t.Fatalf("cache hits %d after warm batch + join, want %d", st.Hits, 2*len(polys))
	}

	// DisableCache bypasses the result cache per element too.
	_, jstats, err = d.Join(polys, geoblocks.QueryOptions{DisableCache: true}, testReqs...)
	if err != nil {
		t.Fatalf("bypass join: %v", err)
	}
	if jstats.CacheHits != 0 || jstats.CacheMisses != 0 {
		t.Fatalf("DisableCache join recorded cache traffic: %+v", jstats)
	}
}
