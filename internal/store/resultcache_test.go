package store

import (
	"errors"
	"fmt"
	"math/rand"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"

	"geoblocks"
	"geoblocks/internal/core"
	"geoblocks/internal/geom"
)

// cacheTestReqs includes a float-column SUM on top of the shared request
// set: the result cache must replay even the reassociation-sensitive
// aggregate bit-identically, because cached answers come from the same
// deterministic serial-merge path as recomputation.
var cacheTestReqs = append(append([]geoblocks.AggRequest{}, testReqs...), geoblocks.Sum("fval"))

// TestResultCacheEquivalence is the randomized equivalence suite for the
// result cache: a cache-on dataset must answer every query bit-identically
// to a cache-off twin — on cold misses, on hits, through the batch path,
// and immediately after an Update invalidation.
func TestResultCacheEquivalence(t *testing.T) {
	const rows = 15_000
	plain := buildDataset(t, "plain", rows, 9, Options{Level: 12, ShardLevel: 2, PyramidLevels: 3})
	cached := buildDataset(t, "cached", rows, 9, Options{
		Level: 12, ShardLevel: 2, PyramidLevels: 3,
		ResultCacheBytes: 4 << 20,
	})

	rng := rand.New(rand.NewSource(77))
	var polys []*geom.Polygon
	for i := 0; i < 30; i++ {
		c := geom.Pt(rng.Float64()*100, rng.Float64()*100)
		polys = append(polys, geoblocks.RegularPolygon(c, 2+rng.Float64()*25, 3+rng.Intn(8)))
	}
	rects := make([]geom.Rect, 10)
	for i := range rects {
		rects[i] = geom.RectFromCenter(
			geom.Pt(rng.Float64()*100, rng.Float64()*100),
			1+rng.Float64()*30, 1+rng.Float64()*30)
	}

	check := func(label string, maxError float64) {
		opts := geoblocks.QueryOptions{MaxError: maxError}
		// Three passes: miss, hit, hit — every answer must match the
		// uncached twin exactly, and the planner metadata must survive
		// the cache round-trip.
		for pass := 0; pass < 3; pass++ {
			for i, poly := range polys {
				want, err := plain.QueryOpts(poly, opts, cacheTestReqs...)
				if err != nil {
					t.Fatalf("%s plain query %d: %v", label, i, err)
				}
				got, err := cached.QueryOpts(poly, opts, cacheTestReqs...)
				if err != nil {
					t.Fatalf("%s cached query %d: %v", label, i, err)
				}
				assertEquivalent(t, got, want, label)
				if got.Level != want.Level || got.ErrorBound != want.ErrorBound {
					t.Fatalf("%s pass %d: level/bound (%d, %v), want (%d, %v)",
						label, pass, got.Level, got.ErrorBound, want.Level, want.ErrorBound)
				}
			}
			for i, r := range rects {
				want, err := plain.QueryRectOpts(r, opts, cacheTestReqs...)
				if err != nil {
					t.Fatalf("%s plain rect %d: %v", label, i, err)
				}
				got, err := cached.QueryRectOpts(r, opts, cacheTestReqs...)
				if err != nil {
					t.Fatalf("%s cached rect %d: %v", label, i, err)
				}
				assertEquivalent(t, got, want, label)
			}
		}
		// Batch path: hits come from the single-query entries, misses run
		// through the batch executor — both must agree with the twin.
		batch, err := cached.QueryBatchOpts(polys, opts, cacheTestReqs...)
		if err != nil {
			t.Fatalf("%s batch: %v", label, err)
		}
		for i, poly := range polys {
			want, err := plain.QueryOpts(poly, opts, cacheTestReqs...)
			if err != nil {
				t.Fatalf("%s plain query %d: %v", label, i, err)
			}
			assertEquivalent(t, batch[i], want, label+" batch")
		}
	}

	check("exact", 0)
	check("approx", 3.0)

	st := cached.Stats()
	if st.ResultCache == nil {
		t.Fatal("stats missing result cache")
	}
	if st.ResultCache.Hits == 0 || st.ResultCache.Entries == 0 {
		t.Fatalf("result cache never hit: %+v", *st.ResultCache)
	}

	// Update both twins identically: the invalidation must be precise and
	// immediate — the very next queries (a mix of stale entries and
	// memoized coverings on the cached twin) must match the plain twin.
	// Update rows reuse coordinates of existing rows (new column values),
	// so every tuple lands in an already-aggregated cell.
	allPts, _ := testRows(rows, 9)
	var upPts []geom.Point
	for _, pt := range allPts {
		// Out-of-bound rows were dropped at build time, so their cells may
		// be unaggregated; reuse only rows that were kept.
		if testBound.ContainsPoint(pt) {
			upPts = append(upPts, pt)
			if len(upPts) == 200 {
				break
			}
		}
	}
	upCols := [][]float64{make([]float64, len(upPts)), make([]float64, len(upPts))}
	for i := range upPts {
		upCols[0][i] = float64(i % 50)
		upCols[1][i] = float64(i)*0.25 - 20
	}
	batch := &geoblocks.UpdateBatch{Points: upPts, Cols: upCols}
	genBefore := cached.Generation()
	if err := plain.Update(batch); err != nil {
		t.Fatalf("plain update: %v", err)
	}
	if err := cached.Update(batch); err != nil {
		t.Fatalf("cached update: %v", err)
	}
	if got := cached.Generation(); got != genBefore+1 {
		t.Fatalf("generation %d after update, want %d", got, genBefore+1)
	}
	check("post-update exact", 0)
	check("post-update approx", 3.0)

	after := cached.Stats()
	if after.ResultCache.StaleMisses == 0 {
		t.Fatal("update invalidation never detected a stale entry")
	}
}

// TestResultCacheServesHotFootprints pins the serving behaviour: repeats
// of one query hit, stats expose hotness, and summaries stay lean.
func TestResultCacheServesHotFootprints(t *testing.T) {
	d := buildDataset(t, "hot", 8_000, 21, Options{
		Level: 12, ShardLevel: 2,
		ResultCacheBytes:   1 << 20,
		ResultCacheMinHits: 2,
	})
	poly := geoblocks.RegularPolygon(geom.Pt(30, 60), 12, 6)

	var first geoblocks.Result
	for i := 0; i < 10; i++ {
		res, err := d.Query(poly, cacheTestReqs...)
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		if i == 0 {
			first = res
		} else {
			assertEquivalent(t, res, first, "repeat")
		}
	}

	st := d.Stats()
	rc := st.ResultCache
	if rc == nil {
		t.Fatal("no result cache stats")
	}
	// MinHits 2: misses at scores 1 and 2 (the second admits), hits after.
	if rc.Hits < 7 || rc.Misses < 2 || rc.Admissions != 1 {
		t.Fatalf("counters %+v", *rc)
	}
	if rc.MinHits != 2 || rc.MaxBytes != 1<<20 {
		t.Fatalf("config not reported: %+v", *rc)
	}
	if len(st.HotFootprints) != 1 || st.HotFootprints[0].Hits < 7 {
		t.Fatalf("hot footprints %+v", st.HotFootprints)
	}
	if sum := d.StatsSummary(); sum.HotFootprints != nil {
		t.Fatal("summary should omit footprints")
	}
	if sum := d.StatsSummary(); sum.ResultCache == nil {
		t.Fatal("summary should keep result cache counters")
	}

	// DisableCache bypasses the result cache without touching its state.
	before := d.ResultCacheStats()
	res, err := d.QueryOpts(poly, geoblocks.QueryOptions{DisableCache: true}, cacheTestReqs...)
	if err != nil {
		t.Fatalf("nocache query: %v", err)
	}
	assertEquivalent(t, res, first, "nocache")
	after := d.ResultCacheStats()
	if after.Hits != before.Hits || after.Misses != before.Misses {
		t.Fatalf("DisableCache touched the result cache: %+v", *after)
	}
}

// TestUpdateRebuildRequired pins the unbuilt-shard contract: rows landing
// in a shard that was never built reject the whole batch up front.
func TestUpdateRebuildRequired(t *testing.T) {
	// All rows in the lower-left quadrant: level-2 shards elsewhere are
	// never built.
	rng := rand.New(rand.NewSource(4))
	pts := make([]geom.Point, 2_000)
	cols := [][]float64{make([]float64, len(pts)), make([]float64, len(pts))}
	for i := range pts {
		pts[i] = geom.Pt(rng.Float64()*40, rng.Float64()*40)
		cols[0][i] = 1
		cols[1][i] = rng.Float64()
	}
	d, err := Build("corner", testBound, geoblocks.NewSchema("ival", "fval"), pts, cols, Options{
		Level: 10, ShardLevel: 2, ResultCacheBytes: 1 << 20,
	})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	gen := d.Generation()
	err = d.Update(&geoblocks.UpdateBatch{
		Points: []geom.Point{geom.Pt(90, 90)},
		Cols:   [][]float64{{1}, {0.5}},
	})
	if !errors.Is(err, core.ErrRebuildRequired) {
		t.Fatalf("err = %v, want ErrRebuildRequired", err)
	}
	// Even the failed update bumps the generation (documented: no stale
	// answer may survive a partial mutation).
	if got := d.Generation(); got != gen+1 {
		t.Fatalf("generation %d after failed update, want %d", got, gen+1)
	}
}

// TestUpdateRaggedBatchRejected pins the upfront validation contract: a
// batch whose column slices are shorter than its point slice must fail
// with an error before any row is partitioned — previously it panicked
// with an index out of range while holding the dataset write lock.
func TestUpdateRaggedBatchRejected(t *testing.T) {
	d := buildDataset(t, "ragged", 3_000, 17, Options{
		Level: 10, ShardLevel: 1, ResultCacheBytes: 1 << 20,
	})
	gen := d.Generation()
	err := d.Update(&geoblocks.UpdateBatch{
		Points: []geom.Point{geom.Pt(30, 30), geom.Pt(40, 40)},
		Cols:   [][]float64{{1, 1}, {0.5}}, // second column one row short
	})
	if err == nil {
		t.Fatal("ragged batch accepted")
	}
	// Nothing was touched, so nothing is invalidated — and the dataset
	// still serves queries.
	if got := d.Generation(); got != gen {
		t.Fatalf("generation %d after rejected batch, want %d", got, gen)
	}
	if _, err := d.Query(geoblocks.RegularPolygon(geom.Pt(50, 50), 15, 6), geoblocks.Count()); err != nil {
		t.Fatalf("query after rejected batch: %v", err)
	}
}

// TestResultCacheConfigPersists pins the snapshot round-trip: the
// configuration travels through the manifest; contents do not.
func TestResultCacheConfigPersists(t *testing.T) {
	d := buildDataset(t, "persist", 5_000, 13, Options{
		Level: 10, ShardLevel: 1,
		ResultCacheBytes:   2 << 20,
		ResultCacheMinHits: 3,
	})
	poly := geoblocks.RegularPolygon(geom.Pt(50, 50), 20, 6)
	for i := 0; i < 6; i++ {
		if _, err := d.Query(poly, testReqs...); err != nil {
			t.Fatalf("warm query: %v", err)
		}
	}
	dir := filepath.Join(t.TempDir(), "snap")
	m, err := d.Snapshot(dir)
	if err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	if m.ResultCacheBytes != 2<<20 || m.ResultCacheMinHits != 3 {
		t.Fatalf("manifest config %d/%d", m.ResultCacheBytes, m.ResultCacheMinHits)
	}
	r, err := Open(dir, "")
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	rc := r.ResultCacheStats()
	if rc == nil {
		t.Fatal("restored dataset lost its result cache")
	}
	if rc.MaxBytes != 2<<20 || rc.MinHits != 3 {
		t.Fatalf("restored config %+v", *rc)
	}
	if rc.Entries != 0 || rc.Hits != 0 || rc.Generation != 0 {
		t.Fatalf("restored cache not cold: %+v", *rc)
	}
	want, err := d.Query(poly, testReqs...)
	if err != nil {
		t.Fatalf("query original: %v", err)
	}
	got, err := r.Query(poly, testReqs...)
	if err != nil {
		t.Fatalf("query restored: %v", err)
	}
	assertEquivalent(t, got, want, "restored")
}

// TestEnableResultCacheLifecycle covers runtime attach/detach and the
// validation surface.
func TestEnableResultCacheLifecycle(t *testing.T) {
	d := buildDataset(t, "life", 4_000, 17, Options{Level: 10, ShardLevel: 1})
	if d.ResultCacheStats() != nil {
		t.Fatal("cache present before enabling")
	}
	if err := d.EnableResultCache(-1, 0); err == nil {
		t.Fatal("want error for negative budget")
	}
	if err := d.EnableResultCache(1<<20, -1); err == nil {
		t.Fatal("want error for negative min hits")
	}
	if err := d.EnableResultCache(1<<20, 1); err != nil {
		t.Fatalf("enable: %v", err)
	}
	poly := geoblocks.RegularPolygon(geom.Pt(40, 40), 15, 5)
	for i := 0; i < 4; i++ {
		if _, err := d.Query(poly, testReqs...); err != nil {
			t.Fatalf("query: %v", err)
		}
	}
	if rc := d.ResultCacheStats(); rc == nil || rc.Hits == 0 {
		t.Fatalf("enabled cache never hit: %+v", rc)
	}
	if err := d.EnableResultCache(0, 0); err != nil {
		t.Fatalf("detach: %v", err)
	}
	if d.ResultCacheStats() != nil {
		t.Fatal("cache still attached after detach")
	}
	if st := d.Stats(); st.ResultCache != nil || st.Generation != 0 {
		t.Fatalf("stats still report a cache: %+v", st.ResultCache)
	}
}

// TestDropInvalidatesResultCache pins the registry contract: dropping a
// dataset bumps its generation, so a stale handle can never serve cached
// results as current again.
func TestDropInvalidatesResultCache(t *testing.T) {
	s := New()
	d := buildDataset(t, "dropme", 4_000, 19, Options{Level: 10, ResultCacheBytes: 1 << 20})
	if err := s.Add(d); err != nil {
		t.Fatalf("Add: %v", err)
	}
	gen := d.Generation()
	if !s.Drop("dropme") {
		t.Fatal("Drop reported missing dataset")
	}
	if got := d.Generation(); got != gen+1 {
		t.Fatalf("generation %d after drop, want %d", got, gen+1)
	}
}

// TestResultCacheInvalidationRace is the serving-tier smoke CI runs under
// the race detector: readers hammer a hot footprint while a writer folds
// updates in, a snapshotter walks the shards, and the registry drops and
// re-adds the dataset. No reader may ever observe a count older than the
// last completed update — that would be a stale cached result served
// across a generation bump.
func TestResultCacheInvalidationRace(t *testing.T) {
	const (
		readers   = 4
		updates   = 30
		readIters = 300
	)
	s := New()
	d := buildDataset(t, "race", 10_000, 23, Options{
		Level: 12, ShardLevel: 2, PyramidLevels: 2, ResultCacheBytes: 1 << 20,
	})
	if err := s.Add(d); err != nil {
		t.Fatalf("Add: %v", err)
	}

	// The hot footprint: a polygon around the data cluster at (25, 70).
	// The fixed update point reuses an existing row's coordinates inside
	// the polygon, so its cell is guaranteed to be aggregated.
	poly := geoblocks.RegularPolygon(geom.Pt(25, 70), 10, 8)
	allPts, _ := testRows(10_000, 23)
	var updatePt geom.Point
	found := false
	for _, p := range allPts {
		if poly.ContainsPoint(p) && testBound.ContainsPoint(p) {
			updatePt, found = p, true
			break
		}
	}
	if !found {
		t.Fatal("no data point inside the hot polygon")
	}
	base, err := d.Query(poly, testReqs...)
	if err != nil {
		t.Fatalf("base query: %v", err)
	}

	// completed is the number of updates whose Update call has returned:
	// any query STARTED afterwards must observe at least that many extra
	// rows. Readers load it before querying, so a lagging (stale cached)
	// answer is detected deterministically.
	var completed atomic.Int64
	var wg sync.WaitGroup
	stop := make(chan struct{})
	errc := make(chan error, readers+3)

	wg.Add(1)
	go func() { // writer
		defer wg.Done()
		defer close(stop)
		for i := 0; i < updates; i++ {
			err := d.Update(&geoblocks.UpdateBatch{
				Points: []geom.Point{updatePt},
				Cols:   [][]float64{{1}, {0}},
			})
			if err != nil {
				errc <- err
				return
			}
			completed.Add(1)
		}
	}()

	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < readIters; i++ {
				minRows := completed.Load()
				res, err := d.Query(poly, testReqs...)
				if err != nil {
					errc <- err
					return
				}
				if res.Count < base.Count+uint64(minRows) {
					errc <- fmt.Errorf("stale result served: count %d < %d", res.Count, base.Count+uint64(minRows))
					return
				}
			}
		}()
	}

	wg.Add(1)
	go func() { // snapshotter
		defer wg.Done()
		dir := t.TempDir()
		i := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := d.Snapshot(filepath.Join(dir, "snap")); err != nil {
				errc <- err
				return
			}
			i++
		}
	}()

	wg.Add(1)
	go func() { // registry churn: drop + re-add (each drop invalidates)
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			s.Drop("race")
			if err := s.Add(d); err != nil {
				errc <- err
				return
			}
		}
	}()

	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatalf("race smoke: %v", err)
	}

	// The writer's updates must all be visible now, cache on.
	final, err := d.Query(poly, testReqs...)
	if err != nil {
		t.Fatalf("final query: %v", err)
	}
	if final.Count != base.Count+updates {
		t.Fatalf("final count %d, want %d", final.Count, base.Count+updates)
	}
}
