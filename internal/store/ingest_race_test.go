package store

// The -race stress battery for the streaming write path: concurrent
// ingesters vs queriers vs the background compactor vs snapshots vs
// drop/re-add churn. Beyond data races, the queriers assert the
// staleness contract — once an ingest batch is acknowledged, every
// later query observes it (COUNT over the full domain is monotonic in
// the acknowledged total, even through the result cache), so a stale
// cached answer surfaces as a test failure, not just a race report.

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"geoblocks"
	"geoblocks/internal/geom"
)

func TestIngestRace(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	dataDir := t.TempDir()
	st := New()
	st.EnableIngest(IngestConfig{
		WALDir:          dataDir,
		DeltaMaxRows:    1_000_000,
		CompactInterval: 2 * time.Millisecond,
		OnError:         func(err error) { t.Errorf("background compaction: %v", err) },
	})
	opts := Options{Level: 11, ShardLevel: 1, PyramidLevels: 2, CacheThreshold: 0.1, ResultCacheBytes: 1 << 20}
	d := buildDataset(t, "race", 5000, 11, opts)
	if err := st.Add(d); err != nil {
		t.Fatal(err)
	}
	baseRes, err := d.QueryRect(testBound, geoblocks.Count())
	if err != nil {
		t.Fatal(err)
	}
	base := baseRes.Count

	const ingesters = 4
	const batches = 25
	const batchRows = 40
	var ackedTotal atomic.Uint64 // rows acknowledged so far, across all ingesters
	var ingWG, wg sync.WaitGroup
	done := make(chan struct{})

	// checkVisible asserts the read-your-writes bound: every row
	// acknowledged BEFORE the query started must be counted.
	checkVisible := func(rng *rand.Rand, label string) {
		floor := base + ackedTotal.Load()
		qopts := geoblocks.QueryOptions{}
		if rng.Intn(3) == 0 {
			qopts.MaxError = 0.5 // full-domain covering is exact at every level
		}
		res, err := d.QueryRectOpts(testBound, qopts, geoblocks.Count())
		if err != nil {
			t.Errorf("%s: query: %v", label, err)
			return
		}
		if res.Count < floor {
			t.Errorf("%s: stale answer: count %d < acknowledged floor %d", label, res.Count, floor)
		}
	}

	// Ingesters: acknowledge a batch, then immediately verify their own
	// write is visible.
	for i := 0; i < ingesters; i++ {
		ingWG.Add(1)
		go func(id int) {
			defer ingWG.Done()
			rng := rand.New(rand.NewSource(int64(1000 + id)))
			for b := 0; b < batches; b++ {
				pts, cols := genIngestRows(rng, batchRows)
				if _, err := d.Ingest(pts, cols); err != nil {
					t.Errorf("ingester %d: %v", id, err)
					return
				}
				ackedTotal.Add(batchRows)
				checkVisible(rng, fmt.Sprintf("ingester %d", id))
			}
		}(i)
	}

	// Queriers: hot footprints (result-cache hits), random footprints,
	// batch queries; each checks the monotonic floor.
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(2000 + id)))
			hot := geom.RectFromCenter(geom.Pt(50, 50), 20, 20)
			for {
				select {
				case <-done:
					return
				default:
				}
				switch rng.Intn(3) {
				case 0:
					checkVisible(rng, fmt.Sprintf("querier %d", id))
				case 1:
					if _, err := d.QueryRect(hot, testReqs...); err != nil {
						t.Errorf("querier %d: hot rect: %v", id, err)
						return
					}
				case 2:
					polys := []*geom.Polygon{
						geoblocks.RegularPolygon(geom.Pt(rng.Float64()*100, rng.Float64()*100), 5+rng.Float64()*15, 5),
						geoblocks.RegularPolygon(geom.Pt(rng.Float64()*100, rng.Float64()*100), 5+rng.Float64()*15, 6),
					}
					if _, err := d.QueryBatchOpts(polys, geoblocks.QueryOptions{MaxError: 0.3}, testReqs...); err != nil {
						t.Errorf("querier %d: batch: %v", id, err)
						return
					}
				}
			}
		}(i)
	}

	// Explicit folds racing the background compactor.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			if _, err := d.Compact(); err != nil {
				t.Errorf("compact: %v", err)
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()

	// Snapshots mid-stream (each folds, serialises and truncates the WAL).
	wg.Add(1)
	go func() {
		defer wg.Done()
		for n := 0; ; n++ {
			select {
			case <-done:
				return
			default:
			}
			dir := filepath.Join(dataDir, fmt.Sprintf("race-snap-%d", n))
			if _, err := d.Snapshot(dir); err != nil {
				t.Errorf("snapshot %d: %v", n, err)
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
	}()

	// Drop/re-add churn on a second dataset sharing the store (and its
	// ingest policy): registration, WAL attach, compactor start/stop.
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(3000))
		for n := 0; n < 10; n++ {
			select {
			case <-done:
				return
			default:
			}
			churn := buildDataset(t, "churn", 500, int64(n), Options{Level: 10})
			if err := st.Add(churn); err != nil {
				t.Errorf("churn add %d: %v", n, err)
				return
			}
			pts, cols := genIngestRows(rng, 50)
			if _, err := churn.Ingest(pts, cols); err != nil {
				t.Errorf("churn ingest %d: %v", n, err)
				return
			}
			if !st.Drop("churn") {
				t.Errorf("churn drop %d failed", n)
				return
			}
		}
	}()

	// Stop the open-ended goroutines once every ingester has finished.
	go func() {
		ingWG.Wait()
		close(done)
	}()
	ingWG.Wait()
	wg.Wait()

	// Quiesce and verify the final fold: every acknowledged row present
	// exactly once, and the folded dataset answers like a scratch rebuild.
	if _, err := d.Compact(); err != nil {
		t.Fatal(err)
	}
	if d.DeltaRows() != 0 {
		t.Fatalf("delta rows after final compact: %d", d.DeltaRows())
	}
	res, err := d.QueryRect(testBound, geoblocks.Count())
	if err != nil {
		t.Fatal(err)
	}
	want := base + uint64(ingesters*batches*batchRows)
	if res.Count != want {
		t.Fatalf("final count %d, want %d", res.Count, want)
	}
	st.Close()
}
