package store

import (
	"errors"
	"fmt"
	"path/filepath"
	"runtime"
	"slices"
	"sort"
	"sync"
	"sync/atomic"

	"geoblocks"
	"geoblocks/internal/cellid"
	"geoblocks/internal/core"
	"geoblocks/internal/cover"
	"geoblocks/internal/geom"
	"geoblocks/internal/resultcache"
	"geoblocks/internal/snapshot"
)

// MaxShardLevel bounds the shard prefix level: level 6 already yields up
// to 4096 shards, far beyond what a single process usefully fans out to.
const MaxShardLevel = 6

// Options configure a dataset build.
type Options struct {
	// Level is the block grid level of every shard (the spatial error
	// bound, as for a single GeoBlock).
	Level int
	// ShardLevel is the cell level of the spatial partition: each
	// non-empty cell at this level becomes one shard. 0 builds a single
	// unsharded block. Must not exceed Level (a shard must be at least
	// one grid cell) nor MaxShardLevel.
	ShardLevel int
	// CacheThreshold, when positive, enables a per-shard query cache with
	// that aggregate-threshold budget fraction (geoblocks.EnableCache).
	CacheThreshold float64
	// CacheAutoRefresh is the per-shard auto-refresh cadence in queries
	// (0 = manual refresh), forwarded to EnableCache.
	CacheAutoRefresh int
	// PyramidLevels is the number of coarser pyramid levels each shard
	// derives below the block level (geoblocks.BuildPyramid): the levels
	// the query planner can answer error-bounded queries at. 0 disables
	// the pyramid — every query answers at full resolution.
	PyramidLevels int
	// Clean overrides the extract phase's outlier rule. Nil keeps the
	// builder default (drop points outside the dataset bound).
	Clean *core.CleanRule
	// ResultCacheBytes, when positive, enables the dataset-level result
	// cache (internal/resultcache) with that byte budget: repeated
	// queries over hot regions are answered from their canonical
	// footprint instead of re-running covering, fan-out and merge.
	ResultCacheBytes int64
	// ResultCacheMinHits is the result cache's admission floor: how often
	// a query footprint must repeat before its result is cached. 0 admits
	// on first miss. Ignored unless ResultCacheBytes is positive.
	ResultCacheMinHits int
	// DeltaMaxRows caps the dataset's pending (unfolded) ingest delta
	// rows: an ingest that would exceed it is rejected with
	// ErrBackpressure, and half the cap kicks the background compactor.
	// 0 disables the cap. Runtime-only — not persisted in snapshots; the
	// daemon re-applies its flag on restore.
	DeltaMaxRows int64
}

func (o Options) validate() error {
	if o.Level < 0 || o.Level > geoblocks.MaxLevel {
		return fmt.Errorf("store: block level %d out of range [0,%d]", o.Level, geoblocks.MaxLevel)
	}
	if o.ShardLevel < 0 || o.ShardLevel > MaxShardLevel {
		return fmt.Errorf("store: shard level %d out of range [0,%d]", o.ShardLevel, MaxShardLevel)
	}
	if o.ShardLevel > o.Level {
		return fmt.Errorf("store: shard level %d exceeds block level %d", o.ShardLevel, o.Level)
	}
	if o.CacheThreshold < 0 {
		return fmt.Errorf("store: cache threshold must be >= 0, got %v", o.CacheThreshold)
	}
	if o.PyramidLevels < 0 {
		return fmt.Errorf("store: pyramid levels must be >= 0, got %d", o.PyramidLevels)
	}
	if o.ResultCacheBytes < 0 {
		return fmt.Errorf("store: result cache bytes must be >= 0, got %d", o.ResultCacheBytes)
	}
	if o.ResultCacheMinHits < 0 {
		return fmt.Errorf("store: result cache min hits must be >= 0, got %d", o.ResultCacheMinHits)
	}
	if o.DeltaMaxRows < 0 {
		return fmt.Errorf("store: delta max rows must be >= 0, got %d", o.DeltaMaxRows)
	}
	return nil
}

// shard is one spatial partition: the cell at the shard level whose leaf
// range the shard owns, and the GeoBlock holding exactly that range's
// rows. Shards are sorted by cell, i.e. by the contiguous, disjoint
// cell-id ranges they own.
//
// An eagerly-restored (or built) shard holds its block directly. A shard
// of a mapped dataset (OpenMapped) holds a lazyShard instead: the block
// materialises from the snapshot file on first query and may be evicted
// by the residency manager, so all access goes through acquire.
type shard struct {
	cell  cellid.ID
	block *geoblocks.GeoBlock
	lazy  *lazyShard
	// delta is the shard's mutable ingest tail (ingest.go), merged after
	// the base on every query and folded into a replacement base block by
	// compaction. Nil on mapped (read-only) datasets.
	delta *delta
}

// noopRelease is the release func of eagerly-held blocks, shared to keep
// the hot path allocation-free.
var noopRelease = func() {}

// acquire returns the shard's block pinned for the duration of one
// query; the caller must invoke the release func when done with it.
// Eager shards return their block directly; lazy shards fault it in (or
// wait out a concurrent fault) via the residency manager — this is where
// a data-region corruption deferred by the lazy open surfaces, as a
// typed query-time error.
func (sh *shard) acquire() (*geoblocks.GeoBlock, func(), error) {
	if sh.lazy == nil {
		return sh.block, noopRelease, nil
	}
	return sh.lazy.acquire()
}

// Dataset is one named, spatially sharded dataset: a set of GeoBlocks over
// a common domain, partitioned by top-level cell prefix, plus the coverer
// shared by all queries. Queries, snapshots and stats may run from any
// number of goroutines; Update (and the other structural mutations) are
// serialised against them by the dataset's reader/writer lock, so live
// serving keeps working through a data mutation.
type Dataset struct {
	name    string
	opts    Options
	dom     cellid.Domain
	schema  geoblocks.Schema
	coverer *cover.Coverer
	shards  []shard

	// srcDir is the absolute snapshot directory a mapped dataset serves
	// from ("" for built / eagerly-restored datasets). Snapshotting a
	// mapped dataset clones this directory byte for byte instead of
	// faulting every shard in to re-encode it.
	srcDir string
	// residency is the manager budgeting this dataset's materialised
	// shards; nil for eager datasets. Non-nil also marks the dataset
	// read-only (Update is rejected — the aggregate arrays are views of
	// a read-only mapping).
	residency *Residency
	// restored marks a dataset loaded from a snapshot (Open/OpenMapped)
	// rather than built fresh: only restored datasets may replay an
	// existing WAL (store.attachIngest) — a fresh build of the same name
	// supersedes any stale log.
	restored bool

	// mu orders queries (read side) against structural mutations —
	// Update, EnableResultCache, RefreshCaches (write side). The shard
	// slice itself never changes; the lock protects the block internals
	// the mutations patch.
	mu sync.RWMutex

	// coverers holds one coverer per servable grid level — the block level
	// plus every pyramid level — so the router computes each planned
	// query's covering at the level the shards will execute it at. Built
	// once at Build/Open time, read-only afterwards.
	coverers map[int]*cover.Coverer

	// results is the dataset-level result cache, nil when disabled. It
	// fronts the router: hot repeated queries are served from their
	// canonical footprint, verified against the cache's generation
	// counter (bumped by Update/Drop — see Invalidate).
	results *resultcache.Cache

	// queries counts routed queries (each batch element counts once).
	queries atomic.Uint64

	// Streaming write path (ingest.go, compact.go). ingestMu serialises
	// batch application so per-shard delta rows land in sequence order —
	// a length prefix is then a consistent cut; compactMu serialises
	// folds against each other and against Update (which mutates base
	// arrays in place — a fold racing it would discard the mutation at
	// swap time). Lock order: compactMu → d.mu → ingestMu.
	ingestMu  sync.Mutex
	compactMu sync.Mutex
	// wal is the attached write-ahead log, nil until EnableWAL. Guarded
	// by d.mu for attach/detach; the WAL serialises its own appends.
	wal *snapshot.WAL
	// ingestSeq is the highest acknowledged batch sequence; foldedSeq the
	// highest sequence folded into the base blocks. foldedSeq advances
	// only under d.mu write lock (the fold swap), so a read-locked holder
	// sees it consistent with the blocks.
	ingestSeq atomic.Uint64
	foldedSeq atomic.Uint64
	// deltaRows tracks pending rows across all shard deltas, against the
	// deltaMaxRows backpressure cap.
	deltaRows    atomic.Int64
	deltaMaxRows atomic.Int64
	// assignEpoch is the cluster assignment epoch this dataset last
	// served under (0 outside cluster mode). Stamped by the store when a
	// coordinator loads or reloads its assignment, persisted in the
	// snapshot manifest for operator forensics.
	assignEpoch atomic.Uint64
	// compactKick, when set, nudges the attached background compactor.
	compactKick atomic.Pointer[func()]

	ingestBatches     atomic.Uint64
	ingestRowsTotal   atomic.Uint64
	replayedRows      atomic.Uint64
	backpressured     atomic.Uint64
	compactions       atomic.Uint64
	compactedRows     atomic.Uint64
	lastCompactMicros atomic.Int64

	// Join counters (join.go): cumulative over every Join/JoinRects/
	// PlanJoin call, surfaced in DatasetStats and at /metrics.
	joins           atomic.Uint64
	joinPolygons    atomic.Uint64
	joinInterior    atomic.Uint64
	joinBoundary    atomic.Uint64
	joinFallbacks   atomic.Uint64
	joinCacheHits   atomic.Uint64
	joinCacheMisses atomic.Uint64
}

// Build partitions the raw rows by shard-level cell prefix and builds one
// GeoBlock per non-empty shard, all over the same domain so cell ids and
// coverings are comparable across shards. Rows outside bound are dropped
// by the extract phase of the shard they clamp into (or by opts.Clean).
// A dataset with no surviving rows still gets one empty shard so queries
// resolve and return identity results.
func Build(name string, bound geom.Rect, schema geoblocks.Schema, pts []geom.Point, cols [][]float64, opts Options) (*Dataset, error) {
	if name == "" {
		return nil, fmt.Errorf("store: dataset name must not be empty")
	}
	if err := opts.validate(); err != nil {
		return nil, err
	}
	dom, err := cellid.NewDomain(bound)
	if err != nil {
		return nil, err
	}
	cov, err := cover.NewCoverer(dom, cover.DefaultOptions(opts.Level))
	if err != nil {
		return nil, err
	}
	if len(cols) != schema.NumCols() {
		return nil, fmt.Errorf("store: got %d columns, schema has %d", len(cols), schema.NumCols())
	}
	for c := range cols {
		if len(cols[c]) != len(pts) {
			return nil, fmt.Errorf("store: column %d has %d rows, want %d", c, len(cols[c]), len(pts))
		}
	}

	// Partition row indices by shard cell. Points outside the bound clamp
	// into an edge shard and are dropped there by the clean rule.
	byCell := make(map[cellid.ID][]int)
	for i, p := range pts {
		cell := dom.CellAt(p, opts.ShardLevel)
		byCell[cell] = append(byCell[cell], i)
	}
	cells := make([]cellid.ID, 0, len(byCell))
	for cell := range byCell {
		cells = append(cells, cell)
	}
	if len(cells) == 0 {
		// Keep one empty shard so queries can resolve aggregate specs.
		cells = append(cells, cellid.Begin(opts.ShardLevel))
	}
	slices.Sort(cells)

	d := &Dataset{
		name:    name,
		opts:    opts,
		dom:     dom,
		schema:  schema,
		coverer: cov,
		shards:  make([]shard, 0, len(cells)),
	}
	rowPts := make([]geom.Point, 0)
	rowCols := make([][]float64, schema.NumCols())
	for _, cell := range cells {
		idxs := byCell[cell]
		rowPts = rowPts[:0]
		for c := range rowCols {
			rowCols[c] = rowCols[c][:0]
		}
		for _, i := range idxs {
			rowPts = append(rowPts, pts[i])
			for c := range rowCols {
				rowCols[c] = append(rowCols[c], cols[c][i])
			}
		}
		b, err := geoblocks.NewBuilder(bound, schema)
		if err != nil {
			return nil, err
		}
		if opts.Clean != nil {
			b.SetCleanRule(*opts.Clean)
		}
		if err := b.AddRows(rowPts, rowCols); err != nil {
			return nil, err
		}
		blk, err := b.Build(opts.Level, nil)
		if err != nil {
			return nil, fmt.Errorf("store: building shard %v: %w", cell, err)
		}
		if opts.CacheThreshold > 0 {
			if err := blk.EnableCache(opts.CacheThreshold, opts.CacheAutoRefresh); err != nil {
				return nil, err
			}
		}
		if err := blk.BuildPyramid(opts.PyramidLevels); err != nil {
			return nil, fmt.Errorf("store: pyramid of shard %v: %w", cell, err)
		}
		d.shards = append(d.shards, shard{cell: cell, block: blk, delta: newDelta(schema.NumCols())})
	}
	d.deltaMaxRows.Store(opts.DeltaMaxRows)
	if err := d.initCoverers(); err != nil {
		return nil, err
	}
	if err := d.initResultCache(); err != nil {
		return nil, err
	}
	return d, nil
}

// initResultCache creates the dataset-level result cache when the options
// ask for one.
func (d *Dataset) initResultCache() error {
	if d.opts.ResultCacheBytes <= 0 {
		d.results = nil
		return nil
	}
	rc, err := resultcache.New(resultcache.Config{
		Dataset:  d.name,
		MaxBytes: d.opts.ResultCacheBytes,
		MinHits:  d.opts.ResultCacheMinHits,
	})
	if err != nil {
		return fmt.Errorf("store: %v", err)
	}
	d.results = rc
	return nil
}

// initCoverers builds one coverer per servable grid level: the block
// level (reusing the dataset coverer) plus each pyramid level of the
// shards. Every shard is built with the same Options, so shard 0's
// pyramid describes them all.
func (d *Dataset) initCoverers() error {
	d.coverers = map[int]*cover.Coverer{d.opts.Level: d.coverer}
	for _, lvl := range d.pyramidLevelList() {
		c, err := cover.NewCoverer(d.dom, cover.DefaultOptions(lvl))
		if err != nil {
			return err
		}
		d.coverers[lvl] = c
	}
	return nil
}

// pyramidLevelList returns the pyramid levels every shard serves,
// finest first. Eager datasets read shard 0's materialised pyramid;
// mapped datasets must not fault a shard in just to plan, so they
// derive the same list from the options — mirroring BuildPyramid's
// loop: levels base−1, base−2, …, down to max(0, base−PyramidLevels).
func (d *Dataset) pyramidLevelList() []int {
	if sh := &d.shards[0]; sh.lazy == nil {
		return sh.block.PyramidLevels()
	}
	var lvls []int
	for lvl := d.opts.Level - 1; lvl >= 0 && len(lvls) < d.opts.PyramidLevels; lvl-- {
		lvls = append(lvls, lvl)
	}
	return lvls
}

// Name returns the dataset name.
func (d *Dataset) Name() string { return d.name }

// Schema returns the dataset's value-column schema.
func (d *Dataset) Schema() geoblocks.Schema { return d.schema }

// Bound returns the dataset's spatial domain bound.
func (d *Dataset) Bound() geom.Rect { return d.dom.Bound() }

// Level returns the block grid level of the shards.
func (d *Dataset) Level() int { return d.opts.Level }

// ShardLevel returns the cell level of the spatial partition.
func (d *Dataset) ShardLevel() int { return d.opts.ShardLevel }

// NumShards returns the number of shards.
func (d *Dataset) NumShards() int { return len(d.shards) }

// Cover computes the dataset-level cell covering of a polygon — computed
// once per query and split across shards by the router.
func (d *Dataset) Cover(poly *geom.Polygon) []cellid.ID {
	return d.coverer.Cover(poly).Cells
}

// CoverRect computes the covering of a rectangle.
func (d *Dataset) CoverRect(r geom.Rect) []cellid.ID {
	return d.coverer.CoverRect(r).Cells
}

// PlanLevel returns the grid level the dataset's query planner answers at
// for the given error bound: the coarsest shard pyramid level whose cell
// diagonal does not exceed maxError, or the block level. Every shard
// shares one pyramid configuration, so shard 0 decides for the dataset —
// by its materialised pyramid when eager, and by the equivalent
// arithmetic over the options when mapped (planning must never fault a
// shard in; equality with GeoBlock.LevelFor is pinned by test).
func (d *Dataset) PlanLevel(maxError float64) int {
	if sh := &d.shards[0]; sh.lazy == nil {
		return sh.block.LevelFor(maxError)
	}
	if maxError <= 0 || d.opts.PyramidLevels <= 0 {
		return d.opts.Level
	}
	want := d.dom.LevelForMaxDiagonal(maxError)
	if want >= d.opts.Level {
		return d.opts.Level
	}
	lowest := d.opts.Level - d.opts.PyramidLevels
	if lowest < 0 {
		lowest = 0
	}
	return max(want, lowest)
}

// covererAt returns the coverer of a servable level (the dataset coverer
// for the block level).
func (d *Dataset) covererAt(lvl int) *cover.Coverer {
	if c, ok := d.coverers[lvl]; ok {
		return c
	}
	return d.coverer
}

// Query answers a SELECT aggregate query over a polygon: one covering,
// split across shards, merged partials.
func (d *Dataset) Query(poly *geom.Polygon, reqs ...geoblocks.AggRequest) (geoblocks.Result, error) {
	return d.QueryOpts(poly, geoblocks.QueryOptions{}, reqs...)
}

// QueryRect answers a SELECT aggregate query over a rectangle.
func (d *Dataset) QueryRect(r geom.Rect, reqs ...geoblocks.AggRequest) (geoblocks.Result, error) {
	return d.QueryRectOpts(r, geoblocks.QueryOptions{}, reqs...)
}

// QueryOpts answers a SELECT aggregate query over a polygon through the
// query planner: the router resolves the pyramid level admitted by
// opts.MaxError once, computes one covering at that level, splits it
// across the shards and merges the per-shard partials executed against
// each shard's pyramid block. The result reports the level answered at
// and the guaranteed error bound of the covering (paper Sec. 3.4); zero
// options reproduce the exact path bit for bit.
func (d *Dataset) QueryOpts(poly *geom.Polygon, opts geoblocks.QueryOptions, reqs ...geoblocks.AggRequest) (geoblocks.Result, error) {
	if err := opts.Validate(); err != nil {
		return geoblocks.Result{}, err
	}
	d.queries.Add(1)
	d.mu.RLock()
	defer d.mu.RUnlock()
	lvl := d.PlanLevel(opts.MaxError)
	if d.results != nil && resultCacheable(opts) {
		key := resultcache.PolygonKey(poly, lvl, opts.MaxError, aggsTag(reqs))
		return d.queryCached(key, lvl, opts, reqs, func(c *cover.Coverer) *cover.Covering {
			return c.Cover(poly)
		})
	}
	c := d.covererAt(lvl)
	cov := c.Cover(poly)
	res, err := d.queryCovering(cov.Cells, lvl, opts, reqs, true)
	if err != nil {
		return geoblocks.Result{}, err
	}
	res.Level = lvl
	res.ErrorBound = c.GuaranteedErrorDistance(cov)
	return res, nil
}

// QueryRectOpts is QueryOpts over a rectangle.
func (d *Dataset) QueryRectOpts(r geom.Rect, opts geoblocks.QueryOptions, reqs ...geoblocks.AggRequest) (geoblocks.Result, error) {
	if err := opts.Validate(); err != nil {
		return geoblocks.Result{}, err
	}
	d.queries.Add(1)
	d.mu.RLock()
	defer d.mu.RUnlock()
	lvl := d.PlanLevel(opts.MaxError)
	if d.results != nil && resultCacheable(opts) {
		key := resultcache.RectKey(r, lvl, opts.MaxError, aggsTag(reqs))
		return d.queryCached(key, lvl, opts, reqs, func(c *cover.Coverer) *cover.Covering {
			return c.CoverRect(r)
		})
	}
	c := d.covererAt(lvl)
	cov := c.CoverRect(r)
	res, err := d.queryCovering(cov.Cells, lvl, opts, reqs, true)
	if err != nil {
		return geoblocks.Result{}, err
	}
	res.Level = lvl
	res.ErrorBound = c.GuaranteedErrorDistance(cov)
	return res, nil
}

// resultCacheable reports whether the options select the deterministic
// serial-kernel path whose answers the result cache may serve verbatim.
// Workers > 1 (and < 0) run the parallel in-shard kernel, whose SUM may
// reassociate differently from the serial one; DisableCache is the
// caller's explicit measurement escape hatch and bypasses the result
// cache alongside the per-shard caches.
func resultCacheable(opts geoblocks.QueryOptions) bool {
	return (opts.Workers == 0 || opts.Workers == 1) && !opts.DisableCache
}

// aggsTag is the canonical aggregate-spec component of a query footprint:
// the requests' canonical spellings joined in request order (order is
// semantic — results are positional).
func aggsTag(reqs []geoblocks.AggRequest) string {
	switch len(reqs) {
	case 0:
		return ""
	case 1:
		return reqs[0].String()
	}
	n := len(reqs) - 1
	for _, r := range reqs {
		n += len(r.String())
	}
	b := make([]byte, 0, n)
	for i, r := range reqs {
		if i > 0 {
			b = append(b, ',')
		}
		b = append(b, r.String()...)
	}
	return string(b)
}

// queryCached is the result-cache-fronted query path, called with the
// dataset read lock held. On a hit the cached result is returned without
// touching the router; on a covered miss (the region's covering is
// memoized but the result is missing or from an older generation) only
// the scatter-gather re-runs; on a cold miss the covering is computed
// via coverFn and offered to the cache along with the result. The cached
// ErrorBound and Level are data-independent — both derive from the
// covering alone — so replaying them after an invalidation is exact.
func (d *Dataset) queryCached(key resultcache.Key, lvl int, opts geoblocks.QueryOptions, reqs []geoblocks.AggRequest, coverFn func(*cover.Coverer) *cover.Covering) (geoblocks.Result, error) {
	gen := d.results.Generation()
	res, cells, bound, outcome := d.results.Lookup(key, gen)
	switch outcome {
	case resultcache.Hit:
		return res, nil
	case resultcache.MissCovered:
		res, err := d.queryCovering(cells, lvl, opts, reqs, true)
		if err != nil {
			return geoblocks.Result{}, err
		}
		res.Level = lvl
		res.ErrorBound = bound
		d.results.Store(key, cells, bound, res, gen)
		return res, nil
	}
	c := d.covererAt(lvl)
	cov := coverFn(c)
	res, err := d.queryCovering(cov.Cells, lvl, opts, reqs, true)
	if err != nil {
		return geoblocks.Result{}, err
	}
	res.Level = lvl
	res.ErrorBound = c.GuaranteedErrorDistance(cov)
	d.results.Store(key, cov.Cells, res.ErrorBound, res, gen)
	return res, nil
}

// QueryCovering answers a SELECT query over a pre-computed covering
// (ascending, disjoint, no cells finer than the block level). The
// covering fixes the grid level — it executes at full resolution with a
// conservative reported bound (diagonal of its coarsest cell). Shards
// whose range the covering misses are never touched; multi-shard queries
// fan out one goroutine per involved shard and merge the partial
// accumulators in shard order (COUNT/MIN/MAX bit-identical to an
// unsharded block, SUM/AVG up to floating-point reassociation — see the
// package comment).
func (d *Dataset) QueryCovering(cov []cellid.ID, reqs ...geoblocks.AggRequest) (geoblocks.Result, error) {
	d.queries.Add(1)
	d.mu.RLock()
	defer d.mu.RUnlock()
	res, err := d.queryCovering(cov, d.opts.Level, geoblocks.QueryOptions{}, reqs, true)
	if err != nil {
		return geoblocks.Result{}, err
	}
	res.Level = d.opts.Level
	res.ErrorBound = d.coveringBound(cov)
	return res, nil
}

// coveringBound is the conservative guaranteed bound of a bare cell
// list: the diagonal of its coarsest cell, 0 for an empty covering.
func (d *Dataset) coveringBound(cov []cellid.ID) float64 {
	return d.dom.MaxDiagonal(cov)
}

// queryPart is one routed unit: a shard and the sub-covering it answers.
type queryPart struct {
	shard *shard
	sub   []cellid.ID
}

// route splits the covering across the shards it intersects. Shards are
// sorted by their disjoint cell ranges and the covering spans
// [cov[0].RangeMin(), cov[last].RangeMax()], so a binary search bounds
// the candidate shards and routing costs O(log shards + candidates)
// instead of scanning all shards for every query.
func (d *Dataset) route(cov []cellid.ID) []queryPart {
	if len(cov) == 0 {
		return nil
	}
	lo, hi := cov[0].RangeMin(), cov[len(cov)-1].RangeMax()
	first := sort.Search(len(d.shards), func(i int) bool {
		return d.shards[i].cell.RangeMax() >= lo
	})
	var parts []queryPart
	for i := first; i < len(d.shards) && d.shards[i].cell.RangeMin() <= hi; i++ {
		sh := &d.shards[i]
		if sub := geoblocks.SplitCovering(cov, sh.cell); len(sub) > 0 {
			parts = append(parts, queryPart{shard: sh, sub: sub})
		}
	}
	return parts
}

// levelBlock resolves the block executing a query planned at lvl: the
// acquired shard block's pyramid entry for that level, or the base block
// when the level is not materialised (defensive — the planner only
// emits materialised levels).
func levelBlock(blk *geoblocks.GeoBlock, lvl int) *geoblocks.GeoBlock {
	if lb, ok := blk.AtLevel(lvl); ok {
		return lb
	}
	return blk
}

// shardPartial acquires one shard, runs its sub-covering against the
// planned level's block, and releases the pin. The pin only needs to
// outlive the scan: a returned Accumulator holds pre-combined scalar
// state, so merging and finalising it never touch the (possibly
// evicted) shard arrays again.
//
// When the shard carries pending ingest rows, the delta partial is
// merged AFTER the base partial, always — the fixed base-then-delta
// order keeps COUNT/MIN/MAX bit-identical to a rebuilt dataset and makes
// SUM's reassociation deterministic for a given delta state. The
// leaf-containment test inside QueryRowsPartial is exact at every
// pyramid level, so delta rows answer planned (coarse-level) queries
// with the same spatial semantics as base rows.
func shardPartial(sh *shard, sub []cellid.ID, lvl int, opts geoblocks.QueryOptions, reqs []geoblocks.AggRequest) (*geoblocks.Accumulator, error) {
	blk, release, err := sh.acquire()
	if err != nil {
		return nil, err
	}
	defer release()
	acc, err := levelBlock(blk, lvl).QueryCoveringPartialOpts(sub, opts, reqs...)
	if err != nil || sh.delta == nil || len(sub) == 0 {
		return acc, err
	}
	leaves, cols := sh.delta.view()
	if len(leaves) == 0 {
		return acc, nil
	}
	dacc, err := blk.QueryRowsPartial(sub, leaves, cols, reqs...)
	if err != nil {
		return nil, err
	}
	if err := acc.MergeFrom(dacc); err != nil {
		return nil, err
	}
	return acc, nil
}

// queryCovering executes one planned query: cov must have been computed
// at grid level lvl, and every involved shard answers its sub-covering
// with its level-lvl pyramid block (hitting that level's own query cache
// unless the options disable it). On a mapped dataset each involved
// shard is pinned for its scan — cold shards fault in here, concurrently
// for multi-shard queries.
func (d *Dataset) queryCovering(cov []cellid.ID, lvl int, opts geoblocks.QueryOptions, reqs []geoblocks.AggRequest, parallel bool) (geoblocks.Result, error) {
	parts := d.route(cov)
	switch len(parts) {
	case 0:
		// Empty covering, or one that misses every shard: an empty
		// partial against any shard resolves the specs and finalises the
		// identity result (zero count, NaN extrema).
		acc, err := shardPartial(&d.shards[0], nil, lvl, opts, reqs)
		if err != nil {
			return geoblocks.Result{}, err
		}
		return acc.Result(), nil
	case 1:
		acc, err := shardPartial(parts[0].shard, parts[0].sub, lvl, opts, reqs)
		if err != nil {
			return geoblocks.Result{}, err
		}
		return acc.Result(), nil
	}

	accs := make([]*geoblocks.Accumulator, len(parts))
	errs := make([]error, len(parts))
	if parallel {
		var wg sync.WaitGroup
		for i := range parts {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				accs[i], errs[i] = shardPartial(parts[i].shard, parts[i].sub, lvl, opts, reqs)
			}(i)
		}
		wg.Wait()
	} else {
		for i := range parts {
			accs[i], errs[i] = shardPartial(parts[i].shard, parts[i].sub, lvl, opts, reqs)
		}
	}
	for _, err := range errs {
		if err != nil {
			return geoblocks.Result{}, err
		}
	}
	// Merge in shard (ascending cell-range) order: deterministic for a
	// fixed covering and sharding.
	total := accs[0]
	for _, acc := range accs[1:] {
		if err := total.MergeFrom(acc); err != nil {
			return geoblocks.Result{}, err
		}
	}
	return total.Result(), nil
}

// QueryBatch answers one SELECT query per polygon, sharing the covering
// machinery: coverings are computed once up front, then the polygons are
// answered concurrently (each batch element routes across shards
// serially, so the fan-out stays one goroutine per in-flight polygon).
// Results are positionally aligned with polys.
func (d *Dataset) QueryBatch(polys []*geom.Polygon, reqs ...geoblocks.AggRequest) ([]geoblocks.Result, error) {
	return d.QueryBatchOpts(polys, geoblocks.QueryOptions{}, reqs...)
}

// QueryBatchOpts is QueryBatch through the query planner: the pyramid
// level is planned once for the whole batch, every covering is computed
// at it, and each result reports the achieved level plus its own
// covering's guaranteed error bound.
func (d *Dataset) QueryBatchOpts(polys []*geom.Polygon, opts geoblocks.QueryOptions, reqs ...geoblocks.AggRequest) ([]geoblocks.Result, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	d.queries.Add(uint64(len(polys)))
	d.mu.RLock()
	defer d.mu.RUnlock()
	lvl := d.PlanLevel(opts.MaxError)
	c := d.covererAt(lvl)

	if d.results == nil || !resultCacheable(opts) {
		covs := make([][]cellid.ID, len(polys))
		bounds := make([]float64, len(polys))
		for i, p := range polys {
			cov := c.Cover(p)
			covs[i] = cov.Cells
			bounds[i] = c.GuaranteedErrorDistance(cov)
		}
		results, err := d.queryBatchCoverings(covs, lvl, opts, reqs)
		if err != nil {
			return nil, err
		}
		for i := range results {
			results[i].Level = lvl
			results[i].ErrorBound = bounds[i]
		}
		return results, nil
	}

	// Result-cached batch: resolve every element against the cache first
	// (hits and memoized coverings both count), then run only the misses
	// through the batch executor. The batch and single-query paths share
	// the serial in-shard kernel and the shard-order merge, so results
	// cached by one are bit-identical to recomputation by the other.
	tag := aggsTag(reqs)
	gen := d.results.Generation()
	results := make([]geoblocks.Result, len(polys))
	keys := make([]resultcache.Key, len(polys))
	missIdx := make([]int, 0, len(polys))
	covs := make([][]cellid.ID, 0, len(polys))
	bounds := make([]float64, 0, len(polys))
	for i, p := range polys {
		keys[i] = resultcache.PolygonKey(p, lvl, opts.MaxError, tag)
		res, cells, bound, outcome := d.results.Lookup(keys[i], gen)
		switch outcome {
		case resultcache.Hit:
			results[i] = res
			continue
		case resultcache.Miss:
			cov := c.Cover(p)
			cells = cov.Cells
			bound = c.GuaranteedErrorDistance(cov)
		}
		missIdx = append(missIdx, i)
		covs = append(covs, cells)
		bounds = append(bounds, bound)
	}
	if len(missIdx) == 0 {
		return results, nil
	}
	missRes, err := d.queryBatchCoverings(covs, lvl, opts, reqs)
	if err != nil {
		return nil, err
	}
	for j, i := range missIdx {
		missRes[j].Level = lvl
		missRes[j].ErrorBound = bounds[j]
		results[i] = missRes[j]
		d.results.Store(keys[i], covs[j], bounds[j], missRes[j], gen)
	}
	return results, nil
}

// QueryBatchCoverings is QueryBatch over pre-computed coverings, executed
// at full resolution with conservative per-covering bounds (see
// QueryCovering).
func (d *Dataset) QueryBatchCoverings(covs [][]cellid.ID, reqs ...geoblocks.AggRequest) ([]geoblocks.Result, error) {
	d.queries.Add(uint64(len(covs)))
	d.mu.RLock()
	defer d.mu.RUnlock()
	results, err := d.queryBatchCoverings(covs, d.opts.Level, geoblocks.QueryOptions{}, reqs)
	if err != nil {
		return nil, err
	}
	for i := range results {
		results[i].Level = d.opts.Level
		results[i].ErrorBound = d.coveringBound(covs[i])
	}
	return results, nil
}

func (d *Dataset) queryBatchCoverings(covs [][]cellid.ID, lvl int, opts geoblocks.QueryOptions, reqs []geoblocks.AggRequest) ([]geoblocks.Result, error) {
	results := make([]geoblocks.Result, len(covs))
	errs := make([]error, len(covs))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(covs) {
		workers = len(covs)
	}
	if workers <= 1 {
		for i, cov := range covs {
			results[i], errs[i] = d.queryCovering(cov, lvl, opts, reqs, false)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(covs) {
						return
					}
					results[i], errs[i] = d.queryCovering(covs[i], lvl, opts, reqs, false)
				}
			}()
		}
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

// Snapshot writes a durable snapshot of the dataset to dir: a manifest
// plus one framed, checksummed GeoBlock payload per shard, staged and
// renamed atomically (internal/snapshot; docs/FORMAT.md has the bytes).
// Shard payloads are written in parallel. Snapshotting is a read-only
// walk over the immutable aggregate arrays, so it is safe concurrently
// with queries; per-shard cache contents are not persisted — restored
// datasets rebuild their caches empty from the recorded configuration.
func (d *Dataset) Snapshot(dir string) (snapshot.Manifest, error) {
	return d.snapshot(dir, 0)
}

// SnapshotV3 writes the snapshot in the mappable format v3 (docs/
// FORMAT.md Sec. 8): aligned little-endian sections a later restore can
// serve in place via OpenMapped instead of decoding. Daemons running
// with mmap serving enabled snapshot in this format.
func (d *Dataset) SnapshotV3(dir string) (snapshot.Manifest, error) {
	return d.snapshot(dir, snapshot.FormatVersionV3)
}

func (d *Dataset) snapshot(dir string, formatVersion int) (snapshot.Manifest, error) {
	// Fold pending ingest rows into the base first, so the snapshotted
	// blocks cover every batch up to the manifest's IngestSeq and the
	// snapshot+WAL pair is a true recovery point. Rows acknowledged after
	// this fold stay recoverable: they hold sequences above IngestSeq and
	// the WAL keeps them.
	if d.residency == nil && d.deltaRows.Load() > 0 {
		if _, err := d.Compact(); err != nil {
			return snapshot.Manifest{}, err
		}
	}
	d.mu.RLock()
	// A mapped dataset already IS its snapshot: clone the backing
	// directory byte for byte (manifest checksums included) instead of
	// faulting every shard in to re-encode unchanged data. Cloning onto
	// the backing directory itself is a durable no-op.
	if d.srcDir != "" {
		defer d.mu.RUnlock()
		return snapshot.Clone(d.srcDir, dir)
	}
	bound := d.dom.Bound()
	m := snapshot.Manifest{
		FormatVersion:      formatVersion,
		Dataset:            d.name,
		Level:              d.opts.Level,
		ShardLevel:         d.opts.ShardLevel,
		CacheThreshold:     d.opts.CacheThreshold,
		CacheAutoRefresh:   d.opts.CacheAutoRefresh,
		PyramidLevels:      d.opts.PyramidLevels,
		ResultCacheBytes:   d.opts.ResultCacheBytes,
		ResultCacheMinHits: d.opts.ResultCacheMinHits,
		// foldedSeq only advances under the write lock (the fold swap),
		// so reading it under the read lock pins it to exactly the block
		// states serialised below.
		IngestSeq:       d.foldedSeq.Load(),
		AssignmentEpoch: d.assignEpoch.Load(),
		Bound:           [4]float64{bound.Min.X, bound.Min.Y, bound.Max.X, bound.Max.Y},
		Columns:         d.schema.Names,
	}
	shards := make([]snapshot.Shard, len(d.shards))
	for i := range d.shards {
		shards[i] = snapshot.Shard{Cell: d.shards[i].cell, Block: d.shards[i].block}
	}
	wal := d.wal
	m, err := snapshot.Save(dir, m, shards)
	d.mu.RUnlock()
	if err != nil {
		return m, err
	}
	// The batches up to IngestSeq are durable in the base now; drop them
	// from the log so it stays proportional to the un-snapshotted tail.
	if wal != nil {
		if err := wal.TruncateThrough(m.IngestSeq); err != nil {
			return m, fmt.Errorf("store: truncating ingest wal: %w", err)
		}
	}
	return m, nil
}

// Open loads a snapshot directory into a Dataset without registering it:
// every shard is read, checksum-verified and cross-checked against the
// manifest (failures wrap snapshot.ErrCorrupt / snapshot.ErrVersion and
// return no dataset), the coverer is rebuilt, and per-shard query caches
// are re-enabled empty when the manifest records a cache configuration.
// name overrides the dataset's registered name; empty keeps the
// manifest's.
func Open(dir, name string) (*Dataset, error) {
	m, shards, err := snapshot.Load(dir)
	if err != nil {
		return nil, err
	}
	if name == "" {
		name = m.Dataset
	}
	opts := Options{
		Level:              m.Level,
		ShardLevel:         m.ShardLevel,
		CacheThreshold:     m.CacheThreshold,
		CacheAutoRefresh:   m.CacheAutoRefresh,
		PyramidLevels:      m.PyramidLevels,
		ResultCacheBytes:   m.ResultCacheBytes,
		ResultCacheMinHits: m.ResultCacheMinHits,
	}
	if err := opts.validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", snapshot.ErrCorrupt, err)
	}
	bound := geom.Rect{Min: geom.Pt(m.Bound[0], m.Bound[1]), Max: geom.Pt(m.Bound[2], m.Bound[3])}
	dom, err := cellid.NewDomain(bound)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", snapshot.ErrCorrupt, err)
	}
	cov, err := cover.NewCoverer(dom, cover.DefaultOptions(m.Level))
	if err != nil {
		return nil, fmt.Errorf("%w: %v", snapshot.ErrCorrupt, err)
	}
	d := &Dataset{
		name:     name,
		opts:     opts,
		dom:      dom,
		schema:   geoblocks.NewSchema(m.Columns...),
		coverer:  cov,
		shards:   make([]shard, len(shards)),
		restored: true,
	}
	for i, sh := range shards {
		if opts.CacheThreshold > 0 {
			if err := sh.Block.EnableCache(opts.CacheThreshold, opts.CacheAutoRefresh); err != nil {
				return nil, fmt.Errorf("%w: enabling shard cache: %v", snapshot.ErrCorrupt, err)
			}
		}
		// Pyramids are not persisted (the snapshot format carries only the
		// base-level payloads, docs/FORMAT.md); re-derive them from the
		// recorded configuration.
		if err := sh.Block.BuildPyramid(opts.PyramidLevels); err != nil {
			return nil, fmt.Errorf("%w: rebuilding shard pyramid: %v", snapshot.ErrCorrupt, err)
		}
		d.shards[i] = shard{cell: sh.Cell, block: sh.Block, delta: newDelta(len(m.Columns))}
	}
	// The snapshotted base already covers every batch up to the recorded
	// IngestSeq; WAL replay (EnableWAL) applies only what came after.
	d.foldedSeq.Store(m.IngestSeq)
	d.ingestSeq.Store(m.IngestSeq)
	d.assignEpoch.Store(m.AssignmentEpoch)
	if err := d.initCoverers(); err != nil {
		return nil, fmt.Errorf("%w: %v", snapshot.ErrCorrupt, err)
	}
	// Result-cache contents are not persisted; restored datasets start a
	// cold cache from the recorded configuration at generation 0.
	if err := d.initResultCache(); err != nil {
		return nil, fmt.Errorf("%w: %v", snapshot.ErrCorrupt, err)
	}
	return d, nil
}

// OpenMapped serves the snapshot at dir in place: the manifest and every
// shard's header/table/meta are validated eagerly (snapshot.OpenLazy),
// but no shard data is read — blocks materialise via mmap on their first
// query, budgeted by the residency manager (a nil res gets a private
// unlimited one). Startup cost is metadata-sized, independent of data
// volume. The resulting dataset is read-only (Update returns a
// core.ErrReadOnly-wrapped error) and snapshots by cloning dir.
//
// Version-1 snapshots cannot be served in place; they fall back to the
// eager Open transparently — check Mapped() on the result.
func OpenMapped(dir, name string, res *Residency) (*Dataset, error) {
	m, lazies, err := snapshot.OpenLazy(dir)
	if err != nil {
		if errors.Is(err, snapshot.ErrEagerOnly) {
			return Open(dir, name)
		}
		return nil, err
	}
	if res == nil {
		res = NewResidency(0)
	}
	if name == "" {
		name = m.Dataset
	}
	opts := Options{
		Level:              m.Level,
		ShardLevel:         m.ShardLevel,
		CacheThreshold:     m.CacheThreshold,
		CacheAutoRefresh:   m.CacheAutoRefresh,
		PyramidLevels:      m.PyramidLevels,
		ResultCacheBytes:   m.ResultCacheBytes,
		ResultCacheMinHits: m.ResultCacheMinHits,
	}
	if err := opts.validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", snapshot.ErrCorrupt, err)
	}
	bound := geom.Rect{Min: geom.Pt(m.Bound[0], m.Bound[1]), Max: geom.Pt(m.Bound[2], m.Bound[3])}
	dom, err := cellid.NewDomain(bound)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", snapshot.ErrCorrupt, err)
	}
	cov, err := cover.NewCoverer(dom, cover.DefaultOptions(m.Level))
	if err != nil {
		return nil, fmt.Errorf("%w: %v", snapshot.ErrCorrupt, err)
	}
	absDir, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	d := &Dataset{
		name:      name,
		opts:      opts,
		dom:       dom,
		schema:    geoblocks.NewSchema(m.Columns...),
		coverer:   cov,
		shards:    make([]shard, len(lazies)),
		srcDir:    absDir,
		residency: res,
		restored:  true,
	}
	cfg := materializeCfg{
		cacheThreshold:   opts.CacheThreshold,
		cacheAutoRefresh: opts.CacheAutoRefresh,
		pyramidLevels:    opts.PyramidLevels,
	}
	for i, ls := range lazies {
		lsh := &lazyShard{res: res, src: ls, cfg: cfg}
		res.register(lsh)
		d.shards[i] = shard{cell: ls.Cell, lazy: lsh}
	}
	d.assignEpoch.Store(m.AssignmentEpoch)
	if err := d.initCoverers(); err != nil {
		return nil, fmt.Errorf("%w: %v", snapshot.ErrCorrupt, err)
	}
	if err := d.initResultCache(); err != nil {
		return nil, fmt.Errorf("%w: %v", snapshot.ErrCorrupt, err)
	}
	return d, nil
}

// Mapped reports whether the dataset serves a mapped snapshot in place
// (lazy shards, read-only) rather than decoded heap blocks.
func (d *Dataset) Mapped() bool { return d.residency != nil }

// RefreshCaches rebuilds every shard's query cache from its accumulated
// statistics. No-op for shards without an enabled cache. It is a
// structural mutation on each shard, serialised against in-flight
// queries by the dataset lock; prefer CacheAutoRefresh for live serving.
func (d *Dataset) RefreshCaches() {
	d.mu.Lock()
	defer d.mu.Unlock()
	for i := range d.shards {
		sh := &d.shards[i]
		if sh.lazy != nil {
			// Refresh only already-resident shards: a cache refresh must
			// not fault cold shards in (an evicted shard restarts with an
			// empty cache anyway).
			if blk, release, ok := sh.lazy.peek(); ok {
				blk.RefreshCache()
				release()
			}
			continue
		}
		sh.block.RefreshCache()
	}
}

// Update folds a batch of new tuples into the dataset's shards (paper
// Sec. 5): rows are partitioned by shard-level cell prefix and each
// involved shard absorbs its slice in place, rebuilding its query cache
// and re-deriving its pyramid levels. Rows landing outside every
// existing shard (or outside a shard's aggregated cells) return
// core.ErrRebuildRequired — rebuild the dataset in that case. The update
// is serialised against queries by the dataset lock, so concurrent
// readers see either the old or the new aggregates, never a mix; it is
// NOT atomic across shards on error — a failing shard leaves earlier
// shards updated (the same batched-maintenance caveat as a single
// block's Update, per shard).
//
// Update bumps the dataset generation whether or not it succeeds, so the
// result cache never serves an answer computed before a partial
// mutation. The one exception is a batch rejected by upfront validation
// (ragged columns): nothing was touched, so nothing is invalidated.
func (d *Dataset) Update(batch *geoblocks.UpdateBatch) error {
	if batch == nil || batch.Len() == 0 {
		return nil
	}
	// A mapped dataset's aggregate arrays are views of a read-only file
	// mapping; updates require an eager (decoded) restore.
	if d.residency != nil {
		return fmt.Errorf("store: dataset %q serves a mapped snapshot read-only; restore it eagerly to update: %w",
			d.name, core.ErrReadOnly)
	}
	// Reject ragged batches before partitioning rows: indexing a short
	// column below would panic under the dataset write lock instead of
	// surfacing the validation error core's Update would return.
	for c := range batch.Cols {
		if len(batch.Cols[c]) != len(batch.Points) {
			return fmt.Errorf("store: update column %d has %d rows, want %d", c, len(batch.Cols[c]), len(batch.Points))
		}
	}
	// Update mutates base arrays in place. A fold (Compact) that read the
	// base before this mutation would discard it when its replacement
	// block swaps in, so updates serialise against the whole fold window,
	// not just the swap. Lock order: compactMu before d.mu.
	d.compactMu.Lock()
	defer d.compactMu.Unlock()
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.results != nil {
		defer d.results.Invalidate()
	}

	// Partition rows by the shard cell their point lands in.
	byShard := make(map[int][]int)
	for i, p := range batch.Points {
		cell := d.dom.CellAt(p, d.opts.ShardLevel)
		s, ok := d.shardIndex(cell)
		if !ok {
			return fmt.Errorf("store: update row %d lands in unbuilt shard %v: %w", i, cell, core.ErrRebuildRequired)
		}
		byShard[s] = append(byShard[s], i)
	}

	// Ascending shard order for a deterministic failure point.
	order := make([]int, 0, len(byShard))
	for s := range byShard {
		order = append(order, s)
	}
	sort.Ints(order)
	sub := geoblocks.UpdateBatch{Cols: make([][]float64, len(batch.Cols))}
	for _, s := range order {
		idxs := byShard[s]
		sub.Points = sub.Points[:0]
		for c := range sub.Cols {
			sub.Cols[c] = sub.Cols[c][:0]
		}
		for _, i := range idxs {
			sub.Points = append(sub.Points, batch.Points[i])
			for c := range sub.Cols {
				sub.Cols[c] = append(sub.Cols[c], batch.Cols[c][i])
			}
		}
		if err := d.shards[s].block.Update(&sub); err != nil {
			return fmt.Errorf("store: updating shard %v: %w", d.shards[s].cell, err)
		}
	}
	return nil
}

// shardIndex locates the shard owning a shard-level cell by binary search
// over the sorted shard slice.
func (d *Dataset) shardIndex(cell cellid.ID) (int, bool) {
	i := sort.Search(len(d.shards), func(i int) bool {
		return d.shards[i].cell >= cell
	})
	if i < len(d.shards) && d.shards[i].cell == cell {
		return i, true
	}
	return 0, false
}

// Invalidate bumps the dataset's result-cache generation, making every
// cached result unservable (verified lazily on read — nothing is
// flushed, and memoized coverings stay warm). The store calls it when a
// dataset is dropped from the registry; Update invalidates internally.
// No-op without a result cache.
func (d *Dataset) Invalidate() {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if d.results != nil {
		d.results.Invalidate()
	}
}

// Generation returns the dataset's result-cache generation (0 without a
// result cache): the counter cached results are verified against.
func (d *Dataset) Generation() uint64 {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if d.results == nil {
		return 0
	}
	return d.results.Generation()
}

// EnableResultCache attaches (or reconfigures) the dataset-level result
// cache with the given byte budget and admission floor; maxBytes 0
// detaches it. Reconfiguring starts from an empty cache. The recorded
// options change with it, so subsequent snapshots carry the
// configuration and Open re-enables the cache on restore.
func (d *Dataset) EnableResultCache(maxBytes int64, minHits int) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	opts := d.opts
	opts.ResultCacheBytes = maxBytes
	opts.ResultCacheMinHits = minHits
	if err := opts.validate(); err != nil {
		return err
	}
	d.opts = opts
	return d.initResultCache()
}

// ResultCacheStats snapshots the result cache's effectiveness counters;
// nil without a result cache.
func (d *Dataset) ResultCacheStats() *resultcache.Stats {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if d.results == nil {
		return nil
	}
	s := d.results.Stats()
	return &s
}

// HotFootprints returns the k most-served result-cache footprints,
// hottest first; nil without a result cache.
func (d *Dataset) HotFootprints(k int) []resultcache.FootprintStat {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if d.results == nil {
		return nil
	}
	return d.results.TopFootprints(k)
}

// ShardStats describes one shard for stats reporting.
type ShardStats struct {
	// Cell is the shard's prefix cell (level-tagged hex token).
	Cell string `json:"cell"`
	// Cells is the number of non-empty grid cells in the shard block.
	Cells int `json:"cells"`
	// Tuples is the number of aggregated tuples.
	Tuples uint64 `json:"tuples"`
	// SizeBytes is the shard block's aggregate storage size.
	SizeBytes int `json:"size_bytes"`
	// CacheBytes is the shard's current cache arena size (all levels).
	CacheBytes int `json:"cache_bytes,omitempty"`
	// PyramidBytes is the aggregate storage of the shard's coarser
	// pyramid levels.
	PyramidBytes int `json:"pyramid_bytes,omitempty"`
	// Resident reports whether a mapped dataset's shard is currently
	// materialised (always false-omitted on eager datasets, whose blocks
	// are unconditionally heap-resident).
	Resident bool `json:"resident,omitempty"`
}

// DatasetStats is the stats snapshot of one dataset.
type DatasetStats struct {
	Name       string   `json:"name"`
	Level      int      `json:"level"`
	ShardLevel int      `json:"shard_level"`
	NumShards  int      `json:"num_shards"`
	Columns    []string `json:"columns"`
	// Bound is the dataset's spatial domain as [minX, minY, maxX, maxY] —
	// load generators and clients use it to synthesize in-domain queries.
	Bound [4]float64 `json:"bound"`
	// ErrorBound is the spatial error bound in domain units (one grid
	// cell diagonal).
	ErrorBound float64 `json:"error_bound"`
	Cells      int     `json:"cells"`
	Tuples     uint64  `json:"tuples"`
	SizeBytes  int     `json:"size_bytes"`
	// PyramidLevels is the number of coarser levels each shard serves
	// below the block level; PyramidBytes is their total aggregate
	// storage across shards (the memory cost of the query-time error
	// knob).
	PyramidLevels int    `json:"pyramid_levels"`
	PyramidBytes  int    `json:"pyramid_bytes"`
	Queries       uint64 `json:"queries"`
	// CacheEnabled reports whether the shards carry query caches; Cache
	// sums the per-shard effectiveness counters.
	CacheEnabled bool                   `json:"cache_enabled"`
	CacheBytes   int                    `json:"cache_bytes"`
	Cache        geoblocks.CacheMetrics `json:"cache"`
	// Generation is the dataset's result-cache generation (0 without a
	// result cache): bumped by every Update/Drop, carried by every cached
	// result, verified on every cache read.
	Generation uint64 `json:"generation"`
	// Mapped reports a dataset served in place from a format-v3 snapshot
	// (OpenMapped): MappedBytes is its full on-disk footprint,
	// ResidentBytes/ResidentShards the part currently materialised and
	// charged against the store's residency budget. All zero-omitted for
	// eager datasets.
	Mapped         bool  `json:"mapped,omitempty"`
	MappedBytes    int64 `json:"mapped_bytes,omitempty"`
	ResidentBytes  int64 `json:"resident_bytes,omitempty"`
	ResidentShards int   `json:"resident_shards,omitempty"`
	// Ingest holds the streaming write path's counters (pending delta
	// rows, acknowledged batches, compactions); nil on mapped datasets,
	// which are read-only. Tuples counts base rows only — pending delta
	// rows are reported here until a fold moves them into the base.
	Ingest *IngestStats `json:"ingest,omitempty"`
	// ResultCache holds the dataset-level result cache's effectiveness
	// counters, nil when no result cache is enabled.
	ResultCache *resultcache.Stats `json:"result_cache,omitempty"`
	// HotFootprints lists the hottest cached query footprints (full Stats
	// only, nil in summaries and without a result cache).
	HotFootprints []resultcache.FootprintStat `json:"hot_footprints,omitempty"`
	// Join holds the join operator's cumulative counters, nil until the
	// first Join/JoinRects/PlanJoin call.
	Join   *JoinCounters `json:"join,omitempty"`
	Shards []ShardStats  `json:"shards,omitempty"`
}

// JoinCounters is the cumulative join activity of one dataset.
type JoinCounters struct {
	// Joins counts join calls; Polygons the total polygons across them.
	Joins    uint64 `json:"joins"`
	Polygons uint64 `json:"polygons"`
	// InteriorPairs / BoundaryPairs total the shared-grid classifications
	// (interior pairs were answered with zero geometry tests).
	InteriorPairs uint64 `json:"interior_pairs"`
	BoundaryPairs uint64 `json:"boundary_pairs"`
	// Fallbacks totals polygons answered by the single-region coverer.
	Fallbacks uint64 `json:"fallbacks"`
	// CacheHits / CacheMisses total per-polygon result-cache outcomes
	// inside joins.
	CacheHits   uint64 `json:"cache_hits"`
	CacheMisses uint64 `json:"cache_misses"`
}

// hotFootprintsTopK is how many footprints a full Stats reports.
const hotFootprintsTopK = 10

// Stats snapshots the dataset: totals plus per-shard breakdown. Cache
// counters are summed across shards (each counter is read atomically; the
// snapshot as a whole may be skewed by in-flight queries, as with a single
// block's CacheMetrics).
func (d *Dataset) Stats() DatasetStats { return d.stats(true) }

// StatsSummary is Stats without the per-shard breakdown, for callers
// (dataset listings, metrics scrapes) that only read the totals.
func (d *Dataset) StatsSummary() DatasetStats { return d.stats(false) }

func (d *Dataset) stats(includeShards bool) DatasetStats {
	d.mu.RLock()
	defer d.mu.RUnlock()
	st := DatasetStats{
		Name:         d.name,
		Level:        d.opts.Level,
		ShardLevel:   d.opts.ShardLevel,
		NumShards:    len(d.shards),
		Columns:      d.schema.Names,
		Queries:      d.queries.Load(),
		CacheEnabled: d.opts.CacheThreshold > 0,
	}
	b := d.dom.Bound()
	st.Bound = [4]float64{b.Min.X, b.Min.Y, b.Max.X, b.Max.Y}
	if d.results != nil {
		st.Generation = d.results.Generation()
		rcs := d.results.Stats()
		st.ResultCache = &rcs
		if includeShards {
			st.HotFootprints = d.results.TopFootprints(hotFootprintsTopK)
		}
	}
	if n := d.joins.Load(); n > 0 {
		st.Join = &JoinCounters{
			Joins:         n,
			Polygons:      d.joinPolygons.Load(),
			InteriorPairs: d.joinInterior.Load(),
			BoundaryPairs: d.joinBoundary.Load(),
			Fallbacks:     d.joinFallbacks.Load(),
			CacheHits:     d.joinCacheHits.Load(),
			CacheMisses:   d.joinCacheMisses.Load(),
		}
	}
	st.PyramidLevels = len(d.pyramidLevelList())
	st.ErrorBound = d.dom.CellDiagonal(d.opts.Level)
	st.Mapped = d.residency != nil
	if d.residency == nil {
		is := d.ingestStatsLocked()
		st.Ingest = &is
	}
	for i := range d.shards {
		sh := &d.shards[i]
		if sh.lazy != nil {
			// Structural counts come from the eagerly-validated v3
			// metadata — stats must not fault cold shards in. Cache and
			// pyramid figures exist only while the shard is resident.
			ls := sh.lazy
			ss := ShardStats{
				Cell:      sh.cell.String(),
				Cells:     int(ls.src.Info.NumCells),
				Tuples:    ls.src.Info.Rows,
				SizeBytes: int(ls.src.Bytes),
			}
			st.Cells += ss.Cells
			st.Tuples += ss.Tuples
			st.SizeBytes += ss.SizeBytes
			st.MappedBytes += ls.src.Bytes
			if blk, release, ok := ls.peek(); ok {
				_, cost := ls.residentCost()
				m := blk.CacheMetrics()
				ss.Resident = true
				ss.CacheBytes = blk.CacheSizeBytes()
				ss.PyramidBytes = blk.PyramidBytes()
				st.ResidentShards++
				st.ResidentBytes += cost
				st.PyramidBytes += ss.PyramidBytes
				st.CacheBytes += ss.CacheBytes
				st.Cache.Probes += m.Probes
				st.Cache.FullHits += m.FullHits
				st.Cache.PartialHits += m.PartialHits
				st.Cache.Misses += m.Misses
				st.Cache.DerivedHits += m.DerivedHits
				release()
			}
			if includeShards {
				st.Shards = append(st.Shards, ss)
			}
			continue
		}
		blk := sh.block
		m := blk.CacheMetrics()
		st.Cells += blk.NumCells()
		st.Tuples += blk.NumTuples()
		st.SizeBytes += blk.SizeBytes()
		st.PyramidBytes += blk.PyramidBytes()
		st.CacheBytes += blk.CacheSizeBytes()
		st.Cache.Probes += m.Probes
		st.Cache.FullHits += m.FullHits
		st.Cache.PartialHits += m.PartialHits
		st.Cache.Misses += m.Misses
		st.Cache.DerivedHits += m.DerivedHits
		if includeShards {
			st.Shards = append(st.Shards, ShardStats{
				Cell:         sh.cell.String(),
				Cells:        blk.NumCells(),
				Tuples:       blk.NumTuples(),
				SizeBytes:    blk.SizeBytes(),
				CacheBytes:   blk.CacheSizeBytes(),
				PyramidBytes: blk.PyramidBytes(),
			})
		}
	}
	return st
}
