package store

import (
	"math/rand"
	"testing"

	"geoblocks"
	"geoblocks/internal/geom"
)

// benchJoinSetup builds a pr10-shaped workload with every polygon
// distinct: a sharded pyramid dataset and 500 small tract polygons,
// planned below full resolution. All-distinct inputs keep the dedup
// fast path out of the loop, so the benchmark isolates the shared-grid
// pass and the multi-accumulator kernel themselves.
func benchJoinSetup(b *testing.B) (*Dataset, []*geom.Polygon, geoblocks.QueryOptions, []geoblocks.AggRequest) {
	b.Helper()
	d := buildDataset(b, "taxi", 60_000, 1, Options{Level: 14, ShardLevel: 2, PyramidLevels: 5})
	rng := rand.New(rand.NewSource(11))
	bound := d.Bound()
	polys := make([]*geom.Polygon, 500)
	for i := range polys {
		r := (0.0092 + rng.Float64()*0.0123) * bound.Width()
		c := geom.Pt(
			bound.Min.X+r+rng.Float64()*(bound.Width()-2*r),
			bound.Min.Y+r+rng.Float64()*(bound.Height()-2*r),
		)
		polys[i] = geoblocks.RegularPolygon(c, r, 4+rng.Intn(5))
	}
	opts := geoblocks.QueryOptions{MaxError: bound.Width() * 0.0032, DisableCache: true}
	reqs := []geoblocks.AggRequest{
		geoblocks.Count(), geoblocks.Sum("ival"), geoblocks.Min("fval"), geoblocks.Max("fval"),
	}
	return d, polys, opts, reqs
}

func BenchmarkJoin500(b *testing.B) {
	d, polys, opts, reqs := benchJoinSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := d.Join(polys, opts, reqs...); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSequential500(b *testing.B) {
	d, polys, opts, reqs := benchJoinSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, p := range polys {
			if _, err := d.QueryOpts(p, opts, reqs...); err != nil {
				b.Fatal(err)
			}
		}
	}
}
