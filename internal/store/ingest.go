package store

// Streaming ingestion (ROADMAP item 2): each eager shard carries a small
// mutable delta alongside its immutable base block. Ingest validates a
// whole batch up front, makes it durable in the dataset's write-ahead log
// (when one is attached), appends the rows to the owning shards' deltas
// and only then acknowledges — so an acknowledged batch survives a crash
// by WAL replay, and a crash mid-ingest loses only unacknowledged rows.
// Queries merge base and delta partials per shard in a fixed
// base-then-delta order (see shardPartial), keeping COUNT/MIN/MAX
// bit-identical to a from-scratch rebuild and SUM within the documented
// reassociation bound. A background fold (compact.go) moves delta rows
// into the base off the query path.

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"

	"geoblocks/internal/cellid"
	"geoblocks/internal/core"
	"geoblocks/internal/geom"
	"geoblocks/internal/snapshot"
)

// ErrBackpressure reports an ingest batch rejected because the dataset's
// pending delta rows would exceed its configured cap. The batch was not
// applied (and not logged); retry after the compactor catches up.
var ErrBackpressure = errors.New("store: ingest backpressure, delta cap reached")

// ErrBadValue reports an ingest batch with a malformed payload — ragged
// columns, a wrong column count, or a non-finite aggregate value. Nothing
// was applied.
var ErrBadValue = errors.New("store: bad ingest value")

// ErrOutOfBounds reports an ingest row whose point lies outside the
// dataset bound. Ingest is all-or-nothing, so one stray row rejects the
// whole batch rather than silently dropping it — an acknowledged batch is
// exactly the rows the caller sent.
var ErrOutOfBounds = errors.New("store: ingest point outside dataset bound")

// delta is one shard's mutable row tail: leaf cell ids and column values
// in acknowledgement order. Appends happen under the dataset's ingestMu
// (serialised), so the rows form a clean per-batch prefix order; readers
// snapshot the slice headers under the delta lock and scan without it —
// elements below a snapshot's length are never mutated (drop replaces the
// slices wholesale instead of shifting in place).
type delta struct {
	mu     sync.RWMutex
	leaves []cellid.ID
	cols   [][]float64
}

func newDelta(numCols int) *delta {
	return &delta{cols: make([][]float64, numCols)}
}

// view snapshots the delta for one query's scan. The inner column
// headers are copied while the lock is held: add rewrites them in the
// shared outer array on every append, so handing the outer slice itself
// to an unlocked scan would race. The element arrays stay shared — rows
// below the snapshot's length are never mutated.
func (dl *delta) view() ([]cellid.ID, [][]float64) {
	dl.mu.RLock()
	defer dl.mu.RUnlock()
	n := len(dl.leaves)
	if n == 0 {
		return nil, nil
	}
	cols := make([][]float64, len(dl.cols))
	for c := range cols {
		cols[c] = dl.cols[c][:n]
	}
	return dl.leaves[:n], cols
}

// viewPrefix snapshots the first n rows — the fold cut.
func (dl *delta) viewPrefix(n int) ([]cellid.ID, [][]float64) {
	dl.mu.RLock()
	defer dl.mu.RUnlock()
	cols := make([][]float64, len(dl.cols))
	for c := range cols {
		cols[c] = dl.cols[c][:n]
	}
	return dl.leaves[:n], cols
}

// add appends rows.
func (dl *delta) add(leaves []cellid.ID, cols [][]float64, idxs []int) {
	dl.mu.Lock()
	defer dl.mu.Unlock()
	for _, i := range idxs {
		dl.leaves = append(dl.leaves, leaves[i])
		for c := range dl.cols {
			dl.cols[c] = append(dl.cols[c], cols[c][i])
		}
	}
}

// size returns the current row count.
func (dl *delta) size() int {
	dl.mu.RLock()
	defer dl.mu.RUnlock()
	return len(dl.leaves)
}

// drop removes the first n rows after a fold. The remainder is copied
// into fresh slices: concurrent readers still hold the old backing
// arrays, whose populated elements must stay immutable.
func (dl *delta) drop(n int) {
	dl.mu.Lock()
	defer dl.mu.Unlock()
	dl.leaves = append([]cellid.ID(nil), dl.leaves[n:]...)
	for c := range dl.cols {
		dl.cols[c] = append([]float64(nil), dl.cols[c][n:]...)
	}
}

// ingestRows is one validated, partitioned batch: per-row leaves plus the
// row indices owned by each shard.
type ingestRows struct {
	leaves  []cellid.ID
	cols    [][]float64
	byShard map[int][]int
}

// partitionIngest validates a batch and partitions its rows by owning
// shard. All validation happens here, before anything is logged or
// applied, so a rejected batch leaves no trace.
func (d *Dataset) partitionIngest(pts []geom.Point, cols [][]float64) (ingestRows, error) {
	var r ingestRows
	if len(cols) != d.schema.NumCols() {
		return r, fmt.Errorf("%w: got %d columns, schema has %d", ErrBadValue, len(cols), d.schema.NumCols())
	}
	for c := range cols {
		if len(cols[c]) != len(pts) {
			return r, fmt.Errorf("%w: column %d has %d rows, want %d", ErrBadValue, c, len(cols[c]), len(pts))
		}
		for i, v := range cols[c] {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return r, fmt.Errorf("%w: column %d row %d is %v", ErrBadValue, c, i, v)
			}
		}
	}
	bound := d.dom.Bound()
	r.leaves = make([]cellid.ID, len(pts))
	r.cols = cols
	r.byShard = make(map[int][]int)
	for i, p := range pts {
		if !bound.ContainsPoint(p) {
			return r, fmt.Errorf("%w: row %d at (%v, %v)", ErrOutOfBounds, i, p.X, p.Y)
		}
		r.leaves[i] = d.dom.FromPoint(p)
		cell := d.dom.CellAt(p, d.opts.ShardLevel)
		s, ok := d.shardIndex(cell)
		if !ok {
			// A delta row in a shard that does not exist would be invisible
			// to routing; same remedy as Update — rebuild with coverage.
			return r, fmt.Errorf("store: ingest row %d lands in unbuilt shard %v: %w", i, cell, core.ErrRebuildRequired)
		}
		r.byShard[s] = append(r.byShard[s], i)
	}
	return r, nil
}

// applyIngest appends a partitioned batch to the owning shards' deltas.
// Caller holds ingestMu (and the read lock on live paths), so per-shard
// rows land in acknowledgement order.
func (d *Dataset) applyIngest(r ingestRows) {
	order := make([]int, 0, len(r.byShard))
	for s := range r.byShard {
		order = append(order, s)
	}
	sort.Ints(order)
	for _, s := range order {
		d.shards[s].delta.add(r.leaves, r.cols, r.byShard[s])
	}
	d.deltaRows.Add(int64(len(r.leaves)))
}

// Ingest appends a batch of rows to the dataset's shard deltas and
// returns the batch's sequence number. The batch is validated as a whole
// before anything is applied — a typed error (ErrBadValue,
// ErrOutOfBounds, ErrBackpressure, core.ErrRebuildRequired,
// core.ErrReadOnly) means nothing was applied and nothing was logged.
// When a WAL is attached (EnableWAL), the batch is fsynced to it before
// this method returns: the acknowledgement implies durability.
//
// Rows become visible to queries atomically per shard: any query started
// after Ingest returns observes the whole batch; a query running
// concurrently with the ingest may observe a per-shard prefix of it
// (read-committed, never a torn row).
func (d *Dataset) Ingest(pts []geom.Point, cols [][]float64) (uint64, error) {
	if len(pts) == 0 {
		return d.ingestSeq.Load(), nil
	}
	if d.residency != nil {
		return 0, fmt.Errorf("store: dataset %q serves a mapped snapshot read-only; restore it eagerly to ingest: %w",
			d.name, core.ErrReadOnly)
	}
	rows, err := d.partitionIngest(pts, cols)
	if err != nil {
		return 0, err
	}

	d.mu.RLock()
	defer d.mu.RUnlock()

	// Backpressure before the log write: when the pending delta exceeds
	// the cap, shedding the batch is cheaper than growing an unmergeable
	// tail. The soft half-cap kicks the compactor without rejecting.
	if cap := d.deltaMaxRows.Load(); cap > 0 {
		pending := d.deltaRows.Load()
		if pending+int64(len(pts)) > cap {
			d.backpressured.Add(1)
			d.kickCompactor()
			return 0, fmt.Errorf("%w: %d pending + %d new > cap %d", ErrBackpressure, pending, len(pts), cap)
		}
		if pending+int64(len(pts)) > cap/2 {
			d.kickCompactor()
		}
	}

	d.ingestMu.Lock()
	seq := d.ingestSeq.Load() + 1
	if d.wal != nil {
		if err := d.wal.Append(seq, pts, cols); err != nil {
			d.ingestMu.Unlock()
			return 0, fmt.Errorf("store: ingest wal append: %w", err)
		}
	}
	d.applyIngest(rows)
	d.ingestSeq.Store(seq)
	d.ingestMu.Unlock()

	d.ingestBatches.Add(1)
	d.ingestRowsTotal.Add(uint64(len(pts)))
	// Bump the result-cache generation once per acknowledged batch, after
	// the rows are visible and before the caller is told — a query that
	// observes the new generation is guaranteed to observe the rows.
	if d.results != nil {
		d.results.InvalidateAppend()
	}
	return seq, nil
}

// kickCompactor nudges the attached background compactor, if any.
// Non-blocking; safe without one.
func (d *Dataset) kickCompactor() {
	if k := d.compactKick.Load(); k != nil {
		(*k)()
	}
}

// EnableWAL attaches a write-ahead log at <dataDir>/<name>.wal and
// replays every logged batch newer than the restored snapshot's
// IngestSeq into the shard deltas. Call it once, after Open/Build and
// before serving; subsequent Ingest calls are durable. Mapped datasets
// are read-only and reject the attach.
func (d *Dataset) EnableWAL(dataDir string) error {
	if d.residency != nil {
		return fmt.Errorf("store: dataset %q is mapped read-only, no wal: %w", d.name, core.ErrReadOnly)
	}
	w, batches, err := snapshot.OpenWAL(snapshot.WALPath(dataDir, d.name), d.schema.NumCols())
	if err != nil {
		return err
	}
	folded := d.foldedSeq.Load()
	last := folded
	for _, b := range batches {
		if b.Seq <= folded {
			// Already durable in the snapshotted base; replay would
			// double-count it.
			continue
		}
		rows, err := d.partitionIngest(b.Points, b.Cols)
		if err != nil {
			w.Close()
			return fmt.Errorf("store: wal replay batch %d: %w", b.Seq, err)
		}
		d.ingestMu.Lock()
		d.applyIngest(rows)
		d.ingestMu.Unlock()
		d.replayedRows.Add(uint64(len(b.Points)))
		last = b.Seq
	}
	d.ingestSeq.Store(last)
	d.mu.Lock()
	d.wal = w
	d.mu.Unlock()
	if d.results != nil && last > folded {
		d.results.InvalidateAppend()
	}
	return nil
}

// CloseWAL detaches and closes the dataset's write-ahead log; later
// ingests are volatile again. No-op without one.
func (d *Dataset) CloseWAL() error {
	d.mu.Lock()
	w := d.wal
	d.wal = nil
	d.mu.Unlock()
	if w == nil {
		return nil
	}
	return w.Close()
}

// DeltaRows returns the dataset's pending (unfolded) delta row count.
func (d *Dataset) DeltaRows() int64 { return d.deltaRows.Load() }

// SetDeltaMaxRows sets the backpressure cap on pending delta rows
// (0 disables the cap). Half the cap is the soft threshold that kicks
// the background compactor.
func (d *Dataset) SetDeltaMaxRows(n int64) {
	if n < 0 {
		n = 0
	}
	d.deltaMaxRows.Store(n)
}

// IngestSeq returns the highest acknowledged ingest batch sequence.
func (d *Dataset) IngestSeq() uint64 { return d.ingestSeq.Load() }

// IngestStats is the stats block of the streaming write path.
type IngestStats struct {
	// DeltaRows is the current pending (unfolded) row count across all
	// shard deltas; DeltaMaxRows the backpressure cap (0 = uncapped).
	DeltaRows    int64 `json:"delta_rows"`
	DeltaMaxRows int64 `json:"delta_max_rows,omitempty"`
	// Batches / Rows count acknowledged ingests since process start;
	// ReplayedRows counts rows recovered from the WAL at startup.
	Batches      uint64 `json:"batches"`
	Rows         uint64 `json:"rows"`
	ReplayedRows uint64 `json:"replayed_rows,omitempty"`
	// Backpressured counts batches rejected by the delta cap.
	Backpressured uint64 `json:"backpressured,omitempty"`
	// IngestSeq is the highest acknowledged batch sequence; FoldedSeq the
	// highest sequence folded into the base blocks (snapshot recovery
	// point).
	IngestSeq uint64 `json:"ingest_seq"`
	FoldedSeq uint64 `json:"folded_seq"`
	// Compactions counts completed folds; CompactedRows the delta rows
	// they moved into base blocks; LastCompactMicros the duration of the
	// most recent fold.
	Compactions       uint64 `json:"compactions"`
	CompactedRows     uint64 `json:"compacted_rows"`
	LastCompactMicros int64  `json:"last_compact_micros,omitempty"`
	// WALBytes is the current size of the attached write-ahead log, 0
	// without one.
	WALBytes int64 `json:"wal_bytes,omitempty"`
}

// ingestStats snapshots the write-path counters. Caller holds d.mu.
func (d *Dataset) ingestStatsLocked() IngestStats {
	st := IngestStats{
		DeltaRows:         d.deltaRows.Load(),
		DeltaMaxRows:      d.deltaMaxRows.Load(),
		Batches:           d.ingestBatches.Load(),
		Rows:              d.ingestRowsTotal.Load(),
		ReplayedRows:      d.replayedRows.Load(),
		Backpressured:     d.backpressured.Load(),
		IngestSeq:         d.ingestSeq.Load(),
		FoldedSeq:         d.foldedSeq.Load(),
		Compactions:       d.compactions.Load(),
		CompactedRows:     d.compactedRows.Load(),
		LastCompactMicros: d.lastCompactMicros.Load(),
	}
	if d.wal != nil {
		st.WALBytes = d.wal.SizeBytes()
	}
	return st
}

// IngestStatsNow snapshots the write-path counters.
func (d *Dataset) IngestStatsNow() IngestStats {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.ingestStatsLocked()
}
