package store

// The streaming-ingest test battery (ROADMAP item 2): a randomized
// equivalence property suite interleaving ingest batches, queries at
// every pyramid level (cached and uncached, sharded and unsharded,
// single and batch) and compactions against a reference dataset rebuilt
// from scratch; WAL crash-recovery tests (mid-stream snapshot, torn
// tails, replay idempotence); and read-only pins for mapped datasets.
// The integer-valued aggregate column makes every SUM exactly
// representable, so the equivalence assertions are bit-identity — the
// strongest form of the base+delta merge contract.

import (
	"errors"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"geoblocks"
	"geoblocks/internal/core"
	"geoblocks/internal/geom"
	"geoblocks/internal/snapshot"
)

// genIngestRows draws n in-bounds points with an integer-valued first
// column (exact sums) and a continuous second column, from the caller's
// rng so interleavings stay reproducible per seed.
func genIngestRows(rng *rand.Rand, n int) ([]geom.Point, [][]float64) {
	pts := make([]geom.Point, n)
	ints := make([]float64, n)
	floats := make([]float64, n)
	for i := range pts {
		pts[i] = geom.Pt(rng.Float64()*100, rng.Float64()*100)
		ints[i] = math.Floor(rng.Float64() * 1000)
		floats[i] = rng.NormFloat64() * 17
	}
	return pts, [][]float64{ints, floats}
}

func appendRows(dstP []geom.Point, dstC [][]float64, pts []geom.Point, cols [][]float64) ([]geom.Point, [][]float64) {
	dstP = append(dstP, pts...)
	for c := range dstC {
		dstC[c] = append(dstC[c], cols[c]...)
	}
	return dstP, dstC
}

// TestIngestEquivalenceRandomized interleaves random ingest batches,
// compactions and queries, checking every answer bit-identically against
// a dataset rebuilt from scratch over the same rows. Query shapes rotate
// through polygon/rect/batch, exact and planned (max_error > 0, hitting
// the pyramid levels), repeated footprints (result-cache hits) and
// cache-bypassing options; configurations cover unsharded, sharded,
// per-shard-cached and result-cached datasets.
func TestIngestEquivalenceRandomized(t *testing.T) {
	configs := []struct {
		name string
		opts Options
	}{
		{"unsharded", Options{Level: 11, PyramidLevels: 3}},
		{"sharded-cached", Options{Level: 12, ShardLevel: 2, PyramidLevels: 2, CacheThreshold: 0.10, CacheAutoRefresh: 50}},
		{"sharded-resultcache", Options{Level: 11, ShardLevel: 1, PyramidLevels: 3, ResultCacheBytes: 1 << 20}},
	}
	for ci, cfg := range configs {
		t.Run(cfg.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(900 + ci)))
			refPts, refCols := testRows(8000, int64(40+ci))
			live, err := Build("live", testBound, geoblocks.NewSchema("ival", "fval"), refPts, refCols, cfg.opts)
			if err != nil {
				t.Fatal(err)
			}
			// The reference rebuilds from scratch with the caches off: the
			// live dataset's cached answers must match uncached recomputation
			// bit for bit.
			refOpts := cfg.opts
			refOpts.CacheThreshold = 0
			refOpts.CacheAutoRefresh = 0
			refOpts.ResultCacheBytes = 0
			var ref *Dataset
			refDirty := true
			refresh := func() {
				if !refDirty {
					return
				}
				ref, err = Build("ref", testBound, geoblocks.NewSchema("ival", "fval"), refPts, refCols, refOpts)
				if err != nil {
					t.Fatal(err)
				}
				refDirty = false
			}
			maxErrs := []float64{0, 0.05, 0.4, 3}
			var hotRect *geom.Rect
			for op := 0; op < 90; op++ {
				switch rng.Intn(7) {
				case 0, 1: // ingest a batch
					pts, cols := genIngestRows(rng, 1+rng.Intn(400))
					if _, err := live.Ingest(pts, cols); err != nil {
						t.Fatalf("op %d: ingest: %v", op, err)
					}
					refPts, refCols = appendRows(refPts, refCols, pts, cols)
					refDirty = true
				case 2: // fold
					if _, err := live.Compact(); err != nil {
						t.Fatalf("op %d: compact: %v", op, err)
					}
				case 3: // polygon query, planned level
					refresh()
					c := geom.Pt(rng.Float64()*100, rng.Float64()*100)
					poly := geoblocks.RegularPolygon(c, 1+rng.Float64()*25, 3+rng.Intn(7))
					opts := geoblocks.QueryOptions{MaxError: maxErrs[rng.Intn(len(maxErrs))]}
					got, err := live.QueryOpts(poly, opts, testReqs...)
					if err != nil {
						t.Fatalf("op %d: query: %v", op, err)
					}
					want, err := ref.QueryOpts(poly, opts, testReqs...)
					if err != nil {
						t.Fatalf("op %d: ref query: %v", op, err)
					}
					assertEquivalent(t, got, want, "poly")
					if got.Level != want.Level || got.ErrorBound != want.ErrorBound {
						t.Fatalf("op %d: plan (level %d, bound %v), ref (level %d, bound %v)",
							op, got.Level, got.ErrorBound, want.Level, want.ErrorBound)
					}
				case 4: // rect query; 50% repeat the previous footprint (cache hit path)
					refresh()
					if hotRect == nil || rng.Intn(2) == 0 {
						r := geom.RectFromCenter(geom.Pt(rng.Float64()*100, rng.Float64()*100),
							1+rng.Float64()*30, 1+rng.Float64()*30)
						hotRect = &r
					}
					opts := geoblocks.QueryOptions{MaxError: maxErrs[rng.Intn(len(maxErrs))]}
					if rng.Intn(4) == 0 {
						opts.DisableCache = true
					}
					got, err := live.QueryRectOpts(*hotRect, opts, testReqs...)
					if err != nil {
						t.Fatalf("op %d: rect: %v", op, err)
					}
					want, err := ref.QueryRectOpts(*hotRect, opts, testReqs...)
					if err != nil {
						t.Fatalf("op %d: ref rect: %v", op, err)
					}
					assertEquivalent(t, got, want, "rect")
				case 5: // batch query
					refresh()
					polys := make([]*geom.Polygon, 4)
					for i := range polys {
						polys[i] = geoblocks.RegularPolygon(
							geom.Pt(rng.Float64()*100, rng.Float64()*100), 1+rng.Float64()*20, 4)
					}
					opts := geoblocks.QueryOptions{MaxError: maxErrs[rng.Intn(len(maxErrs))]}
					got, err := live.QueryBatchOpts(polys, opts, testReqs...)
					if err != nil {
						t.Fatalf("op %d: batch: %v", op, err)
					}
					want, err := ref.QueryBatchOpts(polys, opts, testReqs...)
					if err != nil {
						t.Fatalf("op %d: ref batch: %v", op, err)
					}
					for i := range got {
						assertEquivalent(t, got[i], want[i], "batch")
					}
				case 6: // full-domain rect: exact row accounting at any level
					refresh()
					got, err := live.QueryRect(testBound, geoblocks.Count())
					if err != nil {
						t.Fatalf("op %d: full rect: %v", op, err)
					}
					want, err := ref.QueryRect(testBound, geoblocks.Count())
					if err != nil {
						t.Fatalf("op %d: ref full rect: %v", op, err)
					}
					if got.Count != want.Count {
						t.Fatalf("op %d: full-domain count %d, want %d", op, got.Count, want.Count)
					}
				}
			}
			// Final fold must change no answer: base+delta and all-base are
			// the same dataset.
			refresh()
			if _, err := live.Compact(); err != nil {
				t.Fatal(err)
			}
			if live.DeltaRows() != 0 {
				t.Fatalf("delta rows after final compact: %d", live.DeltaRows())
			}
			got, err := live.QueryRect(testBound, testReqs...)
			if err != nil {
				t.Fatal(err)
			}
			want, err := ref.QueryRect(testBound, testReqs...)
			if err != nil {
				t.Fatal(err)
			}
			assertEquivalent(t, got, want, "post-compact")
		})
	}
}

// TestIngestValidation pins the typed rejections: wrong shape, ragged
// columns, non-finite values, out-of-bounds points, backpressure — each
// all-or-nothing (the failing batch applies no row).
func TestIngestValidation(t *testing.T) {
	d := buildDataset(t, "val", 2000, 5, Options{Level: 10, ShardLevel: 1})
	before, err := d.QueryRect(testBound, geoblocks.Count())
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		pts  []geom.Point
		cols [][]float64
		want error
	}{
		{"wrong column count", []geom.Point{geom.Pt(1, 1)}, [][]float64{{1}}, ErrBadValue},
		{"ragged columns", []geom.Point{geom.Pt(1, 1), geom.Pt(2, 2)}, [][]float64{{1, 2}, {3}}, ErrBadValue},
		{"nan value", []geom.Point{geom.Pt(1, 1)}, [][]float64{{math.NaN()}, {1}}, ErrBadValue},
		{"inf value", []geom.Point{geom.Pt(1, 1)}, [][]float64{{1}, {math.Inf(1)}}, ErrBadValue},
		{"out of bounds", []geom.Point{geom.Pt(1, 1), geom.Pt(500, 500)}, [][]float64{{1, 2}, {3, 4}}, ErrOutOfBounds},
	}
	for _, tc := range cases {
		if _, err := d.Ingest(tc.pts, tc.cols); !errors.Is(err, tc.want) {
			t.Errorf("%s: err = %v, want %v", tc.name, err, tc.want)
		}
	}
	// Backpressure: a cap below the batch size rejects, applies nothing,
	// and counts the rejection.
	d.SetDeltaMaxRows(10)
	pts, cols := genIngestRows(rand.New(rand.NewSource(1)), 50)
	if _, err := d.Ingest(pts, cols); !errors.Is(err, ErrBackpressure) {
		t.Errorf("backpressure: err = %v, want ErrBackpressure", err)
	}
	after, err := d.QueryRect(testBound, geoblocks.Count())
	if err != nil {
		t.Fatal(err)
	}
	if after.Count != before.Count {
		t.Fatalf("rejected batches applied rows: count %d -> %d", before.Count, after.Count)
	}
	if st := d.IngestStatsNow(); st.Backpressured != 1 || st.Batches != 0 {
		t.Fatalf("ingest stats after rejections: %+v", st)
	}
	// Under the cap the same batch applies.
	d.SetDeltaMaxRows(1000)
	if _, err := d.Ingest(pts, cols); err != nil {
		t.Fatalf("ingest under cap: %v", err)
	}
}

// TestIngestWALRecovery is the crash-recovery property: acknowledged
// batches survive a crash (re-open from snapshot + WAL replay) with no
// row lost and none double-counted, including across a mid-stream
// snapshot (which folds and truncates) and with a torn garbage tail.
func TestIngestWALRecovery(t *testing.T) {
	dataDir := t.TempDir()
	schema := geoblocks.NewSchema("ival", "fval")
	refPts, refCols := testRows(5000, 3)
	opts := Options{Level: 11, ShardLevel: 1, PyramidLevels: 2}
	d, err := Build("walrec", testBound, schema, refPts, refCols, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.EnableWAL(dataDir); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(77))
	ingest := func(n int) {
		t.Helper()
		pts, cols := genIngestRows(rng, n)
		if _, err := d.Ingest(pts, cols); err != nil {
			t.Fatal(err)
		}
		refPts, refCols = appendRows(refPts, refCols, pts, cols)
	}
	for i := 0; i < 5; i++ {
		ingest(200)
	}
	// Snapshot mid-stream: folds the 5 batches into the base, records
	// IngestSeq=5 and truncates the log.
	snapDir := filepath.Join(dataDir, "walrec")
	m, err := d.Snapshot(snapDir)
	if err != nil {
		t.Fatal(err)
	}
	if m.IngestSeq != 5 {
		t.Fatalf("manifest IngestSeq = %d, want 5", m.IngestSeq)
	}
	for i := 0; i < 3; i++ {
		ingest(150)
	}

	// Crash: no shutdown, no truncate — just re-open from disk.
	reopen := func() *Dataset {
		t.Helper()
		d2, err := Open(snapDir, "")
		if err != nil {
			t.Fatal(err)
		}
		if err := d2.EnableWAL(dataDir); err != nil {
			t.Fatal(err)
		}
		return d2
	}
	ref, err := Build("ref", testBound, schema, refPts, refCols, opts)
	if err != nil {
		t.Fatal(err)
	}
	check := func(d2 *Dataset, label string) {
		t.Helper()
		if got := d2.IngestSeq(); got != 8 {
			t.Fatalf("%s: ingest seq = %d, want 8", label, got)
		}
		got, err := d2.QueryRect(testBound, testReqs...)
		if err != nil {
			t.Fatal(err)
		}
		want, err := ref.QueryRect(testBound, testReqs...)
		if err != nil {
			t.Fatal(err)
		}
		assertEquivalent(t, got, want, label)
		crng := rand.New(rand.NewSource(5))
		for q := 0; q < 10; q++ {
			r := geom.RectFromCenter(geom.Pt(crng.Float64()*100, crng.Float64()*100),
				1+crng.Float64()*30, 1+crng.Float64()*30)
			g, err := d2.QueryRect(r, testReqs...)
			if err != nil {
				t.Fatal(err)
			}
			w, err := ref.QueryRect(r, testReqs...)
			if err != nil {
				t.Fatal(err)
			}
			assertEquivalent(t, g, w, label)
		}
	}
	d2 := reopen()
	check(d2, "recovered")
	if st := d2.IngestStatsNow(); st.ReplayedRows != 3*150 {
		t.Fatalf("replayed %d rows, want %d (batches above the snapshot's IngestSeq)", st.ReplayedRows, 3*150)
	}
	if err := d2.CloseWAL(); err != nil {
		t.Fatal(err)
	}

	// Torn tail: garbage appended to the log (a crash mid-append) must be
	// truncated away without touching the acknowledged batches.
	walPath := snapshot.WALPath(dataDir, "walrec")
	f, err := os.OpenFile(walPath, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("torn-frame-garbage")); err != nil {
		t.Fatal(err)
	}
	f.Close()
	d3 := reopen()
	check(d3, "torn tail")
	if err := d3.CloseWAL(); err != nil {
		t.Fatal(err)
	}

	// Replay idempotence: recover, snapshot (folding the replayed rows,
	// IngestSeq -> 8, log truncated), recover again — the rows must not
	// apply a second time.
	d4 := reopen()
	if _, err := d4.Snapshot(snapDir); err != nil {
		t.Fatal(err)
	}
	if err := d4.CloseWAL(); err != nil {
		t.Fatal(err)
	}
	d5 := reopen()
	check(d5, "post-snapshot recovery")
	if st := d5.IngestStatsNow(); st.ReplayedRows != 0 {
		t.Fatalf("replayed %d rows after snapshot, want 0 (double count)", st.ReplayedRows)
	}
}

// TestIngestSnapshotRecoveryPoint pins that a snapshot taken while rows
// are pending folds them first: the snapshot alone (no WAL) already
// serves every acknowledged row.
func TestIngestSnapshotRecoveryPoint(t *testing.T) {
	d := buildDataset(t, "snaprec", 3000, 9, Options{Level: 10, ShardLevel: 1})
	pts, cols := genIngestRows(rand.New(rand.NewSource(2)), 500)
	if _, err := d.Ingest(pts, cols); err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "snap")
	if _, err := d.Snapshot(dir); err != nil {
		t.Fatal(err)
	}
	if d.DeltaRows() != 0 {
		t.Fatalf("snapshot left %d delta rows unfolded", d.DeltaRows())
	}
	d2, err := Open(dir, "")
	if err != nil {
		t.Fatal(err)
	}
	want, err := d.QueryRect(testBound, testReqs...)
	if err != nil {
		t.Fatal(err)
	}
	got, err := d2.QueryRect(testBound, testReqs...)
	if err != nil {
		t.Fatal(err)
	}
	assertEquivalent(t, got, want, "restored snapshot")
}

// TestMappedWritePathReadOnly pins the read-only contract of mapped
// datasets across the whole write path: Update, Ingest, Compact and
// EnableWAL all refuse with core.ErrReadOnly (HTTP maps it to 409).
func TestMappedWritePathReadOnly(t *testing.T) {
	d := buildDataset(t, "ro", 2000, 4, Options{Level: 10})
	dir := filepath.Join(t.TempDir(), "ro")
	if _, err := d.SnapshotV3(dir); err != nil {
		t.Fatal(err)
	}
	md, err := OpenMapped(dir, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	if !md.Mapped() {
		t.Fatal("expected a mapped dataset")
	}
	if err := md.Update(&geoblocks.UpdateBatch{
		Points: []geom.Point{geom.Pt(1, 1)}, Cols: [][]float64{{1}, {2}},
	}); !errors.Is(err, core.ErrReadOnly) {
		t.Errorf("Update on mapped: err = %v, want ErrReadOnly", err)
	}
	if _, err := md.Ingest([]geom.Point{geom.Pt(1, 1)}, [][]float64{{1}, {2}}); !errors.Is(err, core.ErrReadOnly) {
		t.Errorf("Ingest on mapped: err = %v, want ErrReadOnly", err)
	}
	if _, err := md.Compact(); !errors.Is(err, core.ErrReadOnly) {
		t.Errorf("Compact on mapped: err = %v, want ErrReadOnly", err)
	}
	if err := md.EnableWAL(t.TempDir()); !errors.Is(err, core.ErrReadOnly) {
		t.Errorf("EnableWAL on mapped: err = %v, want ErrReadOnly", err)
	}
}

// TestStoreIngestLifecycle covers the registry wiring: EnableIngest
// attaches cap+WAL+compactor at Add, a fresh build of a dropped name
// does not replay the stale WAL, and a restored snapshot does.
func TestStoreIngestLifecycle(t *testing.T) {
	dataDir := t.TempDir()
	st := New()
	st.EnableIngest(IngestConfig{WALDir: dataDir, DeltaMaxRows: 100_000})
	d := buildDataset(t, "life", 2000, 6, Options{Level: 10, ShardLevel: 1})
	if err := st.Add(d); err != nil {
		t.Fatal(err)
	}
	pts, cols := genIngestRows(rand.New(rand.NewSource(8)), 300)
	if _, err := d.Ingest(pts, cols); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(snapshot.WALPath(dataDir, "life")); err != nil {
		t.Fatalf("no wal written: %v", err)
	}
	base, err := d.QueryRect(testBound, geoblocks.Count())
	if err != nil {
		t.Fatal(err)
	}

	// Drop keeps the WAL on disk; a FRESH build under the same name must
	// not inherit it.
	if !st.Drop("life") {
		t.Fatal("drop failed")
	}
	d2 := buildDataset(t, "life", 2000, 6, Options{Level: 10, ShardLevel: 1})
	if err := st.Add(d2); err != nil {
		t.Fatal(err)
	}
	if got := d2.IngestStatsNow(); got.ReplayedRows != 0 || got.IngestSeq != 0 {
		t.Fatalf("fresh build replayed a stale wal: %+v", got)
	}
	built, err := d2.QueryRect(testBound, geoblocks.Count())
	if err != nil {
		t.Fatal(err)
	}

	// A restored snapshot, by contrast, replays its log.
	pts2, cols2 := genIngestRows(rand.New(rand.NewSource(9)), 100)
	if _, err := d2.Ingest(pts2, cols2); err != nil {
		t.Fatal(err)
	}
	snapDir := filepath.Join(dataDir, "life")
	// Snapshot BEFORE more ingest so the log keeps a tail to replay.
	if _, err := d2.Snapshot(snapDir); err != nil {
		t.Fatal(err)
	}
	pts3, cols3 := genIngestRows(rand.New(rand.NewSource(10)), 120)
	if _, err := d2.Ingest(pts3, cols3); err != nil {
		t.Fatal(err)
	}
	st.Drop("life")
	d3, err := Open(snapDir, "")
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Add(d3); err != nil {
		t.Fatal(err)
	}
	if got := d3.IngestStatsNow(); got.ReplayedRows != 120 {
		t.Fatalf("restore replayed %d rows, want 120", got.ReplayedRows)
	}
	got, err := d3.QueryRect(testBound, geoblocks.Count())
	if err != nil {
		t.Fatal(err)
	}
	if want := built.Count + 100 + 120; got.Count != want {
		t.Fatalf("recovered count %d, want %d (base %d)", got.Count, want, base.Count)
	}
	st.Close()
}
