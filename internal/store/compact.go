package store

// Background compaction: folding shard deltas into the immutable base
// blocks off the query path. A fold never mutates a serving block — it
// builds a replacement aside (core.FoldRows via geoblocks.Fold, pyramid
// and cache re-derived) while queries keep answering base+delta, then
// swaps the new block in and drops the folded delta prefix under one
// short write-lock section. The result-cache generation is bumped exactly
// once per fold, in that same section, because folding may reassociate
// SUM (bound-equal, not bit-equal) relative to the pre-fold merge order.
//
// Lock order: compactMu → ingestMu, and compactMu → d.mu. Update takes
// compactMu too: it mutates base arrays in place, and a fold that read
// the base before such a mutation would discard it at swap time.

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"geoblocks"
	"geoblocks/internal/cellid"
	"geoblocks/internal/core"
)

// CompactionStats reports one fold.
type CompactionStats struct {
	// Rows is the number of delta rows folded into base blocks.
	Rows int `json:"rows"`
	// Shards is the number of shards that received a new base block.
	Shards int `json:"shards"`
	// Seq is the highest ingest batch sequence now durable in the base.
	Seq uint64 `json:"seq"`
	// Micros is the wall time of the fold (cut + build + swap).
	Micros int64 `json:"micros"`
}

// Compact folds every pending delta row into its shard's base block and
// re-derives the affected pyramids and caches. Safe concurrently with
// ingest and queries: the cut is a consistent prefix (rows of batches up
// to the returned Seq), the fold itself runs under the read lock, and
// only the pointer swap takes the write lock. Rows ingested during the
// fold stay in the deltas for the next pass. A no-op (empty deltas)
// returns zero stats.
func (d *Dataset) Compact() (CompactionStats, error) {
	if d.residency != nil {
		return CompactionStats{}, fmt.Errorf("store: dataset %q is mapped read-only: %w", d.name, core.ErrReadOnly)
	}
	d.compactMu.Lock()
	defer d.compactMu.Unlock()
	start := time.Now()

	// Cut: under ingestMu no batch is mid-application, so per-shard delta
	// lengths form a consistent prefix — exactly the rows of batches with
	// seq <= cutSeq, because application is serialised in seq order.
	d.ingestMu.Lock()
	cutSeq := d.ingestSeq.Load()
	cuts := make([]int, len(d.shards))
	total := 0
	for i := range d.shards {
		if dl := d.shards[i].delta; dl != nil {
			cuts[i] = dl.size()
			total += cuts[i]
		}
	}
	d.ingestMu.Unlock()
	if total == 0 {
		return CompactionStats{Seq: d.foldedSeq.Load()}, nil
	}

	// Fold each dirty shard aside, under the read lock: Update (write
	// lock) cannot mutate base arrays underneath the fold, and queries
	// keep serving the old blocks. Parallelism is deliberately bounded to
	// a fraction of the cores: a fold rebuilds whole shard blocks (pyramid
	// and cache included), and an unbounded goroutine-per-shard burst
	// would periodically saturate the machine and show up as read-latency
	// spikes — the opposite of "compaction off the query path".
	type folded struct {
		idx   int
		block *geoblocks.GeoBlock
		err   error
	}
	d.mu.RLock()
	dirty := make([]int, 0, len(d.shards))
	for i, n := range cuts {
		if n > 0 {
			dirty = append(dirty, i)
		}
	}
	results := make([]folded, len(dirty))
	workers := runtime.GOMAXPROCS(0) / 4
	if workers < 1 {
		workers = 1
	}
	if workers > len(dirty) {
		workers = len(dirty)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				k := int(next.Add(1)) - 1
				if k >= len(dirty) {
					return
				}
				i := dirty[k]
				leaves, cols := d.shards[i].delta.viewPrefix(cuts[i])
				sl, sc := sortRowsByLeaf(leaves, cols)
				nb, err := d.shards[i].block.Fold(sl, sc)
				results[k] = folded{idx: i, block: nb, err: err}
			}
		}()
	}
	wg.Wait()
	d.mu.RUnlock()
	for _, r := range results {
		if r.err != nil {
			return CompactionStats{}, fmt.Errorf("store: folding shard %v: %w", d.shards[r.idx].cell, r.err)
		}
	}

	// Swap: new blocks in, folded prefixes out, generation bumped — one
	// write-lock section, so no query ever sees a folded base together
	// with the rows it absorbed still in the delta (double counting).
	d.mu.Lock()
	for _, r := range results {
		d.shards[r.idx].block = r.block
		d.shards[r.idx].delta.drop(cuts[r.idx])
	}
	d.foldedSeq.Store(cutSeq)
	if d.results != nil {
		d.results.InvalidateFold()
	}
	d.mu.Unlock()

	d.deltaRows.Add(int64(-total))
	d.compactions.Add(1)
	d.compactedRows.Add(uint64(total))
	st := CompactionStats{
		Rows:   total,
		Shards: len(dirty),
		Seq:    cutSeq,
		Micros: time.Since(start).Microseconds(),
	}
	d.lastCompactMicros.Store(st.Micros)
	return st, nil
}

// sortRowsByLeaf returns the rows stably sorted by leaf id, as FoldRows
// requires. The inputs are delta snapshots shared with readers, so the
// sort permutes fresh copies.
func sortRowsByLeaf(leaves []cellid.ID, cols [][]float64) ([]cellid.ID, [][]float64) {
	idx := make([]int, len(leaves))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return leaves[idx[a]] < leaves[idx[b]] })
	outL := make([]cellid.ID, len(leaves))
	outC := make([][]float64, len(cols))
	for c := range cols {
		outC[c] = make([]float64, len(leaves))
	}
	for k, i := range idx {
		outL[k] = leaves[i]
		for c := range cols {
			outC[c][k] = cols[c][i]
		}
	}
	return outL, outC
}

// Compactor folds a dataset's deltas in the background: on a fixed
// interval, and immediately when kicked (ingest backpressure's soft
// threshold kicks it). Start it after the dataset is serving; Close
// stops the loop and waits for an in-flight fold to finish.
type Compactor struct {
	d        *Dataset
	interval time.Duration
	kick     chan struct{}
	stop     chan struct{}
	done     chan struct{}
	// OnError, when set before Start, observes background fold errors
	// (the loop keeps running).
	OnError func(error)
}

// NewCompactor creates a compactor for d. interval <= 0 disables the
// timer — the compactor then folds only when kicked.
func NewCompactor(d *Dataset, interval time.Duration) *Compactor {
	return &Compactor{
		d:        d,
		interval: interval,
		kick:     make(chan struct{}, 1),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
}

// Start launches the background loop and wires the dataset's soft-cap
// kick to it.
func (c *Compactor) Start() {
	kick := c.Kick
	c.d.compactKick.Store(&kick)
	go c.run()
}

// Kick requests a fold as soon as possible. Non-blocking; kicks received
// during a fold coalesce into one follow-up pass.
func (c *Compactor) Kick() {
	select {
	case c.kick <- struct{}{}:
	default:
	}
}

// Close stops the loop. Safe to call once.
func (c *Compactor) Close() {
	c.d.compactKick.Store(nil)
	close(c.stop)
	<-c.done
}

func (c *Compactor) run() {
	defer close(c.done)
	var tick <-chan time.Time
	if c.interval > 0 {
		t := time.NewTicker(c.interval)
		defer t.Stop()
		tick = t.C
	}
	for {
		select {
		case <-c.stop:
			return
		case <-tick:
		case <-c.kick:
		}
		if c.d.DeltaRows() == 0 {
			continue
		}
		if _, err := c.d.Compact(); err != nil && c.OnError != nil {
			c.OnError(err)
		}
	}
}
