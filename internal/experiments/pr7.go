package experiments

// PR7 is the mmap-serving snapshot for format v3 (internal/snapshot +
// internal/store residency): it builds the 1M-row taxi dataset once,
// writes both a v2 (framed, eager-restore) and a v3 (mapped, lazy)
// snapshot, then measures serving startup in THREE CHILD PROCESSES so
// RSS numbers are honest — the parent's build heap never pollutes a
// child's resident set:
//
//	eager  restore the v2 snapshot with the default decode-everything path
//	mmap   restore the v3 snapshot via store.OpenMapped, unlimited budget
//	evict  restore the v3 snapshot with a resident budget at ~25% of the
//	       snapshot, forcing the LRU eviction/re-fault path under load
//
// Each child reports startup-to-first-answer wall time, VmRSS, cold and
// warm per-query latencies, and every answer as raw bits. The parent
// asserts IN-RUN, before any number is written: the mapped first answer
// is >=10x faster than the eager one, mapped startup RSS is below the
// eager RSS, every child's every answer is bit-identical to the parent's
// in-memory dataset, and the evict child's fault/eviction counters
// actually moved. cmd/geobench serialises the points to BENCH_PR7.json
// via -perf-json -mmapserve.

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"geoblocks"
	"geoblocks/internal/dataset"
	"geoblocks/internal/geom"
	"geoblocks/internal/store"
	"geoblocks/internal/workload"
)

const (
	// pr7Level / pr7ShardLevel match the serving daemon's defaults; shard
	// level 2 gives 16 shards, enough for the eviction path to have real
	// LRU pressure.
	pr7Level      = 14
	pr7ShardLevel = 2
	// pr7PyramidLevels exercises fault-time pyramid derivation, the
	// costliest part of a shard fault after the checksum pass.
	pr7PyramidLevels = 3
	// pr7WarmRounds is how many times the warm pass repeats the polygon
	// list; the cold pass runs it once, faulting shards as it goes.
	pr7WarmRounds = 5

	// Child-process protocol: when GEOBENCH_PR7_CHILD is set, geobench
	// runs one serving scenario instead of its normal CLI.
	pr7EnvMode   = "GEOBENCH_PR7_CHILD" // eager | mmap | evict
	pr7EnvDir    = "GEOBENCH_PR7_DIR"
	pr7EnvBudget = "GEOBENCH_PR7_BUDGET"
	pr7EnvSeed   = "GEOBENCH_PR7_SEED"
)

// PR7Point is one child-process serving measurement.
type PR7Point struct {
	// Mode is eager (v2 decode-all restore), mmap (v3 lazy, unlimited
	// budget) or evict (v3 lazy, budget ~25% of the snapshot).
	Mode   string `json:"mode"`
	Rows   int    `json:"rows"`
	Shards int    `json:"shards"`
	// SnapshotBytes is the restored snapshot's shard payload total (v2
	// bytes for eager, v3 for the mapped modes).
	SnapshotBytes int64 `json:"snapshot_bytes"`
	// BudgetBytes is the resident budget (evict mode only, else 0).
	BudgetBytes int64 `json:"budget_bytes,omitempty"`
	// StartupNS is restore-complete wall time; FirstAnswerNS additionally
	// includes the first probe query — the startup-to-first-answer the
	// tentpole optimises.
	StartupNS     int64 `json:"startup_ns"`
	FirstAnswerNS int64 `json:"first_answer_ns"`
	// RSSStartupKB is VmRSS right after the first answer; RSSEndKB after
	// the full cold+warm workload.
	RSSStartupKB int64 `json:"rss_startup_kb"`
	RSSEndKB     int64 `json:"rss_end_kb"`
	// Cold latencies fault shards in (first touch per polygon); warm
	// latencies repeat the same polygons with shards resident.
	ColdP50NS int64 `json:"cold_p50_ns"`
	ColdP99NS int64 `json:"cold_p99_ns"`
	WarmP50NS int64 `json:"warm_p50_ns"`
	WarmP99NS int64 `json:"warm_p99_ns"`
	// Residency counters at child exit (mapped modes only).
	Faults        uint64 `json:"faults,omitempty"`
	Evictions     uint64 `json:"evictions,omitempty"`
	MappedBytes   int64  `json:"mapped_bytes,omitempty"`
	ResidentBytes int64  `json:"resident_bytes,omitempty"`
	// FirstAnswerSpeedup is eager FirstAnswerNS over this mode's (1.0 for
	// eager itself); BitIdentical records the in-run answer check.
	FirstAnswerSpeedup float64 `json:"first_answer_speedup"`
	BitIdentical       bool    `json:"bit_identical"`
}

// pr7ChildResult is the JSON a child prints on stdout.
type pr7ChildResult struct {
	Mode          string                `json:"mode"`
	StartupNS     int64                 `json:"startup_ns"`
	FirstAnswerNS int64                 `json:"first_answer_ns"`
	RSSStartupKB  int64                 `json:"rss_startup_kb"`
	RSSEndKB      int64                 `json:"rss_end_kb"`
	ColdNS        []int64               `json:"cold_ns"`
	WarmNS        []int64               `json:"warm_ns"`
	Answers       []string              `json:"answers"`
	Residency     *store.ResidencyStats `json:"residency,omitempty"`
}

// pr7Polys is the serving workload both parent and children derive from
// the seed alone: shard-local polygons (one shard fault each) plus
// cross-shard ones (multi-shard merges), over the taxi bound.
func pr7Polys(bound geom.Rect, seed int64) []*geom.Polygon {
	return append(workload.ShardLocal(bound, pr7ShardLevel, 16, seed+20),
		workload.CrossShard(bound, pr7ShardLevel, 8, seed+21)...)
}

// pr7Probe is the startup probe: a single shard-local polygon, distinct
// from the measured workload, whose first answer marks serving-ready.
func pr7Probe(bound geom.Rect, seed int64) *geom.Polygon {
	return workload.ShardLocal(bound, pr7ShardLevel, 1, seed+22)[0]
}

func pr7Reqs() []geoblocks.AggRequest {
	return []geoblocks.AggRequest{geoblocks.Count(), geoblocks.Sum("fare_amount")}
}

// pr7AnswerBits encodes a result so equality means bit-identity: the
// exact count plus the IEEE-754 bits of every aggregate value.
func pr7AnswerBits(res geoblocks.Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d", res.Count)
	for _, v := range res.Values {
		fmt.Fprintf(&b, ":%016x", math.Float64bits(v))
	}
	return b.String()
}

// PR7ChildMain is the child-process entry point; cmd/geobench calls it
// before flag parsing when GEOBENCH_PR7_CHILD is set. It restores the
// snapshot in the requested mode, runs the probe + cold + warm workload
// and prints a pr7ChildResult to stdout.
func PR7ChildMain() {
	mode := os.Getenv(pr7EnvMode)
	dir := os.Getenv(pr7EnvDir)
	seed, err := strconv.ParseInt(os.Getenv(pr7EnvSeed), 10, 64)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pr7 child: bad seed: %v\n", err)
		os.Exit(1)
	}
	var budget int64
	if s := os.Getenv(pr7EnvBudget); s != "" {
		if budget, err = strconv.ParseInt(s, 10, 64); err != nil {
			fmt.Fprintf(os.Stderr, "pr7 child: bad budget: %v\n", err)
			os.Exit(1)
		}
	}

	bound := dataset.NYCTaxi().Bound
	probe := pr7Probe(bound, seed)
	polys := pr7Polys(bound, seed)
	reqs := pr7Reqs()

	// Startup clock: everything between here and the first answered
	// query is what a restart costs before the service is useful.
	start := time.Now()
	var (
		ds  *store.Dataset
		res *store.Residency
	)
	switch mode {
	case "eager":
		ds, err = store.Open(dir, "")
	case "mmap", "evict":
		res = store.NewResidency(budget)
		ds, err = store.OpenMapped(dir, "", res)
	default:
		fmt.Fprintf(os.Stderr, "pr7 child: unknown mode %q\n", mode)
		os.Exit(1)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "pr7 child: restore: %v\n", err)
		os.Exit(1)
	}
	startup := time.Since(start)
	if _, err := ds.Query(probe, reqs...); err != nil {
		fmt.Fprintf(os.Stderr, "pr7 child: probe: %v\n", err)
		os.Exit(1)
	}
	firstAnswer := time.Since(start)
	rssStartup := readVmRSSKB()

	out := pr7ChildResult{
		Mode:          mode,
		StartupNS:     startup.Nanoseconds(),
		FirstAnswerNS: firstAnswer.Nanoseconds(),
		RSSStartupKB:  rssStartup,
	}
	run := func(p *geom.Polygon) (int64, string) {
		qs := time.Now()
		qr, err := ds.Query(p, reqs...)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pr7 child: query: %v\n", err)
			os.Exit(1)
		}
		return time.Since(qs).Nanoseconds(), pr7AnswerBits(qr)
	}
	for _, p := range polys { // cold: first touch faults shards in
		ns, bits := run(p)
		out.ColdNS = append(out.ColdNS, ns)
		out.Answers = append(out.Answers, bits)
	}
	for r := 0; r < pr7WarmRounds; r++ {
		for i, p := range polys {
			ns, bits := run(p)
			out.WarmNS = append(out.WarmNS, ns)
			if bits != out.Answers[i] {
				fmt.Fprintf(os.Stderr, "pr7 child: warm answer drifted on poly %d: %s != %s\n", i, bits, out.Answers[i])
				os.Exit(1)
			}
		}
	}
	out.RSSEndKB = readVmRSSKB()
	if res != nil {
		st := res.Stats()
		out.Residency = &st
	}
	enc, err := json.Marshal(out)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pr7 child: %v\n", err)
		os.Exit(1)
	}
	os.Stdout.Write(append(enc, '\n'))
}

// readVmRSSKB reads the process resident set from /proc/self/status;
// returns 0 where /proc is unavailable (the parent then skips the RSS
// assertion rather than fabricating a number).
func readVmRSSKB() int64 {
	data, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return 0
	}
	for _, line := range strings.Split(string(data), "\n") {
		if !strings.HasPrefix(line, "VmRSS:") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return 0
		}
		kb, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return 0
		}
		return kb
	}
	return 0
}

// pr7RunChild re-executes this binary as one serving child and decodes
// its report. Stderr passes through so a child failure is diagnosable.
func pr7RunChild(exe, mode, dir string, budget, seed int64) pr7ChildResult {
	cmd := exec.Command(exe)
	cmd.Env = append(os.Environ(),
		pr7EnvMode+"="+mode,
		pr7EnvDir+"="+dir,
		pr7EnvBudget+"="+strconv.FormatInt(budget, 10),
		pr7EnvSeed+"="+strconv.FormatInt(seed, 10),
	)
	cmd.Stderr = os.Stderr
	raw, err := cmd.Output()
	if err != nil {
		panic(fmt.Sprintf("pr7: %s child: %v", mode, err))
	}
	var res pr7ChildResult
	if err := json.Unmarshal(raw, &res); err != nil {
		panic(fmt.Sprintf("pr7: %s child output: %v", mode, err))
	}
	return res
}

// pr7Percentile returns the p-th percentile (nearest-rank) of ns.
func pr7Percentile(ns []int64, p float64) int64 {
	if len(ns) == 0 {
		return 0
	}
	s := append([]int64(nil), ns...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	idx := int(math.Ceil(p/100*float64(len(s)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(s) {
		idx = len(s) - 1
	}
	return s[idx]
}

// PR7Perf runs the snapshot and returns both the rendered table and the
// raw points for JSON serialisation.
func PR7Perf(cfg Config) ([]*Table, []PR7Point) {
	exe, err := os.Executable()
	if err != nil {
		panic(err)
	}
	raw := dataset.Generate(dataset.NYCTaxi(), cfg.TaxiRows, cfg.Seed)
	clean := raw.CleanRule()
	bound := raw.Spec.Bound

	tmp, err := os.MkdirTemp("", "geoblocks-pr7-")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(tmp)

	opts := store.Options{
		Level:         pr7Level,
		ShardLevel:    pr7ShardLevel,
		PyramidLevels: pr7PyramidLevels,
		Clean:         &clean,
	}
	ds, err := store.Build("taxi", bound, raw.Spec.Schema, raw.Points, raw.Cols, opts)
	if err != nil {
		panic(err)
	}

	dirV2 := filepath.Join(tmp, "v2")
	dirV3 := filepath.Join(tmp, "v3")
	m2, err := ds.Snapshot(dirV2)
	if err != nil {
		panic(err)
	}
	m3, err := ds.SnapshotV3(dirV3)
	if err != nil {
		panic(err)
	}
	var bytesV2, bytesV3 int64
	for _, sh := range m2.Shards {
		bytesV2 += sh.Bytes
	}
	for _, sh := range m3.Shards {
		bytesV3 += sh.Bytes
	}

	// The ground truth every child must match bit-for-bit: answers from
	// the freshly built in-memory dataset.
	polys := pr7Polys(bound, cfg.Seed)
	reqs := pr7Reqs()
	want := make([]string, len(polys))
	for i, p := range polys {
		qr, err := ds.Query(p, reqs...)
		if err != nil {
			panic(err)
		}
		want[i] = pr7AnswerBits(qr)
	}

	// Budget at ~25% of the v3 payload: with 16 shards that keeps only a
	// few resident, so the cold+warm workload must evict and re-fault.
	evictBudget := bytesV3 / 4

	eager := pr7RunChild(exe, "eager", dirV2, 0, cfg.Seed)
	mmapRes := pr7RunChild(exe, "mmap", dirV3, 0, cfg.Seed)
	evict := pr7RunChild(exe, "evict", dirV3, evictBudget, cfg.Seed)

	// In-run acceptance checks — fail loudly rather than report numbers
	// for a lazy path that is slow, fat or wrong.
	for _, child := range []pr7ChildResult{eager, mmapRes, evict} {
		if len(child.Answers) != len(want) {
			panic(fmt.Sprintf("pr7: %s child answered %d/%d queries", child.Mode, len(child.Answers), len(want)))
		}
		for i, bits := range child.Answers {
			if bits != want[i] {
				panic(fmt.Sprintf("pr7: %s child answer %d = %s, want %s (not bit-identical)", child.Mode, i, bits, want[i]))
			}
		}
	}
	// The perf floors only hold at real scale: at the test sizes (Quick)
	// the eager restore is so short that process noise dominates, so the
	// thresholds would flake without measuring anything. The committed
	// BENCH_PR7.json is produced at full scale, where they are enforced.
	if cfg.TaxiRows >= 500_000 {
		if mmapRes.FirstAnswerNS*10 > eager.FirstAnswerNS {
			panic(fmt.Sprintf("pr7: mapped startup-to-first-answer %v is not >=10x faster than eager %v",
				time.Duration(mmapRes.FirstAnswerNS), time.Duration(eager.FirstAnswerNS)))
		}
		if eager.RSSStartupKB > 0 && mmapRes.RSSStartupKB > 0 && mmapRes.RSSStartupKB >= eager.RSSStartupKB {
			panic(fmt.Sprintf("pr7: mapped startup RSS %d KiB is not below eager %d KiB",
				mmapRes.RSSStartupKB, eager.RSSStartupKB))
		}
	}
	if evict.Residency == nil || evict.Residency.Evictions == 0 {
		panic("pr7: evict child recorded no evictions")
	}
	if evict.Residency.Faults <= uint64(ds.NumShards()) {
		panic(fmt.Sprintf("pr7: evict child faulted %d times over %d shards — eviction never forced a re-fault",
			evict.Residency.Faults, ds.NumShards()))
	}

	point := func(child pr7ChildResult, snapBytes, budget int64) PR7Point {
		p := PR7Point{
			Mode:               child.Mode,
			Rows:               cfg.TaxiRows,
			Shards:             ds.NumShards(),
			SnapshotBytes:      snapBytes,
			BudgetBytes:        budget,
			StartupNS:          child.StartupNS,
			FirstAnswerNS:      child.FirstAnswerNS,
			RSSStartupKB:       child.RSSStartupKB,
			RSSEndKB:           child.RSSEndKB,
			ColdP50NS:          pr7Percentile(child.ColdNS, 50),
			ColdP99NS:          pr7Percentile(child.ColdNS, 99),
			WarmP50NS:          pr7Percentile(child.WarmNS, 50),
			WarmP99NS:          pr7Percentile(child.WarmNS, 99),
			FirstAnswerSpeedup: float64(eager.FirstAnswerNS) / float64(child.FirstAnswerNS),
			BitIdentical:       true,
		}
		if child.Residency != nil {
			p.Faults = child.Residency.Faults
			p.Evictions = child.Residency.Evictions
			p.MappedBytes = child.Residency.MappedBytes
			p.ResidentBytes = child.Residency.ResidentBytes
		}
		return p
	}
	points := []PR7Point{
		point(eager, bytesV2, 0),
		point(mmapRes, bytesV3, 0),
		point(evict, bytesV3, evictBudget),
	}

	tbl := &Table{
		ID:    "pr7",
		Title: "Mapped v3 snapshots: serving startup, RSS and query latency vs eager v2 restore (taxi)",
		Note: fmt.Sprintf("%d rows, %d shards; each mode is a fresh child process; answers checked bit-identical in-run; evict budget %.1f MB",
			cfg.TaxiRows, ds.NumShards(), float64(evictBudget)/1e6),
		Header: []string{"mode", "snap MB", "startup ms", "1st answer ms", "speedup", "RSS MB",
			"cold p50 ms", "cold p99 ms", "warm p50 ms", "warm p99 ms", "faults", "evictions"},
	}
	for _, p := range points {
		tbl.AddRow(
			p.Mode,
			fmt.Sprintf("%.1f", float64(p.SnapshotBytes)/1e6),
			fmt.Sprintf("%.1f", float64(p.StartupNS)/1e6),
			fmt.Sprintf("%.1f", float64(p.FirstAnswerNS)/1e6),
			fmt.Sprintf("%.0fx", p.FirstAnswerSpeedup),
			fmt.Sprintf("%.1f", float64(p.RSSStartupKB)/1e3),
			fmt.Sprintf("%.2f", float64(p.ColdP50NS)/1e6),
			fmt.Sprintf("%.2f", float64(p.ColdP99NS)/1e6),
			fmt.Sprintf("%.2f", float64(p.WarmP50NS)/1e6),
			fmt.Sprintf("%.2f", float64(p.WarmP99NS)/1e6),
			fmt.Sprintf("%d", p.Faults),
			fmt.Sprintf("%d", p.Evictions),
		)
	}
	return []*Table{tbl}, points
}

// PR7 is the Runner entry point.
func PR7(cfg Config) []*Table {
	tables, _ := PR7Perf(cfg)
	return tables
}
