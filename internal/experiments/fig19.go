package experiments

import (
	"fmt"
	"math"
	"time"

	"geoblocks/internal/column"
	"geoblocks/internal/core"
	"geoblocks/internal/dataset"
)

// Fig19 reproduces "Payoff point: number of incremental builds required to
// amortize the cost of sorting the raw data". For each filter predicate
// and block level, it compares
//
//	incremental: extract once (clean + sort all data), then per filter a
//	             linear build pass over the sorted base data;
//	isolated:    per filter, clean + filter the raw data, sort only the
//	             survivors, then aggregate (paper eq. 1).
//
// The payoff point is the smallest number of builds k for which
// extract + k·t_incr <= k·t_iso. The paper's shape: the unselective
// passenger_cnt == 1 (~70%) filter amortizes almost immediately, while the
// selective distance >= 4 (~16%) filter needs many builds and shows a
// level correlation.
func Fig19(cfg Config) []*Table {
	raw := dataset.Generate(dataset.NYCTaxi(), cfg.TaxiRows, cfg.Seed)
	schema := raw.Spec.Schema

	// Shared extract: the cost incremental builds must amortize.
	var base *core.BaseData
	extractTime := timeIt(func() {
		var err error
		base, _, err = raw.Extract(-1)
		if err != nil {
			panic(err)
		}
	})

	filters := []struct {
		name   string
		filter column.Filter
	}{
		{"distance >= 4", column.Pred(schema, "trip_distance", column.OpGe, 4)},
		{"passenger_cnt == 1", column.Pred(schema, "passenger_count", column.OpEq, 1)},
		{"passenger_cnt > 1", column.Pred(schema, "passenger_count", column.OpGt, 1)},
	}

	t := &Table{
		ID:    "fig19",
		Title: "Payoff point: incremental builds amortizing the global sort",
		Note: fmt.Sprintf("taxi %d raw rows; extract (clean+sort all) = %s ms; payoff = ceil(extract / (isolated - incremental))",
			raw.NumRows(), ms(extractTime)),
		Header: []string{"filter", "selectivity", "paper_level", "incremental_ms", "isolated_ms", "payoff_builds"},
	}

	for _, f := range filters {
		sel := f.filter.Selectivity(base.Table)
		for paperLevel := 15; paperLevel <= 19; paperLevel++ {
			level := DomainLevel(raw.Spec.Bound, paperLevel)

			tIncr := medianTime(3, func() {
				if _, err := core.Build(base, core.BuildOptions{Level: level, Filter: f.filter}); err != nil {
					panic(err)
				}
			})
			var isoStats core.BuildStats
			tIso := medianTime(2, func() {
				var err error
				_, isoStats, err = core.BuildIsolated(raw.Domain(), raw.Points, schema, raw.Cols,
					raw.CleanRule(), core.BuildOptions{Level: level, Filter: f.filter})
				if err != nil {
					panic(err)
				}
			})
			_ = isoStats

			t.AddRow(
				f.name,
				pct(sel),
				fmt.Sprintf("%d", paperLevel),
				ms(tIncr), ms(tIso),
				payoff(extractTime, tIncr, tIso),
			)
		}
	}
	return []*Table{t}
}

// payoff returns the smallest k with extract + k·incr <= k·iso, or "never"
// when isolated builds are not slower per build.
func payoff(extract, incr, iso time.Duration) string {
	gain := iso - incr
	if gain <= 0 {
		return "never"
	}
	k := math.Ceil(float64(extract) / float64(gain))
	return fmt.Sprintf("%.0f", k)
}

// medianTime runs fn reps times and returns the median duration.
func medianTime(reps int, fn func()) time.Duration {
	times := make([]time.Duration, reps)
	for i := range times {
		times[i] = timeIt(fn)
	}
	// Insertion sort: reps is tiny.
	for i := 1; i < len(times); i++ {
		for j := i; j > 0 && times[j] < times[j-1]; j-- {
			times[j], times[j-1] = times[j-1], times[j]
		}
	}
	return times[len(times)/2]
}
