package experiments

// PR8 is the streaming-ingest snapshot: on the clustered taxi workload
// it builds a sharded serving dataset and measures the read path twice
// with the same Zipfian hot-region query stream — first read-only, then
// while background ingesters append row batches and the background
// compactor folds them into the base. The bench reports read p50/p99
// under both regimes plus the sustained ingest rate and compaction
// activity, and asserts in-run that (a) serving under ingest keeps read
// p99 within a bounded multiple of the read-only p99 and (b) after the
// stream quiesces and a final fold, the dataset holds exactly the base
// rows plus every acknowledged ingest row — nothing lost, nothing
// double-counted. cmd/geobench serialises the points to BENCH_PR8.json
// via -perf-json -ingest.

import (
	"fmt"
	"math/rand"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"geoblocks"
	"geoblocks/internal/dataset"
	"geoblocks/internal/geom"
	"geoblocks/internal/store"
	"geoblocks/internal/workload"
)

// PR8Point is one phase's measurement of the streaming-ingest bench.
type PR8Point struct {
	// Phase identifies the regime: "read-only" or "mixed" (reads while
	// ingesting + compacting).
	Phase string `json:"phase"`
	// Queries is the number of timed read queries in this phase.
	Queries int `json:"queries"`
	// QPS is the serial read throughput of the phase.
	QPS float64 `json:"qps"`
	// P50US and P99US are the read latency percentiles in microseconds.
	P50US float64 `json:"p50_us"`
	P99US float64 `json:"p99_us"`
	// P99Ratio is this phase's p99 over the read-only p99 (1 for the
	// read-only phase itself).
	P99Ratio float64 `json:"p99_ratio_vs_read_only"`
	// IngestRows/IngestBatches/IngestRowsPerSec describe the concurrent
	// write load (zero in the read-only phase).
	IngestRows       uint64  `json:"ingest_rows"`
	IngestBatches    uint64  `json:"ingest_batches"`
	IngestRowsPerSec float64 `json:"ingest_rows_per_sec"`
	// Compactions and CompactedRows count background folds during the
	// phase; DeltaRowsEnd is the pending backlog when the phase ended.
	Compactions   uint64 `json:"compactions"`
	CompactedRows uint64 `json:"compacted_rows"`
	DeltaRowsEnd  int64  `json:"delta_rows_end"`
}

const (
	// pr8Level matches the serving daemon's default grid level.
	pr8Level = 14
	// pr8PoolSize and pr8Skew shape the read stream, same regime as the
	// pr6 serving bench.
	pr8PoolSize = 200
	pr8Skew     = 1.5
	// pr8BatchRows is the ingest batch size; pr8IngestPause throttles the
	// writer between batches so ingest is sustained rather than a single
	// burst that drains before the read stream finishes.
	pr8BatchRows    = 200
	pr8IngestPause  = 10 * time.Millisecond
	pr8CompactEvery = 250 * time.Millisecond
	// pr8HotLo/pr8HotHi place the ingest hotspot as a fraction of the
	// domain on both axes: streaming geodata concentrates spatially (fresh
	// taxi pickups cluster in the city core), and a hotspot inside one
	// shard of the 4x4 grid also exercises the design's payoff — folds
	// rebuild only the dirty shard, not the whole dataset.
	pr8HotLo = 0.30
	pr8HotHi = 0.45
	// pr8MinPhase keeps each phase running long enough to cover many
	// compaction cycles, so the p99 includes fold activity rather than
	// dodging it.
	pr8MinPhase = 3 * time.Second
	// pr8MaxP99Ratio is the in-run acceptance ceiling: read p99 under
	// sustained ingest within 2x of the read-only p99.
	pr8MaxP99Ratio = 2.0
)

// pr8Percentile returns the p-th percentile (0..1) of sorted durations.
func pr8Percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)-1))
	return sorted[i]
}

// pr8HotRect returns the ingest hotspot sub-rectangle of the domain.
func pr8HotRect(bound geom.Rect) geom.Rect {
	w, h := bound.Max.X-bound.Min.X, bound.Max.Y-bound.Min.Y
	return geom.RectFromPoints(
		geom.Pt(bound.Min.X+pr8HotLo*w, bound.Min.Y+pr8HotLo*h),
		geom.Pt(bound.Min.X+pr8HotHi*w, bound.Min.Y+pr8HotHi*h))
}

// pr8GenRows draws n rows inside the ingest hotspot whose column values
// satisfy the taxi clean rule (fare 0.01..500, distance 0.01..100,
// passengers 1..8): the final row-accounting gate expects every
// acknowledged row to survive the dataset's filter, so none may be
// silently cleaned away.
func pr8GenRows(rng *rand.Rand, hot geom.Rect, numCols, n int) ([]geom.Point, [][]float64) {
	pts := make([]geom.Point, n)
	cols := make([][]float64, numCols)
	for c := range cols {
		cols[c] = make([]float64, n)
	}
	w, h := hot.Max.X-hot.Min.X, hot.Max.Y-hot.Min.Y
	for i := range pts {
		pts[i] = geom.Pt(hot.Min.X+rng.Float64()*w, hot.Min.Y+rng.Float64()*h)
		for c := range cols {
			cols[c][i] = 1 + rng.Float64()*7
		}
	}
	return pts, cols
}

// PR8Perf runs the streaming-ingest bench and returns both the rendered
// table and the raw points for JSON serialisation.
func PR8Perf(cfg Config) ([]*Table, []PR8Point) {
	raw := dataset.Generate(dataset.NYCTaxi(), cfg.TaxiRows, cfg.Seed)
	bound := raw.Spec.Bound
	clean := raw.CleanRule()
	ds, err := store.Build("taxi", bound, raw.Spec.Schema, raw.Points, raw.Cols, store.Options{
		Level:         pr8Level,
		ShardLevel:    2,
		PyramidLevels: 4,
		Clean:         &clean,
	})
	if err != nil {
		panic(err)
	}
	baseCount, err := ds.QueryRect(bound, geoblocks.Count())
	if err != nil {
		panic(err)
	}

	hs := workload.ZipfianHotspot(bound, pr8PoolSize, pr8Skew, cfg.Seed+17)
	pool := hs.Pool()
	nQueries := 4000
	if cfg.TaxiRows <= 200_000 {
		nQueries = 1200
	}
	stream := make([]int, nQueries)
	for i := range stream {
		stream[i] = hs.NextIndex()
	}
	reqs := []geoblocks.AggRequest{
		geoblocks.Count(), geoblocks.Sum("fare_amount"),
		geoblocks.Min("fare_amount"), geoblocks.Max("fare_amount"),
	}

	// runStream replays the query stream, repeating whole passes until the
	// phase has run for at least pr8MinPhase, and returns the sorted
	// per-query latencies plus the phase wall time.
	runStream := func() ([]time.Duration, time.Duration) {
		var lats []time.Duration
		start := time.Now()
		for pass := 0; pass == 0 || time.Since(start) < pr8MinPhase; pass++ {
			for _, qi := range stream {
				qs := time.Now()
				if _, err := ds.Query(pool[qi], reqs...); err != nil {
					panic(err)
				}
				lats = append(lats, time.Since(qs))
			}
		}
		elapsed := time.Since(start)
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		return lats, elapsed
	}

	// Phase 1: the read-only baseline.
	roLats, roElapsed := runStream()
	roStats := ds.IngestStatsNow()
	ro := PR8Point{
		Phase:    "read-only",
		Queries:  len(roLats),
		QPS:      float64(len(roLats)) / roElapsed.Seconds(),
		P50US:    float64(pr8Percentile(roLats, 0.50).Nanoseconds()) / 1000,
		P99US:    float64(pr8Percentile(roLats, 0.99).Nanoseconds()) / 1000,
		P99Ratio: 1,
	}

	// Phase 2: the same read stream while ingesters append and the
	// background compactor folds.
	compactor := store.NewCompactor(ds, pr8CompactEvery)
	compactor.OnError = func(err error) { panic(err) }
	compactor.Start()
	var stop atomic.Bool
	var acked atomic.Uint64
	var wg sync.WaitGroup
	wg.Add(1)
	hot := pr8HotRect(bound)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(cfg.Seed + 23))
		for !stop.Load() {
			pts, cols := pr8GenRows(rng, hot, raw.Spec.Schema.NumCols(), pr8BatchRows)
			if _, err := ds.Ingest(pts, cols); err != nil {
				panic(err)
			}
			acked.Add(pr8BatchRows)
			time.Sleep(pr8IngestPause)
		}
	}()
	mixLats, mixElapsed := runStream()
	stop.Store(true)
	wg.Wait()
	compactor.Close()
	mixStats := ds.IngestStatsNow()

	mixed := PR8Point{
		Phase:            "mixed",
		Queries:          len(mixLats),
		QPS:              float64(len(mixLats)) / mixElapsed.Seconds(),
		P50US:            float64(pr8Percentile(mixLats, 0.50).Nanoseconds()) / 1000,
		P99US:            float64(pr8Percentile(mixLats, 0.99).Nanoseconds()) / 1000,
		IngestRows:       mixStats.Rows - roStats.Rows,
		IngestBatches:    mixStats.Batches - roStats.Batches,
		IngestRowsPerSec: float64(mixStats.Rows-roStats.Rows) / mixElapsed.Seconds(),
		Compactions:      mixStats.Compactions - roStats.Compactions,
		CompactedRows:    mixStats.CompactedRows - roStats.CompactedRows,
		DeltaRowsEnd:     mixStats.DeltaRows,
	}
	mixed.P99Ratio = mixed.P99US / ro.P99US

	tbl := &Table{
		ID:    "pr8",
		Title: "Streaming ingest: read latency while ingesting + compacting vs read-only (taxi)",
		Note: fmt.Sprintf("%d rows, block level %d, shard level 2, %d-polygon pool at s=%.1f, %d queries/phase; %d-row batches, %v compaction cadence; final count checked against acked rows",
			cfg.TaxiRows, pr8Level, pr8PoolSize, pr8Skew, nQueries, pr8BatchRows, pr8CompactEvery),
		Header: []string{"phase", "queries", "qps", "p50 us", "p99 us", "p99 ratio", "ingested", "rows/s", "compactions"},
	}
	points := []PR8Point{ro, mixed}
	for _, p := range points {
		tbl.AddRow(
			p.Phase,
			fmt.Sprintf("%d", p.Queries),
			fmt.Sprintf("%.0f", p.QPS),
			fmt.Sprintf("%.1f", p.P50US),
			fmt.Sprintf("%.1f", p.P99US),
			fmt.Sprintf("%.2fx", p.P99Ratio),
			fmt.Sprintf("%d", p.IngestRows),
			fmt.Sprintf("%.0f", p.IngestRowsPerSec),
			fmt.Sprintf("%d", p.Compactions),
		)
	}

	// The in-run gates, after the table exists so a failure still shows
	// the measured numbers.
	fail := func(format string, args ...any) {
		tbl.Render(os.Stderr)
		panic(fmt.Sprintf(format, args...))
	}
	// Row accounting: quiesce, fold everything, and expect base plus every
	// acknowledged row — the serving-while-ingesting correctness gate.
	if _, err := ds.Compact(); err != nil {
		panic(err)
	}
	finalCount, err := ds.QueryRect(bound, geoblocks.Count())
	if err != nil {
		panic(err)
	}
	if want := baseCount.Count + acked.Load(); finalCount.Count != want {
		fail("pr8: final count %d, want base %d + %d acked rows",
			finalCount.Count, baseCount.Count, acked.Load())
	}
	if mixed.P99Ratio > pr8MaxP99Ratio {
		fail("pr8: read p99 under ingest is %.2fx the read-only p99 (ceiling %.1fx)",
			mixed.P99Ratio, pr8MaxP99Ratio)
	}
	if mixed.Compactions == 0 {
		fail("pr8: no background compaction ran during the mixed phase")
	}
	return []*Table{tbl}, points
}

// PR8 is the Runner entry point.
func PR8(cfg Config) []*Table {
	tables, _ := PR8Perf(cfg)
	return tables
}
