package experiments

import (
	"fmt"
	"time"

	"geoblocks/internal/aggtrie"
	"geoblocks/internal/cellid"
	"geoblocks/internal/core"
	"geoblocks/internal/workload"
)

// Fig17 reproduces "Query runtime with increasing workload skew": the base
// workload runs once and the skewed workload (10% of neighborhoods) 2, 4,
// 8 or 16 times, on Block and on BlockQC with a 5% cache. The cache is
// refreshed between workload runs (the adaptive re-aggregation the paper's
// structure performs); refresh time is excluded from query runtime and
// reported separately. The paper's shape: the cached aggregates start to
// pay off after about four skewed runs, while the base workload stays
// nearly constant and slightly favours the plain Block (trie probe
// overhead).
func Fig17(cfg Config) []*Table {
	const paperLevel = 17
	const cacheThreshold = 0.05
	e := newTaxiEnv(cfg, paperLevel)
	blk := e.block(paperLevel)
	specs := e.standardSpecs(4)

	skewedPolys := workload.SkewedSubset(e.polys, 0.10, cfg.Seed+200)
	baseCovs := e.coverings(e.polys, paperLevel)
	skewedCovs := e.coverings(skewedPolys, paperLevel)

	t := &Table{
		ID:    "fig17",
		Title: "Query runtime with increasing workload skew",
		Note: fmt.Sprintf("taxi %d rows, level %d(paper)/%d(domain), cache %.0f%% of aggregates; runtimes per workload portion",
			e.base.NumRows(), paperLevel, e.lvl(paperLevel), 100*cacheThreshold),
		Header: []string{"skewed_runs", "approach", "base_ms", "skewed_ms", "total_ms", "refresh_ms"},
	}

	// Timings at this scale are well below scheduler noise; each whole
	// configuration runs three times and the median per portion is kept.
	const reps = 3
	for _, runs := range []int{2, 4, 8, 16} {
		baseTimes := make([]time.Duration, reps)
		skewTimes := make([]time.Duration, reps)
		for rep := 0; rep < reps; rep++ {
			baseTimes[rep] = timeIt(func() { runCovs(blk, baseCovs, specs) })
			for r := 0; r < runs; r++ {
				skewTimes[rep] += timeIt(func() { runCovs(blk, skewedCovs, specs) })
			}
		}
		baseTime, skewTime := median(baseTimes), median(skewTimes)
		t.AddRow(fmt.Sprintf("%d", runs), "Block",
			ms(baseTime), ms(skewTime), ms(baseTime+skewTime), "0.0")

		// BlockQC: fresh cache per repetition; between workload runs the
		// adaptive policy rebuilds the cache only while misses persist
		// (paper: the structure "dynamically adapts" to the workload).
		// Refresh time is reported separately.
		qcBases := make([]time.Duration, reps)
		qcSkews := make([]time.Duration, reps)
		refreshes := make([]time.Duration, reps)
		for rep := 0; rep < reps; rep++ {
			qc := cachedBlock(blk, cacheThreshold)
			qcBases[rep] = timeIt(func() { runCachedCovs(qc, baseCovs, specs) })
			refreshes[rep] += timeIt(func() { qc.MaybeRefresh(0.10) })
			for r := 0; r < runs; r++ {
				qcSkews[rep] += timeIt(func() { runCachedCovs(qc, skewedCovs, specs) })
				refreshes[rep] += timeIt(func() { qc.MaybeRefresh(0.10) })
			}
		}
		qcBase, qcSkew := median(qcBases), median(qcSkews)
		t.AddRow(fmt.Sprintf("%d", runs), "BlockQC",
			ms(qcBase), ms(qcSkew), ms(qcBase+qcSkew), ms(median(refreshes)))
	}
	return []*Table{t}
}

// median returns the middle element of a small duration sample.
func median(d []time.Duration) time.Duration {
	s := append([]time.Duration(nil), d...)
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
	return s[len(s)/2]
}

func runCovs(blk *core.GeoBlock, covs [][]cellid.ID, specs []core.AggSpec) {
	for _, cov := range covs {
		if _, err := blk.SelectCovering(cov, specs); err != nil {
			panic(err)
		}
	}
}

func runCachedCovs(qc *aggtrie.CachedBlock, covs [][]cellid.ID, specs []core.AggSpec) {
	for _, cov := range covs {
		if _, err := qc.Select(cov, specs); err != nil {
			panic(err)
		}
	}
}

// Fig18 reproduces "Impact of threshold on workload runtime and cache hit
// rate": with four skewed runs fixed, the cache budget sweeps from 0% to
// 100% of the cell-aggregate storage. Each configuration warms the cache
// with one unmeasured combined pass, refreshes, then measures the base and
// skewed portions and their full-hit rates. The paper's shape: the skewed
// portion is cached almost immediately (hit rate 100% by ~5%), the base
// workload's hit rate grows roughly linearly with the budget, and beyond
// ~50% extra budget buys nothing.
func Fig18(cfg Config) []*Table {
	const paperLevel = 17
	const skewedRuns = 4
	e := newTaxiEnv(cfg, paperLevel)
	blk := e.block(paperLevel)
	specs := e.standardSpecs(4)

	skewedPolys := workload.SkewedSubset(e.polys, 0.10, cfg.Seed+200)
	baseCovs := e.coverings(e.polys, paperLevel)
	skewedCovs := e.coverings(skewedPolys, paperLevel)

	// Block reference runtimes (threshold-independent).
	blockBase := timeIt(func() { runCovs(blk, baseCovs, specs) })
	var blockSkew time.Duration
	for r := 0; r < skewedRuns; r++ {
		blockSkew += timeIt(func() { runCovs(blk, skewedCovs, specs) })
	}

	t := &Table{
		ID:    "fig18",
		Title: "Impact of aggregate threshold on runtime and cache hit rate",
		Note: fmt.Sprintf("taxi %d rows, level %d(paper)/%d(domain), %d skewed runs; Block reference: base %s ms, skewed %s ms",
			e.base.NumRows(), paperLevel, e.lvl(paperLevel), skewedRuns, ms(blockBase), ms(blockSkew)),
		Header: []string{"threshold", "base_ms", "skewed_ms", "hit_rate_base", "hit_rate_skewed", "cache_bytes", "cached_cells"},
	}

	for _, threshold := range []float64{0, 0.01, 0.02, 0.05, 0.10, 0.25, 0.50, 0.75, 1.00} {
		qc := cachedBlock(blk, threshold)
		// Warm: one full combined pass records statistics.
		runCachedCovs(qc, baseCovs, specs)
		for r := 0; r < skewedRuns; r++ {
			runCachedCovs(qc, skewedCovs, specs)
		}
		qc.Refresh()

		// Median of three measured passes to tame scheduler noise; the
		// metrics come from the last pass.
		const reps = 3
		baseTimes := make([]time.Duration, reps)
		skewTimes := make([]time.Duration, reps)
		var baseMetrics, skewMetrics aggtrie.Metrics
		for rep := 0; rep < reps; rep++ {
			qc.ResetMetrics()
			baseTimes[rep] = timeIt(func() { runCachedCovs(qc, baseCovs, specs) })
			baseMetrics = qc.Metrics()

			qc.ResetMetrics()
			for r := 0; r < skewedRuns; r++ {
				skewTimes[rep] += timeIt(func() { runCachedCovs(qc, skewedCovs, specs) })
			}
			skewMetrics = qc.Metrics()
		}
		baseTime, skewTime := median(baseTimes), median(skewTimes)

		t.AddRow(
			pct(threshold),
			ms(baseTime), ms(skewTime),
			pct(baseMetrics.HitRate()), pct(skewMetrics.HitRate()),
			fmt.Sprintf("%d", qc.Trie().SizeBytes()),
			fmt.Sprintf("%d", qc.Trie().NumCached()),
		)
	}
	return []*Table{t}
}
