package experiments

// PR5 is the query-planner snapshot for the multi-resolution pyramid: on
// the clustered taxi workload it builds a sharded dataset with a coarsening
// pyramid and sweeps the planner's MaxError knob from exact (0) through the
// cell diagonal of each pyramid level, measuring per point the achieved
// level, covering work (cells visited), latency and throughput. Answers
// are checked against the planner's guarantee before any number is
// reported — the count must lie between the exact in-polygon count and
// the count of the polygon dilated by the reported error bound (a broad
// subset per sweep point at test scale, a small one at full bench
// scale; the exhaustive check is pyramid_test.go's) — and the
// MaxError=0 bit-identity plus covering-work monotonicity are asserted
// on the whole workload. cmd/geobench serialises the points to
// BENCH_PR5.json via -perf-json -maxerror.

import (
	"fmt"
	"time"

	"geoblocks"
	"geoblocks/internal/baseline"
	"geoblocks/internal/dataset"
	"geoblocks/internal/store"
	"geoblocks/internal/workload"
)

// PR5Point is one max-error measurement of the planner sweep.
type PR5Point struct {
	// MaxError is the requested spatial error bound in domain units
	// (0 = exact).
	MaxError float64 `json:"max_error"`
	// Level is the grid level the planner answered at; AvgBound is the
	// mean guaranteed error bound actually reported across the workload.
	Level    int     `json:"level"`
	AvgBound float64 `json:"avg_reported_bound"`
	// AvgCells is the mean number of cell aggregates combined per query —
	// the covering work the coarser level saves.
	AvgCells float64 `json:"avg_cells_visited"`
	// AvgLatencyNS and QPS are the serial per-query wall time and
	// throughput of the routed store path.
	AvgLatencyNS int64   `json:"avg_latency_ns"`
	QPS          float64 `json:"qps"`
	// MaxDevFrac is the largest |approx − exact| / exact count deviation
	// observed across the workload (0 at MaxError 0, where answers are
	// bit-identical to the exact path).
	MaxDevFrac float64 `json:"max_count_deviation_frac"`
}

// pr5Level is the base (exact) block level; pr5PyramidLevels coarser
// levels sit below it for the planner to choose from.
const (
	pr5Level         = 14
	pr5PyramidLevels = 8
	pr5SweepLevels   = 6
)

// PR5Perf runs the planner sweep and returns both the rendered table and
// the raw points for JSON serialisation.
func PR5Perf(cfg Config) ([]*Table, []PR5Point) {
	raw := dataset.Generate(dataset.NYCTaxi(), cfg.TaxiRows, cfg.Seed)
	clean := raw.CleanRule()
	bound := raw.Spec.Bound

	ds, err := store.Build("taxi", bound, raw.Spec.Schema, raw.Points, raw.Cols, store.Options{
		Level:         pr5Level,
		ShardLevel:    2,
		PyramidLevels: pr5PyramidLevels,
		Clean:         &clean,
	})
	if err != nil {
		panic(err)
	}

	// Exact reference data for the guarantee check: the same cleaned,
	// sorted base the blocks aggregate.
	base, _, err := raw.Extract(-1)
	if err != nil {
		panic(err)
	}
	dom := base.Domain

	// Mixed workload: neighbourhood-scale polygons plus shard-local ones.
	polys := append(workload.Neighborhoods(bound, cfg.Seed+7),
		workload.ShardLocal(bound, 2, 12, cfg.Seed+8)...)
	reqs := []geoblocks.AggRequest{geoblocks.Count(), geoblocks.Sum("fare_amount")}

	// Sweep: exact, then the cell diagonal of each of the first
	// pr5SweepLevels pyramid levels — each step doubles the admissible
	// error and should halve-to-quarter the covering work.
	maxErrs := []float64{0}
	for lvl := pr5Level - 1; lvl >= pr5Level-pr5SweepLevels && lvl >= 0; lvl-- {
		maxErrs = append(maxErrs, dom.CellDiagonal(lvl))
	}

	exact := make([]geoblocks.Result, len(polys))
	for i, p := range polys {
		if exact[i], err = ds.Query(p, reqs...); err != nil {
			panic(err)
		}
	}
	// Brute-forcing the dilated reference costs two passes over the base
	// table per polygon and sweep point, so the envelope check runs on a
	// subset: a broad one at test scale, a small one at full bench scale
	// (the exhaustive every-answer property check across configurations
	// lives in the repository-root pyramid_test.go suite). The MaxError=0
	// bit-identity and covering-work monotonicity are asserted on the
	// whole workload regardless.
	verify := 48
	if cfg.TaxiRows > 200_000 {
		verify = 6
	}
	if verify > len(polys) {
		verify = len(polys)
	}

	tbl := &Table{
		ID:    "pr5",
		Title: "Query planner: latency, covering work and deviation vs requested error bound (taxi)",
		Note: fmt.Sprintf("%d rows, block level %d, shard level 2, %d pyramid levels; answers spot-checked against their guaranteed bound (48/sweep point at test scale, 6 at full scale)",
			cfg.TaxiRows, pr5Level, pr5PyramidLevels),
		Header: []string{"max_error", "level", "avg bound", "avg cells", "avg us", "qps", "max dev"},
	}
	var points []PR5Point
	prevCells := -1.0
	for _, me := range maxErrs {
		opts := geoblocks.QueryOptions{MaxError: me}

		// Timed pass: enough repetitions to dampen scheduler noise while
		// keeping the quick (test) configuration fast — the workload is
		// ~200 polygons, so even a few repetitions average hundreds of
		// queries per sweep point.
		reps := 10
		if cfg.TaxiRows <= 200_000 {
			reps = 2
		}
		start := time.Now()
		for r := 0; r < reps; r++ {
			for _, p := range polys {
				if _, err := ds.QueryOpts(p, opts, reqs...); err != nil {
					panic(err)
				}
			}
		}
		elapsed := time.Since(start)
		n := reps * len(polys)

		// Measurement + verification pass.
		var cells, bounds, maxDev float64
		lvl := ds.PlanLevel(me)
		for i, p := range polys {
			res, err := ds.QueryOpts(p, opts, reqs...)
			if err != nil {
				panic(err)
			}
			if res.Level != lvl {
				panic(fmt.Sprintf("pr5: planned level %d but answered at %d", lvl, res.Level))
			}
			cells += float64(res.CellsVisited)
			bounds += res.ErrorBound
			if dev := countDevFrac(res.Count, exact[i].Count); dev > maxDev {
				maxDev = dev
			}
			if me == 0 && res.Count != exact[i].Count {
				panic("pr5: MaxError=0 answer differs from the exact path")
			}
			if i < verify {
				truth := baseline.ExactPolygonCount(base.Table, dom, p)
				margin := res.ErrorBound*(1+1e-9) + 1e-12
				upper := baseline.ExactDilatedPolygonCount(base.Table, dom, p, margin)
				if res.Count < truth || res.Count > upper {
					panic(fmt.Sprintf("pr5: count %d outside guaranteed envelope [%d, %d] at max_error %g (bound %g)",
						res.Count, truth, upper, me, res.ErrorBound))
				}
			}
		}
		avgCells := cells / float64(len(polys))
		if prevCells >= 0 && avgCells > prevCells {
			panic(fmt.Sprintf("pr5: covering work grew as the error bound relaxed (%.1f -> %.1f cells)", prevCells, avgCells))
		}
		prevCells = avgCells

		p := PR5Point{
			MaxError:     me,
			Level:        lvl,
			AvgBound:     bounds / float64(len(polys)),
			AvgCells:     avgCells,
			AvgLatencyNS: elapsed.Nanoseconds() / int64(n),
			QPS:          float64(n) / elapsed.Seconds(),
			MaxDevFrac:   maxDev,
		}
		points = append(points, p)
		tbl.AddRow(
			fmt.Sprintf("%.6f", me),
			fmt.Sprintf("%d", p.Level),
			fmt.Sprintf("%.6f", p.AvgBound),
			fmt.Sprintf("%.1f", p.AvgCells),
			fmt.Sprintf("%.1f", float64(p.AvgLatencyNS)/1000),
			fmt.Sprintf("%.0f", p.QPS),
			fmt.Sprintf("%.3f", p.MaxDevFrac),
		)
	}
	return []*Table{tbl}, points
}

// countDevFrac is |approx − exact| / exact, 0 when both are zero.
func countDevFrac(approx, exact uint64) float64 {
	if exact == 0 {
		if approx == 0 {
			return 0
		}
		return 1
	}
	diff := float64(approx) - float64(exact)
	if diff < 0 {
		diff = -diff
	}
	return diff / float64(exact)
}

// PR5 is the Runner entry point.
func PR5(cfg Config) []*Table {
	tables, _ := PR5Perf(cfg)
	return tables
}
