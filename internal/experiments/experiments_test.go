package experiments

import (
	"bytes"
	"os"
	"strconv"
	"strings"
	"testing"

	"geoblocks/internal/geom"
)

// TestMain lets the pr7 experiment re-execute this test binary as a
// serving child process (the helper-process pattern): PR7Perf spawns
// os.Executable() with GEOBENCH_PR7_CHILD set, and the child must run
// one serving scenario instead of the test suite.
func TestMain(m *testing.M) {
	if os.Getenv(pr7EnvMode) != "" {
		PR7ChildMain()
		return
	}
	os.Exit(m.Run())
}

// TestAllExperimentsRun executes every registered experiment at Quick
// scale and sanity-checks the produced tables. This is the integration
// test of the whole pipeline: datasets, extract, builds, all baselines,
// covering, cache and measurement plumbing.
func TestAllExperimentsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are slow; skipped with -short")
	}
	cfg := Quick()
	for _, r := range All() {
		r := r
		t.Run(r.ID, func(t *testing.T) {
			tables := r.Run(cfg)
			if len(tables) == 0 {
				t.Fatal("no tables produced")
			}
			for _, tab := range tables {
				if len(tab.Rows) == 0 {
					t.Fatalf("table %q has no rows", tab.Title)
				}
				for _, row := range tab.Rows {
					if len(row) != len(tab.Header) {
						t.Fatalf("table %q row width %d != header %d", tab.Title, len(row), len(tab.Header))
					}
				}
				var buf bytes.Buffer
				tab.Render(&buf)
				if !strings.Contains(buf.String(), tab.Title) {
					t.Fatal("render lost the title")
				}
			}
		})
	}
}

func TestFindRunner(t *testing.T) {
	if _, ok := Find("fig12"); !ok {
		t.Fatal("fig12 not found")
	}
	if _, ok := Find("nope"); ok {
		t.Fatal("bogus id found")
	}
}

func TestDomainLevelCalibration(t *testing.T) {
	nyc := geom.Rect{Min: geom.Pt(-74.30, 40.45), Max: geom.Pt(-73.65, 41.00)}
	us := geom.Rect{Min: geom.Pt(-125.0, 24.5), Max: geom.Pt(-66.5, 49.5)}

	// Paper level 17 over NYC is ~94m cells; our NYC domain diagonal is
	// ~82km, so the equal-size domain level must be ~10.
	if got := DomainLevel(nyc, 17); got < 9 || got > 11 {
		t.Fatalf("NYC paper level 17 -> domain level %d, want ~10", got)
	}
	// Levels translate monotonically.
	prev := -1
	for pl := 13; pl <= 21; pl++ {
		l := DomainLevel(nyc, pl)
		if l < prev {
			t.Fatalf("level translation not monotonic at paper level %d", pl)
		}
		prev = l
	}
	// Paper level 11 over the US (~6km cells): US diagonal ~5600km ->
	// level ~10.
	if got := DomainLevel(us, 11); got < 9 || got > 11 {
		t.Fatalf("US paper level 11 -> domain level %d, want ~10", got)
	}
}

func TestS2DiagonalMeters(t *testing.T) {
	if got := S2DiagonalMeters(13); got != 1500 {
		t.Fatalf("level 13 diag = %g", got)
	}
	if got := S2DiagonalMeters(14); got != 750 {
		t.Fatalf("level 14 diag = %g", got)
	}
	if got := S2DiagonalMeters(11); got != 6000 {
		t.Fatalf("level 11 diag = %g", got)
	}
}

// TestFig16ErrorShrinksWithLevel checks the headline sensitivity result:
// finer levels give lower relative error (paper Fig. 16).
func TestFig16ErrorShrinksWithLevel(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	tables := Fig16(Quick())
	tab := tables[0]
	var errs []float64
	for _, row := range tab.Rows {
		v, err := strconv.ParseFloat(strings.TrimSuffix(row[3], "%"), 64)
		if err != nil {
			t.Fatalf("bad error cell %q", row[3])
		}
		errs = append(errs, v)
	}
	if errs[0] <= errs[len(errs)-1] {
		t.Fatalf("error did not shrink from coarsest (%g%%) to finest (%g%%)", errs[0], errs[len(errs)-1])
	}
}

// TestFig18HitRateGrows checks that the skewed workload reaches a high hit
// rate once the cache budget is a few percent (paper Fig. 18).
func TestFig18HitRateGrows(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	tab := Fig18(Quick())[0]
	parse := func(s string) float64 {
		v, err := strconv.ParseFloat(strings.TrimSuffix(s, "%"), 64)
		if err != nil {
			t.Fatalf("bad cell %q", s)
		}
		return v
	}
	// Row 0 is threshold 0: no hits at all.
	if got := parse(tab.Rows[0][4]); got != 0 {
		t.Fatalf("zero budget skewed hit rate = %g", got)
	}
	// The largest budget must give (near-)full skewed hit rate.
	last := tab.Rows[len(tab.Rows)-1]
	if got := parse(last[4]); got < 95 {
		t.Fatalf("full budget skewed hit rate = %g%%, want ~100%%", got)
	}
}

func TestCoveringCellsHelper(t *testing.T) {
	if got := coveringCells(nil); got != 0 {
		t.Fatalf("empty = %d", got)
	}
}
