package experiments

import (
	"fmt"
	"time"

	"geoblocks/internal/baseline"
	"geoblocks/internal/btree"
	"geoblocks/internal/core"
	"geoblocks/internal/dataset"
	"geoblocks/internal/phtree"
	"geoblocks/internal/workload"
)

// Fig13 reproduces "Scaling with increasing input sizes": size overhead
// (13a) and query runtime normalised to the smallest input (13b) as the
// taxi dataset grows. The aR-tree is omitted because of its build time,
// exactly as in the paper. The paper's headline shapes: the BTree overhead
// is constant, the Block overhead shrinks (cell count is governed by the
// spatial distribution, not row count), and Block query runtime stays
// nearly flat while the on-the-fly baselines grow linearly.
func Fig13(cfg Config) []*Table {
	const paperLevel = 17
	sizes := scalingSizes(cfg)

	overhead := &Table{
		ID:     "fig13a",
		Title:  "Size overhead with increasing input size",
		Header: []string{"rows", "Block", "BTree", "PHTree", "Block_cells"},
	}
	runtime := &Table{
		ID:    "fig13b",
		Title: "Query runtime increase relative to smallest input",
		Note:  "base workload (each neighborhood once); factors normalised per approach",
		Header: []string{"rows", "BinarySearch", "Block", "BTree", "PHTree",
			"BinarySearch_us", "Block_us"},
	}

	var first [4]time.Duration
	for si, n := range sizes {
		raw := dataset.Generate(dataset.NYCTaxi(), n, cfg.Seed)
		base, _, err := raw.Extract(-1)
		if err != nil {
			panic(err)
		}
		e := &env{raw: raw, base: base, dom: raw.Domain(),
			polys: workload.Neighborhoods(raw.Spec.Bound, cfg.Seed+100)}

		blk, err := core.Build(base, core.BuildOptions{Level: DomainLevel(raw.Spec.Bound, paperLevel)})
		if err != nil {
			panic(err)
		}
		bt := btree.NewIndex(base.Table)
		ph := phtree.New(base.Table, e.dom.Bound(), e.pointAt)
		bin := baseline.NewBinarySearch(base.Table)

		baseBytes := float64(base.Table.SizeBytes())
		overhead.AddRow(
			fmt.Sprintf("%d", n),
			pct(float64(blk.SizeBytes())/baseBytes),
			pct(float64(bt.SizeBytes())/baseBytes),
			pct(float64(ph.SizeBytes())/baseBytes),
			fmt.Sprintf("%d", blk.NumCells()),
		)

		covs := e.coverings(e.polys, paperLevel)
		rects := interiorRects(e.polys)
		specs := e.standardSpecs(4)

		times := [4]time.Duration{
			timeIt(func() {
				for _, cov := range covs {
					bin.AggregateCovering(cov, specs)
				}
			}),
			timeIt(func() {
				for _, cov := range covs {
					if _, err := blk.SelectCovering(cov, specs); err != nil {
						panic(err)
					}
				}
			}),
			timeIt(func() {
				for _, cov := range covs {
					bt.AggregateCovering(cov, specs)
				}
			}),
			timeIt(func() {
				for _, r := range rects {
					if r.IsValid() {
						ph.AggregateWindow(r, specs)
					}
				}
			}),
		}
		if si == 0 {
			first = times
		}
		factor := func(i int) string {
			if first[i] <= 0 {
				return "n/a"
			}
			return fmt.Sprintf("%.2f", float64(times[i])/float64(first[i]))
		}
		runtime.AddRow(
			fmt.Sprintf("%d", n),
			factor(0), factor(1), factor(2), factor(3),
			us(times[0]), us(times[1]),
		)
	}
	return []*Table{overhead, runtime}
}

func scalingSizes(cfg Config) []int {
	base := cfg.TaxiRows
	if base >= 500_000 {
		return []int{base / 10, base / 4, base / 2, base, base * 2}
	}
	return []int{base / 4, base / 2, base}
}
