package experiments

// PR10 is the join-operator snapshot: on the taxi dataset it measures
// the shared-grid join (internal/store Join) against N independent
// queries over the same 500-polygon workload — the paper-repo claim
// "one pass over the dataset instead of N" made concrete — at both
// tiers: in-process (store.Join vs a QueryOpts loop, isolating covering
// and kernel sharing) and at the serving tier (one POST /v1/join vs 500
// independent POST /v1/query calls over a kept-alive connection, the
// comparison a client actually experiences, where per-request transport
// and JSON costs are real and the join amortises them). It then
// establishes the serving tier's first latency-percentile baseline by
// driving the full HTTP stack (httpapi over httptest) with the
// loadharness closed loop at 8 concurrent workers for three workloads:
// plain (uncached) queries, cached queries, and joins. Correctness is
// asserted in-run before any number is reported: every join answer must
// be bit-identical to its sequential twin, the shared grid must answer
// every polygon without falling back to the single-region coverer, the
// warm join must hit the result cache on every polygon, and at full
// scale the join must win at both tiers — strictly in-process, by at
// least 5x over HTTP. cmd/geobench serialises everything to
// BENCH_PR10.json via -perf-json -join.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"time"

	"geoblocks"
	"geoblocks/internal/dataset"
	"geoblocks/internal/geom"
	"geoblocks/internal/httpapi"
	"geoblocks/internal/loadharness"
	"geoblocks/internal/store"
	"geoblocks/internal/workload"
)

const (
	// pr10Level matches the serving daemon's default grid level; the
	// pyramid gives the planner four coarser levels.
	pr10Level   = 14
	pr10Pyramid = 5
	// pr10MaxError plans the join at the pyramid's coarsest level over
	// the NYC bound (level-9 cell diagonal ≈ 1.7e-3 degrees ≈ 150 m),
	// the tract-level approximate regime the join operator targets.
	pr10MaxError = 0.002
	// pr10Polys is the headline workload size: the ISSUE's "aggregate
	// taxi pickups per NYC census tract in one request" scale. The 500
	// polygons are drawn from a pr10TractPool-tract pool with the serving
	// tier's Zipfian skew — the dashboard fan-in shape the load baseline
	// below measures, where hot tracts repeat across one batch.
	pr10Polys     = 500
	pr10TractPool = 150
	// pr10RadiusMin/Max size the polygons (degrees): census-tract-sized,
	// a few shared-grid cells across — wide enough that interior grid
	// cells exist, small enough that the shared grid never exceeds its
	// fallback budget (asserted in-run).
	pr10RadiusMin = 0.006
	pr10RadiusMax = 0.014
	// pr10MinSpeedup is the in-run acceptance floor for the join against
	// 500 independent queries at the serving tier, asserted at full
	// scale. In-process the join must win strictly; the 5x floor lives
	// where the claim matters to a client, with real per-request costs.
	pr10MinSpeedup = 5.0
	// pr10FullScaleRows gates the speedup floor: below this the dataset
	// is a unit-test miniature whose constant costs drown the effect.
	pr10FullScaleRows = 200_000
	// pr10LoadWorkers is the closed-loop concurrency of the percentile
	// baseline; pr10LoadPool/pr10LoadSkew shape its Zipfian stream and
	// pr10JoinBatch the polygons per join request.
	pr10LoadWorkers = 8
	pr10LoadPool    = 200
	pr10LoadSkew    = 1.5
	pr10JoinBatch   = 64
)

// PR10JoinPoint is one configuration of the join-vs-sequential bench.
type PR10JoinPoint struct {
	// Config names the pass. In-process: "sequential" (N independent
	// uncached QueryOpts calls), "join" (one uncached shared-grid join),
	// "join-cold" (cache on, first pass), "join-warm" (cache on, steady
	// state). Serving tier: "http-sequential" (N independent POST
	// /v1/query calls, one kept-alive client) and "http-join" (one POST
	// /v1/join with all N polygons).
	Config string `json:"config"`
	// Polygons is the workload size; UniquePolygons the distinct
	// geometries after the join's exact dedup (the sequential baseline
	// answers all Polygons independently either way); ElapsedNS the pass
	// wall time; PerPolygonUS the per-polygon cost.
	Polygons       int     `json:"polygons"`
	UniquePolygons int     `json:"unique_polygons,omitempty"`
	ElapsedNS      int64   `json:"elapsed_ns"`
	PerPolygonUS   float64 `json:"per_polygon_us"`
	// Speedup is the matching sequential baseline's elapsed time over
	// this pass's: in-process passes compare against "sequential", HTTP
	// passes against "http-sequential".
	Speedup float64 `json:"speedup_vs_sequential"`
	// Level is the planned pyramid level; GridLevel the shared grid's.
	// Zero on HTTP passes (the wire reports per-polygon levels instead).
	Level     int `json:"level"`
	GridLevel int `json:"grid_level"`
	// InteriorFraction is the share of (polygon, grid cell) pairs
	// answered wholesale with zero point-in-polygon tests; Fallbacks
	// counts polygons the shared grid handed back to the single-region
	// coverer (asserted zero).
	InteriorFraction float64 `json:"interior_fraction"`
	Fallbacks        int     `json:"fallbacks"`
	// CacheHits counts per-polygon result-cache hits inside the pass.
	CacheHits int `json:"cache_hits"`
}

// PR10LoadPoint is one workload's percentile report from the closed-loop
// HTTP baseline.
type PR10LoadPoint struct {
	// Workload is "query-nocache", "query-cached" or "join".
	Workload string `json:"workload"`
	loadharness.Report
}

// PR10Perf runs the join bench and the percentile baseline, returning
// the rendered tables and both raw point sets.
func PR10Perf(cfg Config) ([]*Table, []PR10JoinPoint, []PR10LoadPoint) {
	raw := dataset.Generate(dataset.NYCTaxi(), cfg.TaxiRows, cfg.Seed)
	bound := raw.Spec.Bound
	clean := raw.CleanRule()
	ds, err := store.Build("taxi", bound, raw.Spec.Schema, raw.Points, raw.Cols, store.Options{
		Level:         pr10Level,
		ShardLevel:    2,
		PyramidLevels: pr10Pyramid,
		// Admission floor 0: the cold join pass admits every footprint,
		// so the warm pass must hit on every polygon (asserted).
		ResultCacheBytes:   64 << 20,
		ResultCacheMinHits: 0,
		Clean:              &clean,
	})
	if err != nil {
		panic(err)
	}

	// The tract workload: a pool of small tract polygons spread over the
	// bound, two thirds clustered on the data's hotspots, from which the
	// 500-polygon batch is drawn with the serving tier's Zipfian skew —
	// one dashboard refresh fanning in over the hot tract set, so the
	// join sees both overlapping coverings and repeated geometries.
	rng := rand.New(rand.NewSource(cfg.Seed + 10))
	pool := make([]*geom.Polygon, pr10TractPool)
	for i := range pool {
		r := pr10RadiusMin + rng.Float64()*(pr10RadiusMax-pr10RadiusMin)
		c := geom.Pt(
			bound.Min.X+r+rng.Float64()*(bound.Width()-2*r),
			bound.Min.Y+r+rng.Float64()*(bound.Height()-2*r),
		)
		if i%3 != 0 {
			c = geom.Pt(
				clamp(-73.98+rng.NormFloat64()*0.08, bound.Min.X+r, bound.Max.X-r),
				clamp(40.74+rng.NormFloat64()*0.06, bound.Min.Y+r, bound.Max.Y-r),
			)
		}
		pool[i] = geom.RegularPolygon(c, r, 4+rng.Intn(5))
	}
	zipf := rand.NewZipf(rng, pr10LoadSkew, 1, uint64(len(pool)-1))
	polys := make([]*geom.Polygon, pr10Polys)
	for i := range polys {
		polys[i] = pool[int(zipf.Uint64())]
	}
	reqs := []geoblocks.AggRequest{
		geoblocks.Count(), geoblocks.Sum("fare_amount"),
		geoblocks.Min("fare_amount"), geoblocks.Max("fare_amount"),
	}
	uncached := geoblocks.QueryOptions{MaxError: pr10MaxError, DisableCache: true}

	// Sequential baseline: N independent queries, the pre-join batch
	// cost (cache disabled on both sides — the comparison is covering
	// and kernel work, not cache luck).
	seqResults := make([]geoblocks.Result, len(polys))
	seqElapsed := timeIt(func() {
		for i, p := range polys {
			res, err := ds.QueryOpts(p, uncached, reqs...)
			if err != nil {
				panic(err)
			}
			seqResults[i] = res
		}
	})

	joinPass := func(config string, opts geoblocks.QueryOptions) (PR10JoinPoint, []geoblocks.Result, store.JoinStats) {
		var results []geoblocks.Result
		var stats store.JoinStats
		elapsed := timeIt(func() {
			var err error
			results, stats, err = ds.Join(polys, opts, reqs...)
			if err != nil {
				panic(err)
			}
		})
		return PR10JoinPoint{
			Config:           config,
			Polygons:         len(polys),
			UniquePolygons:   stats.UniquePolygons,
			ElapsedNS:        elapsed.Nanoseconds(),
			PerPolygonUS:     float64(elapsed.Microseconds()) / float64(len(polys)),
			Speedup:          float64(seqElapsed) / float64(elapsed),
			Level:            stats.Level,
			GridLevel:        stats.GridLevel,
			InteriorFraction: stats.InteriorFraction(),
			Fallbacks:        stats.Fallbacks,
			CacheHits:        stats.CacheHits,
		}, results, stats
	}

	joinPoint, joinResults, joinStats := joinPass("join", uncached)
	for i := range joinResults {
		assertPR10Identical(i, joinResults[i], seqResults[i])
	}
	if joinStats.Fallbacks != 0 {
		panic(fmt.Sprintf("pr10: %d of %d polygons fell back to the single-region coverer", joinStats.Fallbacks, len(polys)))
	}
	if joinStats.Level >= pr10Level {
		panic(fmt.Sprintf("pr10: max_error %g did not plan below full resolution (level %d)", pr10MaxError, joinStats.Level))
	}

	cached := geoblocks.QueryOptions{MaxError: pr10MaxError}
	coldPoint, coldResults, _ := joinPass("join-cold", cached)
	warmPoint, warmResults, warmStats := joinPass("join-warm", cached)
	for i := range coldResults {
		assertPR10Identical(i, coldResults[i], seqResults[i])
		assertPR10Identical(i, warmResults[i], seqResults[i])
	}
	if warmStats.CacheHits != warmStats.UniquePolygons {
		panic(fmt.Sprintf("pr10: warm join hit the result cache on %d of %d unique polygons", warmStats.CacheHits, warmStats.UniquePolygons))
	}

	// Serving tier: the same comparison as a client sees it, over the
	// full HTTP stack. One server instance carries the speedup pair and
	// the percentile baseline below.
	st := store.New()
	if err := st.Add(ds); err != nil {
		panic(err)
	}
	srv := httptest.NewServer(httpapi.NewHandler(st, httpapi.Config{}))
	defer srv.Close()
	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        pr10LoadWorkers * 2,
		MaxIdleConnsPerHost: pr10LoadWorkers * 2,
	}}
	rings := make([][][2]float64, len(polys))
	for i, p := range polys {
		outer := p.Outer()
		ring := make([][2]float64, len(outer))
		for j, v := range outer {
			ring[j] = [2]float64{v.X, v.Y}
		}
		rings[i] = ring
	}
	httpSeqPoint, httpJoinPoint := pr10HTTPPair(srv, client, rings)

	if cfg.TaxiRows >= pr10FullScaleRows {
		if joinPoint.Speedup <= 1 {
			panic(fmt.Sprintf("pr10: in-process join speedup %.2fx does not beat the sequential loop at %d rows", joinPoint.Speedup, cfg.TaxiRows))
		}
		if httpJoinPoint.Speedup < pr10MinSpeedup {
			panic(fmt.Sprintf("pr10: serving-tier join speedup %.1fx below the %.0fx floor at %d rows", httpJoinPoint.Speedup, pr10MinSpeedup, cfg.TaxiRows))
		}
	}

	points := []PR10JoinPoint{
		{
			Config:       "sequential",
			Polygons:     len(polys),
			ElapsedNS:    seqElapsed.Nanoseconds(),
			PerPolygonUS: float64(seqElapsed.Microseconds()) / float64(len(polys)),
			Speedup:      1,
			Level:        joinStats.Level,
		},
		joinPoint, coldPoint, warmPoint, httpSeqPoint, httpJoinPoint,
	}

	joinTbl := &Table{
		ID:    "pr10",
		Title: "Shared-grid join vs N independent queries (taxi)",
		Note: fmt.Sprintf("%d rows, block level %d, shard level 2, %d tract polygons drawn Zipfian (s=%.1f) from a %d-tract pool (%d unique in this batch), max_error %g (planned level %d, grid level %d); every join answer asserted bit-identical to its sequential twin, zero coverer fallbacks; http rows replay the comparison through the serving stack (%d POST /v1/query vs one POST /v1/join), where the %.0fx floor is asserted",
			cfg.TaxiRows, pr10Level, len(polys), pr10LoadSkew, pr10TractPool, joinStats.UniquePolygons, pr10MaxError, joinStats.Level, joinStats.GridLevel, len(polys), pr10MinSpeedup),
		Header: []string{"config", "polygons", "unique", "total ms", "per-poly us", "interior", "cache hits", "speedup"},
	}
	for _, p := range points {
		interior, hits := pct(p.InteriorFraction), fmt.Sprintf("%d", p.CacheHits)
		unique := fmt.Sprintf("%d", p.UniquePolygons)
		if strings.HasPrefix(p.Config, "http") {
			interior, hits = "-", "-"
		}
		if p.UniquePolygons == 0 {
			unique = "-"
		}
		joinTbl.AddRow(
			p.Config,
			fmt.Sprintf("%d", p.Polygons),
			unique,
			fmt.Sprintf("%.1f", float64(p.ElapsedNS)/1e6),
			fmt.Sprintf("%.1f", p.PerPolygonUS),
			interior,
			hits,
			fmt.Sprintf("%.1fx", p.Speedup),
		)
	}

	loadPoints := pr10LoadBaseline(cfg, srv, client, bound)
	loadTbl := &Table{
		ID:    "pr10-load",
		Title: "Serving-tier latency percentiles under concurrent load (closed loop, HTTP)",
		Note: fmt.Sprintf("%d workers over the full httpapi stack, %d-polygon Zipfian pool at s=%.1f, joins of %d polygons/request; open-loop mode and live daemons via cmd/loadgen",
			pr10LoadWorkers, pr10LoadPool, pr10LoadSkew, pr10JoinBatch),
		Header: []string{"workload", "requests", "qps", "p50 ms", "p95 ms", "p99 ms", "max ms"},
	}
	for _, p := range loadPoints {
		loadTbl.AddRow(
			p.Workload,
			fmt.Sprintf("%d", p.Requests),
			fmt.Sprintf("%.0f", p.QPS),
			fmt.Sprintf("%.3f", p.P50MS),
			fmt.Sprintf("%.3f", p.P95MS),
			fmt.Sprintf("%.3f", p.P99MS),
			fmt.Sprintf("%.3f", p.MaxMS),
		)
	}
	return []*Table{joinTbl, loadTbl}, points, loadPoints
}

// pr10Body is the wire form shared by /v1/query and /v1/join.
type pr10Body struct {
	Dataset  string              `json:"dataset"`
	Polygon  [][2]float64        `json:"polygon,omitempty"`
	Polygons [][][2]float64      `json:"polygons,omitempty"`
	Aggs     []map[string]string `json:"aggs"`
	MaxError float64             `json:"max_error"`
	NoCache  bool                `json:"no_cache,omitempty"`
}

// pr10Post sends one request and checks for 200, draining the body so
// the connection is reused.
func pr10Post(client *http.Client, base, endpoint string, b pr10Body) error {
	buf, err := json.Marshal(b)
	if err != nil {
		return err
	}
	resp, err := client.Post(base+endpoint, "application/json", bytes.NewReader(buf))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: status %d", endpoint, resp.StatusCode)
	}
	return nil
}

// pr10HTTPPair measures the join claim where a client experiences it: a
// client holding N polygons either issues N independent POST /v1/query
// calls back to back over a kept-alive connection (the pre-join
// protocol) or one POST /v1/join carrying all N. Both sides bypass the
// result cache, use the same aggregates and the same max_error; the
// sequential side runs once (N requests is its own repetition), the
// join side takes the best of three.
func pr10HTTPPair(srv *httptest.Server, client *http.Client, rings [][][2]float64) (seqPt, joinPt PR10JoinPoint) {
	aggs := []map[string]string{
		{"func": "count"}, {"func": "sum", "col": "fare_amount"},
		{"func": "min", "col": "fare_amount"}, {"func": "max", "col": "fare_amount"},
	}
	post := func(endpoint string, b pr10Body) {
		if err := pr10Post(client, srv.URL, endpoint, b); err != nil {
			panic(fmt.Sprintf("pr10: %v", err))
		}
	}
	seqElapsed := timeIt(func() {
		for _, ring := range rings {
			post("/v1/query", pr10Body{Dataset: "taxi", Polygon: ring, Aggs: aggs, MaxError: pr10MaxError, NoCache: true})
		}
	})
	var joinElapsed time.Duration
	for rep := 0; rep < 3; rep++ {
		e := timeIt(func() {
			post("/v1/join", pr10Body{Dataset: "taxi", Polygons: rings, Aggs: aggs, MaxError: pr10MaxError, NoCache: true})
		})
		if rep == 0 || e < joinElapsed {
			joinElapsed = e
		}
	}
	n := len(rings)
	seqPt = PR10JoinPoint{
		Config:       "http-sequential",
		Polygons:     n,
		ElapsedNS:    seqElapsed.Nanoseconds(),
		PerPolygonUS: float64(seqElapsed.Microseconds()) / float64(n),
		Speedup:      1,
	}
	joinPt = PR10JoinPoint{
		Config:       "http-join",
		Polygons:     n,
		ElapsedNS:    joinElapsed.Nanoseconds(),
		PerPolygonUS: float64(joinElapsed.Microseconds()) / float64(n),
		Speedup:      float64(seqElapsed) / float64(joinElapsed),
	}
	return seqPt, joinPt
}

// pr10LoadBaseline drives the full HTTP stack with the loadharness
// closed loop: plain queries, cached queries, then joins. Every request
// must answer 200 (errors fail the run via the report check below).
func pr10LoadBaseline(cfg Config, srv *httptest.Server, client *http.Client, bound geom.Rect) []PR10LoadPoint {
	pool := workload.ZipfianHotspot(bound, pr10LoadPool, pr10LoadSkew, cfg.Seed+11).Pool()
	rings := make([][][2]float64, len(pool))
	for i, p := range pool {
		outer := p.Outer()
		ring := make([][2]float64, len(outer))
		for j, v := range outer {
			ring[j] = [2]float64{v.X, v.Y}
		}
		rings[i] = ring
	}
	aggs := []map[string]string{
		{"func": "count"}, {"func": "sum", "col": "fare_amount"},
	}

	duration := 2500 * time.Millisecond
	if cfg.TaxiRows < pr10FullScaleRows {
		duration = 800 * time.Millisecond
	}
	zipfs := make([]*rand.Zipf, pr10LoadWorkers)
	for w := range zipfs {
		r := rand.New(rand.NewSource(cfg.Seed + int64(w)*7919 + 23))
		zipfs[w] = rand.NewZipf(r, pr10LoadSkew, 1, uint64(len(pool)-1))
	}
	post := func(endpoint string, b pr10Body) error {
		return pr10Post(client, srv.URL, endpoint, b)
	}

	runs := []struct {
		workload string
		fn       func(w int) error
	}{
		{"query-nocache", func(w int) error {
			return post("/v1/query", pr10Body{Dataset: "taxi", Polygon: rings[int(zipfs[w].Uint64())], Aggs: aggs, MaxError: pr10MaxError, NoCache: true})
		}},
		{"query-cached", func(w int) error {
			return post("/v1/query", pr10Body{Dataset: "taxi", Polygon: rings[int(zipfs[w].Uint64())], Aggs: aggs, MaxError: pr10MaxError})
		}},
		{"join", func(w int) error {
			ps := make([][][2]float64, pr10JoinBatch)
			for i := range ps {
				ps[i] = rings[int(zipfs[w].Uint64())]
			}
			return post("/v1/join", pr10Body{Dataset: "taxi", Polygons: ps, Aggs: aggs, MaxError: pr10MaxError})
		}},
	}
	out := make([]PR10LoadPoint, 0, len(runs))
	for _, r := range runs {
		rep := loadharness.RunClosed(pr10LoadWorkers, duration, r.fn)
		if rep.Errors > 0 {
			panic(fmt.Sprintf("pr10: %d of %d %s requests failed", rep.Errors, rep.Requests, r.workload))
		}
		if rep.Requests == 0 {
			panic(fmt.Sprintf("pr10: %s recorded no requests", r.workload))
		}
		out = append(out, PR10LoadPoint{Workload: r.workload, Report: rep})
	}
	return out
}

// assertPR10Identical panics unless a join answer matches its sequential
// twin bit for bit — the single-node join's full contract (the dataset
// carries no per-shard aggregate cache, so even SUM is reassociated in
// the identical order).
func assertPR10Identical(i int, got, want geoblocks.Result) {
	if got.Count != want.Count || got.Level != want.Level || got.ErrorBound != want.ErrorBound {
		panic(fmt.Sprintf("pr10: polygon %d count/level/bound diverge from the sequential twin", i))
	}
	for k := range want.Values {
		if math.Float64bits(got.Values[k]) != math.Float64bits(want.Values[k]) {
			panic(fmt.Sprintf("pr10: polygon %d value %d = %v, sequential twin %v", i, k, got.Values[k], want.Values[k]))
		}
	}
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// PR10 is the Runner entry point.
func PR10(cfg Config) []*Table {
	tables, _, _ := PR10Perf(cfg)
	return tables
}
