package experiments

import (
	"fmt"
	"time"

	"geoblocks/internal/cellid"
	"geoblocks/internal/workload"
)

// Fig10 reproduces "Runtime with increasing number of aggregates": the
// combined workload (base once + skewed four times) is queried for 1, 2, 4
// and 8 aggregates with BinarySearch, Block and BTree. The paper omits the
// PH-tree and aR-tree here because their rectangular approximation of the
// skewed workload blows up their runtime.
func Fig10(cfg Config) []*Table {
	const paperLevel = 17
	e := newTaxiEnv(cfg, paperLevel)
	a := e.buildApproaches(paperLevel, false, false)

	skewed := workload.SkewedSubset(e.polys, 0.10, cfg.Seed+200)
	combined := workload.Combined(e.polys, skewed, 4)
	covs := e.coverings(combined, paperLevel)

	t := &Table{
		ID:    "fig10",
		Title: "Runtime with increasing number of aggregates (combined workload)",
		Note: fmt.Sprintf("taxi %d rows, paper level %d (domain level %d); runtime totals over %d queries",
			e.base.NumRows(), paperLevel, e.lvl(paperLevel), len(combined)),
		Header: []string{"aggregates", "BinarySearch_us", "Block_us", "BTree_us", "speedup_vs_BinarySearch", "speedup_vs_BTree"},
	}

	for _, numAggs := range []int{1, 2, 4, 8} {
		specs := e.standardSpecs(numAggs)
		var rBin, rBlk, rBT time.Duration

		rBin = timeIt(func() {
			for _, cov := range covs {
				a.binary.AggregateCovering(cov, specs)
			}
		})
		rBlk = timeIt(func() {
			for _, cov := range covs {
				if _, err := a.block.SelectCovering(cov, specs); err != nil {
					panic(err)
				}
			}
		})
		rBT = timeIt(func() {
			for _, cov := range covs {
				a.btree.AggregateCovering(cov, specs)
			}
		})

		t.AddRow(
			fmt.Sprintf("%d", numAggs),
			us(rBin), us(rBlk), us(rBT),
			speedup(rBin, rBlk), speedup(rBT, rBlk),
		)
	}
	return []*Table{t}
}

// Fig12 reproduces "Query runtime for varying selectivity": a single
// polygon per selectivity point, covering the share of rides given in the
// first column, queried by every approach. The PH-tree and aR-tree receive
// the polygon's rectangular region (the selectivity polygons are
// rectangles, as in our reading of the paper's artificial selection).
// BlockQC uses a 2% cache warmed by one unmeasured pass, reproducing the
// paper's configuration.
func Fig12(cfg Config) []*Table {
	const paperLevel = 17
	const cacheThreshold = 0.02
	const reps = 5
	e := newTaxiEnv(cfg, paperLevel)
	a := e.buildApproaches(paperLevel, true, true)
	qc := cachedBlock(a.block, cacheThreshold)

	specs := e.standardSpecs(4)
	t := &Table{
		ID:    "fig12",
		Title: "Query runtime for varying selectivity",
		Note: fmt.Sprintf("taxi %d rows, level %d(paper)/%d(domain); per-query runtime, average of %d runs; PHTree/aRTree query the same rectangle",
			e.base.NumRows(), paperLevel, e.lvl(paperLevel), reps),
		Header: []string{"selectivity", "BinarySearch_us", "Block_us", "BlockQC_us", "BTree_us", "PHTree_us", "aRTree_us"},
	}

	cov := e.coverer(paperLevel)
	for _, sel := range []float64{0.001, 0.01, 0.05, 0.10, 0.25, 0.50, 0.75, 1.00} {
		rect := workload.SelectivityRect(e.base.Table, e.dom, sel)
		covering := cov.CoverRect(rect).Cells

		// Warm the query cache with an unmeasured pass.
		if _, err := qc.Select(covering, specs); err != nil {
			panic(err)
		}
		qc.Refresh()

		rBin := avgTime(reps, func() { a.binary.AggregateCovering(covering, specs) })
		rBlk := avgTime(reps, func() {
			if _, err := a.block.SelectCovering(covering, specs); err != nil {
				panic(err)
			}
		})
		rQC := avgTime(reps, func() {
			if _, err := qc.Select(covering, specs); err != nil {
				panic(err)
			}
		})
		rBT := avgTime(reps, func() { a.btree.AggregateCovering(covering, specs) })
		rPH := avgTime(reps, func() { a.ph.AggregateWindow(rect, specs) })
		rART := avgTime(reps, func() { a.art.AggregateRect(rect, specs) })

		t.AddRow(pct(sel), us(rBin), us(rBlk), us(rQC), us(rBT), us(rPH), us(rART))
	}
	return []*Table{t}
}

func avgTime(reps int, fn func()) time.Duration {
	var total time.Duration
	for i := 0; i < reps; i++ {
		total += timeIt(fn)
	}
	return total / time.Duration(reps)
}

// coveringCells is a small helper used by tests.
func coveringCells(covs [][]cellid.ID) int {
	n := 0
	for _, c := range covs {
		n += len(c)
	}
	return n
}
