// Package experiments regenerates every table and figure of the paper's
// evaluation (Sec. 4) on the synthetic stand-in datasets. Each experiment
// is a function from a Config to one or more result Tables that print the
// same rows/series the paper reports; cmd/geobench runs them from the
// command line and the repository-root benchmarks wrap them in testing.B.
//
// Absolute numbers differ from the paper (different hardware, scaled
// datasets, planar decomposition), but the comparisons are set up so the
// paper's qualitative results — who wins, by roughly what factor, where
// crossovers happen — are reproduced. EXPERIMENTS.md records
// paper-vs-measured for every experiment.
package experiments

import (
	"fmt"
	"io"
	"math"
	"strings"
	"time"

	"geoblocks/internal/cellid"
	"geoblocks/internal/geom"
)

// Config scales the experiments. Defaults (via Default) target a laptop:
// the paper's 12M-row taxi dataset is scaled to 1M rows, tweets and OSM
// proportionally. Quick returns a configuration small enough for unit
// tests.
type Config struct {
	// TaxiRows is the NYC taxi dataset size (paper: 12M; scaled).
	TaxiRows int
	// TweetRows is the US tweets dataset size (paper: 8M; scaled).
	TweetRows int
	// OSMRows is the OSM Americas dataset size (paper: 389M; scaled).
	OSMRows int
	// Seed makes all generation and workload selection deterministic.
	Seed int64
}

// Default returns the standard laptop-scale configuration.
func Default() Config {
	return Config{TaxiRows: 1_000_000, TweetRows: 500_000, OSMRows: 1_500_000, Seed: 1}
}

// Quick returns a reduced configuration for tests.
func Quick() Config {
	return Config{TaxiRows: 60_000, TweetRows: 30_000, OSMRows: 50_000, Seed: 1}
}

// S2DiagonalMeters returns the approximate metric cell diagonal of the
// paper's S2 levels (s2geometry.io cell statistics): ~1.5 km at level 13,
// halving per level (level 17 ≈ 94 m, level 21 ≈ 6 m). The paper
// parameterises GeoBlocks by these levels; our quadtree subdivides each
// dataset's bounding box instead of the whole Earth, so experiments
// translate paper levels to domain levels of equal metric cell size via
// DomainLevel.
func S2DiagonalMeters(paperLevel int) float64 {
	return 1500 * math.Pow(2, float64(13-paperLevel))
}

// DomainLevel maps a paper (S2) level to the domain level over bound with
// the closest metric cell diagonal, using a local equirectangular
// approximation at the bound's mid latitude.
func DomainLevel(bound geom.Rect, paperLevel int) int {
	mx, my := metersPerDegree(bound)
	diag := math.Hypot(bound.Width()*mx, bound.Height()*my)
	target := S2DiagonalMeters(paperLevel)
	lvl := int(math.Round(math.Log2(diag / target)))
	if lvl < 0 {
		lvl = 0
	}
	if lvl > cellid.MaxLevel {
		lvl = cellid.MaxLevel
	}
	return lvl
}

// metersPerDegree returns metre-per-degree scales for longitude and
// latitude at the bound's mid latitude.
func metersPerDegree(bound geom.Rect) (mx, my float64) {
	midLat := bound.Center().Y * math.Pi / 180
	return 111_320 * math.Cos(midLat), 110_574
}

// Table is a rendered experiment result.
type Table struct {
	ID     string // experiment id, e.g. "fig12"
	Title  string
	Note   string
	Header []string
	Rows   [][]string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	if t.Note != "" {
		fmt.Fprintf(w, "%s\n", t.Note)
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = pad(c, widths[i])
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintln(w, strings.Join(parts, "  "))
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	fmt.Fprintln(w)
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// Runner is one registered experiment.
type Runner struct {
	ID   string
	Desc string
	Run  func(cfg Config) []*Table
}

// All returns every experiment in paper order.
func All() []Runner {
	return []Runner{
		{ID: "fig10", Desc: "Runtime with increasing number of aggregates", Run: Fig10},
		{ID: "fig11a", Desc: "Build time of GeoBlocks and baselines", Run: Fig11a},
		{ID: "fig11b", Desc: "Size overhead of GeoBlocks and baselines", Run: Fig11b},
		{ID: "fig11c", Desc: "Level influence on GeoBlocks overhead", Run: Fig11c},
		{ID: "fig12", Desc: "Query runtime for varying selectivity", Run: Fig12},
		{ID: "fig13", Desc: "Scaling with increasing input sizes", Run: Fig13},
		{ID: "fig14", Desc: "Runtime and relative error for varying datasets", Run: Fig14},
		{ID: "fig15", Desc: "US states vs generated rectangles (tweets)", Run: Fig15},
		{ID: "fig16", Desc: "Relative error and runtime at varying levels", Run: Fig16},
		{ID: "tab2", Desc: "Index build times at varying levels", Run: Table2},
		{ID: "fig17", Desc: "Query runtime with increasing workload skew", Run: Fig17},
		{ID: "fig18", Desc: "Impact of aggregate threshold on runtime and hit rate", Run: Fig18},
		{ID: "fig19", Desc: "Payoff point of incremental builds", Run: Fig19},
		{ID: "pr1", Desc: "Prefix-sum SELECT fast path vs scan ablation across levels", Run: PR1},
		{ID: "pr2", Desc: "Concurrent throughput scaling and parallel covering aggregation", Run: PR2},
		{ID: "pr3", Desc: "Sharded store routing vs single-block serving throughput", Run: PR3},
		{ID: "pr4", Desc: "Durable snapshot save/restore vs rebuild-from-rows", Run: PR4},
		{ID: "pr5", Desc: "Query planner error-bound sweep over the block pyramid", Run: PR5},
		{ID: "pr6", Desc: "Hot-region result cache vs uncached serving under Zipfian skew", Run: PR6},
		{ID: "pr7", Desc: "Mapped v3 snapshot serving vs eager v2 restore (startup, RSS, eviction)", Run: PR7},
		{ID: "pr8", Desc: "Read latency under sustained streaming ingest + background compaction", Run: PR8},
		{ID: "pr10", Desc: "Shared-grid join vs N sequential queries + serving-tier latency percentiles", Run: PR10},
	}
}

// Find returns the runner with the given id.
func Find(id string) (Runner, bool) {
	for _, r := range All() {
		if r.ID == id {
			return r, true
		}
	}
	return Runner{}, false
}

// ms formats a duration in milliseconds.
func ms(d time.Duration) string {
	return fmt.Sprintf("%.1f", float64(d.Microseconds())/1000)
}

// us formats a duration in microseconds.
func us(d time.Duration) string {
	return fmt.Sprintf("%.0f", float64(d.Nanoseconds())/1000)
}

// pct formats a ratio as a percentage.
func pct(f float64) string {
	return fmt.Sprintf("%.1f%%", 100*f)
}

// speedup formats a ratio like the paper's "64x" annotations.
func speedup(slow, fast time.Duration) string {
	if fast <= 0 {
		return "inf"
	}
	return fmt.Sprintf("%.0fx", float64(slow)/float64(fast))
}
