package experiments

// PR4 is the durability snapshot for the snapshot subsystem
// (internal/snapshot): on the clustered taxi workload it builds sharded
// datasets at shard levels 0-2 and measures, per level, the wall time
// and throughput of (a) rebuilding the dataset from raw rows, (b)
// saving a durable snapshot and (c) restoring it — the operate-vs-
// rebuild trade the snapshot subsystem exists for. Restored datasets
// are spot-checked for COUNT equivalence against the original before
// any number is reported. cmd/geobench serialises the points to
// BENCH_PR4.json via -perf-json -snapshot.

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"geoblocks"
	"geoblocks/internal/dataset"
	"geoblocks/internal/store"
	"geoblocks/internal/workload"
)

// PR4Point is one shard-level measurement of the durability snapshot.
type PR4Point struct {
	ShardLevel int `json:"shard_level"`
	Shards     int `json:"shards"`
	Rows       int `json:"rows"`
	// SnapshotBytes is the total on-disk snapshot size (manifest
	// payloads excluded — it is dominated by the shard frames).
	SnapshotBytes int64 `json:"snapshot_bytes"`
	// BuildNS is the rebuild-from-rows wall time (store.Build, the
	// restart cost without snapshots); SaveNS and RestoreNS are the
	// snapshot write and verified read wall times.
	BuildNS   int64 `json:"build_ns"`
	SaveNS    int64 `json:"save_ns"`
	RestoreNS int64 `json:"restore_ns"`
	// SaveMBps / RestoreMBps are SnapshotBytes over the respective wall
	// times, in MB/s (decimal).
	SaveMBps    float64 `json:"save_mb_per_s"`
	RestoreMBps float64 `json:"restore_mb_per_s"`
	// RestoreVsBuild is BuildNS/RestoreNS: how many times faster a
	// restart recovers from a snapshot than from raw rows.
	RestoreVsBuild float64 `json:"restore_vs_build"`
}

// pr4ShardLevels are the shard prefix levels swept; same points as pr3.
var pr4ShardLevels = []int{0, 1, 2}

// PR4Perf runs the snapshot and returns both the rendered table and the
// raw points for JSON serialisation.
func PR4Perf(cfg Config) ([]*Table, []PR4Point) {
	raw := dataset.Generate(dataset.NYCTaxi(), cfg.TaxiRows, cfg.Seed)
	clean := raw.CleanRule()
	bound := raw.Spec.Bound

	tmp, err := os.MkdirTemp("", "geoblocks-pr4-")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(tmp)

	// Verification polygons: mixed shard-local / cross-shard, as in pr3.
	polys := append(workload.ShardLocal(bound, 2, 16, cfg.Seed+10),
		workload.CrossShard(bound, 1, 8, cfg.Seed+11)...)
	reqs := []geoblocks.AggRequest{geoblocks.Count(), geoblocks.Sum("fare_amount")}

	tbl := &Table{
		ID:    "pr4",
		Title: "Durable snapshots: save/restore wall time and throughput vs rebuild-from-rows (taxi)",
		Note:  fmt.Sprintf("%d rows; restore includes full CRC validation; build is store.Build from raw rows", cfg.TaxiRows),
		Header: []string{"shard lvl", "shards", "snap MB", "build ms", "save ms", "restore ms",
			"save MB/s", "restore MB/s", "restore vs build"},
	}
	var points []PR4Point
	for _, shardLevel := range pr4ShardLevels {
		opts := store.Options{Level: pr3Level, ShardLevel: shardLevel, Clean: &clean}
		buildStart := time.Now()
		ds, err := store.Build("taxi", bound, raw.Spec.Schema, raw.Points, raw.Cols, opts)
		if err != nil {
			panic(err)
		}
		build := time.Since(buildStart)

		dir := filepath.Join(tmp, fmt.Sprintf("taxi-l%d", shardLevel))
		saveStart := time.Now()
		m, err := ds.Snapshot(dir)
		if err != nil {
			panic(err)
		}
		save := time.Since(saveStart)
		var bytes int64
		for _, sh := range m.Shards {
			bytes += sh.Bytes
		}

		restoreStart := time.Now()
		rd, err := store.Open(dir, "")
		if err != nil {
			panic(err)
		}
		restore := time.Since(restoreStart)

		// Fail loudly rather than report numbers for a broken restore.
		for _, p := range polys {
			want, err := ds.Query(p, reqs...)
			if err != nil {
				panic(err)
			}
			got, err := rd.Query(p, reqs...)
			if err != nil {
				panic(err)
			}
			if want.Count != got.Count {
				panic(fmt.Sprintf("pr4: restored count %d != %d at shard level %d", got.Count, want.Count, shardLevel))
			}
		}

		mb := float64(bytes) / 1e6
		p := PR4Point{
			ShardLevel:     shardLevel,
			Shards:         ds.NumShards(),
			Rows:           cfg.TaxiRows,
			SnapshotBytes:  bytes,
			BuildNS:        build.Nanoseconds(),
			SaveNS:         save.Nanoseconds(),
			RestoreNS:      restore.Nanoseconds(),
			SaveMBps:       mb / save.Seconds(),
			RestoreMBps:    mb / restore.Seconds(),
			RestoreVsBuild: float64(build.Nanoseconds()) / float64(restore.Nanoseconds()),
		}
		points = append(points, p)
		tbl.AddRow(
			fmt.Sprintf("%d", shardLevel),
			fmt.Sprintf("%d", p.Shards),
			fmt.Sprintf("%.1f", mb),
			fmt.Sprintf("%.0f", float64(p.BuildNS)/1e6),
			fmt.Sprintf("%.0f", float64(p.SaveNS)/1e6),
			fmt.Sprintf("%.0f", float64(p.RestoreNS)/1e6),
			fmt.Sprintf("%.0f", p.SaveMBps),
			fmt.Sprintf("%.0f", p.RestoreMBps),
			fmt.Sprintf("%.1fx", p.RestoreVsBuild),
		)
	}
	return []*Table{tbl}, points
}

// PR4 is the Runner entry point.
func PR4(cfg Config) []*Table {
	tables, _ := PR4Perf(cfg)
	return tables
}
