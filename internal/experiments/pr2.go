package experiments

// PR2 is the perf snapshot for the concurrent serving core: on the same
// level-sweep workload as PR1 it measures (a) aggregate query throughput
// (queries/sec) with 1..GOMAXPROCS worker goroutines hammering one block —
// plain and through the lock-light BlockQC cache — and (b) the latency of
// SelectCoveringParallel, which fans one huge covering out across
// workers. The serial SelectCovering latency is re-measured per level so
// BENCH_PR2.json can be diffed against BENCH_PR1.json to confirm the
// refactor left the single-threaded path unchanged. cmd/geobench
// serialises the points to BENCH_PR2.json via -perf-json -parallel.

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"geoblocks/internal/aggtrie"
	"geoblocks/internal/cellid"
	"geoblocks/internal/core"
	"geoblocks/internal/cover"
	"geoblocks/internal/dataset"
	"geoblocks/internal/workload"
)

// PR2Point is one (level, goroutines) measurement of the snapshot.
type PR2Point struct {
	Level      int `json:"level"`
	Goroutines int `json:"goroutines"`
	// QPSPlain is queries/sec over the mixed covering workload without a
	// cache; QPSCached is the same workload through a warm CachedBlock
	// (sharded statistics recording on every query).
	QPSPlain  float64 `json:"qps_plain"`
	QPSCached float64 `json:"qps_cached"`
	// SerialSelectNS is the single-threaded big-covering SELECT latency
	// (same measurement as PR1's select_prefix_ns); ParallelSelectNS is
	// SelectCoveringParallel over the same covering at this worker count.
	SerialSelectNS   int64   `json:"serial_select_ns"`
	ParallelSelectNS int64   `json:"parallel_select_ns"`
	SpeedupParallel  float64 `json:"speedup_parallel_vs_serial"`
	ScalingPlain     float64 `json:"scaling_plain_vs_1g"`
}

// pr2Goroutines returns the goroutine counts of the sweep: powers of two
// from 1 through GOMAXPROCS, always including GOMAXPROCS, and at least
// {1,2,4} so single-core snapshots still exercise (and race-test)
// oversubscribed serving.
func pr2Goroutines() []int {
	maxProcs := runtime.GOMAXPROCS(0)
	var gs []int
	for g := 1; g < maxProcs; g *= 2 {
		gs = append(gs, g)
	}
	gs = append(gs, maxProcs)
	for len(gs) < 3 {
		gs = append(gs, gs[len(gs)-1]*2)
	}
	return gs
}

// throughput runs query(i) from g goroutines for roughly dur and returns
// completed queries per second.
func throughput(g int, dur time.Duration, query func(i int)) float64 {
	var ops atomic.Int64
	var stop atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < g; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; !stop.Load(); i += g {
				query(i)
				ops.Add(1)
			}
		}(w)
	}
	start := time.Now()
	time.Sleep(dur)
	stop.Store(true)
	wg.Wait()
	elapsed := time.Since(start)
	return float64(ops.Load()) / elapsed.Seconds()
}

// pr2Levels matches the pr1 level sweep so the serial latencies line up
// point for point.
var pr2Levels = pr1Levels

// PR2Perf runs the snapshot and returns both the rendered table and the
// raw points for JSON serialisation.
func PR2Perf(cfg Config) ([]*Table, []PR2Point) {
	raw := dataset.Generate(dataset.NYCTaxi(), cfg.TaxiRows, cfg.Seed)
	base, _, err := raw.Extract(-1)
	if err != nil {
		panic(err)
	}
	specs := []core.AggSpec{{Col: 0, Func: core.AggSum}}
	gs := pr2Goroutines()
	const measureFor = 60 * time.Millisecond

	tbl := &Table{
		ID:    "pr2",
		Title: "Concurrent serving: queries/sec vs goroutines, parallel SELECT fan-out (clustered taxi workload)",
		Note: fmt.Sprintf("GOMAXPROCS=%d; qps over the neighborhood covering mix, parallel/serial over the 50%%-selectivity covering",
			runtime.GOMAXPROCS(0)),
		Header: []string{"level", "g", "qps plain", "qps cached", "serial us", "parallel us", "par speedup", "scale vs 1g"},
	}
	var points []PR2Point
	for _, level := range pr2Levels {
		blk, err := core.Build(base, core.BuildOptions{Level: level})
		if err != nil {
			panic(err)
		}
		c := cover.MustCoverer(raw.Domain(), cover.DefaultOptions(level))

		// Mixed workload: the neighborhood polygons drive throughput; the
		// 50%-selectivity rectangle drives the fan-out latency (same
		// covering as PR1).
		polys := workload.Neighborhoods(raw.Spec.Bound, 7)
		covs := make([][]cellid.ID, len(polys))
		for i, p := range polys {
			covs[i] = c.Cover(p).Cells
		}
		bigCov := c.CoverRect(workload.SelectivityRect(base.Table, raw.Domain(), 0.5)).Cells

		// Warm cache shared by all cached-throughput runs at this level.
		qc, err := aggtrie.NewWithThreshold(blk, 0.10)
		if err != nil {
			panic(err)
		}
		for _, cov := range covs {
			if _, err := qc.Select(cov, specs); err != nil {
				panic(err)
			}
		}
		qc.Refresh()

		var sink core.Result
		serialNS := measure(func() { sink, _ = blk.SelectCovering(bigCov, specs) })
		_ = sink

		var qps1 float64
		for _, g := range gs {
			qpsPlain := throughput(g, measureFor, func(i int) {
				if _, err := blk.SelectCovering(covs[i%len(covs)], specs); err != nil {
					panic(err)
				}
			})
			qpsCached := throughput(g, measureFor, func(i int) {
				if _, err := qc.Select(covs[i%len(covs)], specs); err != nil {
					panic(err)
				}
			})
			parallelNS := measure(func() { sink, _ = blk.SelectCoveringParallel(bigCov, specs, g) })
			if g == gs[0] {
				qps1 = qpsPlain
			}

			p := PR2Point{
				Level:            level,
				Goroutines:       g,
				QPSPlain:         qpsPlain,
				QPSCached:        qpsCached,
				SerialSelectNS:   serialNS.Nanoseconds(),
				ParallelSelectNS: parallelNS.Nanoseconds(),
				SpeedupParallel:  float64(serialNS) / float64(parallelNS),
				ScalingPlain:     qpsPlain / qps1,
			}
			points = append(points, p)
			tbl.AddRow(
				fmt.Sprintf("%d", level),
				fmt.Sprintf("%d", g),
				fmt.Sprintf("%.0f", qpsPlain),
				fmt.Sprintf("%.0f", qpsCached),
				us(serialNS), us(parallelNS),
				fmt.Sprintf("%.2fx", p.SpeedupParallel),
				fmt.Sprintf("%.2fx", p.ScalingPlain),
			)
		}
	}
	return []*Table{tbl}, points
}

// PR2 is the Runner entry point.
func PR2(cfg Config) []*Table {
	tables, _ := PR2Perf(cfg)
	return tables
}
