package experiments

// PR3 is the perf snapshot for the sharded serving tier (internal/store):
// on the clustered taxi workload it builds the same rows as one unsharded
// block and as spatially sharded datasets (shard levels 1 and 2 — 4 and
// up to 16 shards), then measures aggregate query throughput at
// 1..GOMAXPROCS client goroutines through the store router against the
// raw single-block kernel, over a mixed shard-local / cross-shard polygon
// workload, plus the per-query latency of the batch endpoint path. The
// shard-level-0 rows quantify the router's own overhead: a one-shard
// store pays one covering split and no merge. cmd/geobench serialises
// the points to BENCH_PR3.json via -perf-json -sharded.

import (
	"fmt"
	"runtime"
	"time"

	"geoblocks"
	"geoblocks/internal/cellid"
	"geoblocks/internal/core"
	"geoblocks/internal/cover"
	"geoblocks/internal/dataset"
	"geoblocks/internal/store"
	"geoblocks/internal/workload"
)

// PR3Point is one (shard level, goroutines) measurement of the snapshot.
type PR3Point struct {
	ShardLevel int `json:"shard_level"`
	Shards     int `json:"shards"`
	Goroutines int `json:"goroutines"`
	// QPSBlock is the raw single-block SelectCovering throughput over the
	// same coverings — the no-router baseline; QPSStore goes through the
	// store's covering split, fan-out and partial merge.
	QPSBlock float64 `json:"qps_block"`
	QPSStore float64 `json:"qps_store"`
	// StoreVsBlock is QPSStore/QPSBlock at this goroutine count.
	StoreVsBlock float64 `json:"store_vs_block"`
	// ScalingVs1G is QPSStore relative to the 1-goroutine store run.
	ScalingVs1G float64 `json:"scaling_vs_1g"`
	// BatchPerQueryNS is the per-query latency of answering the whole
	// workload through one QueryBatchCoverings call.
	BatchPerQueryNS int64 `json:"batch_per_query_ns"`
}

// pr3Level is the block grid level of the sweep: the mid-range serving
// level between the pr1/pr2 sweep points.
const pr3Level = 14

// pr3ShardLevels are the shard prefix levels compared; 0 is the unsharded
// (single-block store) reference.
var pr3ShardLevels = []int{0, 1, 2}

// PR3Perf runs the snapshot and returns both the rendered table and the
// raw points for JSON serialisation.
func PR3Perf(cfg Config) ([]*Table, []PR3Point) {
	raw := dataset.Generate(dataset.NYCTaxi(), cfg.TaxiRows, cfg.Seed)
	base, _, err := raw.Extract(-1)
	if err != nil {
		panic(err)
	}
	blk, err := core.Build(base, core.BuildOptions{Level: pr3Level})
	if err != nil {
		panic(err)
	}
	clean := raw.CleanRule()

	// Mixed serving workload: shard-local polygons (single-shard routing)
	// plus cross-shard polygons (fan-out and merge on every query). The
	// coverings are computed once and shared by every variant.
	bound := raw.Spec.Bound
	polys := append(workload.ShardLocal(bound, 2, 64, cfg.Seed+10),
		workload.CrossShard(bound, 1, 32, cfg.Seed+11)...)
	c := cover.MustCoverer(raw.Domain(), cover.DefaultOptions(pr3Level))
	covs := make([][]cellid.ID, len(polys))
	for i, p := range polys {
		covs[i] = c.Cover(p).Cells
	}
	specs := []core.AggSpec{{Col: 0, Func: core.AggSum}}
	reqs := []geoblocks.AggRequest{geoblocks.Sum("fare_amount")}

	gs := pr2Goroutines()
	const measureFor = 60 * time.Millisecond

	tbl := &Table{
		ID:    "pr3",
		Title: "Sharded store: queries/sec vs goroutines, router vs raw block (mixed local/cross-shard taxi workload)",
		Note: fmt.Sprintf("GOMAXPROCS=%d; block level %d; store = covering split + fan-out + partial merge, block = raw SelectCovering",
			runtime.GOMAXPROCS(0), pr3Level),
		Header: []string{"shard lvl", "shards", "g", "qps block", "qps store", "store/block", "scale vs 1g", "batch us/q"},
	}
	var points []PR3Point
	for _, shardLevel := range pr3ShardLevels {
		ds, err := store.Build("taxi", bound, raw.Spec.Schema, raw.Points, raw.Cols,
			store.Options{Level: pr3Level, ShardLevel: shardLevel, Clean: &clean})
		if err != nil {
			panic(err)
		}

		batchNS := measure(func() {
			if _, err := ds.QueryBatchCoverings(covs, reqs...); err != nil {
				panic(err)
			}
		})
		batchPerQuery := batchNS.Nanoseconds() / int64(len(covs))

		var qps1 float64
		for _, g := range gs {
			qpsBlock := throughput(g, measureFor, func(i int) {
				if _, err := blk.SelectCovering(covs[i%len(covs)], specs); err != nil {
					panic(err)
				}
			})
			qpsStore := throughput(g, measureFor, func(i int) {
				if _, err := ds.QueryCovering(covs[i%len(covs)], reqs...); err != nil {
					panic(err)
				}
			})
			if g == gs[0] {
				qps1 = qpsStore
			}
			p := PR3Point{
				ShardLevel:      shardLevel,
				Shards:          ds.NumShards(),
				Goroutines:      g,
				QPSBlock:        qpsBlock,
				QPSStore:        qpsStore,
				StoreVsBlock:    qpsStore / qpsBlock,
				ScalingVs1G:     qpsStore / qps1,
				BatchPerQueryNS: batchPerQuery,
			}
			points = append(points, p)
			tbl.AddRow(
				fmt.Sprintf("%d", shardLevel),
				fmt.Sprintf("%d", p.Shards),
				fmt.Sprintf("%d", g),
				fmt.Sprintf("%.0f", qpsBlock),
				fmt.Sprintf("%.0f", qpsStore),
				fmt.Sprintf("%.2fx", p.StoreVsBlock),
				fmt.Sprintf("%.2fx", p.ScalingVs1G),
				fmt.Sprintf("%.0f", float64(batchPerQuery)/1000),
			)
		}
	}
	return []*Table{tbl}, points
}

// PR3 is the Runner entry point.
func PR3(cfg Config) []*Table {
	tables, _ := PR3Perf(cfg)
	return tables
}
