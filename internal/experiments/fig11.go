package experiments

import (
	"fmt"
	"math"
	"time"

	"geoblocks/internal/btree"
	"geoblocks/internal/cellid"
	"geoblocks/internal/core"
	"geoblocks/internal/dataset"
	"geoblocks/internal/geom"
	"geoblocks/internal/phtree"
)

// Fig11a reproduces "Build time of GeoBlocks and baselines": the
// preparation time before any query can run, split into the sorting and
// building phases. The sorting phase is identical for all sorting
// baselines except for the Block's piggybacked grid-cell collection; the
// PH-tree needs no sorted data and only has a build phase. The aR-tree is
// excluded, as in the paper, because its insertion-based build is orders
// of magnitude slower.
func Fig11a(cfg Config) []*Table {
	const paperLevel = 17
	raw := dataset.Generate(dataset.NYCTaxi(), cfg.TaxiRows, cfg.Seed)

	// Plain extract: the sort every sorting baseline shares.
	basePlain, statsPlain, err := raw.Extract(-1)
	if err != nil {
		panic(err)
	}
	// Block extract: sort plus piggybacked cell collection.
	baseBlock, statsBlock, err := raw.Extract(DomainLevel(raw.Spec.Bound, paperLevel))
	if err != nil {
		panic(err)
	}

	blockBuild := timeIt(func() {
		if _, err := core.Build(baseBlock, core.BuildOptions{Level: DomainLevel(raw.Spec.Bound, paperLevel)}); err != nil {
			panic(err)
		}
	})
	btreeBuild := timeIt(func() { btree.NewIndex(basePlain.Table) })
	dom := raw.Domain()
	phBuild := timeIt(func() {
		phtree.New(basePlain.Table, dom.Bound(), func(row int) geom.Point {
			return dom.CellCenter(cellid.ID(basePlain.Table.Keys[row]))
		})
	})

	t := &Table{
		ID:    "fig11a",
		Title: "Build time of GeoBlocks and baselines",
		Note: fmt.Sprintf("taxi %d rows, block level %d(paper)/%d(domain); sorting is shared across sorting baselines",
			basePlain.NumRows(), paperLevel, DomainLevel(raw.Spec.Bound, paperLevel)),
		Header: []string{"approach", "sorting_ms", "building_ms", "total_ms"},
	}
	add := func(name string, sort, build time.Duration) {
		t.AddRow(name, ms(sort), ms(build), ms(sort+build))
	}
	add("BinarySearch", statsPlain.SortTime, 0)
	add("Block", statsBlock.SortTime, blockBuild)
	add("BTree", statsPlain.SortTime, btreeBuild)
	add("PHTree", 0, phBuild)
	return []*Table{t}
}

// Fig11b reproduces "Size overhead of GeoBlocks and baselines": the
// additional storage of each structure relative to the raw columnar base
// data. BinarySearch is omitted (zero overhead), as in the paper.
func Fig11b(cfg Config) []*Table {
	const paperLevel = 17
	e := newTaxiEnv(cfg, paperLevel)
	a := e.buildApproaches(paperLevel, true, true)
	baseBytes := e.base.Table.SizeBytes()

	t := &Table{
		ID:    "fig11b",
		Title: "Size overhead of GeoBlocks and baselines",
		Note: fmt.Sprintf("taxi %d rows (base data %d MiB), block level %d(paper)/%d(domain)",
			e.base.NumRows(), baseBytes>>20, paperLevel, e.lvl(paperLevel)),
		Header: []string{"approach", "bytes", "relative_overhead"},
	}
	add := func(name string, bytes int) {
		t.AddRow(name, fmt.Sprintf("%d", bytes), pct(float64(bytes)/float64(baseBytes)))
	}
	add("Block", a.block.SizeBytes())
	add("BTree", a.btree.SizeBytes())
	add("PHTree", a.ph.SizeBytes())
	add("aRTree", a.art.SizeBytes())
	return []*Table{t}
}

// Fig11c reproduces "Level influence on GeoBlocks overhead": preparation
// time and relative size overhead across block levels 13-21 (paper
// numbering).
func Fig11c(cfg Config) []*Table {
	raw := dataset.Generate(dataset.NYCTaxi(), cfg.TaxiRows, cfg.Seed)
	t := &Table{
		ID:     "fig11c",
		Title:  "Level influence on GeoBlocks overhead",
		Note:   "preparation = sorting (with piggyback) + building; overhead relative to base data",
		Header: []string{"paper_level", "domain_level", "cell_diag_m", "prep_ms", "cells", "relative_overhead"},
	}
	for paperLevel := 13; paperLevel <= 21; paperLevel++ {
		base, stats, err := raw.Extract(DomainLevel(raw.Spec.Bound, paperLevel))
		if err != nil {
			panic(err)
		}
		var blk *core.GeoBlock
		buildTime := timeIt(func() {
			blk, err = core.Build(base, core.BuildOptions{Level: DomainLevel(raw.Spec.Bound, paperLevel)})
			if err != nil {
				panic(err)
			}
		})
		prep := stats.SortTime + buildTime
		overhead := float64(blk.SizeBytes()) / float64(base.Table.SizeBytes())
		t.AddRow(
			fmt.Sprintf("%d", paperLevel),
			fmt.Sprintf("%d", DomainLevel(raw.Spec.Bound, paperLevel)),
			fmt.Sprintf("%.1f", cellDiagonalMeters(base, DomainLevel(raw.Spec.Bound, paperLevel))),
			ms(prep),
			fmt.Sprintf("%d", blk.NumCells()),
			pct(overhead),
		)
	}
	return []*Table{t}
}

// Table2 reproduces "Index build times in ms at varying levels": the
// sorting and building phases of the GeoBlock pipeline per level. Sorting
// rises slowly with the level because the piggybacked grid-cell
// collection extracts ever finer cells.
func Table2(cfg Config) []*Table {
	raw := dataset.Generate(dataset.NYCTaxi(), cfg.TaxiRows, cfg.Seed)
	t := &Table{
		ID:     "tab2",
		Title:  "Index build times in ms at varying levels",
		Header: []string{"paper_level", "sorting_ms", "building_ms"},
	}
	for paperLevel := 13; paperLevel <= 21; paperLevel++ {
		base, stats, err := raw.Extract(DomainLevel(raw.Spec.Bound, paperLevel))
		if err != nil {
			panic(err)
		}
		buildTime := timeIt(func() {
			if _, err := core.Build(base, core.BuildOptions{Level: DomainLevel(raw.Spec.Bound, paperLevel)}); err != nil {
				panic(err)
			}
		})
		t.AddRow(fmt.Sprintf("%d", paperLevel), ms(stats.SortTime), ms(buildTime))
	}
	return []*Table{t}
}

// cellDiagonalMeters converts the domain-level cell diagonal to
// approximate metres for display (1 degree latitude ~ 111 km; longitude
// scaled at NYC's latitude).
func cellDiagonalMeters(base *core.BaseData, level int) float64 {
	const mPerDegLat = 111_000.0
	const mPerDegLon = 84_000.0 // at ~40.7 deg north
	bound := base.Domain.Bound()
	w := bound.Width() / float64(uint64(1)<<uint(level)) * mPerDegLon
	h := bound.Height() / float64(uint64(1)<<uint(level)) * mPerDegLat
	return math.Hypot(w, h)
}
