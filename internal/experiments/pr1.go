package experiments

// PR1 is the perf snapshot for the prefix-sum SELECT fast path: per block
// level, the latency of SELECT SUM over a large clustered covering for the
// prefix path (SelectCovering), the preserved scan ablation
// (SelectCoveringScan), the binary-search-only ablation and the COUNT
// range-sum reference. The paper's COUNT (Listing 2) is nearly level-
// independent while SELECT used to scale with the number of covered cell
// aggregates; the snapshot quantifies how far the prefix arrays close that
// gap. cmd/geobench serialises the points to BENCH_PR1.json via -perf-json.

import (
	"fmt"
	"time"

	"geoblocks/internal/core"
	"geoblocks/internal/cover"
	"geoblocks/internal/dataset"
	"geoblocks/internal/workload"
)

// PerfPoint is one (level, variant timings) measurement of the snapshot.
type PerfPoint struct {
	Level               int     `json:"level"`
	Cells               int     `json:"cells"`
	CoveringCells       int     `json:"covering_cells"`
	CellsVisited        int     `json:"cells_visited"`
	SelectPrefixNS      int64   `json:"select_prefix_ns"`
	SelectScanNS        int64   `json:"select_scan_ns"`
	SelectBinaryNS      int64   `json:"select_binary_only_ns"`
	CountNS             int64   `json:"count_ns"`
	SpeedupPrefixVsScan float64 `json:"speedup_prefix_vs_scan"`
}

// pr1Levels are the block levels of the sweep; the ≥17 entries are where
// coverings span many aggregates per query cell and the prefix path pays
// off most.
var pr1Levels = []int{11, 13, 15, 17}

// measure reports the per-op latency of fn, running it enough times to
// amortise timer noise and taking the best of three rounds.
func measure(fn func()) time.Duration {
	fn() // warm caches and lazily built state
	best := time.Duration(0)
	for round := 0; round < 3; round++ {
		iters := 1
		var elapsed time.Duration
		for {
			start := time.Now()
			for i := 0; i < iters; i++ {
				fn()
			}
			elapsed = time.Since(start)
			if elapsed >= 10*time.Millisecond || iters >= 1<<16 {
				break
			}
			iters *= 2
		}
		perOp := elapsed / time.Duration(iters)
		if best == 0 || perOp < best {
			best = perOp
		}
	}
	return best
}

// PR1Perf runs the snapshot and returns both the rendered table and the
// raw points for JSON serialisation.
func PR1Perf(cfg Config) ([]*Table, []PerfPoint) {
	raw := dataset.Generate(dataset.NYCTaxi(), cfg.TaxiRows, cfg.Seed)
	base, _, err := raw.Extract(-1)
	if err != nil {
		panic(err)
	}
	specs := []core.AggSpec{{Col: 0, Func: core.AggSum}}

	tbl := &Table{
		ID:    "pr1",
		Title: "SELECT SUM latency: prefix-sum path vs scan ablation (clustered taxi workload)",
		Note:  "50%-selectivity rectangle covering; scan = pre-prefix per-cell combine, binary-only = additionally no successor cursor",
		Header: []string{"level", "cells", "cov cells", "visited",
			"prefix us", "scan us", "binary us", "count us", "speedup"},
	}
	points := make([]PerfPoint, 0, len(pr1Levels))
	for _, level := range pr1Levels {
		blk, err := core.Build(base, core.BuildOptions{Level: level})
		if err != nil {
			panic(err)
		}
		c := cover.MustCoverer(raw.Domain(), cover.DefaultOptions(level))
		rect := workload.SelectivityRect(base.Table, raw.Domain(), 0.5)
		cov := c.CoverRect(rect).Cells

		res, err := blk.SelectCovering(cov, specs)
		if err != nil {
			panic(err)
		}
		var sink core.Result
		var sinkCount uint64
		prefixNS := measure(func() { sink, _ = blk.SelectCovering(cov, specs) })
		scanNS := measure(func() { sink, _ = blk.SelectCoveringScan(cov, specs) })
		binaryNS := measure(func() { sink, _ = blk.SelectCoveringBinaryOnly(cov, specs) })
		countNS := measure(func() { sinkCount = blk.CountCovering(cov) })
		_ = sink
		_ = sinkCount

		p := PerfPoint{
			Level:               level,
			Cells:               blk.NumCells(),
			CoveringCells:       len(cov),
			CellsVisited:        res.CellsVisited,
			SelectPrefixNS:      prefixNS.Nanoseconds(),
			SelectScanNS:        scanNS.Nanoseconds(),
			SelectBinaryNS:      binaryNS.Nanoseconds(),
			CountNS:             countNS.Nanoseconds(),
			SpeedupPrefixVsScan: float64(scanNS) / float64(prefixNS),
		}
		points = append(points, p)
		tbl.AddRow(
			fmt.Sprintf("%d", level),
			fmt.Sprintf("%d", p.Cells),
			fmt.Sprintf("%d", p.CoveringCells),
			fmt.Sprintf("%d", p.CellsVisited),
			us(prefixNS), us(scanNS), us(binaryNS), us(countNS),
			fmt.Sprintf("%.1fx", p.SpeedupPrefixVsScan),
		)
	}
	return []*Table{tbl}, points
}

// PR1 is the Runner entry point.
func PR1(cfg Config) []*Table {
	tables, _ := PR1Perf(cfg)
	return tables
}
