package experiments

// PR6 is the result-cache snapshot: on the clustered taxi workload it
// builds twin sharded datasets — one bare, one carrying the dataset-level
// result cache (internal/resultcache) — and drives both with the same
// Zipfian hot-region query stream (workload.ZipfianHotspot). Three
// configurations are measured: the uncached baseline, the cache warming
// up from cold, and the cache at steady state. Correctness is asserted
// in-run before any number is reported: every cache-on answer must match
// its cache-off twin (COUNT/MIN/MAX bit-identically, SUM within
// floating-point reassociation tolerance), the steady-state hit ratio
// must exceed 0.8, the steady-state speedup must reach 5x, and after an
// identical update to both twins the cache must serve nothing stale.
// cmd/geobench serialises the points to BENCH_PR6.json via
// -perf-json -resultcache.

import (
	"fmt"
	"math"
	"time"

	"geoblocks"
	"geoblocks/internal/core"
	"geoblocks/internal/dataset"
	"geoblocks/internal/geom"
	"geoblocks/internal/store"
	"geoblocks/internal/workload"
)

// PR6Point is one configuration's measurement of the result-cache bench.
type PR6Point struct {
	// Config identifies the measured configuration: "cache-off",
	// "cache-cold" (first pass over the stream) or "cache-warm" (second
	// pass, steady state).
	Config string `json:"config"`
	// Queries is the number of queries timed for this configuration.
	Queries int `json:"queries"`
	// QPS and AvgLatencyNS are the serial throughput and per-query wall
	// time of the routed store path.
	QPS          float64 `json:"qps"`
	AvgLatencyNS int64   `json:"avg_latency_ns"`
	// HitRatio is the result cache's hit fraction over this pass (0 for
	// cache-off).
	HitRatio float64 `json:"hit_ratio"`
	// CacheBytes and CacheEntries snapshot the cache occupancy after the
	// pass.
	CacheBytes   int64 `json:"cache_bytes"`
	CacheEntries int   `json:"cache_entries"`
	// Speedup is this configuration's QPS over the cache-off QPS.
	Speedup float64 `json:"speedup_vs_off"`
}

const (
	// pr6Level matches the serving daemon's default grid level.
	pr6Level = 14
	// pr6PoolSize and pr6Skew shape the Zipfian hot-region stream: 200
	// distinct footprints with s=1.5 concentrate most of the stream on a
	// few dozen hot regions, the regime the result cache targets.
	pr6PoolSize = 200
	pr6Skew     = 1.5
	// pr6CacheBytes and pr6MinHits are the daemon's serving defaults.
	pr6CacheBytes = 64 << 20
	pr6MinHits    = 2
	// pr6MinHitRatio and pr6MinSpeedup are the in-run acceptance floors
	// for the steady-state pass.
	pr6MinHitRatio = 0.8
	pr6MinSpeedup  = 5.0
)

// PR6Perf runs the result-cache bench and returns both the rendered table
// and the raw points for JSON serialisation.
func PR6Perf(cfg Config) ([]*Table, []PR6Point) {
	raw := dataset.Generate(dataset.NYCTaxi(), cfg.TaxiRows, cfg.Seed)
	bound := raw.Spec.Bound

	build := func(name string, rcBytes int64) *store.Dataset {
		clean := raw.CleanRule()
		ds, err := store.Build(name, bound, raw.Spec.Schema, raw.Points, raw.Cols, store.Options{
			Level:              pr6Level,
			ShardLevel:         2,
			PyramidLevels:      4,
			ResultCacheBytes:   rcBytes,
			ResultCacheMinHits: pr6MinHits,
			Clean:              &clean,
		})
		if err != nil {
			panic(err)
		}
		return ds
	}
	off := build("taxi-off", 0)
	on := build("taxi-on", pr6CacheBytes)

	// The query stream is fixed up front so every pass replays the exact
	// same sequence on both twins.
	hs := workload.ZipfianHotspot(bound, pr6PoolSize, pr6Skew, cfg.Seed+9)
	pool := hs.Pool()
	nQueries := 4000
	if cfg.TaxiRows <= 200_000 {
		nQueries = 1200
	}
	stream := make([]int, nQueries)
	for i := range stream {
		stream[i] = hs.NextIndex()
	}
	reqs := []geoblocks.AggRequest{
		geoblocks.Count(), geoblocks.Sum("fare_amount"),
		geoblocks.Min("fare_amount"), geoblocks.Max("fare_amount"),
	}

	runStream := func(ds *store.Dataset) ([]geoblocks.Result, time.Duration) {
		out := make([]geoblocks.Result, len(stream))
		start := time.Now()
		for i, qi := range stream {
			res, err := ds.Query(pool[qi], reqs...)
			if err != nil {
				panic(err)
			}
			out[i] = res
		}
		return out, time.Since(start)
	}

	offResults, offElapsed := runStream(off)
	offQPS := float64(nQueries) / offElapsed.Seconds()

	tbl := &Table{
		ID:    "pr6",
		Title: "Result cache: Zipfian hot-region stream, cached vs uncached serving (taxi)",
		Note: fmt.Sprintf("%d rows, block level %d, shard level 2, %d-polygon pool at s=%.1f, %d queries/pass, %d MiB budget, min hits %d; every cached answer checked against the uncached twin",
			cfg.TaxiRows, pr6Level, pr6PoolSize, pr6Skew, nQueries, pr6CacheBytes>>20, pr6MinHits),
		Header: []string{"config", "queries", "qps", "avg us", "hit ratio", "cache KiB", "entries", "speedup"},
	}
	var points []PR6Point
	addPoint := func(p PR6Point) {
		points = append(points, p)
		tbl.AddRow(
			p.Config,
			fmt.Sprintf("%d", p.Queries),
			fmt.Sprintf("%.0f", p.QPS),
			fmt.Sprintf("%.1f", float64(p.AvgLatencyNS)/1000),
			fmt.Sprintf("%.3f", p.HitRatio),
			fmt.Sprintf("%d", p.CacheBytes>>10),
			fmt.Sprintf("%d", p.CacheEntries),
			fmt.Sprintf("%.1fx", p.Speedup),
		)
	}
	addPoint(PR6Point{
		Config:       "cache-off",
		Queries:      nQueries,
		QPS:          offQPS,
		AvgLatencyNS: offElapsed.Nanoseconds() / int64(nQueries),
		Speedup:      1,
	})

	cachedPass := func(config string) PR6Point {
		before := *on.ResultCacheStats()
		got, elapsed := runStream(on)
		for i := range got {
			assertPR6Equivalent(config, i, got[i], offResults[i])
		}
		after := *on.ResultCacheStats()
		probes := float64(after.Hits - before.Hits + after.Misses - before.Misses)
		p := PR6Point{
			Config:       config,
			Queries:      nQueries,
			QPS:          float64(nQueries) / elapsed.Seconds(),
			AvgLatencyNS: elapsed.Nanoseconds() / int64(nQueries),
			CacheBytes:   after.Bytes,
			CacheEntries: after.Entries,
		}
		if probes > 0 {
			p.HitRatio = float64(after.Hits-before.Hits) / probes
		}
		p.Speedup = p.QPS / offQPS
		return p
	}
	addPoint(cachedPass("cache-cold"))
	warm := cachedPass("cache-warm")
	addPoint(warm)

	if warm.HitRatio < pr6MinHitRatio {
		panic(fmt.Sprintf("pr6: steady-state hit ratio %.3f below the %.1f floor", warm.HitRatio, pr6MinHitRatio))
	}
	if warm.Speedup < pr6MinSpeedup {
		panic(fmt.Sprintf("pr6: steady-state speedup %.1fx below the %.0fx floor", warm.Speedup, pr6MinSpeedup))
	}

	// Invalidation probe: fold one identical (clean-surviving) row into
	// both twins, then replay the hottest footprints — the warm cache must
	// answer with post-update data, not its pre-update entries.
	pr6UpdateBoth(raw, off, on)
	for qi := 0; qi < 10; qi++ {
		want, err := off.Query(pool[qi], reqs...)
		if err != nil {
			panic(err)
		}
		got, err := on.Query(pool[qi], reqs...)
		if err != nil {
			panic(err)
		}
		assertPR6Equivalent("post-update", qi, got, want)
	}
	// The hottest footprints were all cached pre-update, so the replay
	// must have found (and refused to serve) their stale entries.
	if stale := on.ResultCacheStats().StaleMisses; stale == 0 {
		panic("pr6: update invalidated nothing despite a warm cache")
	}
	return []*Table{tbl}, points
}

// assertPR6Equivalent panics unless a cache-on answer matches its
// cache-off twin: planner outputs and COUNT/MIN/MAX bit-identically, SUM
// within floating-point reassociation tolerance.
func assertPR6Equivalent(config string, i int, got, want geoblocks.Result) {
	if got.Count != want.Count || got.Level != want.Level || got.ErrorBound != want.ErrorBound {
		panic(fmt.Sprintf("pr6 %s: query %d count/level/bound diverge from the uncached twin", config, i))
	}
	for k := range want.Values {
		a, b := got.Values[k], want.Values[k]
		if a == b || (math.IsNaN(a) && math.IsNaN(b)) {
			continue
		}
		// Values[1] is the SUM; everything else must be bit-identical.
		if k == 1 {
			if diff := math.Abs(a - b); diff <= 1e-9*math.Max(math.Abs(a), math.Abs(b)) {
				continue
			}
		}
		panic(fmt.Sprintf("pr6 %s: query %d value %d = %v, uncached twin %v", config, i, k, a, b))
	}
}

// pr6UpdateBoth applies one identical single-row update batch to both
// twins. The row reuses a generated row that survives the dataset's clean
// rule, so its cell is guaranteed to be aggregated (no rebuild path).
func pr6UpdateBoth(raw *dataset.Raw, off, on *store.Dataset) {
	clean := raw.CleanRule()
	row := -1
	for i, p := range raw.Points {
		if pr6CleanKeeps(clean, p, raw.Cols, i) {
			row = i
			break
		}
	}
	if row < 0 {
		panic("pr6: no clean row to update with")
	}
	cols := make([][]float64, len(raw.Cols))
	for c := range cols {
		cols[c] = []float64{raw.Cols[c][row]}
	}
	batch := &geoblocks.UpdateBatch{Points: []geom.Point{raw.Points[row]}, Cols: cols}
	if err := off.Update(batch); err != nil {
		panic(err)
	}
	if err := on.Update(batch); err != nil {
		panic(err)
	}
}

// pr6CleanKeeps mirrors the extract phase's clean rule on one raw row.
func pr6CleanKeeps(rule core.CleanRule, p geom.Point, cols [][]float64, i int) bool {
	if rule.Bounds.IsValid() && rule.Bounds.Area() > 0 && !rule.Bounds.ContainsPoint(p) {
		return false
	}
	for _, cr := range rule.ColRanges {
		if v := cols[cr.Col][i]; v < cr.Min || v > cr.Max {
			return false
		}
	}
	return true
}

// PR6 is the Runner entry point.
func PR6(cfg Config) []*Table {
	tables, _ := PR6Perf(cfg)
	return tables
}
