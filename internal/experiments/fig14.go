package experiments

import (
	"fmt"
	"time"

	"geoblocks/internal/baseline"
	"geoblocks/internal/cellid"
	"geoblocks/internal/core"
	"geoblocks/internal/geom"
	"geoblocks/internal/workload"
)

// Fig14 reproduces "Query runtime and relative error for varying
// datasets": each dataset's polygon workload is queried once per polygon
// and the total runtime plus the relative count error over the whole
// workload is reported. Block, BinarySearch and BTree share the covering
// and therefore the error; the PH-tree and aR-tree query interior
// rectangles and have their own errors. For OSM the aR-tree is excluded
// (build time), as in the paper.
func Fig14(cfg Config) []*Table {
	type ds struct {
		name       string
		e          *env
		paperLevel int
		withART    bool
	}
	datasets := []ds{
		{"NYC Taxi", newTaxiEnv(cfg, 0), 17, true},
		{"USA Tweets", newTweetsEnv(cfg), 11, true},
		{"OSM Americas", newOSMEnv(cfg), 11, false},
	}

	var tables []*Table
	for _, d := range datasets {
		tables = append(tables, datasetTable(d.name, d.e, d.paperLevel, d.withART))
	}
	return tables
}

func datasetTable(name string, e *env, paperLevel int, withART bool) *Table {
	a := e.buildApproaches(paperLevel, true, withART)
	covs := e.coverings(e.polys, paperLevel)
	rects := interiorRects(e.polys)
	specs := e.standardSpecs(7)

	// Exact ground truth per polygon.
	exactTotal := uint64(0)
	exact := make([]uint64, len(e.polys))
	for i, p := range e.polys {
		exact[i] = baseline.ExactPolygonCount(e.base.Table, e.dom, p)
		exactTotal += exact[i]
	}

	t := &Table{
		ID:    "fig14",
		Title: fmt.Sprintf("Runtime and relative error — %s", name),
		Note: fmt.Sprintf("%d rows, %d polygons, level %d(paper)/%d(domain); error = |covering count − exact| / exact over the whole workload",
			e.base.NumRows(), len(e.polys), paperLevel, e.lvl(paperLevel)),
		Header: []string{"approach", "runtime_ms", "relative_error"},
	}

	// Covering-based approaches: identical result, identical error.
	var covTotal uint64
	rBin := timeIt(func() {
		covTotal = 0
		for _, cov := range covs {
			covTotal += a.binary.AggregateCovering(cov, specs).Count
		}
	})
	covErr := baseline.RelativeError(covTotal, exactTotal)
	rBlk := timeIt(func() {
		for _, cov := range covs {
			if _, err := a.block.SelectCovering(cov, specs); err != nil {
				panic(err)
			}
		}
	})
	rBT := timeIt(func() {
		for _, cov := range covs {
			a.btree.AggregateCovering(cov, specs)
		}
	})

	var phTotal uint64
	rPH := timeIt(func() {
		phTotal = 0
		for _, r := range rects {
			if r.IsValid() {
				phTotal += a.ph.AggregateWindow(r, specs).Count
			}
		}
	})
	phErr := baseline.RelativeError(phTotal, exactTotal)

	t.AddRow("BinarySearch", ms(rBin), pct(covErr))
	t.AddRow("Block", ms(rBlk), pct(covErr))
	t.AddRow("BTree", ms(rBT), pct(covErr))
	t.AddRow("PHTree", ms(rPH), pct(phErr))

	if withART {
		var artTotal uint64
		rART := timeIt(func() {
			artTotal = 0
			for _, r := range rects {
				if r.IsValid() {
					artTotal += a.art.AggregateRect(r, specs).Count
				}
			}
		})
		t.AddRow("aRTree", ms(rART), pct(baseline.RelativeError(artTotal, exactTotal)))
	}
	return t
}

// Fig15 reproduces "Query runtime and relative error for US states and
// generated rectangles on the Twitter dataset": every region is queried
// individually and the per-query average runtime and average relative
// error are reported. Rectangles are "just constrained polygons" for the
// covering-based approaches; the PH-tree and aR-tree query them exactly.
func Fig15(cfg Config) []*Table {
	const paperLevel = 11
	e := newTweetsEnv(cfg)
	a := e.buildApproaches(paperLevel, true, true)
	specs := e.standardSpecs(7)

	states := statesTable(e, a, specs, paperLevel)
	rects := rectsTable(cfg, e, a, specs, paperLevel)
	return []*Table{states, rects}
}

func statesTable(e *env, a approaches, specs []core.AggSpec, paperLevel int) *Table {
	covs := e.coverings(e.polys, paperLevel)
	irects := interiorRects(e.polys)
	exact := make([]uint64, len(e.polys))
	for i, p := range e.polys {
		exact[i] = baseline.ExactPolygonCount(e.base.Table, e.dom, p)
	}

	t := &Table{
		ID:    "fig15",
		Title: "US states — average per-query runtime and relative error",
		Note: fmt.Sprintf("tweets %d rows, %d state polygons, level %d(paper)/%d(domain)",
			e.base.NumRows(), len(e.polys), paperLevel, e.lvl(paperLevel)),
		Header: []string{"approach", "avg_runtime_ms", "avg_relative_error"},
	}
	addCoveringRows(t, a, covs, exact, specs)
	addRectRows(t, a, irects, exact, specs)
	return t
}

func rectsTable(cfg Config, e *env, a approaches, specs []core.AggSpec, paperLevel int) *Table {
	rects := workload.RandomRects(e.dom.Bound(), 51, 0.03, 0.25, cfg.Seed+300)
	covs := make([][]cellid.ID, len(rects))
	cov := e.coverer(paperLevel)
	polyRects := make([]geom.Rect, len(rects))
	exact := make([]uint64, len(rects))
	for i, r := range rects {
		covs[i] = cov.CoverRect(r).Cells
		polyRects[i] = r
		exact[i] = baseline.ExactRectCount(e.base.Table, e.dom, r)
	}

	t := &Table{
		ID:    "fig15",
		Title: "Generated rectangles — average per-query runtime and relative error",
		Note: fmt.Sprintf("tweets %d rows, %d random rectangles, level %d(paper)/%d(domain)",
			e.base.NumRows(), len(rects), paperLevel, e.lvl(paperLevel)),
		Header: []string{"approach", "avg_runtime_ms", "avg_relative_error"},
	}
	addCoveringRows(t, a, covs, exact, specs)
	addRectRows(t, a, polyRects, exact, specs)
	return t
}

// addCoveringRows measures the covering-based approaches query by query.
func addCoveringRows(t *Table, a approaches, covs [][]cellid.ID, exact []uint64, specs []core.AggSpec) {
	measure := func(name string, run func(cov []cellid.ID) uint64) {
		var total time.Duration
		var errSum float64
		n := 0
		for i, cov := range covs {
			var count uint64
			total += timeIt(func() { count = run(cov) })
			if exact[i] > 0 {
				errSum += baseline.RelativeError(count, exact[i])
				n++
			}
		}
		t.AddRow(name,
			fmt.Sprintf("%.3f", float64(total.Microseconds())/1000/float64(len(covs))),
			pct(errSum/float64(max(n, 1))))
	}
	measure("BinarySearch", func(cov []cellid.ID) uint64 {
		return a.binary.AggregateCovering(cov, specs).Count
	})
	measure("Block", func(cov []cellid.ID) uint64 {
		res, err := a.block.SelectCovering(cov, specs)
		if err != nil {
			panic(err)
		}
		return res.Count
	})
	measure("BTree", func(cov []cellid.ID) uint64 {
		return a.btree.AggregateCovering(cov, specs).Count
	})
}

// addRectRows measures the rectangle-only baselines.
func addRectRows(t *Table, a approaches, rects []geom.Rect, exact []uint64, specs []core.AggSpec) {
	measure := func(name string, run func(r geom.Rect) uint64) {
		var total time.Duration
		var errSum float64
		n := 0
		for i, r := range rects {
			if !r.IsValid() {
				continue
			}
			var count uint64
			total += timeIt(func() { count = run(r) })
			if exact[i] > 0 {
				errSum += baseline.RelativeError(count, exact[i])
				n++
			}
		}
		t.AddRow(name,
			fmt.Sprintf("%.3f", float64(total.Microseconds())/1000/float64(len(rects))),
			pct(errSum/float64(max(n, 1))))
	}
	measure("PHTree", func(r geom.Rect) uint64 { return a.ph.CountWindow(r) })
	if a.art != nil {
		measure("aRTree", func(r geom.Rect) uint64 { return a.art.CountRect(r) })
	}
}

// Fig16 reproduces "Relative error and runtime at varying levels": the
// Block's neighborhood workload at paper levels 13-21, reporting average
// per-query runtime and average relative count error. The covering can
// only introduce false positives, so errors are one-sided.
func Fig16(cfg Config) []*Table {
	e := newTaxiEnv(cfg, 0)
	exact := make([]uint64, len(e.polys))
	for i, p := range e.polys {
		exact[i] = baseline.ExactPolygonCount(e.base.Table, e.dom, p)
	}
	specs := e.standardSpecs(4)

	t := &Table{
		ID:    "fig16",
		Title: "Relative error and runtime at varying levels",
		Note: fmt.Sprintf("taxi %d rows, %d neighborhood polygons; per-query averages",
			e.base.NumRows(), len(e.polys)),
		Header: []string{"paper_level", "domain_level", "avg_runtime_us", "avg_relative_error", "cells"},
	}
	for paperLevel := 13; paperLevel <= 21; paperLevel++ {
		blk := e.block(paperLevel)
		covs := e.coverings(e.polys, paperLevel)
		var total time.Duration
		var errSum float64
		n := 0
		for i, cov := range covs {
			var count uint64
			total += timeIt(func() {
				res, err := blk.SelectCovering(cov, specs)
				if err != nil {
					panic(err)
				}
				count = res.Count
			})
			if exact[i] > 0 {
				errSum += baseline.RelativeError(count, exact[i])
				n++
			}
		}
		t.AddRow(
			fmt.Sprintf("%d", paperLevel),
			fmt.Sprintf("%d", e.lvl(paperLevel)),
			fmt.Sprintf("%.1f", float64(total.Nanoseconds())/1000/float64(len(covs))),
			pct(errSum/float64(max(n, 1))),
			fmt.Sprintf("%d", blk.NumCells()),
		)
	}
	return []*Table{t}
}
