package experiments

import (
	"time"

	"geoblocks/internal/aggtrie"
	"geoblocks/internal/baseline"
	"geoblocks/internal/btree"
	"geoblocks/internal/cellid"
	"geoblocks/internal/core"
	"geoblocks/internal/cover"
	"geoblocks/internal/dataset"
	"geoblocks/internal/geom"
	"geoblocks/internal/phtree"
	"geoblocks/internal/rtree"
	"geoblocks/internal/workload"
)

// env bundles a generated dataset with its extract and query workloads —
// the shared setup of the evaluation section.
type env struct {
	raw   *dataset.Raw
	base  *core.BaseData
	dom   cellid.Domain
	polys []*geom.Polygon

	extractStats core.ExtractStats
}

// newTaxiEnv generates the primary dataset and the neighborhood workload.
func newTaxiEnv(cfg Config, piggyPaperLevel int) *env {
	raw := dataset.Generate(dataset.NYCTaxi(), cfg.TaxiRows, cfg.Seed)
	piggy := -1
	if piggyPaperLevel > 0 {
		piggy = DomainLevel(raw.Spec.Bound, piggyPaperLevel)
	}
	base, stats, err := raw.Extract(piggy)
	if err != nil {
		panic(err)
	}
	return &env{
		raw:          raw,
		base:         base,
		dom:          raw.Domain(),
		polys:        workload.Neighborhoods(raw.Spec.Bound, cfg.Seed+100),
		extractStats: stats,
	}
}

// newTweetsEnv generates the tweets dataset with the states workload.
func newTweetsEnv(cfg Config) *env {
	raw := dataset.Generate(dataset.USTweets(), cfg.TweetRows, cfg.Seed+1)
	base, stats, err := raw.Extract(-1)
	if err != nil {
		panic(err)
	}
	return &env{
		raw:          raw,
		base:         base,
		dom:          raw.Domain(),
		polys:        workload.States(raw.Spec.Bound, cfg.Seed+101),
		extractStats: stats,
	}
}

// newOSMEnv generates the OSM dataset with the countries workload.
func newOSMEnv(cfg Config) *env {
	raw := dataset.Generate(dataset.OSMAmericas(), cfg.OSMRows, cfg.Seed+2)
	base, stats, err := raw.Extract(-1)
	if err != nil {
		panic(err)
	}
	return &env{
		raw:          raw,
		base:         base,
		dom:          raw.Domain(),
		polys:        workload.Countries(raw.Spec.Bound, cfg.Seed+102),
		extractStats: stats,
	}
}

// lvl maps a paper (S2) level to this env's domain level of equal
// metric cell size.
func (e *env) lvl(paperLevel int) int { return DomainLevel(e.dom.Bound(), paperLevel) }

// block builds a GeoBlock at the given paper level.
func (e *env) block(paperLevel int) *core.GeoBlock {
	b, err := core.Build(e.base, core.BuildOptions{Level: e.lvl(paperLevel)})
	if err != nil {
		panic(err)
	}
	return b
}

// coverer returns a coverer limited to the given paper level.
func (e *env) coverer(paperLevel int) *cover.Coverer {
	return cover.MustCoverer(e.dom, cover.DefaultOptions(e.lvl(paperLevel)))
}

// coverings computes block-level coverings for a polygon workload once, so
// query-time comparisons exclude the (identical) covering cost, matching
// the paper's setup where all covering-based approaches share the mapping
// from geospatial to linear space.
func (e *env) coverings(polys []*geom.Polygon, paperLevel int) [][]cellid.ID {
	c := e.coverer(paperLevel)
	out := make([][]cellid.ID, len(polys))
	for i, p := range polys {
		out[i] = c.Cover(p).Cells
	}
	return out
}

// interiorRects computes the interior rectangles the PH-tree and aR-tree
// baselines are queried with (paper Sec. 4.1).
func interiorRects(polys []*geom.Polygon) []geom.Rect {
	out := make([]geom.Rect, len(polys))
	for i, p := range polys {
		out[i] = p.InteriorRect(24)
	}
	return out
}

// pointAt reconstructs a base row's location from its leaf key (identical
// data for every baseline).
func (e *env) pointAt(row int) geom.Point {
	return e.dom.CellCenter(cellid.ID(e.base.Table.Keys[row]))
}

// standardSpecs returns n aggregate requests over the dataset's columns,
// cycling count/sum/min/max/avg like the paper's 1..8-aggregate workloads.
func (e *env) standardSpecs(n int) []core.AggSpec {
	numCols := e.base.Table.Schema.NumCols()
	out := make([]core.AggSpec, 0, n)
	out = append(out, core.AggSpec{Func: core.AggCount})
	fns := []core.AggFunc{core.AggSum, core.AggMin, core.AggMax, core.AggAvg}
	for len(out) < n {
		i := len(out) - 1
		out = append(out, core.AggSpec{Col: i % numCols, Func: fns[i%len(fns)]})
	}
	return out[:n]
}

// timeIt measures fn.
func timeIt(fn func()) time.Duration {
	start := time.Now()
	fn()
	return time.Since(start)
}

// approaches bundles every comparable structure over one env/level.
type approaches struct {
	binary *baseline.BinarySearch
	block  *core.GeoBlock
	btree  *btree.Index
	ph     *phtree.Tree
	art    *rtree.Tree
}

// buildApproaches constructs the requested baselines. Flags keep the
// expensive ones (aR-tree) out of experiments that exclude them, exactly
// as the paper does.
func (e *env) buildApproaches(paperLevel int, withPH, withART bool) approaches {
	a := approaches{
		binary: baseline.NewBinarySearch(e.base.Table),
		block:  e.block(paperLevel),
		btree:  btree.NewIndex(e.base.Table),
	}
	if withPH {
		a.ph = phtree.New(e.base.Table, e.dom.Bound(), e.pointAt)
	}
	if withART {
		a.art = rtree.New(e.base.Table, e.pointAt)
	}
	return a
}

// cachedBlock wraps a block in the query cache with the given threshold.
// A non-positive threshold builds the explicit 0-budget ablation cache
// (Fig. 18's 0% point) — the validated NewWithThreshold rejects it.
func cachedBlock(b *core.GeoBlock, threshold float64) *aggtrie.CachedBlock {
	if threshold <= 0 {
		return aggtrie.New(b, 0)
	}
	cb, err := aggtrie.NewWithThreshold(b, threshold)
	if err != nil {
		panic(err)
	}
	return cb
}
