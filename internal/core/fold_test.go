package core_test

// Tests for the base+delta write-path kernels: SelectRowsPartial (the
// delta-side partial select) and FoldRows (compaction). Both are compared
// against a block rebuilt from scratch with the same rows; integer values
// make SUM exactly representable, so every assertion is bit-identity, the
// strongest form of the equivalence the streaming ingest pipeline claims.

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"geoblocks/internal/cellid"
	"geoblocks/internal/column"
	"geoblocks/internal/core"
	"geoblocks/internal/cover"
	"geoblocks/internal/geom"
)

// buildFrom builds a block from raw points at the given level.
func buildFrom(t *testing.T, dom cellid.Domain, schema column.Schema, pts []geom.Point, cols [][]float64, level int, filter column.Filter) *core.GeoBlock {
	t.Helper()
	base, _, err := core.Extract(dom, pts, schema, cols, core.CleanRule{}, -1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := core.Build(base, core.BuildOptions{Level: level, Filter: filter})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// randRows draws n random points with small-integer column values.
func randRows(rng *rand.Rand, n int) ([]geom.Point, [][]float64) {
	pts := make([]geom.Point, n)
	cols := [][]float64{make([]float64, n), make([]float64, n)}
	for i := range pts {
		pts[i] = geom.Pt(rng.Float64()*100, rng.Float64()*100)
		cols[0][i] = float64(rng.Intn(1000))
		cols[1][i] = float64(rng.Intn(50))
	}
	return pts, cols
}

// sortedLeaves converts points to leaf ids sorted ascending, permuting the
// column slices alongside.
func sortedLeaves(dom cellid.Domain, pts []geom.Point, cols [][]float64) ([]cellid.ID, [][]float64) {
	idx := make([]int, len(pts))
	for i := range idx {
		idx[i] = i
	}
	leaves := make([]cellid.ID, len(pts))
	for i, p := range pts {
		leaves[i] = dom.FromPoint(p)
	}
	sort.SliceStable(idx, func(a, b int) bool { return leaves[idx[a]] < leaves[idx[b]] })
	outLeaves := make([]cellid.ID, len(pts))
	outCols := make([][]float64, len(cols))
	for c := range cols {
		outCols[c] = make([]float64, len(pts))
	}
	for k, i := range idx {
		outLeaves[k] = leaves[i]
		for c := range cols {
			outCols[c][k] = cols[c][i]
		}
	}
	return outLeaves, outCols
}

func sameResult(t *testing.T, ctx string, got, want core.Result) {
	t.Helper()
	if got.Count != want.Count {
		t.Fatalf("%s: count %d, want %d", ctx, got.Count, want.Count)
	}
	for i := range want.Values {
		g, w := got.Values[i], want.Values[i]
		if math.IsNaN(g) && math.IsNaN(w) {
			continue
		}
		if g != w {
			t.Fatalf("%s: value[%d] = %v, want %v (bit-identical)", ctx, i, g, w)
		}
	}
}

var foldSpecs = []core.AggSpec{
	{Func: core.AggCount},
	{Col: 0, Func: core.AggSum},
	{Col: 0, Func: core.AggMin},
	{Col: 0, Func: core.AggMax},
	{Col: 1, Func: core.AggAvg},
}

// TestFoldRowsEquivalence folds random row sets — including rows landing in
// brand-new cells, which Update cannot absorb — and checks the folded block
// answers every covering bit-identically to a from-scratch rebuild.
func TestFoldRowsEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	dom := cellid.MustDomain(geom.Rect{Min: geom.Pt(0, 0), Max: geom.Pt(100, 100)})
	schema := column.NewSchema("a", "b")
	for round := 0; round < 25; round++ {
		level := 6 + rng.Intn(8)
		basePts, baseCols := randRows(rng, 500+rng.Intn(2000))
		var filter column.Filter
		if rng.Intn(3) == 0 {
			filter = column.Pred(schema, "b", column.OpGe, float64(rng.Intn(25)))
		}
		block := buildFrom(t, dom, schema, basePts, baseCols, level, filter)

		deltaPts, deltaCols := randRows(rng, 1+rng.Intn(400))
		leaves, sCols := sortedLeaves(dom, deltaPts, deltaCols)
		folded, err := core.FoldRows(block, leaves, sCols)
		if err != nil {
			t.Fatal(err)
		}

		allPts := append(append([]geom.Point(nil), basePts...), deltaPts...)
		allCols := [][]float64{
			append(append([]float64(nil), baseCols[0]...), deltaCols[0]...),
			append(append([]float64(nil), baseCols[1]...), deltaCols[1]...),
		}
		rebuilt := buildFrom(t, dom, schema, allPts, allCols, level, filter)

		if folded.NumTuples() != rebuilt.NumTuples() {
			t.Fatalf("round %d: folded %d tuples, rebuilt %d", round, folded.NumTuples(), rebuilt.NumTuples())
		}
		if folded.NumCells() != rebuilt.NumCells() {
			t.Fatalf("round %d: folded %d cells, rebuilt %d", round, folded.NumCells(), rebuilt.NumCells())
		}

		c := cover.MustCoverer(dom, cover.DefaultOptions(level))
		for q := 0; q < 5; q++ {
			x0, y0 := rng.Float64()*80, rng.Float64()*80
			cov := c.CoverRect(geom.Rect{
				Min: geom.Pt(x0, y0),
				Max: geom.Pt(x0+rng.Float64()*20+1, y0+rng.Float64()*20+1)}).Cells
			got, err := folded.SelectCovering(cov, foldSpecs)
			if err != nil {
				t.Fatal(err)
			}
			want, err := rebuilt.SelectCovering(cov, foldSpecs)
			if err != nil {
				t.Fatal(err)
			}
			sameResult(t, "fold round", got, want)
		}

		// The original block must be untouched (fold builds aside).
		if block.NumTuples() == folded.NumTuples() && len(deltaPts) > 0 && filter == nil {
			t.Fatalf("round %d: fold mutated the source block", round)
		}
	}
}

// TestSelectRowsPartialEquivalence checks that base partial + delta rows
// partial, merged base-then-delta, equals a from-scratch rebuild for every
// covering — the exact merge the sharded store performs per shard.
func TestSelectRowsPartialEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	dom := cellid.MustDomain(geom.Rect{Min: geom.Pt(0, 0), Max: geom.Pt(100, 100)})
	schema := column.NewSchema("a", "b")
	for round := 0; round < 25; round++ {
		level := 6 + rng.Intn(8)
		basePts, baseCols := randRows(rng, 500+rng.Intn(1500))
		block := buildFrom(t, dom, schema, basePts, baseCols, level, nil)

		deltaPts, deltaCols := randRows(rng, rng.Intn(300))
		leaves := make([]cellid.ID, len(deltaPts))
		for i, p := range deltaPts {
			leaves[i] = dom.FromPoint(p)
		}

		allPts := append(append([]geom.Point(nil), basePts...), deltaPts...)
		allCols := [][]float64{
			append(append([]float64(nil), baseCols[0]...), deltaCols[0]...),
			append(append([]float64(nil), baseCols[1]...), deltaCols[1]...),
		}
		rebuilt := buildFrom(t, dom, schema, allPts, allCols, level, nil)

		c := cover.MustCoverer(dom, cover.DefaultOptions(level))
		for q := 0; q < 5; q++ {
			x0, y0 := rng.Float64()*80, rng.Float64()*80
			cov := c.CoverRect(geom.Rect{
				Min: geom.Pt(x0, y0),
				Max: geom.Pt(x0+rng.Float64()*30+1, y0+rng.Float64()*30+1)}).Cells

			baseAcc, err := block.SelectCoveringPartial(cov, foldSpecs)
			if err != nil {
				t.Fatal(err)
			}
			deltaAcc, err := block.SelectRowsPartial(cov, leaves, deltaCols, foldSpecs)
			if err != nil {
				t.Fatal(err)
			}
			if err := baseAcc.MergeFrom(deltaAcc); err != nil {
				t.Fatal(err)
			}
			want, err := rebuilt.SelectCovering(cov, foldSpecs)
			if err != nil {
				t.Fatal(err)
			}
			sameResult(t, "rows partial", baseAcc.Result(), want)
		}
	}
}

// TestSelectRowsPartialFilter checks delta rows respect the block filter.
func TestSelectRowsPartialFilter(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	dom := cellid.MustDomain(geom.Rect{Min: geom.Pt(0, 0), Max: geom.Pt(100, 100)})
	schema := column.NewSchema("a", "b")
	filter := column.Pred(schema, "b", column.OpGe, 25)
	basePts, baseCols := randRows(rng, 800)
	block := buildFrom(t, dom, schema, basePts, baseCols, 10, filter)

	deltaPts, deltaCols := randRows(rng, 200)
	leaves := make([]cellid.ID, len(deltaPts))
	for i, p := range deltaPts {
		leaves[i] = dom.FromPoint(p)
	}
	c := cover.MustCoverer(dom, cover.DefaultOptions(10))
	cov := c.CoverRect(geom.Rect{Min: geom.Pt(0, 0), Max: geom.Pt(100, 100)}).Cells
	acc, err := block.SelectRowsPartial(cov, leaves, deltaCols, foldSpecs)
	if err != nil {
		t.Fatal(err)
	}
	want := uint64(0)
	for i := range deltaPts {
		if deltaCols[1][i] >= 25 {
			want++
		}
	}
	if got := acc.Result().Count; got != want {
		t.Fatalf("filtered rows partial count = %d, want %d", got, want)
	}
}

// TestFoldRowsErrors pins the error paths: unsorted rows, ragged columns
// and uint32 overflow guards.
func TestFoldRowsErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	dom := cellid.MustDomain(geom.Rect{Min: geom.Pt(0, 0), Max: geom.Pt(100, 100)})
	schema := column.NewSchema("a", "b")
	pts, cols := randRows(rng, 100)
	block := buildFrom(t, dom, schema, pts, cols, 10, nil)

	// Unsorted leaves.
	leaves := []cellid.ID{dom.FromPoint(geom.Pt(90, 90)), dom.FromPoint(geom.Pt(1, 1))}
	if leaves[0] < leaves[1] {
		leaves[0], leaves[1] = leaves[1], leaves[0]
	}
	if _, err := core.FoldRows(block, leaves, [][]float64{{1, 2}, {3, 4}}); err == nil {
		t.Fatal("unsorted fold rows not rejected")
	}
	// Ragged columns.
	if _, err := core.FoldRows(block, leaves[:1], [][]float64{{1, 2}, {3}}); err == nil {
		t.Fatal("ragged fold columns not rejected")
	}
	// Wrong column count.
	if _, err := core.FoldRows(block, leaves[:1], [][]float64{{1}}); err == nil {
		t.Fatal("wrong fold column count not rejected")
	}
	// Empty fold is a valid no-op clone.
	nb, err := core.FoldRows(block, nil, [][]float64{nil, nil})
	if err != nil {
		t.Fatal(err)
	}
	if nb.NumTuples() != block.NumTuples() || nb.NumCells() != block.NumCells() {
		t.Fatal("empty fold changed the block")
	}
}
