package core

// Tests for the struct-of-arrays layout and the per-column prefix-sum
// arrays introduced by the O(1) SUM/AVG query path: structural invariants
// after Build/Coarsen, survival of serialization, and consistency after
// in-place updates (lazy prefix rebuild).

import (
	"bytes"
	"encoding/binary"
	"math"
	"strings"
	"testing"

	"geoblocks/internal/cellid"
	"geoblocks/internal/cover"
	"geoblocks/internal/geom"
)

// checkPrefixInvariant asserts prefix[0] = 0, len = cells+1 and that each
// step reproduces the cell's sum.
func checkPrefixInvariant(t *testing.T, b *GeoBlock) {
	t.Helper()
	n := b.NumCells()
	for c := range b.cols {
		cs := &b.cols[c]
		if len(cs.prefix) != n+1 {
			t.Fatalf("col %d: prefix length %d, want %d", c, len(cs.prefix), n+1)
		}
		if cs.prefix[0] != 0 {
			t.Fatalf("col %d: prefix[0] = %g", c, cs.prefix[0])
		}
		running := 0.0
		for i := 0; i < n; i++ {
			running += cs.sums[i]
			if cs.prefix[i+1] != running {
				t.Fatalf("col %d: prefix[%d] = %g, want %g", c, i+1, cs.prefix[i+1], running)
			}
		}
	}
}

func TestBuildMaterialisesPrefixes(t *testing.T) {
	f := newFixture(t, 20000, 21)
	b := f.build(t, 12, nil)
	checkPrefixInvariant(t, b)
}

func TestCoarsenMaterialisesPrefixes(t *testing.T) {
	f := newFixture(t, 20000, 22)
	fine := f.build(t, 14, nil)
	coarse, err := Coarsen(fine, 9)
	if err != nil {
		t.Fatal(err)
	}
	checkPrefixInvariant(t, coarse)
}

func TestSerializeRoundTripPrefixes(t *testing.T) {
	f := newFixture(t, 10000, 23)
	b := f.build(t, 12, nil)
	var buf bytes.Buffer
	if _, err := b.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	rb, err := ReadBlock(&buf)
	if err != nil {
		t.Fatal(err)
	}
	checkPrefixInvariant(t, rb)
	// The SoA arrays must survive bit-exactly.
	for c := range b.cols {
		for i := 0; i < b.NumCells(); i++ {
			if b.cols[c].sums[i] != rb.cols[c].sums[i] ||
				b.cols[c].mins[i] != rb.cols[c].mins[i] ||
				b.cols[c].maxs[i] != rb.cols[c].maxs[i] ||
				b.cols[c].prefix[i+1] != rb.cols[c].prefix[i+1] {
				t.Fatalf("col %d cell %d differs after round trip", c, i)
			}
		}
	}
	// And the prefix-backed query path must agree bit-exactly too.
	cov := cover.MustCoverer(f.dom, cover.DefaultOptions(12)).Cover(testPolygon())
	a, err := b.SelectCovering(cov.Cells, allSpecs())
	if err != nil {
		t.Fatal(err)
	}
	got, err := rb.SelectCovering(cov.Cells, allSpecs())
	if err != nil {
		t.Fatal(err)
	}
	if a.Count != got.Count || a.CellsVisited != got.CellsVisited {
		t.Fatalf("round-trip query mismatch: %+v vs %+v", a, got)
	}
	for i := range a.Values {
		if math.Float64bits(a.Values[i]) != math.Float64bits(got.Values[i]) {
			t.Fatalf("value[%d] not bit-identical after round trip", i)
		}
	}
}

func TestReadBlockRejectsVersion1(t *testing.T) {
	var buf bytes.Buffer
	buf.WriteString(blockMagic)
	binary.Write(&buf, binary.LittleEndian, uint32(1))
	_, err := ReadBlock(&buf)
	if err == nil {
		t.Fatal("version-1 payload accepted")
	}
	if !strings.Contains(err.Error(), "version 1") {
		t.Fatalf("version-1 rejection not descriptive: %v", err)
	}
}

func TestUpdatePatchesPrefixesAndQueriesStayConsistent(t *testing.T) {
	f := newFixture(t, 10000, 24)
	b := f.build(t, 8, nil)
	cov := cover.MustCoverer(f.dom, cover.DefaultOptions(8)).Cover(testPolygon())

	batch := &UpdateBatch{
		Points: []geom.Point{f.pts[0], f.pts[1], f.pts[2], f.pts[3]},
		Cols: [][]float64{
			{10, 20, 30, 40},
			{1, 2, 3, 4},
			{1, 1, 2, 2},
		},
	}
	if err := b.Update(batch); err != nil {
		t.Fatal(err)
	}
	// Update patches the prefix arrays eagerly so query paths stay
	// read-only; the invariant must hold immediately.
	checkPrefixInvariant(t, b)

	// The prefix path must agree with the scan ablation, which reads the
	// per-cell sums directly.
	fast, err := b.SelectCovering(cov.Cells, allSpecs())
	if err != nil {
		t.Fatal(err)
	}
	slow, err := b.SelectCoveringScan(cov.Cells, allSpecs())
	if err != nil {
		t.Fatal(err)
	}
	if fast.Count != slow.Count || fast.CellsVisited != slow.CellsVisited {
		t.Fatalf("post-update mismatch: %+v vs %+v", fast, slow)
	}
	for i := range fast.Values {
		if !approxEqual(fast.Values[i], slow.Values[i]) {
			t.Fatalf("post-update value[%d]: %g vs %g", i, fast.Values[i], slow.Values[i])
		}
	}

	// COUNT via offsets must also reflect the update (offset sweep and
	// prefix rebuild are independent invariants).
	if got := b.CountCovering([]cellid.ID{cellid.Root()}); got != b.NumTuples() {
		t.Fatalf("whole-domain count after update = %d, want %d", got, b.NumTuples())
	}
}

func TestAggregateCellRangeMatchesScan(t *testing.T) {
	f := newFixture(t, 15000, 25)
	b := f.build(t, 12, nil)
	cells := []cellid.ID{
		cellid.Root(),
		b.keys[0].Parent(4),
		b.keys[b.NumCells()/2].Parent(8),
		b.keys[b.NumCells()-1],
	}
	for _, cell := range cells {
		count, cols, end := b.AggregateCellRange(cell)
		// Reference: per-cell merge over the same range.
		wantCols := make([]ColAggregate, len(b.cols))
		for c := range wantCols {
			wantCols[c] = emptyColAggregate()
		}
		var wantCount uint64
		i := b.lowerBound(cell.RangeMin(), 0)
		for ; i < len(b.keys) && b.keys[i] <= cell.RangeMax(); i++ {
			wantCount += uint64(b.counts[i])
			for c := range wantCols {
				wantCols[c].merge(b.cols[c].at(i))
			}
		}
		if count != wantCount || end != i {
			t.Fatalf("cell %v: count/end = %d/%d, want %d/%d", cell, count, end, wantCount, i)
		}
		for c := range cols {
			if !approxEqual(cols[c].Sum, wantCols[c].Sum) ||
				cols[c].Min != wantCols[c].Min || cols[c].Max != wantCols[c].Max {
				t.Fatalf("cell %v col %d: %+v, want %+v", cell, c, cols[c], wantCols[c])
			}
		}
	}
}
