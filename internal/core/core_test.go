package core

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"geoblocks/internal/cellid"
	"geoblocks/internal/column"
	"geoblocks/internal/cover"
	"geoblocks/internal/geom"
)

// testFixture bundles a deterministic synthetic dataset with its extract.
type testFixture struct {
	dom    cellid.Domain
	schema column.Schema
	pts    []geom.Point
	cols   [][]float64
	base   *BaseData
}

func newFixture(t testing.TB, n int, seed int64) *testFixture {
	t.Helper()
	dom := cellid.MustDomain(geom.Rect{Min: geom.Pt(0, 0), Max: geom.Pt(100, 100)})
	schema := column.NewSchema("fare", "distance", "passengers")
	rng := rand.New(rand.NewSource(seed))
	pts := make([]geom.Point, n)
	cols := [][]float64{make([]float64, n), make([]float64, n), make([]float64, n)}
	for i := 0; i < n; i++ {
		// Cluster half the points in a hotspot, rest uniform.
		if i%2 == 0 {
			pts[i] = geom.Pt(30+rng.NormFloat64()*5, 40+rng.NormFloat64()*5)
		} else {
			pts[i] = geom.Pt(rng.Float64()*100, rng.Float64()*100)
		}
		cols[0][i] = 2 + rng.Float64()*50
		cols[1][i] = rng.Float64() * 20
		cols[2][i] = float64(1 + rng.Intn(5))
	}
	base, _, err := Extract(dom, pts, schema, cols, CleanRule{Bounds: dom.Bound()}, 12)
	if err != nil {
		t.Fatalf("extract: %v", err)
	}
	return &testFixture{dom: dom, schema: schema, pts: pts, cols: cols, base: base}
}

func (f *testFixture) build(t testing.TB, level int, filter column.Filter) *GeoBlock {
	t.Helper()
	b, err := Build(f.base, BuildOptions{Level: level, Filter: filter})
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return b
}

// bruteForce aggregates rows of the fixture whose leaf key falls in the
// covering, honouring the filter — the ground truth for covering queries.
func (f *testFixture) bruteForce(cov []cellid.ID, filter column.Filter, specs []AggSpec) Result {
	acc := newAccumulator(specs)
	tbl := f.base.Table
	for i := 0; i < tbl.NumRows(); i++ {
		if !filter.MatchesRow(tbl, i) {
			continue
		}
		leaf := cellid.ID(tbl.Keys[i])
		inside := false
		for _, qc := range cov {
			if qc.Contains(leaf) {
				inside = true
				break
			}
		}
		if !inside {
			continue
		}
		acc.count++
		for k, s := range acc.specs {
			v := 0.0
			if s.Func != AggCount {
				v = tbl.Cols[s.Col][i]
			}
			switch s.Func {
			case AggSum, AggAvg:
				acc.vals[k] += v
			case AggMin:
				if v < acc.vals[k] {
					acc.vals[k] = v
				}
			case AggMax:
				if v > acc.vals[k] {
					acc.vals[k] = v
				}
			}
		}
	}
	return acc.finish(0)
}

func allSpecs() []AggSpec {
	return []AggSpec{
		{Func: AggCount},
		{Col: 0, Func: AggSum},
		{Col: 0, Func: AggMin},
		{Col: 0, Func: AggMax},
		{Col: 1, Func: AggAvg},
		{Col: 2, Func: AggSum},
	}
}

func testPolygon() *geom.Polygon {
	return geom.NewPolygon([]geom.Point{
		geom.Pt(20, 30), geom.Pt(60, 15), geom.Pt(85, 50), geom.Pt(55, 85), geom.Pt(25, 70),
	})
}

func approxEqual(a, b float64) bool {
	if math.IsNaN(a) && math.IsNaN(b) {
		return true
	}
	diff := math.Abs(a - b)
	return diff <= 1e-9 || diff <= 1e-9*math.Max(math.Abs(a), math.Abs(b))
}

func TestExtractSortsAndCleans(t *testing.T) {
	f := newFixture(t, 5000, 1)
	keys := f.base.Table.Keys
	for i := 1; i < len(keys); i++ {
		if keys[i-1] > keys[i] {
			t.Fatalf("base data not sorted at %d", i)
		}
	}
	if f.base.DistinctCells <= 0 {
		t.Fatal("piggybacked distinct-cell collection missing")
	}
}

func TestExtractRejectsOutliers(t *testing.T) {
	dom := cellid.MustDomain(geom.Rect{Min: geom.Pt(0, 0), Max: geom.Pt(10, 10)})
	schema := column.NewSchema("v")
	pts := []geom.Point{{X: 5, Y: 5}, {X: -3, Y: 5}, {X: 5, Y: 50}, {X: 1, Y: 1}}
	cols := [][]float64{{1, 2, 3, -7}}
	rule := CleanRule{
		Bounds:    dom.Bound(),
		ColRanges: []ColRange{{Col: 0, Min: 0, Max: 100}},
	}
	base, stats, err := Extract(dom, pts, schema, cols, rule, -1)
	if err != nil {
		t.Fatal(err)
	}
	if stats.RowsIn != 4 || stats.RowsKept != 1 {
		t.Fatalf("kept %d of %d rows, want 1 of 4", stats.RowsKept, stats.RowsIn)
	}
	if base.NumRows() != 1 {
		t.Fatalf("base rows = %d", base.NumRows())
	}
}

func TestExtractValidatesShape(t *testing.T) {
	dom := cellid.MustDomain(geom.Rect{Min: geom.Pt(0, 0), Max: geom.Pt(1, 1)})
	schema := column.NewSchema("a", "b")
	if _, _, err := Extract(dom, []geom.Point{{}}, schema, [][]float64{{1}}, CleanRule{}, -1); err == nil {
		t.Fatal("column count mismatch accepted")
	}
	if _, _, err := Extract(dom, []geom.Point{{}}, schema, [][]float64{{1}, {1, 2}}, CleanRule{}, -1); err == nil {
		t.Fatal("column length mismatch accepted")
	}
}

func TestBuildBasicInvariants(t *testing.T) {
	f := newFixture(t, 20000, 2)
	b := f.build(t, 10, nil)

	if b.NumTuples() != uint64(f.base.NumRows()) {
		t.Fatalf("tuples = %d, want %d", b.NumTuples(), f.base.NumRows())
	}
	// Keys strictly ascending, all at block level.
	var sumCounts uint64
	for i := 0; i < b.NumCells(); i++ {
		if b.keys[i].Level() != 10 {
			t.Fatalf("cell %d at level %d", i, b.keys[i].Level())
		}
		if i > 0 && b.keys[i-1] >= b.keys[i] {
			t.Fatalf("keys not strictly ascending at %d", i)
		}
		if b.counts[i] == 0 {
			t.Fatalf("empty cell %d stored", i)
		}
		if uint64(b.offsets[i]) != sumCounts {
			t.Fatalf("offset[%d] = %d, want %d", i, b.offsets[i], sumCounts)
		}
		sumCounts += uint64(b.counts[i])
		// Leaf key extremes must be inside the cell.
		if !b.keys[i].Contains(b.minKeys[i]) || !b.keys[i].Contains(b.maxKeys[i]) {
			t.Fatalf("cell %d min/max keys escape the cell", i)
		}
	}
	if sumCounts != b.NumTuples() {
		t.Fatalf("counts sum %d != tuples %d", sumCounts, b.NumTuples())
	}
	h := b.Header()
	if h.MinCell != b.keys[0] || h.MaxCell != b.keys[b.NumCells()-1] {
		t.Fatal("header min/max cells wrong")
	}
}

func TestBuildWithFilter(t *testing.T) {
	f := newFixture(t, 10000, 3)
	filter := column.Pred(f.schema, "fare", column.OpGt, 20)
	b := f.build(t, 10, filter)

	want := uint64(0)
	for i := 0; i < f.base.Table.NumRows(); i++ {
		if filter.MatchesRow(f.base.Table, i) {
			want++
		}
	}
	if b.NumTuples() != want {
		t.Fatalf("filtered tuples = %d, want %d", b.NumTuples(), want)
	}
	// Min fare in every cell must satisfy the predicate.
	for i := 0; i < b.NumCells(); i++ {
		if b.cols[0].mins[i] <= 20 {
			t.Fatalf("cell %d min fare %g violates filter", i, b.cols[0].mins[i])
		}
	}
}

func TestSelectMatchesBruteForce(t *testing.T) {
	f := newFixture(t, 30000, 4)
	b := f.build(t, 11, nil)
	cov := cover.MustCoverer(f.dom, cover.DefaultOptions(11)).Cover(testPolygon())

	got, err := b.SelectCovering(cov.Cells, allSpecs())
	if err != nil {
		t.Fatal(err)
	}
	want := f.bruteForce(cov.Cells, nil, allSpecs())
	if got.Count != want.Count {
		t.Fatalf("count = %d, want %d", got.Count, want.Count)
	}
	for i := range got.Values {
		if !approxEqual(got.Values[i], want.Values[i]) {
			t.Fatalf("value[%d] = %g, want %g", i, got.Values[i], want.Values[i])
		}
	}
	if got.Count == 0 {
		t.Fatal("test polygon should contain points")
	}
}

func TestSelectWithFilterMatchesBruteForce(t *testing.T) {
	f := newFixture(t, 20000, 5)
	filter := column.Pred(f.schema, "passengers", column.OpGt, 1)
	b := f.build(t, 11, filter)
	cov := cover.MustCoverer(f.dom, cover.DefaultOptions(11)).Cover(testPolygon())

	got, err := b.SelectCovering(cov.Cells, allSpecs())
	if err != nil {
		t.Fatal(err)
	}
	want := f.bruteForce(cov.Cells, filter, allSpecs())
	if got.Count != want.Count {
		t.Fatalf("count = %d, want %d", got.Count, want.Count)
	}
	for i := range got.Values {
		if !approxEqual(got.Values[i], want.Values[i]) {
			t.Fatalf("value[%d] = %g, want %g", i, got.Values[i], want.Values[i])
		}
	}
}

func TestSelectBinaryOnlyEquivalent(t *testing.T) {
	f := newFixture(t, 20000, 6)
	b := f.build(t, 12, nil)
	cov := cover.MustCoverer(f.dom, cover.DefaultOptions(12)).Cover(testPolygon())

	a, err := b.SelectCovering(cov.Cells, allSpecs())
	if err != nil {
		t.Fatal(err)
	}
	c, err := b.SelectCoveringBinaryOnly(cov.Cells, allSpecs())
	if err != nil {
		t.Fatal(err)
	}
	if a.Count != c.Count {
		t.Fatalf("counts differ: %d vs %d", a.Count, c.Count)
	}
	for i := range a.Values {
		if !approxEqual(a.Values[i], c.Values[i]) {
			t.Fatalf("value[%d] differs: %g vs %g", i, a.Values[i], c.Values[i])
		}
	}
}

func TestCountMatchesSelect(t *testing.T) {
	f := newFixture(t, 25000, 7)
	for _, level := range []int{8, 10, 12, 14} {
		b := f.build(t, level, nil)
		cov := cover.MustCoverer(f.dom, cover.DefaultOptions(level)).Cover(testPolygon())

		sel, err := b.SelectCovering(cov.Cells, []AggSpec{{Func: AggCount}})
		if err != nil {
			t.Fatal(err)
		}
		cnt := b.CountCovering(cov.Cells)
		if cnt != sel.Count {
			t.Fatalf("level %d: COUNT = %d, SELECT count = %d", level, cnt, sel.Count)
		}
		if scan := b.CountCoveringScan(cov.Cells); scan != cnt {
			t.Fatalf("level %d: scan count = %d, range-sum count = %d", level, scan, cnt)
		}
	}
}

func TestCountOnWholeDomain(t *testing.T) {
	f := newFixture(t, 10000, 8)
	b := f.build(t, 10, nil)
	cov := []cellid.ID{cellid.Root()}
	if got := b.CountCovering(cov); got != b.NumTuples() {
		t.Fatalf("whole-domain count = %d, want %d", got, b.NumTuples())
	}
}

func TestEmptyCoveringAndMissRegions(t *testing.T) {
	f := newFixture(t, 5000, 9)
	b := f.build(t, 10, nil)

	res, err := b.SelectCovering(nil, allSpecs())
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != 0 {
		t.Fatalf("empty covering count = %d", res.Count)
	}
	if !math.IsNaN(res.Values[2]) { // min over empty set
		t.Fatalf("min over empty covering = %g, want NaN", res.Values[2])
	}
	if b.CountCovering(nil) != 0 {
		t.Fatal("empty covering COUNT != 0")
	}
}

func TestSpecValidation(t *testing.T) {
	f := newFixture(t, 1000, 10)
	b := f.build(t, 8, nil)
	if _, err := b.SelectCovering(nil, []AggSpec{{Col: 99, Func: AggSum}}); err == nil {
		t.Fatal("out-of-range column accepted")
	}
	if _, err := b.SelectCovering(nil, []AggSpec{{Col: 0, Func: AggFunc(42)}}); err == nil {
		t.Fatal("unknown function accepted")
	}
	if _, err := b.SelectCovering(nil, []AggSpec{{Col: -1, Func: AggCount}}); err != nil {
		t.Fatalf("count with ignored column rejected: %v", err)
	}
}

func TestCoarsenMatchesDirectBuild(t *testing.T) {
	f := newFixture(t, 20000, 11)
	fine := f.build(t, 14, nil)
	for _, level := range []int{12, 10, 6, 0} {
		coarse, err := Coarsen(fine, level)
		if err != nil {
			t.Fatal(err)
		}
		direct := f.build(t, level, nil)
		if coarse.NumCells() != direct.NumCells() {
			t.Fatalf("level %d: coarsened %d cells, direct %d", level, coarse.NumCells(), direct.NumCells())
		}
		for i := 0; i < coarse.NumCells(); i++ {
			ca, da := coarse.CellAt(i), direct.CellAt(i)
			if ca.Key != da.Key || ca.Count != da.Count || ca.Offset != da.Offset {
				t.Fatalf("level %d cell %d: %+v vs %+v", level, i, ca, da)
			}
			for c := range ca.Cols {
				if !approxEqual(ca.Cols[c].Sum, da.Cols[c].Sum) ||
					ca.Cols[c].Min != da.Cols[c].Min || ca.Cols[c].Max != da.Cols[c].Max {
					t.Fatalf("level %d cell %d col %d aggregates differ", level, i, c)
				}
			}
		}
	}
}

func TestCoarsenRejectsFiner(t *testing.T) {
	f := newFixture(t, 1000, 12)
	b := f.build(t, 10, nil)
	if _, err := Coarsen(b, 12); err == nil {
		t.Fatal("coarsening to finer level accepted")
	}
	if _, err := Coarsen(b, -1); err == nil {
		t.Fatal("negative level accepted")
	}
}

func TestBuildIsolatedMatchesIncremental(t *testing.T) {
	f := newFixture(t, 10000, 13)
	filter := column.Pred(f.schema, "distance", column.OpGe, 4)
	incr := f.build(t, 12, filter)
	iso, stats, err := BuildIsolated(f.dom, f.pts, f.schema, f.cols,
		CleanRule{Bounds: f.dom.Bound()}, BuildOptions{Level: 12, Filter: filter})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Total() <= 0 {
		t.Fatal("missing build stats")
	}
	if iso.NumTuples() != incr.NumTuples() || iso.NumCells() != incr.NumCells() {
		t.Fatalf("isolated (%d tuples, %d cells) != incremental (%d tuples, %d cells)",
			iso.NumTuples(), iso.NumCells(), incr.NumTuples(), incr.NumCells())
	}
	for i := 0; i < iso.NumCells(); i++ {
		if iso.keys[i] != incr.keys[i] || iso.counts[i] != incr.counts[i] {
			t.Fatalf("cell %d differs", i)
		}
	}
}

func TestUpdateIntoExistingCells(t *testing.T) {
	f := newFixture(t, 10000, 14)
	b := f.build(t, 8, nil) // coarse level: new points land in existing cells
	before := b.NumTuples()

	// Insert points at locations of existing rows to guarantee cell hits.
	batch := &UpdateBatch{
		Points: []geom.Point{f.pts[0], f.pts[1], f.pts[2]},
		Cols: [][]float64{
			{100, 200, 300},
			{1, 2, 3},
			{1, 1, 1},
		},
	}
	if err := b.Update(batch); err != nil {
		t.Fatal(err)
	}
	if b.NumTuples() != before+3 {
		t.Fatalf("tuples = %d, want %d", b.NumTuples(), before+3)
	}
	// Offsets invariant must hold.
	var running uint32
	for i := 0; i < b.NumCells(); i++ {
		if b.offsets[i] != running {
			t.Fatalf("offset invariant broken at %d", i)
		}
		running += b.counts[i]
	}
	// COUNT over the whole domain reflects the update.
	if got := b.CountCovering([]cellid.ID{cellid.Root()}); got != before+3 {
		t.Fatalf("count after update = %d, want %d", got, before+3)
	}
	// Max fare must now be at least 300.
	if b.header.Cols[0].Max < 300 {
		t.Fatalf("header max fare %g, want >= 300", b.header.Cols[0].Max)
	}
}

func TestUpdateRequiresRebuildForNewRegion(t *testing.T) {
	dom := cellid.MustDomain(geom.Rect{Min: geom.Pt(0, 0), Max: geom.Pt(100, 100)})
	schema := column.NewSchema("v")
	// All base points in one corner.
	pts := []geom.Point{{X: 1, Y: 1}, {X: 2, Y: 2}}
	cols := [][]float64{{1, 2}}
	base, _, err := Extract(dom, pts, schema, cols, CleanRule{}, -1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(base, BuildOptions{Level: 10})
	if err != nil {
		t.Fatal(err)
	}
	batch := &UpdateBatch{Points: []geom.Point{{X: 99, Y: 99}}, Cols: [][]float64{{5}}}
	if err := b.Update(batch); err != ErrRebuildRequired {
		t.Fatalf("err = %v, want ErrRebuildRequired", err)
	}
	// The failed update must not have mutated anything.
	if b.NumTuples() != 2 {
		t.Fatalf("tuples = %d after failed update", b.NumTuples())
	}

	nb, err := b.RebuildWith(batch)
	if err != nil {
		t.Fatal(err)
	}
	if nb.NumTuples() != 3 {
		t.Fatalf("rebuilt tuples = %d, want 3", nb.NumTuples())
	}
}

func TestUpdateHonoursFilter(t *testing.T) {
	f := newFixture(t, 5000, 15)
	filter := column.Pred(f.schema, "fare", column.OpGt, 20)
	b := f.build(t, 8, filter)
	before := b.NumTuples()

	batch := &UpdateBatch{
		Points: []geom.Point{f.pts[0], f.pts[1]},
		Cols:   [][]float64{{5, 50}, {1, 1}, {1, 1}}, // first row fails filter
	}
	if err := b.Update(batch); err != nil {
		t.Fatal(err)
	}
	if b.NumTuples() != before+1 {
		t.Fatalf("tuples = %d, want %d", b.NumTuples(), before+1)
	}
}

func TestSerializeRoundTrip(t *testing.T) {
	f := newFixture(t, 8000, 16)
	filter := column.Pred(f.schema, "fare", column.OpGt, 10)
	b := f.build(t, 11, filter)

	var buf bytes.Buffer
	if _, err := b.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	rb, err := ReadBlock(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if rb.Level() != b.Level() || rb.NumCells() != b.NumCells() || rb.NumTuples() != b.NumTuples() {
		t.Fatalf("round trip mismatch: %v vs %v", rb, b)
	}
	if rb.Schema().NumCols() != b.Schema().NumCols() {
		t.Fatal("schema lost")
	}
	if len(rb.Filter()) != len(b.Filter()) {
		t.Fatal("filter lost")
	}
	// Queries on the deserialized block give identical results.
	cov := cover.MustCoverer(f.dom, cover.DefaultOptions(11)).Cover(testPolygon())
	a, err := b.SelectCovering(cov.Cells, allSpecs())
	if err != nil {
		t.Fatal(err)
	}
	c, err := rb.SelectCovering(cov.Cells, allSpecs())
	if err != nil {
		t.Fatal(err)
	}
	if a.Count != c.Count {
		t.Fatalf("counts differ after round trip: %d vs %d", a.Count, c.Count)
	}
	for i := range a.Values {
		if !approxEqual(a.Values[i], c.Values[i]) {
			t.Fatalf("value[%d] differs after round trip", i)
		}
	}
}

func TestReadBlockRejectsGarbage(t *testing.T) {
	if _, err := ReadBlock(bytes.NewReader([]byte("not a block"))); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := ReadBlock(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty input accepted")
	}
}

func TestAggregateCell(t *testing.T) {
	f := newFixture(t, 10000, 17)
	b := f.build(t, 12, nil)
	// Aggregate over the root must equal the header.
	count, cols := b.AggregateCell(cellid.Root())
	if count != b.NumTuples() {
		t.Fatalf("root aggregate count = %d, want %d", count, b.NumTuples())
	}
	h := b.Header()
	for c := range cols {
		if !approxEqual(cols[c].Sum, h.Cols[c].Sum) || cols[c].Min != h.Cols[c].Min || cols[c].Max != h.Cols[c].Max {
			t.Fatalf("root aggregate col %d differs from header", c)
		}
	}
	// Aggregate over one stored cell equals that cell.
	ca := b.CellAt(b.NumCells() / 2)
	count, cols = b.AggregateCell(ca.Key)
	if count != uint64(ca.Count) {
		t.Fatalf("cell aggregate count = %d, want %d", count, ca.Count)
	}
	for c := range cols {
		if !approxEqual(cols[c].Sum, ca.Cols[c].Sum) {
			t.Fatalf("cell aggregate col %d sum differs", c)
		}
	}
}

func TestSizeBytesGrowsWithLevel(t *testing.T) {
	f := newFixture(t, 30000, 18)
	var prev int
	for _, level := range []int{6, 9, 12, 15} {
		b := f.build(t, level, nil)
		size := b.SizeBytes()
		if size <= prev {
			t.Fatalf("size at level %d (%d) not larger than previous (%d)", level, size, prev)
		}
		prev = size
	}
}
