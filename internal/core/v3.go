package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"unsafe"

	"geoblocks/internal/cellid"
	"geoblocks/internal/column"
	"geoblocks/internal/geom"
)

// Format v3: a random-access block layout that a reader can query in place.
//
// Versions 1 and 2 are sequential streams: every array element passes
// through an encode/decode step, so opening a block costs a full pass over
// its bytes. Version 3 instead lays the file out so the aggregate arrays
// are already in their in-memory representation — little-endian, 8-byte
// aligned, struct-of-arrays — and puts a fixed-width section table up
// front. A reader validates the header and table, then constructs
// unsafe.Slice views directly over the file bytes (typically an mmap'd
// region): no per-element decode, no allocation proportional to data size.
//
//	header (128 bytes, fixed width, little-endian)
//	section table (numSections × {off u64, len u64})
//	meta (schema names, filter predicates, per-column header aggregates)
//	zero pad to 8-byte boundary (= dataOff)
//	data sections, each starting 8-byte aligned:
//	  keys, offsets, counts, minKeys, maxKeys,
//	  then per column: sums, mins, maxs
//
// Two checksums split validation into an eager and a lazy half. tableCRC
// covers everything before dataOff (plus the dataCRC word): cheap to
// verify at open time, and enough to trust the geometry of the file.
// dataCRC covers [dataOff, fileLen): verified lazily, when a shard is
// first faulted in, so opening a snapshot does not touch the data pages.
// docs/FORMAT.md Sec. 8 specifies the layout byte by byte.
const (
	v3Magic   = "GBK3"
	v3Version = 3

	// v3HeaderSize is the fixed header length; the section table starts
	// immediately after.
	v3HeaderSize = 128

	// Fixed header field offsets (see docs/FORMAT.md Sec. 8.1).
	v3OffMagic       = 0   // 4 bytes
	v3OffVersion     = 4   // u32
	v3OffFileLen     = 8   // u64
	v3OffLevel       = 16  // u32
	v3OffNumCols     = 20  // u32
	v3OffNumPreds    = 24  // u32
	v3OffNumSections = 28  // u32
	v3OffNumCells    = 32  // u64
	v3OffMinCell     = 40  // u64
	v3OffMaxCell     = 48  // u64
	v3OffCount       = 56  // u64
	v3OffBound       = 64  // 4 × f64
	v3OffDataOff     = 96  // u64
	v3OffMetaOff     = 104 // u64
	v3OffMetaLen     = 112 // u64
	v3OffTableCRC    = 120 // u32
	v3OffDataCRC     = 124 // u32
)

// ErrReadOnly reports a mutation attempt on a mapped (view-backed)
// GeoBlock. Mapped blocks alias read-only file bytes; callers that need
// updates must restore the block eagerly (decode to heap) first.
var ErrReadOnly = errors.New("core: mapped block is read-only")

// V3Info is the metadata recovered by eagerly validating a v3 file's
// header, section table and meta section — everything a lazy open needs
// to route queries and budget memory without touching the data pages.
type V3Info struct {
	FileLen  int64
	Level    int
	NumCells int
	Rows     uint64
	MinCell  cellid.ID
	MaxCell  cellid.ID
	Bound    geom.Rect
	Schema   column.Schema
	Filter   column.Filter
	// HeaderCols are the per-column block-wide aggregates.
	HeaderCols []ColAggregate
	// DataOff is where the lazily-checksummed data region begins; a
	// prober must read [0, DataOff) to verify the table checksum.
	DataOff int64
	// DataCRC is the stored CRC32C of [DataOff, FileLen), verified by
	// MapBlock at fault time.
	DataCRC uint32

	// secs are the parsed, validated section extents (internal).
	secs []v3Section
}

type v3Section struct {
	off int64
	ln  int64
}

func v3Align8(n int64) int64 { return (n + 7) &^ 7 }

// v3SectionWidths returns the element width of each section in table
// order: keys, offsets, counts, minKeys, maxKeys, then per column sums,
// mins, maxs.
func v3SectionWidths(numCols int) []int64 {
	w := []int64{8, 4, 4, 8, 8}
	for c := 0; c < numCols; c++ {
		w = append(w, 8, 8, 8)
	}
	return w
}

// EncodeV3 serialises the block in format v3 and returns the complete
// file image. The layout is computed exactly up front, so the buffer is
// allocated once at its final size.
func (b *GeoBlock) EncodeV3() []byte {
	n := int64(len(b.keys))
	nc := len(b.cols)
	numSections := 5 + 3*nc
	tableOff := int64(v3HeaderSize)
	metaOff := tableOff + 16*int64(numSections)
	metaLen := int64(0)
	for _, name := range b.schema.Names {
		metaLen += 4 + int64(len(name))
	}
	metaLen += 16 * int64(len(b.filter))
	metaLen += 24 * int64(nc)
	dataOff := v3Align8(metaOff + metaLen)

	widths := v3SectionWidths(nc)
	secs := make([]v3Section, numSections)
	cur := dataOff
	for i, w := range widths {
		secs[i] = v3Section{off: cur, ln: w * n}
		cur = v3Align8(cur + w*n)
	}
	fileLen := cur

	buf := make([]byte, fileLen)
	le := binary.LittleEndian
	copy(buf[v3OffMagic:], v3Magic)
	le.PutUint32(buf[v3OffVersion:], v3Version)
	le.PutUint64(buf[v3OffFileLen:], uint64(fileLen))
	le.PutUint32(buf[v3OffLevel:], uint32(b.level))
	le.PutUint32(buf[v3OffNumCols:], uint32(nc))
	le.PutUint32(buf[v3OffNumPreds:], uint32(len(b.filter)))
	le.PutUint32(buf[v3OffNumSections:], uint32(numSections))
	le.PutUint64(buf[v3OffNumCells:], uint64(n))
	le.PutUint64(buf[v3OffMinCell:], uint64(b.header.MinCell))
	le.PutUint64(buf[v3OffMaxCell:], uint64(b.header.MaxCell))
	le.PutUint64(buf[v3OffCount:], b.header.Count)
	bound := b.domain.Bound()
	le.PutUint64(buf[v3OffBound:], math.Float64bits(bound.Min.X))
	le.PutUint64(buf[v3OffBound+8:], math.Float64bits(bound.Min.Y))
	le.PutUint64(buf[v3OffBound+16:], math.Float64bits(bound.Max.X))
	le.PutUint64(buf[v3OffBound+24:], math.Float64bits(bound.Max.Y))
	le.PutUint64(buf[v3OffDataOff:], uint64(dataOff))
	le.PutUint64(buf[v3OffMetaOff:], uint64(metaOff))
	le.PutUint64(buf[v3OffMetaLen:], uint64(metaLen))

	for i, s := range secs {
		le.PutUint64(buf[tableOff+16*int64(i):], uint64(s.off))
		le.PutUint64(buf[tableOff+16*int64(i)+8:], uint64(s.ln))
	}

	p := metaOff
	for _, name := range b.schema.Names {
		le.PutUint32(buf[p:], uint32(len(name)))
		p += 4
		copy(buf[p:], name)
		p += int64(len(name))
	}
	for _, pr := range b.filter {
		le.PutUint32(buf[p:], uint32(pr.Col))
		le.PutUint32(buf[p+4:], uint32(pr.Op))
		le.PutUint64(buf[p+8:], math.Float64bits(pr.Value))
		p += 16
	}
	for _, c := range b.header.Cols {
		le.PutUint64(buf[p:], math.Float64bits(c.Min))
		le.PutUint64(buf[p+8:], math.Float64bits(c.Max))
		le.PutUint64(buf[p+16:], math.Float64bits(c.Sum))
		p += 24
	}

	putU64s := func(s v3Section, vals []cellid.ID) {
		for i, v := range vals {
			le.PutUint64(buf[s.off+8*int64(i):], uint64(v))
		}
	}
	putU32s := func(s v3Section, vals []uint32) {
		for i, v := range vals {
			le.PutUint32(buf[s.off+4*int64(i):], v)
		}
	}
	putF64s := func(s v3Section, vals []float64) {
		for i, v := range vals {
			le.PutUint64(buf[s.off+8*int64(i):], math.Float64bits(v))
		}
	}
	putU64s(secs[0], b.keys)
	putU32s(secs[1], b.offsets)
	putU32s(secs[2], b.counts)
	putU64s(secs[3], b.minKeys)
	putU64s(secs[4], b.maxKeys)
	for c := 0; c < nc; c++ {
		putF64s(secs[5+3*c], b.cols[c].sums)
		putF64s(secs[5+3*c+1], b.cols[c].mins)
		putF64s(secs[5+3*c+2], b.cols[c].maxs)
	}

	le.PutUint32(buf[v3OffDataCRC:], CRC32C(buf[dataOff:]))
	tableCRC := crc32.Checksum(buf[:v3OffTableCRC], crcTable)
	tableCRC = crc32.Update(tableCRC, crcTable, buf[v3OffDataCRC:dataOff])
	le.PutUint32(buf[v3OffTableCRC:], tableCRC)
	return buf
}

// V3DataOff reads just enough of a v3 header to report how many leading
// bytes a prober must supply to ProbeV3 (the data offset). It validates
// only magic, version and the basic geometry needed to trust the value.
func V3DataOff(hdr []byte, fileSize int64) (int64, error) {
	if len(hdr) < v3HeaderSize {
		return 0, fmt.Errorf("%w: v3 file shorter than %d-byte header (%d bytes)", ErrCorrupt, v3HeaderSize, len(hdr))
	}
	le := binary.LittleEndian
	if magic := string(hdr[v3OffMagic : v3OffMagic+4]); magic != v3Magic {
		if magic == frameMagic {
			return 0, fmt.Errorf("%w: v2 framed payload where a v3 file was expected", ErrVersion)
		}
		return 0, fmt.Errorf("%w: bad v3 magic %q", ErrCorrupt, magic)
	}
	if v := le.Uint32(hdr[v3OffVersion:]); v != v3Version {
		return 0, fmt.Errorf("%w: v3 container version %d (this build reads version %d)", ErrVersion, v, v3Version)
	}
	dataOff := le.Uint64(hdr[v3OffDataOff:])
	if dataOff < v3HeaderSize || dataOff%8 != 0 || int64(dataOff) > fileSize || dataOff > maxFramePayload {
		return 0, fmt.Errorf("%w: implausible v3 data offset %d (file %d bytes)", ErrCorrupt, dataOff, fileSize)
	}
	return int64(dataOff), nil
}

// ProbeV3 eagerly validates a v3 file's header, section table and meta
// section. prefix must hold at least the first DataOff bytes of the file
// (obtain the value via V3DataOff); fileSize is the on-disk length. The
// data region is NOT touched: its checksum is deferred to MapBlock.
// Every failure wraps ErrCorrupt or ErrVersion.
func ProbeV3(prefix []byte, fileSize int64) (*V3Info, error) {
	dataOff, err := V3DataOff(prefix, fileSize)
	if err != nil {
		return nil, err
	}
	if int64(len(prefix)) < dataOff {
		return nil, fmt.Errorf("%w: v3 probe prefix holds %d bytes, data offset is %d", ErrCorrupt, len(prefix), dataOff)
	}
	le := binary.LittleEndian
	info := &V3Info{
		FileLen: int64(le.Uint64(prefix[v3OffFileLen:])),
		Level:   int(le.Uint32(prefix[v3OffLevel:])),
		Rows:    le.Uint64(prefix[v3OffCount:]),
		MinCell: cellid.ID(le.Uint64(prefix[v3OffMinCell:])),
		MaxCell: cellid.ID(le.Uint64(prefix[v3OffMaxCell:])),
		DataOff: dataOff,
		DataCRC: le.Uint32(prefix[v3OffDataCRC:]),
	}
	if info.FileLen != fileSize {
		return nil, fmt.Errorf("%w: v3 header records %d bytes, file has %d", ErrCorrupt, info.FileLen, fileSize)
	}

	// The table checksum covers everything the lazy path trusts before
	// first fault — header, section table, meta and the dataCRC word —
	// excluding only its own four bytes.
	tableCRC := crc32.Checksum(prefix[:v3OffTableCRC], crcTable)
	tableCRC = crc32.Update(tableCRC, crcTable, prefix[v3OffDataCRC:dataOff])
	if stored := le.Uint32(prefix[v3OffTableCRC:]); stored != tableCRC {
		return nil, fmt.Errorf("%w: v3 table CRC32C %08x does not match stored %08x", ErrCorrupt, tableCRC, stored)
	}

	numCols := int(le.Uint32(prefix[v3OffNumCols:]))
	numPreds := int(le.Uint32(prefix[v3OffNumPreds:]))
	numSections := int(le.Uint32(prefix[v3OffNumSections:]))
	numCells := le.Uint64(prefix[v3OffNumCells:])
	if numCols > 1<<16 {
		return nil, fmt.Errorf("%w: implausible column count %d", ErrCorrupt, numCols)
	}
	if numPreds > 1<<16 {
		return nil, fmt.Errorf("%w: implausible predicate count %d", ErrCorrupt, numPreds)
	}
	if numCells > 1<<31 {
		return nil, fmt.Errorf("%w: implausible cell count %d", ErrCorrupt, numCells)
	}
	if numSections != 5+3*numCols {
		return nil, fmt.Errorf("%w: v3 section count %d, want %d for %d columns", ErrCorrupt, numSections, 5+3*numCols, numCols)
	}
	info.NumCells = int(numCells)

	tableOff := int64(v3HeaderSize)
	metaOff := int64(le.Uint64(prefix[v3OffMetaOff:]))
	metaLen := int64(le.Uint64(prefix[v3OffMetaLen:]))
	if metaOff != tableOff+16*int64(numSections) {
		return nil, fmt.Errorf("%w: v3 meta offset %d, want %d", ErrCorrupt, metaOff, tableOff+16*int64(numSections))
	}
	if metaLen < 0 || metaOff+metaLen > dataOff {
		return nil, fmt.Errorf("%w: v3 meta section [%d,%d) overruns data offset %d", ErrCorrupt, metaOff, metaOff+metaLen, dataOff)
	}

	// Section table: offsets must be 8-byte aligned (the whole point of
	// v3 — views alias the bytes directly), ascending, inside the data
	// region, and sized exactly numCells × element width.
	widths := v3SectionWidths(numCols)
	secs := make([]v3Section, numSections)
	prevEnd := dataOff
	for i := range secs {
		off := int64(le.Uint64(prefix[tableOff+16*int64(i):]))
		ln := int64(le.Uint64(prefix[tableOff+16*int64(i)+8:]))
		if want := widths[i] * int64(numCells); ln != want {
			return nil, fmt.Errorf("%w: v3 section %d length %d, want %d (%d cells × %d bytes)", ErrCorrupt, i, ln, want, numCells, widths[i])
		}
		if off%8 != 0 {
			return nil, fmt.Errorf("%w: v3 section %d offset %d is not 8-byte aligned", ErrCorrupt, i, off)
		}
		if off < prevEnd || off+ln > info.FileLen {
			return nil, fmt.Errorf("%w: v3 section %d extent [%d,%d) escapes [%d,%d)", ErrCorrupt, i, off, off+ln, prevEnd, info.FileLen)
		}
		secs[i] = v3Section{off: off, ln: ln}
		prevEnd = off + ln
	}
	info.secs = secs

	// Meta section: schema names, filter predicates, per-column header
	// aggregates — same field order as the v2 stream. It must consume
	// exactly metaLen bytes.
	meta := prefix[metaOff : metaOff+metaLen]
	p := int64(0)
	need := func(n int64) error {
		if p+n > int64(len(meta)) {
			return fmt.Errorf("%w: v3 meta section truncated at byte %d", ErrCorrupt, p)
		}
		return nil
	}
	names := make([]string, numCols)
	for i := range names {
		if err := need(4); err != nil {
			return nil, err
		}
		n := int64(le.Uint32(meta[p:]))
		p += 4
		if n > 1<<20 {
			return nil, fmt.Errorf("%w: implausible name length %d", ErrCorrupt, n)
		}
		if err := need(n); err != nil {
			return nil, err
		}
		names[i] = string(meta[p : p+n])
		p += n
	}
	info.Schema = column.NewSchema(names...)
	info.Filter = make(column.Filter, numPreds)
	for i := range info.Filter {
		if err := need(16); err != nil {
			return nil, err
		}
		info.Filter[i] = column.Predicate{
			Col:   int(le.Uint32(meta[p:])),
			Op:    column.Op(le.Uint32(meta[p+4:])),
			Value: math.Float64frombits(le.Uint64(meta[p+8:])),
		}
		p += 16
	}
	info.HeaderCols = make([]ColAggregate, numCols)
	for i := range info.HeaderCols {
		if err := need(24); err != nil {
			return nil, err
		}
		info.HeaderCols[i] = ColAggregate{
			Min: math.Float64frombits(le.Uint64(meta[p:])),
			Max: math.Float64frombits(le.Uint64(meta[p+8:])),
			Sum: math.Float64frombits(le.Uint64(meta[p+16:])),
		}
		p += 24
	}
	if p != metaLen {
		return nil, fmt.Errorf("%w: v3 meta section has %d trailing bytes", ErrCorrupt, metaLen-p)
	}

	info.Bound = geom.Rect{
		Min: geom.Pt(math.Float64frombits(le.Uint64(prefix[v3OffBound:])), math.Float64frombits(le.Uint64(prefix[v3OffBound+8:]))),
		Max: geom.Pt(math.Float64frombits(le.Uint64(prefix[v3OffBound+16:])), math.Float64frombits(le.Uint64(prefix[v3OffBound+24:]))),
	}
	return info, nil
}

// v3View reinterprets n elements of T starting at data[off]. Alignment is
// guaranteed by ProbeV3 (8-aligned section offsets) plus MapBlock's base
// alignment check.
func v3View[T any](data []byte, off int64, n int) []T {
	if n == 0 {
		return nil
	}
	return unsafe.Slice((*T)(unsafe.Pointer(&data[off])), n)
}

// MapBlock constructs a read-only GeoBlock whose aggregate arrays are
// views directly over data, a complete v3 file image (typically an mmap'd
// region). It runs the full eager validation plus the data-region CRC —
// this is the "fault" step of the lazy open path, the first time the data
// pages are actually read. The returned block answers queries through the
// ordinary accessor API but rejects Update with ErrReadOnly; derived
// structures (prefix sums, coarsened pyramid levels) live on the heap.
//
// The block aliases data for its lifetime: the caller must keep the
// backing region valid (and unmodified) until the block is discarded.
func MapBlock(data []byte) (*GeoBlock, error) {
	info, err := ProbeV3(data, int64(len(data)))
	if err != nil {
		return nil, err
	}
	if got := CRC32C(data[info.DataOff:]); got != info.DataCRC {
		return nil, fmt.Errorf("%w: v3 data CRC32C %08x does not match stored %08x", ErrCorrupt, got, info.DataCRC)
	}

	// Section offsets are 8-aligned within the file, so views are aligned
	// whenever the base pointer is page- (or at least 8-) aligned — always
	// true for mmap. For heap-read fallbacks Go's allocator aligns large
	// byte slices too, but that is an implementation detail: copy into a
	// uint64-backed buffer if it ever does not hold.
	if len(data) > 0 && uintptr(unsafe.Pointer(&data[0]))%8 != 0 {
		buf := make([]uint64, (len(data)+7)/8)
		aligned := unsafe.Slice((*byte)(unsafe.Pointer(&buf[0])), len(data))
		copy(aligned, data)
		data = aligned
	}

	dom, err := cellid.NewDomain(info.Bound)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	b := &GeoBlock{
		domain: dom,
		level:  info.Level,
		schema: info.Schema,
		filter: info.Filter,
		mapped: true,
	}
	if b.level < 0 || b.level > cellid.MaxLevel {
		return nil, fmt.Errorf("%w: implausible block level %d", ErrCorrupt, b.level)
	}
	b.header = Header{
		MinCell: info.MinCell,
		MaxCell: info.MaxCell,
		Count:   info.Rows,
		Cols:    info.HeaderCols,
	}
	n := info.NumCells
	secs := info.secs
	b.keys = v3View[cellid.ID](data, secs[0].off, n)
	b.offsets = v3View[uint32](data, secs[1].off, n)
	b.counts = v3View[uint32](data, secs[2].off, n)
	b.minKeys = v3View[cellid.ID](data, secs[3].off, n)
	b.maxKeys = v3View[cellid.ID](data, secs[4].off, n)
	nc := len(info.HeaderCols)
	b.cols = make([]colStore, nc)
	for c := 0; c < nc; c++ {
		b.cols[c].sums = v3View[float64](data, secs[5+3*c].off, n)
		b.cols[c].mins = v3View[float64](data, secs[5+3*c+1].off, n)
		b.cols[c].maxs = v3View[float64](data, secs[5+3*c+2].off, n)
	}
	b.buildPrefixes()
	return b, nil
}
