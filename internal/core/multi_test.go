package core

import (
	"math"
	"math/rand"
	"testing"

	"geoblocks/internal/cellid"
	"geoblocks/internal/column"
	"geoblocks/internal/cover"
	"geoblocks/internal/geom"
)

// TestSelectCoveringMultiMatchesPartial is the multi-kernel's identity
// contract: every accumulator of one shared pass must be bit-identical —
// count, every value's float bits, cells visited — to
// SelectCoveringPartial run on its covering alone, across overlapping,
// disjoint, empty and out-of-range coverings.
func TestSelectCoveringMultiMatchesPartial(t *testing.T) {
	f := newFixture(t, 20000, 3)
	b := f.build(t, 12, column.Filter{})
	c := cover.MustCoverer(f.dom, cover.DefaultOptions(12))
	rng := rand.New(rand.NewSource(9))

	var covs [][]cellid.ID
	for i := 0; i < 40; i++ {
		center := geom.Pt(rng.Float64()*100, rng.Float64()*100)
		if i%3 == 0 {
			// Deliberately overlapping hotspot rects.
			center = geom.Pt(30+rng.NormFloat64()*3, 40+rng.NormFloat64()*3)
		}
		r := geom.RectFromCenter(center, 0.5+rng.Float64()*15, 0.5+rng.Float64()*15)
		covs = append(covs, c.CoverRect(r).Cells)
	}
	covs = append(covs, nil) // empty covering: identity partial
	// A covering entirely past the block's key range.
	covs = append(covs, c.CoverRect(geom.RectFromCenter(geom.Pt(99.9, 99.9), 0.01, 0.01)).Cells)

	specs := allSpecs()
	accs, err := b.SelectCoveringMulti(covs, specs)
	if err != nil {
		t.Fatalf("multi: %v", err)
	}
	if len(accs) != len(covs) {
		t.Fatalf("%d accumulators for %d coverings", len(accs), len(covs))
	}
	for i, cov := range covs {
		want, err := b.SelectCoveringPartial(cov, specs)
		if err != nil {
			t.Fatalf("partial %d: %v", i, err)
		}
		got, wantRes := accs[i].Result(), want.Result()
		if got.Count != wantRes.Count {
			t.Fatalf("covering %d: count %d, serial %d", i, got.Count, wantRes.Count)
		}
		if got.CellsVisited != wantRes.CellsVisited {
			t.Fatalf("covering %d: visited %d, serial %d", i, got.CellsVisited, wantRes.CellsVisited)
		}
		for k := range wantRes.Values {
			if math.Float64bits(got.Values[k]) != math.Float64bits(wantRes.Values[k]) {
				t.Fatalf("covering %d value %d: %v, serial %v (bits differ)",
					i, k, got.Values[k], wantRes.Values[k])
			}
		}
	}
}

// TestSelectCoveringMultiMerges checks that multi-kernel partials from
// different blocks (shards) merge exactly like serial partials — the
// store's per-shard join fan-out depends on it.
func TestSelectCoveringMultiMerges(t *testing.T) {
	f := newFixture(t, 8000, 5)
	b1 := f.build(t, 11, column.Filter{})
	b2 := f.build(t, 11, column.Filter{})
	c := cover.MustCoverer(f.dom, cover.DefaultOptions(11))
	cov := c.CoverRect(geom.RectFromCenter(geom.Pt(35, 45), 12, 9)).Cells
	specs := allSpecs()

	m1, err := b1.SelectCoveringMulti([][]cellid.ID{cov}, specs)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := b2.SelectCoveringMulti([][]cellid.ID{cov}, specs)
	if err != nil {
		t.Fatal(err)
	}
	if err := m1[0].MergeFrom(m2[0]); err != nil {
		t.Fatalf("merge: %v", err)
	}
	s1, _ := b1.SelectCoveringPartial(cov, specs)
	s2, _ := b2.SelectCoveringPartial(cov, specs)
	if err := s1.MergeFrom(s2); err != nil {
		t.Fatalf("serial merge: %v", err)
	}
	got, want := m1[0].Result(), s1.Result()
	if got.Count != want.Count || got.CellsVisited != want.CellsVisited {
		t.Fatalf("merged multi %+v, serial %+v", got, want)
	}
	for k := range want.Values {
		if math.Float64bits(got.Values[k]) != math.Float64bits(want.Values[k]) {
			t.Fatalf("merged value %d: %v vs %v", k, got.Values[k], want.Values[k])
		}
	}
}

// TestSelectCoveringMultiValidatesSpecs: bad specs fail up front, before
// any accumulator exists.
func TestSelectCoveringMultiValidatesSpecs(t *testing.T) {
	f := newFixture(t, 100, 1)
	b := f.build(t, 8, column.Filter{})
	if _, err := b.SelectCoveringMulti(nil, []AggSpec{{Col: 99, Func: AggSum}}); err == nil {
		t.Fatal("out-of-range column accepted")
	}
	accs, err := b.SelectCoveringMulti(nil, allSpecs())
	if err != nil || len(accs) != 0 {
		t.Fatalf("empty multi: %v, %d accs", err, len(accs))
	}
}
