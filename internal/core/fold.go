package core

import (
	"fmt"
	"math"

	"geoblocks/internal/cellid"
)

// FoldRows builds a new GeoBlock by folding raw rows into b's cell
// aggregates — the compaction step of the base+delta write path. Unlike
// Update it can open cells that have no aggregate yet (the sorted layout is
// rebuilt, not patched), and unlike RebuildWith it needs no base data
// table: one merge pass walks b's sorted cells and the leaf-sorted rows
// together, copying untouched cells verbatim and combining the rest.
//
// b is never mutated, so FoldRows is safe to run concurrently with readers
// of b; the caller swaps the returned block in once it is complete. Rows
// must be sorted ascending by leaf id; rows not matching the block's filter
// are dropped, mirroring Update. For cells untouched by any row every
// aggregate is copied bit-identically; for touched cells COUNT/MIN/MAX
// equal a from-scratch rebuild exactly and SUM appends the new values after
// the existing per-cell sum (the reassociation bound of DESIGN.md Sec. 6,
// exact for integer-valued columns below 2^53).
//
// The new block keeps b's base-table reference; like Update it diverges
// from Base() until the next full rebuild.
func FoldRows(b *GeoBlock, leaves []cellid.ID, cols [][]float64) (*GeoBlock, error) {
	if b.mapped {
		return nil, ErrReadOnly
	}
	if err := b.validateRows(leaves, cols); err != nil {
		return nil, err
	}
	for i := 1; i < len(leaves); i++ {
		if leaves[i] < leaves[i-1] {
			return nil, fmt.Errorf("core: fold rows not sorted by leaf id at index %d", i)
		}
	}

	// Filter pass: indices of qualifying rows, in leaf order.
	keep := make([]int, 0, len(leaves))
rows:
	for i := range leaves {
		for _, pr := range b.filter {
			if !pr.Matches(cols[pr.Col][i]) {
				continue rows
			}
		}
		keep = append(keep, i)
	}
	if b.header.Count+uint64(len(keep)) > math.MaxUint32 {
		return nil, fmt.Errorf("core: fold exceeds uint32 offsets (%d+%d rows)", b.header.Count, len(keep))
	}

	nb := &GeoBlock{
		domain: b.domain,
		level:  b.level,
		schema: b.schema,
		filter: b.filter,
		cols:   make([]colStore, len(b.cols)),
		base:   b.base,
		header: Header{
			Count: b.header.Count + uint64(len(keep)),
			Cols:  append([]ColAggregate(nil), b.header.Cols...),
		},
	}
	n := len(b.keys) // merge output is at most n + distinct new cells
	nb.keys = make([]cellid.ID, 0, n+1)
	nb.counts = make([]uint32, 0, n+1)
	nb.minKeys = make([]cellid.ID, 0, n+1)
	nb.maxKeys = make([]cellid.ID, 0, n+1)
	for c := range nb.cols {
		nb.cols[c].sums = make([]float64, 0, n+1)
		nb.cols[c].mins = make([]float64, 0, n+1)
		nb.cols[c].maxs = make([]float64, 0, n+1)
	}

	copyCell := func(i int) {
		nb.keys = append(nb.keys, b.keys[i])
		nb.counts = append(nb.counts, b.counts[i])
		nb.minKeys = append(nb.minKeys, b.minKeys[i])
		nb.maxKeys = append(nb.maxKeys, b.maxKeys[i])
		for c := range nb.cols {
			nb.cols[c].sums = append(nb.cols[c].sums, b.cols[c].sums[i])
			nb.cols[c].mins = append(nb.cols[c].mins, b.cols[c].mins[i])
			nb.cols[c].maxs = append(nb.cols[c].maxs, b.cols[c].maxs[i])
		}
	}
	openCell := func(cell, leaf cellid.ID) {
		nb.keys = append(nb.keys, cell)
		nb.counts = append(nb.counts, 0)
		nb.minKeys = append(nb.minKeys, leaf)
		nb.maxKeys = append(nb.maxKeys, leaf)
		for c := range nb.cols {
			nb.cols[c].appendEmpty()
		}
	}
	// addRow folds row k into the last output cell and the header.
	addRow := func(k int) {
		last := len(nb.keys) - 1
		leaf := leaves[k]
		nb.counts[last]++
		if leaf < nb.minKeys[last] {
			nb.minKeys[last] = leaf
		}
		if leaf > nb.maxKeys[last] {
			nb.maxKeys[last] = leaf
		}
		for c := range nb.cols {
			v := cols[c][k]
			nb.cols[c].addValueAt(last, v)
			nb.header.Cols[c].addValue(v)
		}
	}

	i, j := 0, 0
	for steps := 0; i < len(b.keys) || j < len(keep); steps++ {
		maybeYield(steps)
		var rowCell cellid.ID
		if j < len(keep) {
			rowCell = leaves[keep[j]].Parent(b.level)
		}
		switch {
		case j >= len(keep) || (i < len(b.keys) && b.keys[i] < rowCell):
			copyCell(i)
			i++
		case i >= len(b.keys) || rowCell < b.keys[i]:
			openCell(rowCell, leaves[keep[j]])
			for j < len(keep) && leaves[keep[j]].Parent(b.level) == rowCell {
				addRow(keep[j])
				j++
			}
		default: // rowCell == b.keys[i]: copy then fold the run of rows
			copyCell(i)
			i++
			for j < len(keep) && leaves[keep[j]].Parent(b.level) == rowCell {
				addRow(keep[j])
				j++
			}
		}
	}

	// Restore the offset invariant in one sweep, then the prefix sums.
	nb.offsets = make([]uint32, len(nb.keys))
	var running uint32
	for i := range nb.keys {
		nb.offsets[i] = running
		running += nb.counts[i]
	}
	if len(nb.keys) > 0 {
		nb.header.MinCell = nb.keys[0]
		nb.header.MaxCell = nb.keys[len(nb.keys)-1]
	}
	nb.buildPrefixes()
	return nb, nil
}
