package core_test

// Equivalence suite for SelectCoveringParallel: partitioning a covering
// across workers and merging the partial accumulators must reproduce the
// serial SelectCovering — bit-identically for COUNT/MIN/MAX (associative
// merges), and bit-identically for SUM/AVG too on the integer-valued test
// data, where every partial sum is exactly representable and
// reassociation therefore cannot change the result.

import (
	"math"
	"math/rand"
	"testing"

	"geoblocks/internal/core"
)

func parallelSpecs() []core.AggSpec {
	return []core.AggSpec{
		{Func: core.AggCount},
		{Col: 0, Func: core.AggSum},
		{Col: 0, Func: core.AggMin},
		{Col: 1, Func: core.AggMax},
		{Col: 1, Func: core.AggAvg},
	}
}

func TestSelectCoveringParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for round := 0; round < 8; round++ {
		rc := newRandomCase(t, rng)
		specs := parallelSpecs()
		want, err := rc.block.SelectCovering(rc.cov, specs)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{0, 1, 2, 3, 4, 7, 16} {
			got, err := rc.block.SelectCoveringParallel(rc.cov, specs, workers)
			if err != nil {
				t.Fatalf("round %d workers %d: %v", round, workers, err)
			}
			if got.Count != want.Count {
				t.Fatalf("round %d workers %d: count %d != %d", round, workers, got.Count, want.Count)
			}
			if got.CellsVisited != want.CellsVisited {
				t.Fatalf("round %d workers %d: visited %d != %d", round, workers, got.CellsVisited, want.CellsVisited)
			}
			for i := range want.Values {
				gv, wv := got.Values[i], want.Values[i]
				if math.IsNaN(wv) && math.IsNaN(gv) {
					continue
				}
				// Integer-valued columns: reassociation is exact, so
				// even SUM/AVG must match bit for bit.
				if gv != wv {
					t.Fatalf("round %d workers %d: value[%d] (%v) = %v, want %v",
						round, workers, i, specs[i].Func, gv, wv)
				}
			}
		}
	}
}

func TestSelectCoveringParallelSmallCoveringFallsBack(t *testing.T) {
	rng := rand.New(rand.NewSource(78))
	rc := newRandomCase(t, rng)
	specs := parallelSpecs()
	// A covering below the per-worker cutoff must take the serial kernel:
	// identical Results, including the float association for SUM.
	small := rc.cov
	if len(small) > 64 {
		small = small[:64]
	}
	want, err := rc.block.SelectCovering(small, specs)
	if err != nil {
		t.Fatal(err)
	}
	got, err := rc.block.SelectCoveringParallel(small, specs, 8)
	if err != nil {
		t.Fatal(err)
	}
	if got.Count != want.Count || got.CellsVisited != want.CellsVisited {
		t.Fatalf("fallback differs: %+v vs %+v", got, want)
	}
	for i := range want.Values {
		if got.Values[i] != want.Values[i] && !(math.IsNaN(got.Values[i]) && math.IsNaN(want.Values[i])) {
			t.Fatalf("fallback value[%d] = %v, want %v", i, got.Values[i], want.Values[i])
		}
	}
}

func TestSelectCoveringParallelEmptyAndInvalid(t *testing.T) {
	rng := rand.New(rand.NewSource(79))
	rc := newRandomCase(t, rng)
	res, err := rc.block.SelectCoveringParallel(nil, parallelSpecs(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != 0 {
		t.Fatalf("empty covering counted %d", res.Count)
	}
	if _, err := rc.block.SelectCoveringParallel(rc.cov, []core.AggSpec{{Col: 99, Func: core.AggSum}}, 4); err == nil {
		t.Fatal("out-of-range column accepted")
	}
}

func TestSelectCoveringParallelConcurrentCallers(t *testing.T) {
	// The parallel path must itself be reentrant: several goroutines
	// fanning out over the same block concurrently.
	rng := rand.New(rand.NewSource(80))
	rc := newRandomCase(t, rng)
	specs := parallelSpecs()
	want, err := rc.block.SelectCovering(rc.cov, specs)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func() {
			for i := 0; i < 20; i++ {
				got, err := rc.block.SelectCoveringParallel(rc.cov, specs, 4)
				if err != nil {
					done <- err
					return
				}
				if got.Count != want.Count {
					done <- errCountMismatch
					return
				}
			}
			done <- nil
		}()
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

var errCountMismatch = errMismatch{}

type errMismatch struct{}

func (errMismatch) Error() string { return "parallel count mismatch" }
