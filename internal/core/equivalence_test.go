package core_test

// Randomized equivalence suite for the SELECT variants: the prefix-sum
// fast path (SelectCovering), the preserved scan ablation
// (SelectCoveringScan) and the binary-search-only ablation
// (SelectCoveringBinaryOnly) must return bit-identical Results over
// randomized polygons, filters and block levels, and all three must match
// a row-level brute force and the BinarySearch baseline.
//
// Values are drawn as small integers so every partial sum is exactly
// representable; prefix-sum endpoint subtraction then has to reproduce the
// per-cell accumulation bit for bit, not merely within tolerance.

import (
	"math"
	"math/rand"
	"testing"

	"geoblocks/internal/baseline"
	"geoblocks/internal/cellid"
	"geoblocks/internal/column"
	"geoblocks/internal/core"
	"geoblocks/internal/cover"
	"geoblocks/internal/geom"
)

type randomCase struct {
	dom    cellid.Domain
	schema column.Schema
	pts    []geom.Point
	cols   [][]float64
	base   *core.BaseData
	block  *core.GeoBlock
	filter column.Filter
	level  int
	cov    []cellid.ID
}

// newRandomCase builds a random clustered dataset, block and covering.
func newRandomCase(t *testing.T, rng *rand.Rand) *randomCase {
	t.Helper()
	dom := cellid.MustDomain(geom.Rect{Min: geom.Pt(0, 0), Max: geom.Pt(100, 100)})
	schema := column.NewSchema("a", "b")
	n := 2000 + rng.Intn(4000)
	pts := make([]geom.Point, n)
	cols := [][]float64{make([]float64, n), make([]float64, n)}
	cx, cy := 20+rng.Float64()*60, 20+rng.Float64()*60
	for i := range pts {
		if i%3 != 0 { // two thirds clustered around a random hotspot
			pts[i] = geom.Pt(
				math.Min(99.9, math.Max(0.1, cx+rng.NormFloat64()*6)),
				math.Min(99.9, math.Max(0.1, cy+rng.NormFloat64()*6)))
		} else {
			pts[i] = geom.Pt(rng.Float64()*100, rng.Float64()*100)
		}
		// Integer values keep all sums exactly representable.
		cols[0][i] = float64(rng.Intn(1000))
		cols[1][i] = float64(rng.Intn(50))
	}
	base, _, err := core.Extract(dom, pts, schema, cols, core.CleanRule{}, -1)
	if err != nil {
		t.Fatal(err)
	}
	var filter column.Filter
	if rng.Intn(2) == 0 {
		filter = column.Pred(schema, "b", column.OpGe, float64(rng.Intn(25)))
	}
	level := 8 + rng.Intn(9) // 8..16
	block, err := core.Build(base, core.BuildOptions{Level: level, Filter: filter})
	if err != nil {
		t.Fatal(err)
	}
	c := cover.MustCoverer(dom, cover.DefaultOptions(level))
	var cov []cellid.ID
	if rng.Intn(2) == 0 {
		r := rng.Float64()*25 + 5
		cov = c.Cover(geom.RegularPolygon(geom.Pt(cx, cy), r, 3+rng.Intn(8))).Cells
	} else {
		x0, y0 := rng.Float64()*80, rng.Float64()*80
		cov = c.CoverRect(geom.Rect{
			Min: geom.Pt(x0, y0),
			Max: geom.Pt(x0+rng.Float64()*20, y0+rng.Float64()*20),
		}).Cells
	}
	return &randomCase{dom: dom, schema: schema, pts: pts, cols: cols,
		base: base, block: block, filter: filter, level: level, cov: cov}
}

func randomSpecs(rng *rand.Rand) []core.AggSpec {
	fns := []core.AggFunc{core.AggCount, core.AggSum, core.AggMin, core.AggMax, core.AggAvg}
	n := 1 + rng.Intn(5)
	specs := make([]core.AggSpec, n)
	for i := range specs {
		specs[i] = core.AggSpec{Col: rng.Intn(2), Func: fns[rng.Intn(len(fns))]}
	}
	return specs
}

// bitIdentical reports whether two Results are equal down to the float bit
// patterns (NaN == NaN included).
func bitIdentical(a, b core.Result) bool {
	if a.Count != b.Count || a.CellsVisited != b.CellsVisited || len(a.Values) != len(b.Values) {
		return false
	}
	for i := range a.Values {
		if math.Float64bits(a.Values[i]) != math.Float64bits(b.Values[i]) {
			return false
		}
	}
	return true
}

// bruteForce aggregates raw rows inside the covering, honouring the
// block's filter — the ground truth every variant must match.
func (rc *randomCase) bruteForce(specs []core.AggSpec) core.Result {
	acc := baseline.NewRowAccumulator(specs)
	tbl := rc.base.Table
	for i := 0; i < tbl.NumRows(); i++ {
		if !rc.filter.MatchesRow(tbl, i) {
			continue
		}
		leaf := cellid.ID(tbl.Keys[i])
		for _, qc := range rc.cov {
			if qc.Contains(leaf) {
				acc.AddRow(tbl, i)
				break
			}
		}
	}
	return acc.Result()
}

func TestSelectVariantsRandomizedEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(404))
	trials := 30
	if testing.Short() {
		trials = 8
	}
	nonEmpty := 0
	for trial := 0; trial < trials; trial++ {
		rc := newRandomCase(t, rng)
		specs := randomSpecs(rng)

		prefix, err := rc.block.SelectCovering(rc.cov, specs)
		if err != nil {
			t.Fatal(err)
		}
		scan, err := rc.block.SelectCoveringScan(rc.cov, specs)
		if err != nil {
			t.Fatal(err)
		}
		binOnly, err := rc.block.SelectCoveringBinaryOnly(rc.cov, specs)
		if err != nil {
			t.Fatal(err)
		}
		if !bitIdentical(prefix, scan) {
			t.Fatalf("trial %d (level %d, filter %v): prefix %+v != scan %+v",
				trial, rc.level, rc.filter, prefix, scan)
		}
		if !bitIdentical(prefix, binOnly) {
			t.Fatalf("trial %d (level %d, filter %v): prefix %+v != binary-only %+v",
				trial, rc.level, rc.filter, prefix, binOnly)
		}

		// Ground truth: row-level brute force with the same filter.
		want := rc.bruteForce(specs)
		if prefix.Count != want.Count {
			t.Fatalf("trial %d: count %d, brute force %d", trial, prefix.Count, want.Count)
		}
		for i := range prefix.Values {
			if math.Float64bits(prefix.Values[i]) != math.Float64bits(want.Values[i]) {
				t.Fatalf("trial %d value[%d]: %g, brute force %g (integer data should be exact)",
					trial, i, prefix.Values[i], want.Values[i])
			}
		}

		// Unfiltered blocks must additionally match the BinarySearch
		// baseline, which scans sorted base rows directly.
		if rc.filter == nil {
			bs := baseline.NewBinarySearch(rc.base.Table)
			got := bs.AggregateCovering(rc.cov, specs)
			if got.Count != prefix.Count {
				t.Fatalf("trial %d: BinarySearch count %d != %d", trial, got.Count, prefix.Count)
			}
			for i := range prefix.Values {
				if math.Float64bits(got.Values[i]) != math.Float64bits(prefix.Values[i]) {
					t.Fatalf("trial %d: BinarySearch value[%d] %g != %g",
						trial, i, got.Values[i], prefix.Values[i])
				}
			}
		}
		if prefix.Count > 0 {
			nonEmpty++
		}
	}
	if nonEmpty == 0 {
		t.Fatal("every random trial had an empty result; suite is vacuous")
	}
}

// TestSelectVariantsAfterUpdate re-runs the bit-identity check after an
// in-place update, exercising the eagerly patched prefix arrays against
// the scan path that reads per-cell sums directly.
func TestSelectVariantsAfterUpdate(t *testing.T) {
	rng := rand.New(rand.NewSource(808))
	for trial := 0; trial < 10; trial++ {
		rc := newRandomCase(t, rng)
		k := 1 + rng.Intn(20)
		batch := &core.UpdateBatch{
			Points: make([]geom.Point, k),
			Cols:   [][]float64{make([]float64, k), make([]float64, k)},
		}
		for j := 0; j < k; j++ {
			// Reuse existing locations so the update never needs a rebuild.
			batch.Points[j] = rc.pts[rng.Intn(len(rc.pts))]
			batch.Cols[0][j] = float64(rng.Intn(1000))
			batch.Cols[1][j] = float64(rng.Intn(50))
		}
		if err := rc.block.Update(batch); err == core.ErrRebuildRequired {
			// A reused location can still miss the block's cells when the
			// original row was filtered out at build time.
			continue
		} else if err != nil {
			t.Fatal(err)
		}
		specs := randomSpecs(rng)
		prefix, err := rc.block.SelectCovering(rc.cov, specs)
		if err != nil {
			t.Fatal(err)
		}
		scan, err := rc.block.SelectCoveringScan(rc.cov, specs)
		if err != nil {
			t.Fatal(err)
		}
		if !bitIdentical(prefix, scan) {
			t.Fatalf("trial %d after update: prefix %+v != scan %+v", trial, prefix, scan)
		}
	}
}
