package core

import (
	"fmt"
	"time"

	"geoblocks/internal/cellid"
	"geoblocks/internal/column"
	"geoblocks/internal/geom"
)

// CleanRule describes the outlier filtering of the extract phase (paper
// Sec. 3.3: "we prepare the raw data by filtering outliers in the often
// dirty datasets"). Points outside Bounds are dropped, as are rows whose
// column values fall outside the configured ranges.
type CleanRule struct {
	// Bounds rejects points outside this rectangle. The zero Rect keeps
	// everything inside the domain (clamped).
	Bounds geom.Rect
	// ColRanges rejects rows whose column value lies outside [Min, Max].
	ColRanges []ColRange
}

// ColRange is a validity interval for one column.
type ColRange struct {
	Col      int
	Min, Max float64
}

func (r CleanRule) keep(p geom.Point, at func(col int) float64) bool {
	if r.Bounds.IsValid() && r.Bounds.Area() > 0 && !r.Bounds.ContainsPoint(p) {
		return false
	}
	for _, cr := range r.ColRanges {
		v := at(cr.Col)
		if v < cr.Min || v > cr.Max {
			return false
		}
	}
	return true
}

// BaseData is the output of the extract phase: cleaned, keyed, columnar
// point data sorted ascending by leaf spatial key. All GeoBlocks for a
// dataset are built from one BaseData in a single linear pass each, which
// is what makes switching filters cheap (paper Sec. 3.3, Fig. 19).
type BaseData struct {
	Domain cellid.Domain
	Table  *column.Table
	// DistinctCells holds, when the extract was run with a piggyback
	// level, the number of distinct grid cells observed at that level. The
	// collection pass is charged to the sort phase, reproducing the
	// level-dependent sort times of paper Table 2.
	DistinctCells int
	PiggyLevel    int
}

// ExtractStats reports the timing split of an extract run.
type ExtractStats struct {
	RowsIn, RowsKept int
	CleanTime        time.Duration
	SortTime         time.Duration
}

// Extract runs the extract phase (paper Fig. 5): clean the raw points,
// map locations to one-dimensional leaf spatial keys, and sort the
// resulting columnar table by key. piggyLevel >= 0 additionally collects
// the distinct grid cells at that level during the sort, as the paper's
// implementation does to save a pass in the build phase; pass -1 to skip.
//
// Extract is run once per dataset; every filter/level combination then
// builds from the returned BaseData in linear time.
func Extract(dom cellid.Domain, pts []geom.Point, schema column.Schema, cols [][]float64, rule CleanRule, piggyLevel int) (*BaseData, ExtractStats, error) {
	if len(cols) != schema.NumCols() {
		return nil, ExtractStats{}, fmt.Errorf("core: extract got %d columns, schema has %d", len(cols), schema.NumCols())
	}
	for c := range cols {
		if len(cols[c]) != len(pts) {
			return nil, ExtractStats{}, fmt.Errorf("core: column %d has %d rows, want %d", c, len(cols[c]), len(pts))
		}
	}
	if piggyLevel > cellid.MaxLevel {
		return nil, ExtractStats{}, fmt.Errorf("core: piggyback level %d beyond max %d", piggyLevel, cellid.MaxLevel)
	}

	var stats ExtractStats
	stats.RowsIn = len(pts)

	cleanStart := time.Now()
	table := column.NewTable(schema)
	table.Grow(len(pts))
	vals := make([]float64, schema.NumCols())
	for i, p := range pts {
		keepRow := rule.keep(p, func(c int) float64 { return cols[c][i] })
		if !keepRow {
			continue
		}
		for c := range vals {
			vals[c] = cols[c][i]
		}
		table.AppendRow(uint64(dom.FromPoint(p)), vals...)
	}
	stats.CleanTime = time.Since(cleanStart)
	stats.RowsKept = table.NumRows()

	sortStart := time.Now()
	table.SortByKey()
	base := &BaseData{Domain: dom, Table: table, PiggyLevel: piggyLevel}
	if piggyLevel >= 0 {
		base.DistinctCells = collectDistinctCells(table.Keys, piggyLevel)
	}
	stats.SortTime = time.Since(sortStart)

	return base, stats, nil
}

// collectDistinctCells counts distinct grid cells at the given level in a
// sorted key sequence. Because the keys are sorted and cell ids are
// prefixes, one linear pass with a running parent suffices.
func collectDistinctCells(keys []uint64, level int) int {
	n := 0
	var prev cellid.ID
	for _, k := range keys {
		cell := cellid.ID(k).Parent(level)
		if cell != prev {
			n++
			prev = cell
		}
	}
	return n
}

// NumRows returns the number of base rows.
func (b *BaseData) NumRows() int { return b.Table.NumRows() }
