package core

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"geoblocks/internal/cellid"
	"geoblocks/internal/column"
	"geoblocks/internal/geom"
)

// Serialization of GeoBlocks. A GeoBlock is a materialized view (paper
// Sec. 1); persisting it lets analysis sessions reopen pre-built blocks
// without re-running extract/build. The format is a little-endian stream:
//
//	magic "GBLK" | version u32
//	domain bounds (4 × f64) | level u32
//	schema: numCols u32, then per column len u32 + name bytes
//	filter: numPreds u32, then per predicate col u32, op u32, value f64
//	header: minCell u64, maxCell u64, count u64, per-col 3 × f64
//	numCells u64
//	keys, offsets, counts, minKeys, maxKeys (arrays)
//	per column: sums array, mins array, maxs array
//
// Version 2 switched the per-column payload from interleaved
// {min,max,sum} records to the struct-of-arrays layout above; the derived
// prefix-sum arrays are rebuilt on read rather than stored. Version-1
// payloads are rejected with a descriptive error — rebuild the block from
// base data and re-serialise.
//
// The base-data reference is intentionally not serialized.
const (
	blockMagic   = "GBLK"
	blockVersion = 2
)

type leWriter struct {
	w   *bufio.Writer
	err error
}

func (w *leWriter) u32(v uint32) {
	if w.err == nil {
		w.err = binary.Write(w.w, binary.LittleEndian, v)
	}
}
func (w *leWriter) u64(v uint64) {
	if w.err == nil {
		w.err = binary.Write(w.w, binary.LittleEndian, v)
	}
}
func (w *leWriter) f64(v float64) { w.u64(math.Float64bits(v)) }
func (w *leWriter) bytes(b []byte) {
	if w.err == nil {
		_, w.err = w.w.Write(b)
	}
}

type leReader struct {
	r   *bufio.Reader
	err error
}

func (r *leReader) u32() uint32 {
	var v uint32
	if r.err == nil {
		r.err = binary.Read(r.r, binary.LittleEndian, &v)
	}
	return v
}
func (r *leReader) u64() uint64 {
	var v uint64
	if r.err == nil {
		r.err = binary.Read(r.r, binary.LittleEndian, &v)
	}
	return v
}
func (r *leReader) f64() float64 { return math.Float64frombits(r.u64()) }
func (r *leReader) bytes(n int) []byte {
	b := make([]byte, n)
	if r.err == nil {
		_, r.err = io.ReadFull(r.r, b)
	}
	return b
}

// WriteTo serialises the block. It implements io.WriterTo loosely (the
// byte count is not tracked; it returns 0 and the first error).
func (b *GeoBlock) WriteTo(dst io.Writer) (int64, error) {
	w := &leWriter{w: bufio.NewWriter(dst)}
	w.bytes([]byte(blockMagic))
	w.u32(blockVersion)

	bound := b.domain.Bound()
	w.f64(bound.Min.X)
	w.f64(bound.Min.Y)
	w.f64(bound.Max.X)
	w.f64(bound.Max.Y)
	w.u32(uint32(b.level))

	w.u32(uint32(b.schema.NumCols()))
	for _, name := range b.schema.Names {
		w.u32(uint32(len(name)))
		w.bytes([]byte(name))
	}

	w.u32(uint32(len(b.filter)))
	for _, p := range b.filter {
		w.u32(uint32(p.Col))
		w.u32(uint32(p.Op))
		w.f64(p.Value)
	}

	w.u64(uint64(b.header.MinCell))
	w.u64(uint64(b.header.MaxCell))
	w.u64(b.header.Count)
	for _, c := range b.header.Cols {
		w.f64(c.Min)
		w.f64(c.Max)
		w.f64(c.Sum)
	}

	w.u64(uint64(len(b.keys)))
	for _, k := range b.keys {
		w.u64(uint64(k))
	}
	for _, o := range b.offsets {
		w.u32(o)
	}
	for _, c := range b.counts {
		w.u32(c)
	}
	for _, k := range b.minKeys {
		w.u64(uint64(k))
	}
	for _, k := range b.maxKeys {
		w.u64(uint64(k))
	}
	for c := range b.cols {
		for _, v := range b.cols[c].sums {
			w.f64(v)
		}
		for _, v := range b.cols[c].mins {
			w.f64(v)
		}
		for _, v := range b.cols[c].maxs {
			w.f64(v)
		}
	}
	if w.err == nil {
		w.err = w.w.Flush()
	}
	return 0, w.err
}

// ReadBlock deserialises a GeoBlock written by WriteTo. The returned block
// has no base-data reference: queries work, rebuilds do not.
func ReadBlock(src io.Reader) (*GeoBlock, error) {
	r := &leReader{r: bufio.NewReader(src)}
	if magic := string(r.bytes(4)); r.err == nil && magic != blockMagic {
		return nil, fmt.Errorf("core: bad magic %q", magic)
	}
	if v := r.u32(); r.err == nil && v != blockVersion {
		if v == 1 {
			return nil, fmt.Errorf("core: unsupported version 1 (pre-SoA interleaved aggregate layout; rebuild the block from base data and re-serialise with version %d)", blockVersion)
		}
		return nil, fmt.Errorf("core: unsupported version %d (this build reads version %d)", v, blockVersion)
	}

	bound := geom.Rect{
		Min: geom.Pt(r.f64(), r.f64()),
		Max: geom.Pt(r.f64(), r.f64()),
	}
	level := int(r.u32())
	if r.err != nil {
		return nil, r.err
	}
	dom, err := cellid.NewDomain(bound)
	if err != nil {
		return nil, err
	}

	numCols := int(r.u32())
	if numCols < 0 || numCols > 1<<16 {
		return nil, fmt.Errorf("core: implausible column count %d", numCols)
	}
	names := make([]string, numCols)
	for i := range names {
		n := int(r.u32())
		if n < 0 || n > 1<<20 {
			return nil, fmt.Errorf("core: implausible name length %d", n)
		}
		names[i] = string(r.bytes(n))
	}

	numPreds := int(r.u32())
	if numPreds < 0 || numPreds > 1<<16 {
		return nil, fmt.Errorf("core: implausible predicate count %d", numPreds)
	}
	filter := make(column.Filter, numPreds)
	for i := range filter {
		filter[i] = column.Predicate{
			Col:   int(r.u32()),
			Op:    column.Op(r.u32()),
			Value: r.f64(),
		}
	}

	b := &GeoBlock{
		domain: dom,
		level:  level,
		schema: column.NewSchema(names...),
		filter: filter,
	}
	b.header.MinCell = cellid.ID(r.u64())
	b.header.MaxCell = cellid.ID(r.u64())
	b.header.Count = r.u64()
	b.header.Cols = make([]ColAggregate, numCols)
	for c := range b.header.Cols {
		b.header.Cols[c] = ColAggregate{Min: r.f64(), Max: r.f64(), Sum: r.f64()}
	}

	n := int(r.u64())
	if n < 0 || n > 1<<31 {
		return nil, fmt.Errorf("core: implausible cell count %d", n)
	}
	b.keys = make([]cellid.ID, n)
	for i := range b.keys {
		b.keys[i] = cellid.ID(r.u64())
	}
	b.offsets = make([]uint32, n)
	for i := range b.offsets {
		b.offsets[i] = r.u32()
	}
	b.counts = make([]uint32, n)
	for i := range b.counts {
		b.counts[i] = r.u32()
	}
	b.minKeys = make([]cellid.ID, n)
	for i := range b.minKeys {
		b.minKeys[i] = cellid.ID(r.u64())
	}
	b.maxKeys = make([]cellid.ID, n)
	for i := range b.maxKeys {
		b.maxKeys[i] = cellid.ID(r.u64())
	}
	b.cols = make([]colStore, numCols)
	for c := range b.cols {
		cs := &b.cols[c]
		cs.sums = make([]float64, n)
		for i := range cs.sums {
			cs.sums[i] = r.f64()
		}
		cs.mins = make([]float64, n)
		for i := range cs.mins {
			cs.mins[i] = r.f64()
		}
		cs.maxs = make([]float64, n)
		for i := range cs.maxs {
			cs.maxs[i] = r.f64()
		}
	}
	if r.err != nil {
		return nil, r.err
	}
	b.buildPrefixes()
	return b, nil
}
