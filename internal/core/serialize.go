package core

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"geoblocks/internal/cellid"
	"geoblocks/internal/column"
	"geoblocks/internal/geom"
)

// Serialization of GeoBlocks. A GeoBlock is a materialized view (paper
// Sec. 1); persisting it lets analysis sessions reopen pre-built blocks
// without re-running extract/build. The format is a little-endian stream:
//
//	magic "GBLK" | version u32
//	domain bounds (4 × f64) | level u32
//	schema: numCols u32, then per column len u32 + name bytes
//	filter: numPreds u32, then per predicate col u32, op u32, value f64
//	header: minCell u64, maxCell u64, count u64, per-col 3 × f64
//	numCells u64
//	keys, offsets, counts, minKeys, maxKeys (arrays)
//	per column: sums array, mins array, maxs array
//
// Version 2 switched the per-column payload from interleaved
// {min,max,sum} records to the struct-of-arrays layout above; the derived
// prefix-sum arrays are rebuilt on read rather than stored. Version-1
// payloads are rejected with a descriptive error — rebuild the block from
// base data and re-serialise.
//
// The base-data reference is intentionally not serialized.
const (
	blockMagic   = "GBLK"
	blockVersion = 2
)

// Typed deserialization failures. Every error returned by ReadBlock and
// DecodeFramed wraps one of these, so callers (the snapshot subsystem,
// its HTTP status mapping) can fail closed with errors.Is instead of
// string matching. docs/FORMAT.md is the byte-level format reference.
var (
	// ErrCorrupt reports a payload that is not a well-formed GeoBlock
	// stream: bad magic, implausible counts, truncation, or a CRC
	// mismatch in the framed form.
	ErrCorrupt = errors.New("core: corrupt block payload")
	// ErrVersion reports a well-formed stream whose format version this
	// build does not read.
	ErrVersion = errors.New("core: unsupported block version")
)

type leWriter struct {
	w   *bufio.Writer
	err error
}

func (w *leWriter) u32(v uint32) {
	if w.err == nil {
		w.err = binary.Write(w.w, binary.LittleEndian, v)
	}
}
func (w *leWriter) u64(v uint64) {
	if w.err == nil {
		w.err = binary.Write(w.w, binary.LittleEndian, v)
	}
}
func (w *leWriter) f64(v float64) { w.u64(math.Float64bits(v)) }
func (w *leWriter) bytes(b []byte) {
	if w.err == nil {
		_, w.err = w.w.Write(b)
	}
}

type leReader struct {
	r   *bufio.Reader
	err error
}

func (r *leReader) u32() uint32 {
	var v uint32
	if r.err == nil {
		r.err = binary.Read(r.r, binary.LittleEndian, &v)
	}
	return v
}
func (r *leReader) u64() uint64 {
	var v uint64
	if r.err == nil {
		r.err = binary.Read(r.r, binary.LittleEndian, &v)
	}
	return v
}
func (r *leReader) f64() float64 { return math.Float64frombits(r.u64()) }
func (r *leReader) bytes(n int) []byte {
	b := make([]byte, n)
	if r.err == nil {
		_, r.err = io.ReadFull(r.r, b)
	}
	return b
}

// WriteTo serialises the block. It implements io.WriterTo loosely (the
// byte count is not tracked; it returns 0 and the first error).
func (b *GeoBlock) WriteTo(dst io.Writer) (int64, error) {
	w := &leWriter{w: bufio.NewWriter(dst)}
	w.bytes([]byte(blockMagic))
	w.u32(blockVersion)

	bound := b.domain.Bound()
	w.f64(bound.Min.X)
	w.f64(bound.Min.Y)
	w.f64(bound.Max.X)
	w.f64(bound.Max.Y)
	w.u32(uint32(b.level))

	w.u32(uint32(b.schema.NumCols()))
	for _, name := range b.schema.Names {
		w.u32(uint32(len(name)))
		w.bytes([]byte(name))
	}

	w.u32(uint32(len(b.filter)))
	for _, p := range b.filter {
		w.u32(uint32(p.Col))
		w.u32(uint32(p.Op))
		w.f64(p.Value)
	}

	w.u64(uint64(b.header.MinCell))
	w.u64(uint64(b.header.MaxCell))
	w.u64(b.header.Count)
	for _, c := range b.header.Cols {
		w.f64(c.Min)
		w.f64(c.Max)
		w.f64(c.Sum)
	}

	w.u64(uint64(len(b.keys)))
	for _, k := range b.keys {
		w.u64(uint64(k))
	}
	for _, o := range b.offsets {
		w.u32(o)
	}
	for _, c := range b.counts {
		w.u32(c)
	}
	for _, k := range b.minKeys {
		w.u64(uint64(k))
	}
	for _, k := range b.maxKeys {
		w.u64(uint64(k))
	}
	for c := range b.cols {
		for _, v := range b.cols[c].sums {
			w.f64(v)
		}
		for _, v := range b.cols[c].mins {
			w.f64(v)
		}
		for _, v := range b.cols[c].maxs {
			w.f64(v)
		}
	}
	if w.err == nil {
		w.err = w.w.Flush()
	}
	return 0, w.err
}

// ReadBlock deserialises a GeoBlock written by WriteTo. The returned block
// has no base-data reference: queries work, rebuilds do not.
func ReadBlock(src io.Reader) (*GeoBlock, error) {
	r := &leReader{r: bufio.NewReader(src)}
	if magic := string(r.bytes(4)); r.err == nil && magic != blockMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrCorrupt, magic)
	}
	if v := r.u32(); r.err == nil && v != blockVersion {
		if v == 1 {
			return nil, fmt.Errorf("%w: version 1 (pre-SoA interleaved aggregate layout; rebuild the block from base data and re-serialise with version %d)", ErrVersion, blockVersion)
		}
		return nil, fmt.Errorf("%w: version %d (this build reads version %d)", ErrVersion, v, blockVersion)
	}

	bound := geom.Rect{
		Min: geom.Pt(r.f64(), r.f64()),
		Max: geom.Pt(r.f64(), r.f64()),
	}
	level := int(r.u32())
	if r.err != nil {
		return nil, r.err
	}
	dom, err := cellid.NewDomain(bound)
	if err != nil {
		return nil, err
	}

	numCols := int(r.u32())
	if numCols < 0 || numCols > 1<<16 {
		return nil, fmt.Errorf("%w: implausible column count %d", ErrCorrupt, numCols)
	}
	names := make([]string, numCols)
	for i := range names {
		n := int(r.u32())
		if n < 0 || n > 1<<20 {
			return nil, fmt.Errorf("%w: implausible name length %d", ErrCorrupt, n)
		}
		names[i] = string(r.bytes(n))
	}

	numPreds := int(r.u32())
	if numPreds < 0 || numPreds > 1<<16 {
		return nil, fmt.Errorf("%w: implausible predicate count %d", ErrCorrupt, numPreds)
	}
	filter := make(column.Filter, numPreds)
	for i := range filter {
		filter[i] = column.Predicate{
			Col:   int(r.u32()),
			Op:    column.Op(r.u32()),
			Value: r.f64(),
		}
	}

	b := &GeoBlock{
		domain: dom,
		level:  level,
		schema: column.NewSchema(names...),
		filter: filter,
	}
	b.header.MinCell = cellid.ID(r.u64())
	b.header.MaxCell = cellid.ID(r.u64())
	b.header.Count = r.u64()
	b.header.Cols = make([]ColAggregate, numCols)
	for c := range b.header.Cols {
		b.header.Cols[c] = ColAggregate{Min: r.f64(), Max: r.f64(), Sum: r.f64()}
	}

	n := int(r.u64())
	if n < 0 || n > 1<<31 {
		return nil, fmt.Errorf("%w: implausible cell count %d", ErrCorrupt, n)
	}
	b.keys = make([]cellid.ID, n)
	for i := range b.keys {
		b.keys[i] = cellid.ID(r.u64())
	}
	b.offsets = make([]uint32, n)
	for i := range b.offsets {
		b.offsets[i] = r.u32()
	}
	b.counts = make([]uint32, n)
	for i := range b.counts {
		b.counts[i] = r.u32()
	}
	b.minKeys = make([]cellid.ID, n)
	for i := range b.minKeys {
		b.minKeys[i] = cellid.ID(r.u64())
	}
	b.maxKeys = make([]cellid.ID, n)
	for i := range b.maxKeys {
		b.maxKeys[i] = cellid.ID(r.u64())
	}
	b.cols = make([]colStore, numCols)
	for c := range b.cols {
		cs := &b.cols[c]
		cs.sums = make([]float64, n)
		for i := range cs.sums {
			cs.sums[i] = r.f64()
		}
		cs.mins = make([]float64, n)
		for i := range cs.mins {
			cs.mins[i] = r.f64()
		}
		cs.maxs = make([]float64, n)
		for i := range cs.maxs {
			cs.maxs[i] = r.f64()
		}
	}
	if r.err != nil {
		return nil, r.err
	}
	b.buildPrefixes()
	return b, nil
}

// Framed serialization. A frame wraps one WriteTo payload with a length
// prefix and a CRC32C trailer so on-disk artifacts (the snapshot
// subsystem's per-shard files) are self-delimiting and tamper-evident:
//
//	frame magic "GBF1" | payload length u64 | payload | CRC32C(payload) u32
//
// The checksum is CRC32C (Castagnoli polynomial, as in iSCSI and ext4)
// over exactly the payload bytes. docs/FORMAT.md specifies the layout
// byte by byte.
const frameMagic = "GBF1"

// maxFramePayload bounds the length prefix a reader will trust: 1 TiB is
// orders of magnitude above any realistic shard block, so anything larger
// is a corrupt or hostile frame, not data.
const maxFramePayload = 1 << 40

// crcTable is the Castagnoli table shared by all frame writers/readers.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// CRC32C computes the Castagnoli checksum used throughout the on-disk
// format (frame trailers and the snapshot manifest sidecar).
func CRC32C(data []byte) uint32 { return crc32.Checksum(data, crcTable) }

// CRC32CUpdate extends a running Castagnoli checksum with more bytes, for
// callers that checksum non-contiguous regions without copying them.
func CRC32CUpdate(sum uint32, data []byte) uint32 { return crc32.Update(sum, crcTable, data) }

// FrameInfo describes an encoded frame: the manifest-level facts a
// durable store records next to the payload.
type FrameInfo struct {
	// Bytes is the total frame size: magic + length + payload + trailer.
	Bytes int64
	// PayloadBytes is the length of the wrapped WriteTo payload.
	PayloadBytes int64
	// CRC32C is the Castagnoli checksum of the payload (the trailer
	// value).
	CRC32C uint32
}

// EncodeFramed serialises the block as one frame. The payload is staged
// in memory to compute the length prefix and checksum, so encoding
// transiently needs about one serialized-block copy of memory.
func (b *GeoBlock) EncodeFramed(dst io.Writer) (FrameInfo, error) {
	var payload bytes.Buffer
	if _, err := b.WriteTo(&payload); err != nil {
		return FrameInfo{}, err
	}
	info := FrameInfo{
		Bytes:        int64(4 + 8 + payload.Len() + 4),
		PayloadBytes: int64(payload.Len()),
		CRC32C:       crc32.Checksum(payload.Bytes(), crcTable),
	}
	w := &leWriter{w: bufio.NewWriter(dst)}
	w.bytes([]byte(frameMagic))
	w.u64(uint64(payload.Len()))
	w.bytes(payload.Bytes())
	w.u32(info.CRC32C)
	if w.err == nil {
		w.err = w.w.Flush()
	}
	if w.err != nil {
		return FrameInfo{}, w.err
	}
	return info, nil
}

// DecodeFramed reads one frame written by EncodeFramed, validates it and
// deserialises the payload. Validation order: frame magic, length sanity,
// payload magic and version (so a stale-format file reports ErrVersion
// rather than a checksum mismatch), then the CRC32C trailer, then the
// payload decode. Every failure wraps ErrCorrupt or ErrVersion.
func DecodeFramed(src io.Reader) (*GeoBlock, FrameInfo, error) {
	r := &leReader{r: bufio.NewReader(src)}
	if magic := string(r.bytes(4)); r.err == nil && magic != frameMagic {
		return nil, FrameInfo{}, fmt.Errorf("%w: bad frame magic %q", ErrCorrupt, magic)
	}
	n := r.u64()
	if r.err != nil {
		return nil, FrameInfo{}, fmt.Errorf("%w: truncated frame header: %v", ErrCorrupt, r.err)
	}
	if n < 8 || n > maxFramePayload {
		return nil, FrameInfo{}, fmt.Errorf("%w: implausible frame payload length %d", ErrCorrupt, n)
	}
	// The length prefix is untrusted input: never allocate it up front.
	// Copying through a growing buffer bounds memory by the bytes that
	// actually arrive, so a corrupt prefix on a short file fails with
	// ErrCorrupt instead of a giant allocation.
	var buf bytes.Buffer
	if n <= 1<<20 {
		buf.Grow(int(n))
	}
	if m, err := io.CopyN(&buf, r.r, int64(n)); err != nil || m != int64(n) {
		return nil, FrameInfo{}, fmt.Errorf("%w: truncated frame payload (got %d of %d bytes)", ErrCorrupt, buf.Len(), n)
	}
	payload := buf.Bytes()
	if magic := string(payload[:4]); magic != blockMagic {
		return nil, FrameInfo{}, fmt.Errorf("%w: bad payload magic %q", ErrCorrupt, magic)
	}
	if v := binary.LittleEndian.Uint32(payload[4:8]); v != blockVersion {
		return nil, FrameInfo{}, fmt.Errorf("%w: payload version %d (this build reads version %d)", ErrVersion, v, blockVersion)
	}
	trailer := r.u32()
	if r.err != nil {
		return nil, FrameInfo{}, fmt.Errorf("%w: truncated frame trailer: %v", ErrCorrupt, r.err)
	}
	info := FrameInfo{
		Bytes:        int64(4 + 8 + len(payload) + 4),
		PayloadBytes: int64(len(payload)),
		CRC32C:       crc32.Checksum(payload, crcTable),
	}
	if info.CRC32C != trailer {
		return nil, FrameInfo{}, fmt.Errorf("%w: payload CRC32C %08x does not match trailer %08x", ErrCorrupt, info.CRC32C, trailer)
	}
	b, err := ReadBlock(bytes.NewReader(payload))
	if err != nil {
		if errors.Is(err, ErrCorrupt) || errors.Is(err, ErrVersion) {
			return nil, FrameInfo{}, err
		}
		return nil, FrameInfo{}, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return b, info, nil
}
