package core

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Accumulator partial wire format (cluster scatter-gather, DESIGN.md
// Sec. 6 contract over the wire). A partial frame carries the exact
// internal state of an Accumulator — the running count, the visited-cell
// work counter and one raw float64 per aggregate spec — so a coordinator
// that decodes peer frames and merges them with MergeFrom in shard order
// produces bit-identical COUNT/MIN/MAX to a single-node merge of the same
// shard partials.
//
// Layout (little-endian):
//
//	offset  size  field
//	0       4     magic "GBP1"
//	4       2     wire version (currently 1)
//	6       2     nspecs
//	8       3*n   spec signature: per spec u8 func, u16 col
//	...     8     count (u64)
//	...     8     visited (u64)
//	...     8*n   per-spec value as IEEE-754 bits (u64)
//	...     4     CRC32-C of everything before
//
// Values travel as raw float64 bits (not decimal text) so ±Inf identity
// elements, NaN and every finite value round-trip bit-exactly.
const (
	partialMagic   = "GBP1"
	partialVersion = 1
)

// partialFrameSize returns the encoded size for n aggregate specs.
func partialFrameSize(n int) int {
	return 4 + 2 + 2 + 3*n + 8 + 8 + 8*n + 4
}

// EncodePartial serialises the accumulator's partial state into a
// self-checking frame for transport between cluster nodes.
func (a *Accumulator) EncodePartial() []byte {
	n := len(a.inner.specs)
	buf := make([]byte, 0, partialFrameSize(n))
	buf = append(buf, partialMagic...)
	buf = binary.LittleEndian.AppendUint16(buf, partialVersion)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(n))
	for _, s := range a.inner.specs {
		buf = append(buf, byte(s.Func))
		buf = binary.LittleEndian.AppendUint16(buf, uint16(s.Col))
	}
	buf = binary.LittleEndian.AppendUint64(buf, a.inner.count)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(a.visited))
	for _, v := range a.inner.vals {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
	}
	buf = binary.LittleEndian.AppendUint32(buf, CRC32C(buf))
	return buf
}

// DecodePartial parses a partial frame produced by EncodePartial into an
// Accumulator bound to b, validating the checksum and requiring the
// frame's spec signature to match specs exactly (same functions over the
// same columns, in the same order). Malformed frames return errors
// wrapping ErrCorrupt; an unknown wire version wraps ErrVersion.
func (b *GeoBlock) DecodePartial(data []byte, specs []AggSpec) (*Accumulator, error) {
	if err := b.validateSpecs(specs); err != nil {
		return nil, err
	}
	if len(data) < partialFrameSize(0) {
		return nil, fmt.Errorf("%w: partial frame truncated at %d bytes", ErrCorrupt, len(data))
	}
	if string(data[:4]) != partialMagic {
		return nil, fmt.Errorf("%w: bad partial magic %q", ErrCorrupt, data[:4])
	}
	if v := binary.LittleEndian.Uint16(data[4:]); v != partialVersion {
		return nil, fmt.Errorf("%w: partial wire version %d (this build speaks version %d)",
			ErrVersion, v, partialVersion)
	}
	n := int(binary.LittleEndian.Uint16(data[6:]))
	if n != len(specs) {
		return nil, fmt.Errorf("%w: partial frame carries %d specs, expected %d",
			ErrCorrupt, n, len(specs))
	}
	if len(data) != partialFrameSize(n) {
		return nil, fmt.Errorf("%w: partial frame is %d bytes, expected %d for %d specs",
			ErrCorrupt, len(data), partialFrameSize(n), n)
	}
	sum := binary.LittleEndian.Uint32(data[len(data)-4:])
	if got := CRC32C(data[:len(data)-4]); got != sum {
		return nil, fmt.Errorf("%w: partial frame checksum %#x, stored %#x", ErrCorrupt, got, sum)
	}
	off := 8
	for i, s := range specs {
		fn := AggFunc(data[off])
		col := int(binary.LittleEndian.Uint16(data[off+1:]))
		off += 3
		if fn != s.Func || col != s.Col {
			return nil, fmt.Errorf("%w: partial spec %d is (func=%d col=%d), expected (func=%d col=%d)",
				ErrCorrupt, i, fn, col, s.Func, s.Col)
		}
	}
	acc := &Accumulator{b: b, inner: newAccumulator(specs)}
	acc.inner.count = binary.LittleEndian.Uint64(data[off:])
	acc.visited = int(binary.LittleEndian.Uint64(data[off+8:]))
	off += 16
	for i := range acc.inner.vals {
		acc.inner.vals[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[off:]))
		off += 8
	}
	// The partial consumed its covering on the remote side; the decoded
	// accumulator exists only to be merged, never to scan further.
	acc.cursor = len(b.keys)
	return acc, nil
}
