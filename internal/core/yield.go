package core

import "runtime"

// yieldStride is the loop stride at which the long structural rebuild
// passes (fold merge, pyramid coarsening, prefix rebuild) offer the
// scheduler a chance to run latency-sensitive goroutines. Background
// compaction runs these passes concurrently with serving; at small
// GOMAXPROCS (the common container deployment) one un-yielding
// multi-hundred-millisecond pass would monopolize a core and surface
// directly in read tail latency. At ~1µs per merge/coarsen iteration a
// stride of 1024 bounds each uninterruptible chunk to ~1ms — below a
// typical query — while the Gosched itself costs well under 1% of the
// pass (and is nearly free when nothing else is runnable).
const yieldStride = 1 << 10

// maybeYield yields the processor every yieldStride-th call, keyed on a
// monotonically increasing loop counter.
func maybeYield(i int) {
	if i != 0 && i&(yieldStride-1) == 0 {
		runtime.Gosched()
	}
}
