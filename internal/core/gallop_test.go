package core

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"geoblocks/internal/cellid"
	"geoblocks/internal/cover"
	"geoblocks/internal/geom"
)

// TestGallopBoundsMatchSortSearch verifies the gallop searches against the
// stdlib reference for arbitrary cursors and probes.
func TestGallopBoundsMatchSortSearch(t *testing.T) {
	f := newFixture(t, 20000, 21)
	b := f.build(t, 12, nil)
	keys := b.keys
	n := len(keys)
	if n < 100 {
		t.Fatal("fixture too small")
	}
	rng := rand.New(rand.NewSource(22))
	for trial := 0; trial < 5000; trial++ {
		from := rng.Intn(n)
		// Probe around existing keys to hit equal/adjacent cases.
		probe := keys[rng.Intn(n)]
		switch rng.Intn(4) {
		case 0:
			probe++
		case 1:
			probe--
		case 2:
			probe = cellid.ID(rng.Uint64())
		}
		wantLB := from + sort.Search(n-from, func(i int) bool { return keys[from+i] >= probe })
		if got := b.gallopLowerBound(probe, from); got != wantLB {
			t.Fatalf("gallopLowerBound(%v, %d) = %d, want %d", probe, from, got, wantLB)
		}
		wantUB := from + sort.Search(n-from, func(i int) bool { return keys[from+i] > probe })
		if got := b.gallopUpperBound(probe, from); got != wantUB {
			t.Fatalf("gallopUpperBound(%v, %d) = %d, want %d", probe, from, got, wantUB)
		}
	}
	// Edge cases: cursor at/after the end.
	if got := b.gallopLowerBound(0, n); got != n {
		t.Fatalf("lower bound from n = %d", got)
	}
	if got := b.gallopUpperBound(^cellid.ID(0), 0); got != n {
		t.Fatalf("upper bound of max key = %d, want n", got)
	}
}

// TestQuickSelectRandomPolygons is the core property test: for random
// convex polygons, SELECT over the covering equals the brute-force scan
// over the same covering.
func TestQuickSelectRandomPolygons(t *testing.T) {
	f := newFixture(t, 15000, 23)
	b := f.build(t, 10, nil)
	coverer := cover.MustCoverer(f.dom, cover.DefaultOptions(10))
	specs := allSpecs()

	check := func(cx16, cy16, r16 uint16, sides8 uint8) bool {
		cx := 10 + float64(cx16)/65535*80
		cy := 10 + float64(cy16)/65535*80
		radius := 2 + float64(r16)/65535*25
		sides := 3 + int(sides8)%9
		poly := geom.RegularPolygon(geom.Pt(cx, cy), radius, sides)
		cov := coverer.Cover(poly).Cells

		got, err := b.SelectCovering(cov, specs)
		if err != nil {
			return false
		}
		want := f.bruteForce(cov, nil, specs)
		if got.Count != want.Count {
			return false
		}
		for i := range got.Values {
			if !approxEqual(got.Values[i], want.Values[i]) {
				return false
			}
		}
		// COUNT must agree with SELECT.
		return b.CountCovering(cov) == want.Count
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestSelectCoveringWithGapsAndDuplicateRanges stresses the cursor logic:
// coverings with cells that miss the data entirely, interleaved with hits.
func TestSelectCoveringWithGapsAndDuplicateRanges(t *testing.T) {
	f := newFixture(t, 10000, 24)
	b := f.build(t, 10, nil)

	// Build a covering of alternating present/absent sibling cells at the
	// block level spanning the whole data range.
	h := b.Header()
	start := h.MinCell
	var cov []cellid.ID
	cell := start
	for i := 0; i < 200 && cell <= h.MaxCell; i++ {
		cov = append(cov, cell)
		// Skip ahead irregularly to create gaps.
		for j := 0; j < i%3+1; j++ {
			cell = cell.Next()
		}
	}
	got, err := b.SelectCovering(cov, allSpecs())
	if err != nil {
		t.Fatal(err)
	}
	want := f.bruteForce(cov, nil, allSpecs())
	if got.Count != want.Count {
		t.Fatalf("count %d != brute force %d", got.Count, want.Count)
	}
	if cnt := b.CountCovering(cov); cnt != want.Count {
		t.Fatalf("COUNT %d != %d", cnt, want.Count)
	}
}

// TestAccumulatorAscendingContract documents and checks the Accumulator's
// ordering contract: ascending query cells accumulate exactly once.
func TestAccumulatorAscendingContract(t *testing.T) {
	f := newFixture(t, 8000, 25)
	b := f.build(t, 8, nil)

	acc, err := b.NewAccumulator(allSpecs())
	if err != nil {
		t.Fatal(err)
	}
	// Walk all level-6 ancestors of stored cells in order, skipping every
	// second one via AddRecord from AggregateCell — mixing both paths.
	var parents []cellid.ID
	seen := map[cellid.ID]bool{}
	for i := 0; i < b.NumCells(); i++ {
		p := b.keys[i].Parent(6)
		if !seen[p] {
			seen[p] = true
			parents = append(parents, p)
		}
	}
	var wantCount uint64
	for i, p := range parents {
		count, cols := b.AggregateCell(p)
		wantCount += count
		if i%2 == 0 {
			acc.AccumulateCell(p)
		} else {
			acc.AddRecord(count, cols)
		}
	}
	res := acc.Result()
	if res.Count != wantCount {
		t.Fatalf("mixed accumulation count %d, want %d", res.Count, wantCount)
	}
	if res.Count != b.NumTuples() {
		t.Fatalf("parents cover all data: %d != %d", res.Count, b.NumTuples())
	}
}
