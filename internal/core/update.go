package core

import (
	"errors"
	"fmt"
	"sort"

	"geoblocks/internal/cellid"
	"geoblocks/internal/geom"
)

// ErrRebuildRequired reports that an update batch contains tuples for grid
// cells that have no cell aggregate yet. The sorted aggregate layout cannot
// absorb new cells in place (paper Sec. 5); callers should rebuild the
// block from base data — which the paper measures at well under a second —
// or use RebuildWith.
var ErrRebuildRequired = errors.New("core: update touches unaggregated region, rebuild required")

// UpdateBatch is a set of new tuples to fold into an existing GeoBlock.
type UpdateBatch struct {
	Points []geom.Point
	// Cols holds one value slice per schema column, aligned with Points.
	Cols [][]float64
}

// Len returns the number of tuples in the batch.
func (u *UpdateBatch) Len() int { return len(u.Points) }

func (u *UpdateBatch) validate(b *GeoBlock) error {
	if len(u.Cols) != b.schema.NumCols() {
		return fmt.Errorf("core: update batch has %d columns, schema has %d", len(u.Cols), b.schema.NumCols())
	}
	for c := range u.Cols {
		if len(u.Cols[c]) != len(u.Points) {
			return fmt.Errorf("core: update column %d has %d rows, want %d", c, len(u.Cols[c]), len(u.Points))
		}
	}
	return nil
}

// Update folds a batch of new tuples into the block's aggregates (paper
// Sec. 5): for each tuple, the containing cell aggregate is located and
// all stored aggregates are updated; offsets of subsequent cells shift by
// the number of preceding insertions so that COUNT range sums stay
// consistent. Rows not matching the block's filter are ignored. If any
// tuple lands in a region with no existing cell aggregate, no change is
// applied and ErrRebuildRequired is returned.
//
// Update does not modify the underlying base data table; blocks updated in
// place diverge from Base() until the next rebuild, mirroring the paper's
// batched-maintenance discussion.
func (b *GeoBlock) Update(batch *UpdateBatch) error {
	if b.mapped {
		return ErrReadOnly
	}
	if err := batch.validate(b); err != nil {
		return err
	}
	type row struct {
		leaf cellid.ID
		idx  int
	}
	rows := make([]row, 0, batch.Len())
	for i, p := range batch.Points {
		match := true
		for _, pr := range b.filter {
			if !pr.Matches(batch.Cols[pr.Col][i]) {
				match = false
				break
			}
		}
		if !match {
			continue
		}
		rows = append(rows, row{leaf: b.domain.FromPoint(p), idx: i})
	}
	if len(rows) == 0 {
		return nil
	}
	sort.Slice(rows, func(a, c int) bool { return rows[a].leaf < rows[c].leaf })

	// First pass: locate target aggregates; abort before mutation when a
	// tuple has no home cell.
	targets := make([]int, len(rows))
	for k, r := range rows {
		cell := r.leaf.Parent(b.level)
		i := b.lowerBound(cell, 0)
		if i >= len(b.keys) || b.keys[i] != cell {
			return ErrRebuildRequired
		}
		targets[k] = i
	}

	// Second pass: apply. Batch rows are sorted, so per-cell insertion
	// counts accumulate left to right; offsets are restored in one sweep
	// below.
	inserted := uint32(0)
	for k, r := range rows {
		i := targets[k]
		b.counts[i]++
		if r.leaf < b.minKeys[i] {
			b.minKeys[i] = r.leaf
		}
		if r.leaf > b.maxKeys[i] {
			b.maxKeys[i] = r.leaf
		}
		for c := range b.cols {
			v := batch.Cols[c][r.idx]
			b.cols[c].addValueAt(i, v)
			b.header.Cols[c].addValue(v)
		}
		inserted++
	}
	b.header.Count += uint64(inserted)

	// Final pass: restore the offset invariant (offsets[i] = qualifying
	// tuples before cell i) and rebuild the per-column prefix-sum arrays.
	// Rebuilding eagerly here (rather than lazily on the next query)
	// keeps every query path strictly read-only, so blocks can keep
	// serving concurrent readers between serialized updates.
	var running uint32
	for i := range b.keys {
		b.offsets[i] = running
		running += b.counts[i]
	}
	b.buildPrefixes()
	return nil
}

// RebuildWith rebuilds the block from its base data plus extra rows that
// Update could not absorb. The extra rows are appended to a copy of the
// base table, re-sorted, and a fresh block is built with the same level and
// filter. The paper notes this costs roughly one build pass (sub-second at
// the evaluation's scale).
func (b *GeoBlock) RebuildWith(batch *UpdateBatch) (*GeoBlock, error) {
	if b.base == nil {
		return nil, errors.New("core: block has no base data reference")
	}
	if err := batch.validate(b); err != nil {
		return nil, err
	}
	t := b.base.Clone()
	vals := make([]float64, b.schema.NumCols())
	for i, p := range batch.Points {
		for c := range vals {
			vals[c] = batch.Cols[c][i]
		}
		t.AppendRow(uint64(b.domain.FromPoint(p)), vals...)
	}
	t.SortByKey()
	return Build(&BaseData{Domain: b.domain, Table: t, PiggyLevel: -1},
		BuildOptions{Level: b.level, Filter: b.filter})
}
