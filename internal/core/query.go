package core

import (
	"fmt"
	"math"

	"geoblocks/internal/cellid"
)

// AggFunc identifies a non-holistic aggregate function (paper Sec. 2).
type AggFunc uint8

// Supported aggregate functions. Avg is derived as Sum/Count at
// finalisation time (paper Sec. 3.4).
const (
	AggCount AggFunc = iota
	AggSum
	AggMin
	AggMax
	AggAvg
)

// String implements fmt.Stringer.
func (f AggFunc) String() string {
	switch f {
	case AggCount:
		return "count"
	case AggSum:
		return "sum"
	case AggMin:
		return "min"
	case AggMax:
		return "max"
	case AggAvg:
		return "avg"
	}
	return "?"
}

// AggSpec requests one aggregate over one column. Col is ignored for
// AggCount.
type AggSpec struct {
	Col  int
	Func AggFunc
}

// Result holds the answer of a spatial aggregation query: the tuple count
// within the covering plus one value per requested AggSpec (NaN for
// min/max/avg over zero tuples).
type Result struct {
	Count  uint64
	Values []float64
	// CellsVisited counts cell aggregates combined, a work metric used by
	// the experiments.
	CellsVisited int
}

// validateSpecs checks the requested aggregates against the schema.
func (b *GeoBlock) validateSpecs(specs []AggSpec) error {
	for _, s := range specs {
		if s.Func > AggAvg {
			return fmt.Errorf("core: unknown aggregate function %d", s.Func)
		}
		if s.Func != AggCount && (s.Col < 0 || s.Col >= b.schema.NumCols()) {
			return fmt.Errorf("core: aggregate column %d out of range (%d columns)",
				s.Col, b.schema.NumCols())
		}
	}
	return nil
}

// accumulator combines cell aggregates into the requested outputs. The
// combining cost scales with the number of requested aggregates, which is
// the effect Fig. 10 measures.
type accumulator struct {
	specs []AggSpec
	count uint64
	vals  []float64 // running value per spec (sums for Avg)
}

func newAccumulator(specs []AggSpec) *accumulator {
	vals := make([]float64, len(specs))
	for i, s := range specs {
		switch s.Func {
		case AggMin:
			vals[i] = math.Inf(1)
		case AggMax:
			vals[i] = math.Inf(-1)
		}
	}
	return &accumulator{specs: specs, vals: vals}
}

// combineCell folds the i-th cell aggregate of b into the accumulator.
func (a *accumulator) combineCell(b *GeoBlock, i int) {
	a.count += uint64(b.counts[i])
	for k, s := range a.specs {
		switch s.Func {
		case AggCount:
			// Tracked globally via a.count.
		case AggSum, AggAvg:
			a.vals[k] += b.aggs[s.Col][i].Sum
		case AggMin:
			if v := b.aggs[s.Col][i].Min; v < a.vals[k] {
				a.vals[k] = v
			}
		case AggMax:
			if v := b.aggs[s.Col][i].Max; v > a.vals[k] {
				a.vals[k] = v
			}
		}
	}
}

// combineValues folds a pre-combined aggregate record (count + per-column
// aggregates, e.g. from the query cache) into the accumulator.
func (a *accumulator) combineValues(count uint64, cols []ColAggregate) {
	a.count += count
	for k, s := range a.specs {
		switch s.Func {
		case AggCount:
		case AggSum, AggAvg:
			a.vals[k] += cols[s.Col].Sum
		case AggMin:
			if v := cols[s.Col].Min; v < a.vals[k] {
				a.vals[k] = v
			}
		case AggMax:
			if v := cols[s.Col].Max; v > a.vals[k] {
				a.vals[k] = v
			}
		}
	}
}

// finish converts running values into the final Result.
func (a *accumulator) finish(visited int) Result {
	out := Result{Count: a.count, Values: make([]float64, len(a.specs)), CellsVisited: visited}
	for i, s := range a.specs {
		switch s.Func {
		case AggCount:
			out.Values[i] = float64(a.count)
		case AggSum:
			out.Values[i] = a.vals[i]
		case AggMin, AggMax:
			if a.count == 0 {
				out.Values[i] = math.NaN()
			} else {
				out.Values[i] = a.vals[i]
			}
		case AggAvg:
			if a.count == 0 {
				out.Values[i] = math.NaN()
			} else {
				out.Values[i] = a.vals[i] / float64(a.count)
			}
		}
	}
	return out
}

// SelectCovering answers a SELECT query over a cell covering (paper
// Listing 1). The covering must be sorted ascending with disjoint cells and
// must not contain cells finer than the block level. For each covering
// cell, the first intersecting aggregate is located with a binary search
// bounded below by the scan cursor; because cell aggregates are stored
// contiguously in key order, all further aggregates of the cell are
// consumed by advancing the cursor — the paper's "last aggregate successor"
// optimisation.
func (b *GeoBlock) SelectCovering(cov []cellid.ID, specs []AggSpec) (Result, error) {
	if err := b.validateSpecs(specs); err != nil {
		return Result{}, err
	}
	acc := newAccumulator(specs)
	visited := 0
	cursor := 0
	for _, qc := range cov {
		lo, hi := qc.RangeMin(), qc.RangeMax()
		// Constant-time pruning against the global header (Listing 1,
		// lines 5-6).
		if hi < b.header.MinCell.RangeMin() || lo > b.header.MaxCell.RangeMax() {
			continue
		}
		if cursor >= len(b.keys) {
			break
		}
		// When the successor is not yet inside the query cell, locate the
		// first candidate with a gallop-bounded search (Listing 1, lines
		// 21-24), restricted to the unconsumed suffix since covering
		// cells ascend.
		i := b.gallopLowerBound(lo, cursor)
		for i < len(b.keys) && b.keys[i] <= hi {
			acc.combineCell(b, i)
			visited++
			i++
		}
		cursor = i
	}
	return acc.finish(visited), nil
}

// SelectCoveringBinaryOnly is the ablation variant of SelectCovering that
// re-runs a full binary search for every covering cell instead of reusing
// the scan cursor. It exists to quantify the successor optimisation
// (DESIGN.md Sec. 5) and is otherwise equivalent.
func (b *GeoBlock) SelectCoveringBinaryOnly(cov []cellid.ID, specs []AggSpec) (Result, error) {
	if err := b.validateSpecs(specs); err != nil {
		return Result{}, err
	}
	acc := newAccumulator(specs)
	visited := 0
	for _, qc := range cov {
		lo, hi := qc.RangeMin(), qc.RangeMax()
		if hi < b.header.MinCell.RangeMin() || lo > b.header.MaxCell.RangeMax() {
			continue
		}
		i := b.lowerBound(lo, 0)
		for i < len(b.keys) && b.keys[i] <= hi {
			acc.combineCell(b, i)
			visited++
			i++
		}
	}
	return acc.finish(visited), nil
}

// CountCovering answers a COUNT query over a cell covering (paper
// Listing 2). Because cell aggregates store the offset of their first
// tuple in the (filtered) base sequence plus their tuple count, the count
// for a whole covering cell is a range sum touching only the first and
// last contained aggregate:
//
//	last.offset + last.count − first.offset
//
// The runtime is therefore nearly independent of the block level.
func (b *GeoBlock) CountCovering(cov []cellid.ID) uint64 {
	var total uint64
	cursor := 0
	for _, qc := range cov {
		lo, hi := qc.RangeMin(), qc.RangeMax()
		if hi < b.header.MinCell.RangeMin() || lo > b.header.MaxCell.RangeMax() {
			continue
		}
		first := b.gallopLowerBound(lo, cursor)
		if first >= len(b.keys) || b.keys[first] > hi {
			cursor = first
			continue
		}
		last := b.gallopUpperBound(hi, first) - 1
		total += uint64(b.offsets[last]) + uint64(b.counts[last]) - uint64(b.offsets[first])
		cursor = last + 1
	}
	return total
}

// CountCoveringScan is the ablation variant of CountCovering that combines
// every contained cell aggregate like a SELECT instead of using the
// range-sum trick. It quantifies the Listing 2 optimisation.
func (b *GeoBlock) CountCoveringScan(cov []cellid.ID) uint64 {
	var total uint64
	cursor := 0
	for _, qc := range cov {
		lo, hi := qc.RangeMin(), qc.RangeMax()
		if hi < b.header.MinCell.RangeMin() || lo > b.header.MaxCell.RangeMax() {
			continue
		}
		i := cursor
		if i < len(b.keys) && b.keys[i] < lo {
			i = b.lowerBound(lo, cursor)
		} else if i >= len(b.keys) {
			break
		}
		for i < len(b.keys) && b.keys[i] <= hi {
			total += uint64(b.counts[i])
			i++
		}
		cursor = i
	}
	return total
}

// AggregateCell returns the fully materialised aggregate (count plus every
// column's min/max/sum) of all grid cells contained in cell. This is how
// the AggregateTrie computes the records it caches.
func (b *GeoBlock) AggregateCell(cell cellid.ID) (uint64, []ColAggregate) {
	count, cols, _ := b.AggregateCellRange(cell)
	return count, cols
}

// AggregateCellRange is AggregateCell extended with the index one past the
// last aggregate contained in cell. The query cache memoises this end
// index with each cached record so that a cache hit can advance the
// accumulator cursor in constant time instead of galloping over the
// skipped range on the next miss.
func (b *GeoBlock) AggregateCellRange(cell cellid.ID) (uint64, []ColAggregate, int) {
	lo, hi := cell.RangeMin(), cell.RangeMax()
	cols := make([]ColAggregate, b.schema.NumCols())
	for c := range cols {
		cols[c] = emptyColAggregate()
	}
	var count uint64
	i := b.lowerBound(lo, 0)
	for ; i < len(b.keys) && b.keys[i] <= hi; i++ {
		count += uint64(b.counts[i])
		for c := range cols {
			cols[c].merge(b.aggs[c][i])
		}
	}
	return count, cols, i
}
