package core

import (
	"fmt"
	"math"

	"geoblocks/internal/cellid"
)

// AggFunc identifies a non-holistic aggregate function (paper Sec. 2).
type AggFunc uint8

// Supported aggregate functions. Avg is derived as Sum/Count at
// finalisation time (paper Sec. 3.4).
const (
	AggCount AggFunc = iota
	AggSum
	AggMin
	AggMax
	AggAvg
)

// String implements fmt.Stringer.
func (f AggFunc) String() string {
	switch f {
	case AggCount:
		return "count"
	case AggSum:
		return "sum"
	case AggMin:
		return "min"
	case AggMax:
		return "max"
	case AggAvg:
		return "avg"
	}
	return "?"
}

// AggSpec requests one aggregate over one column. Col is ignored for
// AggCount.
type AggSpec struct {
	Col  int
	Func AggFunc
}

// Result holds the answer of a spatial aggregation query: the tuple count
// within the covering plus one value per requested AggSpec (NaN for
// min/max/avg over zero tuples).
type Result struct {
	Count  uint64
	Values []float64
	// CellsVisited counts cell aggregates combined, a work metric used by
	// the experiments.
	CellsVisited int
	// Level is the block level the query was answered at. The core kernels
	// leave it zero; the geoblocks-layer query planner fills it in when it
	// resolves a query onto a pyramid level.
	Level int
	// ErrorBound is the guaranteed spatial error bound of this answer in
	// domain units: every tuple it includes beyond the exact query region
	// lies within this distance of the region, and no tuple inside the
	// region is missed (paper Sec. 3.2). Like Level it is filled in by the
	// planner, from the covering actually executed.
	ErrorBound float64
}

// validateSpecs checks the requested aggregates against the schema.
func (b *GeoBlock) validateSpecs(specs []AggSpec) error {
	for _, s := range specs {
		if s.Func > AggAvg {
			return fmt.Errorf("core: unknown aggregate function %d", s.Func)
		}
		if s.Func != AggCount && (s.Col < 0 || s.Col >= b.schema.NumCols()) {
			return fmt.Errorf("core: aggregate column %d out of range (%d columns)",
				s.Col, b.schema.NumCols())
		}
	}
	return nil
}

// accumulator combines cell aggregates into the requested outputs. The
// combining cost scales with the number of requested aggregates, which is
// the effect Fig. 10 measures.
type accumulator struct {
	specs []AggSpec
	count uint64
	vals  []float64 // running value per spec (sums for Avg)
}

func newAccumulator(specs []AggSpec) *accumulator {
	vals := make([]float64, len(specs))
	for i, s := range specs {
		switch s.Func {
		case AggMin:
			vals[i] = math.Inf(1)
		case AggMax:
			vals[i] = math.Inf(-1)
		}
	}
	return &accumulator{specs: specs, vals: vals}
}

// combineCell folds the i-th cell aggregate of b into the accumulator —
// the per-cell, per-spec combine the paper's Listing 1 describes. The
// endpoint-based combineRange below supersedes it on the SELECT hot path;
// it remains the kernel of the scan ablation and of the child-granular
// accumulation the query cache needs.
func (a *accumulator) combineCell(b *GeoBlock, i int) {
	a.count += uint64(b.counts[i])
	for k, s := range a.specs {
		switch s.Func {
		case AggCount:
			// Tracked globally via a.count.
		case AggSum, AggAvg:
			a.vals[k] += b.cols[s.Col].sums[i]
		case AggMin:
			if v := b.cols[s.Col].mins[i]; v < a.vals[k] {
				a.vals[k] = v
			}
		case AggMax:
			if v := b.cols[s.Col].maxs[i]; v > a.vals[k] {
				a.vals[k] = v
			}
		}
	}
}

// minOf returns the minimum of a non-empty slice with a tight,
// branch-predictable loop — the fused SoA kernel for MIN.
func minOf(xs []float64) float64 {
	m := xs[0]
	for _, v := range xs[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// maxOf is the MAX counterpart of minOf.
func maxOf(xs []float64) float64 {
	m := xs[0]
	for _, v := range xs[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// combineRange folds the contiguous cell-aggregate range [first, last] of
// b into the accumulator. COUNT is the offset range sum of Listing 2, SUM
// and the AVG numerator are prefix-sum endpoint differences — both O(1)
// regardless of how many aggregates the range spans — and MIN/MAX fall
// back to a fused scan over the column's contiguous extremum array. The
// AggFunc dispatch happens once per covering cell, never inside the scan
// loops.
func (a *accumulator) combineRange(b *GeoBlock, first, last int) {
	a.count += uint64(b.offsets[last]) + uint64(b.counts[last]) - uint64(b.offsets[first])
	for k, s := range a.specs {
		switch s.Func {
		case AggCount:
			// Tracked globally via a.count.
		case AggSum, AggAvg:
			p := b.cols[s.Col].prefix
			a.vals[k] += p[last+1] - p[first]
		case AggMin:
			if v := minOf(b.cols[s.Col].mins[first : last+1]); v < a.vals[k] {
				a.vals[k] = v
			}
		case AggMax:
			if v := maxOf(b.cols[s.Col].maxs[first : last+1]); v > a.vals[k] {
				a.vals[k] = v
			}
		}
	}
}

// mergeFrom folds another accumulator built over the same specs into a.
// COUNT adds and MIN/MAX take the extremum — both associative, so the
// merged result is bit-identical to a serial run. SUM (and the AVG
// numerator) re-associates the additions at the merge points; the result
// differs from the serial sum only by ordinary floating-point rounding
// (see DESIGN.md Sec. 6 for the bound) and is exact for integer-valued
// columns within 2^53.
func (a *accumulator) mergeFrom(o *accumulator) {
	a.count += o.count
	for k, s := range a.specs {
		switch s.Func {
		case AggCount:
			// Tracked globally via a.count.
		case AggSum, AggAvg:
			a.vals[k] += o.vals[k]
		case AggMin:
			if o.vals[k] < a.vals[k] {
				a.vals[k] = o.vals[k]
			}
		case AggMax:
			if o.vals[k] > a.vals[k] {
				a.vals[k] = o.vals[k]
			}
		}
	}
}

// combineValues folds a pre-combined aggregate record (count + per-column
// aggregates, e.g. from the query cache) into the accumulator.
func (a *accumulator) combineValues(count uint64, cols []ColAggregate) {
	a.count += count
	for k, s := range a.specs {
		switch s.Func {
		case AggCount:
		case AggSum, AggAvg:
			a.vals[k] += cols[s.Col].Sum
		case AggMin:
			if v := cols[s.Col].Min; v < a.vals[k] {
				a.vals[k] = v
			}
		case AggMax:
			if v := cols[s.Col].Max; v > a.vals[k] {
				a.vals[k] = v
			}
		}
	}
}

// finish converts running values into the final Result.
func (a *accumulator) finish(visited int) Result {
	out := Result{Count: a.count, Values: make([]float64, len(a.specs)), CellsVisited: visited}
	for i, s := range a.specs {
		switch s.Func {
		case AggCount:
			out.Values[i] = float64(a.count)
		case AggSum:
			out.Values[i] = a.vals[i]
		case AggMin, AggMax:
			if a.count == 0 {
				out.Values[i] = math.NaN()
			} else {
				out.Values[i] = a.vals[i]
			}
		case AggAvg:
			if a.count == 0 {
				out.Values[i] = math.NaN()
			} else {
				out.Values[i] = a.vals[i] / float64(a.count)
			}
		}
	}
	return out
}

// SelectCovering answers a SELECT query over a cell covering (paper
// Listing 1, upgraded with per-column prefix sums — DESIGN.md Sec. 3). The
// covering must be sorted ascending with disjoint cells and must not
// contain cells finer than the block level. For each covering cell, the
// first and last contained aggregates are located with gallop-bounded
// searches restricted to the unconsumed suffix (covering cells ascend);
// the whole range is then combined by endpoint arithmetic — COUNT from the
// tuple offsets (Listing 2), SUM/AVG from the prefix-sum arrays — with a
// fused scan only for MIN/MAX. SELECT cost therefore no longer scales with
// the number of cell aggregates under the covering, matching the COUNT
// fast path's level independence.
func (b *GeoBlock) SelectCovering(cov []cellid.ID, specs []AggSpec) (Result, error) {
	if err := b.validateSpecs(specs); err != nil {
		return Result{}, err
	}
	acc := newAccumulator(specs)
	visited := b.selectCoveringInto(acc, cov)
	return acc.finish(visited), nil
}

// selectCoveringInto is the serial SELECT kernel: it folds one
// (sub-)covering into acc and returns the number of cell aggregates
// visited. SelectCovering runs it over the whole covering;
// SelectCoveringParallel runs one instance per worker over contiguous
// covering chunks and merges the accumulators.
func (b *GeoBlock) selectCoveringInto(acc *accumulator, cov []cellid.ID) int {
	visited := 0
	cursor := 0
	for _, qc := range cov {
		lo, hi := qc.RangeMin(), qc.RangeMax()
		// Constant-time pruning against the global header (Listing 1,
		// lines 5-6).
		if hi < b.header.MinCell.RangeMin() || lo > b.header.MaxCell.RangeMax() {
			continue
		}
		if cursor >= len(b.keys) {
			break
		}
		first := b.gallopLowerBound(lo, cursor)
		if first >= len(b.keys) || b.keys[first] > hi {
			cursor = first
			continue
		}
		last := b.gallopUpperBound(hi, first) - 1
		acc.combineRange(b, first, last)
		visited += last - first + 1
		cursor = last + 1
	}
	return visited
}

// SelectCoveringScan is the pre-prefix-sum SELECT: the cursor-bounded
// successor scan of Listing 1 that combines every contained cell aggregate
// through the per-cell, per-spec switch. It is preserved as the ablation
// baseline that quantifies the prefix-sum optimisation (DESIGN.md Sec. 5)
// and is otherwise equivalent to SelectCovering.
func (b *GeoBlock) SelectCoveringScan(cov []cellid.ID, specs []AggSpec) (Result, error) {
	if err := b.validateSpecs(specs); err != nil {
		return Result{}, err
	}
	acc := newAccumulator(specs)
	visited := 0
	cursor := 0
	for _, qc := range cov {
		lo, hi := qc.RangeMin(), qc.RangeMax()
		if hi < b.header.MinCell.RangeMin() || lo > b.header.MaxCell.RangeMax() {
			continue
		}
		if cursor >= len(b.keys) {
			break
		}
		i := b.gallopLowerBound(lo, cursor)
		for i < len(b.keys) && b.keys[i] <= hi {
			acc.combineCell(b, i)
			visited++
			i++
		}
		cursor = i
	}
	return acc.finish(visited), nil
}

// SelectCoveringBinaryOnly is the ablation variant of SelectCovering that
// re-runs a full binary search for every covering cell instead of reusing
// the scan cursor, and combines per cell instead of per range. It exists
// to quantify the successor optimisation (DESIGN.md Sec. 5) and is
// otherwise equivalent.
func (b *GeoBlock) SelectCoveringBinaryOnly(cov []cellid.ID, specs []AggSpec) (Result, error) {
	if err := b.validateSpecs(specs); err != nil {
		return Result{}, err
	}
	acc := newAccumulator(specs)
	visited := 0
	for _, qc := range cov {
		lo, hi := qc.RangeMin(), qc.RangeMax()
		if hi < b.header.MinCell.RangeMin() || lo > b.header.MaxCell.RangeMax() {
			continue
		}
		i := b.lowerBound(lo, 0)
		for i < len(b.keys) && b.keys[i] <= hi {
			acc.combineCell(b, i)
			visited++
			i++
		}
	}
	return acc.finish(visited), nil
}

// CountCovering answers a COUNT query over a cell covering (paper
// Listing 2). Because cell aggregates store the offset of their first
// tuple in the (filtered) base sequence plus their tuple count, the count
// for a whole covering cell is a range sum touching only the first and
// last contained aggregate:
//
//	last.offset + last.count − first.offset
//
// The runtime is therefore nearly independent of the block level.
func (b *GeoBlock) CountCovering(cov []cellid.ID) uint64 {
	var total uint64
	cursor := 0
	for _, qc := range cov {
		lo, hi := qc.RangeMin(), qc.RangeMax()
		if hi < b.header.MinCell.RangeMin() || lo > b.header.MaxCell.RangeMax() {
			continue
		}
		first := b.gallopLowerBound(lo, cursor)
		if first >= len(b.keys) || b.keys[first] > hi {
			cursor = first
			continue
		}
		last := b.gallopUpperBound(hi, first) - 1
		total += uint64(b.offsets[last]) + uint64(b.counts[last]) - uint64(b.offsets[first])
		cursor = last + 1
	}
	return total
}

// CountCoveringScan is the ablation variant of CountCovering that combines
// every contained cell aggregate like a SELECT instead of using the
// range-sum trick. It quantifies the Listing 2 optimisation.
func (b *GeoBlock) CountCoveringScan(cov []cellid.ID) uint64 {
	var total uint64
	cursor := 0
	for _, qc := range cov {
		lo, hi := qc.RangeMin(), qc.RangeMax()
		if hi < b.header.MinCell.RangeMin() || lo > b.header.MaxCell.RangeMax() {
			continue
		}
		i := cursor
		if i < len(b.keys) && b.keys[i] < lo {
			i = b.lowerBound(lo, cursor)
		} else if i >= len(b.keys) {
			break
		}
		for i < len(b.keys) && b.keys[i] <= hi {
			total += uint64(b.counts[i])
			i++
		}
		cursor = i
	}
	return total
}

// AggregateCell returns the fully materialised aggregate (count plus every
// column's min/max/sum) of all grid cells contained in cell. This is how
// the AggregateTrie computes the records it caches.
func (b *GeoBlock) AggregateCell(cell cellid.ID) (uint64, []ColAggregate) {
	count, cols, _ := b.AggregateCellRange(cell)
	return count, cols
}

// AggregateCellRange is AggregateCell extended with the index one past the
// last aggregate contained in cell. The query cache memoises this end
// index with each cached record so that a cache hit can advance the
// accumulator cursor in constant time instead of galloping over the
// skipped range on the next miss.
//
// Like SelectCovering it answers COUNT and SUM from range endpoints
// (offsets and prefix sums) and only scans the contiguous extremum arrays
// for MIN/MAX, so materialising trie records for coarse cells no longer
// touches every contained aggregate three times.
func (b *GeoBlock) AggregateCellRange(cell cellid.ID) (uint64, []ColAggregate, int) {
	lo, hi := cell.RangeMin(), cell.RangeMax()
	cols := make([]ColAggregate, b.schema.NumCols())
	for c := range cols {
		cols[c] = emptyColAggregate()
	}
	first := b.lowerBound(lo, 0)
	if first >= len(b.keys) || b.keys[first] > hi {
		return 0, cols, first
	}
	last := b.upperBound(hi, first) - 1
	count := uint64(b.offsets[last]) + uint64(b.counts[last]) - uint64(b.offsets[first])
	for c := range cols {
		cs := &b.cols[c]
		cols[c] = ColAggregate{
			Min: minOf(cs.mins[first : last+1]),
			Max: maxOf(cs.maxs[first : last+1]),
			Sum: cs.prefix[last+1] - cs.prefix[first],
		}
	}
	return count, cols, last + 1
}
