package core

import (
	"cmp"
	"slices"

	"geoblocks/internal/cellid"
)

// multiSpan is one covering cell of one query in the shared walk: its
// key range plus the accumulator it scatters into.
type multiSpan struct {
	lo, hi cellid.ID
	acc    int32
}

// SelectCoveringMulti answers K SELECT queries over one block in a
// single pass: every covering cell becomes a key-range span tagged with
// its query index, the spans are sorted by range start, and one
// monotone cursor walks the block's cell-aggregate array combining each
// span into its query's accumulator by the same endpoint arithmetic as
// the serial kernel. K overlapping coverings therefore cost one ordered
// traversal of the keys, not K.
//
// Each covering obeys the SelectCovering contract (ascending, disjoint,
// no cells finer than the block level); coverings of different queries
// may overlap arbitrarily. Every returned accumulator is bit-identical
// to SelectCoveringPartial run on its covering alone — including
// SUM/AVG, because a query's spans stay in its covering's ascending
// order, so its ranges combine in the same sequence — and the shared
// cursor only ever advances to a span's first contained aggregate,
// which lower-bounds the first of every later span (spans are sorted by
// lo), keeping the gallop start valid for all of them.
func (b *GeoBlock) SelectCoveringMulti(covs [][]cellid.ID, specs []AggSpec) ([]*Accumulator, error) {
	if err := b.validateSpecs(specs); err != nil {
		return nil, err
	}
	accs := make([]*Accumulator, len(covs))
	total := 0
	for _, cov := range covs {
		total += len(cov)
	}
	spans := make([]multiSpan, 0, total)
	minLo := b.header.MinCell.RangeMin()
	maxHi := b.header.MaxCell.RangeMax()
	for i, cov := range covs {
		accs[i] = &Accumulator{b: b, inner: newAccumulator(specs), cursor: len(b.keys)}
		for _, qc := range cov {
			lo, hi := qc.RangeMin(), qc.RangeMax()
			// Header pruning, exactly as in selectCoveringInto.
			if hi < minLo || lo > maxHi {
				continue
			}
			spans = append(spans, multiSpan{lo: lo, hi: hi, acc: int32(i)})
		}
	}
	slices.SortFunc(spans, func(a, b multiSpan) int {
		if c := cmp.Compare(a.lo, b.lo); c != 0 {
			return c
		}
		if c := cmp.Compare(a.hi, b.hi); c != 0 {
			return c
		}
		return cmp.Compare(a.acc, b.acc)
	})
	cursor := 0
	for _, s := range spans {
		if cursor >= len(b.keys) {
			break
		}
		first := b.gallopLowerBound(s.lo, cursor)
		if first >= len(b.keys) {
			// Every later span starts at or after s.lo, so nothing else
			// can match either.
			break
		}
		cursor = first
		if b.keys[first] > s.hi {
			continue
		}
		last := b.gallopUpperBound(s.hi, first) - 1
		a := accs[s.acc]
		a.inner.combineRange(b, first, last)
		a.visited += last - first + 1
	}
	return accs, nil
}
