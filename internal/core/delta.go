package core

import (
	"fmt"

	"geoblocks/internal/cellid"
	"sort"
)

// validateRows checks a raw row set (leaf cell ids plus one value slice per
// schema column) against the block's schema. Delta rows are the unit of the
// streaming write path: tuples acknowledged by ingest but not yet folded
// into any block's sorted aggregate arrays.
func (b *GeoBlock) validateRows(leaves []cellid.ID, cols [][]float64) error {
	if len(cols) != b.schema.NumCols() {
		return fmt.Errorf("core: row set has %d columns, schema has %d", len(cols), b.schema.NumCols())
	}
	for c := range cols {
		if len(cols[c]) != len(leaves) {
			return fmt.Errorf("core: row column %d has %d rows, want %d", c, len(cols[c]), len(leaves))
		}
	}
	return nil
}

// rowInCovering reports whether a leaf cell falls inside a sorted, disjoint
// covering. Containment is checked against leaf ranges, so it is exact for
// covering cells at any level at or above the leaf level — a pyramid query
// at a coarse level and a base-level query both classify the same raw row
// identically.
func rowInCovering(cov []cellid.ID, leaf cellid.ID) bool {
	i := sort.Search(len(cov), func(i int) bool { return cov[i].RangeMax() >= leaf })
	return i < len(cov) && cov[i].RangeMin() <= leaf
}

// combineRow folds one raw row (its per-schema-column values) into the
// accumulator. The row contributes exactly like a one-tuple cell aggregate,
// so COUNT/MIN/MAX stay bit-identical to a block rebuilt with the row and
// SUM differs only by the documented reassociation bound.
func (a *accumulator) combineRow(cols [][]float64, i int) {
	a.count++
	for k, s := range a.specs {
		switch s.Func {
		case AggCount:
			// Tracked globally via a.count.
		case AggSum, AggAvg:
			a.vals[k] += cols[s.Col][i]
		case AggMin:
			if v := cols[s.Col][i]; v < a.vals[k] {
				a.vals[k] = v
			}
		case AggMax:
			if v := cols[s.Col][i]; v > a.vals[k] {
				a.vals[k] = v
			}
		}
	}
}

// SelectRowsPartial answers a SELECT over raw, un-aggregated rows: the
// delta-side half of a base+delta query. Rows are given as leaf cell ids
// with one value slice per schema column (the same shape UpdateBatch
// carries after point→leaf conversion); rows outside the covering or not
// matching the block's filter are skipped. The receiver only supplies the
// schema, filter and spec validation — its aggregate arrays are never read.
//
// The returned Accumulator is a partial over the same specs as the block's
// other partial kernels, so callers merge it with MergeFrom in a fixed
// order (base first, then delta) to keep COUNT/MIN/MAX bit-identical to a
// from-scratch rebuild; SUM and the AVG numerator carry the reassociation
// bound of DESIGN.md Sec. 6. Rows are accumulated in slice order, so the
// same row order yields bit-identical sums across runs and restarts.
// CellsVisited counts matched rows (each raw row is one aggregate record).
func (b *GeoBlock) SelectRowsPartial(cov []cellid.ID, leaves []cellid.ID, cols [][]float64, specs []AggSpec) (*Accumulator, error) {
	if err := b.validateSpecs(specs); err != nil {
		return nil, err
	}
	if err := b.validateRows(leaves, cols); err != nil {
		return nil, err
	}
	acc := &Accumulator{b: b, inner: newAccumulator(specs)}
rows:
	for i, leaf := range leaves {
		if !rowInCovering(cov, leaf) {
			continue
		}
		for _, pr := range b.filter {
			if !pr.Matches(cols[pr.Col][i]) {
				continue rows
			}
		}
		acc.inner.combineRow(cols, i)
		acc.visited++
	}
	acc.cursor = len(b.keys)
	return acc, nil
}
