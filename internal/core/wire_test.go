package core

import (
	"encoding/binary"
	"errors"
	"math"
	"testing"

	"geoblocks/internal/cover"
	"geoblocks/internal/geom"
)

var wireSpecs = []AggSpec{
	{Func: AggCount},
	{Func: AggSum, Col: 0},
	{Func: AggMin, Col: 1},
	{Func: AggMax, Col: 1},
	{Func: AggAvg, Col: 2},
}

// partialFor runs a covering partial over the fixture's hotspot, giving a
// non-trivial accumulator state to round-trip.
func partialFor(t *testing.T, b *GeoBlock, f *testFixture) *Accumulator {
	t.Helper()
	c := cover.MustCoverer(f.dom, cover.DefaultOptions(12))
	cov := c.CoverRect(geom.Rect{Min: geom.Pt(20, 30), Max: geom.Pt(45, 55)}).Cells
	acc, err := b.SelectCoveringPartial(cov, wireSpecs)
	if err != nil {
		t.Fatalf("partial: %v", err)
	}
	return acc
}

func TestPartialRoundTrip(t *testing.T) {
	f := newFixture(t, 5000, 11)
	b := f.build(t, 12, nil)
	acc := partialFor(t, b, f)

	frame := acc.EncodePartial()
	dec, err := b.DecodePartial(frame, wireSpecs)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if dec.inner.count != acc.inner.count {
		t.Errorf("count = %d, want %d", dec.inner.count, acc.inner.count)
	}
	if dec.visited != acc.visited {
		t.Errorf("visited = %d, want %d", dec.visited, acc.visited)
	}
	for i, v := range dec.inner.vals {
		if math.Float64bits(v) != math.Float64bits(acc.inner.vals[i]) {
			t.Errorf("val[%d] = %v (bits %#x), want %v (bits %#x)",
				i, v, math.Float64bits(v), acc.inner.vals[i], math.Float64bits(acc.inner.vals[i]))
		}
	}

	// A merge of decoded partials must equal the same merge of the
	// originals bit for bit.
	other, err := b.SelectCoveringPartial(nil, wireSpecs)
	if err != nil {
		t.Fatalf("empty partial: %v", err)
	}
	if err := other.MergeFrom(dec); err != nil {
		t.Fatalf("merge: %v", err)
	}
	want := acc.Result()
	got := other.Result()
	if got.Count != want.Count {
		t.Errorf("merged count = %d, want %d", got.Count, want.Count)
	}
	for i := range got.Values {
		if math.Float64bits(got.Values[i]) != math.Float64bits(want.Values[i]) {
			t.Errorf("merged value[%d] = %v, want %v", i, got.Values[i], want.Values[i])
		}
	}
}

// TestPartialRoundTripIdentity covers the empty accumulator: ±Inf min/max
// identity elements must survive the wire so merging an empty shard is a
// no-op, exactly as in-process.
func TestPartialRoundTripIdentity(t *testing.T) {
	f := newFixture(t, 200, 3)
	b := f.build(t, 12, nil)
	acc, err := b.SelectCoveringPartial(nil, wireSpecs)
	if err != nil {
		t.Fatalf("empty partial: %v", err)
	}
	dec, err := b.DecodePartial(acc.EncodePartial(), wireSpecs)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if dec.inner.count != 0 {
		t.Errorf("count = %d, want 0", dec.inner.count)
	}
	if !math.IsInf(dec.inner.vals[2], 1) || !math.IsInf(dec.inner.vals[3], -1) {
		t.Errorf("identity min/max = %v/%v, want +Inf/-Inf", dec.inner.vals[2], dec.inner.vals[3])
	}
}

// TestDecodePartialMalformed is the corruption table: every damaged frame
// must be rejected with a typed error, never decoded into garbage.
func TestDecodePartialMalformed(t *testing.T) {
	f := newFixture(t, 1000, 5)
	b := f.build(t, 12, nil)
	frame := partialFor(t, b, f).EncodePartial()

	damage := func(mut func(fr []byte) []byte) []byte {
		cp := append([]byte(nil), frame...)
		return mut(cp)
	}
	refix := func(fr []byte) []byte {
		// Recompute the trailing checksum so the mutation itself, not the
		// CRC, is what the decoder must catch.
		binary.LittleEndian.PutUint32(fr[len(fr)-4:], CRC32C(fr[:len(fr)-4]))
		return fr
	}

	cases := []struct {
		name  string
		frame []byte
		want  error
	}{
		{"empty", nil, ErrCorrupt},
		{"truncated header", frame[:6], ErrCorrupt},
		{"truncated body", frame[:len(frame)-9], ErrCorrupt},
		{"trailing garbage", append(append([]byte(nil), frame...), 0xAB), ErrCorrupt},
		{"bad magic", damage(func(fr []byte) []byte { fr[0] = 'X'; return fr }), ErrCorrupt},
		{"future version", damage(func(fr []byte) []byte {
			binary.LittleEndian.PutUint16(fr[4:], 9)
			return refix(fr)
		}), ErrVersion},
		{"flipped payload bit", damage(func(fr []byte) []byte { fr[len(fr)-7] ^= 0x10; return fr }), ErrCorrupt},
		{"flipped checksum", damage(func(fr []byte) []byte { fr[len(fr)-1] ^= 0xFF; return fr }), ErrCorrupt},
		{"spec func mismatch", damage(func(fr []byte) []byte {
			fr[8] = byte(AggSum) // frame says SUM where decoder expects COUNT
			return refix(fr)
		}), ErrCorrupt},
		{"spec col mismatch", damage(func(fr []byte) []byte {
			binary.LittleEndian.PutUint16(fr[12:], 7)
			return refix(fr)
		}), ErrCorrupt},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := b.DecodePartial(tc.frame, wireSpecs); !errors.Is(err, tc.want) {
				t.Errorf("decode = %v, want errors.Is(%v)", err, tc.want)
			}
		})
	}

	// Spec-count mismatch between caller and frame.
	if _, err := b.DecodePartial(frame, wireSpecs[:3]); !errors.Is(err, ErrCorrupt) {
		t.Errorf("short specs decode = %v, want ErrCorrupt", err)
	}
	// Specs invalid for the target block are rejected before parsing.
	if _, err := b.DecodePartial(frame, []AggSpec{{Func: AggSum, Col: 99}}); err == nil {
		t.Error("decode with out-of-range column spec succeeded")
	}
}
