// Package core implements the GeoBlock data structure (paper Sec. 3): a
// pre-aggregating materialized view over geospatial point data. A GeoBlock
// stores one cell aggregate per non-empty grid cell at a fixed block level,
// sorted by spatial key, plus a global header. SELECT queries combine the
// cell aggregates intersecting a query polygon's cell covering (Listing 1);
// COUNT queries exploit the sorted layout to answer from only the first and
// last aggregate per covering cell (Listing 2).
package core

import (
	"fmt"
	"math"

	"geoblocks/internal/cellid"
	"geoblocks/internal/column"
)

// ColAggregate is the per-column component of a cell aggregate: minimum,
// maximum and sum of all values in the cell. Together with the tuple count
// it also yields the average (paper Sec. 3.4). It remains the record-
// oriented exchange format (cache slots, headers, derived records); the
// block itself stores columns struct-of-arrays, see colStore.
type ColAggregate struct {
	Min, Max, Sum float64
}

// emptyColAggregate is the identity element for combining.
func emptyColAggregate() ColAggregate {
	return ColAggregate{Min: math.Inf(1), Max: math.Inf(-1), Sum: 0}
}

func (a *ColAggregate) addValue(v float64) {
	if v < a.Min {
		a.Min = v
	}
	if v > a.Max {
		a.Max = v
	}
	a.Sum += v
}

func (a *ColAggregate) merge(b ColAggregate) {
	if b.Min < a.Min {
		a.Min = b.Min
	}
	if b.Max > a.Max {
		a.Max = b.Max
	}
	a.Sum += b.Sum
}

// colStore is the struct-of-arrays aggregate storage of one value column:
// three parallel arrays indexed by cell position (DESIGN.md Sec. 2). The
// split keeps each aggregate kind contiguous so the query kernels stream
// over exactly the array they need instead of striding through interleaved
// {min,max,sum} records.
type colStore struct {
	sums []float64
	mins []float64
	maxs []float64
	// prefix is the exclusive prefix-sum array over sums: len(sums)+1
	// entries with prefix[i] = sums[0] + … + sums[i-1]. It turns the SUM
	// (and AVG numerator) of any contiguous cell-aggregate range into
	// prefix[last+1] − prefix[first], mirroring what offsets already do
	// for COUNT (paper Listing 2).
	prefix []float64
}

// addValueAt folds v into the i-th cell aggregate of the column.
func (cs *colStore) addValueAt(i int, v float64) {
	if v < cs.mins[i] {
		cs.mins[i] = v
	}
	if v > cs.maxs[i] {
		cs.maxs[i] = v
	}
	cs.sums[i] += v
}

// mergeAt folds another cell aggregate (min/max/sum) into slot i.
func (cs *colStore) mergeAt(i int, min, max, sum float64) {
	if min < cs.mins[i] {
		cs.mins[i] = min
	}
	if max > cs.maxs[i] {
		cs.maxs[i] = max
	}
	cs.sums[i] += sum
}

// appendEmpty opens a new cell aggregate initialised to the identity.
func (cs *colStore) appendEmpty() {
	cs.sums = append(cs.sums, 0)
	cs.mins = append(cs.mins, math.Inf(1))
	cs.maxs = append(cs.maxs, math.Inf(-1))
}

// at assembles the record view of slot i.
func (cs *colStore) at(i int) ColAggregate {
	return ColAggregate{Min: cs.mins[i], Max: cs.maxs[i], Sum: cs.sums[i]}
}

// Header is the GeoBlock-wide metadata: the minimum and maximum grid cell
// id present (used for constant-time pruning of covering cells) and the
// block-wide aggregate over all tuples (paper Sec. 3.4).
type Header struct {
	MinCell, MaxCell cellid.ID
	Count            uint64
	Cols             []ColAggregate
}

// CellAggregate is a read-only view of one grid cell's aggregate,
// assembled from the columnar arrays for callers that want record-oriented
// access (paper Fig. 1 shows one such record).
type CellAggregate struct {
	Key    cellid.ID
	Offset uint32
	Count  uint32
	MinKey cellid.ID
	MaxKey cellid.ID
	Cols   []ColAggregate
}

// GeoBlock is the pre-aggregating data structure. Cell aggregates are laid
// out columnar, in ascending spatial-key order — the same order as the
// sorted base data. GeoBlocks are write-once; see Update for the batch
// maintenance discussed in paper Sec. 5.
type GeoBlock struct {
	domain cellid.Domain
	level  int
	schema column.Schema
	filter column.Filter

	// Parallel arrays, one entry per non-empty grid cell, sorted by key.
	keys    []cellid.ID
	offsets []uint32 // number of qualifying tuples before this cell
	counts  []uint32
	minKeys []cellid.ID // finest (leaf) key extremes inside the cell
	maxKeys []cellid.ID

	// Per-column struct-of-arrays aggregates plus prefix sums.
	cols []colStore

	header Header

	// base optionally references the sorted base data the block was built
	// from, enabling drill-through and finer rebuilds. It is nil for
	// deserialized blocks.
	base *column.Table

	// mapped marks a block whose aggregate arrays are unsafe.Slice views
	// over a read-only byte region (format v3, see MapBlock). Mapped
	// blocks serve queries normally but reject in-place Update.
	mapped bool
}

// Domain returns the spatial domain the block decomposes.
func (b *GeoBlock) Domain() cellid.Domain { return b.domain }

// Level returns the block level (grid granularity).
func (b *GeoBlock) Level() int { return b.level }

// Schema returns the value-column schema.
func (b *GeoBlock) Schema() column.Schema { return b.schema }

// Filter returns the filter the block was built with (empty = all rows).
func (b *GeoBlock) Filter() column.Filter { return b.filter }

// NumCells returns the number of non-empty grid cells.
func (b *GeoBlock) NumCells() int { return len(b.keys) }

// NumTuples returns the number of qualifying tuples aggregated.
func (b *GeoBlock) NumTuples() uint64 { return b.header.Count }

// Header returns the global header.
func (b *GeoBlock) Header() Header { return b.header }

// Base returns the sorted base data the block was built from, or nil.
func (b *GeoBlock) Base() *column.Table { return b.base }

// Mapped reports whether the block is a read-only view over mapped file
// bytes (see MapBlock). Mapped blocks reject Update with ErrReadOnly.
func (b *GeoBlock) Mapped() bool { return b.mapped }

// CellAt returns a record view of the i-th cell aggregate.
func (b *GeoBlock) CellAt(i int) CellAggregate {
	cols := make([]ColAggregate, len(b.cols))
	for c := range b.cols {
		cols[c] = b.cols[c].at(i)
	}
	return CellAggregate{
		Key:    b.keys[i],
		Offset: b.offsets[i],
		Count:  b.counts[i],
		MinKey: b.minKeys[i],
		MaxKey: b.maxKeys[i],
		Cols:   cols,
	}
}

// SizeBytes returns the in-memory size of the aggregate storage: per cell,
// the key (8), offset (4), count (4), min/max keys (16), 24 bytes per
// column (min/max/sum) and 8 bytes per column for the prefix-sum entry.
// Used for the overhead comparisons (paper Fig. 11b/11c).
func (b *GeoBlock) SizeBytes() int {
	perCell := 8 + 4 + 4 + 16 + 32*len(b.cols)
	return perCell*len(b.keys) + 32 + 24*len(b.header.Cols)
}

// buildPrefixes (re)materialises the per-column prefix-sum arrays from the
// per-cell sums. Cost is one linear pass per column. Every mutation path
// — Build, Coarsen, ReadBlock and Update — calls it before returning, so
// query paths can rely on fresh prefixes and stay strictly read-only
// (safe for concurrent readers between serialized updates).
func (b *GeoBlock) buildPrefixes() {
	n := len(b.keys)
	for c := range b.cols {
		cs := &b.cols[c]
		if cap(cs.prefix) < n+1 {
			cs.prefix = make([]float64, n+1)
		} else {
			cs.prefix = cs.prefix[:n+1]
			cs.prefix[0] = 0
		}
		running := 0.0
		for i, s := range cs.sums {
			maybeYield(i)
			running += s
			cs.prefix[i+1] = running
		}
	}
}

// AggSlotBytes returns the byte size of one fully materialised aggregate
// record (count + per-column min/max/sum), the unit the AggregateTrie
// reserves per cached cell.
func (b *GeoBlock) AggSlotBytes() int { return 8 + 24*b.schema.NumCols() }

// lowerBound returns the first aggregate index in [from, n) whose key is
// >= key.
func (b *GeoBlock) lowerBound(key cellid.ID, from int) int {
	lo, hi := from, len(b.keys)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if b.keys[mid] < key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// upperBound returns the first aggregate index in [from, n) whose key is
// > key.
func (b *GeoBlock) upperBound(key cellid.ID, from int) int {
	lo, hi := from, len(b.keys)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if b.keys[mid] <= key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// gallopLowerBound is lowerBound specialised for cursor-relative seeks:
// the target is usually close to from (covering cells are processed in
// ascending order), so an exponential probe narrows the window in
// O(log distance) before the binary search.
func (b *GeoBlock) gallopLowerBound(key cellid.ID, from int) int {
	n := len(b.keys)
	if from >= n || b.keys[from] >= key {
		return from
	}
	base, end := from, from+1
	for step := 1; end < n && b.keys[end] < key; step <<= 1 {
		base = end
		end += step
	}
	if end > n {
		end = n
	}
	lo, hi := base+1, end
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if b.keys[mid] < key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// gallopUpperBound is the > key counterpart of gallopLowerBound.
func (b *GeoBlock) gallopUpperBound(key cellid.ID, from int) int {
	n := len(b.keys)
	if from >= n || b.keys[from] > key {
		return from
	}
	base, end := from, from+1
	for step := 1; end < n && b.keys[end] <= key; step <<= 1 {
		base = end
		end += step
	}
	if end > n {
		end = n
	}
	lo, hi := base+1, end
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if b.keys[mid] <= key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// String implements fmt.Stringer.
func (b *GeoBlock) String() string {
	return fmt.Sprintf("GeoBlock(level=%d, cells=%d, tuples=%d, filter=%s)",
		b.level, len(b.keys), b.header.Count, b.filter.Describe(b.schema))
}
