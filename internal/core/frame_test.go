package core

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"

	"geoblocks/internal/cover"
)

// frameBytes encodes the fixture block as one frame and returns the raw
// bytes plus the reported FrameInfo.
func frameBytes(t *testing.T) ([]byte, FrameInfo) {
	t.Helper()
	f := newFixture(t, 4000, 16)
	b := f.build(t, 11, nil)
	var buf bytes.Buffer
	info, err := b.EncodeFramed(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), info
}

func TestFrameRoundTrip(t *testing.T) {
	f := newFixture(t, 6000, 16)
	b := f.build(t, 11, nil)
	var buf bytes.Buffer
	info, err := b.EncodeFramed(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if int64(buf.Len()) != info.Bytes {
		t.Fatalf("frame is %d bytes, info says %d", buf.Len(), info.Bytes)
	}
	if info.PayloadBytes != info.Bytes-16 {
		t.Fatalf("payload %d vs frame %d: framing overhead must be 16 bytes", info.PayloadBytes, info.Bytes)
	}

	rb, rinfo, err := DecodeFramed(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if rinfo != info {
		t.Fatalf("decode info %+v != encode info %+v", rinfo, info)
	}
	if rb.NumCells() != b.NumCells() || rb.NumTuples() != b.NumTuples() {
		t.Fatalf("round trip mismatch: %d/%d cells, %d/%d tuples",
			rb.NumCells(), b.NumCells(), rb.NumTuples(), b.NumTuples())
	}
	// Query equivalence through the framed round trip.
	cov := cover.MustCoverer(f.dom, cover.DefaultOptions(11)).Cover(testPolygon())
	a, err := b.SelectCovering(cov.Cells, allSpecs())
	if err != nil {
		t.Fatal(err)
	}
	c, err := rb.SelectCovering(cov.Cells, allSpecs())
	if err != nil {
		t.Fatal(err)
	}
	if a.Count != c.Count {
		t.Fatalf("counts differ: %d vs %d", a.Count, c.Count)
	}
}

// TestFrameCorruption is the frame-level corruption table: every mutation
// of the on-disk bytes must surface the right typed error.
func TestFrameCorruption(t *testing.T) {
	frame, info := frameBytes(t)

	cases := []struct {
		name    string
		mutate  func([]byte) []byte
		wantErr error
	}{
		{"frame magic flipped", func(b []byte) []byte {
			b[0] ^= 0xff
			return b
		}, ErrCorrupt},
		{"length prefix implausible", func(b []byte) []byte {
			binary.LittleEndian.PutUint64(b[4:12], 1<<50)
			return b
		}, ErrCorrupt},
		{"truncated payload", func(b []byte) []byte {
			return b[:len(b)/2]
		}, ErrCorrupt},
		{"truncated trailer", func(b []byte) []byte {
			return b[:len(b)-2]
		}, ErrCorrupt},
		{"payload bit flip", func(b []byte) []byte {
			b[12+info.PayloadBytes/2] ^= 0x01
			return b
		}, ErrCorrupt},
		{"trailer bit flip", func(b []byte) []byte {
			b[len(b)-1] ^= 0x01
			return b
		}, ErrCorrupt},
		{"payload magic flipped", func(b []byte) []byte {
			b[12] ^= 0xff
			return b
		}, ErrCorrupt},
		// The version field is inspected before the checksum, so a
		// version bump reports ErrVersion even though it also breaks the
		// CRC.
		{"payload version bumped", func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[16:20], 99)
			return b
		}, ErrVersion},
		{"payload version 1", func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[16:20], 1)
			return b
		}, ErrVersion},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			mutated := tc.mutate(bytes.Clone(frame))
			_, _, err := DecodeFramed(bytes.NewReader(mutated))
			if err == nil {
				t.Fatal("corrupt frame accepted")
			}
			if !errors.Is(err, tc.wantErr) {
				t.Fatalf("error %v, want %v", err, tc.wantErr)
			}
		})
	}

	// The pristine frame still decodes after all that.
	if _, _, err := DecodeFramed(bytes.NewReader(frame)); err != nil {
		t.Fatalf("pristine frame rejected: %v", err)
	}
}

func TestReadBlockTypedErrors(t *testing.T) {
	frame, _ := frameBytes(t)
	payload := frame[12 : len(frame)-4]

	bad := bytes.Clone(payload)
	bad[0] ^= 0xff
	if _, err := ReadBlock(bytes.NewReader(bad)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("bad magic error %v, want ErrCorrupt", err)
	}
	bad = bytes.Clone(payload)
	binary.LittleEndian.PutUint32(bad[4:8], 1)
	if _, err := ReadBlock(bytes.NewReader(bad)); !errors.Is(err, ErrVersion) {
		t.Fatalf("version-1 error %v, want ErrVersion", err)
	}
}

// TestDecodeFramedHugeLengthPrefix pins the untrusted-length guard: a
// plausible-but-false length prefix on a short stream must fail with
// ErrCorrupt after reading only the bytes that exist, not allocate the
// claimed size up front.
func TestDecodeFramedHugeLengthPrefix(t *testing.T) {
	frame, _ := frameBytes(t)
	mutated := bytes.Clone(frame)
	binary.LittleEndian.PutUint64(mutated[4:12], 1<<38) // 256 GiB claim, under the sanity cap
	_, _, err := DecodeFramed(bytes.NewReader(mutated))
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("error %v, want ErrCorrupt", err)
	}
}
