package core

import (
	"geoblocks/internal/cellid"
)

// Accumulator is the exported incremental aggregation interface used by the
// query cache (paper Sec. 3.6): the adapted query algorithm mixes cached
// aggregate records with on-the-fly scans of cell aggregates, which
// requires combining partial results *before* finalisation (an average, for
// example, cannot be merged from two finished averages).
type Accumulator struct {
	b     *GeoBlock
	inner *accumulator
	// visited counts cell aggregates scanned (not cached records), the
	// work metric reported in Result.CellsVisited.
	visited int
	// cursor is the index after the last scanned aggregate. Covering
	// cells are processed in ascending order (including the child walk of
	// the adapted query algorithm), so later scans never revisit earlier
	// aggregates; the cursor bounds the binary search exactly like the
	// successor optimisation of Listing 1.
	cursor int
}

// NewAccumulator validates the requested aggregates against the block's
// schema and returns an empty accumulator.
func (b *GeoBlock) NewAccumulator(specs []AggSpec) (*Accumulator, error) {
	if err := b.validateSpecs(specs); err != nil {
		return nil, err
	}
	return &Accumulator{b: b, inner: newAccumulator(specs)}, nil
}

// AddRecord folds a pre-combined aggregate record (e.g. a cached trie
// entry) into the accumulator.
func (a *Accumulator) AddRecord(count uint64, cols []ColAggregate) {
	a.inner.combineValues(count, cols)
}

// AccumulateCell scans and combines all cell aggregates of the block that
// fall inside qc — the "old algorithm" path of the adapted query process
// (paper Fig. 8). Query cells must be supplied in ascending order across
// the accumulator's lifetime. It returns the number of cell aggregates
// combined.
func (a *Accumulator) AccumulateCell(qc cellid.ID) int {
	b := a.b
	lo, hi := qc.RangeMin(), qc.RangeMax()
	if len(b.keys) == 0 || hi < b.header.MinCell.RangeMin() || lo > b.header.MaxCell.RangeMax() {
		return 0
	}
	// Cache hits skip whole aggregate ranges without moving the cursor,
	// so the distance to the next needed aggregate is usually the size of
	// the skipped run — the gallop costs log of that distance instead of
	// a full binary search over the remaining array.
	i := b.gallopLowerBound(lo, a.cursor)
	n := 0
	for i < len(b.keys) && b.keys[i] <= hi {
		a.inner.combineCell(b, i)
		n++
		i++
	}
	a.cursor = i
	a.visited += n
	return n
}

// SkipTo advances the cursor to idx without accumulating, for callers that
// consumed the skipped aggregates through another channel (a cached
// record). The cursor never moves backwards.
func (a *Accumulator) SkipTo(idx int) {
	if idx > a.cursor {
		a.cursor = idx
	}
}

// Result finalises the accumulator.
func (a *Accumulator) Result() Result {
	return a.inner.finish(a.visited)
}
