package core

import (
	"fmt"

	"geoblocks/internal/cellid"
)

// Accumulator is the exported incremental aggregation interface used by the
// query cache (paper Sec. 3.6): the adapted query algorithm mixes cached
// aggregate records with on-the-fly scans of cell aggregates, which
// requires combining partial results *before* finalisation (an average, for
// example, cannot be merged from two finished averages).
type Accumulator struct {
	b     *GeoBlock
	inner *accumulator
	// visited counts cell aggregates scanned (not cached records), the
	// work metric reported in Result.CellsVisited.
	visited int
	// cursor is the index after the last scanned aggregate. Covering
	// cells are processed in ascending order (including the child walk of
	// the adapted query algorithm), so later scans never revisit earlier
	// aggregates; the cursor bounds the binary search exactly like the
	// successor optimisation of Listing 1.
	cursor int
}

// NewAccumulator validates the requested aggregates against the block's
// schema and returns an empty accumulator.
func (b *GeoBlock) NewAccumulator(specs []AggSpec) (*Accumulator, error) {
	if err := b.validateSpecs(specs); err != nil {
		return nil, err
	}
	return &Accumulator{b: b, inner: newAccumulator(specs)}, nil
}

// AddRecord folds a pre-combined aggregate record (e.g. a cached trie
// entry) into the accumulator.
func (a *Accumulator) AddRecord(count uint64, cols []ColAggregate) {
	a.inner.combineValues(count, cols)
}

// AccumulateCell scans and combines all cell aggregates of the block that
// fall inside qc — the "old algorithm" path of the adapted query process
// (paper Fig. 8). Query cells must be supplied in ascending order across
// the accumulator's lifetime. It returns the number of cell aggregates
// combined.
func (a *Accumulator) AccumulateCell(qc cellid.ID) int {
	b := a.b
	lo, hi := qc.RangeMin(), qc.RangeMax()
	if len(b.keys) == 0 || hi < b.header.MinCell.RangeMin() || lo > b.header.MaxCell.RangeMax() {
		return 0
	}
	// Cache hits skip whole aggregate ranges without moving the cursor,
	// so the distance to the next needed aggregate is usually the size of
	// the skipped run — the gallop costs log of that distance instead of
	// a full binary search over the remaining array.
	i := b.gallopLowerBound(lo, a.cursor)
	n := 0
	for i < len(b.keys) && b.keys[i] <= hi {
		a.inner.combineCell(b, i)
		n++
		i++
	}
	a.cursor = i
	a.visited += n
	return n
}

// SkipTo advances the cursor to idx without accumulating, for callers that
// consumed the skipped aggregates through another channel (a cached
// record). The cursor never moves backwards.
func (a *Accumulator) SkipTo(idx int) {
	if idx > a.cursor {
		a.cursor = idx
	}
}

// MergeFrom folds another accumulator into a. Both accumulators must have
// been created for the same aggregate specs, but they may belong to
// different GeoBlocks — this is how the sharded store combines per-shard
// partial results over one spatial domain. COUNT adds and MIN/MAX take the
// extremum, so for those the merged result is bit-identical to a single
// accumulator fed all inputs; SUM and the AVG numerator re-associate the
// additions at the merge point, with the floating-point bound documented
// in DESIGN.md Sec. 6 (exact for integer-valued columns below 2^53).
func (a *Accumulator) MergeFrom(o *Accumulator) error {
	if len(a.inner.specs) != len(o.inner.specs) {
		return fmt.Errorf("core: merging accumulators over %d vs %d aggregate specs",
			len(a.inner.specs), len(o.inner.specs))
	}
	for i, s := range a.inner.specs {
		if o.inner.specs[i] != s {
			return fmt.Errorf("core: merging accumulators with mismatched spec %d: %v vs %v",
				i, s, o.inner.specs[i])
		}
	}
	a.inner.mergeFrom(o.inner)
	a.visited += o.visited
	return nil
}

// Result finalises the accumulator.
func (a *Accumulator) Result() Result {
	return a.inner.finish(a.visited)
}

// SelectCoveringPartial answers a SELECT query over a covering with the
// same endpoint-based range kernel as SelectCovering, but stops before
// finalisation: the returned Accumulator holds the pre-combined partial so
// callers can MergeFrom partials of other blocks (the shards of a
// partitioned dataset) before calling Result. The covering obeys the same
// contract as SelectCovering (ascending, disjoint, no cells finer than the
// block level). The partial consumes the whole covering; do not mix it
// with further AccumulateCell calls.
func (b *GeoBlock) SelectCoveringPartial(cov []cellid.ID, specs []AggSpec) (*Accumulator, error) {
	if err := b.validateSpecs(specs); err != nil {
		return nil, err
	}
	acc := &Accumulator{b: b, inner: newAccumulator(specs)}
	acc.visited = b.selectCoveringInto(acc.inner, cov)
	acc.cursor = len(b.keys)
	return acc, nil
}
