package core

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"math"
	"testing"

	"geoblocks/internal/column"
	"geoblocks/internal/cover"
)

// fixTableCRC recomputes the v3 table checksum after a test deliberately
// rewrites bytes in the eagerly-checked region, so the mutation reaches
// the structural validation it targets instead of tripping the CRC first.
func fixTableCRC(b []byte) {
	dataOff := binary.LittleEndian.Uint64(b[v3OffDataOff:])
	crc := crc32.Checksum(b[:v3OffTableCRC], crcTable)
	crc = crc32.Update(crc, crcTable, b[v3OffDataCRC:dataOff])
	binary.LittleEndian.PutUint32(b[v3OffTableCRC:], crc)
}

func v3Bytes(t *testing.T) ([]byte, *GeoBlock) {
	t.Helper()
	f := newFixture(t, 5000, 16)
	filter := column.Filter{{Col: 0, Op: column.OpGe, Value: 10}}
	b := f.build(t, 11, filter)
	return b.EncodeV3(), b
}

func TestV3RoundTrip(t *testing.T) {
	f := newFixture(t, 6000, 21)
	filter := column.Filter{{Col: 2, Op: column.OpLe, Value: 4}}
	b := f.build(t, 11, filter)
	enc := b.EncodeV3()

	info, err := ProbeV3(enc, int64(len(enc)))
	if err != nil {
		t.Fatalf("probe: %v", err)
	}
	if info.NumCells != b.NumCells() || info.Rows != b.NumTuples() || info.Level != b.Level() {
		t.Fatalf("probe info %+v does not match block (cells=%d rows=%d level=%d)",
			info, b.NumCells(), b.NumTuples(), b.Level())
	}

	m, err := MapBlock(enc)
	if err != nil {
		t.Fatalf("map: %v", err)
	}
	if !m.Mapped() {
		t.Fatal("MapBlock result must report Mapped()")
	}
	if m.NumCells() != b.NumCells() || m.NumTuples() != b.NumTuples() || m.Level() != b.Level() {
		t.Fatalf("mapped block shape differs: %d/%d cells, %d/%d tuples",
			m.NumCells(), b.NumCells(), m.NumTuples(), b.NumTuples())
	}
	if len(m.Filter()) != len(b.Filter()) || m.Filter()[0] != b.Filter()[0] {
		t.Fatalf("filter differs: %v vs %v", m.Filter(), b.Filter())
	}
	if m.Schema().Names[2] != b.Schema().Names[2] {
		t.Fatalf("schema differs: %v vs %v", m.Schema(), b.Schema())
	}
	if m.Header().MinCell != b.Header().MinCell || m.Header().Count != b.Header().Count {
		t.Fatalf("header differs: %+v vs %+v", m.Header(), b.Header())
	}

	// Bit-identical answers: the mapped views hold the same float bit
	// patterns and the kernels walk them in the same order, so results
	// must match exactly, not approximately.
	cov := cover.MustCoverer(f.dom, cover.DefaultOptions(11)).Cover(testPolygon())
	want, err := b.SelectCovering(cov.Cells, allSpecs())
	if err != nil {
		t.Fatal(err)
	}
	got, err := m.SelectCovering(cov.Cells, allSpecs())
	if err != nil {
		t.Fatal(err)
	}
	if want.Count != got.Count {
		t.Fatalf("counts differ: %d vs %d", want.Count, got.Count)
	}
	for i := range want.Values {
		if math.Float64bits(want.Values[i]) != math.Float64bits(got.Values[i]) {
			t.Fatalf("value %d not bit-identical: %x vs %x",
				i, math.Float64bits(want.Values[i]), math.Float64bits(got.Values[i]))
		}
	}

	// Per-cell record views agree.
	for _, i := range []int{0, m.NumCells() / 2, m.NumCells() - 1} {
		if b.CellAt(i).Key != m.CellAt(i).Key || b.CellAt(i).Count != m.CellAt(i).Count {
			t.Fatalf("cell %d differs", i)
		}
	}
}

func TestV3MappedRejectsUpdate(t *testing.T) {
	enc, b := v3Bytes(t)
	m, err := MapBlock(enc)
	if err != nil {
		t.Fatal(err)
	}
	batch := &UpdateBatch{Cols: [][]float64{nil, nil, nil}}
	if err := m.Update(batch); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("Update on mapped block: got %v, want ErrReadOnly", err)
	}
	if err := b.Update(batch); err != nil {
		t.Fatalf("Update on heap block must still work: %v", err)
	}
}

func TestV3CoarsenFromMapped(t *testing.T) {
	enc, b := v3Bytes(t)
	m, err := MapBlock(enc)
	if err != nil {
		t.Fatal(err)
	}
	cb, err := Coarsen(b, 9)
	if err != nil {
		t.Fatal(err)
	}
	cm, err := Coarsen(m, 9)
	if err != nil {
		t.Fatalf("coarsen from mapped: %v", err)
	}
	if cm.Mapped() {
		t.Fatal("coarsened block must be a heap block")
	}
	if cb.NumCells() != cm.NumCells() || cb.NumTuples() != cm.NumTuples() {
		t.Fatalf("coarsen mismatch: %d/%d cells", cm.NumCells(), cb.NumCells())
	}
}

// TestV3Corruption is the v3 counterpart of the frame corruption table:
// every byte-level mutation must surface a typed error from the eager
// probe or the fault-time map — never a crash or a silently wrong block.
func TestV3Corruption(t *testing.T) {
	pristine, _ := v3Bytes(t)

	le := binary.LittleEndian
	cases := []struct {
		name    string
		mutate  func([]byte) []byte
		wantErr error
		// lazyOnly marks corruption that the eager probe must accept
		// (it lives in the data region) and only MapBlock may reject.
		lazyOnly bool
	}{
		{"empty file", func(b []byte) []byte { return nil }, ErrCorrupt, false},
		{"truncated header", func(b []byte) []byte { return b[:100] }, ErrCorrupt, false},
		{"truncated section table", func(b []byte) []byte {
			return b[:v3HeaderSize+8]
		}, ErrCorrupt, false},
		{"bad magic", func(b []byte) []byte { b[0] ^= 0xff; return b }, ErrCorrupt, false},
		{"v2 frame where v3 expected", func(b []byte) []byte {
			copy(b[:4], frameMagic)
			return b
		}, ErrVersion, false},
		{"future version", func(b []byte) []byte {
			le.PutUint32(b[v3OffVersion:], 4)
			return b
		}, ErrVersion, false},
		{"file length mismatch", func(b []byte) []byte {
			return b[:len(b)-8]
		}, ErrCorrupt, false},
		{"table CRC flipped", func(b []byte) []byte {
			b[v3OffTableCRC] ^= 0x01
			return b
		}, ErrCorrupt, false},
		{"meta byte flipped", func(b []byte) []byte {
			// First schema-name byte; caught by the table CRC.
			metaOff := le.Uint64(b[v3OffMetaOff:])
			b[metaOff+4] ^= 0xff
			return b
		}, ErrCorrupt, false},
		{"misaligned section offset", func(b []byte) []byte {
			// Knock the keys section off its 8-byte alignment and
			// recompute the table CRC so the structural check, not the
			// checksum, must catch it.
			off := le.Uint64(b[v3HeaderSize:])
			le.PutUint64(b[v3HeaderSize:], off+4)
			fixTableCRC(b)
			return b
		}, ErrCorrupt, false},
		{"section length mismatch", func(b []byte) []byte {
			ln := le.Uint64(b[v3HeaderSize+8:])
			le.PutUint64(b[v3HeaderSize+8:], ln+8)
			fixTableCRC(b)
			return b
		}, ErrCorrupt, false},
		{"section escapes file", func(b []byte) []byte {
			le.PutUint64(b[v3HeaderSize:], uint64(len(b)))
			fixTableCRC(b)
			return b
		}, ErrCorrupt, false},
		{"implausible cell count", func(b []byte) []byte {
			le.PutUint64(b[v3OffNumCells:], 1<<40)
			fixTableCRC(b)
			return b
		}, ErrCorrupt, false},
		{"data bit flipped", func(b []byte) []byte {
			dataOff := le.Uint64(b[v3OffDataOff:])
			b[dataOff+17] ^= 0x04
			return b
		}, ErrCorrupt, true},
		{"data CRC flipped", func(b []byte) []byte {
			b[v3OffDataCRC] ^= 0x01
			return b
		}, ErrCorrupt, false},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := tc.mutate(append([]byte(nil), pristine...))
			_, perr := ProbeV3(b, int64(len(b)))
			if tc.lazyOnly {
				if perr != nil {
					t.Fatalf("eager probe must not read the data region, got %v", perr)
				}
			} else if !errors.Is(perr, tc.wantErr) {
				t.Fatalf("probe: got %v, want %v", perr, tc.wantErr)
			}
			m, merr := MapBlock(b)
			if !errors.Is(merr, tc.wantErr) {
				t.Fatalf("map: got %v, want %v", merr, tc.wantErr)
			}
			if m != nil {
				t.Fatal("corrupt input must not yield a block")
			}
		})
	}
}

// TestV3ProbePrefixProtocol exercises the two-read open protocol: header
// first, then exactly [0, DataOff) for the eager check.
func TestV3ProbePrefixProtocol(t *testing.T) {
	enc, _ := v3Bytes(t)
	dataOff, err := V3DataOff(enc[:v3HeaderSize], int64(len(enc)))
	if err != nil {
		t.Fatal(err)
	}
	if dataOff <= v3HeaderSize || dataOff%8 != 0 {
		t.Fatalf("implausible data offset %d", dataOff)
	}
	if _, err := ProbeV3(enc[:dataOff], int64(len(enc))); err != nil {
		t.Fatalf("probe on exact prefix: %v", err)
	}
	if _, err := ProbeV3(enc[:dataOff-1], int64(len(enc))); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("short prefix must fail typed, got %v", err)
	}
}
