package core

import (
	"runtime"
	"sync"

	"geoblocks/internal/cellid"
)

// parallelMinCellsPerWorker is the covering-size cutoff for the parallel
// SELECT: a worker must have at least this many covering cells to
// amortise its goroutine spawn and the merge. One covering cell costs a
// gallop-bounded search plus an O(1) endpoint combine — roughly a hundred
// nanoseconds — so the cutoff keeps the parallel path to coverings where
// the fan-out genuinely wins; everything smaller falls back to the serial
// kernel.
const parallelMinCellsPerWorker = 256

// SelectCoveringParallel answers the same query as SelectCovering but
// partitions a large covering across worker goroutines, each folding its
// contiguous chunk into a private accumulator with the unchanged serial
// kernel; the partial accumulators are merged in chunk order. workers <= 0
// means GOMAXPROCS. Coverings too small to amortise the fan-out (fewer
// than parallelMinCellsPerWorker cells per worker) are answered by the
// serial kernel, so callers can use this unconditionally.
//
// COUNT, MIN and MAX merge associatively and are bit-identical to the
// serial path. SUM and AVG re-associate the per-chunk additions; the
// difference from the serial result is ordinary floating-point rounding,
// bounded as documented in DESIGN.md Sec. 6, and the grouping is fixed by
// (covering, workers), so repeated runs of the same query are themselves
// deterministic.
//
// Like SelectCovering the method only reads the block, so any number of
// callers (parallel or serial) may run concurrently.
func (b *GeoBlock) SelectCoveringParallel(cov []cellid.ID, specs []AggSpec, workers int) (Result, error) {
	if err := b.validateSpecs(specs); err != nil {
		return Result{}, err
	}
	total, visited := b.selectCoveringParallel(cov, specs, workers)
	return total.finish(visited), nil
}

// SelectCoveringPartialParallel is SelectCoveringParallel stopped before
// finalisation: the merged per-worker partials are returned as one
// Accumulator, so a sharded router can fan a huge sub-covering across
// workers inside one shard and still merge the shard partials exactly as
// with the serial kernel. Same fallback and determinism contract as
// SelectCoveringParallel.
func (b *GeoBlock) SelectCoveringPartialParallel(cov []cellid.ID, specs []AggSpec, workers int) (*Accumulator, error) {
	if err := b.validateSpecs(specs); err != nil {
		return nil, err
	}
	total, visited := b.selectCoveringParallel(cov, specs, workers)
	return &Accumulator{b: b, inner: total, visited: visited, cursor: len(b.keys)}, nil
}

// selectCoveringParallel is the shared fan-out kernel: it partitions the
// covering into balanced contiguous chunks, folds each on its own
// goroutine with the unchanged serial kernel, and merges the per-worker
// accumulators in chunk order. Specs must already be validated.
func (b *GeoBlock) selectCoveringParallel(cov []cellid.ID, specs []AggSpec, workers int) (*accumulator, int) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if max := len(cov) / parallelMinCellsPerWorker; workers > max {
		workers = max
	}
	if workers <= 1 {
		acc := newAccumulator(specs)
		visited := b.selectCoveringInto(acc, cov)
		return acc, visited
	}

	accs := make([]*accumulator, workers)
	visits := make([]int, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		// Balanced contiguous partition: chunk w is [w*n/W, (w+1)*n/W).
		// Contiguity preserves the ascending-cell precondition of the
		// successor cursor inside each chunk.
		lo := w * len(cov) / workers
		hi := (w + 1) * len(cov) / workers
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			acc := newAccumulator(specs)
			visits[w] = b.selectCoveringInto(acc, cov[lo:hi])
			accs[w] = acc
		}(w, lo, hi)
	}
	wg.Wait()

	total := accs[0]
	visited := visits[0]
	for w := 1; w < workers; w++ {
		total.mergeFrom(accs[w])
		visited += visits[w]
	}
	return total, visited
}
