package core

import (
	"fmt"
	"math"
	"time"

	"geoblocks/internal/cellid"
	"geoblocks/internal/column"
	"geoblocks/internal/geom"
)

// BuildOptions configure the build phase of a GeoBlock.
type BuildOptions struct {
	// Level is the block level: the grid granularity of the cell
	// aggregates and thereby the spatial error bound (paper Sec. 3.2).
	Level int
	// Filter restricts the block to qualifying rows (paper Sec. 3.3);
	// empty keeps all rows.
	Filter column.Filter
}

func (o BuildOptions) validate() error {
	if o.Level < 0 || o.Level > cellid.MaxLevel {
		return fmt.Errorf("core: block level %d out of range [0,%d]", o.Level, cellid.MaxLevel)
	}
	return nil
}

// Build runs the build phase (paper Fig. 5): a single linear pass over the
// sorted base data that filters rows and folds them into per-grid-cell
// aggregates. Empty cells are omitted. Build is the incremental-build path
// of Sec. 3.3: the expensive sort has already happened in Extract and is
// shared by every block built from the same BaseData.
func Build(base *BaseData, opts BuildOptions) (*GeoBlock, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	t := base.Table
	if !t.Sorted {
		return nil, fmt.Errorf("core: base data must be sorted by key")
	}
	if t.NumRows() > math.MaxUint32 {
		return nil, fmt.Errorf("core: base data exceeds uint32 offsets (%d rows)", t.NumRows())
	}

	b := &GeoBlock{
		domain: base.Domain,
		level:  opts.Level,
		schema: t.Schema,
		filter: opts.Filter,
		cols:   make([]colStore, t.Schema.NumCols()),
		base:   t,
	}
	b.header.Cols = make([]ColAggregate, t.Schema.NumCols())
	for c := range b.header.Cols {
		b.header.Cols[c] = emptyColAggregate()
	}

	var (
		curCell   cellid.ID
		curOpen   bool
		qualified uint32 // qualifying rows so far == offset of next cell
	)
	openCell := func(cell cellid.ID, leafKey cellid.ID) {
		b.keys = append(b.keys, cell)
		b.offsets = append(b.offsets, qualified)
		b.counts = append(b.counts, 0)
		b.minKeys = append(b.minKeys, leafKey)
		b.maxKeys = append(b.maxKeys, leafKey)
		for c := range b.cols {
			b.cols[c].appendEmpty()
		}
		curCell, curOpen = cell, true
	}

	for i := 0; i < t.NumRows(); i++ {
		if !opts.Filter.MatchesRow(t, i) {
			continue
		}
		leaf := cellid.ID(t.Keys[i])
		cell := leaf.Parent(opts.Level)
		if !curOpen || cell != curCell {
			openCell(cell, leaf)
		}
		last := len(b.keys) - 1
		b.counts[last]++
		if leaf < b.minKeys[last] {
			b.minKeys[last] = leaf
		}
		if leaf > b.maxKeys[last] {
			b.maxKeys[last] = leaf
		}
		for c := range b.cols {
			v := t.Cols[c][i]
			b.cols[c].addValueAt(last, v)
			b.header.Cols[c].addValue(v)
		}
		qualified++
	}

	b.header.Count = uint64(qualified)
	if len(b.keys) > 0 {
		b.header.MinCell = b.keys[0]
		b.header.MaxCell = b.keys[len(b.keys)-1]
	}
	b.buildPrefixes()
	return b, nil
}

// BuildStats reports the timing split of an isolated build.
type BuildStats struct {
	FilterTime    time.Duration
	SortTime      time.Duration
	AggregateTime time.Duration
}

// Total returns the end-to-end duration.
func (s BuildStats) Total() time.Duration {
	return s.FilterTime + s.SortTime + s.AggregateTime
}

// BuildIsolated builds a GeoBlock directly from raw, unsorted points,
// filtering before sorting — the alternative the paper analyses in
// Sec. 3.3, eq. (1): clean+filter in O(n), sort the s·n survivors in
// O(s·n log s·n), aggregate in O(s·n). It exists for the amortisation
// experiment (paper Fig. 19); production use should Extract once and Build
// incrementally.
func BuildIsolated(dom cellid.Domain, pts []geom.Point, schema column.Schema, cols [][]float64, rule CleanRule, opts BuildOptions) (*GeoBlock, BuildStats, error) {
	if err := opts.validate(); err != nil {
		return nil, BuildStats{}, err
	}
	var stats BuildStats

	filterStart := time.Now()
	table := column.NewTable(schema)
	vals := make([]float64, schema.NumCols())
rows:
	for i, p := range pts {
		if !rule.keep(p, func(c int) float64 { return cols[c][i] }) {
			continue
		}
		for _, pr := range opts.Filter {
			if !pr.Matches(cols[pr.Col][i]) {
				continue rows
			}
		}
		for c := range vals {
			vals[c] = cols[c][i]
		}
		table.AppendRow(uint64(dom.FromPoint(p)), vals...)
	}
	stats.FilterTime = time.Since(filterStart)

	sortStart := time.Now()
	table.SortByKey()
	stats.SortTime = time.Since(sortStart)

	aggStart := time.Now()
	base := &BaseData{Domain: dom, Table: table, PiggyLevel: -1}
	// The filter has already been applied row-wise; build with an empty
	// filter over the reduced table.
	b, err := Build(base, BuildOptions{Level: opts.Level})
	stats.AggregateTime = time.Since(aggStart)
	if err != nil {
		return nil, stats, err
	}
	b.filter = opts.Filter
	return b, stats, nil
}

// Coarsen derives a new GeoBlock at a coarser level from b without
// re-scanning the base data (paper Sec. 3.4, "Aggregate Granularity"):
// cell aggregates of the finer block are merged in one pass over the
// aggregates. newLevel must not exceed b's level.
func Coarsen(b *GeoBlock, newLevel int) (*GeoBlock, error) {
	if newLevel > b.level {
		return nil, fmt.Errorf("core: cannot coarsen level %d block to finer level %d (rescan base data instead)", b.level, newLevel)
	}
	if newLevel < 0 {
		return nil, fmt.Errorf("core: negative level %d", newLevel)
	}
	out := &GeoBlock{
		domain: b.domain,
		level:  newLevel,
		schema: b.schema,
		filter: b.filter,
		cols:   make([]colStore, len(b.cols)),
		base:   b.base,
		header: Header{
			Count: b.header.Count,
			Cols:  append([]ColAggregate(nil), b.header.Cols...),
		},
	}
	var cur cellid.ID
	open := false
	for i := range b.keys {
		maybeYield(i)
		parent := b.keys[i].Parent(newLevel)
		if !open || parent != cur {
			out.keys = append(out.keys, parent)
			out.offsets = append(out.offsets, b.offsets[i])
			out.counts = append(out.counts, 0)
			out.minKeys = append(out.minKeys, b.minKeys[i])
			out.maxKeys = append(out.maxKeys, b.maxKeys[i])
			for c := range out.cols {
				out.cols[c].appendEmpty()
			}
			cur, open = parent, true
		}
		last := len(out.keys) - 1
		out.counts[last] += b.counts[i]
		if b.minKeys[i] < out.minKeys[last] {
			out.minKeys[last] = b.minKeys[i]
		}
		if b.maxKeys[i] > out.maxKeys[last] {
			out.maxKeys[last] = b.maxKeys[i]
		}
		for c := range out.cols {
			src := &b.cols[c]
			out.cols[c].mergeAt(last, src.mins[i], src.maxs[i], src.sums[i])
		}
	}
	if len(out.keys) > 0 {
		out.header.MinCell = out.keys[0]
		out.header.MaxCell = out.keys[len(out.keys)-1]
	}
	out.buildPrefixes()
	return out, nil
}
