package snapshot

// The ingest write-ahead log (WAL): the replayable sidecar that makes a
// snapshot plus its delta rows a true recovery point. Every acknowledged
// ingest batch is appended as one CRC32C-framed record and fsynced BEFORE
// the acknowledgement, so an acknowledged row is always recoverable; a
// crash mid-append leaves a torn tail that the next open truncates away —
// by construction those rows were never acknowledged. Batches carry a
// strictly increasing sequence number; restore replays only batches with
// seq greater than the snapshot manifest's IngestSeq, so no row is ever
// double-counted. docs/FORMAT.md Sec. 9 specifies the bytes.
//
// Layout (all integers little-endian):
//
//	header:  magic "GBWAL001" (8) | numCols u32 | reserved u32
//	frame:   seq u64 | nrows u32 | crc32c u32 | payload
//	payload: nrows×{x f64, y f64} then, per column, nrows×f64
//
// The frame CRC covers seq, nrows and the payload.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"sync"

	"geoblocks/internal/core"
	"geoblocks/internal/geom"
)

// walMagic identifies an ingest WAL file.
var walMagic = [8]byte{'G', 'B', 'W', 'A', 'L', '0', '0', '1'}

const (
	walHeaderSize = 16
	walFrameHead  = 16
	// walMaxFrameRows bounds nrows so a corrupt frame header cannot
	// trigger a huge allocation; frames above it read as torn/corrupt.
	walMaxFrameRows = 1 << 24
)

// ErrWALCorrupt reports an ingest WAL whose non-tail bytes fail
// validation (bad magic or a column count contradicting the dataset). A
// merely torn tail — the expected shape after a crash mid-append — is
// NOT an error: replay stops before it and open truncates it away.
var ErrWALCorrupt = errors.New("snapshot: corrupt ingest wal")

// WALBatch is one replayable ingest batch.
type WALBatch struct {
	Seq    uint64
	Points []geom.Point
	// Cols holds one value slice per schema column, aligned with Points.
	Cols [][]float64
}

// WAL is an append-only ingest log for one dataset. Append and
// TruncateThrough are safe for concurrent use; replay happens once at
// open time, before the handle is shared.
type WAL struct {
	mu      sync.Mutex
	f       *os.File
	path    string
	cols    int
	lastSeq uint64
	batches uint64 // frames appended this process (stats)
}

// WALPath returns the conventional sidecar path of a dataset's ingest WAL
// next to (not inside) its snapshot directory: <dataDir>/<name>.wal. The
// WAL must not live inside the snapshot directory because snapshots are
// replaced by atomic directory swap.
func WALPath(dataDir, dataset string) string {
	return filepath.Join(dataDir, dataset+".wal")
}

// OpenWAL opens (or creates) the ingest WAL at path for a dataset with
// the given column count and returns every intact batch in log order for
// replay. A torn tail — short frame, payload shorter than its header
// claims, or CRC mismatch on the final frame region — is truncated away
// so the handle appends after the last intact frame. A magic or column
// count mismatch wraps ErrWALCorrupt.
func OpenWAL(path string, cols int) (*WAL, []WALBatch, error) {
	if cols < 0 {
		return nil, nil, fmt.Errorf("snapshot: negative wal column count %d", cols)
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, err
	}
	w := &WAL{f: f, path: path, cols: cols}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	if st.Size() == 0 {
		// Fresh log: write and sync the header.
		var hdr [walHeaderSize]byte
		copy(hdr[:8], walMagic[:])
		binary.LittleEndian.PutUint32(hdr[8:12], uint32(cols))
		if _, err := f.Write(hdr[:]); err != nil {
			f.Close()
			return nil, nil, err
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, nil, err
		}
		return w, nil, nil
	}

	data, err := os.ReadFile(path)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	batches, validEnd, err := parseWAL(data, cols)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	if int64(validEnd) != st.Size() {
		// Torn tail from a crash mid-append: those rows were never
		// acknowledged (ack happens strictly after fsync), so dropping
		// them is the correct recovery.
		if err := f.Truncate(int64(validEnd)); err != nil {
			f.Close()
			return nil, nil, err
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, nil, err
		}
	}
	if _, err := f.Seek(int64(validEnd), io.SeekStart); err != nil {
		f.Close()
		return nil, nil, err
	}
	if n := len(batches); n > 0 {
		w.lastSeq = batches[n-1].Seq
	}
	return w, batches, nil
}

// parseWAL decodes every intact frame of a WAL image and returns the
// batches plus the byte offset after the last intact frame. Structural
// violations of the header (magic, column count) are errors; anything
// wrong at or after the first bad frame is treated as the torn tail.
func parseWAL(data []byte, cols int) ([]WALBatch, int, error) {
	if len(data) < walHeaderSize {
		// Shorter than a header: a torn creation; treat as empty.
		return nil, 0, nil
	}
	if [8]byte(data[:8]) != walMagic {
		return nil, 0, fmt.Errorf("%w: bad magic", ErrWALCorrupt)
	}
	if got := binary.LittleEndian.Uint32(data[8:12]); got != uint32(cols) {
		return nil, 0, fmt.Errorf("%w: wal has %d columns, dataset has %d", ErrWALCorrupt, got, cols)
	}
	var batches []WALBatch
	off := walHeaderSize
	var lastSeq uint64
	for {
		if len(data)-off < walFrameHead {
			break // torn or clean end
		}
		seq := binary.LittleEndian.Uint64(data[off : off+8])
		nrows := binary.LittleEndian.Uint32(data[off+8 : off+12])
		crc := binary.LittleEndian.Uint32(data[off+12 : off+16])
		if nrows > walMaxFrameRows || seq <= lastSeq {
			break // garbage header: torn tail
		}
		payload := int(nrows) * (2 + cols) * 8
		if len(data)-off-walFrameHead < payload {
			break // torn payload
		}
		frame := data[off+walFrameHead : off+walFrameHead+payload]
		sum := core.CRC32C(data[off : off+12])
		sum = core.CRC32CUpdate(sum, frame)
		if sum != crc {
			break // torn or bit-rotted tail frame
		}
		b := WALBatch{Seq: seq, Points: make([]geom.Point, nrows), Cols: make([][]float64, cols)}
		p := 0
		for i := range b.Points {
			b.Points[i].X = math.Float64frombits(binary.LittleEndian.Uint64(frame[p:]))
			b.Points[i].Y = math.Float64frombits(binary.LittleEndian.Uint64(frame[p+8:]))
			p += 16
		}
		for c := 0; c < cols; c++ {
			b.Cols[c] = make([]float64, nrows)
			for i := range b.Cols[c] {
				b.Cols[c][i] = math.Float64frombits(binary.LittleEndian.Uint64(frame[p:]))
				p += 8
			}
		}
		batches = append(batches, b)
		lastSeq = seq
		off += walFrameHead + payload
	}
	return batches, off, nil
}

// encodeFrame serialises one batch into a framed record.
func encodeFrame(seq uint64, pts []geom.Point, cols [][]float64) []byte {
	payload := len(pts) * (2 + len(cols)) * 8
	buf := make([]byte, walFrameHead+payload)
	binary.LittleEndian.PutUint64(buf[0:8], seq)
	binary.LittleEndian.PutUint32(buf[8:12], uint32(len(pts)))
	p := walFrameHead
	for _, pt := range pts {
		binary.LittleEndian.PutUint64(buf[p:], math.Float64bits(pt.X))
		binary.LittleEndian.PutUint64(buf[p+8:], math.Float64bits(pt.Y))
		p += 16
	}
	for _, col := range cols {
		for _, v := range col {
			binary.LittleEndian.PutUint64(buf[p:], math.Float64bits(v))
			p += 8
		}
	}
	sum := core.CRC32C(buf[0:12])
	sum = core.CRC32CUpdate(sum, buf[walFrameHead:])
	binary.LittleEndian.PutUint32(buf[12:16], sum)
	return buf
}

// Append writes one batch frame and fsyncs it. It returns only after the
// bytes are durable — callers acknowledge the ingest strictly after
// Append returns, which is what makes torn-tail truncation safe. seq must
// exceed every previously appended sequence number.
func (w *WAL) Append(seq uint64, pts []geom.Point, cols [][]float64) error {
	if len(cols) != w.cols {
		return fmt.Errorf("snapshot: wal append with %d columns, wal has %d", len(cols), w.cols)
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if seq <= w.lastSeq {
		return fmt.Errorf("snapshot: wal append seq %d not after %d", seq, w.lastSeq)
	}
	if _, err := w.f.Write(encodeFrame(seq, pts, cols)); err != nil {
		return err
	}
	if err := w.f.Sync(); err != nil {
		return err
	}
	w.lastSeq = seq
	w.batches++
	return nil
}

// LastSeq returns the highest sequence number in the log.
func (w *WAL) LastSeq() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.lastSeq
}

// SizeBytes returns the current log size on disk.
func (w *WAL) SizeBytes() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	st, err := w.f.Stat()
	if err != nil {
		return 0
	}
	return st.Size()
}

// TruncateThrough drops every frame with seq <= through — called after a
// snapshot made those batches durable in the base blocks (the manifest's
// IngestSeq). The rewrite is atomic (temp file + rename); a crash leaves
// either the old log (replay skips the folded batches by seq) or the new
// one, both correct. Concurrent Appends are serialised against it.
func (w *WAL) TruncateThrough(through uint64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if _, err := w.f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	data, err := io.ReadAll(w.f)
	if err != nil {
		return err
	}
	batches, _, err := parseWAL(data, w.cols)
	if err != nil {
		return err
	}
	tmpPath := w.path + ".tmp"
	tmp, err := os.OpenFile(tmpPath, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	var hdr [walHeaderSize]byte
	copy(hdr[:8], walMagic[:])
	binary.LittleEndian.PutUint32(hdr[8:12], uint32(w.cols))
	if _, err := tmp.Write(hdr[:]); err != nil {
		tmp.Close()
		os.Remove(tmpPath)
		return err
	}
	for _, b := range batches {
		if b.Seq <= through {
			continue
		}
		if _, err := tmp.Write(encodeFrame(b.Seq, b.Points, b.Cols)); err != nil {
			tmp.Close()
			os.Remove(tmpPath)
			return err
		}
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpPath)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpPath)
		return err
	}
	if err := os.Rename(tmpPath, w.path); err != nil {
		os.Remove(tmpPath)
		return err
	}
	if err := syncDir(filepath.Dir(w.path)); err != nil {
		return err
	}
	// Swap the handle to the new file, positioned at its end.
	nf, err := os.OpenFile(w.path, os.O_RDWR, 0o644)
	if err != nil {
		return err
	}
	if _, err := nf.Seek(0, io.SeekEnd); err != nil {
		nf.Close()
		return err
	}
	w.f.Close()
	w.f = nf
	return nil
}

// Close closes the log handle. Appends after Close fail.
func (w *WAL) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.f.Close()
}

// RemoveWAL deletes a dataset's ingest WAL, for purges alongside
// snapshot directory removal. Missing files are not an error.
func RemoveWAL(dataDir, dataset string) error {
	err := os.Remove(WALPath(dataDir, dataset))
	if err != nil && !os.IsNotExist(err) {
		return err
	}
	return nil
}
