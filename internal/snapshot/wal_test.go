package snapshot

import (
	"encoding/binary"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"geoblocks/internal/geom"
)

func walBatch(rng *rand.Rand, n, cols int) ([]geom.Point, [][]float64) {
	pts := make([]geom.Point, n)
	cs := make([][]float64, cols)
	for c := range cs {
		cs[c] = make([]float64, n)
	}
	for i := range pts {
		pts[i] = geom.Pt(rng.Float64()*100, rng.Float64()*100)
		for c := range cs {
			cs[c][i] = rng.NormFloat64() * 100
		}
	}
	return pts, cs
}

func assertBatches(t *testing.T, got []WALBatch, want []WALBatch) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("replayed %d batches, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i].Seq != want[i].Seq {
			t.Fatalf("batch %d: seq %d, want %d", i, got[i].Seq, want[i].Seq)
		}
		if len(got[i].Points) != len(want[i].Points) {
			t.Fatalf("batch %d: %d rows, want %d", i, len(got[i].Points), len(want[i].Points))
		}
		for j := range got[i].Points {
			if got[i].Points[j] != want[i].Points[j] {
				t.Fatalf("batch %d row %d: point %v, want %v", i, j, got[i].Points[j], want[i].Points[j])
			}
		}
		for c := range got[i].Cols {
			for j := range got[i].Cols[c] {
				if got[i].Cols[c][j] != want[i].Cols[c][j] {
					t.Fatalf("batch %d col %d row %d: %v, want %v",
						i, c, j, got[i].Cols[c][j], want[i].Cols[c][j])
				}
			}
		}
	}
}

// TestWALRoundTrip appends batches, reopens, and expects every batch
// back bit-identically, with the handle positioned to keep appending.
func TestWALRoundTrip(t *testing.T) {
	path := WALPath(t.TempDir(), "rt")
	w, replay, err := OpenWAL(path, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(replay) != 0 {
		t.Fatalf("fresh wal replayed %d batches", len(replay))
	}
	rng := rand.New(rand.NewSource(1))
	var want []WALBatch
	for seq := uint64(1); seq <= 5; seq++ {
		pts, cols := walBatch(rng, 1+rng.Intn(50), 2)
		if err := w.Append(seq, pts, cols); err != nil {
			t.Fatal(err)
		}
		want = append(want, WALBatch{Seq: seq, Points: pts, Cols: cols})
	}
	if got := w.LastSeq(); got != 5 {
		t.Fatalf("LastSeq = %d, want 5", got)
	}
	// Out-of-order and duplicate sequence numbers are refused.
	if err := w.Append(5, want[0].Points, want[0].Cols); err == nil {
		t.Fatal("duplicate seq accepted")
	}
	// Wrong column count is refused.
	if err := w.Append(6, want[0].Points, want[0].Cols[:1]); err == nil {
		t.Fatal("wrong column count accepted")
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	w2, replay, err := OpenWAL(path, 2)
	if err != nil {
		t.Fatal(err)
	}
	assertBatches(t, replay, want)
	// The reopened handle appends after the last intact frame.
	pts, cols := walBatch(rng, 7, 2)
	if err := w2.Append(6, pts, cols); err != nil {
		t.Fatal(err)
	}
	w2.Close()
	_, replay, err = OpenWAL(path, 2)
	if err != nil {
		t.Fatal(err)
	}
	assertBatches(t, replay, append(want, WALBatch{Seq: 6, Points: pts, Cols: cols}))
}

// TestWALTornTail simulates crashes mid-append: garbage bytes, a
// truncated payload, and a corrupted final frame must all be dropped,
// keeping every frame before them.
func TestWALTornTail(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	write := func(t *testing.T, path string, n int) []WALBatch {
		t.Helper()
		w, _, err := OpenWAL(path, 1)
		if err != nil {
			t.Fatal(err)
		}
		var want []WALBatch
		for seq := uint64(1); seq <= uint64(n); seq++ {
			pts, cols := walBatch(rng, 1+rng.Intn(20), 1)
			if err := w.Append(seq, pts, cols); err != nil {
				t.Fatal(err)
			}
			want = append(want, WALBatch{Seq: seq, Points: pts, Cols: cols})
		}
		w.Close()
		return want
	}
	t.Run("garbage tail", func(t *testing.T) {
		path := WALPath(t.TempDir(), "w")
		want := write(t, path, 3)
		f, _ := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
		f.Write([]byte{0xde, 0xad, 0xbe, 0xef})
		f.Close()
		_, replay, err := OpenWAL(path, 1)
		if err != nil {
			t.Fatal(err)
		}
		assertBatches(t, replay, want)
	})
	t.Run("truncated payload", func(t *testing.T) {
		path := WALPath(t.TempDir(), "w")
		want := write(t, path, 3)
		st, _ := os.Stat(path)
		if err := os.Truncate(path, st.Size()-5); err != nil {
			t.Fatal(err)
		}
		_, replay, err := OpenWAL(path, 1)
		if err != nil {
			t.Fatal(err)
		}
		assertBatches(t, replay, want[:2])
	})
	t.Run("bit flip in last frame", func(t *testing.T) {
		path := WALPath(t.TempDir(), "w")
		want := write(t, path, 3)
		data, _ := os.ReadFile(path)
		data[len(data)-1] ^= 0x40
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		_, replay, err := OpenWAL(path, 1)
		if err != nil {
			t.Fatal(err)
		}
		assertBatches(t, replay, want[:2])
		// The truncation is durable: a further reopen sees a clean log.
		_, replay, err = OpenWAL(path, 1)
		if err != nil {
			t.Fatal(err)
		}
		assertBatches(t, replay, want[:2])
	})
	t.Run("header only", func(t *testing.T) {
		path := WALPath(t.TempDir(), "w")
		write(t, path, 0)
		_, replay, err := OpenWAL(path, 1)
		if err != nil {
			t.Fatal(err)
		}
		if len(replay) != 0 {
			t.Fatalf("replayed %d batches from empty log", len(replay))
		}
	})
}

// TestWALCorrupt pins the structural failures that must be loud errors,
// not silent truncation: a foreign file and a column-count mismatch.
func TestWALCorrupt(t *testing.T) {
	t.Run("bad magic", func(t *testing.T) {
		path := WALPath(t.TempDir(), "w")
		if err := os.WriteFile(path, []byte("definitely not a wal file"), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, _, err := OpenWAL(path, 1); !errors.Is(err, ErrWALCorrupt) {
			t.Fatalf("err = %v, want ErrWALCorrupt", err)
		}
	})
	t.Run("column mismatch", func(t *testing.T) {
		path := WALPath(t.TempDir(), "w")
		w, _, err := OpenWAL(path, 3)
		if err != nil {
			t.Fatal(err)
		}
		w.Close()
		if _, _, err := OpenWAL(path, 2); !errors.Is(err, ErrWALCorrupt) {
			t.Fatalf("err = %v, want ErrWALCorrupt", err)
		}
	})
}

// TestWALTruncateThrough folds a prefix away and expects only the tail
// to replay, across the atomic rewrite and after reopen.
func TestWALTruncateThrough(t *testing.T) {
	dir := t.TempDir()
	path := WALPath(dir, "tt")
	w, _, err := OpenWAL(path, 2)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	var want []WALBatch
	for seq := uint64(1); seq <= 6; seq++ {
		pts, cols := walBatch(rng, 10, 2)
		if err := w.Append(seq, pts, cols); err != nil {
			t.Fatal(err)
		}
		want = append(want, WALBatch{Seq: seq, Points: pts, Cols: cols})
	}
	before := w.SizeBytes()
	if err := w.TruncateThrough(4); err != nil {
		t.Fatal(err)
	}
	if after := w.SizeBytes(); after >= before {
		t.Fatalf("truncate did not shrink the log: %d -> %d", before, after)
	}
	// The handle survives the swap: appends continue with increasing seq.
	pts, cols := walBatch(rng, 10, 2)
	if err := w.Append(7, pts, cols); err != nil {
		t.Fatal(err)
	}
	want = append(want, WALBatch{Seq: 7, Points: pts, Cols: cols})
	w.Close()
	_, replay, err := OpenWAL(path, 2)
	if err != nil {
		t.Fatal(err)
	}
	assertBatches(t, replay, want[4:])
	// Truncating through everything leaves a header-only log.
	w2, _, err := OpenWAL(path, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := w2.TruncateThrough(7); err != nil {
		t.Fatal(err)
	}
	w2.Close()
	_, replay, err = OpenWAL(path, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(replay) != 0 {
		t.Fatalf("replayed %d batches after full truncation", len(replay))
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatalf("truncate left its temp file behind: %v", err)
	}
}

// TestWALOversizedFrame pins the allocation guard: a frame header
// claiming more rows than walMaxFrameRows reads as a torn tail, not a
// multi-gigabyte allocation.
func TestWALOversizedFrame(t *testing.T) {
	path := WALPath(t.TempDir(), "big")
	w, _, err := OpenWAL(path, 1)
	if err != nil {
		t.Fatal(err)
	}
	pts, cols := walBatch(rand.New(rand.NewSource(4)), 5, 1)
	if err := w.Append(1, pts, cols); err != nil {
		t.Fatal(err)
	}
	w.Close()
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	var head [walFrameHead]byte
	binary.LittleEndian.PutUint64(head[0:8], 2)
	binary.LittleEndian.PutUint32(head[8:12], walMaxFrameRows+1)
	f.Write(head[:])
	f.Close()
	_, replay, err := OpenWAL(path, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(replay) != 1 || replay[0].Seq != 1 {
		t.Fatalf("replayed %d batches, want the single intact one", len(replay))
	}
}

// TestRemoveWAL removes the sidecar and tolerates a missing file.
func TestRemoveWAL(t *testing.T) {
	dir := t.TempDir()
	w, _, err := OpenWAL(WALPath(dir, "x"), 1)
	if err != nil {
		t.Fatal(err)
	}
	w.Close()
	if err := RemoveWAL(dir, "x"); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "x.wal")); !os.IsNotExist(err) {
		t.Fatal("wal still present after RemoveWAL")
	}
	if err := RemoveWAL(dir, "x"); err != nil {
		t.Fatalf("missing wal should not error: %v", err)
	}
}
