package snapshot

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"geoblocks/internal/cellid"
	"geoblocks/internal/core"
)

// ErrEagerOnly reports a snapshot whose payload format cannot be served
// in place (version-1 framed payloads must be decoded). Callers fall
// back to Load.
var ErrEagerOnly = errors.New("snapshot: snapshot format is not mappable, use eager load")

// LazyShard describes one shard of a mappable (format v3) snapshot after
// eager validation: everything the store needs to route queries to the
// shard and budget its memory, without having read the shard's data
// region. The store materializes the block later via mmap + MapGeoBlock.
type LazyShard struct {
	Cell cellid.ID
	// Path is the shard file's location (inside the snapshot directory).
	Path string
	// Bytes is the file length — the amount of address space a mapping
	// takes and the residency cost of materializing the shard.
	Bytes int64
	// Info is the eagerly-validated header/table/meta metadata. The data
	// region's checksum (Info.DataCRC, cross-checked against the
	// manifest) is verified at fault time by MapGeoBlock.
	Info *core.V3Info
}

// OpenLazy reads and validates everything about a format-v3 snapshot
// except the shard data regions: the manifest, and each shard file's
// header, section table and meta section (covered by the eagerly-checked
// table CRC). The returned shards carry the metadata needed to serve the
// dataset with every block still cold on disk. Version-1 snapshots
// return ErrEagerOnly — the caller should Load instead.
func OpenLazy(dir string) (Manifest, []LazyShard, error) {
	m, err := readManifest(dir)
	if err != nil {
		return Manifest{}, nil, err
	}
	if m.FormatVersion != FormatVersionV3 {
		return Manifest{}, nil, fmt.Errorf("%w: format version %d", ErrEagerOnly, m.FormatVersion)
	}
	if err := validateManifest(&m); err != nil {
		return Manifest{}, nil, err
	}
	shards := make([]LazyShard, len(m.Shards))
	if err := forEachShard(len(m.Shards), func(i int) error {
		sh, err := probeShard(dir, &m, i)
		if err != nil {
			return err
		}
		shards[i] = sh
		return nil
	}); err != nil {
		return Manifest{}, nil, err
	}
	return m, shards, nil
}

// probeShard eagerly validates one v3 shard file without touching its
// data region: two reads (header, then the prefix up to the data
// offset), the table CRC, and the manifest cross-checks.
func probeShard(dir string, m *Manifest, i int) (LazyShard, error) {
	e := &m.Shards[i]
	path := filepath.Join(dir, e.File)
	f, err := os.Open(path)
	if err != nil {
		return LazyShard{}, fmt.Errorf("%w: shard file %s: %v", ErrCorrupt, e.File, err)
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return LazyShard{}, fmt.Errorf("%w: shard file %s: %v", ErrCorrupt, e.File, err)
	}
	if st.Size() != e.Bytes {
		return LazyShard{}, fmt.Errorf("%w: shard file %s is %d bytes, manifest says %d", ErrCorrupt, e.File, st.Size(), e.Bytes)
	}

	hdr := make([]byte, 128)
	if _, err := readFullAt(f, hdr, 0); err != nil {
		return LazyShard{}, fmt.Errorf("%w: shard file %s: truncated header: %v", ErrCorrupt, e.File, err)
	}
	dataOff, err := core.V3DataOff(hdr, st.Size())
	if err != nil {
		return LazyShard{}, wrapShardErr(e.File, err)
	}
	prefix := make([]byte, dataOff)
	if _, err := readFullAt(f, prefix, 0); err != nil {
		return LazyShard{}, fmt.Errorf("%w: shard file %s: truncated prefix: %v", ErrCorrupt, e.File, err)
	}
	info, err := core.ProbeV3(prefix, st.Size())
	if err != nil {
		return LazyShard{}, wrapShardErr(e.File, err)
	}
	if info.DataCRC != e.CRC32C {
		return LazyShard{}, fmt.Errorf("%w: shard file %s data CRC32C %08x, manifest says %08x", ErrCorrupt, e.File, info.DataCRC, e.CRC32C)
	}
	if info.Rows != e.Rows {
		return LazyShard{}, fmt.Errorf("%w: shard file %s has %d rows, manifest says %d", ErrCorrupt, e.File, info.Rows, e.Rows)
	}
	if info.Level != m.Level {
		return LazyShard{}, fmt.Errorf("%w: shard file %s block level %d, manifest says %d", ErrCorrupt, e.File, info.Level, m.Level)
	}
	if !equalStrings(info.Schema.Names, m.Columns) {
		return LazyShard{}, fmt.Errorf("%w: shard file %s schema %v, manifest says %v", ErrCorrupt, e.File, info.Schema.Names, m.Columns)
	}
	if [4]float64{info.Bound.Min.X, info.Bound.Min.Y, info.Bound.Max.X, info.Bound.Max.Y} != m.Bound {
		return LazyShard{}, fmt.Errorf("%w: shard file %s domain bound disagrees with manifest", ErrCorrupt, e.File)
	}
	cell, err := parseCellID(e.CellID)
	if err != nil {
		return LazyShard{}, fmt.Errorf("%w: shard file %s: %v", ErrCorrupt, e.File, err)
	}
	return LazyShard{Cell: cell, Path: path, Bytes: st.Size(), Info: info}, nil
}

// readFullAt fills buf from the file starting at off.
func readFullAt(f *os.File, buf []byte, off int64) (int, error) {
	n, err := f.ReadAt(buf, off)
	if n == len(buf) {
		return n, nil
	}
	return n, err
}
